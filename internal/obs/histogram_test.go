package obs

import (
	"math"
	"testing"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	h := newHistogram([]float64{0.1, 1})
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Errorf("empty quantile = %g, want NaN", h.Quantile(0.5))
	}
	if h.Count() != 0 || h.Sum() != 0 {
		t.Errorf("empty count/sum = %d/%g", h.Count(), h.Sum())
	}
	if h.CountBelow(10) != 0 {
		t.Errorf("empty CountBelow = %d", h.CountBelow(10))
	}
	s := h.snap("x")
	if len(s.Buckets) != 3 { // 0.1, 1, +Inf
		t.Fatalf("buckets = %d, want 3", len(s.Buckets))
	}
	for _, b := range s.Buckets {
		if b.Count != 0 || b.Exemplar != nil {
			t.Errorf("empty bucket %q = %d exemplar=%v", b.LE, b.Count, b.Exemplar)
		}
	}
	if s.Buckets[2].LE != "+Inf" {
		t.Errorf("last bound = %q, want +Inf", s.Buckets[2].LE)
	}
}

func TestHistogramSingleSample(t *testing.T) {
	h := newHistogram([]float64{0.1, 1})
	h.Observe(0.5)
	// All mass in the (0.1, 1] bucket: every quantile interpolates there.
	if q := h.Quantile(0.5); q < 0.1 || q > 1 {
		t.Errorf("p50 = %g, want within (0.1, 1]", q)
	}
	if q := h.Quantile(1); q != 1 {
		t.Errorf("p100 = %g, want 1 (bucket upper bound)", q)
	}
	if h.CountBelow(1) != 1 || h.CountBelow(0.1) != 0 {
		t.Errorf("CountBelow(1)/CountBelow(0.1) = %d/%d, want 1/0",
			h.CountBelow(1), h.CountBelow(0.1))
	}
}

// TestHistogramBoundaries pins the "value equal to a bound lands in that
// bucket" convention (le = less-or-equal, matching Prometheus).
func TestHistogramBoundaries(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	h.Observe(1) // exactly on the first bound → bucket le=1
	h.Observe(2) // → bucket le=2
	h.Observe(5) // above all bounds → +Inf bucket
	s := h.snap("b")
	wantCum := []uint64{1, 2, 2, 3}
	for i, b := range s.Buckets {
		if b.Count != wantCum[i] {
			t.Errorf("bucket[%d] le=%s cum=%d, want %d", i, b.LE, b.Count, wantCum[i])
		}
	}
	if h.CountBelow(2) != 2 {
		t.Errorf("CountBelow(2) = %d, want 2", h.CountBelow(2))
	}
	// +Inf-bucket mass clamps the quantile to the highest finite bound.
	if q := h.Quantile(1); q != 4 {
		t.Errorf("p100 = %g, want 4 (clamp)", q)
	}
}

func TestHistogramQuantileInterpolation(t *testing.T) {
	h := newHistogram([]float64{10, 20})
	for i := 0; i < 10; i++ {
		h.Observe(5) // all in (0, 10]
	}
	// rank(p50) = 5 of 10 observations, all in the first bucket:
	// lo=0, hi=10, frac=0.5 → 5.
	if q := h.Quantile(0.5); math.Abs(q-5) > 1e-12 {
		t.Errorf("p50 = %g, want 5", q)
	}
}

func TestHistogramExemplars(t *testing.T) {
	h := newHistogram([]float64{1, 2})
	h.ObserveTrace(0.5, 0) // trace 0: no exemplar
	if s := h.snap("e"); s.Buckets[0].Exemplar != nil {
		t.Error("trace 0 should not leave an exemplar")
	}
	h.ObserveTrace(0.7, 7)
	h.ObserveTrace(0.9, 9) // same bucket: last observation wins
	h.ObserveTrace(1.5, 15)
	s := h.snap("e")
	if ex := s.Buckets[0].Exemplar; ex == nil || ex.Trace != 9 || ex.Value != 0.9 {
		t.Errorf("bucket0 exemplar = %+v, want trace 9 value 0.9", ex)
	}
	if ex := s.Buckets[1].Exemplar; ex == nil || ex.Trace != 15 {
		t.Errorf("bucket1 exemplar = %+v, want trace 15", ex)
	}
	if s.Buckets[2].Exemplar != nil {
		t.Error("+Inf bucket should have no exemplar")
	}
}

func TestRegistryHistogram(t *testing.T) {
	r := NewRegistry()
	h1 := r.Histogram("lat", []float64{1, 2})
	h2 := r.Histogram("lat", []float64{99}) // same name: first bounds win
	if h1 != h2 {
		t.Fatal("same name returned different histograms")
	}
	h1.Observe(1.5)
	snap := r.Snapshot()
	if len(snap.Hists) != 1 || snap.Hists[0].Name != "lat" || snap.Hists[0].Count != 1 {
		t.Fatalf("snapshot hists = %+v", snap.Hists)
	}
	if len(snap.Hists[0].Buckets) != 3 {
		t.Errorf("buckets = %d, want 3 (first creation's bounds)", len(snap.Hists[0].Buckets))
	}
}

func TestObserveLatencyTrace(t *testing.T) {
	s := NewSession()
	c := s.NewTrace()
	if !c.Valid() || c.Trace != 1 {
		t.Fatalf("first trace = %+v, want trace 1", c)
	}
	if c2 := s.NewTrace(); c2.Trace != 2 {
		t.Fatalf("second trace = %+v, want trace 2", c2)
	}
	s.ObserveLatencyTrace("serve.latency.hist", 3*time.Millisecond, c)
	h := s.Registry.Histogram("serve.latency.hist", DefLatencyBuckets)
	if h.Count() != 1 {
		t.Fatalf("histogram count = %d", h.Count())
	}
	snap := h.snap("serve.latency.hist")
	var found bool
	for _, b := range snap.Buckets {
		if b.Exemplar != nil {
			found = true
			if b.Exemplar.Trace != 1 {
				t.Errorf("exemplar trace = %d, want 1", b.Exemplar.Trace)
			}
		}
	}
	if !found {
		t.Error("no exemplar recorded")
	}

	// Disabled sessions mint no traces and record nothing.
	s.Disable()
	if c := s.NewTrace(); c.Valid() {
		t.Errorf("disabled NewTrace = %+v, want zero", c)
	}
	s.ObserveLatencyTrace("serve.latency.hist", time.Millisecond, Ctx{Trace: 5})
	if h.Count() != 1 {
		t.Error("disabled session recorded a histogram observation")
	}
	var nilS *Session
	if c := nilS.NewTrace(); c.Valid() {
		t.Error("nil session minted a trace")
	}
	nilS.ObserveLatencyTrace("x", time.Millisecond, Ctx{})
}

func TestCtxHelpers(t *testing.T) {
	var zero Ctx
	if zero.Valid() || zero.String() != "" {
		t.Errorf("zero ctx valid=%v str=%q", zero.Valid(), zero.String())
	}
	c := Ctx{Trace: 0xabc, Baggage: "rank0"}
	if c.String() != "0000000000000abc" {
		t.Errorf("TraceID = %q", c.String())
	}
	child := c.Child(7)
	if child.Trace != c.Trace || child.Span != 7 || child.Baggage != "rank0" {
		t.Errorf("Child = %+v", child)
	}
}
