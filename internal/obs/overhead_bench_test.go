package obs_test

// Overhead benchmark for the instrumentation layer: trains the same small
// network three ways — no session (the seed configuration), a disabled
// session, and a fully enabled session — so the cost of the disabled path
// (one atomic check per instrumentation point) can be compared against the
// uninstrumented baseline. ISSUE acceptance: disabled overhead <= 2%.
//
// Run: go test ./internal/obs -bench Overhead -benchtime 2s
// The steps/sec numbers for BENCH_obs.json come from this benchmark.

import (
	"testing"

	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// benchProblem builds a fixed small classification problem.
func benchProblem() (*tensor.Tensor, *tensor.Tensor) {
	const n, din, classes = 256, 64, 4
	r := rng.New(7)
	x := tensor.New(n, din)
	x.FillRandNorm(r.Split("x"), 1)
	labels := make([]int, n)
	for i := range labels {
		labels[i] = i % classes
	}
	return x, nn.OneHot(labels, classes)
}

// benchTrain runs one full epoch per iteration and reports steps/sec.
func benchTrain(b *testing.B, sess *obs.Session) {
	x, y := benchProblem()
	net := nn.MLP(64, []int{128}, 4, nn.ReLU, rng.New(7))
	cfg := nn.TrainConfig{
		Loss: nn.SoftmaxCELoss{}, Optimizer: nn.NewSGD(0.01),
		BatchSize: 32, Epochs: 1, Obs: sess,
	}
	b.ResetTimer()
	steps := 0
	for i := 0; i < b.N; i++ {
		res, err := nn.Train(net, x, y, cfg)
		if err != nil {
			b.Fatal(err)
		}
		steps += res.Steps
	}
	b.ReportMetric(float64(steps)/b.Elapsed().Seconds(), "steps/sec")
}

func BenchmarkTrainOverheadNone(b *testing.B)     { benchTrain(b, nil) }
func BenchmarkTrainOverheadDisabled(b *testing.B) { benchTrain(b, disabledSession()) }
func BenchmarkTrainOverheadEnabled(b *testing.B)  { benchTrain(b, obs.NewSession()) }

func disabledSession() *obs.Session {
	s := obs.NewSession()
	s.Disable()
	return s
}
