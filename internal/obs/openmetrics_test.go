package obs

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestOpenMetricsGolden pins the exact exposition bytes (family order,
// sanitised names, suffixes, exemplar syntax, EOF terminator) against a
// golden file. Regenerate with -update.
func TestOpenMetricsGolden(t *testing.T) {
	s := NewSession()
	s.Count("serve.submitted", 42)
	s.Count("serve.shed", 3)
	s.SetGauge("pool.live_replicas", 4)
	s.Observe("serve.latency", 10*time.Millisecond)
	s.Observe("serve.latency", 20*time.Millisecond)
	s.ObserveLatencyTrace("serve.latency.hist", 3*time.Millisecond, Ctx{Trace: 0xbeef})
	s.ObserveLatencyTrace("serve.latency.hist", 700*time.Millisecond, Ctx{Trace: 0xcafe})
	s.Registry.Histogram("serve.latency.hist", nil).Observe(0.004) // no exemplar

	var buf bytes.Buffer
	if err := s.WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "openmetrics.golden")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run: go test ./internal/obs -run OpenMetrics -update)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("openmetrics drifted from golden file:\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}

	// Format contract independent of the golden bytes.
	out := buf.String()
	for _, want := range []string{
		"# TYPE serve_submitted counter\n",
		"serve_submitted_total 42\n",
		"# TYPE pool_live_replicas gauge\n",
		"# TYPE serve_latency_seconds summary\n",
		`serve_latency_seconds{quantile="0.5"}`,
		"# TYPE serve_latency_hist_seconds histogram\n",
		`serve_latency_hist_seconds_bucket{le="0.005"} 2 # {trace_id="000000000000beef"} 0.003`,
		`serve_latency_hist_seconds_bucket{le="+Inf"} 3`,
		"serve_latency_hist_seconds_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if !strings.HasSuffix(out, "# EOF\n") {
		t.Error("output must end with # EOF")
	}
}

func TestOpenMetricsEmptyRegistry(t *testing.T) {
	var buf bytes.Buffer
	if err := NewRegistry().WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "# EOF\n" {
		t.Errorf("empty registry = %q, want just EOF", buf.String())
	}
}

// TestOpenMetricsEmptyTimer checks that a zero-count summary emits no
// quantile samples (their value would be meaningless) but keeps sum/count.
func TestOpenMetricsEmptyTimer(t *testing.T) {
	r := NewRegistry()
	r.Timer("idle")
	var buf bytes.Buffer
	if err := r.WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "quantile") {
		t.Errorf("empty timer emitted quantiles:\n%s", out)
	}
	if !strings.Contains(out, "idle_seconds_count 0\n") {
		t.Errorf("empty timer missing count:\n%s", out)
	}
}

func TestSanitizeMetricName(t *testing.T) {
	for in, want := range map[string]string{
		"serve.latency":    "serve_latency",
		"comm.ring-algo":   "comm_ring_algo",
		"9lives":           "_9lives",
		"already_ok:colon": "already_ok:colon",
	} {
		if got := sanitizeMetricName(in); got != want {
			t.Errorf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestFormatOMValue(t *testing.T) {
	for _, tc := range []struct {
		v    float64
		want string
	}{
		{math.Inf(1), "+Inf"},
		{math.Inf(-1), "-Inf"},
		{math.NaN(), "NaN"},
		{0.25, "0.25"},
		{3, "3"},
	} {
		if got := formatOMValue(tc.v); got != tc.want {
			t.Errorf("formatOMValue(%g) = %q, want %q", tc.v, got, tc.want)
		}
	}
}

// TestFlowAndInstantEvents checks the Chrome-trace shapes of the new event
// kinds: flow s/f pairs carry an id and bp=e on the finish, instants carry
// thread scope; none of them touch the per-tid span stacks.
func TestFlowAndInstantEvents(t *testing.T) {
	s := NewSession()
	s.clock = fakeClock()
	outer := s.Span(0, "outer")
	s.Instant(0, "marker", Ctx{Trace: 5})
	s.FlowBegin(5, 0, "hedge")
	s.FlowEnd(5, 1, "hedge")
	inner := s.Span(0, "inner")
	inner.End()
	outer.End()

	byName := map[string][]chromeEvent{}
	for _, ev := range s.Tracer.events {
		byName[ev.Name] = append(byName[ev.Name], ev)
	}
	if evs := byName["marker"]; len(evs) != 1 || evs[0].Ph != "i" || evs[0].S != "t" {
		t.Errorf("instant = %+v", evs)
	} else if evs[0].Args["trace"] != TraceID(5) {
		t.Errorf("instant trace arg = %v", evs[0].Args)
	}
	flows := byName["hedge"]
	if len(flows) != 2 {
		t.Fatalf("flow events = %+v", flows)
	}
	if flows[0].Ph != "s" || flows[0].ID != 5 || flows[0].BP != "" {
		t.Errorf("flow start = %+v", flows[0])
	}
	if flows[1].Ph != "f" || flows[1].ID != 5 || flows[1].BP != "e" || flows[1].TID != 1 {
		t.Errorf("flow finish = %+v", flows[1])
	}
	// Flow/instant events must not become span parents: inner's parent is
	// outer, not any of the marker events.
	for _, ev := range s.Tracer.events {
		if ev.Name == "inner" && ev.Args["parent"] != uint64(1) {
			t.Errorf("inner parent = %v, want 1 (outer)", ev.Args["parent"])
		}
	}

	var nilS *Session
	nilS.Instant(0, "x", Ctx{})
	nilS.FlowBegin(1, 0, "x")
	nilS.FlowEnd(1, 0, "x")
}
