package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// FlightRecorder is a bounded ring buffer of structured events — the
// "black box" of the serving and campaign layers. Subsystems record cheap
// one-line events (a request admitted, a batch dispatched, a replica
// ejected) continuously; the ring keeps only the last N, so the recorder
// costs O(1) memory no matter how long the run. When an event whose kind is
// registered as a trigger fires (a fault, an ejection, a quarantine), the
// recorder snapshots the whole ring into a dump: the complete recent
// history leading up to the incident, with trace ids to cross-reference
// against exemplars and span traces.
type FlightRecorder struct {
	mu       sync.Mutex
	capacity int
	buf      []FlightEvent // ring, oldest overwritten first
	start    int           // index of the oldest event
	n        int           // events currently in the ring
	seq      int64
	triggers map[string]bool
	dumps    []FlightDump
	maxDumps int
}

// FlightEvent is one recorded event.
type FlightEvent struct {
	// Seq is the global event sequence number (never resets, so a dump
	// shows how much history the ring has already shed).
	Seq int64 `json:"seq"`
	// T is seconds since the session (or recorder's driver) started.
	T float64 `json:"t"`
	// Kind names the event ("admit", "replica_ejected", "quarantine", ...).
	Kind string `json:"kind"`
	// Trace is the trace id of the request involved, 0 if none.
	Trace uint64 `json:"trace,omitempty"`
	// Detail is a short free-form annotation.
	Detail string `json:"detail,omitempty"`
}

// FlightDump is one triggered snapshot of the ring.
type FlightDump struct {
	// Reason is the kind of the event that triggered the dump.
	Reason string `json:"reason"`
	// At is the trigger event's timestamp.
	At float64 `json:"at"`
	// Events is the ring content at trigger time, oldest first (the
	// trigger event itself is last).
	Events []FlightEvent `json:"events"`
}

// defaultFlightCap bounds the ring; defaultMaxDumps bounds how many
// triggered snapshots are kept (later triggers past the cap are counted in
// the events but not snapshotted, so a trigger storm cannot exhaust memory).
const (
	defaultFlightCap = 256
	defaultMaxDumps  = 8
)

// NewFlightRecorder creates a recorder holding the last capacity events
// (<=0 selects the default of 256).
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = defaultFlightCap
	}
	return &FlightRecorder{
		capacity: capacity,
		buf:      make([]FlightEvent, capacity),
		triggers: map[string]bool{},
		maxDumps: defaultMaxDumps,
	}
}

// TriggerOn registers event kinds that snapshot the ring when recorded.
func (f *FlightRecorder) TriggerOn(kinds ...string) {
	if f == nil {
		return
	}
	f.mu.Lock()
	for _, k := range kinds {
		f.triggers[k] = true
	}
	f.mu.Unlock()
}

// RecordAt appends one event with an explicit timestamp (seconds). Drivers
// on a virtual clock pass virtual time so dumps are deterministic.
func (f *FlightRecorder) RecordAt(t float64, kind string, trace uint64, detail string) {
	if f == nil {
		return
	}
	f.mu.Lock()
	ev := FlightEvent{Seq: f.seq, T: t, Kind: kind, Trace: trace, Detail: detail}
	f.seq++
	i := (f.start + f.n) % f.capacity
	f.buf[i] = ev
	if f.n < f.capacity {
		f.n++
	} else {
		f.start = (f.start + 1) % f.capacity
	}
	if f.triggers[kind] && len(f.dumps) < f.maxDumps {
		f.dumps = append(f.dumps, FlightDump{Reason: kind, At: t, Events: f.eventsLocked()})
	}
	f.mu.Unlock()
}

// eventsLocked copies the ring oldest-first.
func (f *FlightRecorder) eventsLocked() []FlightEvent {
	out := make([]FlightEvent, f.n)
	for i := 0; i < f.n; i++ {
		out[i] = f.buf[(f.start+i)%f.capacity]
	}
	return out
}

// Events returns the current ring content, oldest first.
func (f *FlightRecorder) Events() []FlightEvent {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.eventsLocked()
}

// Dumps returns the triggered snapshots in trigger order.
func (f *FlightRecorder) Dumps() []FlightDump {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]FlightDump(nil), f.dumps...)
}

// Seq returns the total number of events ever recorded (recorded minus
// retained = shed by the ring).
func (f *FlightRecorder) Seq() int64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.seq
}

// WriteJSON writes the ring and every dump as one JSON document.
func (f *FlightRecorder) WriteJSON(w io.Writer) error {
	if f == nil {
		return fmt.Errorf("obs: nil flight recorder")
	}
	f.mu.Lock()
	doc := struct {
		Recorded int64         `json:"recorded"`
		Events   []FlightEvent `json:"events"`
		Dumps    []FlightDump  `json:"dumps,omitempty"`
	}{f.seq, f.eventsLocked(), append([]FlightDump(nil), f.dumps...)}
	f.mu.Unlock()
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: flight dump: %w", err)
	}
	enc = append(enc, '\n')
	_, err = w.Write(enc)
	return err
}

// RecordFlight appends one event to the session's flight recorder with the
// session clock's timestamp. No-op when disabled.
func (s *Session) RecordFlight(kind string, c Ctx, detail string) {
	if !s.Enabled() {
		return
	}
	s.Flight.RecordAt(s.clock().Seconds(), kind, c.Trace, detail)
}
