package obs

import "fmt"

// Ctx is a request-scoped trace context: a trace id minted at the edge of
// the system (request admission, training step start) and carried through
// every layer the request touches — batcher, replica, hedge duplicate,
// gradient bucket — so a latency-histogram exemplar or a flight-recorder
// event can point back at the exact trace that produced it.
//
// Ctx is a small value type passed by copy; the zero Ctx is "no trace" and
// every consumer treats it as absent. Trace ids are allocated from a
// session-scoped counter, not randomness, so a deterministic driver (the
// discrete-event load simulator, a VirtualClock test) produces the same ids
// on every run.
type Ctx struct {
	// Trace identifies the request end to end; 0 means no trace.
	Trace uint64
	// Span is the parent span id inside the trace (0 = the root).
	Span uint64
	// Baggage is a small free-form annotation propagated with the context
	// (e.g. the workload name or priority class). Keep it short: it is
	// copied into span args and flight events verbatim.
	Baggage string
}

// Valid reports whether the context carries a trace.
func (c Ctx) Valid() bool { return c.Trace != 0 }

// String renders the trace id the way exemplars and flight dumps do.
func (c Ctx) String() string {
	if !c.Valid() {
		return ""
	}
	return TraceID(c.Trace)
}

// Child returns the same trace with a new parent span id.
func (c Ctx) Child(span uint64) Ctx { return Ctx{Trace: c.Trace, Span: span, Baggage: c.Baggage} }

// TraceID formats a trace id as the fixed-width hex string used in
// OpenMetrics exemplars and Chrome-trace args.
func TraceID(id uint64) string { return fmt.Sprintf("%016x", id) }

// NewTrace mints the next trace context from the session's counter.
// Returns the zero Ctx when the session is disabled, so callers can pass
// the result down unconditionally.
func (s *Session) NewTrace() Ctx {
	if !s.Enabled() {
		return Ctx{}
	}
	return Ctx{Trace: s.nextTrace.Add(1)}
}
