package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"
)

func TestFlightRingWrap(t *testing.T) {
	f := NewFlightRecorder(4)
	for i := 0; i < 10; i++ {
		f.RecordAt(float64(i), fmt.Sprintf("ev%d", i), uint64(i), "")
	}
	if f.Seq() != 10 {
		t.Errorf("seq = %d, want 10", f.Seq())
	}
	evs := f.Events()
	if len(evs) != 4 {
		t.Fatalf("ring holds %d, want 4", len(evs))
	}
	for i, ev := range evs {
		want := int64(6 + i) // oldest-first: ev6..ev9
		if ev.Seq != want || ev.Kind != fmt.Sprintf("ev%d", want) {
			t.Errorf("ring[%d] = %+v, want seq %d", i, ev, want)
		}
	}
}

func TestFlightTriggerDumps(t *testing.T) {
	f := NewFlightRecorder(8)
	f.TriggerOn("boom")
	f.RecordAt(0, "admit", 1, "")
	f.RecordAt(1, "admit", 2, "")
	f.RecordAt(2, "boom", 2, "replica=0")
	f.RecordAt(3, "admit", 3, "")
	dumps := f.Dumps()
	if len(dumps) != 1 {
		t.Fatalf("dumps = %d, want 1", len(dumps))
	}
	d := dumps[0]
	if d.Reason != "boom" || d.At != 2 {
		t.Errorf("dump header = %+v", d)
	}
	if len(d.Events) != 3 || d.Events[len(d.Events)-1].Kind != "boom" {
		t.Errorf("dump events = %+v, want 3 ending in boom", d.Events)
	}
	// The post-trigger event is not in the dump but is in the ring.
	if evs := f.Events(); len(evs) != 4 {
		t.Errorf("ring = %d, want 4", len(evs))
	}
}

func TestFlightDumpCap(t *testing.T) {
	f := NewFlightRecorder(4)
	f.maxDumps = 2
	f.TriggerOn("boom")
	for i := 0; i < 5; i++ {
		f.RecordAt(float64(i), "boom", 0, "")
	}
	if got := len(f.Dumps()); got != 2 {
		t.Errorf("dumps = %d, want capped at 2", got)
	}
	if f.Seq() != 5 {
		t.Errorf("seq = %d; capped dumps must not drop events", f.Seq())
	}
}

func TestFlightWriteJSON(t *testing.T) {
	f := NewFlightRecorder(4)
	f.TriggerOn("fault")
	f.RecordAt(0.5, "admit", 7, "q=3")
	f.RecordAt(1.5, "fault", 7, "")
	var buf bytes.Buffer
	if err := f.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Recorded int64         `json:"recorded"`
		Events   []FlightEvent `json:"events"`
		Dumps    []FlightDump  `json:"dumps"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if doc.Recorded != 2 || len(doc.Events) != 2 || len(doc.Dumps) != 1 {
		t.Errorf("doc = %+v", doc)
	}
	if doc.Events[0].Trace != 7 || doc.Events[0].Detail != "q=3" {
		t.Errorf("event = %+v", doc.Events[0])
	}
}

func TestFlightNilSafe(t *testing.T) {
	var f *FlightRecorder
	f.TriggerOn("x")
	f.RecordAt(0, "x", 0, "")
	if f.Events() != nil || f.Dumps() != nil || f.Seq() != 0 {
		t.Error("nil recorder returned data")
	}
	if err := f.WriteJSON(&bytes.Buffer{}); err == nil {
		t.Error("nil recorder WriteJSON should error")
	}
}

func TestSessionRecordFlight(t *testing.T) {
	s := NewSession()
	s.clock = fakeClock()
	s.RecordFlight("shed", Ctx{Trace: 3}, "queue full")
	evs := s.Flight.Events()
	if len(evs) != 1 || evs[0].Kind != "shed" || evs[0].Trace != 3 {
		t.Fatalf("events = %+v", evs)
	}

	s.Disable()
	s.RecordFlight("shed", Ctx{}, "")
	if len(s.Flight.Events()) != 1 {
		t.Error("disabled session recorded a flight event")
	}
	var nilS *Session
	nilS.RecordFlight("shed", Ctx{}, "") // must not panic
}
