package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Objective is one declarative service-level objective: a target fraction
// of "good" events over all events. Two flavours:
//
//   - availability: good/total events are fed directly via Record (or bound
//     to registry counters with GoodCounter/TotalCounter);
//   - latency: an event is good when its latency is <= Latency seconds, fed
//     via RecordLatency (or bound to a registry histogram with Histogram —
//     good = CountBelow(Latency), total = Count).
//
// Targets are fractions like 0.999 ("three nines"). The error budget is
// 1-Target; burn rate is how fast the budget is being consumed relative to
// steady exact-target burn (burn 1 = budget exhausts exactly at window end).
type Objective struct {
	Name    string  `json:"name"`
	Target  float64 `json:"target"`
	Latency float64 `json:"latency,omitempty"` // seconds; >0 marks a latency objective

	// Optional registry bindings used by TickFromRegistry.
	GoodCounter  string `json:"good_counter,omitempty"`
	TotalCounter string `json:"total_counter,omitempty"`
	Histogram    string `json:"histogram,omitempty"`
}

// BurnRule is one multi-window burn-rate alert rule: fire when the burn
// rate over BOTH the long and the short window is at least Factor. The long
// window gives the alert its significance (enough budget actually burned);
// the short window makes it resolve quickly once the incident stops.
type BurnRule struct {
	Name   string        `json:"name"`
	Long   time.Duration `json:"long"`
	Short  time.Duration `json:"short"`
	Factor float64       `json:"factor"`
}

// DefaultBurnRules is the classic two-rule page configuration (Google SRE
// workbook): a fast rule catching sharp burns and a slow rule catching
// sustained moderate burns. Deterministic simulations with seconds-scale
// runs should pass rules with proportionally scaled windows instead.
func DefaultBurnRules() []BurnRule {
	return []BurnRule{
		{Name: "fast", Long: time.Hour, Short: 5 * time.Minute, Factor: 14.4},
		{Name: "slow", Long: 6 * time.Hour, Short: 30 * time.Minute, Factor: 6},
	}
}

// ScaledBurnRules returns the default two rules with windows scaled so the
// "fast" long window equals horizon — the right shape for a simulated run
// that lasts seconds instead of days.
func ScaledBurnRules(horizon time.Duration) []BurnRule {
	return []BurnRule{
		{Name: "fast", Long: horizon, Short: horizon / 12, Factor: 14.4},
		{Name: "slow", Long: 6 * horizon, Short: horizon / 2, Factor: 6},
	}
}

// AlertEvent is one transition in the alert timeline.
type AlertEvent struct {
	T         float64 `json:"t"` // seconds
	Objective string  `json:"objective"`
	Rule      string  `json:"rule"`
	State     string  `json:"state"` // "fire" or "resolve"
	BurnLong  float64 `json:"burn_long"`
	BurnShort float64 `json:"burn_short"`
}

// SLOStatus is the end-of-run summary for one objective.
type SLOStatus struct {
	Objective string  `json:"objective"`
	Target    float64 `json:"target"`
	Good      uint64  `json:"good"`
	Total     uint64  `json:"total"`
	Ratio     float64 `json:"ratio"`
	Met       bool    `json:"met"`
}

// sloSample is one cumulative (good, total) observation at time t.
type sloSample struct {
	t           float64
	good, total uint64
}

// objState is the monitor's per-objective bookkeeping.
type objState struct {
	obj         Objective
	good, total uint64      // live cumulative counts (Record*)
	samples     []sloSample // one per Tick
	firing      map[string]bool
}

// SLOMonitor evaluates burn-rate rules over a set of objectives on an
// explicit clock: the driver calls Record/RecordLatency as events happen
// and Tick(t) at a fixed cadence. Time is whatever the driver says it is —
// the load simulator passes virtual seconds, so two runs with the same seed
// produce byte-identical alert timelines. A nil *SLOMonitor is a valid
// disabled monitor: every method no-ops.
type SLOMonitor struct {
	mu       sync.Mutex
	objs     []*objState
	byName   map[string]*objState
	rules    []BurnRule
	timeline []AlertEvent
}

// NewSLOMonitor creates a monitor over the given objectives and rules.
// Returns nil (a valid disabled monitor) when objectives are empty.
func NewSLOMonitor(objs []Objective, rules []BurnRule) *SLOMonitor {
	if len(objs) == 0 {
		return nil
	}
	if len(rules) == 0 {
		rules = DefaultBurnRules()
	}
	m := &SLOMonitor{byName: map[string]*objState{}, rules: rules}
	for _, o := range objs {
		st := &objState{obj: o, firing: map[string]bool{}}
		m.objs = append(m.objs, st)
		m.byName[o.Name] = st
	}
	return m
}

// Record counts one event against the named objective.
func (m *SLOMonitor) Record(obj string, good bool) {
	if m == nil {
		return
	}
	m.mu.Lock()
	if st := m.byName[obj]; st != nil {
		st.total++
		if good {
			st.good++
		}
	}
	m.mu.Unlock()
}

// RecordAvailability counts one event against every availability objective
// (those without a latency threshold or registry binding).
func (m *SLOMonitor) RecordAvailability(good bool) {
	if m == nil {
		return
	}
	m.mu.Lock()
	for _, st := range m.objs {
		o := st.obj
		if o.Latency > 0 || o.Histogram != "" || o.GoodCounter != "" {
			continue
		}
		st.total++
		if good {
			st.good++
		}
	}
	m.mu.Unlock()
}

// RecordLatency counts one latency observation against every latency
// objective: good when seconds <= the objective's threshold.
func (m *SLOMonitor) RecordLatency(seconds float64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	for _, st := range m.objs {
		if st.obj.Latency <= 0 {
			continue
		}
		st.total++
		if seconds <= st.obj.Latency {
			st.good++
		}
	}
	m.mu.Unlock()
}

// Tick snapshots cumulative counts at time t (seconds) and evaluates every
// rule, appending fire/resolve transitions to the timeline. Call at a fixed
// cadence with monotonically non-decreasing t.
func (m *SLOMonitor) Tick(t float64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	for _, st := range m.objs {
		st.samples = append(st.samples, sloSample{t: t, good: st.good, total: st.total})
		m.evaluateLocked(st, t)
	}
	m.mu.Unlock()
}

// TickFromRegistry reads each objective's registry bindings (counters or
// histogram), overwrites its cumulative counts, then ticks at t. Use when
// the signal already lives in the registry instead of flowing through
// Record.
func (m *SLOMonitor) TickFromRegistry(t float64, r *Registry) {
	if m == nil || r == nil {
		return
	}
	m.mu.Lock()
	for _, st := range m.objs {
		o := st.obj
		switch {
		case o.Histogram != "" && o.Latency > 0:
			h := r.Histogram(o.Histogram, DefLatencyBuckets)
			st.good, st.total = h.CountBelow(o.Latency), h.Count()
		case o.GoodCounter != "" && o.TotalCounter != "":
			st.good = uint64(r.Counter(o.GoodCounter).Value())
			st.total = uint64(r.Counter(o.TotalCounter).Value())
		}
		st.samples = append(st.samples, sloSample{t: t, good: st.good, total: st.total})
		m.evaluateLocked(st, t)
	}
	m.mu.Unlock()
}

// burnLocked computes the burn rate over the trailing window ending at the
// latest sample: (bad fraction in window) / (1 - target). A window reaching
// past the first sample is measured from a zero baseline (the whole run so
// far), which is the natural behaviour at run start.
func (st *objState) burnLocked(t, window float64) float64 {
	if len(st.samples) == 0 {
		return 0
	}
	last := st.samples[len(st.samples)-1]
	cutoff := t - window
	// Latest sample with sample.t <= cutoff is the window's baseline.
	var base sloSample
	i := sort.Search(len(st.samples), func(i int) bool { return st.samples[i].t > cutoff })
	if i > 0 {
		base = st.samples[i-1]
	}
	total := last.total - base.total
	if total == 0 {
		return 0
	}
	bad := float64((last.total - last.good) - (base.total - base.good))
	budget := 1 - st.obj.Target
	if budget <= 0 {
		budget = 1e-9
	}
	return (bad / float64(total)) / budget
}

// evaluateLocked runs every rule against st at time t.
func (m *SLOMonitor) evaluateLocked(st *objState, t float64) {
	for _, rule := range m.rules {
		bl := st.burnLocked(t, rule.Long.Seconds())
		bs := st.burnLocked(t, rule.Short.Seconds())
		cond := bl >= rule.Factor && bs >= rule.Factor
		switch {
		case cond && !st.firing[rule.Name]:
			st.firing[rule.Name] = true
			m.timeline = append(m.timeline, AlertEvent{T: t, Objective: st.obj.Name,
				Rule: rule.Name, State: "fire", BurnLong: bl, BurnShort: bs})
		case !cond && st.firing[rule.Name]:
			st.firing[rule.Name] = false
			m.timeline = append(m.timeline, AlertEvent{T: t, Objective: st.obj.Name,
				Rule: rule.Name, State: "resolve", BurnLong: bl, BurnShort: bs})
		}
	}
}

// Timeline returns the fire/resolve transitions in order.
func (m *SLOMonitor) Timeline() []AlertEvent {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]AlertEvent(nil), m.timeline...)
}

// Firing returns the currently firing "objective/rule" pairs, sorted.
func (m *SLOMonitor) Firing() []string {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []string
	for _, st := range m.objs {
		for rule, on := range st.firing {
			if on {
				out = append(out, st.obj.Name+"/"+rule)
			}
		}
	}
	sort.Strings(out)
	return out
}

// Status summarises each objective's cumulative compliance.
func (m *SLOMonitor) Status() []SLOStatus {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]SLOStatus, 0, len(m.objs))
	for _, st := range m.objs {
		s := SLOStatus{Objective: st.obj.Name, Target: st.obj.Target,
			Good: st.good, Total: st.total}
		if st.total > 0 {
			s.Ratio = float64(st.good) / float64(st.total)
		}
		s.Met = st.total == 0 || s.Ratio >= st.obj.Target
		out = append(out, s)
	}
	return out
}

// WriteTimeline writes the alert timeline as deterministic text, one line
// per transition, suitable for golden-file comparison.
func (m *SLOMonitor) WriteTimeline(w io.Writer) error {
	if m == nil {
		_, err := io.WriteString(w, "# no slo monitor\n")
		return err
	}
	return WriteAlertTimeline(w, m.Timeline())
}

// WriteAlertTimeline renders a slice of alert transitions as deterministic
// text (the golden-file format the E14 experiment byte-compares).
func WriteAlertTimeline(w io.Writer, timeline []AlertEvent) error {
	var b strings.Builder
	if len(timeline) == 0 {
		b.WriteString("# no alerts\n")
	}
	for _, ev := range timeline {
		fmt.Fprintf(&b, "t=%08.3fs %-7s %s/%s burn_long=%.2f burn_short=%.2f\n",
			ev.T, strings.ToUpper(ev.State), ev.Objective, ev.Rule, ev.BurnLong, ev.BurnShort)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// ParseSLOSpec parses a compact objective spec like
// "avail=0.999,p99=25ms" or "p99=25ms@0.99":
//
//   - "avail=<target>" declares an availability objective;
//   - "p99=<duration>[@target]" declares a latency objective whose good
//     events complete within the duration (target defaults to 0.99).
//
// Registry bindings are left empty; callers wire them to their own series.
func ParseSLOSpec(spec string) ([]Objective, error) {
	var out []Objective
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("obs: slo spec %q: want key=value", part)
		}
		switch k {
		case "avail":
			var target float64
			if _, err := fmt.Sscanf(v, "%g", &target); err != nil || target <= 0 || target >= 1 {
				return nil, fmt.Errorf("obs: slo spec %q: bad availability target", part)
			}
			out = append(out, Objective{Name: "availability", Target: target})
		case "p99":
			target := 0.99
			durStr := v
			if ds, ts, ok := strings.Cut(v, "@"); ok {
				durStr = ds
				if _, err := fmt.Sscanf(ts, "%g", &target); err != nil || target <= 0 || target >= 1 {
					return nil, fmt.Errorf("obs: slo spec %q: bad latency target", part)
				}
			}
			d, err := time.ParseDuration(durStr)
			if err != nil || d <= 0 {
				return nil, fmt.Errorf("obs: slo spec %q: bad latency threshold", part)
			}
			out = append(out, Objective{Name: "latency_p99", Target: target, Latency: d.Seconds()})
		default:
			return nil, fmt.Errorf("obs: slo spec %q: unknown key (want avail or p99)", part)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("obs: empty slo spec")
	}
	return out, nil
}
