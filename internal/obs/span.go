package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Tracer records hierarchical spans and exports them as a Chrome trace
// (chrome://tracing / Perfetto "complete" events). Spans are cheap: one
// mutex acquisition at start and one at end. Each tid (rank, worker, stage)
// must be driven by a single goroutine at a time so parent inference from
// the per-tid open-span stack is well defined.
type Tracer struct {
	mu        sync.Mutex
	events    []chromeEvent
	dropped   int
	maxEvents int
	nextID    uint64
	open      map[int][]uint64 // per-tid stack of open span ids
}

// defaultMaxEvents caps trace memory; past it spans are counted but dropped.
const defaultMaxEvents = 1 << 20

// NewTracer creates an empty tracer.
func NewTracer() *Tracer {
	return &Tracer{maxEvents: defaultMaxEvents, open: map[int][]uint64{}}
}

// chromeEvent is one Chrome-trace event: "complete" (ph=X) spans, "instant"
// (ph=i) markers, and flow arrows (ph=s/f). Timestamps and durations are
// microseconds, per the trace-event format. ID/BP/S only apply to flow and
// instant events and must stay omitempty so span-only traces keep their
// historical byte-for-byte shape.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	ID   uint64         `json:"id,omitempty"` // flow binding id
	BP   string         `json:"bp,omitempty"` // flow binding point ("e")
	S    string         `json:"s,omitempty"`  // instant scope ("t")
	Args map[string]any `json:"args,omitempty"`
}

// Span is one in-flight timed region. A nil *Span is inert: End and SetArg
// on it are no-ops, so callers never need to check whether tracing is on.
type Span struct {
	tracer *Tracer
	clock  func() time.Duration
	tid    int
	name   string
	cat    string
	id     uint64
	parent uint64
	start  time.Duration
	args   map[string]any
}

// begin opens a span on tid; parent is the innermost open span on that tid.
func (t *Tracer) begin(clock func() time.Duration, tid int, name, cat string) *Span {
	t.mu.Lock()
	t.nextID++
	id := t.nextID
	var parent uint64
	if stack := t.open[tid]; len(stack) > 0 {
		parent = stack[len(stack)-1]
	}
	t.open[tid] = append(t.open[tid], id)
	t.mu.Unlock()
	return &Span{tracer: t, clock: clock, tid: tid, name: name, cat: cat,
		id: id, parent: parent, start: clock()}
}

// SetArg attaches a key/value to the span (shown in the trace viewer).
// Call only from the goroutine that started the span.
func (sp *Span) SetArg(key string, value any) {
	if sp == nil {
		return
	}
	if sp.args == nil {
		sp.args = map[string]any{}
	}
	sp.args[key] = value
}

// End closes the span and records its event. Safe on a nil span.
func (sp *Span) End() {
	if sp == nil {
		return
	}
	end := sp.clock()
	t := sp.tracer
	args := sp.args
	if args == nil {
		args = map[string]any{}
	}
	args["id"] = sp.id
	if sp.parent != 0 {
		args["parent"] = sp.parent
	}
	ev := chromeEvent{
		Name: sp.name, Cat: sp.cat, Ph: "X",
		TS:  float64(sp.start) / float64(time.Microsecond),
		Dur: float64(end-sp.start) / float64(time.Microsecond),
		PID: 1, TID: sp.tid, Args: args,
	}
	t.mu.Lock()
	// Pop this span from its tid stack (it is normally the top; search down
	// to stay correct if spans end out of order).
	stack := t.open[sp.tid]
	for i := len(stack) - 1; i >= 0; i-- {
		if stack[i] == sp.id {
			t.open[sp.tid] = append(stack[:i], stack[i+1:]...)
			break
		}
	}
	if len(t.events) < t.maxEvents {
		t.events = append(t.events, ev)
	} else {
		t.dropped++
	}
	t.mu.Unlock()
}

// record appends one ready-made event, honouring the event cap. Unlike
// spans, instant and flow events never touch the per-tid open stacks, so
// they are safe to emit from any goroutine.
func (t *Tracer) record(ev chromeEvent) {
	t.mu.Lock()
	if len(t.events) < t.maxEvents {
		t.events = append(t.events, ev)
	} else {
		t.dropped++
	}
	t.mu.Unlock()
}

// instant records a thread-scoped instant marker; a valid Ctx is attached
// as a trace arg.
func (t *Tracer) instant(clock func() time.Duration, tid int, name string, c Ctx) {
	ev := chromeEvent{
		Name: name, Cat: "obs", Ph: "i",
		TS:  float64(clock()) / float64(time.Microsecond),
		PID: 1, TID: tid, S: "t",
	}
	if c.Valid() {
		ev.Args = map[string]any{"trace": c.String()}
	}
	t.record(ev)
}

// flow records one endpoint of a flow arrow: ph "s" starts it, ph "f" with
// the same id finishes it (binding point "e" attaches the arrowhead to the
// enclosing slice, the usual convention for request stitching).
func (t *Tracer) flow(clock func() time.Duration, ph string, id uint64, tid int, name string) {
	ev := chromeEvent{
		Name: name, Cat: "flow", Ph: ph,
		TS:  float64(clock()) / float64(time.Microsecond),
		PID: 1, TID: tid, ID: id,
	}
	if ph == "f" {
		ev.BP = "e"
	}
	t.record(ev)
}

// NumEvents returns the number of recorded (not dropped) events.
func (t *Tracer) NumEvents() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Dropped returns how many spans were discarded after the event cap.
func (t *Tracer) Dropped() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// chromeTrace is the exported JSON document shape.
type chromeTrace struct {
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	TraceEvents     []chromeEvent `json:"traceEvents"`
}

// WriteChromeTrace writes all recorded spans as a chrome://tracing-loadable
// JSON object ({"traceEvents": [...]}) with ph/ts/dur/pid/tid fields.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	t.mu.Lock()
	events := append([]chromeEvent(nil), t.events...)
	t.mu.Unlock()
	doc := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: events}
	if doc.TraceEvents == nil {
		doc.TraceEvents = []chromeEvent{}
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: chrome trace: %w", err)
	}
	enc = append(enc, '\n')
	_, err = w.Write(enc)
	return err
}
