package obs

import (
	"strings"
	"testing"
)

// FuzzSLOSpec drives ParseSLOSpec with arbitrary operator input (the -slo
// flag is user-facing in candleserve). Properties: the parser never panics;
// on success every objective is structurally valid — a known kind, a target
// strictly inside (0,1), a positive latency threshold for latency
// objectives — and the parsed spec actually works: a burn-rate monitor built
// from it accepts records and ticks without blowing up.
func FuzzSLOSpec(f *testing.F) {
	for _, seed := range []string{
		"avail=0.999",
		"p99=25ms",
		"p99=25ms@0.99",
		"avail=0.99,p99=10ms",
		"avail=0.999, p99=1s",
		"",
		",",
		"avail=",
		"p99=@",
		"avail=2",
		"avail=-0.5",
		"p99=-5ms",
		"p99=0s",
		"x=1",
		"avail=0.999,,p99=1s",
		"p99=1h@1.5",
		"avail=0.5=0.6",
		"p99=9999999999999999999ns",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		objs, err := ParseSLOSpec(spec)
		if err != nil {
			if len(objs) != 0 {
				t.Fatalf("error %v but %d objectives returned", err, len(objs))
			}
			return
		}
		if len(objs) == 0 {
			t.Fatalf("nil error but no objectives for spec %q", spec)
		}
		for _, o := range objs {
			if o.Name != "availability" && o.Name != "latency_p99" {
				t.Fatalf("spec %q: unknown objective name %q", spec, o.Name)
			}
			if !(o.Target > 0 && o.Target < 1) {
				t.Fatalf("spec %q: target %g outside (0,1)", spec, o.Target)
			}
			if o.Name == "latency_p99" && o.Latency <= 0 {
				t.Fatalf("spec %q: latency objective with threshold %g", spec, o.Latency)
			}
			if o.Name == "availability" && o.Latency != 0 {
				t.Fatalf("spec %q: availability objective carries latency %g", spec, o.Latency)
			}
			if strings.TrimSpace(o.Name) != o.Name {
				t.Fatalf("spec %q: unclean objective name %q", spec, o.Name)
			}
		}
		// A successfully parsed spec must yield a usable monitor.
		m := NewSLOMonitor(objs, DefaultBurnRules())
		if m == nil {
			t.Fatalf("spec %q: nil monitor from valid objectives", spec)
		}
		m.RecordAvailability(true)
		m.RecordAvailability(false)
		m.RecordLatency(0.001)
		m.Tick(1)
		m.Tick(2)
		_ = m.Firing()
	})
}
