package obs_test

// Overhead benchmark for the serving-path instrumentation: replays the same
// deterministic load test three ways — no session, a disabled session, and
// an enabled session — so the cost of the request-scoped tracing call sites
// (trace minting at admission, histogram exemplars on completion, flight
// events on shed) can be compared against the uninstrumented path. ISSUE
// acceptance: disabled overhead <= 2%.
//
// Run: go test ./internal/obs -bench Overhead -benchtime 2s
// (make bench-obs; the numbers for BENCH_obs.json come from these plus the
// training benchmark in overhead_bench_test.go).

import (
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
)

// benchLoadConfig is a fixed sub-knee open-loop profile: nothing shed, so
// every request walks the full admit -> batch -> complete instrumentation
// path.
func benchLoadConfig(sess *obs.Session) serve.LoadConfig {
	return serve.LoadConfig{
		Requests:   4000,
		RatePerSec: 3200, // 80% of the 2x8 pool's 4000 rps capacity
		Replicas:   2,
		MaxBatch:   8,
		MaxLinger:  2 * time.Millisecond,
		QueueCap:   64,
		Seed:       7,
		Obs:        sess,
	}
}

func benchServe(b *testing.B, sess *obs.Session) {
	b.ResetTimer()
	requests := 0
	for i := 0; i < b.N; i++ {
		rep, err := serve.RunLoad(benchLoadConfig(sess))
		if err != nil {
			b.Fatal(err)
		}
		requests += rep.Completed
	}
	b.ReportMetric(float64(requests)/b.Elapsed().Seconds(), "reqs/sec")
}

func BenchmarkServeOverheadNone(b *testing.B)     { benchServe(b, nil) }
func BenchmarkServeOverheadDisabled(b *testing.B) { benchServe(b, disabledSession()) }
func BenchmarkServeOverheadEnabled(b *testing.B)  { benchServe(b, obs.NewSession()) }
