package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Registry is a lock-cheap metrics store: counters and gauges are single
// atomics, timers take one short mutex per observation. Instruments are
// created on first use and live for the registry's lifetime, so hot paths
// should hold on to the returned instrument instead of re-resolving by name.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	timers   map[string]*Timer
	hists    map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		timers:   map[string]*Timer{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Timer returns the named timer, creating it if needed.
func (r *Registry) Timer(name string) *Timer {
	r.mu.RLock()
	t := r.timers[name]
	r.mu.RUnlock()
	if t != nil {
		return t
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if t = r.timers[name]; t == nil {
		t = newTimer()
		r.timers[name] = t
	}
	return t
}

// Histogram returns the named fixed-bucket histogram, creating it with the
// given bounds if needed. The bounds of the first creation win; later calls
// with different bounds get the existing instrument (names identify
// instruments, so one name means one bucket layout).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Counter is a monotonically increasing atomic count.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomically settable float value (last write wins).
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the last stored value (0 before any Set).
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// reservoirSize bounds a timer's sample memory; beyond it, observations
// replace random slots so percentiles stay representative of the whole run.
const reservoirSize = 2048

// Timer aggregates durations: count/sum/min/max exactly, percentiles from a
// bounded reservoir sample.
type Timer struct {
	mu        sync.Mutex
	count     int64
	sum       float64 // seconds
	min, max  float64
	reservoir []float64
	rngState  uint64 // xorshift64 for reservoir replacement
}

func newTimer() *Timer {
	return &Timer{min: math.Inf(1), max: math.Inf(-1), rngState: 0x9e3779b97f4a7c15}
}

// Observe records one duration.
func (t *Timer) Observe(d time.Duration) { t.ObserveSeconds(d.Seconds()) }

// ObserveSeconds records one duration given in seconds.
func (t *Timer) ObserveSeconds(s float64) {
	t.mu.Lock()
	t.count++
	t.sum += s
	if s < t.min {
		t.min = s
	}
	if s > t.max {
		t.max = s
	}
	if len(t.reservoir) < reservoirSize {
		t.reservoir = append(t.reservoir, s)
	} else {
		// Vitter's algorithm R: replace a random slot with probability
		// reservoirSize/count.
		t.rngState ^= t.rngState << 13
		t.rngState ^= t.rngState >> 7
		t.rngState ^= t.rngState << 17
		if j := t.rngState % uint64(t.count); j < reservoirSize {
			t.reservoir[j] = s
		}
	}
	t.mu.Unlock()
}

// TimerStats is a point-in-time summary of one timer (seconds).
type TimerStats struct {
	Name  string  `json:"name"`
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// stats summarises the timer under its lock.
func (t *Timer) stats(name string) TimerStats {
	t.mu.Lock()
	s := TimerStats{Name: name, Count: t.count, Sum: t.sum}
	sample := append([]float64(nil), t.reservoir...)
	t.mu.Unlock()
	if s.Count == 0 {
		return s
	}
	s.Min, s.Max = t.min, t.max
	s.Mean = s.Sum / float64(s.Count)
	sort.Float64s(sample)
	s.P50 = quantile(sample, 0.50)
	s.P95 = quantile(sample, 0.95)
	s.P99 = quantile(sample, 0.99)
	return s
}

// quantile returns the q-th quantile of sorted (nearest-rank with linear
// interpolation between neighbours).
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	if lo >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// CounterSnap is one counter in a snapshot.
type CounterSnap struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeSnap is one gauge in a snapshot.
type GaugeSnap struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// Snapshot is a consistent-enough copy of every instrument (each instrument
// is read atomically; the set is read under the registry lock).
type Snapshot struct {
	Counters []CounterSnap `json:"counters"`
	Gauges   []GaugeSnap   `json:"gauges"`
	Timers   []TimerStats  `json:"timers"`
	Hists    []HistSnap    `json:"histograms,omitempty"`
}

// Snapshot summarises all instruments, sorted by name.
func (r *Registry) Snapshot() *Snapshot {
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	timers := make(map[string]*Timer, len(r.timers))
	for k, v := range r.timers {
		timers[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.RUnlock()

	snap := &Snapshot{}
	for _, name := range sortedKeys(counters) {
		snap.Counters = append(snap.Counters, CounterSnap{name, counters[name].Value()})
	}
	for _, name := range sortedKeys(gauges) {
		snap.Gauges = append(snap.Gauges, GaugeSnap{name, gauges[name].Value()})
	}
	for _, name := range sortedKeys(timers) {
		snap.Timers = append(snap.Timers, timers[name].stats(name))
	}
	for _, name := range sortedKeys(hists) {
		snap.Hists = append(snap.Hists, hists[name].snap(name))
	}
	return snap
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
