package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fakeClock returns a clock that advances 1ms per call, starting at 0.
func fakeClock() func() time.Duration {
	n := 0
	return func() time.Duration {
		d := time.Duration(n) * time.Millisecond
		n++
		return d
	}
}

// TestRegistryConcurrent hammers every instrument kind from many goroutines
// while snapshots are taken concurrently; run with -race.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const perWorker = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("steps").Add(1)
				r.Gauge("loss").Set(float64(i))
				r.Timer("step").ObserveSeconds(float64(i%10) * 1e-3)
				if i%100 == 0 {
					_ = r.Snapshot()
				}
			}
		}(w)
	}
	// Concurrent readers.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_ = r.Snapshot()
			}
		}()
	}
	wg.Wait()

	if got := r.Counter("steps").Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 1 || len(snap.Gauges) != 1 || len(snap.Timers) != 1 {
		t.Fatalf("snapshot sizes = %d/%d/%d, want 1/1/1",
			len(snap.Counters), len(snap.Gauges), len(snap.Timers))
	}
	ts := snap.Timers[0]
	if ts.Count != workers*perWorker {
		t.Errorf("timer count = %d, want %d", ts.Count, workers*perWorker)
	}
	if ts.Min != 0 || ts.Max != float64(9)*1e-3 {
		t.Errorf("timer min/max = %g/%g, want 0/0.009", ts.Min, ts.Max)
	}
}

// TestSessionConcurrent exercises the full session surface (spans on distinct
// tids, hooks, points) under -race.
func TestSessionConcurrent(t *testing.T) {
	s := NewSession()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				sp := s.Span(tid, "work")
				inner := s.Span(tid, "inner")
				inner.End()
				sp.End()
				s.OnStep(i, 0.5, time.Millisecond)
				s.OnCollective("allreduce.ring", 1024, time.Microsecond)
				s.Emit("x", float64(i), nil)
			}
		}(w)
	}
	wg.Wait()
	if got := s.Registry.Counter("train.steps").Value(); got != 8*200 {
		t.Errorf("train.steps = %d, want 1600", got)
	}
	if got := s.Tracer.NumEvents(); got != 8*200*2 {
		t.Errorf("events = %d, want 3200", got)
	}
	if got := s.Registry.Counter("comm.allreduce.ring.bytes").Value(); got != 8*200*1024 {
		t.Errorf("comm bytes = %d", got)
	}
}

func TestTimerPercentiles(t *testing.T) {
	tm := newTimer()
	for i := 1; i <= 100; i++ {
		tm.ObserveSeconds(float64(i))
	}
	s := tm.stats("t")
	if s.Count != 100 || s.Sum != 5050 || s.Min != 1 || s.Max != 100 {
		t.Fatalf("basic stats wrong: %+v", s)
	}
	if math.Abs(s.Mean-50.5) > 1e-12 {
		t.Errorf("mean = %g", s.Mean)
	}
	// Linear interpolation over 1..100: p50 = 50.5, p95 = 95.05, p99 = 99.01.
	if math.Abs(s.P50-50.5) > 1e-9 || math.Abs(s.P95-95.05) > 1e-9 || math.Abs(s.P99-99.01) > 1e-9 {
		t.Errorf("percentiles = %g/%g/%g", s.P50, s.P95, s.P99)
	}
}

func TestTimerReservoirBounded(t *testing.T) {
	tm := newTimer()
	for i := 0; i < 3*reservoirSize; i++ {
		tm.ObserveSeconds(1)
	}
	if len(tm.reservoir) != reservoirSize {
		t.Errorf("reservoir len = %d, want %d", len(tm.reservoir), reservoirSize)
	}
	if tm.count != 3*reservoirSize {
		t.Errorf("count = %d", tm.count)
	}
}

// TestNilSession checks the zero-overhead contract: every method on a nil
// session (and the nil spans it hands out) is a safe no-op.
func TestNilSession(t *testing.T) {
	var s *Session
	if s.Enabled() {
		t.Fatal("nil session reports enabled")
	}
	s.Enable()
	s.Disable()
	s.AddHooks(nil)
	s.Count("x", 1)
	s.SetGauge("x", 1)
	s.Observe("x", time.Second)
	s.Emit("x", 1, nil)
	s.OnStep(0, 0, 0)
	s.OnEpoch(0, 0, 0)
	s.OnCollective("op", 0, 0)
	s.OnEval("x", 0)
	sp := s.Span(0, "nothing")
	if sp != nil {
		t.Fatal("nil session returned a live span")
	}
	sp.SetArg("k", "v")
	sp.End()
	if s.Snapshot() != nil {
		t.Fatal("nil session returned a snapshot")
	}
	if err := s.WriteChromeTrace(&bytes.Buffer{}); err == nil {
		t.Error("nil session WriteChromeTrace should error")
	}
	if err := s.WriteMetricsJSONL(&bytes.Buffer{}); err == nil {
		t.Error("nil session WriteMetricsJSONL should error")
	}
}

func TestDisabledSessionRecordsNothing(t *testing.T) {
	s := NewSession()
	s.Disable()
	s.Count("x", 1)
	s.Observe("x", time.Second)
	s.OnStep(0, 1, time.Second)
	if sp := s.Span(0, "off"); sp != nil {
		t.Error("disabled session returned a live span")
	}
	snap := s.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Timers) != 0 {
		t.Errorf("disabled session recorded: %+v", snap)
	}
	s.Enable()
	s.Count("x", 1)
	if s.Registry.Counter("x").Value() != 1 {
		t.Error("re-enabled session did not record")
	}
}

// TestSpanParents checks parent inference from per-tid open-span stacks and
// isolation between tids.
func TestSpanParents(t *testing.T) {
	s := NewSession()
	s.clock = fakeClock()
	outer := s.Span(0, "outer")
	mid := s.Span(0, "mid")
	other := s.Span(7, "other") // separate tid: no parent
	inner := s.Span(0, "inner")
	inner.End()
	mid.End()
	other.End()
	outer.End()

	events := map[string]chromeEvent{}
	for _, ev := range s.Tracer.events {
		events[ev.Name] = ev
	}
	if p := events["inner"].Args["parent"]; p != uint64(2) {
		t.Errorf("inner parent = %v, want 2 (mid)", p)
	}
	if p := events["mid"].Args["parent"]; p != uint64(1) {
		t.Errorf("mid parent = %v, want 1 (outer)", p)
	}
	if _, has := events["other"].Args["parent"]; has {
		t.Error("span on fresh tid should have no parent")
	}
	if _, has := events["outer"].Args["parent"]; has {
		t.Error("root span should have no parent")
	}
	if events["other"].TID != 7 {
		t.Errorf("other tid = %d, want 7", events["other"].TID)
	}
}

func TestTracerEventCap(t *testing.T) {
	s := NewSession()
	s.Tracer.maxEvents = 3
	for i := 0; i < 5; i++ {
		s.Span(0, "s").End()
	}
	if got := s.Tracer.NumEvents(); got != 3 {
		t.Errorf("events = %d, want 3", got)
	}
	if got := s.Tracer.Dropped(); got != 2 {
		t.Errorf("dropped = %d, want 2", got)
	}
}

// TestChromeTraceGolden pins the exact exported JSON shape (field names,
// nesting, ordering) against a golden file. Regenerate with -update.
func TestChromeTraceGolden(t *testing.T) {
	s := NewSession()
	s.clock = fakeClock()

	epoch := s.Span(0, "epoch")
	epoch.SetArg("epoch", 0)
	fw := s.Span(0, "forward")
	fw.End()
	ar := s.Span(1, "allreduce.ring")
	ar.SetArg("bytes", 4096)
	ar.End()
	epoch.End()

	var buf bytes.Buffer
	if err := s.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run: go test ./internal/obs -run Golden -update)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("chrome trace drifted from golden file:\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}

	// And independently of the golden bytes, assert the format contract:
	// ph=X complete events with ts/dur/pid/tid, microsecond timestamps.
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   *float64       `json:"ts"`
			Dur  *float64       `json:"dur"`
			PID  *int           `json:"pid"`
			TID  *int           `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) != 3 {
		t.Fatalf("events = %d, want 3", len(doc.TraceEvents))
	}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" || ev.TS == nil || ev.Dur == nil || ev.PID == nil || ev.TID == nil {
			t.Errorf("event %q missing required chrome-trace fields", ev.Name)
		}
	}
	// epoch: opened at t=0ms, closed after 5 clock ticks → 5000us duration.
	last := doc.TraceEvents[2]
	if last.Name != "epoch" || *last.TS != 0 || *last.Dur != 5000 {
		t.Errorf("epoch event = %q ts=%v dur=%v, want epoch/0/5000",
			last.Name, *last.TS, *last.Dur)
	}
}

func TestEmptyTraceIsValidJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := NewSession().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"traceEvents": []`) {
		t.Errorf("empty trace should serialise traceEvents as [], got %s", buf.String())
	}
}

// recordingHooks captures forwarded callbacks.
type recordingHooks struct {
	mu    sync.Mutex
	calls []string
}

func (r *recordingHooks) note(s string) {
	r.mu.Lock()
	r.calls = append(r.calls, s)
	r.mu.Unlock()
}
func (r *recordingHooks) OnStep(step int, loss float64, d time.Duration)     { r.note("step") }
func (r *recordingHooks) OnEpoch(epoch int, loss float64, d time.Duration)   { r.note("epoch") }
func (r *recordingHooks) OnCollective(op string, bytes int, d time.Duration) { r.note("coll:" + op) }
func (r *recordingHooks) OnEval(name string, value float64)                  { r.note("eval:" + name) }

func TestHooksForwarding(t *testing.T) {
	s := NewSession()
	rec := &recordingHooks{}
	s.AddHooks(rec)
	s.OnStep(1, 0.1, time.Millisecond)
	s.OnEpoch(0, 0.1, time.Millisecond)
	s.OnCollective("allreduce.tree", 8, time.Millisecond)
	s.OnEval("test.accuracy", 0.9)
	want := []string{"step", "epoch", "coll:allreduce.tree", "eval:test.accuracy"}
	if len(rec.calls) != len(want) {
		t.Fatalf("calls = %v, want %v", rec.calls, want)
	}
	for i := range want {
		if rec.calls[i] != want[i] {
			t.Errorf("call[%d] = %q, want %q", i, rec.calls[i], want[i])
		}
	}
}

// TestMetricsJSONL checks the stream: typed lines, points before summary,
// per-epoch losses present, timer histogram fields populated.
func TestMetricsJSONL(t *testing.T) {
	s := NewSession()
	s.OnEpoch(0, 1.5, 10*time.Millisecond)
	s.OnEpoch(1, 0.7, 12*time.Millisecond)
	s.OnStep(0, 1.2, time.Millisecond)
	s.OnEval("test.accuracy", 0.95)

	var buf bytes.Buffer
	if err := s.WriteMetricsJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	byType := map[string]int{}
	var epochLosses []float64
	var timerNames []string
	for _, line := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("invalid JSONL line %q: %v", line, err)
		}
		typ, _ := m["type"].(string)
		byType[typ]++
		if typ == "point" && m["name"] == "epoch.loss" {
			epochLosses = append(epochLosses, m["value"].(float64))
		}
		if typ == "timer" {
			timerNames = append(timerNames, m["name"].(string))
			for _, k := range []string{"count", "sum", "min", "max", "mean", "p50", "p95", "p99"} {
				if _, ok := m[k]; !ok {
					t.Errorf("timer line missing %q: %s", k, line)
				}
			}
		}
	}
	if byType["point"] != 3 { // 2 epoch losses + 1 eval
		t.Errorf("points = %d, want 3", byType["point"])
	}
	if len(epochLosses) != 2 || epochLosses[0] != 1.5 || epochLosses[1] != 0.7 {
		t.Errorf("epoch losses = %v", epochLosses)
	}
	if len(timerNames) != 2 { // train.epoch, train.step
		t.Errorf("timers = %v", timerNames)
	}
	if byType["counter"] < 2 || byType["gauge"] != 1 {
		t.Errorf("counters/gauges = %d/%d", byType["counter"], byType["gauge"])
	}
}

func TestSnapshotTables(t *testing.T) {
	s := NewSession()
	s.Count("a", 2)
	s.SetGauge("g", 0.5)
	s.Observe("t", time.Second)
	tables := s.Snapshot().Tables()
	if len(tables) != 3 {
		t.Fatalf("tables = %d, want 3", len(tables))
	}
	str := s.Snapshot().String()
	for _, want := range []string{"a", "g", "t"} {
		if !strings.Contains(str, want) {
			t.Errorf("summary missing %q:\n%s", want, str)
		}
	}
}
