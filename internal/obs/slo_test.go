package obs

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"
)

// testRules is a single easy-to-reason-about rule: fire when the burn over
// both the trailing 10s and the trailing 2s is >= 2.
func testRules() []BurnRule {
	return []BurnRule{{Name: "r", Long: 10 * time.Second, Short: 2 * time.Second, Factor: 2}}
}

func TestSLOBurnMath(t *testing.T) {
	m := NewSLOMonitor([]Objective{{Name: "avail", Target: 0.9}}, testRules())
	// 10 events, 5 bad → bad fraction 0.5, budget 0.1 → burn 5.
	for i := 0; i < 10; i++ {
		m.RecordAvailability(i%2 == 0)
	}
	m.Tick(1)
	st := m.objs[0]
	if burn := st.burnLocked(1, 10); math.Abs(burn-5) > 1e-9 {
		t.Errorf("burn = %g, want 5", burn)
	}
	// Window with no events (baseline == latest sample) burns 0.
	m.Tick(2)
	if burn := st.burnLocked(2, 0.5); burn != 0 {
		t.Errorf("empty-window burn = %g, want 0", burn)
	}
}

func TestSLOFireResolve(t *testing.T) {
	m := NewSLOMonitor([]Objective{{Name: "avail", Target: 0.99}}, testRules())
	// Healthy first: 100 good events over 4 ticks.
	for tk := 1; tk <= 4; tk++ {
		for i := 0; i < 25; i++ {
			m.RecordAvailability(true)
		}
		m.Tick(float64(tk))
	}
	if f := m.Firing(); len(f) != 0 {
		t.Fatalf("firing while healthy: %v", f)
	}
	// Incident: everything bad. Burn = 1/0.01 = 100 >= 2 over both windows.
	for i := 0; i < 50; i++ {
		m.RecordAvailability(false)
	}
	m.Tick(5)
	if f := m.Firing(); len(f) != 1 || f[0] != "avail/r" {
		t.Fatalf("firing = %v, want [avail/r]", f)
	}
	// Recovery: all good again. The short 2s window goes clean first; once
	// it does, the multi-window AND resolves the alert.
	for tk := 6; tk <= 9; tk++ {
		for i := 0; i < 100; i++ {
			m.RecordAvailability(true)
		}
		m.Tick(float64(tk))
	}
	if f := m.Firing(); len(f) != 0 {
		t.Fatalf("still firing after recovery: %v", f)
	}
	tl := m.Timeline()
	if len(tl) != 2 || tl[0].State != "fire" || tl[1].State != "resolve" {
		t.Fatalf("timeline = %+v, want fire then resolve", tl)
	}
	if tl[0].T != 5 || tl[1].T <= tl[0].T {
		t.Errorf("timeline times = %g, %g", tl[0].T, tl[1].T)
	}

	var buf bytes.Buffer
	if err := m.WriteTimeline(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 || !strings.Contains(lines[0], "FIRE") || !strings.Contains(lines[1], "RESOLVE") {
		t.Errorf("timeline text:\n%s", buf.String())
	}
}

func TestSLOLatencyObjective(t *testing.T) {
	m := NewSLOMonitor([]Objective{
		{Name: "p99", Target: 0.5, Latency: 0.025},
		{Name: "avail", Target: 0.5},
	}, testRules())
	m.RecordLatency(0.010) // good
	m.RecordLatency(0.025) // good (<=)
	m.RecordLatency(0.100) // bad
	m.RecordAvailability(true)
	m.Tick(1)
	status := m.Status()
	if len(status) != 2 {
		t.Fatalf("status = %+v", status)
	}
	if s := status[0]; s.Objective != "p99" || s.Good != 2 || s.Total != 3 {
		t.Errorf("latency status = %+v, want good 2 total 3", s)
	}
	// RecordLatency must not count against the availability objective and
	// vice versa.
	if s := status[1]; s.Objective != "avail" || s.Good != 1 || s.Total != 1 {
		t.Errorf("availability status = %+v, want good 1 total 1", s)
	}
}

func TestSLOTickFromRegistry(t *testing.T) {
	r := NewRegistry()
	m := NewSLOMonitor([]Objective{
		{Name: "lat", Target: 0.5, Latency: 1, Histogram: "h"},
		{Name: "ok", Target: 0.5, GoodCounter: "good", TotalCounter: "total"},
	}, testRules())
	h := r.Histogram("h", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	r.Counter("good").Add(3)
	r.Counter("total").Add(4)
	m.TickFromRegistry(1, r)
	status := m.Status()
	if s := status[0]; s.Good != 1 || s.Total != 2 {
		t.Errorf("histogram-bound status = %+v, want good 1 total 2", s)
	}
	if s := status[1]; s.Good != 3 || s.Total != 4 {
		t.Errorf("counter-bound status = %+v, want good 3 total 4", s)
	}
}

func TestSLONilMonitor(t *testing.T) {
	var m *SLOMonitor
	m.Record("x", true)
	m.RecordAvailability(true)
	m.RecordLatency(1)
	m.Tick(1)
	m.TickFromRegistry(1, NewRegistry())
	if m.Timeline() != nil || m.Firing() != nil || m.Status() != nil {
		t.Error("nil monitor returned data")
	}
	var buf bytes.Buffer
	if err := m.WriteTimeline(&buf); err != nil || buf.String() != "# no slo monitor\n" {
		t.Errorf("nil timeline = %q, %v", buf.String(), err)
	}
	if NewSLOMonitor(nil, nil) != nil {
		t.Error("empty objectives should yield a nil monitor")
	}
}

func TestWriteAlertTimelineEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteAlertTimeline(&buf, nil); err != nil || buf.String() != "# no alerts\n" {
		t.Errorf("empty timeline = %q, %v", buf.String(), err)
	}
}

func TestParseSLOSpec(t *testing.T) {
	objs, err := ParseSLOSpec("avail=0.999,p99=25ms")
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 2 {
		t.Fatalf("objs = %+v", objs)
	}
	if o := objs[0]; o.Name != "availability" || o.Target != 0.999 || o.Latency != 0 {
		t.Errorf("avail = %+v", o)
	}
	if o := objs[1]; o.Name != "latency_p99" || o.Target != 0.99 || o.Latency != 0.025 {
		t.Errorf("p99 = %+v", o)
	}

	objs, err = ParseSLOSpec("p99=100ms@0.95")
	if err != nil || len(objs) != 1 || objs[0].Target != 0.95 || objs[0].Latency != 0.1 {
		t.Errorf("explicit target = %+v, %v", objs, err)
	}

	for _, bad := range []string{
		"", "nonsense", "avail=2", "avail=0", "p99=xyz", "p99=25ms@1.5", "lat=5",
	} {
		if _, err := ParseSLOSpec(bad); err == nil {
			t.Errorf("ParseSLOSpec(%q) should fail", bad)
		}
	}
}

func TestScaledBurnRules(t *testing.T) {
	rules := ScaledBurnRules(12 * time.Second)
	if len(rules) != 2 {
		t.Fatalf("rules = %+v", rules)
	}
	if rules[0].Long != 12*time.Second || rules[0].Short != time.Second {
		t.Errorf("fast rule = %+v", rules[0])
	}
	if rules[1].Long != 72*time.Second || rules[1].Short != 6*time.Second {
		t.Errorf("slow rule = %+v", rules[1])
	}
}
