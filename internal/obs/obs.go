// Package obs instruments the training stack: a lock-cheap metrics registry
// (counters, gauges, timer histograms), a hierarchical span tracer with a
// Chrome-trace (chrome://tracing) exporter, and a Hooks interface the
// trainers (internal/nn, internal/parallel), collectives (internal/comm),
// search (internal/hpo), and campaign scheduler (internal/core) call into.
//
// Everything hangs off a *Session. A nil *Session is a valid, fully
// disabled session: every method is nil-safe and bails after a single
// atomic check, so instrumented code paths cost ~one predicted branch when
// observability is off (verified by the overhead benchmark in this
// package). Per-goroutine work (ranks, pipeline stages, HPO workers) keys
// spans by tid; exactly one goroutine may drive a tid at a time.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Hooks receives instrumentation callbacks from the training stack.
// Implementations must be safe for concurrent calls (trainers invoke them
// from rank goroutines). *Session itself implements Hooks by recording
// into its registry and forwarding to any hooks added with AddHooks.
type Hooks interface {
	// OnStep fires after each optimizer step with the batch loss.
	OnStep(step int, loss float64, d time.Duration)
	// OnEpoch fires after each epoch with the mean training loss.
	OnEpoch(epoch int, loss float64, d time.Duration)
	// OnCollective fires after a communication collective: op names the
	// collective and algorithm (e.g. "allreduce.ring"), bytes is the
	// payload this rank sent during it.
	OnCollective(op string, bytes int, d time.Duration)
	// OnEval reports a named scalar evaluation result (test accuracy,
	// best-so-far search loss, campaign utilization, ...).
	OnEval(name string, value float64)
}

// Point is one timestamped metric sample in the JSONL stream.
type Point struct {
	T      float64            `json:"t"` // seconds since session start
	Name   string             `json:"name"`
	Value  float64            `json:"value"`
	Fields map[string]float64 `json:"fields,omitempty"`
}

// Session owns one run's telemetry: a Registry, a Tracer, a stream of
// metric points, and registered hooks. The zero of usefulness is a nil
// *Session — all methods are nil-safe no-ops.
type Session struct {
	enabled   atomic.Bool
	start     time.Time
	clock     func() time.Duration // monotonic time since start
	nextTrace atomic.Uint64        // trace-id allocator (see NewTrace in ctx.go)
	Registry  *Registry
	Tracer    *Tracer
	Flight    *FlightRecorder

	mu     sync.Mutex
	hooks  []Hooks
	points []Point
}

// NewSession creates an enabled session.
func NewSession() *Session {
	s := &Session{start: time.Now(), Registry: NewRegistry(),
		Tracer: NewTracer(), Flight: NewFlightRecorder(0)}
	s.clock = func() time.Duration { return time.Since(s.start) }
	s.enabled.Store(true)
	return s
}

// Enabled reports whether instrumentation is on. This is the single gate
// every instrument call checks first; a nil session is disabled.
func (s *Session) Enabled() bool { return s != nil && s.enabled.Load() }

// Enable turns instrumentation on.
func (s *Session) Enable() {
	if s != nil {
		s.enabled.Store(true)
	}
}

// Disable turns instrumentation off; in-flight spans still record on End.
func (s *Session) Disable() {
	if s != nil {
		s.enabled.Store(false)
	}
}

// AddHooks registers h to receive every On* callback after the session's
// own recording.
func (s *Session) AddHooks(h Hooks) {
	if s == nil || h == nil {
		return
	}
	s.mu.Lock()
	s.hooks = append(s.hooks, h)
	s.mu.Unlock()
}

// Span opens a span named name on track tid (0 = the main goroutine;
// trainers use rank/stage/worker ids). Returns nil (inert) when disabled.
func (s *Session) Span(tid int, name string) *Span {
	if !s.Enabled() {
		return nil
	}
	return s.Tracer.begin(s.clock, tid, name, "obs")
}

// Emit appends one metric point to the JSONL stream.
func (s *Session) Emit(name string, value float64, fields map[string]float64) {
	if !s.Enabled() {
		return
	}
	p := Point{T: s.clock().Seconds(), Name: name, Value: value, Fields: fields}
	s.mu.Lock()
	s.points = append(s.points, p)
	s.mu.Unlock()
}

// Count adds n to the named counter.
func (s *Session) Count(name string, n int64) {
	if s.Enabled() {
		s.Registry.Counter(name).Add(n)
	}
}

// SetGauge sets the named gauge.
func (s *Session) SetGauge(name string, v float64) {
	if s.Enabled() {
		s.Registry.Gauge(name).Set(v)
	}
}

// Observe records d on the named timer.
func (s *Session) Observe(name string, d time.Duration) {
	if s.Enabled() {
		s.Registry.Timer(name).Observe(d)
	}
}

// ObserveLatencyTrace records d on the named histogram (default latency
// buckets) with c's trace id as the bucket exemplar.
func (s *Session) ObserveLatencyTrace(name string, d time.Duration, c Ctx) {
	if s.Enabled() {
		s.Registry.Histogram(name, DefLatencyBuckets).ObserveTrace(d.Seconds(), c.Trace)
	}
}

// Instant records a zero-duration marker event on tid.
func (s *Session) Instant(tid int, name string, c Ctx) {
	if s.Enabled() {
		s.Tracer.instant(s.clock, tid, name, c)
	}
}

// FlowBegin opens a flow arrow (Chrome-trace ph="s") identified by id on
// tid; FlowEnd with the same id on another tid draws the arrow between
// them. Used to stitch a hedged request's primary and duplicate attempts.
func (s *Session) FlowBegin(id uint64, tid int, name string) {
	if s.Enabled() {
		s.Tracer.flow(s.clock, "s", id, tid, name)
	}
}

// FlowEnd terminates the flow arrow begun with FlowBegin(id, ...).
func (s *Session) FlowEnd(id uint64, tid int, name string) {
	if s.Enabled() {
		s.Tracer.flow(s.clock, "f", id, tid, name)
	}
}

// WriteOpenMetrics writes the registry in the OpenMetrics text format.
func (s *Session) WriteOpenMetrics(w io.Writer) error {
	if s == nil {
		return fmt.Errorf("obs: nil session has no metrics")
	}
	return s.Registry.WriteOpenMetrics(w)
}

// forward fans a callback out to registered hooks.
func (s *Session) forward(fn func(h Hooks)) {
	s.mu.Lock()
	hooks := s.hooks
	s.mu.Unlock()
	for _, h := range hooks {
		fn(h)
	}
}

// OnStep implements Hooks: counts the step and records its duration.
func (s *Session) OnStep(step int, loss float64, d time.Duration) {
	if !s.Enabled() {
		return
	}
	s.Registry.Counter("train.steps").Add(1)
	s.Registry.Timer("train.step").Observe(d)
	s.forward(func(h Hooks) { h.OnStep(step, loss, d) })
}

// OnEpoch implements Hooks: emits a per-epoch loss point and times the epoch.
func (s *Session) OnEpoch(epoch int, loss float64, d time.Duration) {
	if !s.Enabled() {
		return
	}
	s.Registry.Counter("train.epochs").Add(1)
	s.Registry.Timer("train.epoch").Observe(d)
	s.Emit("epoch.loss", loss, map[string]float64{
		"epoch": float64(epoch), "seconds": d.Seconds()})
	s.forward(func(h Hooks) { h.OnEpoch(epoch, loss, d) })
}

// OnCollective implements Hooks: accounts bytes, calls, and latency per op.
func (s *Session) OnCollective(op string, bytes int, d time.Duration) {
	if !s.Enabled() {
		return
	}
	s.Registry.Counter("comm." + op + ".bytes").Add(int64(bytes))
	s.Registry.Counter("comm." + op + ".calls").Add(1)
	s.Registry.Timer("comm." + op + ".time").Observe(d)
	s.forward(func(h Hooks) { h.OnCollective(op, bytes, d) })
}

// OnEval implements Hooks: stores the value as a gauge and a point.
func (s *Session) OnEval(name string, value float64) {
	if !s.Enabled() {
		return
	}
	s.Registry.Gauge("eval." + name).Set(value)
	s.Emit("eval."+name, value, nil)
	s.forward(func(h Hooks) { h.OnEval(name, value) })
}

// Snapshot summarises the registry (nil when the session is nil).
func (s *Session) Snapshot() *Snapshot {
	if s == nil {
		return nil
	}
	return s.Registry.Snapshot()
}

// WriteChromeTrace exports the session's spans as Chrome-trace JSON.
func (s *Session) WriteChromeTrace(w io.Writer) error {
	if s == nil {
		return fmt.Errorf("obs: nil session has no trace")
	}
	return s.Tracer.WriteChromeTrace(w)
}

// WriteMetricsJSONL writes the metric stream as JSON lines: every Emit'd
// point in order (type "point"), then a final registry snapshot as one line
// per counter, gauge, and timer histogram.
func (s *Session) WriteMetricsJSONL(w io.Writer) error {
	if s == nil {
		return fmt.Errorf("obs: nil session has no metrics")
	}
	s.mu.Lock()
	points := append([]Point(nil), s.points...)
	s.mu.Unlock()

	write := func(v any) error {
		b, err := json.Marshal(v)
		if err != nil {
			return fmt.Errorf("obs: metrics jsonl: %w", err)
		}
		b = append(b, '\n')
		_, err = w.Write(b)
		return err
	}
	type typed struct {
		Type string `json:"type"`
	}
	for _, p := range points {
		if err := write(struct {
			typed
			Point
		}{typed{"point"}, p}); err != nil {
			return err
		}
	}
	snap := s.Registry.Snapshot()
	for _, c := range snap.Counters {
		if err := write(struct {
			typed
			CounterSnap
		}{typed{"counter"}, c}); err != nil {
			return err
		}
	}
	for _, g := range snap.Gauges {
		if err := write(struct {
			typed
			GaugeSnap
		}{typed{"gauge"}, g}); err != nil {
			return err
		}
	}
	for _, t := range snap.Timers {
		if err := write(struct {
			typed
			TimerStats
		}{typed{"timer"}, t}); err != nil {
			return err
		}
	}
	for _, h := range snap.Hists {
		if err := write(struct {
			typed
			HistSnap
		}{typed{"histogram"}, h}); err != nil {
			return err
		}
	}
	return nil
}
