package obs

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WriteOpenMetrics writes every instrument in the OpenMetrics text format
// (the Prometheus exposition format plus exemplars and the "# EOF"
// terminator). Output is deterministic: families are emitted counters,
// gauges, timers (as summaries), then histograms, each sorted by name.
//
// Instrument names like "serve.hedge_wasted" are sanitised to
// "serve_hedge_wasted"; counters get the conventional "_total" suffix.
// Histogram bucket exemplars carry the trace id recorded by ObserveTrace,
// which is the link a dashboard follows from a latency bucket to the
// request trace that landed there.
func (r *Registry) WriteOpenMetrics(w io.Writer) error {
	snap := r.Snapshot()
	var b strings.Builder

	for _, c := range snap.Counters {
		name := sanitizeMetricName(c.Name)
		fmt.Fprintf(&b, "# TYPE %s counter\n", name)
		fmt.Fprintf(&b, "%s_total %d\n", name, c.Value)
	}
	for _, g := range snap.Gauges {
		name := sanitizeMetricName(g.Name)
		fmt.Fprintf(&b, "# TYPE %s gauge\n", name)
		fmt.Fprintf(&b, "%s %s\n", name, formatOMValue(g.Value))
	}
	for _, t := range snap.Timers {
		name := sanitizeMetricName(t.Name) + "_seconds"
		fmt.Fprintf(&b, "# TYPE %s summary\n", name)
		for _, q := range [...]struct {
			label string
			v     float64
		}{{"0.5", t.P50}, {"0.95", t.P95}, {"0.99", t.P99}} {
			if t.Count == 0 {
				continue
			}
			fmt.Fprintf(&b, "%s{quantile=\"%s\"} %s\n", name, q.label, formatOMValue(q.v))
		}
		fmt.Fprintf(&b, "%s_sum %s\n", name, formatOMValue(t.Sum))
		fmt.Fprintf(&b, "%s_count %d\n", name, t.Count)
	}
	for _, h := range snap.Hists {
		name := sanitizeMetricName(h.Name) + "_seconds"
		fmt.Fprintf(&b, "# TYPE %s histogram\n", name)
		for _, bk := range h.Buckets {
			fmt.Fprintf(&b, "%s_bucket{le=\"%s\"} %d", name, bk.LE, bk.Count)
			if bk.Exemplar != nil {
				fmt.Fprintf(&b, " # {trace_id=\"%s\"} %s",
					TraceID(bk.Exemplar.Trace), formatOMValue(bk.Exemplar.Value))
			}
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "%s_sum %s\n", name, formatOMValue(h.Sum))
		fmt.Fprintf(&b, "%s_count %d\n", name, h.Count)
	}
	b.WriteString("# EOF\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// sanitizeMetricName maps instrument names onto the OpenMetrics charset
// [a-zA-Z0-9_:], replacing everything else (dots, dashes) with underscores.
func sanitizeMetricName(name string) string {
	var sb strings.Builder
	sb.Grow(len(name))
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			sb.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				sb.WriteByte('_')
			}
			sb.WriteRune(r)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// formatOMValue renders a float sample value ("+Inf"/"-Inf"/"NaN" spelled
// the OpenMetrics way).
func formatOMValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
