package obs

import "repro/internal/trace"

// Tables renders a snapshot as trace tables (one per instrument kind, empty
// kinds omitted) so telemetry summaries print and export exactly like
// experiment tables — including trace's shared float formatting.
func (s *Snapshot) Tables() []*trace.Table {
	if s == nil {
		return nil
	}
	var out []*trace.Table
	if len(s.Counters) > 0 {
		t := trace.NewTable("counters", "name", "value")
		for _, c := range s.Counters {
			t.AddRow(c.Name, c.Value)
		}
		out = append(out, t)
	}
	if len(s.Gauges) > 0 {
		t := trace.NewTable("gauges", "name", "value")
		for _, g := range s.Gauges {
			t.AddRow(g.Name, g.Value)
		}
		out = append(out, t)
	}
	if len(s.Timers) > 0 {
		t := trace.NewTable("timers (seconds)",
			"name", "count", "mean", "p50", "p95", "p99", "max", "sum")
		for _, ts := range s.Timers {
			t.AddRow(ts.Name, ts.Count, ts.Mean, ts.P50, ts.P95, ts.P99, ts.Max, ts.Sum)
		}
		out = append(out, t)
	}
	return out
}

// String renders the snapshot via its tables.
func (s *Snapshot) String() string {
	out := ""
	for _, t := range s.Tables() {
		out += t.String()
	}
	return out
}
