package obs

import (
	"math"
	"strconv"
	"sync"
)

// Histogram is a fixed-bucket latency histogram with per-bucket exemplars.
// Unlike Timer (reservoir percentiles for human summaries), a Histogram has
// explicit cumulative bucket boundaries so it can be exposed in the
// OpenMetrics text format and consumed by SLO burn-rate rules; each bucket
// remembers the last observation that landed in it together with its trace
// id, which is the exemplar link from "p99 regressed" to "this exact
// request's trace".
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // sorted upper bounds (seconds); +Inf bucket is implicit
	counts []uint64  // per-bucket (non-cumulative), len(bounds)+1
	exes   []Exemplar
	count  uint64
	sum    float64
}

// Exemplar is the last observation recorded in one bucket.
type Exemplar struct {
	Value float64 `json:"value"`
	Trace uint64  `json:"trace"`
}

// DefLatencyBuckets is the default serving-latency bucket layout (seconds),
// a decade ladder from 500µs to 10s.
var DefLatencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 10,
}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	return &Histogram{
		bounds: bs,
		counts: make([]uint64, len(bs)+1),
		exes:   make([]Exemplar, len(bs)+1),
	}
}

// bucketIndex returns the index of the first bucket whose bound is >= v
// (len(bounds) = the +Inf bucket).
func (h *Histogram) bucketIndex(v float64) int {
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Observe records one value with no exemplar.
func (h *Histogram) Observe(v float64) { h.ObserveTrace(v, 0) }

// ObserveTrace records one value and, when trace is non-zero, stores it as
// the exemplar of the bucket it lands in.
func (h *Histogram) ObserveTrace(v float64, trace uint64) {
	h.mu.Lock()
	i := h.bucketIndex(v)
	h.counts[i]++
	h.count++
	h.sum += v
	if trace != 0 {
		h.exes[i] = Exemplar{Value: v, Trace: trace}
	}
	h.mu.Unlock()
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// CountBelow returns how many observations were <= bound (the cumulative
// count of every bucket whose upper bound is <= bound). Used by latency SLO
// objectives: good events = CountBelow(threshold).
func (h *Histogram) CountBelow(bound float64) uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	var n uint64
	for i, b := range h.bounds {
		if b > bound {
			break
		}
		n += h.counts[i]
	}
	return n
}

// Quantile estimates the q-th quantile by linear interpolation inside the
// bucket where the cumulative count crosses q. Returns NaN on an empty
// histogram. Values in the +Inf bucket clamp to the highest finite bound —
// the estimate is a lower bound there, which is the standard Prometheus
// histogram_quantile behaviour.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return math.NaN()
	}
	rank := q * float64(h.count)
	var cum uint64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		prev := cum
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i >= len(h.bounds) {
			return h.bounds[len(h.bounds)-1] // +Inf bucket: clamp
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := h.bounds[i]
		frac := (rank - float64(prev)) / float64(c)
		if frac < 0 {
			frac = 0
		}
		if frac > 1 {
			frac = 1
		}
		return lo + (hi-lo)*frac
	}
	return h.bounds[len(h.bounds)-1]
}

// BucketSnap is one cumulative bucket in a histogram snapshot. LE is the
// upper bound pre-formatted the way OpenMetrics spells it ("0.005", "+Inf")
// so snapshots marshal to JSON cleanly (+Inf is not a JSON number).
type BucketSnap struct {
	LE       string    `json:"le"`
	Count    uint64    `json:"count"` // cumulative
	Exemplar *Exemplar `json:"exemplar,omitempty"`
}

// HistSnap is a point-in-time summary of one histogram.
type HistSnap struct {
	Name    string       `json:"name"`
	Count   uint64       `json:"count"`
	Sum     float64      `json:"sum"`
	Buckets []BucketSnap `json:"buckets"`
}

// FormatBound renders a bucket bound the OpenMetrics way.
func FormatBound(b float64) string {
	if math.IsInf(b, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(b, 'g', -1, 64)
}

// snap summarises the histogram under its lock.
func (h *Histogram) snap(name string) HistSnap {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistSnap{Name: name, Count: h.count, Sum: h.sum}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i]
		b := BucketSnap{Count: cum}
		if i < len(h.bounds) {
			b.LE = FormatBound(h.bounds[i])
		} else {
			b.LE = "+Inf"
		}
		if h.exes[i].Trace != 0 {
			e := h.exes[i]
			b.Exemplar = &e
		}
		s.Buckets = append(s.Buckets, b)
	}
	return s
}
