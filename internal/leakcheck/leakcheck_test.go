package leakcheck

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// fakeTB records what Check reports instead of failing the real test.
type fakeTB struct {
	failed bool
	msg    string
}

func (f *fakeTB) Helper() {}
func (f *fakeTB) Errorf(format string, args ...any) {
	f.failed = true
	f.msg = fmt.Sprintf(format, args...)
}

func TestCheckPassesWhenGoroutinesQuiesce(t *testing.T) {
	ft := &fakeTB{}
	done := Check(ft)
	ch := make(chan struct{})
	go func() { <-ch }() // born after the snapshot...
	close(ch)            // ...but quiesced before the check
	done()
	if ft.failed {
		t.Fatalf("clean run flagged as leaking: %s", ft.msg)
	}
}

func TestCheckFlagsParkedGoroutine(t *testing.T) {
	old := grace
	grace = 50 * time.Millisecond
	defer func() { grace = old }()

	ft := &fakeTB{}
	done := Check(ft)
	block := make(chan struct{})
	go leakyWorker(block) // parks in repository code and never exits
	done()
	close(block)
	if !ft.failed {
		t.Fatal("parked goroutine in repository code went undetected")
	}
	if !strings.Contains(ft.msg, "leakyWorker") {
		t.Fatalf("report does not name the leaked frame:\n%s", ft.msg)
	}
}

// leakyWorker is a named function so the leak report's stack is assertable.
func leakyWorker(block chan struct{}) { <-block }

func TestCheckIgnoresPreexistingGoroutines(t *testing.T) {
	block := make(chan struct{})
	go leakyWorker(block) // alive before the snapshot: not this check's problem
	defer close(block)

	ft := &fakeTB{}
	done := Check(ft)
	done()
	if ft.failed {
		t.Fatalf("pre-existing goroutine misattributed to the checked region: %s", ft.msg)
	}
}
