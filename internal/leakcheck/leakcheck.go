// Package leakcheck is a hand-rolled goroutine-leak checker for the chaos
// suites: it snapshots the runtime's goroutine stacks when a test starts and
// diffs them after the test quiesces, failing if any goroutine born during
// the test is still running repository code. Hedged execution, cancellation,
// replica ejection, and elastic re-sharding all spawn goroutines whose exit
// paths are exactly the code most likely to be broken by a refactor — a
// leaked worker here is a leaked worker per request in production.
//
// No external dependency (the container has none): the checker parses the
// output of runtime.Stack(all=true) directly.
package leakcheck

import (
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// modulePrefix identifies "our" frames in a goroutine stack; goroutines
// parked inside the runtime or the testing framework are not leaks.
const modulePrefix = "repro/"

// TB is the subset of testing.TB the checker needs (kept tiny so the
// package itself is trivially testable).
type TB interface {
	Helper()
	Errorf(format string, args ...any)
}

// goroutine is one parsed stack entry.
type goroutine struct {
	id    int
	stack string
}

// snapshot parses runtime.Stack(all=true) into goroutine records.
func snapshot() []goroutine {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	var gs []goroutine
	for _, block := range strings.Split(string(buf), "\n\n") {
		header, _, _ := strings.Cut(block, "\n")
		if !strings.HasPrefix(header, "goroutine ") {
			continue
		}
		idStr, _, _ := strings.Cut(strings.TrimPrefix(header, "goroutine "), " ")
		id, err := strconv.Atoi(idStr)
		if err != nil {
			continue
		}
		gs = append(gs, goroutine{id: id, stack: block})
	}
	return gs
}

// leaked returns the goroutines not present in the baseline id set that are
// executing repository code.
func leaked(baseline map[int]bool) []goroutine {
	var out []goroutine
	for _, g := range snapshot() {
		if baseline[g.id] {
			continue
		}
		if strings.Contains(g.stack, modulePrefix) {
			out = append(out, g)
		}
	}
	return out
}

// Check snapshots the current goroutines and returns a function to defer:
// at test exit it polls until every goroutine created since the snapshot
// has quiesced (left repository code), failing the test with the surviving
// stacks if any are still alive after the grace period.
//
//	defer leakcheck.Check(t)()
//
// The grace period exists because Close-style teardown is allowed to return
// slightly before its workers finish unwinding; a real leak never quiesces,
// so the poll converges immediately in the healthy case and the full wait
// is only ever paid on failure.
// grace is how long the poll waits for stragglers to unwind before calling
// them leaks (a variable so the self-test can shorten the failing path).
var grace = 2 * time.Second

func Check(t TB) func() {
	baseline := map[int]bool{}
	for _, g := range snapshot() {
		baseline[g.id] = true
	}
	return func() {
		t.Helper()
		deadline := time.Now().Add(grace)
		var last []goroutine
		for {
			last = leaked(baseline)
			if len(last) == 0 {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(time.Millisecond)
		}
		var sb strings.Builder
		for _, g := range last {
			fmt.Fprintf(&sb, "\n%s\n", g.stack)
		}
		t.Errorf("leakcheck: %d goroutine(s) still running %s code after quiesce:%s",
			len(last), modulePrefix, sb.String())
	}
}
