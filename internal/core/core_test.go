package core

import (
	"math"
	"testing"

	"repro/internal/hpo"
	"repro/internal/nn"
	"repro/internal/rng"
)

func TestWorkloadsListAndLookup(t *testing.T) {
	ws := Workloads()
	if len(ws) != 6 {
		t.Fatalf("expected 6 driver problems, got %d", len(ws))
	}
	names := map[string]bool{}
	for _, w := range ws {
		if names[w.Name] {
			t.Fatalf("duplicate workload %s", w.Name)
		}
		names[w.Name] = true
		if w.Space == nil || w.Generate == nil || w.NewModel == nil {
			t.Fatalf("workload %s incomplete", w.Name)
		}
	}
	if _, err := ByName("tumor"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestAllWorkloadsGenerateAndEvaluate(t *testing.T) {
	for _, w := range Workloads() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			train, test := w.Generate(Tiny, rng.New(1))
			if train.N() == 0 || test.N() == 0 {
				t.Fatal("empty split")
			}
			if train.Dim() != test.Dim() {
				t.Fatal("train/test dims differ")
			}
			res := w.Evaluate(w.DefaultConfig(), Tiny, 0.3, 7)
			if math.IsInf(res.Loss, 1) {
				t.Fatal("evaluation failed")
			}
			if w.Classification {
				if math.IsNaN(res.Accuracy) || res.Accuracy < 0 || res.Accuracy > 1 {
					t.Fatalf("accuracy %v", res.Accuracy)
				}
			}
			if res.Params <= 0 {
				t.Fatal("no parameters")
			}
		})
	}
}

func TestEvaluateDeterministic(t *testing.T) {
	w, _ := ByName("tumor")
	a := w.Evaluate(w.DefaultConfig(), Tiny, 0.2, 9)
	b := w.Evaluate(w.DefaultConfig(), Tiny, 0.2, 9)
	if a.Loss != b.Loss || a.TrainLoss != b.TrainLoss {
		t.Fatalf("evaluation not deterministic: %v vs %v", a, b)
	}
}

func TestMoreBudgetHelps(t *testing.T) {
	// Full-budget training should beat a sliver of training on average.
	w, _ := ByName("tumor")
	cfg := w.DefaultConfig()
	short := w.Evaluate(cfg, Tiny, 0.1, 3).Loss
	long := w.Evaluate(cfg, Tiny, 1.0, 3).Loss
	if long > short+0.02 {
		t.Fatalf("more budget hurt: %.4f -> %.4f", short, long)
	}
}

func TestObjectivePluggableIntoHPO(t *testing.T) {
	w, _ := ByName("mdsurrogate")
	res, err := (hpo.RandomSearch{}).Search(w.Objective(Tiny), hpo.Options{
		Space: w.Space, TotalBudget: 3, Parallelism: 3, RNG: rng.New(5),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trials) != 3 {
		t.Fatalf("expected 3 trials, got %d", len(res.Trials))
	}
	if res.Best.Loss < 0 || res.Best.Loss > 1 {
		t.Fatalf("classification objective out of range: %v", res.Best.Loss)
	}
}

func TestCampaignValidation(t *testing.T) {
	if _, err := RunCampaign(CampaignConfig{}); err == nil {
		t.Fatal("empty campaign accepted")
	}
	if _, err := RunCampaign(CampaignConfig{Configs: 10, Nodes: 4, MeanEvalTime: 1}); err == nil {
		t.Fatal("missing RNG accepted")
	}
}

func TestCampaignSchedulers(t *testing.T) {
	base := CampaignConfig{
		Configs: 2000, Nodes: 128, GroupSize: 16,
		MeanEvalTime: 60, EvalTimeSigma: 1.0, DispatchOverhead: 0.05,
	}
	results := map[SchedulerKind]CampaignResult{}
	for _, s := range []SchedulerKind{StaticPartition, DynamicQueue, HierarchicalQueue} {
		cfg := base
		cfg.Scheduler = s
		cfg.RNG = rng.New(11) // identical duration draws across schedulers
		res, err := RunCampaign(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Makespan < res.IdealMakespan*0.999 {
			t.Fatalf("%v beat the perfect-packing bound", s)
		}
		if res.Utilization <= 0 || res.Utilization > 1.001 {
			t.Fatalf("%v utilization %v", s, res.Utilization)
		}
		results[s] = res
	}
	// Dynamic scheduling must beat static partitioning on heterogeneous
	// durations (stragglers dominate static).
	if results[DynamicQueue].Makespan >= results[StaticPartition].Makespan {
		t.Fatalf("dynamic (%v) not better than static (%v)",
			results[DynamicQueue].Makespan, results[StaticPartition].Makespan)
	}
	if results[HierarchicalQueue].Makespan >= results[StaticPartition].Makespan {
		t.Fatalf("hierarchical (%v) not better than static (%v)",
			results[HierarchicalQueue].Makespan, results[StaticPartition].Makespan)
	}
}

func TestCampaignDispatchBottleneck(t *testing.T) {
	// With many nodes and short tasks, the single dynamic manager becomes
	// the bottleneck; the hierarchical scheduler amortises dispatch across
	// group batches and must win.
	// Enough tasks per node that the FIFO drain tail (one long task
	// starting near the end) is small relative to the ideal makespan.
	base := CampaignConfig{
		Configs: 60000, Nodes: 1024, GroupSize: 64,
		MeanEvalTime: 10, EvalTimeSigma: 0.8, DispatchOverhead: 0.02,
	}
	run := func(s SchedulerKind) CampaignResult {
		cfg := base
		cfg.Scheduler = s
		cfg.RNG = rng.New(7)
		res, err := RunCampaign(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	dyn := run(DynamicQueue)
	hier := run(HierarchicalQueue)
	if hier.Makespan >= dyn.Makespan {
		t.Fatalf("hierarchical (%v) should beat central queue (%v) at scale",
			hier.Makespan, dyn.Makespan)
	}
	if hier.Utilization < 0.7 {
		t.Fatalf("hierarchical utilization %.2f too low", hier.Utilization)
	}
}

func TestSchedulerStrings(t *testing.T) {
	for _, s := range []SchedulerKind{StaticPartition, DynamicQueue, HierarchicalQueue} {
		if s.String() == "sched?" {
			t.Fatal("unnamed scheduler")
		}
	}
	if Tiny.String() != "tiny" || Full.String() != "full" {
		t.Fatal("scale names wrong")
	}
}

func TestExtensionsWork(t *testing.T) {
	for _, w := range Extensions() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			if _, err := ByName(w.Name); err != nil {
				t.Fatal(err)
			}
			res := w.Evaluate(w.DefaultConfig(), Tiny, 0.3, 5)
			if math.IsInf(res.Loss, 1) {
				t.Fatalf("%s evaluation failed", w.Name)
			}
			if res.Params <= 0 {
				t.Fatal("no parameters")
			}
		})
	}
}

func TestHistologyConvBeatsLinear(t *testing.T) {
	// The spatial structure should give the conv model an edge over a
	// linear model with the same budget — the reason the workload exists.
	w, err := ByName("histology")
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(31)
	train, test := w.Generate(Tiny, r.Split("data"))
	conv := w.NewModel(w.DefaultConfig(), train.Dim(), train.OutDim(), r.Split("conv"))
	lin := nn.MLP(train.Dim(), nil, train.OutDim(), nn.ReLU, r.Split("lin"))
	trainIt := func(net *nn.Net, tag string) float64 {
		_, err := nn.Train(net, train.X, train.Y, nn.TrainConfig{
			Loss: nn.SoftmaxCELoss{}, Optimizer: nn.NewAdam(0.002),
			BatchSize: 32, Epochs: 15, Shuffle: true, RNG: r.Split(tag),
		})
		if err != nil {
			t.Fatal(err)
		}
		return nn.EvaluateClassifier(net, test.X, test.Labels)
	}
	convAcc := trainIt(conv, "c")
	linAcc := trainIt(lin, "l")
	if convAcc < 0.7 {
		t.Fatalf("conv accuracy %.3f too low", convAcc)
	}
	if convAcc <= linAcc-0.02 {
		t.Fatalf("conv (%.3f) lost to linear (%.3f)", convAcc, linAcc)
	}
}
