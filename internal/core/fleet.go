package core

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/sim"
)

// TenantConfig is one campaign submitted to a shared fleet. The tenant's
// workload — durations, failure schedule, retry/quarantine/poison policy —
// comes from its embedded CampaignConfig; the fleet ignores the campaign's
// own Nodes/Scheduler/GroupSize fields and schedules the work itself.
type TenantConfig struct {
	// Name labels the tenant in results and observability output.
	Name string
	// Weight is the tenant's fair-share weight (0 means 1): shard managers
	// dequeue the backlogged tenant with the smallest served-node-seconds /
	// Weight ratio among the highest waiting priority.
	Weight float64
	// Priority orders tenants for dispatch and (when FleetConfig.Preemption
	// is on) lets a higher-priority evaluation preempt a running lower-
	// priority one. Preempted evaluations requeue with their attempt history
	// intact and relaunch with the tenant's RestartOverhead.
	Priority int
	// SubmitAt is the simulated time the tenant's campaign arrives.
	SubmitAt float64
	// Campaign carries the workload and per-tenant fault policy.
	Campaign CampaignConfig
}

// FleetConfig describes a sharded multi-tenant fleet: several concurrent
// campaigns submit to a shared set of modelled node shards, each shard a
// group of nodes behind one shard manager.
type FleetConfig struct {
	// Shards is the number of node shards (each with its own manager).
	Shards int
	// NodesPerShard is the node count per shard.
	NodesPerShard int
	// DispatchOverhead is each shard manager's per-assignment latency,
	// exactly like CampaignConfig.DispatchOverhead for the dynamic queue.
	DispatchOverhead float64
	// Preemption lets a waiting higher-priority evaluation evict a running
	// lower-priority one on a full shard.
	Preemption bool
	// WorkStealing lets an idle shard steal queued evaluations from the
	// back of the longest saturated (or dead) shard's queue. When enabled,
	// managers hold work back in the stealable queue instead of pre-staging
	// it onto nodes; when disabled, dispatch pipelines eagerly and a
	// single-shard fleet reproduces the dynamic-queue campaign exactly.
	WorkStealing bool
	// StealBatch caps evaluations moved per steal (0 = NodesPerShard/4,
	// minimum 1).
	StealBatch int
	// Tenants are the concurrent campaigns.
	Tenants []TenantConfig
	// Faults, if non-nil, scripts shard-level kills, gray slowdowns, and
	// repairs on top of the per-tenant node-fault schedules.
	Faults *fault.ShardPlan
	// Obs, if enabled, records fleet counters and per-tenant served gauges.
	Obs *obs.Session
	// TrackService records a per-evaluation service log (tenant, start,
	// seconds actually served) for fair-share analysis in tests. Off by
	// default: the log grows with the evaluation count.
	TrackService bool
}

// ServiceEvent is one delivered slice of node time (TrackService only).
type ServiceEvent struct {
	Tenant  int
	Start   float64
	Seconds float64
}

// TenantResult reports one tenant's campaign as scheduled by the fleet.
// The fault-model counters (Failures, Retries, quarantine/poison/backoff)
// are by construction identical to what RunCampaign reports for the same
// seeded CampaignConfig — the fleet changes placement, never outcomes.
type TenantResult struct {
	Name      string  `json:"name"`
	Weight    float64 `json:"weight"`
	Priority  int     `json:"priority"`
	Configs   int     `json:"configs"`
	Completed int     `json:"completed"`
	// Dropped counts configurations that ended quarantined or abandoned.
	Dropped int `json:"dropped"`
	// TotalWork is the sum of nominal evaluation durations (as in
	// CampaignResult.TotalWork).
	TotalWork float64 `json:"total_work_s"`
	// Makespan is the virtual time of this tenant's last finished
	// evaluation, measured from fleet start (not from SubmitAt).
	Makespan float64 `json:"makespan_s"`
	// ServedNodeSeconds is node time actually delivered to the tenant,
	// including restart overheads, crashed segments, and slowdown inflation.
	ServedNodeSeconds  float64 `json:"served_node_seconds"`
	Failures           int     `json:"failures"`
	Retries            int     `json:"retries"`
	AbandonedConfigs   int     `json:"abandoned_configs"`
	QuarantinedConfigs int     `json:"quarantined_configs"`
	PoisonConfigs      int     `json:"poison_configs"`
	LostEvalSeconds    float64 `json:"lost_eval_seconds"`
	BackoffSeconds     float64 `json:"backoff_seconds"`
	// Preemptions counts this tenant's evaluations evicted by priority.
	Preemptions int `json:"preemptions"`
	// Interrupted counts this tenant's evaluations cut down mid-run by
	// shard kills (each requeued with attempt history intact).
	Interrupted int `json:"interrupted"`
}

// ShardStats reports one shard's traffic.
type ShardStats struct {
	// Evals counts evaluations that finished their final segment here.
	Evals int `json:"evals"`
	// Attempts counts run segments completed here (including segments that
	// end in a modelled node crash).
	Attempts    int `json:"attempts"`
	Dispatches  int `json:"dispatches"`
	StealsIn    int `json:"steals_in"`
	StealsOut   int `json:"steals_out"`
	StolenEvals int `json:"stolen_evals"`
	Preemptions int `json:"preemptions"`
	Interrupted int `json:"interrupted"`
	BusySeconds float64 `json:"busy_seconds"`
	Utilization float64 `json:"utilization"`
}

// FleetResult reports a sharded multi-tenant fleet run. It marshals to
// stable JSON, which the determinism tests byte-compare across reruns.
type FleetResult struct {
	Shards        int     `json:"shards"`
	NodesPerShard int     `json:"nodes_per_shard"`
	Makespan      float64 `json:"makespan_s"`
	TotalWork     float64 `json:"total_work_s"`
	// Utilization is delivered busy node time (including overheads and
	// lost work) over Makespan x total nodes.
	Utilization float64 `json:"utilization"`
	Dispatches  int     `json:"dispatches"`
	// Steals counts steal operations; StolenEvals the evaluations moved.
	Steals      int `json:"steals"`
	StolenEvals int `json:"stolen_evals"`
	Preemptions int `json:"preemptions"`
	// PreemptedSeconds is node time discarded by preemption evictions.
	PreemptedSeconds float64 `json:"preempted_seconds"`
	Interrupted      int     `json:"interrupted"`
	// InterruptedSeconds is node time discarded by shard kills.
	InterruptedSeconds float64        `json:"interrupted_seconds"`
	Tenants            []TenantResult `json:"tenants"`
	ShardStats         []ShardStats   `json:"shard_stats"`
	// ServiceLog is populated only with FleetConfig.TrackService.
	ServiceLog []ServiceEvent `json:"-"`
}

// fleetTask is one evaluation moving through the fleet. segs/boffs are the
// remaining pre-sampled attempt segments and backoffs; retry marks that the
// next launch pays the tenant's RestartOverhead (set after a modelled crash,
// a preemption, or a shard kill — the attempt history itself is only
// consumed by modelled crashes, so interruptions lose work but never skip
// or duplicate an attempt).
type fleetTask struct {
	tenant int
	idx    int
	segs   []float64
	boffs  []float64
	retry  bool
}

// runSlot is one evaluation occupying a node. Deactivating the slot is how
// preemption and shard kills cancel the already-scheduled completion event.
type runSlot struct {
	task   *fleetTask
	start  float64
	dur    float64
	active bool
}

type fleetShard struct {
	id int
	// queue is the manager backlog — the only place work stealing looks.
	queue []*fleetTask
	// nodeWait holds dispatched tasks waiting for a free node.
	nodeWait    []*fleetTask
	free        int
	mgrBusy     bool
	mgrGen      int // bumped on shard kill to void the in-flight dispatch
	dispatching *fleetTask
	down        bool
	restoreAt   float64
	slow        float64
	running     []*runSlot
	stats       ShardStats
}

type fleetRun struct {
	cfg     *FleetConfig
	eng     *sim.Engine
	shards  []*fleetShard
	preps   []*preparedCampaign
	charged []float64 // fair-share accumulator: nominal node-seconds charged at dispatch
	served  []float64 // node-seconds actually delivered per tenant
	weight  []float64
	prio    []int
	restart []float64 // per-tenant RestartOverhead
	done    []int     // finished configs per tenant
	okDone  []int     // completed (cfgOK) configs per tenant
	tEnd    []float64 // per-tenant last retirement time
	lastEnd float64   // last finished segment — the fleet makespan
	res     *FleetResult
}

// RunFleet simulates the sharded multi-tenant scheduler: every tenant's
// workload is prepared exactly as RunCampaign prepares it (same seeded
// durations, failure schedule, and retry/quarantine decisions), then placed
// across shards with fair-share weighting, optional priority preemption,
// optional work stealing, and the scripted shard fault plan.
func RunFleet(cfg FleetConfig) (FleetResult, error) {
	if cfg.Shards <= 0 || cfg.NodesPerShard <= 0 {
		return FleetResult{}, fmt.Errorf("core: fleet needs shards and nodes per shard")
	}
	if len(cfg.Tenants) == 0 {
		return FleetResult{}, fmt.Errorf("core: fleet needs at least one tenant")
	}
	if cfg.DispatchOverhead < 0 {
		return FleetResult{}, fmt.Errorf("core: negative dispatch overhead")
	}
	if err := cfg.Faults.Validate(cfg.Shards); err != nil {
		return FleetResult{}, err
	}
	if cfg.StealBatch <= 0 {
		cfg.StealBatch = cfg.NodesPerShard / 4
		if cfg.StealBatch < 1 {
			cfg.StealBatch = 1
		}
	}

	nT := len(cfg.Tenants)
	r := &fleetRun{
		cfg: &cfg, eng: sim.NewEngine(),
		preps:   make([]*preparedCampaign, nT),
		charged: make([]float64, nT),
		served:  make([]float64, nT), weight: make([]float64, nT),
		prio: make([]int, nT), restart: make([]float64, nT),
		done: make([]int, nT), okDone: make([]int, nT), tEnd: make([]float64, nT),
		res: &FleetResult{
			Shards: cfg.Shards, NodesPerShard: cfg.NodesPerShard,
			Tenants:    make([]TenantResult, nT),
			ShardStats: make([]ShardStats, cfg.Shards),
		},
	}
	for i := range cfg.Tenants {
		t := &cfg.Tenants[i]
		if t.Weight < 0 {
			return FleetResult{}, fmt.Errorf("core: tenant %d has negative weight", i)
		}
		if t.Weight == 0 {
			t.Weight = 1
		}
		if t.SubmitAt < 0 {
			return FleetResult{}, fmt.Errorf("core: tenant %d submits at negative time", i)
		}
		if t.Name == "" {
			t.Name = fmt.Sprintf("tenant%d", i)
		}
		camp := t.Campaign
		prep, err := prepareCampaign(&camp)
		if err != nil {
			return FleetResult{}, fmt.Errorf("core: tenant %q: %w", t.Name, err)
		}
		r.preps[i] = prep
		r.weight[i] = t.Weight
		r.prio[i] = t.Priority
		r.restart[i] = t.Campaign.RestartOverhead
		r.res.TotalWork += prep.total
		r.res.Tenants[i] = TenantResult{
			Name: t.Name, Weight: t.Weight, Priority: t.Priority,
			Configs: t.Campaign.Configs, TotalWork: prep.total,
			Failures: prep.failures, Retries: prep.retries,
			AbandonedConfigs:   prep.abandonedConfigs,
			QuarantinedConfigs: prep.quarantinedConfigs,
			PoisonConfigs:      prep.poisonCfg,
			LostEvalSeconds:    prep.lostEvalSeconds,
			BackoffSeconds:     prep.backoffSeconds,
		}
	}

	r.shards = make([]*fleetShard, cfg.Shards)
	for s := range r.shards {
		r.shards[s] = &fleetShard{id: s, free: cfg.NodesPerShard, slow: 1}
	}

	// Tenant arrivals: configs scatter round-robin across shards in index
	// order, so a single-shard fleet sees them in exactly the order the
	// dynamic-queue campaign enqueues them.
	for ti := range cfg.Tenants {
		ti := ti
		r.eng.At(cfg.Tenants[ti].SubmitAt, func() { r.submit(ti) })
	}
	// Scripted shard faults replay in (time, shard, kind) order.
	for _, ev := range cfg.Faults.Sorted() {
		ev := ev
		r.eng.At(ev.Time, func() { r.shardEvent(ev) })
	}

	r.eng.Run()

	res := r.res
	res.Makespan = r.lastEnd
	for ti := range res.Tenants {
		tr := &res.Tenants[ti]
		tr.Completed = r.okDone[ti]
		tr.Dropped = r.done[ti] - r.okDone[ti]
		tr.Makespan = r.tEnd[ti]
		tr.ServedNodeSeconds = r.served[ti]
		if r.done[ti] != cfg.Tenants[ti].Campaign.Configs {
			return FleetResult{}, fmt.Errorf("core: tenant %q finished %d of %d evals",
				tr.Name, r.done[ti], cfg.Tenants[ti].Campaign.Configs)
		}
	}
	totalNodes := float64(cfg.Shards * cfg.NodesPerShard)
	var busy float64
	for s := range r.shards {
		st := r.shards[s].stats
		if res.Makespan > 0 {
			st.Utilization = st.BusySeconds / (res.Makespan * float64(cfg.NodesPerShard))
		}
		res.ShardStats[s] = st
		busy += st.BusySeconds
	}
	if res.Makespan > 0 {
		res.Utilization = busy / (res.Makespan * totalNodes)
	}
	if o := cfg.Obs; o.Enabled() {
		o.Count("fleet.dispatches", int64(res.Dispatches))
		o.Count("fleet.steals", int64(res.Steals))
		o.Count("fleet.preemptions", int64(res.Preemptions))
		o.Count("fleet.interrupted", int64(res.Interrupted))
		o.OnEval("fleet.utilization", res.Utilization)
		for _, tr := range res.Tenants {
			o.SetGauge("fleet.tenant."+tr.Name+".served_node_seconds", tr.ServedNodeSeconds)
		}
	}
	return *res, nil
}

// submit enqueues tenant ti's whole campaign, round-robin across shards.
func (r *fleetRun) submit(ti int) {
	prep := r.preps[ti]
	n := len(r.shards)
	for i, d := range prep.durations {
		task := &fleetTask{tenant: ti, idx: i}
		if prep.attempts[i] != nil {
			task.segs = prep.attempts[i]
			task.boffs = prep.backoffs[i]
		} else {
			task.segs = []float64{d}
		}
		s := r.shards[i%n]
		s.queue = append(s.queue, task)
	}
	for _, s := range r.shards {
		r.pump(s)
	}
}

// pickNext returns the queue index to dispatch next: the earliest task of
// the best tenant by (priority desc, served/weight asc, tenant index asc).
func (r *fleetRun) pickNext(s *fleetShard) int {
	best := 0
	for i := 1; i < len(s.queue); i++ {
		a, b := s.queue[i].tenant, s.queue[best].tenant
		if a == b {
			continue
		}
		if r.prio[a] != r.prio[b] {
			if r.prio[a] > r.prio[b] {
				best = i
			}
			continue
		}
		if r.charged[a]/r.weight[a] < r.charged[b]/r.weight[b] {
			best = i
		}
	}
	return best
}

// pump drives shard s's manager: steal if idle, then dispatch the next
// fair-share pick, paying DispatchOverhead before the task joins the node
// wait queue — the same pipeline as the dynamic-queue campaign manager.
func (r *fleetRun) pump(s *fleetShard) {
	if s.down || s.mgrBusy {
		return
	}
	if len(s.queue) == 0 && r.cfg.WorkStealing && s.free > 0 {
		r.steal(s)
	}
	if len(s.queue) == 0 {
		return
	}
	// With stealing on, hold backlog in the stealable queue: pre-stage at
	// most one task beyond the free nodes. Without stealing, pipeline
	// eagerly like the dynamic queue (this is what makes the single-shard
	// fleet reproduce RunCampaign's timing exactly).
	if r.cfg.WorkStealing && len(s.nodeWait) > s.free {
		return
	}
	i := r.pickNext(s)
	task := s.queue[i]
	s.queue = append(s.queue[:i], s.queue[i+1:]...)
	// Charge fair share at dispatch: service decisions must see work the
	// manager has already committed to, not just work that reached a node.
	est := task.segs[0]
	if task.retry {
		est += r.restart[task.tenant]
	}
	r.charged[task.tenant] += est
	s.mgrBusy = true
	s.dispatching = task
	gen := s.mgrGen
	s.stats.Dispatches++
	r.res.Dispatches++
	r.eng.Schedule(r.cfg.DispatchOverhead, func() {
		if gen != s.mgrGen {
			return // shard was killed mid-dispatch; task already requeued
		}
		s.mgrBusy = false
		s.dispatching = nil
		s.nodeWait = append(s.nodeWait, task)
		r.assign(s)
		r.pump(s)
	})
}

// steal moves up to StealBatch tasks from the back of the longest eligible
// donor queue (a saturated or dead shard) into s's queue.
func (r *fleetRun) steal(s *fleetShard) {
	var donor *fleetShard
	for _, d := range r.shards {
		if d == s || len(d.queue) == 0 || (!d.down && d.free > 0) {
			continue
		}
		if donor == nil || len(d.queue) > len(donor.queue) {
			donor = d
		}
	}
	if donor == nil {
		return
	}
	k := r.cfg.StealBatch
	if k > len(donor.queue) {
		k = len(donor.queue)
	}
	moved := donor.queue[len(donor.queue)-k:]
	donor.queue = donor.queue[:len(donor.queue)-k]
	s.queue = append(s.queue, moved...)
	s.stats.StealsIn++
	s.stats.StolenEvals += k
	donor.stats.StealsOut++
	donor.stats.StolenEvals += k
	r.res.Steals++
	r.res.StolenEvals += k
}

// pickWaiting returns the node-wait index to place next: highest priority,
// then FIFO — so a high-priority dispatch is never stuck behind a
// lower-priority task that cannot get a node.
func (r *fleetRun) pickWaiting(s *fleetShard) int {
	best := 0
	for i := 1; i < len(s.nodeWait); i++ {
		if r.prio[s.nodeWait[i].tenant] > r.prio[s.nodeWait[best].tenant] {
			best = i
		}
	}
	return best
}

// assign places waiting tasks onto free nodes, evicting lower-priority
// running work when preemption is enabled and the shard is full.
func (r *fleetRun) assign(s *fleetShard) {
	for len(s.nodeWait) > 0 {
		ci := r.pickWaiting(s)
		if s.free == 0 {
			if !r.cfg.Preemption || !r.preemptFor(s, s.nodeWait[ci]) {
				return
			}
		}
		task := s.nodeWait[ci]
		s.nodeWait = append(s.nodeWait[:ci], s.nodeWait[ci+1:]...)
		r.launch(s, task)
	}
}

// preemptFor evicts the weakest running slot strictly below cand's
// priority: lowest priority first, then the most recently launched (least
// work lost). The victim requeues on this shard with attempt history
// intact and pays its restart overhead on relaunch.
func (r *fleetRun) preemptFor(s *fleetShard, cand *fleetTask) bool {
	var victim *runSlot
	for _, slot := range s.running {
		if !slot.active || r.prio[slot.task.tenant] >= r.prio[cand.tenant] {
			continue
		}
		if victim == nil ||
			r.prio[slot.task.tenant] < r.prio[victim.task.tenant] ||
			(r.prio[slot.task.tenant] == r.prio[victim.task.tenant] && slot.start >= victim.start) {
			victim = slot
		}
	}
	if victim == nil {
		return false
	}
	now := r.eng.Now()
	elapsed := now - victim.start
	victim.active = false
	r.unslot(s, victim)
	s.free++
	s.stats.BusySeconds += elapsed
	r.served[victim.task.tenant] += elapsed
	r.logService(victim.task.tenant, victim.start, elapsed)
	victim.task.retry = true
	s.queue = append(s.queue, victim.task)
	ti := victim.task.tenant
	r.res.Tenants[ti].Preemptions++
	s.stats.Preemptions++
	r.res.Preemptions++
	r.res.PreemptedSeconds += elapsed
	return true
}

// launch starts task on a free node of s. Service is charged to the tenant
// at launch and refunded on eviction, so fair-share decisions account for
// in-flight work.
func (r *fleetRun) launch(s *fleetShard, task *fleetTask) {
	dur := task.segs[0]
	if task.retry {
		dur += r.restart[task.tenant]
	}
	if s.slow > 1 {
		dur *= s.slow
	}
	slot := &runSlot{task: task, start: r.eng.Now(), dur: dur, active: true}
	s.running = append(s.running, slot)
	s.free--
	r.eng.Schedule(dur, func() { r.complete(s, slot) })
}

// complete finishes a run segment: a crash segment requeues the task
// through the manager (waiting out its backoff off-node), the final
// segment retires the evaluation.
func (r *fleetRun) complete(s *fleetShard, slot *runSlot) {
	if !slot.active {
		return // evicted by preemption or a shard kill before finishing
	}
	slot.active = false
	r.unslot(s, slot)
	s.free++
	s.stats.BusySeconds += slot.dur
	s.stats.Attempts++
	r.served[slot.task.tenant] += slot.dur
	now := r.eng.Now()
	if now > r.lastEnd {
		r.lastEnd = now
	}
	r.logService(slot.task.tenant, slot.start, slot.dur)
	task := slot.task
	if len(task.segs) > 1 {
		task.segs = task.segs[1:]
		task.retry = true
		var boff float64
		if len(task.boffs) > 0 {
			boff = task.boffs[0]
			task.boffs = task.boffs[1:]
		}
		if boff > 0 {
			r.eng.Schedule(boff, func() { r.enqueue(s, task) })
		} else {
			r.enqueue(s, task)
		}
	} else {
		s.stats.Evals++
		r.done[task.tenant]++
		if now > r.tEnd[task.tenant] {
			r.tEnd[task.tenant] = now
		}
		if r.preps[task.tenant].cfgOK[task.idx] {
			r.okDone[task.tenant]++
		}
	}
	r.assign(s)
	r.pump(s)
}

// enqueue returns a task to s's manager queue (it crashed or was evicted
// there) and wakes the fleet: s dispatches if it can, and idle peers get a
// chance to steal — the path that drains a dead shard's backlog.
func (r *fleetRun) enqueue(s *fleetShard, task *fleetTask) {
	s.queue = append(s.queue, task)
	r.pump(s)
	r.wakeIdle(s)
}

// wakeIdle pumps every other shard that has free nodes and an empty queue,
// letting it steal newly queued or stranded work.
func (r *fleetRun) wakeIdle(except *fleetShard) {
	if !r.cfg.WorkStealing {
		return
	}
	for _, z := range r.shards {
		if z != except && !z.down && !z.mgrBusy && z.free > 0 && len(z.queue) == 0 {
			r.pump(z)
		}
	}
}

// shardEvent applies one scripted shard fault.
func (r *fleetRun) shardEvent(ev fault.ShardEvent) {
	s := r.shards[ev.Shard]
	now := r.eng.Now()
	switch ev.Kind {
	case fault.ShardKill:
		s.down = true
		if t := now + ev.Down; t > s.restoreAt {
			s.restoreAt = t
		}
		// Interrupt running work (in launch order): requeue with attempt
		// history intact, then flush staged and in-flight dispatches back
		// to the queue where peers can steal them.
		for _, slot := range s.running {
			if !slot.active {
				continue
			}
			slot.active = false
			elapsed := now - slot.start
			s.stats.BusySeconds += elapsed
			r.served[slot.task.tenant] += elapsed
			r.logService(slot.task.tenant, slot.start, elapsed)
			slot.task.retry = true
			s.queue = append(s.queue, slot.task)
			r.res.Tenants[slot.task.tenant].Interrupted++
			s.stats.Interrupted++
			r.res.Interrupted++
			r.res.InterruptedSeconds += elapsed
		}
		s.running = s.running[:0]
		s.free = r.cfg.NodesPerShard
		s.queue = append(s.queue, s.nodeWait...)
		s.nodeWait = s.nodeWait[:0]
		if s.dispatching != nil {
			s.queue = append(s.queue, s.dispatching)
			s.dispatching = nil
		}
		s.mgrBusy = false
		s.mgrGen++
		at := s.restoreAt
		r.eng.At(at, func() {
			if s.down && r.eng.Now() >= s.restoreAt {
				s.down = false
				r.pump(s)
			}
		})
		r.wakeIdle(s)
	case fault.ShardDegrade:
		s.slow = ev.Factor
	case fault.ShardRepair:
		s.slow = 1
	}
}

// unslot removes slot from s.running, preserving launch order.
func (r *fleetRun) unslot(s *fleetShard, slot *runSlot) {
	for i, sl := range s.running {
		if sl == slot {
			s.running = append(s.running[:i], s.running[i+1:]...)
			return
		}
	}
}

func (r *fleetRun) logService(tenant int, start, seconds float64) {
	if r.cfg.TrackService {
		r.res.ServiceLog = append(r.res.ServiceLog,
			ServiceEvent{Tenant: tenant, Start: start, Seconds: seconds})
	}
}
