package core

import (
	"fmt"
	"math"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/sim"
)

// SchedulerKind selects how a hyperparameter campaign's evaluations are
// placed on nodes.
type SchedulerKind int

// Available campaign schedulers.
const (
	// StaticPartition assigns configs to nodes round-robin up front — the
	// naive decomposition, stragglers and all.
	StaticPartition SchedulerKind = iota
	// DynamicQueue feeds nodes from one global FIFO work queue.
	DynamicQueue
	// HierarchicalQueue shards the queue across groups with one manager
	// per group and work stealing between groups — the structure that
	// scales to the paper's "tens of thousands of model configurations".
	HierarchicalQueue
)

// String names the scheduler.
func (s SchedulerKind) String() string {
	switch s {
	case StaticPartition:
		return "static"
	case DynamicQueue:
		return "dynamic"
	case HierarchicalQueue:
		return "hierarchical"
	default:
		return "sched?"
	}
}

// CampaignConfig describes a large-scale hyperparameter campaign on a
// simulated machine.
type CampaignConfig struct {
	// Configs is the number of model configurations to evaluate.
	Configs int
	// Nodes is the machine size.
	Nodes int
	// GroupSize is the node-group size for the hierarchical scheduler.
	GroupSize int
	// MeanEvalTime is the mean per-evaluation wall-clock (seconds).
	MeanEvalTime float64
	// EvalTimeSigma is the lognormal sigma of evaluation durations —
	// hyperparameter configs differ wildly in cost (layer widths, epochs).
	EvalTimeSigma float64
	// MaxEvalTime caps a single evaluation's duration (real campaigns bound
	// training by a maximum epoch count). 0 means 10x MeanEvalTime.
	MaxEvalTime float64
	// DispatchOverhead is the scheduler's per-assignment latency: zero for
	// static (decided up front), paid per task by the dynamic global queue,
	// and paid per group-batch by the hierarchical scheduler.
	DispatchOverhead float64
	// Scheduler picks the placement policy.
	Scheduler SchedulerKind
	// Faults, if non-nil, subjects every evaluation to node crashes with the
	// process's per-node MTBF: a crashed attempt loses its work and the
	// evaluation restarts from scratch. Static and hierarchical schedulers
	// restart locally (the owning node or group relaunches); the dynamic
	// global queue requeues the evaluation through the manager, paying
	// DispatchOverhead again per attempt. Attempt segments are sampled up
	// front from a split stream, so the same seed yields the identical
	// failure schedule under every scheduler.
	Faults *fault.Process
	// MaxRetries caps restarts per evaluation when Faults is set: 0 retries
	// until the evaluation completes; k > 0 allows at most k restarts, after
	// which the configuration is abandoned (counted, not re-run).
	MaxRetries int
	// RestartOverhead is the wall-clock cost of relaunching a crashed
	// evaluation attempt (process restart + data restage), in seconds.
	RestartOverhead float64
	// RNG drives duration sampling.
	RNG *rng.Stream
	// Obs, if enabled, records dispatch/steal counters and busy/idle/
	// utilization gauges for the run.
	Obs *obs.Session
}

// CampaignResult reports a simulated campaign.
type CampaignResult struct {
	Scheduler   SchedulerKind
	Makespan    float64
	Utilization float64 // mean busy-node fraction over the makespan
	TotalWork   float64 // sum of evaluation durations
	// IdealMakespan is TotalWork/Nodes — the perfect-packing bound.
	IdealMakespan float64
	// Dispatches counts scheduler placement decisions (static: one per
	// config; dynamic: one per task through the manager; hierarchical: one
	// per group batch pull).
	Dispatches int
	// Steals counts hierarchical root pulls beyond each group's first —
	// the work-stealing traffic that keeps groups busy past their initial
	// share. Zero for the other schedulers.
	Steals int
	// NodeBusy is per-node busy seconds under static partitioning (the only
	// scheduler where node identity is fixed up front); nil otherwise.
	NodeBusy []float64
	// IdleNodeSeconds is Nodes*Makespan - TotalWork: aggregate time nodes
	// spent waiting on stragglers or the scheduler — and, under failure
	// injection, re-running lost work.
	IdleNodeSeconds float64
	// Failures counts evaluation attempts killed by injected node crashes.
	Failures int
	// Retries counts attempts re-run after a crash (Failures minus the final
	// crash of each abandoned configuration).
	Retries int
	// LostEvalSeconds is evaluation time burned by crashed attempts —
	// node-seconds spent on work that had to be redone or was abandoned.
	LostEvalSeconds float64
	// AbandonedConfigs counts configurations dropped after MaxRetries.
	AbandonedConfigs int
}

func (r CampaignResult) String() string {
	return fmt.Sprintf("%-12s makespan=%9.1fs utilization=%5.1f%% (ideal %9.1fs)",
		r.Scheduler, r.Makespan, 100*r.Utilization, r.IdealMakespan)
}

// RunCampaign simulates the campaign and returns makespan and utilization.
func RunCampaign(cfg CampaignConfig) (CampaignResult, error) {
	if cfg.Configs <= 0 || cfg.Nodes <= 0 {
		return CampaignResult{}, fmt.Errorf("core: campaign needs configs and nodes")
	}
	if cfg.MeanEvalTime <= 0 {
		return CampaignResult{}, fmt.Errorf("core: campaign needs positive eval time")
	}
	if cfg.RNG == nil {
		return CampaignResult{}, fmt.Errorf("core: campaign needs RNG")
	}
	if cfg.GroupSize <= 0 {
		cfg.GroupSize = 64
	}

	// Sample heterogeneous durations: lognormal with the requested mean.
	sigma := cfg.EvalTimeSigma
	mu := math.Log(cfg.MeanEvalTime) - sigma*sigma/2
	maxT := cfg.MaxEvalTime
	if maxT <= 0 {
		maxT = 10 * cfg.MeanEvalTime
	}
	durations := make([]float64, cfg.Configs)
	total := 0.0
	for i := range durations {
		d := cfg.RNG.LogNormal(mu, sigma)
		if d > maxT {
			d = maxT
		}
		durations[i] = d
		total += d
	}

	res := CampaignResult{
		Scheduler: cfg.Scheduler, TotalWork: total,
		IdealMakespan: total / float64(cfg.Nodes),
	}

	// Under failure injection every evaluation becomes a retry loop: sample
	// the attempt segments for all configs up front from a split stream so
	// the failure schedule is a function of the seed alone, identical under
	// every scheduler. attempts[i] is nil when config i runs failure-free.
	attempts := make([][]float64, cfg.Configs)
	if cfg.Faults != nil {
		if cfg.Faults.MTBF <= 0 {
			return CampaignResult{}, fmt.Errorf("core: campaign faults need MTBF > 0")
		}
		maxRetries := -1 // retry until completion
		if cfg.MaxRetries > 0 {
			maxRetries = cfg.MaxRetries
		}
		fr := cfg.RNG.Split("campaign-faults")
		for i, d := range durations {
			segs, completed := fault.AttemptSegments(fr, d, cfg.Faults.MTBF, maxRetries)
			if len(segs) == 1 && completed {
				continue // no crash touched this evaluation
			}
			attempts[i] = segs
			res.Retries += len(segs) - 1
			if completed {
				res.Failures += len(segs) - 1
				for _, s := range segs[:len(segs)-1] {
					res.LostEvalSeconds += s
				}
			} else {
				// Every attempt crashed and the retry budget ran out: the
				// whole evaluation is lost work.
				res.Failures += len(segs)
				res.AbandonedConfigs++
				for _, s := range segs {
					res.LostEvalSeconds += s
				}
			}
		}
	}
	// Effective node-seconds per config for schedulers that restart locally:
	// all attempt segments plus one restart overhead per retry.
	localCost := func(i int) float64 {
		if attempts[i] == nil {
			return durations[i]
		}
		c := float64(len(attempts[i])-1) * cfg.RestartOverhead
		for _, s := range attempts[i] {
			c += s
		}
		return c
	}

	switch cfg.Scheduler {
	case StaticPartition:
		// Round-robin assignment; makespan = max per-node sum. A crashed
		// evaluation restarts on its assigned node.
		perNode := make([]float64, cfg.Nodes)
		for i := range durations {
			perNode[i%cfg.Nodes] += localCost(i)
		}
		worst := 0.0
		for _, t := range perNode {
			if t > worst {
				worst = t
			}
		}
		res.Makespan = worst
		res.Dispatches = len(durations)
		res.NodeBusy = perNode
	case DynamicQueue:
		// Single global FIFO: every task pays the dispatch overhead on the
		// manager before a node runs it (the central-manager bottleneck).
		// A crashed attempt is requeued: the retry goes back through the
		// manager and pays the dispatch overhead again.
		eng := sim.NewEngine()
		nodes := sim.NewResource(eng, cfg.Nodes)
		manager := sim.NewResource(eng, 1)
		dispatches := 0
		var enqueue func(segs []float64, retry bool)
		enqueue = func(segs []float64, retry bool) {
			dispatches++
			manager.Acquire(func(releaseMgr func()) {
				eng.Schedule(cfg.DispatchOverhead, func() {
					releaseMgr()
					nodes.Acquire(func(releaseNode func()) {
						run := segs[0]
						if retry {
							run += cfg.RestartOverhead
						}
						eng.Schedule(run, func() {
							releaseNode()
							if len(segs) > 1 {
								enqueue(segs[1:], true)
							}
						})
					})
				})
			})
		}
		for i, d := range durations {
			if attempts[i] != nil {
				enqueue(attempts[i], false)
			} else {
				enqueue([]float64{d}, false)
			}
		}
		res.Makespan = eng.Run()
		res.Dispatches = dispatches
	case HierarchicalQueue:
		// Groups pull batches of work from the root (one overhead per
		// batch), then dispatch within the group for free; idle groups
		// keep pulling until the root queue drains (work stealing).
		eng := sim.NewEngine()
		groups := (cfg.Nodes + cfg.GroupSize - 1) / cfg.GroupSize
		next := 0
		batch := cfg.GroupSize / 4
		if batch < 1 {
			batch = 1
		}
		root := sim.NewResource(eng, 1)
		pullsPerGroup := make([]int, groups)
		for g := 0; g < groups; g++ {
			size := cfg.GroupSize
			if (g+1)*cfg.GroupSize > cfg.Nodes {
				size = cfg.Nodes - g*cfg.GroupSize
			}
			nodes := sim.NewResource(eng, size)
			inGroup := 0 // tasks pulled into this group and not yet finished
			pulling := false
			var pull func()
			pull = func() {
				// Keep roughly two batches in flight per group so nodes
				// never starve behind a straggler (no per-batch barrier).
				if pulling || next >= len(durations) || inGroup > size {
					return
				}
				pulling = true
				root.Acquire(func(releaseRoot func()) {
					if next >= len(durations) {
						releaseRoot()
						pulling = false
						return
					}
					lo := next
					hi := lo + batch
					if hi > len(durations) {
						hi = len(durations)
					}
					next = hi
					pullsPerGroup[g]++
					eng.Schedule(cfg.DispatchOverhead, func() {
						releaseRoot()
						pulling = false
						inGroup += hi - lo
						for i := lo; i < hi; i++ {
							// Crashed attempts restart inside the group: the
							// group manager relaunches without a root pull.
							d := localCost(i)
							nodes.Acquire(func(releaseNode func()) {
								eng.Schedule(d, func() {
									releaseNode()
									inGroup--
									pull()
								})
							})
						}
						pull()
					})
				})
			}
			pull()
		}
		res.Makespan = eng.Run()
		for _, pulls := range pullsPerGroup {
			res.Dispatches += pulls
			if pulls > 1 {
				res.Steals += pulls - 1
			}
		}
	default:
		return CampaignResult{}, fmt.Errorf("core: unknown scheduler %d", cfg.Scheduler)
	}

	if res.Makespan > 0 {
		res.Utilization = res.TotalWork / (res.Makespan * float64(cfg.Nodes))
	}
	res.IdleNodeSeconds = res.Makespan*float64(cfg.Nodes) - res.TotalWork
	if o := cfg.Obs; o.Enabled() {
		prefix := "campaign." + cfg.Scheduler.String()
		o.Count(prefix+".dispatches", int64(res.Dispatches))
		o.Count(prefix+".steals", int64(res.Steals))
		o.SetGauge(prefix+".busy_node_seconds", res.TotalWork)
		o.SetGauge(prefix+".idle_node_seconds", res.IdleNodeSeconds)
		o.OnEval(prefix+".utilization", res.Utilization)
		if cfg.Faults != nil {
			o.Count(prefix+".failures", int64(res.Failures))
			o.Count(prefix+".retries", int64(res.Retries))
			o.Count(prefix+".abandoned", int64(res.AbandonedConfigs))
			o.SetGauge(prefix+".lost_eval_seconds", res.LostEvalSeconds)
		}
	}
	return res, nil
}
