package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/sim"
)

// SchedulerKind selects how a hyperparameter campaign's evaluations are
// placed on nodes.
type SchedulerKind int

// Available campaign schedulers.
const (
	// StaticPartition assigns configs to nodes round-robin up front — the
	// naive decomposition, stragglers and all.
	StaticPartition SchedulerKind = iota
	// DynamicQueue feeds nodes from one global FIFO work queue.
	DynamicQueue
	// HierarchicalQueue shards the queue across groups with one manager
	// per group and work stealing between groups — the structure that
	// scales to the paper's "tens of thousands of model configurations".
	HierarchicalQueue
)

// String names the scheduler.
func (s SchedulerKind) String() string {
	switch s {
	case StaticPartition:
		return "static"
	case DynamicQueue:
		return "dynamic"
	case HierarchicalQueue:
		return "hierarchical"
	default:
		return "sched?"
	}
}

// CampaignConfig describes a large-scale hyperparameter campaign on a
// simulated machine.
type CampaignConfig struct {
	// Configs is the number of model configurations to evaluate.
	Configs int
	// Nodes is the machine size.
	Nodes int
	// GroupSize is the node-group size for the hierarchical scheduler.
	GroupSize int
	// MeanEvalTime is the mean per-evaluation wall-clock (seconds).
	MeanEvalTime float64
	// EvalTimeSigma is the lognormal sigma of evaluation durations —
	// hyperparameter configs differ wildly in cost (layer widths, epochs).
	EvalTimeSigma float64
	// MaxEvalTime caps a single evaluation's duration (real campaigns bound
	// training by a maximum epoch count). 0 means 10x MeanEvalTime.
	MaxEvalTime float64
	// DispatchOverhead is the scheduler's per-assignment latency: zero for
	// static (decided up front), paid per task by the dynamic global queue,
	// and paid per group-batch by the hierarchical scheduler.
	DispatchOverhead float64
	// Scheduler picks the placement policy.
	Scheduler SchedulerKind
	// Faults, if non-nil, subjects every evaluation to node crashes with the
	// process's per-node MTBF: a crashed attempt loses its work and the
	// evaluation restarts from scratch. Static and hierarchical schedulers
	// restart locally (the owning node or group relaunches); the dynamic
	// global queue requeues the evaluation through the manager, paying
	// DispatchOverhead again per attempt. Attempt segments are sampled up
	// front from a split stream, so the same seed yields the identical
	// failure schedule under every scheduler.
	Faults *fault.Process
	// MaxRetries caps restarts per evaluation when Faults is set: 0 retries
	// until the evaluation completes; k > 0 allows at most k restarts, after
	// which the configuration is abandoned (counted, not re-run).
	MaxRetries int
	// RestartOverhead is the wall-clock cost of relaunching a crashed
	// evaluation attempt (process restart + data restage), in seconds.
	RestartOverhead float64
	// RetryBackoffBase, when positive, inserts a capped exponential backoff
	// before each retry: min(Base*2^k, Cap) seconds before the k-th restart
	// (k from 0), jittered by RetryBackoffJitter. Zero keeps the legacy
	// immediate requeue. Backoffs are sampled up front from a split stream,
	// so the same seed yields the same backoff schedule under every
	// scheduler.
	RetryBackoffBase float64
	// RetryBackoffCap bounds the exponential backoff (0 = 8x the base).
	RetryBackoffCap float64
	// RetryBackoffJitter spreads each backoff uniformly over
	// [1-J, 1+J] to de-synchronize retry waves; clamped to [0, 1).
	RetryBackoffJitter float64
	// QuarantineAfter, when positive, quarantines a configuration once it
	// has crashed this many consecutive attempts: the scheduler stops
	// burning nodes on a likely poison pill instead of retrying forever.
	// Quarantined configs are counted in QuarantinedConfigs, not re-run.
	QuarantineAfter int
	// PoisonFraction marks a seeded fraction of configurations as poison
	// pills: every attempt deterministically crashes partway through (a bad
	// hyperparameter region that NaNs or OOMs every time), regardless of
	// the node MTBF. Requires QuarantineAfter or MaxRetries to bound the
	// retry loop — a poison pill never completes.
	PoisonFraction float64
	// PoisonRunFraction is the fraction of the evaluation's nominal
	// duration a poison attempt burns before crashing (0 = 0.25).
	PoisonRunFraction float64
	// RNG drives duration sampling.
	RNG *rng.Stream
	// Obs, if enabled, records dispatch/steal counters and busy/idle/
	// utilization gauges for the run, plus flight-recorder events for
	// quarantined, abandoned, and poison configurations.
	Obs *obs.Session
	// SLO, when non-nil, receives one availability event per configuration
	// at its virtual completion time (good = completed, bad = quarantined or
	// abandoned) plus burn-rate evaluation ticks across the makespan, so a
	// campaign's crash budget is monitored with the same machinery as the
	// serving SLOs. Events are fed in virtual-time order under every
	// scheduler, so the alert timeline is seed-deterministic.
	SLO *obs.SLOMonitor
}

// CampaignResult reports a simulated campaign.
type CampaignResult struct {
	Scheduler   SchedulerKind
	Makespan    float64
	Utilization float64 // mean busy-node fraction over the makespan
	TotalWork   float64 // sum of evaluation durations
	// IdealMakespan is TotalWork/Nodes — the perfect-packing bound.
	IdealMakespan float64
	// Dispatches counts scheduler placement decisions (static: one per
	// config; dynamic: one per task through the manager; hierarchical: one
	// per group batch pull).
	Dispatches int
	// Steals counts hierarchical root pulls beyond each group's first —
	// the work-stealing traffic that keeps groups busy past their initial
	// share. Zero for the other schedulers.
	Steals int
	// NodeBusy is per-node busy seconds under static partitioning (the only
	// scheduler where node identity is fixed up front); nil otherwise.
	NodeBusy []float64
	// IdleNodeSeconds is Nodes*Makespan - TotalWork: aggregate time nodes
	// spent waiting on stragglers or the scheduler — and, under failure
	// injection, re-running lost work.
	IdleNodeSeconds float64
	// Failures counts evaluation attempts killed by injected node crashes.
	Failures int
	// Retries counts attempts re-run after a crash (Failures minus the final
	// crash of each abandoned configuration).
	Retries int
	// LostEvalSeconds is evaluation time burned by crashed attempts —
	// node-seconds spent on work that had to be redone or was abandoned.
	LostEvalSeconds float64
	// AbandonedConfigs counts configurations dropped after MaxRetries.
	AbandonedConfigs int
	// BackoffSeconds is the total wall-clock spent waiting in retry
	// backoff across all configurations.
	BackoffSeconds float64
	// QuarantinedConfigs counts configurations pulled from the campaign
	// after QuarantineAfter consecutive crashed attempts.
	QuarantinedConfigs int
	// PoisonConfigs counts configurations the seeded poison draw marked as
	// always-crashing (every one ends quarantined or abandoned).
	PoisonConfigs int
}

func (r CampaignResult) String() string {
	return fmt.Sprintf("%-12s makespan=%9.1fs utilization=%5.1f%% (ideal %9.1fs)",
		r.Scheduler, r.Makespan, 100*r.Utilization, r.IdealMakespan)
}

// rest is boffs[1:] guarded against the no-backoff (nil) case.
func rest(boffs []float64) []float64 {
	if len(boffs) == 0 {
		return nil
	}
	return boffs[1:]
}

// preparedCampaign is one campaign's seeded workload, sampled up front: the
// heterogeneous evaluation durations, the failure schedule as per-config
// attempt segments, the retry backoffs, and the resulting retry/quarantine/
// poison decisions. Both RunCampaign and the sharded fleet scheduler
// (RunFleet) consume this, so for a given seed they make bit-for-bit
// identical decisions about what runs, what retries, and what is pulled —
// which is what the fleet-vs-campaign differential tests pin.
type preparedCampaign struct {
	durations []float64
	total     float64
	// attempts[i] is nil when config i runs failure-free; otherwise every
	// segment but possibly the last ends in a crash.
	attempts [][]float64
	// backoffs[i][k] is the wait before config i's k-th restart.
	backoffs [][]float64
	// cfgOK[i] is config i's final outcome: false only when every attempt
	// crashed (quarantined/abandoned/poison).
	cfgOK []bool

	failures, retries                               int
	abandonedConfigs, quarantinedConfigs, poisonCfg int
	lostEvalSeconds, backoffSeconds                 float64
}

// prepareCampaign samples the campaign workload from cfg.RNG. The draw order
// is fixed (durations, then faults, then poison, then backoffs, each from a
// split stream), so the schedule is a function of the seed alone — identical
// under every scheduler and under the sharded fleet.
func prepareCampaign(cfg *CampaignConfig) (*preparedCampaign, error) {
	if cfg.Configs <= 0 {
		return nil, fmt.Errorf("core: campaign needs configs")
	}
	if cfg.MeanEvalTime <= 0 {
		return nil, fmt.Errorf("core: campaign needs positive eval time")
	}
	if cfg.RNG == nil {
		return nil, fmt.Errorf("core: campaign needs RNG")
	}

	// Sample heterogeneous durations: lognormal with the requested mean.
	sigma := cfg.EvalTimeSigma
	mu := math.Log(cfg.MeanEvalTime) - sigma*sigma/2
	maxT := cfg.MaxEvalTime
	if maxT <= 0 {
		maxT = 10 * cfg.MeanEvalTime
	}
	p := &preparedCampaign{
		durations: make([]float64, cfg.Configs),
		attempts:  make([][]float64, cfg.Configs),
		backoffs:  make([][]float64, cfg.Configs),
		cfgOK:     make([]bool, cfg.Configs),
	}
	for i := range p.durations {
		d := cfg.RNG.LogNormal(mu, sigma)
		if d > maxT {
			d = maxT
		}
		p.durations[i] = d
		p.total += d
	}
	for i := range p.cfgOK {
		p.cfgOK[i] = true
	}
	if cfg.Faults == nil {
		return p, nil
	}

	if cfg.Faults.MTBF <= 0 {
		return nil, fmt.Errorf("core: campaign faults need MTBF > 0")
	}
	if cfg.PoisonFraction < 0 || cfg.PoisonFraction >= 1 {
		return nil, fmt.Errorf("core: PoisonFraction %v outside [0, 1)", cfg.PoisonFraction)
	}
	if cfg.PoisonFraction > 0 && cfg.QuarantineAfter <= 0 && cfg.MaxRetries <= 0 {
		return nil, fmt.Errorf("core: poison pills never complete; bound them with QuarantineAfter or MaxRetries")
	}
	// A retry budget and a quarantine threshold both cap attempts; the
	// tighter one binds.
	maxRetries := -1 // retry until completion
	if cfg.MaxRetries > 0 {
		maxRetries = cfg.MaxRetries
	}
	if q := cfg.QuarantineAfter; q > 0 && (maxRetries < 0 || q-1 < maxRetries) {
		maxRetries = q - 1
	}
	jitter := cfg.RetryBackoffJitter
	if jitter < 0 {
		jitter = 0
	} else if jitter >= 1 {
		jitter = math.Nextafter(1, 0)
	}
	backoffCap := cfg.RetryBackoffCap
	if backoffCap <= 0 {
		backoffCap = 8 * cfg.RetryBackoffBase
	}
	poisonFrac := cfg.PoisonRunFraction
	if poisonFrac <= 0 {
		poisonFrac = 0.25
	}
	fr := cfg.RNG.Split("campaign-faults")
	var pr, br *rng.Stream
	if cfg.PoisonFraction > 0 {
		pr = cfg.RNG.Split("campaign-poison")
	}
	if cfg.RetryBackoffBase > 0 {
		br = cfg.RNG.Split("campaign-backoff")
	}
	for i, d := range p.durations {
		var segs []float64
		completed := false
		if pr != nil && pr.Bernoulli(cfg.PoisonFraction) {
			// Poison pill: every attempt crashes at the same point, and
			// the retry loop runs to whichever bound binds first.
			p.poisonCfg++
			cfg.Obs.RecordFlight("poison", obs.Ctx{Trace: uint64(i + 1)},
				fmt.Sprintf("config=%d attempts=%d", i, maxRetries+1))
			segs = make([]float64, maxRetries+1)
			for j := range segs {
				segs[j] = poisonFrac * d
			}
		} else {
			segs, completed = fault.AttemptSegments(fr, d, cfg.Faults.MTBF, maxRetries)
			if len(segs) == 1 && completed {
				continue // no crash touched this evaluation
			}
		}
		p.attempts[i] = segs
		p.retries += len(segs) - 1
		if completed {
			p.failures += len(segs) - 1
			for _, s := range segs[:len(segs)-1] {
				p.lostEvalSeconds += s
			}
		} else {
			// Every attempt crashed and the retry loop gave up: the whole
			// evaluation is lost work. Attribute the drop to quarantine
			// when the quarantine threshold is what stopped the retries.
			p.failures += len(segs)
			p.cfgOK[i] = false
			if q := cfg.QuarantineAfter; q > 0 && len(segs) >= q {
				p.quarantinedConfigs++
				cfg.Obs.RecordFlight("quarantine", obs.Ctx{Trace: uint64(i + 1)},
					fmt.Sprintf("config=%d crashes=%d", i, len(segs)))
			} else {
				p.abandonedConfigs++
				cfg.Obs.RecordFlight("abandoned", obs.Ctx{Trace: uint64(i + 1)},
					fmt.Sprintf("config=%d crashes=%d", i, len(segs)))
			}
			for _, s := range segs {
				p.lostEvalSeconds += s
			}
		}
		if br != nil && len(segs) > 1 {
			bs := make([]float64, len(segs)-1)
			for k := range bs {
				b := cfg.RetryBackoffBase * math.Pow(2, float64(k))
				if b > backoffCap {
					b = backoffCap
				}
				if jitter > 0 {
					b *= br.Uniform(1-jitter, 1+jitter)
				}
				bs[k] = b
				p.backoffSeconds += b
			}
			p.backoffs[i] = bs
		}
	}
	return p, nil
}

// localCost is the effective node-seconds of config i for schedulers that
// restart locally: all attempt segments plus one restart overhead per retry,
// plus the retry backoff (the relaunch is pinned to the owning node or
// group, so the slot waits out the backoff in place).
func (p *preparedCampaign) localCost(i int, restartOverhead float64) float64 {
	if p.attempts[i] == nil {
		return p.durations[i]
	}
	c := float64(len(p.attempts[i])-1) * restartOverhead
	for _, s := range p.attempts[i] {
		c += s
	}
	for _, b := range p.backoffs[i] {
		c += b
	}
	return c
}

// RunCampaign simulates the campaign and returns makespan and utilization.
func RunCampaign(cfg CampaignConfig) (CampaignResult, error) {
	if cfg.Configs <= 0 || cfg.Nodes <= 0 {
		return CampaignResult{}, fmt.Errorf("core: campaign needs configs and nodes")
	}
	if cfg.GroupSize <= 0 {
		cfg.GroupSize = 64
	}
	prep, err := prepareCampaign(&cfg)
	if err != nil {
		return CampaignResult{}, err
	}
	durations, attempts, backoffs, cfgOK := prep.durations, prep.attempts, prep.backoffs, prep.cfgOK

	res := CampaignResult{
		Scheduler: cfg.Scheduler, TotalWork: prep.total,
		IdealMakespan:      prep.total / float64(cfg.Nodes),
		Failures:           prep.failures,
		Retries:            prep.retries,
		LostEvalSeconds:    prep.lostEvalSeconds,
		AbandonedConfigs:   prep.abandonedConfigs,
		BackoffSeconds:     prep.backoffSeconds,
		QuarantinedConfigs: prep.quarantinedConfigs,
		PoisonConfigs:      prep.poisonCfg,
	}
	localCost := func(i int) float64 { return prep.localCost(i, cfg.RestartOverhead) }

	// noteDone collects per-config completion events (virtual time, outcome)
	// for the SLO monitor; each scheduler reports them as it finishes work.
	type doneEvent struct {
		t  float64
		ok bool
	}
	var doneEvents []doneEvent
	noteDone := func(t float64, ok bool) {
		if cfg.SLO != nil {
			doneEvents = append(doneEvents, doneEvent{t, ok})
		}
	}

	switch cfg.Scheduler {
	case StaticPartition:
		// Round-robin assignment; makespan = max per-node sum. A crashed
		// evaluation restarts on its assigned node.
		perNode := make([]float64, cfg.Nodes)
		for i := range durations {
			perNode[i%cfg.Nodes] += localCost(i)
			noteDone(perNode[i%cfg.Nodes], cfgOK[i])
		}
		worst := 0.0
		for _, t := range perNode {
			if t > worst {
				worst = t
			}
		}
		res.Makespan = worst
		res.Dispatches = len(durations)
		res.NodeBusy = perNode
	case DynamicQueue:
		// Single global FIFO: every task pays the dispatch overhead on the
		// manager before a node runs it (the central-manager bottleneck).
		// A crashed attempt is requeued: the retry waits out its backoff off
		// the node (the slot is released and serves other work), then goes
		// back through the manager and pays the dispatch overhead again.
		eng := sim.NewEngine()
		nodes := sim.NewResource(eng, cfg.Nodes)
		manager := sim.NewResource(eng, 1)
		dispatches := 0
		var enqueue func(idx int, segs, boffs []float64, retry bool)
		enqueue = func(idx int, segs, boffs []float64, retry bool) {
			dispatches++
			manager.Acquire(func(releaseMgr func()) {
				eng.Schedule(cfg.DispatchOverhead, func() {
					releaseMgr()
					nodes.Acquire(func(releaseNode func()) {
						run := segs[0]
						if retry {
							run += cfg.RestartOverhead
						}
						eng.Schedule(run, func() {
							releaseNode()
							if len(segs) > 1 {
								requeue := func() { enqueue(idx, segs[1:], rest(boffs), true) }
								if len(boffs) > 0 && boffs[0] > 0 {
									eng.Schedule(boffs[0], requeue)
								} else {
									requeue()
								}
							} else {
								noteDone(eng.Now(), cfgOK[idx])
							}
						})
					})
				})
			})
		}
		for i, d := range durations {
			if attempts[i] != nil {
				enqueue(i, attempts[i], backoffs[i], false)
			} else {
				enqueue(i, []float64{d}, nil, false)
			}
		}
		res.Makespan = eng.Run()
		res.Dispatches = dispatches
	case HierarchicalQueue:
		// Groups pull batches of work from the root (one overhead per
		// batch), then dispatch within the group for free; idle groups
		// keep pulling until the root queue drains (work stealing).
		eng := sim.NewEngine()
		groups := (cfg.Nodes + cfg.GroupSize - 1) / cfg.GroupSize
		next := 0
		batch := cfg.GroupSize / 4
		if batch < 1 {
			batch = 1
		}
		root := sim.NewResource(eng, 1)
		pullsPerGroup := make([]int, groups)
		for g := 0; g < groups; g++ {
			size := cfg.GroupSize
			if (g+1)*cfg.GroupSize > cfg.Nodes {
				size = cfg.Nodes - g*cfg.GroupSize
			}
			nodes := sim.NewResource(eng, size)
			inGroup := 0 // tasks pulled into this group and not yet finished
			pulling := false
			var pull func()
			pull = func() {
				// Keep roughly two batches in flight per group so nodes
				// never starve behind a straggler (no per-batch barrier).
				if pulling || next >= len(durations) || inGroup > size {
					return
				}
				pulling = true
				root.Acquire(func(releaseRoot func()) {
					if next >= len(durations) {
						releaseRoot()
						pulling = false
						return
					}
					lo := next
					hi := lo + batch
					if hi > len(durations) {
						hi = len(durations)
					}
					next = hi
					pullsPerGroup[g]++
					eng.Schedule(cfg.DispatchOverhead, func() {
						releaseRoot()
						pulling = false
						inGroup += hi - lo
						for i := lo; i < hi; i++ {
							// Crashed attempts restart inside the group: the
							// group manager relaunches without a root pull.
							d := localCost(i)
							idx := i
							nodes.Acquire(func(releaseNode func()) {
								eng.Schedule(d, func() {
									releaseNode()
									inGroup--
									noteDone(eng.Now(), cfgOK[idx])
									pull()
								})
							})
						}
						pull()
					})
				})
			}
			pull()
		}
		res.Makespan = eng.Run()
		for _, pulls := range pullsPerGroup {
			res.Dispatches += pulls
			if pulls > 1 {
				res.Steals += pulls - 1
			}
		}
	default:
		return CampaignResult{}, fmt.Errorf("core: unknown scheduler %d", cfg.Scheduler)
	}

	// Replay config completions into the SLO monitor in virtual-time order,
	// ticking the burn-rate evaluator on a fixed cadence across the makespan
	// so alert windows see the campaign as a timeline rather than one batch.
	if cfg.SLO != nil && len(doneEvents) > 0 {
		sort.Slice(doneEvents, func(a, b int) bool { return doneEvents[a].t < doneEvents[b].t })
		step := res.Makespan / 64
		nextTick := step
		for _, ev := range doneEvents {
			for step > 0 && nextTick <= ev.t {
				cfg.SLO.Tick(nextTick)
				nextTick += step
			}
			cfg.SLO.RecordAvailability(ev.ok)
		}
		cfg.SLO.Tick(res.Makespan)
	}

	if res.Makespan > 0 {
		res.Utilization = res.TotalWork / (res.Makespan * float64(cfg.Nodes))
	}
	res.IdleNodeSeconds = res.Makespan*float64(cfg.Nodes) - res.TotalWork
	if o := cfg.Obs; o.Enabled() {
		prefix := "campaign." + cfg.Scheduler.String()
		o.Count(prefix+".dispatches", int64(res.Dispatches))
		o.Count(prefix+".steals", int64(res.Steals))
		o.SetGauge(prefix+".busy_node_seconds", res.TotalWork)
		o.SetGauge(prefix+".idle_node_seconds", res.IdleNodeSeconds)
		o.OnEval(prefix+".utilization", res.Utilization)
		if cfg.Faults != nil {
			o.Count(prefix+".failures", int64(res.Failures))
			o.Count(prefix+".retries", int64(res.Retries))
			o.Count(prefix+".abandoned", int64(res.AbandonedConfigs))
			o.Count(prefix+".quarantined", int64(res.QuarantinedConfigs))
			o.Count(prefix+".poison", int64(res.PoisonConfigs))
			o.SetGauge(prefix+".lost_eval_seconds", res.LostEvalSeconds)
			o.SetGauge(prefix+".backoff_seconds", res.BackoffSeconds)
		}
	}
	return res, nil
}
