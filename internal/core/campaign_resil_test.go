package core

import (
	"testing"

	"repro/internal/fault"
)

// Backoff bugfix: retries used to requeue immediately; now each restart
// waits out a capped exponential backoff, deterministically per seed, and
// the total wait is surfaced in the result.
func TestCampaignBackoffDeterministicAndAccounted(t *testing.T) {
	for _, sched := range []SchedulerKind{StaticPartition, DynamicQueue, HierarchicalQueue} {
		t.Run(sched.String(), func(t *testing.T) {
			mk := func() CampaignConfig {
				cfg := faultCampaign(sched, 11, nodeProc(16))
				cfg.RetryBackoffBase = 1
				cfg.RetryBackoffCap = 10
				cfg.RetryBackoffJitter = 0.5
				return cfg
			}
			a, err := RunCampaign(mk())
			if err != nil {
				t.Fatal(err)
			}
			b, err := RunCampaign(mk())
			if err != nil {
				t.Fatal(err)
			}
			if a.Makespan != b.Makespan || a.BackoffSeconds != b.BackoffSeconds {
				t.Fatalf("same seed, different backoff schedule:\n%+v\n%+v", a, b)
			}
			if a.Retries == 0 || a.BackoffSeconds <= 0 {
				t.Fatalf("retries without backoff: %+v", a)
			}
			// Capped exponential with +-50% jitter: every backoff lies in
			// [0.5*base, 1.5*cap], so the total is bounded by the retry count.
			if a.BackoffSeconds < 0.5*float64(a.Retries) || a.BackoffSeconds > 1.5*10*float64(a.Retries) {
				t.Fatalf("backoff total %v out of range for %d retries", a.BackoffSeconds, a.Retries)
			}

			// Backoff only ever adds time over the immediate-requeue legacy.
			legacy, err := RunCampaign(faultCampaign(sched, 11, nodeProc(16)))
			if err != nil {
				t.Fatal(err)
			}
			if legacy.BackoffSeconds != 0 {
				t.Fatalf("legacy immediate requeue reports backoff: %+v", legacy)
			}
			if a.Makespan < legacy.Makespan {
				t.Fatalf("backoff shrank the makespan: %v vs %v", a.Makespan, legacy.Makespan)
			}
		})
	}
}

// Without jitter the backoff before retry k is exactly min(base*2^k, cap).
func TestCampaignBackoffIsCappedExponential(t *testing.T) {
	// MTBF 20 over ~100s evals forces long retry chains; retries are
	// unbounded so chains reach the cap.
	cfg := faultCampaign(StaticPartition, 5, &fault.Process{Nodes: 16, MTBF: 20, Horizon: 1e9})
	cfg.RetryBackoffBase = 1
	cfg.RetryBackoffCap = 4
	res, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Per config the first three backoffs are 1, 2, 4 and every later one
	// is 4, so the average per retry lies in [1, 4].
	if res.BackoffSeconds < float64(res.Retries) || res.BackoffSeconds > 4*float64(res.Retries) {
		t.Fatalf("backoff %v for %d retries violates the [base, cap] envelope",
			res.BackoffSeconds, res.Retries)
	}
}

// Quarantine pulls configurations that keep crashing, bounding the work
// burned on them even when retries are otherwise unlimited.
func TestCampaignQuarantineBoundsRetries(t *testing.T) {
	cfg := faultCampaign(StaticPartition, 5, &fault.Process{Nodes: 16, MTBF: 20, Horizon: 1e9})
	cfg.QuarantineAfter = 2
	res, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.QuarantinedConfigs == 0 {
		t.Fatal("MTBF 20 with QuarantineAfter 2 quarantined nothing")
	}
	if res.AbandonedConfigs != 0 {
		t.Fatalf("no MaxRetries set, yet %d configs counted abandoned", res.AbandonedConfigs)
	}
	// At most QuarantineAfter attempts per config.
	if res.Failures > 300*2 {
		t.Fatalf("failures %d exceed the quarantine attempt bound", res.Failures)
	}
}

// Poison pills deterministically crash every attempt and always end up
// quarantined; the rest of the campaign completes around them.
func TestCampaignPoisonPillsQuarantined(t *testing.T) {
	mk := func() CampaignConfig {
		cfg := faultCampaign(DynamicQueue, 17, nodeProc(16))
		cfg.PoisonFraction = 0.1
		cfg.QuarantineAfter = 3
		cfg.RetryBackoffBase = 0.5
		return cfg
	}
	res, err := RunCampaign(mk())
	if err != nil {
		t.Fatal(err)
	}
	if res.PoisonConfigs == 0 {
		t.Fatal("10% poison draw over 300 configs marked nothing")
	}
	if res.QuarantinedConfigs < res.PoisonConfigs {
		t.Fatalf("%d poison configs but only %d quarantined",
			res.PoisonConfigs, res.QuarantinedConfigs)
	}
	// Every poison config burns exactly QuarantineAfter attempts.
	if res.Failures < 3*res.PoisonConfigs {
		t.Fatalf("%d failures too few for %d poison pills at 3 attempts each",
			res.Failures, res.PoisonConfigs)
	}
	// Deterministic: the poison draw comes from a split stream.
	again, err := RunCampaign(mk())
	if err != nil {
		t.Fatal(err)
	}
	if res.PoisonConfigs != again.PoisonConfigs || res.Makespan != again.Makespan {
		t.Fatalf("same seed, different poison campaign:\n%+v\n%+v", res, again)
	}
	// The dynamic queue still requeues each retry through the manager.
	if res.Dispatches != 300+res.Retries {
		t.Fatalf("dispatches %d, want configs+retries = %d", res.Dispatches, 300+res.Retries)
	}
}

func TestCampaignResilValidation(t *testing.T) {
	cfg := faultCampaign(StaticPartition, 1, nodeProc(16))
	cfg.PoisonFraction = 0.1 // unbounded retry loop on a pill that never completes
	if _, err := RunCampaign(cfg); err == nil {
		t.Fatal("poison pills without QuarantineAfter or MaxRetries accepted")
	}
	cfg.PoisonFraction = 1.5
	if _, err := RunCampaign(cfg); err == nil {
		t.Fatal("PoisonFraction > 1 accepted")
	}
}
