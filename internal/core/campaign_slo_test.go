package core

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/rng"
)

// sloCampaign is faultCampaign with quarantine and poison pills enabled so
// some configs finish bad, plus an SLO monitor over config availability.
func sloCampaign(sched SchedulerKind, seed uint64) (CampaignConfig, *obs.SLOMonitor) {
	mon := obs.NewSLOMonitor(
		[]obs.Objective{{Name: "config_availability", Target: 0.99}},
		obs.ScaledBurnRules(500*time.Second))
	cfg := faultCampaign(sched, seed, nodeProc(16))
	cfg.QuarantineAfter = 2
	cfg.PoisonFraction = 0.05
	cfg.SLO = mon
	return cfg, mon
}

// TestCampaignSLOCountsOutcomes checks the monitor sees exactly one
// availability event per config, with bad = quarantined + abandoned, and
// that the timeline is deterministic across runs.
func TestCampaignSLOCountsOutcomes(t *testing.T) {
	for _, sched := range []SchedulerKind{StaticPartition, DynamicQueue, HierarchicalQueue} {
		t.Run(sched.String(), func(t *testing.T) {
			cfg, mon := sloCampaign(sched, 11)
			res, err := RunCampaign(cfg)
			if err != nil {
				t.Fatal(err)
			}
			status := mon.Status()
			if len(status) != 1 {
				t.Fatalf("status = %+v", status)
			}
			st := status[0]
			if st.Total != uint64(cfg.Configs) {
				t.Errorf("monitor saw %d events, want one per config (%d)", st.Total, cfg.Configs)
			}
			bad := res.QuarantinedConfigs + res.AbandonedConfigs
			if bad == 0 {
				t.Fatal("poison pills + quarantine produced no bad configs; test is vacuous")
			}
			if got := st.Total - st.Good; got != uint64(bad) {
				t.Errorf("monitor bad = %d, result says quarantined+abandoned = %d", got, bad)
			}

			cfg2, mon2 := sloCampaign(sched, 11)
			if _, err := RunCampaign(cfg2); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(mon.Timeline(), mon2.Timeline()) {
				t.Errorf("same seed gave different alert timelines:\n%+v\n%+v",
					mon.Timeline(), mon2.Timeline())
			}
		})
	}
}

// TestCampaignFlightRecordsQuarantine checks the obs flight recorder dumps
// on quarantine/poison triggers with the config index as the trace id.
func TestCampaignFlightRecordsQuarantine(t *testing.T) {
	sess := obs.NewSession()
	sess.Flight.TriggerOn("quarantine", "poison")
	cfg, _ := sloCampaign(DynamicQueue, 11)
	cfg.Obs = sess
	res, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[string]int{}
	for _, ev := range sess.Flight.Events() {
		kinds[ev.Kind]++
		if (ev.Kind == "quarantine" || ev.Kind == "poison") && ev.Trace == 0 {
			t.Errorf("%s event has no trace id: %+v", ev.Kind, ev)
		}
	}
	if res.QuarantinedConfigs > 0 && kinds["quarantine"] == 0 {
		t.Errorf("%d quarantined configs but no quarantine flight events", res.QuarantinedConfigs)
	}
	if len(sess.Flight.Dumps()) == 0 {
		t.Error("quarantine triggers produced no flight dumps")
	}
}

// TestCampaignNilSLOIsFree pins that a nil SLO monitor costs nothing:
// results are identical with and without the field set.
func TestCampaignNilSLOIsFree(t *testing.T) {
	mk := func(withNilSLO bool) CampaignConfig {
		cfg := CampaignConfig{
			Configs: 60, Nodes: 8, GroupSize: 4,
			MeanEvalTime: 50, EvalTimeSigma: 0.5,
			DispatchOverhead: 0.05, RestartOverhead: 1,
			Scheduler: DynamicQueue, Faults: &fault.Process{Nodes: 8, MTBF: 300, Horizon: 1e9},
			RNG: rng.New(5),
		}
		if withNilSLO {
			cfg.SLO = nil // explicit: a nil monitor must change nothing
		}
		return cfg
	}
	a, err := RunCampaign(mk(false))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCampaign(mk(true))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("nil SLO monitor changed the result:\n%+v\n%+v", a, b)
	}
}
