package core

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/rng"
)

func faultCampaign(sched SchedulerKind, seed uint64, proc *fault.Process) CampaignConfig {
	return CampaignConfig{
		Configs: 300, Nodes: 16, GroupSize: 8,
		MeanEvalTime: 100, EvalTimeSigma: 0.8,
		DispatchOverhead: 0.05, RestartOverhead: 2,
		Scheduler: sched, Faults: proc,
		RNG: rng.New(seed),
	}
}

// nodeProc is a per-node failure process sized so a decent fraction of the
// ~100 s evaluations crash at least once.
func nodeProc(nodes int) *fault.Process {
	return &fault.Process{Nodes: nodes, MTBF: 400, Horizon: 1e9}
}

// Chaos property (a): the same seed yields the identical failure schedule
// and therefore the identical campaign result, for every scheduler.
func TestCampaignFaultsDeterministic(t *testing.T) {
	for _, sched := range []SchedulerKind{StaticPartition, DynamicQueue, HierarchicalQueue} {
		t.Run(sched.String(), func(t *testing.T) {
			a, err := RunCampaign(faultCampaign(sched, 11, nodeProc(16)))
			if err != nil {
				t.Fatal(err)
			}
			b, err := RunCampaign(faultCampaign(sched, 11, nodeProc(16)))
			if err != nil {
				t.Fatal(err)
			}
			if a.Makespan != b.Makespan || a.Failures != b.Failures ||
				a.Retries != b.Retries || a.LostEvalSeconds != b.LostEvalSeconds ||
				a.Dispatches != b.Dispatches {
				t.Fatalf("same seed, different result:\n%+v\n%+v", a, b)
			}
			if a.Failures == 0 {
				t.Fatal("MTBF 400 over ~100s evals produced zero failures")
			}
		})
	}
}

// The failure schedule is sampled after durations from a split stream, so
// failures only ever add time: the faulty makespan dominates the clean one,
// and the lost eval-seconds are visible in the accounting.
func TestCampaignFaultsCostTime(t *testing.T) {
	for _, sched := range []SchedulerKind{StaticPartition, DynamicQueue, HierarchicalQueue} {
		t.Run(sched.String(), func(t *testing.T) {
			clean, err := RunCampaign(faultCampaign(sched, 7, nil))
			if err != nil {
				t.Fatal(err)
			}
			faulty, err := RunCampaign(faultCampaign(sched, 7, nodeProc(16)))
			if err != nil {
				t.Fatal(err)
			}
			if clean.Failures != 0 || clean.LostEvalSeconds != 0 {
				t.Fatalf("fault-free run reports failures: %+v", clean)
			}
			if faulty.TotalWork != clean.TotalWork {
				t.Fatalf("faults changed the sampled durations: %v vs %v",
					faulty.TotalWork, clean.TotalWork)
			}
			if faulty.Makespan <= clean.Makespan {
				t.Fatalf("failures did not extend makespan: %v vs %v",
					faulty.Makespan, clean.Makespan)
			}
			if faulty.LostEvalSeconds <= 0 || faulty.Retries < faulty.AbandonedConfigs {
				t.Fatalf("implausible fault accounting: %+v", faulty)
			}
			if faulty.Utilization >= clean.Utilization {
				t.Fatalf("lost work did not lower utilization: %v vs %v",
					faulty.Utilization, clean.Utilization)
			}
		})
	}
}

// The dynamic queue requeues each retry through the manager, so its dispatch
// count must exceed the config count by exactly the retry count.
func TestCampaignDynamicRequeue(t *testing.T) {
	res, err := RunCampaign(faultCampaign(DynamicQueue, 3, nodeProc(16)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Retries == 0 {
		t.Fatal("expected retries")
	}
	want := 300 + res.Retries
	if res.Dispatches != want {
		t.Fatalf("dispatches %d, want configs+retries = %d", res.Dispatches, want)
	}
}

// A retry budget turns unbounded retry loops into abandoned configurations.
func TestCampaignMaxRetriesAbandons(t *testing.T) {
	cfg := faultCampaign(StaticPartition, 5, &fault.Process{Nodes: 16, MTBF: 20, Horizon: 1e9})
	cfg.MaxRetries = 1
	res, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.AbandonedConfigs == 0 {
		t.Fatal("MTBF 20 with MaxRetries 1 abandoned nothing")
	}
	// Bounded: at most MaxRetries+1 attempts per config.
	if res.Failures > 300*2 {
		t.Fatalf("failures %d exceed the attempt bound", res.Failures)
	}
	// With MaxRetries unset and a survivable MTBF, every config completes.
	unlimited, err := RunCampaign(faultCampaign(StaticPartition, 5, nodeProc(16)))
	if err != nil {
		t.Fatal(err)
	}
	if unlimited.AbandonedConfigs != 0 {
		t.Fatalf("unlimited retries abandoned %d configs", unlimited.AbandonedConfigs)
	}
}

// Failure events flow into the observability session as counters and gauges.
func TestCampaignFaultObs(t *testing.T) {
	sess := obs.NewSession()
	cfg := faultCampaign(DynamicQueue, 9, nodeProc(16))
	cfg.Obs = sess
	res, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	snap := sess.Snapshot()
	counters := map[string]int64{}
	for _, c := range snap.Counters {
		counters[c.Name] = c.Value
	}
	if counters["campaign.dynamic.failures"] != int64(res.Failures) {
		t.Fatalf("failures counter %d != result %d",
			counters["campaign.dynamic.failures"], res.Failures)
	}
	if counters["campaign.dynamic.retries"] != int64(res.Retries) {
		t.Fatal("retries counter missing")
	}
}

func TestCampaignFaultValidation(t *testing.T) {
	cfg := faultCampaign(StaticPartition, 1, &fault.Process{Nodes: 16, MTBF: 0})
	if _, err := RunCampaign(cfg); err == nil {
		t.Fatal("zero-MTBF fault process accepted")
	}
}
