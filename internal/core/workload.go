// Package core ties the substrates together into the paper's deliverable:
// the six biomedical deep-learning driver problems as ready-to-run
// workloads (data generator + reference model + search space + objective),
// plus the large-scale hyperparameter campaign scheduler the paper argues
// future HPC systems must support.
package core

import (
	"fmt"
	"math"

	"repro/internal/biodata"
	"repro/internal/hpo"
	"repro/internal/nn"
	"repro/internal/rng"
)

// Scale selects dataset/model sizing: Tiny for unit tests, Small for
// benchmarks and examples, Full for the headline experiment runs.
type Scale int

// Available scales.
const (
	Tiny Scale = iota
	Small
	Full
)

// String names the scale.
func (s Scale) String() string {
	switch s {
	case Tiny:
		return "tiny"
	case Small:
		return "small"
	case Full:
		return "full"
	default:
		return "scale?"
	}
}

// scaleMul maps a Scale to a sample-count multiplier relative to Small.
func (s Scale) mul() float64 {
	switch s {
	case Tiny:
		return 0.25
	case Full:
		return 2.5
	default:
		return 1
	}
}

// Workload is one driver problem: deterministic data generation, a
// hyperparameter space, a model builder, and an objective for HPO.
type Workload struct {
	Name        string
	Description string
	// Classification is true for classification tasks (accuracy metric),
	// false for regression/reconstruction (MSE metric).
	Classification bool
	// Space is the hyperparameter search space of the reference model.
	Space *hpo.Space
	// Generate produces a train/test pair at the given scale.
	Generate func(scale Scale, r *rng.Stream) (train, test *biodata.Dataset)
	// NewModel builds a model for the given hyperparameters.
	NewModel func(cfg hpo.Config, inDim, outDim int, r *rng.Stream) *nn.Net
	// Epochs is the full-budget epoch count for objective evaluations.
	Epochs int
}

// standardSpace is the shared MLP hyperparameter space.
func standardSpace() *hpo.Space {
	return hpo.MustSpace(
		hpo.Param{Name: "lr", Kind: hpo.LogContinuous, Lo: 1e-4, Hi: 0.1},
		hpo.Param{Name: "units1", Kind: hpo.Integer, Lo: 8, Hi: 128},
		hpo.Param{Name: "units2", Kind: hpo.Integer, Lo: 4, Hi: 64},
		hpo.Param{Name: "dropout", Kind: hpo.Continuous, Lo: 0, Hi: 0.6},
		hpo.Param{Name: "act", Kind: hpo.Categorical, Choices: []string{"relu", "tanh", "gelu"}},
		hpo.Param{Name: "decay", Kind: hpo.LogContinuous, Lo: 1e-6, Hi: 1e-2},
	)
}

// standardModel builds a two-hidden-layer MLP from the standard space.
func standardModel(cfg hpo.Config, space *hpo.Space, inDim, outDim int, r *rng.Stream) *nn.Net {
	act, err := nn.ParseAct(space.Choice(cfg, "act"))
	if err != nil {
		act = nn.ReLU
	}
	u1, u2 := cfg.Int("units1"), cfg.Int("units2")
	drop := cfg.Float("dropout")
	layers := []nn.Layer{
		nn.NewDense(inDim, u1, r.Split("d1")),
		nn.NewActivation(act),
	}
	if drop > 0 {
		layers = append(layers, nn.NewDropout(drop, r.Split("dr1")))
	}
	layers = append(layers,
		nn.NewDense(u1, u2, r.Split("d2")),
		nn.NewActivation(act),
		nn.NewDense(u2, outDim, r.Split("d3")),
	)
	return nn.NewNet(layers...)
}

// optimizerFor builds the optimizer a config specifies.
func optimizerFor(cfg hpo.Config) nn.Optimizer {
	return nn.NewAdamW(cfg.Float("lr"), cfg.Float("decay"))
}

// Workloads returns the six driver problems the paper names.
func Workloads() []*Workload {
	mk := func(name, desc string, classification bool, epochs int,
		gen func(scale Scale, r *rng.Stream) (train, test *biodata.Dataset)) *Workload {
		space := standardSpace()
		return &Workload{
			Name: name, Description: desc, Classification: classification,
			Space: space, Generate: gen, Epochs: epochs,
			NewModel: func(cfg hpo.Config, inDim, outDim int, r *rng.Stream) *nn.Net {
				return standardModel(cfg, space, inDim, outDim, r)
			},
		}
	}
	return []*Workload{
		mk("tumor", "tumor type classification from expression profiles (NT3/TC1-shaped)",
			true, 20, func(scale Scale, r *rng.Stream) (*biodata.Dataset, *biodata.Dataset) {
				cfg := biodata.DefaultTumorConfig()
				cfg.Samples = int(float64(cfg.Samples) * scale.mul())
				return biodata.Tumor(cfg, r.Split("gen")).Split(0.8, r.Split("split"))
			}),
		mk("drugresponse", "dose-response regression for tumor/compound pairs (P1B3-shaped)",
			false, 25, func(scale Scale, r *rng.Stream) (*biodata.Dataset, *biodata.Dataset) {
				cfg := biodata.DefaultDrugResponseConfig()
				cfg.Pairs = int(float64(cfg.Pairs) * scale.mul())
				return biodata.DrugResponse(cfg, r.Split("gen")).Split(0.8, r.Split("split"))
			}),
		mk("expression-ae", "gene expression compression autoencoder (P1B1-shaped)",
			false, 30, func(scale Scale, r *rng.Stream) (*biodata.Dataset, *biodata.Dataset) {
				cfg := biodata.DefaultAutoencoderConfig()
				cfg.Samples = int(float64(cfg.Samples) * scale.mul())
				return biodata.AutoencoderExpression(cfg, r.Split("gen")).Split(0.8, r.Split("split"))
			}),
		mk("medrecords", "optimal treatment selection from medical records",
			true, 25, func(scale Scale, r *rng.Stream) (*biodata.Dataset, *biodata.Dataset) {
				cfg := biodata.DefaultMedRecordsConfig()
				cfg.Patients = int(float64(cfg.Patients) * scale.mul())
				return biodata.MedRecords(cfg, r.Split("gen")).Split(0.8, r.Split("split"))
			}),
		mk("amr", "antibiotic resistance prediction from genomic k-mers",
			true, 30, func(scale Scale, r *rng.Stream) (*biodata.Dataset, *biodata.Dataset) {
				cfg := biodata.DefaultAMRConfig()
				cfg.Samples = int(float64(cfg.Samples) * scale.mul())
				return biodata.AMR(cfg, r.Split("gen")).Split(0.8, r.Split("split"))
			}),
		mk("mdsurrogate", "metastable state labelling of MD trajectory frames",
			true, 15, func(scale Scale, r *rng.Stream) (*biodata.Dataset, *biodata.Dataset) {
				cfg := biodata.DefaultMDConfig()
				cfg.Frames = int(float64(cfg.Frames) * scale.mul())
				ds := biodata.MDTrajectory(cfg, r.Split("gen"))
				// Chronological split, as an online MD supervisor sees data.
				n := ds.N()
				cut := n * 4 / 5
				return chronoSplit(ds, cut)
			}),
	}
}

func chronoSplit(ds *biodata.Dataset, cut int) (*biodata.Dataset, *biodata.Dataset) {
	train := &biodata.Dataset{Name: ds.Name, NumClasses: ds.NumClasses,
		X: ds.X.SliceRows(0, cut).Clone(), Y: ds.Y.SliceRows(0, cut).Clone()}
	test := &biodata.Dataset{Name: ds.Name, NumClasses: ds.NumClasses,
		X: ds.X.SliceRows(cut, ds.N()).Clone(), Y: ds.Y.SliceRows(cut, ds.N()).Clone()}
	if ds.Labels != nil {
		train.Labels = append([]int(nil), ds.Labels[:cut]...)
		test.Labels = append([]int(nil), ds.Labels[cut:]...)
	}
	return train, test
}

// HardTumor returns a deliberately difficult tumor-classification variant
// (weak class separation, heavy noise, strong pathway confounders) used by
// the precision and search experiments, where the default tumor problem is
// too easy to discriminate between methods.
func HardTumor() *Workload {
	space := standardSpace()
	return &Workload{
		Name:           "tumor-hard",
		Description:    "low-separation tumor classification (discriminative benchmark variant)",
		Classification: true,
		Space:          space,
		Epochs:         20,
		Generate: func(scale Scale, r *rng.Stream) (*biodata.Dataset, *biodata.Dataset) {
			cfg := biodata.TumorConfig{Samples: 1600, Genes: 256, Classes: 4,
				Informative: 20, Separation: 0.9, Noise: 1.2, PathwayBlocks: 16}
			cfg.Samples = int(float64(cfg.Samples) * scale.mul())
			return biodata.Tumor(cfg, r.Split("gen")).Split(0.8, r.Split("split"))
		},
		NewModel: func(cfg hpo.Config, inDim, outDim int, r *rng.Stream) *nn.Net {
			return standardModel(cfg, space, inDim, outDim, r)
		},
	}
}

// Histology returns the 2-D imaging extension workload: tissue-patch
// classification with a small convolutional network (the paper's image-
// based tumor diagnosis driver). It is not one of the six core drivers but
// exercises the Conv2D path end to end.
func Histology() *Workload {
	side := biodata.DefaultHistologyConfig().Side
	space := hpo.MustSpace(
		hpo.Param{Name: "lr", Kind: hpo.LogContinuous, Lo: 1e-4, Hi: 0.05},
		hpo.Param{Name: "filters", Kind: hpo.Integer, Lo: 4, Hi: 16},
		hpo.Param{Name: "kernel", Kind: hpo.Categorical, Choices: []string{"3", "5"}},
		hpo.Param{Name: "dense", Kind: hpo.Integer, Lo: 8, Hi: 64},
		hpo.Param{Name: "dropout", Kind: hpo.Continuous, Lo: 0, Hi: 0.5},
		hpo.Param{Name: "decay", Kind: hpo.LogContinuous, Lo: 1e-6, Hi: 1e-2},
	)
	return &Workload{
		Name:           "histology",
		Description:    "tissue-patch classification with a convolutional network",
		Classification: true,
		Space:          space,
		Epochs:         15,
		Generate: func(scale Scale, r *rng.Stream) (*biodata.Dataset, *biodata.Dataset) {
			cfg := biodata.DefaultHistologyConfig()
			cfg.Samples = int(float64(cfg.Samples) * scale.mul())
			return biodata.Histology(cfg, r.Split("gen")).Split(0.8, r.Split("split"))
		},
		NewModel: func(cfg hpo.Config, inDim, outDim int, r *rng.Stream) *nn.Net {
			filters := cfg.Int("filters")
			kernel := 3
			if space.Choice(cfg, "kernel") == "5" {
				kernel = 5
			}
			conv := nn.NewConv2D(1, side, side, filters, kernel, 1, kernel/2, r.Split("conv"))
			oh, ow := conv.OutDims()
			pool := nn.NewMaxPool2D(filters, oh, ow, 2, 0)
			ph, pw := pool.OutDims()
			layers := []nn.Layer{conv, nn.NewActivation(nn.ReLU), pool}
			if d := cfg.Float("dropout"); d > 0 {
				layers = append(layers, nn.NewDropout(d, r.Split("drop")))
			}
			layers = append(layers,
				nn.NewDense(filters*ph*pw, cfg.Int("dense"), r.Split("fc1")),
				nn.NewActivation(nn.ReLU),
				nn.NewDense(cfg.Int("dense"), outDim, r.Split("fc2")))
			return nn.NewNet(layers...)
		},
	}
}

// Extensions returns the workloads beyond the paper's six core drivers.
func Extensions() []*Workload {
	return []*Workload{HardTumor(), Histology()}
}

// ByName returns the named workload: the six driver problems plus the
// extension variants ("tumor-hard", "histology").
func ByName(name string) (*Workload, error) {
	for _, w := range Workloads() {
		if w.Name == name {
			return w, nil
		}
	}
	for _, w := range Extensions() {
		if w.Name == name {
			return w, nil
		}
	}
	return nil, fmt.Errorf("core: unknown workload %q", name)
}

// EvalResult reports one model evaluation.
type EvalResult struct {
	// Loss is the HPO objective: test error (1-accuracy) for
	// classification, test MSE for regression.
	Loss float64
	// Accuracy is the test accuracy (classification only, else NaN).
	Accuracy float64
	// TrainLoss is the final training loss.
	TrainLoss float64
	// Params is the model's parameter count.
	Params int
}

// Evaluate trains the workload's model for cfg at the given budget fraction
// of full epochs and returns test metrics. Deterministic in (cfg, budget,
// seed, scale).
func (w *Workload) Evaluate(cfg hpo.Config, scale Scale, budget float64, seed uint64) EvalResult {
	r := rng.New(seed)
	// Data is regenerated per evaluation from a seed-independent stream so
	// every trial sees the same datasets.
	dataR := rng.New(0xDA7A).Split(w.Name + scale.String())
	train, test := w.Generate(scale, dataR)
	if !w.Classification {
		// keep targets as-is
	}
	net := w.NewModel(cfg, train.Dim(), train.OutDim(), r.Split("model"))
	epochs := int(math.Ceil(float64(w.Epochs) * budget))
	if epochs < 1 {
		epochs = 1
	}
	var loss nn.Loss
	if w.Classification {
		loss = nn.SoftmaxCELoss{}
	} else {
		loss = nn.MSELoss{}
	}
	res, err := nn.Train(net, train.X, train.Y, nn.TrainConfig{
		Loss: loss, Optimizer: optimizerFor(cfg),
		BatchSize: 32, Epochs: epochs,
		Shuffle: true, RNG: r.Split("shuffle"),
	})
	if err != nil {
		return EvalResult{Loss: math.Inf(1), Accuracy: math.NaN()}
	}
	out := EvalResult{TrainLoss: res.FinalLoss, Params: net.NumParams(), Accuracy: math.NaN()}
	if w.Classification {
		acc := nn.EvaluateClassifier(net, test.X, test.Labels)
		out.Accuracy = acc
		out.Loss = 1 - acc
	} else {
		out.Loss = nn.EvaluateRegression(net, test.X, test.Y)
	}
	return out
}

// Objective adapts the workload into an hpo.Objective at the given scale.
func (w *Workload) Objective(scale Scale) hpo.Objective {
	return func(cfg hpo.Config, budget float64, seed uint64) float64 {
		return w.Evaluate(cfg, scale, budget, seed).Loss
	}
}

// TrainableObjective adapts the workload into an hpo.TrainableObjective for
// population-based training: each call resumes from the given nn.TrainState
// checkpoint blob (nil = fresh weights), trains `step` more of the full
// epoch budget, and returns the test loss plus the new checkpoint. A blob
// the restore machinery rejects (wrong shapes, wrong optimizer) surfaces as
// an error so PBT can fall back to fresh training.
func (w *Workload) TrainableObjective(scale Scale) hpo.TrainableObjective {
	return func(cfg hpo.Config, state []byte, step float64, seed uint64) (float64, []byte, error) {
		r := rng.New(seed)
		dataR := rng.New(0xDA7A).Split(w.Name + scale.String())
		train, test := w.Generate(scale, dataR)
		net := w.NewModel(cfg, train.Dim(), train.OutDim(), r.Split("model"))
		add := int(math.Ceil(float64(w.Epochs) * step))
		if add < 1 {
			add = 1
		}
		target := add
		if state != nil {
			st, err := nn.DecodeTrainState(state)
			if err != nil {
				return 0, nil, err
			}
			target = st.Epoch + add
		}
		var loss nn.Loss
		if w.Classification {
			loss = nn.SoftmaxCELoss{}
		} else {
			loss = nn.MSELoss{}
		}
		var ckpt []byte
		_, err := nn.Train(net, train.X, train.Y, nn.TrainConfig{
			Loss: loss, Optimizer: optimizerFor(cfg),
			BatchSize: 32, Epochs: target,
			Shuffle: true, RNG: r.Split("shuffle"),
			Resume:          state,
			CheckpointEvery: 1,
			Checkpoint:      func(epoch int, blob []byte) error { ckpt = blob; return nil },
		})
		if err != nil {
			return 0, nil, err
		}
		var testLoss float64
		if w.Classification {
			testLoss = 1 - nn.EvaluateClassifier(net, test.X, test.Labels)
		} else {
			testLoss = nn.EvaluateRegression(net, test.X, test.Y)
		}
		return testLoss, ckpt, nil
	}
}

// BuildArchNet materialises an architecture-DSL program as a network over
// the existing layer builders.
func BuildArchNet(a hpo.Arch, inDim, outDim int, r *rng.Stream) *nn.Net {
	var layers []nn.Layer
	prev := inDim
	for i, l := range a.Layers {
		act, err := nn.ParseAct(l.Act)
		if err != nil {
			act = nn.ReLU
		}
		layers = append(layers,
			nn.NewDense(prev, l.Units, r.Split(fmt.Sprintf("d%d", i))),
			nn.NewActivation(act))
		if l.Dropout > 0 {
			layers = append(layers, nn.NewDropout(l.Dropout, r.Split(fmt.Sprintf("dr%d", i))))
		}
		prev = l.Units
	}
	layers = append(layers, nn.NewDense(prev, outDim, r.Split("out")))
	return nn.NewNet(layers...)
}

// ArchWorkload rebinds a workload onto the architecture DSL: same data and
// epoch budget, but the search space becomes hpo.ArchSpace() and the model
// builder decodes DSL configurations — the space the RL controller and PBT
// search over.
func ArchWorkload(base *Workload) *Workload {
	w := *base
	w.Name = base.Name + "-arch"
	w.Description = base.Description + " (architecture-DSL space)"
	w.Space = hpo.ArchSpace()
	w.NewModel = func(cfg hpo.Config, inDim, outDim int, r *rng.Stream) *nn.Net {
		a, err := hpo.ArchFromConfig(cfg)
		if err != nil {
			// An out-of-DSL config (fuzzed or clamped) degrades to the
			// smallest valid network rather than panicking mid-search.
			a = hpo.Arch{Layers: []hpo.ArchLayer{{Units: hpo.ArchUnits[0], Act: hpo.ArchActs[0]}}}
		}
		return BuildArchNet(a, inDim, outDim, r)
	}
	return &w
}

// DefaultConfig returns the mid-point of the workload's search space:
// arithmetic midpoints for linear ranges, geometric midpoints for log
// ranges, the first choice for categoricals, with dropout kept light.
func (w *Workload) DefaultConfig() hpo.Config {
	c := hpo.Config{}
	for _, p := range w.Space.Params {
		switch p.Kind {
		case hpo.Continuous:
			c[p.Name] = (p.Lo + p.Hi) / 2
		case hpo.LogContinuous:
			c[p.Name] = math.Exp((math.Log(p.Lo) + math.Log(p.Hi)) / 2)
		case hpo.Integer:
			c[p.Name] = math.Round((p.Lo + p.Hi) / 2)
		case hpo.Categorical:
			c[p.Name] = 0
		}
	}
	if _, ok := c["dropout"]; ok {
		c["dropout"] = 0.1
	}
	return c
}
