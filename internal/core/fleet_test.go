package core

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/fault"
	"repro/internal/leakcheck"
	"repro/internal/rng"
)

// fleetTenant builds a tenant whose campaign carries the standard fault
// policy: node crashes, capped retries with backoff, quarantine, poison.
func fleetTenant(name string, seed uint64, configs int) TenantConfig {
	return TenantConfig{
		Name: name,
		Campaign: CampaignConfig{
			Configs: configs, Nodes: 1, // Nodes ignored by the fleet
			MeanEvalTime: 100, EvalTimeSigma: 0.8,
			DispatchOverhead: 0.05, RestartOverhead: 2,
			Faults:           &fault.Process{Nodes: 16, MTBF: 400, Horizon: 1e9},
			MaxRetries:       6, QuarantineAfter: 4,
			RetryBackoffBase: 1, RetryBackoffJitter: 0.3,
			PoisonFraction: 0.02,
			RNG:            rng.New(seed),
		},
	}
}

// Differential acceptance test: a single tenant through a single-shard
// fleet (no stealing, no preemption) must reproduce the dynamic-queue
// campaign bit for bit — same makespan, same dispatches, same retry/
// quarantine/poison decisions.
func TestFleetDifferentialSingleTenant(t *testing.T) {
	for _, faulty := range []bool{false, true} {
		name := "clean"
		if faulty {
			name = "faulty"
		}
		t.Run(name, func(t *testing.T) {
			tn := fleetTenant("solo", 42, 300)
			if !faulty {
				tn.Campaign.Faults = nil
				tn.Campaign.PoisonFraction = 0
			}
			camp := tn.Campaign
			camp.Nodes = 16
			camp.Scheduler = DynamicQueue
			want, err := RunCampaign(camp)
			if err != nil {
				t.Fatal(err)
			}

			tn2 := fleetTenant("solo", 42, 300)
			if !faulty {
				tn2.Campaign.Faults = nil
				tn2.Campaign.PoisonFraction = 0
			}
			got, err := RunFleet(FleetConfig{
				Shards: 1, NodesPerShard: 16,
				DispatchOverhead: tn2.Campaign.DispatchOverhead,
				Tenants:          []TenantConfig{tn2},
			})
			if err != nil {
				t.Fatal(err)
			}
			if got.Makespan != want.Makespan {
				t.Fatalf("makespan: fleet %v != campaign %v (diff %g)",
					got.Makespan, want.Makespan, got.Makespan-want.Makespan)
			}
			if got.Dispatches != want.Dispatches {
				t.Fatalf("dispatches: fleet %d != campaign %d", got.Dispatches, want.Dispatches)
			}
			tr := got.Tenants[0]
			if tr.Failures != want.Failures || tr.Retries != want.Retries ||
				tr.AbandonedConfigs != want.AbandonedConfigs ||
				tr.QuarantinedConfigs != want.QuarantinedConfigs ||
				tr.PoisonConfigs != want.PoisonConfigs ||
				tr.LostEvalSeconds != want.LostEvalSeconds ||
				tr.BackoffSeconds != want.BackoffSeconds ||
				tr.TotalWork != want.TotalWork {
				t.Fatalf("fault accounting diverged:\nfleet    %+v\ncampaign %+v", tr, want)
			}
			if tr.Completed+tr.Dropped != 300 {
				t.Fatalf("eval conservation: %d+%d != 300", tr.Completed, tr.Dropped)
			}
		})
	}
}

// The fleet changes placement, never outcomes: whatever the topology,
// stealing, or preemption setting, a tenant's fault-model counters equal
// the single-tenant campaign's for the same seed.
func TestFleetCountersTopologyInvariant(t *testing.T) {
	camp := fleetTenant("x", 9, 240).Campaign
	camp.Nodes = 12
	camp.Scheduler = DynamicQueue
	want, err := RunCampaign(camp)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{2, 4, 8} {
		got, err := RunFleet(FleetConfig{
			Shards: shards, NodesPerShard: 4, DispatchOverhead: 0.05,
			WorkStealing: true, Preemption: true,
			Tenants: []TenantConfig{fleetTenant("x", 9, 240)},
		})
		if err != nil {
			t.Fatal(err)
		}
		tr := got.Tenants[0]
		if tr.Failures != want.Failures || tr.Retries != want.Retries ||
			tr.QuarantinedConfigs != want.QuarantinedConfigs ||
			tr.AbandonedConfigs != want.AbandonedConfigs ||
			tr.PoisonConfigs != want.PoisonConfigs {
			t.Fatalf("shards=%d: fault counters diverged from campaign:\n%+v\nwant %+v",
				shards, tr, want)
		}
	}
}

// servedBy integrates a tenant's delivered node time over [0, cut] from the
// service log.
func servedBy(log []ServiceEvent, tenant int, cut float64) float64 {
	total := 0.0
	for _, ev := range log {
		if ev.Tenant != tenant || ev.Start >= cut {
			continue
		}
		s := ev.Seconds
		if ev.Start+s > cut {
			s = cut - ev.Start
		}
		total += s
	}
	return total
}

// Fair-share property: two tenants with identical workloads and weights
// w:1 receive node time in ratio w:1 (within a quantization slack of a few
// evaluation lengths) while both are backlogged.
func TestFleetFairShareBounds(t *testing.T) {
	for _, w := range []float64{1, 2, 4} {
		a := fleetTenant("heavy", 5, 120)
		b := fleetTenant("light", 5, 120) // same seed: identical workload
		a.Weight = w
		a.Campaign.Faults, b.Campaign.Faults = nil, nil
		a.Campaign.PoisonFraction, b.Campaign.PoisonFraction = 0, 0
		a.Campaign.EvalTimeSigma, b.Campaign.EvalTimeSigma = 0, 0
		res, err := RunFleet(FleetConfig{
			Shards: 1, NodesPerShard: 8, DispatchOverhead: 0.01,
			Tenants:      []TenantConfig{a, b},
			TrackService: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		// While both tenants are backlogged: up to the earlier makespan.
		cut := res.Tenants[0].Makespan
		if m := res.Tenants[1].Makespan; m < cut {
			cut = m
		}
		cut *= 0.9 // stay clear of the drain-out tail
		sa, sb := servedBy(res.ServiceLog, 0, cut), servedBy(res.ServiceLog, 1, cut)
		if sb == 0 {
			t.Fatalf("w=%v: light tenant starved before %v", w, cut)
		}
		ratio := sa / sb
		// Quantization slack: each of the 8 nodes can be mid-evaluation
		// (~100 s) at the cut, so allow the ratio a generous band.
		if ratio < w*0.75 || ratio > w*1.35 {
			t.Fatalf("w=%v: served ratio %.2f outside fair-share band", w, ratio)
		}
	}
}

// Priority preemption: a high-priority tenant arriving mid-run evicts
// running low-priority evaluations, finishes far faster than it would
// waiting its turn, and nothing is lost — every evaluation of both tenants
// still retires exactly once.
func TestFleetPriorityPreemption(t *testing.T) {
	build := func(preempt bool) FleetConfig {
		low := fleetTenant("batch", 3, 64)
		low.Campaign.Faults = nil
		low.Campaign.PoisonFraction = 0
		low.Campaign.MeanEvalTime = 500
		low.Campaign.EvalTimeSigma = 0
		hi := fleetTenant("urgent", 4, 16)
		hi.Campaign.Faults = nil
		hi.Campaign.PoisonFraction = 0
		hi.Campaign.MeanEvalTime = 50
		hi.Campaign.EvalTimeSigma = 0
		hi.Priority = 10
		hi.SubmitAt = 600
		return FleetConfig{
			Shards: 2, NodesPerShard: 4, DispatchOverhead: 0.01,
			Preemption: preempt,
			Tenants:    []TenantConfig{low, hi},
		}
	}
	with, err := RunFleet(build(true))
	if err != nil {
		t.Fatal(err)
	}
	without, err := RunFleet(build(false))
	if err != nil {
		t.Fatal(err)
	}
	if with.Preemptions == 0 {
		t.Fatal("saturated fleet with priority arrival produced no preemptions")
	}
	if without.Preemptions != 0 {
		t.Fatal("preemptions counted with preemption disabled")
	}
	urgentWith := with.Tenants[1].Makespan - 600
	urgentWithout := without.Tenants[1].Makespan - 600
	if urgentWith >= urgentWithout {
		t.Fatalf("preemption did not speed up the urgent tenant: %v >= %v",
			urgentWith, urgentWithout)
	}
	for _, res := range []FleetResult{with, without} {
		for i, tr := range res.Tenants {
			if tr.Completed+tr.Dropped != tr.Configs {
				t.Fatalf("tenant %d lost evals: %d+%d != %d", i, tr.Completed, tr.Dropped, tr.Configs)
			}
		}
	}
	if with.Tenants[0].Preemptions != with.Preemptions {
		t.Fatal("preemptions not attributed to the low-priority tenant")
	}
}

// Work stealing conservation: killing a shard mid-run strands its backlog,
// stealing drains it through the surviving shards, and the multiset of
// retired evaluations is exactly the submitted set either way.
func TestFleetWorkStealingConservation(t *testing.T) {
	build := func(steal bool) FleetConfig {
		tn := fleetTenant("only", 8, 200)
		tn.Campaign.Faults = nil
		tn.Campaign.PoisonFraction = 0
		return FleetConfig{
			Shards: 4, NodesPerShard: 4, DispatchOverhead: 0.02,
			WorkStealing: steal,
			Faults:       fault.NewShardPlan().Kill(0, 50, 1e6).Kill(1, 120, 1e6),
			Tenants:      []TenantConfig{tn},
		}
	}
	with, err := RunFleet(build(true))
	if err != nil {
		t.Fatal(err)
	}
	if with.Steals == 0 || with.StolenEvals == 0 {
		t.Fatal("dead shards with backlog produced no steals")
	}
	tr := with.Tenants[0]
	if tr.Completed+tr.Dropped != 200 {
		t.Fatalf("evals lost under kills+stealing: %d+%d != 200", tr.Completed, tr.Dropped)
	}
	if with.Interrupted == 0 {
		t.Fatal("kills under running work recorded no interruptions")
	}
	evals := 0
	for _, st := range with.ShardStats {
		evals += st.Evals
	}
	if evals != 200 {
		t.Fatalf("per-shard eval sum %d != 200", evals)
	}
	// Shards 0 and 1 stay dead past the horizon: with stealing off the run
	// can never finish their stranded backlog before the kill, so RunFleet's
	// own conservation check must reject... unless the backlog happened to
	// drain first. Instead compare makespans with a short outage.
	short := build(true)
	short.Faults = fault.NewShardPlan().Kill(0, 50, 5000)
	noSteal := build(false)
	noSteal.Faults = fault.NewShardPlan().Kill(0, 50, 5000)
	a, err := RunFleet(short)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFleet(noSteal)
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan >= b.Makespan {
		t.Fatalf("stealing did not beat no-stealing around an outage: %v >= %v", a.Makespan, b.Makespan)
	}
}

// chaosFleet is the full stack: three tenants with node faults, poison,
// backoff; scripted shard kills and a gray slowdown; stealing + preemption.
func chaosFleet() FleetConfig {
	a := fleetTenant("cancer", 21, 150)
	b := fleetTenant("infect", 22, 120)
	c := fleetTenant("urgent", 23, 40)
	b.Weight = 2
	c.Priority = 5
	c.SubmitAt = 800
	plan, err := fault.RandomShardPlan(rng.New(99), 4, 20000, 6000, 800, 0.5)
	if err != nil {
		panic(err)
	}
	return FleetConfig{
		Shards: 4, NodesPerShard: 8, DispatchOverhead: 0.05,
		WorkStealing: true, Preemption: true,
		Faults:  plan,
		Tenants: []TenantConfig{a, b, c},
	}
}

// Chaos acceptance test: scripted kills + gray faults during a multi-tenant
// run lose no evaluations (multiset invariant over retirements and attempt
// segments), and the run is byte-identical across reruns at a fixed seed.
// Runs under -race in `make chaos` with leakcheck.
func TestFleetChaosMultisetInvariant(t *testing.T) {
	defer leakcheck.Check(t)()
	res, err := RunFleet(chaosFleet())
	if err != nil {
		t.Fatal(err)
	}
	if res.Interrupted == 0 && res.Steals == 0 {
		t.Fatal("chaos plan exercised neither kills nor stealing")
	}
	totalAttempts := 0
	for i, tr := range res.Tenants {
		if tr.Completed+tr.Dropped != tr.Configs {
			t.Fatalf("tenant %d multiset violated: completed %d + dropped %d != %d",
				i, tr.Completed, tr.Dropped, tr.Configs)
		}
		if tr.Dropped != tr.QuarantinedConfigs+tr.AbandonedConfigs {
			t.Fatalf("tenant %d drop accounting: %d != %d+%d",
				i, tr.Dropped, tr.QuarantinedConfigs, tr.AbandonedConfigs)
		}
		// Every config contributes exactly retries+1 completed segments,
		// however often it was preempted, interrupted, or stolen.
		totalAttempts += tr.Configs + tr.Retries
	}
	gotAttempts, gotEvals := 0, 0
	for _, st := range res.ShardStats {
		gotAttempts += st.Attempts
		gotEvals += st.Evals
	}
	if gotAttempts != totalAttempts {
		t.Fatalf("attempt segments duplicated or lost: %d != %d", gotAttempts, totalAttempts)
	}
	if wantEvals := 150 + 120 + 40; gotEvals != wantEvals {
		t.Fatalf("retired evals %d != submitted %d", gotEvals, wantEvals)
	}
}

// Byte-identity: the full chaos run marshals to identical JSON across
// reruns — the fleet has no hidden nondeterminism (map iteration, wall
// clock, goroutine interleaving).
func TestFleetChaosByteIdentical(t *testing.T) {
	defer leakcheck.Check(t)()
	a, err := RunFleet(chaosFleet())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFleet(chaosFleet())
	if err != nil {
		t.Fatal(err)
	}
	ja, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja, jb) {
		t.Fatalf("rerun diverged:\n%s\n%s", ja, jb)
	}
}

// Gray degradation slows the fleet without any error surfacing: same
// counters, strictly larger makespan.
func TestFleetGrayDegrade(t *testing.T) {
	build := func(plan *fault.ShardPlan) FleetConfig {
		tn := fleetTenant("g", 13, 100)
		tn.Campaign.Faults = nil
		tn.Campaign.PoisonFraction = 0
		return FleetConfig{
			Shards: 2, NodesPerShard: 4, DispatchOverhead: 0.02,
			Faults: plan, Tenants: []TenantConfig{tn},
		}
	}
	clean, err := RunFleet(build(nil))
	if err != nil {
		t.Fatal(err)
	}
	slow, err := RunFleet(build(fault.NewShardPlan().Degrade(0, 0, 3)))
	if err != nil {
		t.Fatal(err)
	}
	if slow.Makespan <= clean.Makespan {
		t.Fatalf("3x gray slowdown did not cost time: %v <= %v", slow.Makespan, clean.Makespan)
	}
	if slow.Tenants[0].Completed != clean.Tenants[0].Completed {
		t.Fatal("gray slowdown changed outcomes")
	}
	repaired, err := RunFleet(build(fault.NewShardPlan().Degrade(0, 0, 3).Repair(0, 1)))
	if err != nil {
		t.Fatal(err)
	}
	if repaired.Makespan >= slow.Makespan {
		t.Fatalf("repair did not help: %v >= %v", repaired.Makespan, slow.Makespan)
	}
}

// Property: for random seeds, shard counts, and outages, the multiset
// invariant and the per-shard accounting identities hold. quick.Check is
// explicitly seeded so -count=100 replays the same cases.
func TestQuickFleetConservation(t *testing.T) {
	f := func(seed uint64, shardBits, killBits uint8) bool {
		shards := 1 + int(shardBits%4)
		tn := fleetTenant("q", seed, 60)
		plan := fault.NewShardPlan()
		for k := 0; k < int(killBits%3); k++ {
			plan.Kill(k%shards, float64(100+300*k), 700)
		}
		res, err := RunFleet(FleetConfig{
			Shards: shards, NodesPerShard: 3, DispatchOverhead: 0.05,
			WorkStealing: true, Faults: plan,
			Tenants: []TenantConfig{tn},
		})
		if err != nil {
			return false
		}
		tr := res.Tenants[0]
		if tr.Completed+tr.Dropped != 60 {
			return false
		}
		attempts, evals := 0, 0
		for _, st := range res.ShardStats {
			attempts += st.Attempts
			evals += st.Evals
		}
		return evals == 60 && attempts == 60+tr.Retries
	}
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(19))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Validation surface.
func TestFleetValidation(t *testing.T) {
	ok := fleetTenant("v", 1, 10)
	cases := []FleetConfig{
		{Shards: 0, NodesPerShard: 1, Tenants: []TenantConfig{ok}},
		{Shards: 1, NodesPerShard: 0, Tenants: []TenantConfig{ok}},
		{Shards: 1, NodesPerShard: 1},
		{Shards: 1, NodesPerShard: 1, DispatchOverhead: -1, Tenants: []TenantConfig{ok}},
		{Shards: 1, NodesPerShard: 1, Tenants: []TenantConfig{{Weight: -2, Campaign: ok.Campaign}}},
		{Shards: 1, NodesPerShard: 1, Tenants: []TenantConfig{{SubmitAt: -1, Campaign: ok.Campaign}}},
		{Shards: 1, NodesPerShard: 1, Tenants: []TenantConfig{{}}},
		{Shards: 1, NodesPerShard: 1, Tenants: []TenantConfig{ok},
			Faults: fault.NewShardPlan().Kill(3, 1, 1)},
	}
	for i, cfg := range cases {
		if _, err := RunFleet(cfg); err == nil {
			t.Fatalf("case %d: invalid fleet accepted", i)
		}
	}
}
