package nn

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/tensor"
)

// numGrad computes the finite-difference gradient of lossFn with respect to
// every element of param.
func numGrad(param *tensor.Tensor, lossFn func() float64) []float64 {
	const h = 1e-6
	out := make([]float64, param.Len())
	for i := range param.Data {
		orig := param.Data[i]
		param.Data[i] = orig + h
		lp := lossFn()
		param.Data[i] = orig - h
		lm := lossFn()
		param.Data[i] = orig
		out[i] = (lp - lm) / (2 * h)
	}
	return out
}

// checkLayerGrads runs a full forward/backward through net with the given
// loss and compares analytic parameter and input gradients against finite
// differences.
func checkLayerGrads(t *testing.T, net *Net, loss Loss, x, y *tensor.Tensor, tol float64) {
	t.Helper()
	lossFn := func() float64 {
		out := net.Forward(x, true)
		return loss.Loss(out, y)
	}

	// Analytic gradients. The forward inside lossFn perturbs dropout-free
	// deterministic layers identically, so run once more to set caches.
	net.ZeroGrads()
	out := net.Forward(x, true)
	dout := tensor.New(out.Shape()...)
	loss.Grad(dout, out, y)
	dx := net.Backward(dout)

	for pi, p := range net.Params() {
		analytic := net.Grads()[pi]
		numeric := numGrad(p, lossFn)
		// Re-establish caches consumed by numGrad's forwards.
		net.ZeroGrads()
		out = net.Forward(x, true)
		loss.Grad(dout, out, y)
		net.Backward(dout)
		for i := range numeric {
			diff := math.Abs(analytic.Data[i] - numeric[i])
			scale := math.Max(1, math.Abs(numeric[i]))
			if diff > tol*scale {
				t.Fatalf("param %d elem %d: analytic %v numeric %v",
					pi, i, analytic.Data[i], numeric[i])
			}
		}
	}

	// Input gradient check.
	numeric := numGrad(x, lossFn)
	for i := range numeric {
		diff := math.Abs(dx.Data[i] - numeric[i])
		scale := math.Max(1, math.Abs(numeric[i]))
		if diff > tol*scale {
			t.Fatalf("input elem %d: analytic %v numeric %v", i, dx.Data[i], numeric[i])
		}
	}
}

func TestDenseGradCheck(t *testing.T) {
	r := rng.New(1)
	net := NewNet(NewDense(5, 4, r), NewActivation(Tanh), NewDense(4, 3, r))
	x := tensor.New(6, 5)
	x.FillRandNorm(r, 1)
	y := tensor.New(6, 3)
	y.FillRandNorm(r, 1)
	checkLayerGrads(t, net, MSELoss{}, x, y, 1e-5)
}

func TestSoftmaxCEGradCheck(t *testing.T) {
	r := rng.New(2)
	net := NewNet(NewDense(4, 8, r), NewActivation(ReLU), NewDense(8, 3, r))
	x := tensor.New(5, 4)
	x.FillRandNorm(r, 1)
	labels := []int{0, 2, 1, 0, 2}
	y := OneHot(labels, 3)
	checkLayerGrads(t, net, SoftmaxCELoss{}, x, y, 1e-5)
}

func TestActivationGradChecks(t *testing.T) {
	for _, kind := range []ActKind{ReLU, LeakyReLU, Sigmoid, Tanh, GELU} {
		t.Run(kind.String(), func(t *testing.T) {
			r := rng.New(uint64(kind) + 10)
			net := NewNet(NewDense(3, 4, r), NewActivation(kind), NewDense(4, 2, r))
			x := tensor.New(4, 3)
			// Keep activations away from ReLU kinks for finite differences.
			x.FillRandNorm(r, 1)
			for i := range x.Data {
				if math.Abs(x.Data[i]) < 0.05 {
					x.Data[i] += 0.1
				}
			}
			y := tensor.New(4, 2)
			y.FillRandNorm(r, 1)
			checkLayerGrads(t, net, MSELoss{}, x, y, 1e-4)
		})
	}
}

func TestConv1DGradCheck(t *testing.T) {
	r := rng.New(3)
	conv := NewConv1D(2, 10, 3, 3, 1, 1, r)
	net := NewNet(conv, NewActivation(Tanh),
		NewDense(3*conv.OutLen(), 2, r))
	x := tensor.New(3, 2*10)
	x.FillRandNorm(r, 1)
	y := tensor.New(3, 2)
	y.FillRandNorm(r, 1)
	checkLayerGrads(t, net, MSELoss{}, x, y, 1e-4)
}

func TestConv1DStridedGradCheck(t *testing.T) {
	r := rng.New(4)
	conv := NewConv1D(1, 12, 2, 4, 2, 0, r)
	net := NewNet(conv, NewDense(2*conv.OutLen(), 1, r))
	x := tensor.New(2, 12)
	x.FillRandNorm(r, 1)
	y := tensor.New(2, 1)
	y.FillRandNorm(r, 1)
	checkLayerGrads(t, net, MSELoss{}, x, y, 1e-4)
}

func TestMaxPoolGradCheck(t *testing.T) {
	r := rng.New(5)
	pool := NewMaxPool1D(2, 8, 2, 0)
	net := NewNet(pool, NewDense(2*pool.OutLen(), 2, r))
	x := tensor.New(3, 16)
	x.FillRandNorm(r, 1)
	// Separate elements so the argmax does not flip under h-perturbation.
	for i := range x.Data {
		x.Data[i] = math.Round(x.Data[i]*100) / 10
	}
	y := tensor.New(3, 2)
	y.FillRandNorm(r, 1)
	checkLayerGrads(t, net, MSELoss{}, x, y, 1e-4)
}

func TestBatchNormGradCheck(t *testing.T) {
	r := rng.New(6)
	net := NewNet(NewDense(4, 5, r), NewBatchNorm(5), NewActivation(Tanh), NewDense(5, 2, r))
	x := tensor.New(8, 4)
	x.FillRandNorm(r, 1)
	y := tensor.New(8, 2)
	y.FillRandNorm(r, 1)
	checkLayerGrads(t, net, MSELoss{}, x, y, 1e-4)
}

// TestGradCheckTableExtraPaths covers the layer paths the per-file
// gradchecks miss — checkpointed state is only trustworthy if every
// backward path it reloads into is verified against finite differences:
// LayerNorm as the first layer (its dL/dx feeding the loss directly and its
// affine params the only ones before the head), Conv2D with stride and
// padding combined (both index transforms active at once), the same under
// softmax cross-entropy, and LayerNorm sandwiched between conv and head.
func TestGradCheckTableExtraPaths(t *testing.T) {
	type gc struct {
		name  string
		build func(r *rng.Stream) (*Net, *tensor.Tensor, *tensor.Tensor, Loss)
		tol   float64
	}
	cases := []gc{
		{"layernorm-first", func(r *rng.Stream) (*Net, *tensor.Tensor, *tensor.Tensor, Loss) {
			net := NewNet(NewLayerNorm(5), NewDense(5, 2, r))
			x := tensor.New(4, 5)
			x.FillRandNorm(r, 1)
			y := tensor.New(4, 2)
			y.FillRandNorm(r, 1)
			return net, x, y, MSELoss{}
		}, 1e-4},
		{"conv2d-stride2-pad1", func(r *rng.Stream) (*Net, *tensor.Tensor, *tensor.Tensor, Loss) {
			conv := NewConv2D(2, 5, 5, 3, 3, 2, 1, r)
			oh, ow := conv.OutDims()
			net := NewNet(conv, NewActivation(Tanh), NewDense(3*oh*ow, 2, r))
			x := tensor.New(2, 2*5*5)
			x.FillRandNorm(r, 1)
			y := tensor.New(2, 2)
			y.FillRandNorm(r, 1)
			return net, x, y, MSELoss{}
		}, 1e-4},
		{"conv2d-softmax-ce", func(r *rng.Stream) (*Net, *tensor.Tensor, *tensor.Tensor, Loss) {
			conv := NewConv2D(1, 6, 6, 2, 3, 2, 1, r)
			oh, ow := conv.OutDims()
			net := NewNet(conv, NewActivation(GELU), NewDense(2*oh*ow, 3, r))
			x := tensor.New(3, 36)
			x.FillRandNorm(r, 1)
			return net, x, OneHot([]int{0, 2, 1}, 3), SoftmaxCELoss{}
		}, 1e-4},
		{"conv2d-layernorm-head", func(r *rng.Stream) (*Net, *tensor.Tensor, *tensor.Tensor, Loss) {
			conv := NewConv2D(1, 4, 4, 2, 2, 2, 0, r)
			oh, ow := conv.OutDims()
			dim := 2 * oh * ow
			net := NewNet(conv, NewLayerNorm(dim), NewDense(dim, 1, r))
			x := tensor.New(3, 16)
			x.FillRandNorm(r, 1)
			y := tensor.New(3, 1)
			y.FillRandNorm(r, 1)
			return net, x, y, MSELoss{}
		}, 1e-4},
	}
	for i, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			net, x, y, loss := c.build(rng.New(uint64(20 + i)))
			checkLayerGrads(t, net, loss, x, y, c.tol)
		})
	}
}

func TestBCEGradCheck(t *testing.T) {
	r := rng.New(7)
	net := NewNet(NewDense(3, 4, r), NewActivation(Tanh), NewDense(4, 1, r))
	x := tensor.New(6, 3)
	x.FillRandNorm(r, 1)
	y := tensor.New(6, 1)
	for i := range y.Data {
		if r.Bernoulli(0.5) {
			y.Data[i] = 1
		}
	}
	checkLayerGrads(t, net, BCELoss{}, x, y, 1e-5)
}

func TestMAEGradCheck(t *testing.T) {
	r := rng.New(8)
	net := NewNet(NewDense(3, 2, r))
	x := tensor.New(4, 3)
	x.FillRandNorm(r, 1)
	y := tensor.New(4, 2)
	// Keep pred != target so MAE is differentiable at the evaluation point.
	y.Fill(100)
	checkLayerGrads(t, net, MAELoss{}, x, y, 1e-5)
}
