package nn

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/tensor"
)

// numGrad computes the finite-difference gradient of lossFn with respect to
// every element of param.
func numGrad(param *tensor.Tensor, lossFn func() float64) []float64 {
	const h = 1e-6
	out := make([]float64, param.Len())
	for i := range param.Data {
		orig := param.Data[i]
		param.Data[i] = orig + h
		lp := lossFn()
		param.Data[i] = orig - h
		lm := lossFn()
		param.Data[i] = orig
		out[i] = (lp - lm) / (2 * h)
	}
	return out
}

// checkLayerGrads runs a full forward/backward through net with the given
// loss and compares analytic parameter and input gradients against finite
// differences.
func checkLayerGrads(t *testing.T, net *Net, loss Loss, x, y *tensor.Tensor, tol float64) {
	t.Helper()
	lossFn := func() float64 {
		out := net.Forward(x, true)
		return loss.Loss(out, y)
	}

	// Analytic gradients. The forward inside lossFn perturbs dropout-free
	// deterministic layers identically, so run once more to set caches.
	net.ZeroGrads()
	out := net.Forward(x, true)
	dout := tensor.New(out.Shape()...)
	loss.Grad(dout, out, y)
	dx := net.Backward(dout)

	for pi, p := range net.Params() {
		analytic := net.Grads()[pi]
		numeric := numGrad(p, lossFn)
		// Re-establish caches consumed by numGrad's forwards.
		net.ZeroGrads()
		out = net.Forward(x, true)
		loss.Grad(dout, out, y)
		net.Backward(dout)
		for i := range numeric {
			diff := math.Abs(analytic.Data[i] - numeric[i])
			scale := math.Max(1, math.Abs(numeric[i]))
			if diff > tol*scale {
				t.Fatalf("param %d elem %d: analytic %v numeric %v",
					pi, i, analytic.Data[i], numeric[i])
			}
		}
	}

	// Input gradient check.
	numeric := numGrad(x, lossFn)
	for i := range numeric {
		diff := math.Abs(dx.Data[i] - numeric[i])
		scale := math.Max(1, math.Abs(numeric[i]))
		if diff > tol*scale {
			t.Fatalf("input elem %d: analytic %v numeric %v", i, dx.Data[i], numeric[i])
		}
	}
}

func TestDenseGradCheck(t *testing.T) {
	r := rng.New(1)
	net := NewNet(NewDense(5, 4, r), NewActivation(Tanh), NewDense(4, 3, r))
	x := tensor.New(6, 5)
	x.FillRandNorm(r, 1)
	y := tensor.New(6, 3)
	y.FillRandNorm(r, 1)
	checkLayerGrads(t, net, MSELoss{}, x, y, 1e-5)
}

func TestSoftmaxCEGradCheck(t *testing.T) {
	r := rng.New(2)
	net := NewNet(NewDense(4, 8, r), NewActivation(ReLU), NewDense(8, 3, r))
	x := tensor.New(5, 4)
	x.FillRandNorm(r, 1)
	labels := []int{0, 2, 1, 0, 2}
	y := OneHot(labels, 3)
	checkLayerGrads(t, net, SoftmaxCELoss{}, x, y, 1e-5)
}

func TestActivationGradChecks(t *testing.T) {
	for _, kind := range []ActKind{ReLU, LeakyReLU, Sigmoid, Tanh, GELU} {
		t.Run(kind.String(), func(t *testing.T) {
			r := rng.New(uint64(kind) + 10)
			net := NewNet(NewDense(3, 4, r), NewActivation(kind), NewDense(4, 2, r))
			x := tensor.New(4, 3)
			// Keep activations away from ReLU kinks for finite differences.
			x.FillRandNorm(r, 1)
			for i := range x.Data {
				if math.Abs(x.Data[i]) < 0.05 {
					x.Data[i] += 0.1
				}
			}
			y := tensor.New(4, 2)
			y.FillRandNorm(r, 1)
			checkLayerGrads(t, net, MSELoss{}, x, y, 1e-4)
		})
	}
}

func TestConv1DGradCheck(t *testing.T) {
	r := rng.New(3)
	conv := NewConv1D(2, 10, 3, 3, 1, 1, r)
	net := NewNet(conv, NewActivation(Tanh),
		NewDense(3*conv.OutLen(), 2, r))
	x := tensor.New(3, 2*10)
	x.FillRandNorm(r, 1)
	y := tensor.New(3, 2)
	y.FillRandNorm(r, 1)
	checkLayerGrads(t, net, MSELoss{}, x, y, 1e-4)
}

func TestConv1DStridedGradCheck(t *testing.T) {
	r := rng.New(4)
	conv := NewConv1D(1, 12, 2, 4, 2, 0, r)
	net := NewNet(conv, NewDense(2*conv.OutLen(), 1, r))
	x := tensor.New(2, 12)
	x.FillRandNorm(r, 1)
	y := tensor.New(2, 1)
	y.FillRandNorm(r, 1)
	checkLayerGrads(t, net, MSELoss{}, x, y, 1e-4)
}

func TestMaxPoolGradCheck(t *testing.T) {
	r := rng.New(5)
	pool := NewMaxPool1D(2, 8, 2, 0)
	net := NewNet(pool, NewDense(2*pool.OutLen(), 2, r))
	x := tensor.New(3, 16)
	x.FillRandNorm(r, 1)
	// Separate elements so the argmax does not flip under h-perturbation.
	for i := range x.Data {
		x.Data[i] = math.Round(x.Data[i]*100) / 10
	}
	y := tensor.New(3, 2)
	y.FillRandNorm(r, 1)
	checkLayerGrads(t, net, MSELoss{}, x, y, 1e-4)
}

func TestBatchNormGradCheck(t *testing.T) {
	r := rng.New(6)
	net := NewNet(NewDense(4, 5, r), NewBatchNorm(5), NewActivation(Tanh), NewDense(5, 2, r))
	x := tensor.New(8, 4)
	x.FillRandNorm(r, 1)
	y := tensor.New(8, 2)
	y.FillRandNorm(r, 1)
	checkLayerGrads(t, net, MSELoss{}, x, y, 1e-4)
}

func TestBCEGradCheck(t *testing.T) {
	r := rng.New(7)
	net := NewNet(NewDense(3, 4, r), NewActivation(Tanh), NewDense(4, 1, r))
	x := tensor.New(6, 3)
	x.FillRandNorm(r, 1)
	y := tensor.New(6, 1)
	for i := range y.Data {
		if r.Bernoulli(0.5) {
			y.Data[i] = 1
		}
	}
	checkLayerGrads(t, net, BCELoss{}, x, y, 1e-5)
}

func TestMAEGradCheck(t *testing.T) {
	r := rng.New(8)
	net := NewNet(NewDense(3, 2, r))
	x := tensor.New(4, 3)
	x.FillRandNorm(r, 1)
	y := tensor.New(4, 2)
	// Keep pred != target so MAE is differentiable at the evaluation point.
	y.Fill(100)
	checkLayerGrads(t, net, MAELoss{}, x, y, 1e-5)
}
