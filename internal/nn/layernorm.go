package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// LayerNorm normalises each sample over its features, then applies a
// learned affine transform. Unlike BatchNorm it is independent of batch
// composition, which matters for the tiny per-rank batches strong scaling
// forces (E3) and for pipeline micro-batches (no cross-micro-batch
// statistics to synchronise).
type LayerNorm struct {
	Dim int
	Eps float64

	Gamma, Beta   *tensor.Tensor
	dGamma, dBeta *tensor.Tensor

	xhat *tensor.Tensor
	std  []float64
}

// NewLayerNorm creates a layer-norm over dim features.
func NewLayerNorm(dim int) *LayerNorm {
	ln := &LayerNorm{Dim: dim, Eps: 1e-5,
		Gamma: tensor.New(dim), Beta: tensor.New(dim),
		dGamma: tensor.New(dim), dBeta: tensor.New(dim)}
	ln.Gamma.Fill(1)
	return ln
}

// Name implements Layer.
func (l *LayerNorm) Name() string { return fmt.Sprintf("LayerNorm(%d)", l.Dim) }

// OutDim implements Layer.
func (l *LayerNorm) OutDim(inDim int) int {
	if inDim != l.Dim {
		panic(fmt.Sprintf("nn: %s given input dim %d", l.Name(), inDim))
	}
	return l.Dim
}

// Forward implements Layer.
func (l *LayerNorm) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n := x.Dim(0)
	d := l.Dim
	y := tensor.New(n, d)
	l.xhat = tensor.New(n, d)
	l.std = make([]float64, n)
	for i := 0; i < n; i++ {
		row := x.Data[i*d : (i+1)*d]
		mean := 0.0
		for _, v := range row {
			mean += v
		}
		mean /= float64(d)
		variance := 0.0
		for _, v := range row {
			dv := v - mean
			variance += dv * dv
		}
		variance /= float64(d)
		std := math.Sqrt(variance + l.Eps)
		l.std[i] = std
		for j, v := range row {
			xh := (v - mean) / std
			l.xhat.Data[i*d+j] = xh
			y.Data[i*d+j] = l.Gamma.Data[j]*xh + l.Beta.Data[j]
		}
	}
	return y
}

// Backward implements Layer.
func (l *LayerNorm) Backward(dout *tensor.Tensor) *tensor.Tensor {
	n := dout.Dim(0)
	d := l.Dim
	fd := float64(d)
	dx := tensor.New(n, d)
	for i := 0; i < n; i++ {
		var sumD, sumDX float64
		for j := 0; j < d; j++ {
			g := dout.Data[i*d+j]
			dxh := g * l.Gamma.Data[j]
			sumD += dxh
			sumDX += dxh * l.xhat.Data[i*d+j]
			l.dGamma.Data[j] += g * l.xhat.Data[i*d+j]
			l.dBeta.Data[j] += g
		}
		for j := 0; j < d; j++ {
			dxh := dout.Data[i*d+j] * l.Gamma.Data[j]
			dx.Data[i*d+j] = (fd*dxh - sumD - l.xhat.Data[i*d+j]*sumDX) /
				(fd * l.std[i])
		}
	}
	return dx
}

// Params implements Layer.
func (l *LayerNorm) Params() []*tensor.Tensor { return []*tensor.Tensor{l.Gamma, l.Beta} }

// Grads implements Layer.
func (l *LayerNorm) Grads() []*tensor.Tensor { return []*tensor.Tensor{l.dGamma, l.dBeta} }

// Clone implements Layer.
func (l *LayerNorm) Clone() Layer {
	return &LayerNorm{Dim: l.Dim, Eps: l.Eps,
		Gamma: l.Gamma.Clone(), Beta: l.Beta.Clone(),
		dGamma: tensor.New(l.Dim), dBeta: tensor.New(l.Dim)}
}
