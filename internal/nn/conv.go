package nn

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/tensor"
)

// Conv1D is a 1-D convolution over (N, C*L) inputs interpreted as C channels
// of length L, producing (N, F*Lout). It lowers each sample through im2col
// and computes the convolution as a GEMM, which is how production frameworks
// map convolutions onto the dense matrix units the paper highlights.
type Conv1D struct {
	Channels, InLen int
	Filters, Kernel int
	Stride, Pad     int
	W, B            *tensor.Tensor // W (F, C*K), B (F)
	dW, dB          *tensor.Tensor
	x               *tensor.Tensor
	outLen          int
	cols            []*tensor.Tensor // per-sample im2col buffers (reused)
}

// NewConv1D creates a 1-D convolution layer with He initialisation.
func NewConv1D(channels, inLen, filters, kernel, stride, pad int, r *rng.Stream) *Conv1D {
	outLen := tensor.Conv1DOutLen(inLen, kernel, stride, pad)
	if outLen <= 0 {
		panic(fmt.Sprintf("nn: Conv1D output length %d", outLen))
	}
	c := &Conv1D{Channels: channels, InLen: inLen, Filters: filters,
		Kernel: kernel, Stride: stride, Pad: pad,
		W:      tensor.New(filters, channels*kernel),
		B:      tensor.New(filters),
		dW:     tensor.New(filters, channels*kernel),
		dB:     tensor.New(filters),
		outLen: outLen}
	HeNormal(c.W, channels*kernel, r)
	return c
}

// OutLen returns the spatial output length.
func (c *Conv1D) OutLen() int { return c.outLen }

// Name implements Layer.
func (c *Conv1D) Name() string {
	return fmt.Sprintf("Conv1D(%dx%d→%d,k=%d,s=%d)", c.Channels, c.InLen, c.Filters, c.Kernel, c.Stride)
}

// OutDim implements Layer.
func (c *Conv1D) OutDim(inDim int) int {
	if inDim != c.Channels*c.InLen {
		panic(fmt.Sprintf("nn: %s given input dim %d", c.Name(), inDim))
	}
	return c.Filters * c.outLen
}

// Forward implements Layer.
func (c *Conv1D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n := x.Dim(0)
	c.x = x
	y := tensor.New(n, c.Filters*c.outLen)
	if len(c.cols) < n {
		c.cols = make([]*tensor.Tensor, n)
	}
	tensor.ParallelFor(n, func(lo, hi int) {
		for s := lo; s < hi; s++ {
			if c.cols[s] == nil {
				c.cols[s] = tensor.New(c.Channels*c.Kernel, c.outLen)
			}
			col := c.cols[s]
			tensor.Im2Col1D(col, x.Row(s), c.Channels, c.InLen, c.Kernel, c.Stride, c.Pad)
			out := y.Row(s).Reshape(c.Filters, c.outLen)
			matMulSerial(out, c.W, col)
			for f := 0; f < c.Filters; f++ {
				b := c.B.Data[f]
				row := out.Data[f*c.outLen : (f+1)*c.outLen]
				for i := range row {
					row[i] += b
				}
			}
		}
	})
	return y
}

// Backward implements Layer.
func (c *Conv1D) Backward(dout *tensor.Tensor) *tensor.Tensor {
	n := dout.Dim(0)
	dx := tensor.New(n, c.Channels*c.InLen)
	// Parallel over samples with per-worker gradient accumulators merged at
	// the end, so no locks appear in the hot loop.
	type acc struct {
		dW *tensor.Tensor
		dB *tensor.Tensor
	}
	accs := make([]*acc, n)
	tensor.ParallelFor(n, func(lo, hi int) {
		a := &acc{dW: tensor.New(c.Filters, c.Channels*c.Kernel), dB: tensor.New(c.Filters)}
		accs[lo] = a
		for s := lo; s < hi; s++ {
			dy := dout.Row(s).Reshape(c.Filters, c.outLen)
			col := c.cols[s]
			// dW += dy · colᵀ
			dW := tensor.New(c.Filters, c.Channels*c.Kernel)
			tensor.MatMulTransB(dW, dy, col)
			tensor.AddScaled(a.dW, dW, 1)
			for f := 0; f < c.Filters; f++ {
				s2 := 0.0
				row := dy.Data[f*c.outLen : (f+1)*c.outLen]
				for _, v := range row {
					s2 += v
				}
				a.dB.Data[f] += s2
			}
			// dcol = Wᵀ · dy ; dx via col2im
			dcol := tensor.New(c.Channels*c.Kernel, c.outLen)
			tensor.MatMulTransA(dcol, c.W, dy)
			tensor.Col2Im1D(dx.Row(s), dcol, c.Channels, c.InLen, c.Kernel, c.Stride, c.Pad)
		}
	})
	for _, a := range accs {
		if a == nil {
			continue
		}
		tensor.AddScaled(c.dW, a.dW, 1)
		tensor.AddScaled(c.dB, a.dB, 1)
	}
	return dx
}

// Params implements Layer.
func (c *Conv1D) Params() []*tensor.Tensor { return []*tensor.Tensor{c.W, c.B} }

// Grads implements Layer.
func (c *Conv1D) Grads() []*tensor.Tensor { return []*tensor.Tensor{c.dW, c.dB} }

// Clone implements Layer.
func (c *Conv1D) Clone() Layer {
	return &Conv1D{Channels: c.Channels, InLen: c.InLen, Filters: c.Filters,
		Kernel: c.Kernel, Stride: c.Stride, Pad: c.Pad,
		W: c.W.Clone(), B: c.B.Clone(),
		dW: tensor.New(c.Filters, c.Channels*c.Kernel), dB: tensor.New(c.Filters),
		outLen: c.outLen}
}

// MaxPool1D max-pools (N, C*L) inputs channelwise with the given window and
// stride (window == stride when stride is 0).
type MaxPool1D struct {
	Channels, InLen int
	Window, Stride  int
	outLen          int
	argmax          []int
}

// NewMaxPool1D creates a max-pool layer. stride 0 means stride = window.
func NewMaxPool1D(channels, inLen, window, stride int) *MaxPool1D {
	if stride == 0 {
		stride = window
	}
	outLen := (inLen-window)/stride + 1
	if outLen <= 0 {
		panic("nn: MaxPool1D output length <= 0")
	}
	return &MaxPool1D{Channels: channels, InLen: inLen, Window: window,
		Stride: stride, outLen: outLen}
}

// OutLen returns the pooled spatial length.
func (p *MaxPool1D) OutLen() int { return p.outLen }

// Name implements Layer.
func (p *MaxPool1D) Name() string {
	return fmt.Sprintf("MaxPool1D(w=%d,s=%d)", p.Window, p.Stride)
}

// OutDim implements Layer.
func (p *MaxPool1D) OutDim(inDim int) int {
	if inDim != p.Channels*p.InLen {
		panic(fmt.Sprintf("nn: %s given input dim %d", p.Name(), inDim))
	}
	return p.Channels * p.outLen
}

// Forward implements Layer.
func (p *MaxPool1D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n := x.Dim(0)
	y := tensor.New(n, p.Channels*p.outLen)
	if cap(p.argmax) < y.Len() {
		p.argmax = make([]int, y.Len())
	}
	p.argmax = p.argmax[:y.Len()]
	for s := 0; s < n; s++ {
		for c := 0; c < p.Channels; c++ {
			in := x.Data[s*p.Channels*p.InLen+c*p.InLen:]
			for o := 0; o < p.outLen; o++ {
				start := o * p.Stride
				best, bi := in[start], start
				for k := 1; k < p.Window; k++ {
					if in[start+k] > best {
						best, bi = in[start+k], start+k
					}
				}
				oi := s*p.Channels*p.outLen + c*p.outLen + o
				y.Data[oi] = best
				p.argmax[oi] = s*p.Channels*p.InLen + c*p.InLen + bi
			}
		}
	}
	return y
}

// Backward implements Layer.
func (p *MaxPool1D) Backward(dout *tensor.Tensor) *tensor.Tensor {
	n := dout.Dim(0)
	dx := tensor.New(n, p.Channels*p.InLen)
	for i, v := range dout.Data {
		dx.Data[p.argmax[i]] += v
	}
	return dx
}

// Params implements Layer.
func (p *MaxPool1D) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (p *MaxPool1D) Grads() []*tensor.Tensor { return nil }

// Clone implements Layer.
func (p *MaxPool1D) Clone() Layer {
	return NewMaxPool1D(p.Channels, p.InLen, p.Window, p.Stride)
}

// matMulSerial is an unparallelised GEMM used inside already-parallel
// per-sample loops to avoid nested-parallel oversubscription.
func matMulSerial(dst, a, b *tensor.Tensor) {
	m, k, n := a.Dim(0), a.Dim(1), b.Dim(1)
	if b.Dim(0) != k || dst.Dim(0) != m || dst.Dim(1) != n {
		panic("nn: matMulSerial shape mismatch")
	}
	dst.Zero()
	for i := 0; i < m; i++ {
		arow := a.Data[i*k : (i+1)*k]
		crow := dst.Data[i*n : (i+1)*n]
		for kk := 0; kk < k; kk++ {
			av := arow[kk]
			if av == 0 {
				continue
			}
			brow := b.Data[kk*n : (kk+1)*n]
			for j := 0; j < n; j++ {
				crow[j] += av * brow[j]
			}
		}
	}
}
