package nn

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/lowp"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// xorData returns the classic XOR problem, replicated with jitter so
// batching has something to chew on.
func xorData(r *rng.Stream, n int) (*tensor.Tensor, []int) {
	x := tensor.New(n, 2)
	labels := make([]int, n)
	base := [][2]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	for i := 0; i < n; i++ {
		b := base[i%4]
		x.Set(b[0]+r.NormMeanStd(0, 0.05), i, 0)
		x.Set(b[1]+r.NormMeanStd(0, 0.05), i, 1)
		if (b[0] > 0.5) != (b[1] > 0.5) {
			labels[i] = 1
		}
	}
	return x, labels
}

func TestMLPLearnsXOR(t *testing.T) {
	r := rng.New(42)
	x, labels := xorData(r.Split("data"), 400)
	net := MLP(2, []int{16}, 2, Tanh, r.Split("init"))
	y := OneHot(labels, 2)
	res, err := Train(net, x, y, TrainConfig{
		Loss: SoftmaxCELoss{}, Optimizer: NewAdam(0.01),
		BatchSize: 32, Epochs: 60, Shuffle: true, RNG: r.Split("shuffle"),
	})
	if err != nil {
		t.Fatal(err)
	}
	acc := EvaluateClassifier(net, x, labels)
	if acc < 0.97 {
		t.Fatalf("XOR accuracy %.3f (final loss %.4f)", acc, res.FinalLoss)
	}
	// Loss must have decreased substantially.
	if res.EpochLoss[len(res.EpochLoss)-1] > 0.5*res.EpochLoss[0] {
		t.Fatalf("loss barely moved: %v -> %v", res.EpochLoss[0], res.FinalLoss)
	}
}

func TestRegressionLearnsLinearMap(t *testing.T) {
	r := rng.New(7)
	const n, din, dout = 300, 4, 2
	x := tensor.New(n, din)
	x.FillRandNorm(r, 1)
	w := tensor.New(din, dout)
	w.FillRandNorm(r, 1)
	y := tensor.New(n, dout)
	tensor.MatMul(y, x, w)
	net := NewNet(NewDense(din, dout, r.Split("init")))
	_, err := Train(net, x, y, TrainConfig{
		Loss: MSELoss{}, Optimizer: NewAdam(0.05), BatchSize: 32, Epochs: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if mse := EvaluateRegression(net, x, y); mse > 1e-3 {
		t.Fatalf("linear map not recovered, MSE=%v", mse)
	}
}

func TestOptimizersReduceLoss(t *testing.T) {
	mk := func() (opts map[string]Optimizer) {
		return map[string]Optimizer{
			"sgd":      NewSGD(0.1),
			"momentum": NewMomentum(0.05, 0.9),
			"nesterov": func() *SGD { s := NewMomentum(0.05, 0.9); s.Nesterov = true; return s }(),
			"adam":     NewAdam(0.01),
			"adamw":    NewAdamW(0.01, 1e-4),
			"rmsprop":  NewRMSProp(0.005),
		}
	}
	for name, opt := range mk() {
		t.Run(name, func(t *testing.T) {
			r := rng.New(11)
			x, labels := xorData(r.Split("data"), 200)
			y := OneHot(labels, 2)
			net := MLP(2, []int{12}, 2, Tanh, r.Split("init"))
			res, err := Train(net, x, y, TrainConfig{
				Loss: SoftmaxCELoss{}, Optimizer: opt, BatchSize: 20, Epochs: 40,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.FinalLoss > 0.8*res.EpochLoss[0] {
				t.Fatalf("%s failed to reduce loss: %v -> %v",
					name, res.EpochLoss[0], res.FinalLoss)
			}
		})
	}
}

func TestDropoutTrainVsEval(t *testing.T) {
	r := rng.New(3)
	d := NewDropout(0.5, r)
	x := tensor.New(4, 100)
	x.Fill(1)
	// Eval mode is the identity.
	ye := d.Forward(x, false)
	for i := range ye.Data {
		if ye.Data[i] != 1 {
			t.Fatal("dropout changed values at inference")
		}
	}
	// Train mode zeroes roughly half and rescales the rest to 2.
	yt := d.Forward(x, true)
	zeros, twos := 0, 0
	for _, v := range yt.Data {
		switch v {
		case 0:
			zeros++
		case 2:
			twos++
		default:
			t.Fatalf("unexpected dropout output %v", v)
		}
	}
	if zeros < 120 || zeros > 280 {
		t.Fatalf("dropout kept ratio off: %d zeros of 400", zeros)
	}
	_ = twos
}

func TestDropoutBackwardMasksGrads(t *testing.T) {
	r := rng.New(4)
	d := NewDropout(0.5, r)
	x := tensor.New(2, 10)
	x.Fill(1)
	y := d.Forward(x, true)
	dout := tensor.New(2, 10)
	dout.Fill(1)
	dx := d.Backward(dout)
	for i := range dx.Data {
		if (y.Data[i] == 0) != (dx.Data[i] == 0) {
			t.Fatal("dropout mask inconsistent between forward and backward")
		}
	}
}

func TestBatchNormNormalises(t *testing.T) {
	bn := NewBatchNorm(3)
	r := rng.New(5)
	x := tensor.New(64, 3)
	for i := 0; i < 64; i++ {
		x.Set(r.NormMeanStd(10, 4), i, 0)
		x.Set(r.NormMeanStd(-5, 0.5), i, 1)
		x.Set(r.NormMeanStd(0, 1), i, 2)
	}
	y := bn.Forward(x, true)
	for j := 0; j < 3; j++ {
		var mean, sq float64
		for i := 0; i < 64; i++ {
			mean += y.At(i, j)
		}
		mean /= 64
		for i := 0; i < 64; i++ {
			d := y.At(i, j) - mean
			sq += d * d
		}
		std := math.Sqrt(sq / 64)
		if math.Abs(mean) > 1e-9 || math.Abs(std-1) > 1e-3 {
			t.Fatalf("feature %d not normalised: mean=%v std=%v", j, mean, std)
		}
	}
}

func TestBatchNormInferenceUsesRunningStats(t *testing.T) {
	bn := NewBatchNorm(1)
	r := rng.New(6)
	x := tensor.New(128, 1)
	for i := range x.Data {
		x.Data[i] = r.NormMeanStd(5, 2)
	}
	for i := 0; i < 50; i++ {
		bn.Forward(x, true)
	}
	// A single far-off sample at inference should be normalised by the
	// running stats, not its own (undefined) batch stats.
	probe := tensor.New(1, 1)
	probe.Data[0] = 5
	y := bn.Forward(probe, false)
	if math.Abs(y.Data[0]) > 0.2 {
		t.Fatalf("running-mean inference off: %v", y.Data[0])
	}
}

func TestNetCloneIndependence(t *testing.T) {
	r := rng.New(8)
	net := MLP(3, []int{4}, 2, ReLU, r)
	clone := net.Clone()
	net.Params()[0].Fill(99)
	if clone.Params()[0].Data[0] == 99 {
		t.Fatal("clone shares parameter storage")
	}
	if clone.NumParams() != net.NumParams() {
		t.Fatal("clone parameter count differs")
	}
}

func TestWeightsRoundTrip(t *testing.T) {
	r := rng.New(9)
	net := MLP(4, []int{5}, 3, Tanh, r)
	blob, err := net.MarshalWeights()
	if err != nil {
		t.Fatal(err)
	}
	other := MLP(4, []int{5}, 3, Tanh, rng.New(1234))
	if err := other.UnmarshalWeights(blob); err != nil {
		t.Fatal(err)
	}
	x := tensor.New(2, 4)
	x.FillRandNorm(rng.New(5), 1)
	a := net.Forward(x, false)
	b := other.Forward(x, false)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("loaded network computes differently")
		}
	}
	// Mismatched architecture must error.
	bad := MLP(4, []int{6}, 3, Tanh, rng.New(1))
	if err := bad.UnmarshalWeights(blob); err == nil {
		t.Fatal("weight load into wrong architecture did not error")
	}
}

func TestTrainValidation(t *testing.T) {
	r := rng.New(10)
	net := MLP(2, nil, 1, ReLU, r)
	x := tensor.New(4, 2)
	y := tensor.New(3, 1)
	if _, err := Train(net, x, y, TrainConfig{Loss: MSELoss{}, Optimizer: NewSGD(0.1)}); err == nil {
		t.Fatal("sample count mismatch not rejected")
	}
	y2 := tensor.New(4, 1)
	if _, err := Train(net, x, y2, TrainConfig{Optimizer: NewSGD(0.1)}); err == nil {
		t.Fatal("missing loss not rejected")
	}
	if _, err := Train(net, x, y2, TrainConfig{Loss: MSELoss{}, Optimizer: NewSGD(0.1), Shuffle: true}); err == nil {
		t.Fatal("shuffle without rng not rejected")
	}
}

func TestLowPrecisionTrainingStillLearns(t *testing.T) {
	// bf16 training should solve XOR nearly as well as fp64.
	r := rng.New(21)
	x, labels := xorData(r.Split("data"), 300)
	y := OneHot(labels, 2)
	net := MLP(2, []int{16}, 2, Tanh, r.Split("init"))
	_, err := Train(net, x, y, TrainConfig{
		Loss: SoftmaxCELoss{}, Optimizer: NewAdam(0.01),
		BatchSize: 32, Epochs: 60, Precision: lowp.BF16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if acc := EvaluateClassifier(net, x, labels); acc < 0.9 {
		t.Fatalf("bf16 XOR accuracy %.3f", acc)
	}
}

func TestFP16LossScalingSkipsOverflow(t *testing.T) {
	r := rng.New(22)
	x, labels := xorData(r.Split("data"), 100)
	y := OneHot(labels, 2)
	net := MLP(2, []int{8}, 2, Tanh, r.Split("init"))
	res, err := Train(net, x, y, TrainConfig{
		Loss: SoftmaxCELoss{}, Optimizer: NewAdam(0.01),
		BatchSize: 25, Epochs: 10, Precision: lowp.FP16, LossScale: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// With the default 2^15 initial scale some early steps overflow fp16 and
	// must be skipped rather than poisoning the weights.
	for _, p := range net.Params() {
		for _, v := range p.Data {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatal("weights poisoned despite loss scaling")
			}
		}
	}
	if res.Steps == 0 {
		t.Fatal("all steps skipped")
	}
}

func TestClipGlobalNorm(t *testing.T) {
	g1 := tensor.FromSlice([]float64{3, 0}, 2)
	g2 := tensor.FromSlice([]float64{0, 4}, 2)
	clipGlobalNorm([]*tensor.Tensor{g1, g2}, 1)
	total := 0.0
	for _, g := range []*tensor.Tensor{g1, g2} {
		for _, v := range g.Data {
			total += v * v
		}
	}
	if math.Abs(math.Sqrt(total)-1) > 1e-12 {
		t.Fatalf("global norm after clip %v", math.Sqrt(total))
	}
}

func TestOneHot(t *testing.T) {
	y := OneHot([]int{1, 0, 2}, 3)
	if y.At(0, 1) != 1 || y.At(1, 0) != 1 || y.At(2, 2) != 1 || y.Sum() != 3 {
		t.Fatalf("OneHot wrong: %v", y.Data)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range label did not panic")
		}
	}()
	OneHot([]int{3}, 3)
}

// Property: softmax CE loss is non-negative and its gradient rows sum to ~0
// (softmax minus one-hot both sum to 1 per row).
func TestQuickSoftmaxCEGradRowSum(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n, c := 1+r.Intn(6), 2+r.Intn(5)
		logits := tensor.New(n, c)
		logits.FillRandNorm(r, 3)
		labels := make([]int, n)
		for i := range labels {
			labels[i] = r.Intn(c)
		}
		y := OneHot(labels, c)
		var l SoftmaxCELoss
		if l.Loss(logits, y) < 0 {
			return false
		}
		g := tensor.New(n, c)
		l.Grad(g, logits, y)
		for i := 0; i < n; i++ {
			s := 0.0
			for j := 0; j < c; j++ {
				s += g.At(i, j)
			}
			if math.Abs(s) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: MLP OutDim chains consistently with actual forward shapes.
func TestQuickForwardShapes(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		in := 1 + r.Intn(10)
		h := 1 + r.Intn(10)
		out := 1 + r.Intn(5)
		n := 1 + r.Intn(8)
		net := MLP(in, []int{h}, out, ReLU, r)
		x := tensor.New(n, in)
		x.FillRandNorm(r, 1)
		y := net.Forward(x, false)
		return y.Dim(0) == n && y.Dim(1) == out
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestConvNetTrainsOnPatternDetection(t *testing.T) {
	// Class 1 sequences contain a sharp spike pattern; conv should find it.
	r := rng.New(33)
	const n, length = 240, 32
	x := tensor.New(n, length)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		for j := 0; j < length; j++ {
			x.Set(r.NormMeanStd(0, 0.3), i, j)
		}
		if i%2 == 0 {
			labels[i] = 1
			pos := 2 + r.Intn(length-6)
			x.Set(3, i, pos)
			x.Set(-3, i, pos+1)
			x.Set(3, i, pos+2)
		}
	}
	conv := NewConv1D(1, length, 8, 5, 1, 2, r.Split("conv"))
	pool := NewMaxPool1D(8, conv.OutLen(), 4, 0)
	net := NewNet(conv, NewActivation(ReLU), pool,
		NewDense(8*pool.OutLen(), 2, r.Split("out")))
	y := OneHot(labels, 2)
	_, err := Train(net, x, y, TrainConfig{
		Loss: SoftmaxCELoss{}, Optimizer: NewAdam(0.005),
		BatchSize: 30, Epochs: 30, Shuffle: true, RNG: r.Split("sh"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if acc := EvaluateClassifier(net, x, labels); acc < 0.95 {
		t.Fatalf("conv pattern accuracy %.3f", acc)
	}
}

func TestEarlyStopCallback(t *testing.T) {
	r := rng.New(44)
	x, labels := xorData(r.Split("d"), 100)
	y := OneHot(labels, 2)
	net := MLP(2, []int{8}, 2, Tanh, r.Split("i"))
	calls := 0
	res, err := Train(net, x, y, TrainConfig{
		Loss: SoftmaxCELoss{}, Optimizer: NewAdam(0.01), Epochs: 50,
		OnEpoch: func(epoch int, loss float64) bool {
			calls++
			return epoch < 4 // stop after epoch 4
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 5 || len(res.EpochLoss) != 5 {
		t.Fatalf("early stop ran %d epochs (%d callbacks)", len(res.EpochLoss), calls)
	}
}
