package nn

// Float32 compute paths for the GEMM-heavy layers. With SetComputeF32(true),
// Dense and Conv2D run their forward/backward matrix products on the float32
// kernel backend pinned in internal/tensor (see tensor.SetBackend), while
// every parameter, gradient, and optimizer state tensor stays float64 — the
// master-weights discipline of mixed-precision training. Weight copies are
// re-narrowed from the float64 masters on every forward, so optimizer steps
// are always visible to the fast path; gradients are widened (exactly) back
// to float64 before accumulation.
//
// The layer-local F32 buffers are reused across steps, so the steady-state
// cost of the conversion boundary is memory traffic, not allocation.

import (
	"repro/internal/lowp"
	"repro/internal/tensor"
)

// F32Computer is implemented by layers with a float32 compute path.
type F32Computer interface {
	// SetComputeF32 toggles float32 kernel compute. Off (the default) is
	// the pure float64 path; flipping the mode drops any cached buffers.
	SetComputeF32(on bool)
}

// SetComputeF32 toggles the float32 compute path on every layer that has
// one (Dense, Conv2D); other layers are untouched. It returns the number of
// layers switched, so callers can assert the net actually has a fast path.
func (n *Net) SetComputeF32(on bool) int {
	switched := 0
	for _, l := range n.Layers {
		if fc, ok := l.(F32Computer); ok {
			fc.SetComputeF32(on)
			switched++
		}
	}
	return switched
}

// ensureF32 returns buf if it already has exactly the wanted shape, else a
// fresh tensor. Layers call it every step; after the first step at a given
// batch size it never allocates.
func ensureF32(buf *tensor.F32, shape ...int) *tensor.F32 {
	if buf != nil && len(buf.Shape()) == len(shape) {
		same := true
		for i, d := range shape {
			if buf.Dim(i) != d {
				same = false
				break
			}
		}
		if same {
			return buf
		}
	}
	return tensor.NewF32(shape...)
}

// denseF32 holds the Dense layer's float32 working set.
type denseF32 struct {
	w, b         *tensor.F32 // narrowed master weights, refreshed per forward
	x, y         *tensor.F32 // batch activations
	dout, dw, dx *tensor.F32 // backward working set
}

// SetComputeF32 implements F32Computer.
func (d *Dense) SetComputeF32(on bool) {
	if on {
		d.f32 = &denseF32{}
	} else {
		d.f32 = nil
	}
}

// forwardF32 is Forward on the float32 kernel path: y = x·W + b with the
// GEMM on the pinned backend, returned widened to float64.
func (d *Dense) forwardF32(x *tensor.Tensor, n int) *tensor.Tensor {
	s := d.f32
	s.w = ensureF32(s.w, d.In, d.Out)
	lowp.F32FromTensor(s.w, d.W)
	s.b = ensureF32(s.b, d.Out)
	lowp.F32FromTensor(s.b, d.B)
	s.x = ensureF32(s.x, n, d.In)
	lowp.F32FromTensor(s.x, x.Reshape(n, d.In))
	s.y = ensureF32(s.y, n, d.Out)
	tensor.MatMulF32(s.y, s.x, s.w)
	for i := 0; i < n; i++ {
		row := s.y.Data[i*d.Out : (i+1)*d.Out]
		for j := range row {
			row[j] += s.b.Data[j]
		}
	}
	y := tensor.New(n, d.Out)
	lowp.TensorFromF32(y, s.y)
	return y
}

// backwardF32 mirrors Backward with the three GEMMs in float32. dB is a
// cheap reduction and stays float64; dW and dx cross back through exact
// widening, with dW accumulated into the float64 gradient like the f64 path.
func (d *Dense) backwardF32(dout *tensor.Tensor, n int) *tensor.Tensor {
	s := d.f32
	s.dout = ensureF32(s.dout, n, d.Out)
	lowp.F32FromTensor(s.dout, dout)
	s.dw = ensureF32(s.dw, d.In, d.Out)
	tensor.MatMulTransAF32(s.dw, s.x, s.dout)
	lowp.AddTensorFromF32(d.dW, s.dw)
	db := tensor.New(d.Out)
	tensor.SumRows(db, dout)
	tensor.AddScaled(d.dB, db, 1)
	s.dx = ensureF32(s.dx, n, d.In)
	tensor.MatMulTransBF32(s.dx, s.dout, s.w)
	dx := tensor.New(n, d.In)
	lowp.TensorFromF32(dx, s.dx)
	return dx
}

// conv2DF32 holds the Conv2D layer's float32 working set. cols is indexed
// by sample like the float64 cache; the per-worker scratch lives on the
// stack of the ParallelFor body.
type conv2DF32 struct {
	wt, b *tensor.F32
	cols  []*tensor.F32
}

// SetComputeF32 implements F32Computer.
func (c *Conv2D) SetComputeF32(on bool) {
	if on {
		c.f32 = &conv2DF32{}
	} else {
		c.f32 = nil
	}
}

// forwardF32 runs the im2col convolution with float32 lowering and GEMM.
// Parallelism stays per-sample (the f64 layout); each sample's GEMM uses the
// serial blocked f32 kernel so worker goroutines do not nest ParallelFor.
func (c *Conv2D) forwardF32(x *tensor.Tensor, n int) *tensor.Tensor {
	s := c.f32
	kk := c.Channels * c.Kernel * c.Kernel
	out2 := c.oh * c.ow
	s.wt = ensureF32(s.wt, c.Filters, kk)
	lowp.F32FromTensor(s.wt, c.Wt)
	s.b = ensureF32(s.b, c.Filters)
	lowp.F32FromTensor(s.b, c.B)
	if len(s.cols) < n {
		s.cols = make([]*tensor.F32, n)
	}
	y := tensor.New(n, c.Filters*out2)
	tensor.ParallelFor(n, func(lo, hi int) {
		in := tensor.NewF32(c.Channels * c.H * c.W)
		out := tensor.NewF32(c.Filters, out2)
		for sm := lo; sm < hi; sm++ {
			if s.cols[sm] == nil {
				s.cols[sm] = tensor.NewF32(kk, out2)
			}
			col := s.cols[sm]
			lowp.F32FromTensor(in, x.Row(sm))
			tensor.Im2Col2DF32(col, in, c.Channels, c.H, c.W, c.Kernel, c.Stride, c.Pad)
			tensor.MatMulF32Serial(out, s.wt, col)
			for f := 0; f < c.Filters; f++ {
				b := s.b.Data[f]
				row := out.Data[f*out2 : (f+1)*out2]
				for i := range row {
					row[i] += b
				}
			}
			lowp.TensorFromF32(y.Row(sm).Reshape(c.Filters, out2), out)
		}
	})
	return y
}

// backwardF32 mirrors Backward with float32 GEMMs and col2im. Per-worker
// weight-gradient partials accumulate in float64 (exact widening per
// sample), and dB stays a float64 reduction, so the gradient contract
// matches the f64 path: only GEMM arithmetic narrows.
func (c *Conv2D) backwardF32(dout *tensor.Tensor, n int) *tensor.Tensor {
	s := c.f32
	kk := c.Channels * c.Kernel * c.Kernel
	out2 := c.oh * c.ow
	dx := tensor.New(n, c.Channels*c.H*c.W)
	type acc struct{ dW, dB *tensor.Tensor }
	accs := make([]*acc, n)
	tensor.ParallelFor(n, func(lo, hi int) {
		a := &acc{dW: tensor.New(c.Filters, kk), dB: tensor.New(c.Filters)}
		accs[lo] = a
		dy := tensor.NewF32(c.Filters, out2)
		dw := tensor.NewF32(c.Filters, kk)
		dcol := tensor.NewF32(kk, out2)
		din := tensor.NewF32(c.Channels * c.H * c.W)
		for sm := lo; sm < hi; sm++ {
			dyRow := dout.Row(sm).Reshape(c.Filters, out2)
			lowp.F32FromTensor(dy, dyRow)
			col := s.cols[sm]
			tensor.MatMulTransBF32Serial(dw, dy, col)
			lowp.AddTensorFromF32(a.dW, dw)
			for f := 0; f < c.Filters; f++ {
				sum := 0.0
				row := dyRow.Data[f*out2 : (f+1)*out2]
				for _, v := range row {
					sum += v
				}
				a.dB.Data[f] += sum
			}
			tensor.MatMulTransAF32Serial(dcol, s.wt, dy)
			din.Zero()
			tensor.Col2Im2DF32(din, dcol, c.Channels, c.H, c.W, c.Kernel, c.Stride, c.Pad)
			lowp.AddTensorFromF32(dx.Row(sm), din)
		}
	})
	for _, a := range accs {
		if a == nil {
			continue
		}
		tensor.AddScaled(c.dW, a.dW, 1)
		tensor.AddScaled(c.dB, a.dB, 1)
	}
	return dx
}
