package nn

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/tensor"
)

func TestConv2DGradCheck(t *testing.T) {
	r := rng.New(61)
	conv := NewConv2D(2, 6, 6, 3, 3, 1, 1, r)
	oh, ow := conv.OutDims()
	net := NewNet(conv, NewActivation(Tanh), NewDense(3*oh*ow, 2, r))
	x := tensor.New(2, 2*6*6)
	x.FillRandNorm(r, 1)
	y := tensor.New(2, 2)
	y.FillRandNorm(r, 1)
	checkLayerGrads(t, net, MSELoss{}, x, y, 1e-4)
}

func TestConv2DStridedGradCheck(t *testing.T) {
	r := rng.New(62)
	conv := NewConv2D(1, 8, 8, 2, 2, 2, 0, r)
	oh, ow := conv.OutDims()
	net := NewNet(conv, NewDense(2*oh*ow, 1, r))
	x := tensor.New(2, 64)
	x.FillRandNorm(r, 1)
	y := tensor.New(2, 1)
	y.FillRandNorm(r, 1)
	checkLayerGrads(t, net, MSELoss{}, x, y, 1e-4)
}

func TestMaxPool2DGradCheck(t *testing.T) {
	r := rng.New(63)
	pool := NewMaxPool2D(2, 6, 6, 2, 0)
	oh, ow := pool.OutDims()
	net := NewNet(pool, NewDense(2*oh*ow, 2, r))
	x := tensor.New(2, 2*36)
	x.FillRandNorm(r, 1)
	// Separate values so argmax does not flip under perturbation.
	for i := range x.Data {
		x.Data[i] = math.Round(x.Data[i]*100) / 10
	}
	y := tensor.New(2, 2)
	y.FillRandNorm(r, 1)
	checkLayerGrads(t, net, MSELoss{}, x, y, 1e-4)
}

func TestConv2DOutDims(t *testing.T) {
	r := rng.New(64)
	conv := NewConv2D(3, 16, 16, 8, 3, 1, 1, r)
	oh, ow := conv.OutDims()
	if oh != 16 || ow != 16 {
		t.Fatalf("same-pad dims %dx%d", oh, ow)
	}
	if conv.OutDim(3*16*16) != 8*16*16 {
		t.Fatal("OutDim wrong")
	}
}

func TestConv2DLearnsOrientation(t *testing.T) {
	// Class 0: horizontal bar; class 1: vertical bar. A conv layer should
	// separate these trivially; a proof the 2-D stack trains end to end.
	r := rng.New(65)
	const n, side = 200, 8
	x := tensor.New(n, side*side)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		for j := 0; j < side*side; j++ {
			x.Set(r.NormMeanStd(0, 0.2), i, j)
		}
		pos := 1 + r.Intn(side-2)
		if i%2 == 0 {
			for k := 0; k < side; k++ {
				x.Set(2, i, pos*side+k) // horizontal bar
			}
		} else {
			labels[i] = 1
			for k := 0; k < side; k++ {
				x.Set(2, i, k*side+pos) // vertical bar
			}
		}
	}
	conv := NewConv2D(1, side, side, 4, 3, 1, 1, r.Split("conv"))
	oh, ow := conv.OutDims()
	pool := NewMaxPool2D(4, oh, ow, 2, 0)
	ph, pw := pool.OutDims()
	net := NewNet(conv, NewActivation(ReLU), pool, NewDense(4*ph*pw, 2, r.Split("fc")))
	y := OneHot(labels, 2)
	_, err := Train(net, x, y, TrainConfig{
		Loss: SoftmaxCELoss{}, Optimizer: NewAdam(0.01),
		BatchSize: 25, Epochs: 15, Shuffle: true, RNG: r.Split("sh"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if acc := EvaluateClassifier(net, x, labels); acc < 0.95 {
		t.Fatalf("orientation accuracy %.3f", acc)
	}
}

func TestConv2DClone(t *testing.T) {
	r := rng.New(66)
	conv := NewConv2D(1, 4, 4, 2, 3, 1, 1, r)
	clone := conv.Clone().(*Conv2D)
	conv.Wt.Fill(9)
	if clone.Wt.Data[0] == 9 {
		t.Fatal("Conv2D clone shares weights")
	}
}

func TestMaxPool2DForward(t *testing.T) {
	// 1 channel 4x4 -> 2x2 with window 2.
	p := NewMaxPool2D(1, 4, 4, 2, 0)
	x := tensor.FromSlice([]float64{
		1, 2, 0, 0,
		3, 4, 0, 5,
		0, 0, 9, 0,
		7, 0, 0, 0,
	}, 1, 16)
	y := p.Forward(x, false)
	want := []float64{4, 5, 7, 9}
	for i, w := range want {
		if y.Data[i] != w {
			t.Fatalf("pool output %v want %v", y.Data, want)
		}
	}
}
