package nn

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Optimizer applies one update step given parameter and gradient tensor
// lists (parallel slices). Implementations keep per-parameter state keyed by
// position, so the same optimizer must always be called with the same
// parameter list.
type Optimizer interface {
	// Name identifies the optimizer for logging.
	Name() string
	// Step updates params in place from grads.
	Step(params, grads []*tensor.Tensor)
	// Reset clears internal state (moments, step counters).
	Reset()
}

// StatefulOptimizer is implemented by optimizers whose internal state
// (momentum buffers, Adam moments, step counters) must survive a
// checkpoint/restart for training to continue bitwise-identically. All
// optimizers in this package implement it.
type StatefulOptimizer interface {
	Optimizer
	// MarshalState serialises the internal state (not the hyperparameters).
	MarshalState() ([]byte, error)
	// UnmarshalState restores state produced by MarshalState. The optimizer
	// must be configured with the same hyperparameters and be stepped with
	// the same parameter list as the one that was checkpointed.
	UnmarshalState(b []byte) error
}

// flattenMoments copies moment tensors to plain slices for gob encoding.
func flattenMoments(ts []*tensor.Tensor) [][]float64 {
	if ts == nil {
		return nil
	}
	out := make([][]float64, len(ts))
	for i, t := range ts {
		out[i] = append([]float64(nil), t.Data...)
	}
	return out
}

// restoreMoments rebuilds moment tensors from flattened values. Step only
// ever indexes .Data on moment buffers, so rank-1 tensors of the right
// length reproduce the exact update sequence.
func restoreMoments(flat [][]float64) []*tensor.Tensor {
	if flat == nil {
		return nil
	}
	ts := make([]*tensor.Tensor, len(flat))
	for i, vals := range flat {
		ts[i] = tensor.New(len(vals))
		copy(ts[i].Data, vals)
	}
	return ts
}

// gobEncodeState gob-encodes v with a small error wrapper shared by the
// optimizer state marshalers.
func gobEncodeState(name string, v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("nn: marshal %s state: %w", name, err)
	}
	return buf.Bytes(), nil
}

// gobDecodeState decodes b into v with a matching error wrapper.
func gobDecodeState(name string, b []byte, v any) error {
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(v); err != nil {
		return fmt.Errorf("nn: unmarshal %s state: %w", name, err)
	}
	return nil
}

// SGD is plain stochastic gradient descent with optional momentum /
// Nesterov momentum and decoupled weight decay.
type SGD struct {
	LR          float64
	Momentum    float64
	Nesterov    bool
	WeightDecay float64
	vel         []*tensor.Tensor
}

// NewSGD returns plain SGD with the given learning rate.
func NewSGD(lr float64) *SGD { return &SGD{LR: lr} }

// NewMomentum returns SGD with classical momentum.
func NewMomentum(lr, momentum float64) *SGD { return &SGD{LR: lr, Momentum: momentum} }

// Name implements Optimizer.
func (s *SGD) Name() string {
	if s.Momentum == 0 {
		return "sgd"
	}
	if s.Nesterov {
		return "nesterov"
	}
	return "momentum"
}

// Step implements Optimizer.
func (s *SGD) Step(params, grads []*tensor.Tensor) {
	if len(params) != len(grads) {
		panic("nn: SGD param/grad length mismatch")
	}
	if s.Momentum == 0 {
		for i, p := range params {
			g := grads[i]
			for j := range p.Data {
				d := g.Data[j] + s.WeightDecay*p.Data[j]
				p.Data[j] -= s.LR * d
			}
		}
		return
	}
	if s.vel == nil {
		s.vel = make([]*tensor.Tensor, len(params))
		for i, p := range params {
			s.vel[i] = tensor.New(p.Shape()...)
		}
	}
	for i, p := range params {
		g := grads[i]
		v := s.vel[i]
		for j := range p.Data {
			d := g.Data[j] + s.WeightDecay*p.Data[j]
			v.Data[j] = s.Momentum*v.Data[j] - s.LR*d
			if s.Nesterov {
				p.Data[j] += s.Momentum*v.Data[j] - s.LR*d
			} else {
				p.Data[j] += v.Data[j]
			}
		}
	}
}

// Reset implements Optimizer.
func (s *SGD) Reset() { s.vel = nil }

// sgdState is the serialised form of SGD's momentum buffers.
type sgdState struct{ Vel [][]float64 }

// MarshalState implements StatefulOptimizer.
func (s *SGD) MarshalState() ([]byte, error) {
	return gobEncodeState("sgd", sgdState{Vel: flattenMoments(s.vel)})
}

// UnmarshalState implements StatefulOptimizer.
func (s *SGD) UnmarshalState(b []byte) error {
	var st sgdState
	if err := gobDecodeState("sgd", b, &st); err != nil {
		return err
	}
	s.vel = restoreMoments(st.Vel)
	return nil
}

// Adam implements Adam and (with Decoupled=true) AdamW.
type Adam struct {
	LR, Beta1, Beta2, Eps float64
	WeightDecay           float64
	Decoupled             bool // AdamW-style decay applied directly to weights
	m, v                  []*tensor.Tensor
	t                     int
}

// NewAdam returns Adam with conventional defaults.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// NewAdamW returns AdamW with decoupled weight decay.
func NewAdamW(lr, decay float64) *Adam {
	a := NewAdam(lr)
	a.WeightDecay = decay
	a.Decoupled = true
	return a
}

// Name implements Optimizer.
func (a *Adam) Name() string {
	if a.Decoupled {
		return "adamw"
	}
	return "adam"
}

// Step implements Optimizer.
func (a *Adam) Step(params, grads []*tensor.Tensor) {
	if len(params) != len(grads) {
		panic("nn: Adam param/grad length mismatch")
	}
	if a.m == nil {
		a.m = make([]*tensor.Tensor, len(params))
		a.v = make([]*tensor.Tensor, len(params))
		for i, p := range params {
			a.m[i] = tensor.New(p.Shape()...)
			a.v[i] = tensor.New(p.Shape()...)
		}
	}
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for i, p := range params {
		g := grads[i]
		m, v := a.m[i], a.v[i]
		for j := range p.Data {
			gj := g.Data[j]
			if a.WeightDecay != 0 && !a.Decoupled {
				gj += a.WeightDecay * p.Data[j]
			}
			m.Data[j] = a.Beta1*m.Data[j] + (1-a.Beta1)*gj
			v.Data[j] = a.Beta2*v.Data[j] + (1-a.Beta2)*gj*gj
			mh := m.Data[j] / bc1
			vh := v.Data[j] / bc2
			upd := a.LR * mh / (math.Sqrt(vh) + a.Eps)
			if a.Decoupled && a.WeightDecay != 0 {
				upd += a.LR * a.WeightDecay * p.Data[j]
			}
			p.Data[j] -= upd
		}
	}
}

// Reset implements Optimizer.
func (a *Adam) Reset() { a.m, a.v, a.t = nil, nil, 0 }

// adamState is the serialised form of Adam's moments and step counter.
type adamState struct {
	M, V [][]float64
	T    int
}

// MarshalState implements StatefulOptimizer.
func (a *Adam) MarshalState() ([]byte, error) {
	return gobEncodeState(a.Name(), adamState{
		M: flattenMoments(a.m), V: flattenMoments(a.v), T: a.t})
}

// UnmarshalState implements StatefulOptimizer.
func (a *Adam) UnmarshalState(b []byte) error {
	var st adamState
	if err := gobDecodeState(a.Name(), b, &st); err != nil {
		return err
	}
	a.m = restoreMoments(st.M)
	a.v = restoreMoments(st.V)
	a.t = st.T
	return nil
}

// RMSProp implements the RMSProp optimizer.
type RMSProp struct {
	LR, Decay, Eps float64
	sq             []*tensor.Tensor
}

// NewRMSProp returns RMSProp with conventional defaults.
func NewRMSProp(lr float64) *RMSProp {
	return &RMSProp{LR: lr, Decay: 0.9, Eps: 1e-8}
}

// Name implements Optimizer.
func (r *RMSProp) Name() string { return "rmsprop" }

// Step implements Optimizer.
func (r *RMSProp) Step(params, grads []*tensor.Tensor) {
	if len(params) != len(grads) {
		panic("nn: RMSProp param/grad length mismatch")
	}
	if r.sq == nil {
		r.sq = make([]*tensor.Tensor, len(params))
		for i, p := range params {
			r.sq[i] = tensor.New(p.Shape()...)
		}
	}
	for i, p := range params {
		g := grads[i]
		sq := r.sq[i]
		for j := range p.Data {
			gj := g.Data[j]
			sq.Data[j] = r.Decay*sq.Data[j] + (1-r.Decay)*gj*gj
			p.Data[j] -= r.LR * gj / (math.Sqrt(sq.Data[j]) + r.Eps)
		}
	}
}

// Reset implements Optimizer.
func (r *RMSProp) Reset() { r.sq = nil }

// rmsState is the serialised form of RMSProp's squared-gradient average.
type rmsState struct{ Sq [][]float64 }

// MarshalState implements StatefulOptimizer.
func (r *RMSProp) MarshalState() ([]byte, error) {
	return gobEncodeState("rmsprop", rmsState{Sq: flattenMoments(r.sq)})
}

// UnmarshalState implements StatefulOptimizer.
func (r *RMSProp) UnmarshalState(b []byte) error {
	var st rmsState
	if err := gobDecodeState("rmsprop", b, &st); err != nil {
		return err
	}
	r.sq = restoreMoments(st.Sq)
	return nil
}
