package nn

import (
	"math"

	"repro/internal/tensor"
)

// Optimizer applies one update step given parameter and gradient tensor
// lists (parallel slices). Implementations keep per-parameter state keyed by
// position, so the same optimizer must always be called with the same
// parameter list.
type Optimizer interface {
	// Name identifies the optimizer for logging.
	Name() string
	// Step updates params in place from grads.
	Step(params, grads []*tensor.Tensor)
	// Reset clears internal state (moments, step counters).
	Reset()
}

// SGD is plain stochastic gradient descent with optional momentum /
// Nesterov momentum and decoupled weight decay.
type SGD struct {
	LR          float64
	Momentum    float64
	Nesterov    bool
	WeightDecay float64
	vel         []*tensor.Tensor
}

// NewSGD returns plain SGD with the given learning rate.
func NewSGD(lr float64) *SGD { return &SGD{LR: lr} }

// NewMomentum returns SGD with classical momentum.
func NewMomentum(lr, momentum float64) *SGD { return &SGD{LR: lr, Momentum: momentum} }

// Name implements Optimizer.
func (s *SGD) Name() string {
	if s.Momentum == 0 {
		return "sgd"
	}
	if s.Nesterov {
		return "nesterov"
	}
	return "momentum"
}

// Step implements Optimizer.
func (s *SGD) Step(params, grads []*tensor.Tensor) {
	if len(params) != len(grads) {
		panic("nn: SGD param/grad length mismatch")
	}
	if s.Momentum == 0 {
		for i, p := range params {
			g := grads[i]
			for j := range p.Data {
				d := g.Data[j] + s.WeightDecay*p.Data[j]
				p.Data[j] -= s.LR * d
			}
		}
		return
	}
	if s.vel == nil {
		s.vel = make([]*tensor.Tensor, len(params))
		for i, p := range params {
			s.vel[i] = tensor.New(p.Shape()...)
		}
	}
	for i, p := range params {
		g := grads[i]
		v := s.vel[i]
		for j := range p.Data {
			d := g.Data[j] + s.WeightDecay*p.Data[j]
			v.Data[j] = s.Momentum*v.Data[j] - s.LR*d
			if s.Nesterov {
				p.Data[j] += s.Momentum*v.Data[j] - s.LR*d
			} else {
				p.Data[j] += v.Data[j]
			}
		}
	}
}

// Reset implements Optimizer.
func (s *SGD) Reset() { s.vel = nil }

// Adam implements Adam and (with Decoupled=true) AdamW.
type Adam struct {
	LR, Beta1, Beta2, Eps float64
	WeightDecay           float64
	Decoupled             bool // AdamW-style decay applied directly to weights
	m, v                  []*tensor.Tensor
	t                     int
}

// NewAdam returns Adam with conventional defaults.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// NewAdamW returns AdamW with decoupled weight decay.
func NewAdamW(lr, decay float64) *Adam {
	a := NewAdam(lr)
	a.WeightDecay = decay
	a.Decoupled = true
	return a
}

// Name implements Optimizer.
func (a *Adam) Name() string {
	if a.Decoupled {
		return "adamw"
	}
	return "adam"
}

// Step implements Optimizer.
func (a *Adam) Step(params, grads []*tensor.Tensor) {
	if len(params) != len(grads) {
		panic("nn: Adam param/grad length mismatch")
	}
	if a.m == nil {
		a.m = make([]*tensor.Tensor, len(params))
		a.v = make([]*tensor.Tensor, len(params))
		for i, p := range params {
			a.m[i] = tensor.New(p.Shape()...)
			a.v[i] = tensor.New(p.Shape()...)
		}
	}
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for i, p := range params {
		g := grads[i]
		m, v := a.m[i], a.v[i]
		for j := range p.Data {
			gj := g.Data[j]
			if a.WeightDecay != 0 && !a.Decoupled {
				gj += a.WeightDecay * p.Data[j]
			}
			m.Data[j] = a.Beta1*m.Data[j] + (1-a.Beta1)*gj
			v.Data[j] = a.Beta2*v.Data[j] + (1-a.Beta2)*gj*gj
			mh := m.Data[j] / bc1
			vh := v.Data[j] / bc2
			upd := a.LR * mh / (math.Sqrt(vh) + a.Eps)
			if a.Decoupled && a.WeightDecay != 0 {
				upd += a.LR * a.WeightDecay * p.Data[j]
			}
			p.Data[j] -= upd
		}
	}
}

// Reset implements Optimizer.
func (a *Adam) Reset() { a.m, a.v, a.t = nil, nil, 0 }

// RMSProp implements the RMSProp optimizer.
type RMSProp struct {
	LR, Decay, Eps float64
	sq             []*tensor.Tensor
}

// NewRMSProp returns RMSProp with conventional defaults.
func NewRMSProp(lr float64) *RMSProp {
	return &RMSProp{LR: lr, Decay: 0.9, Eps: 1e-8}
}

// Name implements Optimizer.
func (r *RMSProp) Name() string { return "rmsprop" }

// Step implements Optimizer.
func (r *RMSProp) Step(params, grads []*tensor.Tensor) {
	if len(params) != len(grads) {
		panic("nn: RMSProp param/grad length mismatch")
	}
	if r.sq == nil {
		r.sq = make([]*tensor.Tensor, len(params))
		for i, p := range params {
			r.sq[i] = tensor.New(p.Shape()...)
		}
	}
	for i, p := range params {
		g := grads[i]
		sq := r.sq[i]
		for j := range p.Data {
			gj := g.Data[j]
			sq.Data[j] = r.Decay*sq.Data[j] + (1-r.Decay)*gj*gj
			p.Data[j] -= r.LR * gj / (math.Sqrt(sq.Data[j]) + r.Eps)
		}
	}
}

// Reset implements Optimizer.
func (r *RMSProp) Reset() { r.sq = nil }
