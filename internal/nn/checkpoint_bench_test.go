package nn_test

// Checkpoint-overhead benchmark: trains the same small network with
// checkpointing off, every epoch, and every other epoch, so the wall-clock
// cost of capturing + encoding the full training state (weights, Adam
// moments, RNG cursors) can be compared against the checkpoint-free
// baseline. The blob is encoded but discarded, isolating serialization cost
// from disk I/O.
//
// Run: go test ./internal/nn -bench Checkpoint -benchtime 2s
// The steps/sec numbers for BENCH_fault.json come from this benchmark.

import (
	"testing"

	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/tensor"
)

func ckptBenchProblem() (*tensor.Tensor, *tensor.Tensor) {
	const n, din, classes = 256, 64, 4
	r := rng.New(7)
	x := tensor.New(n, din)
	x.FillRandNorm(r.Split("x"), 1)
	labels := make([]int, n)
	for i := range labels {
		labels[i] = i % classes
	}
	return x, nn.OneHot(labels, classes)
}

// benchCheckpoint runs 4 epochs per iteration, checkpointing every `every`
// epochs (0 = never), and reports steps/sec plus the encoded blob size.
func benchCheckpoint(b *testing.B, every int) {
	x, y := ckptBenchProblem()
	net := nn.MLP(64, []int{128}, 4, nn.ReLU, rng.New(7))
	blobBytes := 0
	cfg := nn.TrainConfig{
		Loss: nn.SoftmaxCELoss{}, Optimizer: nn.NewAdam(0.01),
		BatchSize: 32, Epochs: 4,
		Shuffle: true, RNG: rng.New(11),
	}
	if every > 0 {
		cfg.CheckpointEvery = every
		cfg.Checkpoint = func(epoch int, state []byte) error {
			blobBytes = len(state)
			return nil
		}
	}
	b.ResetTimer()
	steps := 0
	for i := 0; i < b.N; i++ {
		res, err := nn.Train(net, x, y, cfg)
		if err != nil {
			b.Fatal(err)
		}
		steps += res.Steps
	}
	b.ReportMetric(float64(steps)/b.Elapsed().Seconds(), "steps/sec")
	if blobBytes > 0 {
		b.ReportMetric(float64(blobBytes), "blob-bytes")
	}
}

func BenchmarkCheckpointNever(b *testing.B)      { benchCheckpoint(b, 0) }
func BenchmarkCheckpointEveryEpoch(b *testing.B) { benchCheckpoint(b, 1) }
func BenchmarkCheckpointEveryOther(b *testing.B) { benchCheckpoint(b, 2) }
