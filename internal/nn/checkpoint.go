package nn

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"

	"repro/internal/lowp"
	"repro/internal/rng"
)

// TrainState is the complete training state at an epoch boundary: enough to
// resume Train and continue bitwise-identically to the uninterrupted run.
// Beyond the weights it captures the optimizer's internal state (momentum /
// Adam moments / step counter), the shuffle RNG cursor and the in-place
// sample order it permutes, per-layer RNG cursors (dropout masks), the
// dynamic loss-scaler state, and the result history accumulated so far.
type TrainState struct {
	// Version guards the blob layout.
	Version int
	// Epoch is the number of completed epochs; resume continues at Epoch.
	Epoch int
	// Weights holds every parameter tensor's values in Params() order.
	Weights [][]float64
	// OptName names the optimizer the state belongs to; resume refuses a
	// mismatched optimizer rather than continuing with silently wrong state.
	OptName string
	// OptState is the optimizer's MarshalState blob (nil when the optimizer
	// is not a StatefulOptimizer).
	OptState []byte
	// RNG is the shuffle stream's cursor (valid when HasRNG).
	RNG    [4]uint64
	HasRNG bool
	// Order is the sample order after this epoch's in-place shuffle; the
	// next epoch's shuffle permutes exactly this slice.
	Order []int
	// LayerRNG holds the cursor of every layer-owned stream (dropout), in
	// layer order.
	LayerRNG [][4]uint64
	// Loss-scaler dynamic state (valid when HasScaler).
	ScalerScale float64
	ScalerClean int
	HasScaler   bool
	// Result history so the resumed TrainResult matches the uninterrupted one.
	EpochLoss    []float64
	Steps        int
	SkippedSteps int
}

const (
	trainStateVersion = 1
	ckptMagic         = "CKPT"
)

// layerRNGState is implemented by layers owning their own random stream
// (Dropout); their cursors ride along in the checkpoint.
type layerRNGState interface {
	RNGState() [4]uint64
	SetRNGState([4]uint64)
}

// Encode serialises the state as a framed blob: a magic header, the CRC32
// of the gob payload, then the payload. The checksum turns silent
// corruption into a hard decode error.
func (st *TrainState) Encode() ([]byte, error) {
	st.Version = trainStateVersion
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(st); err != nil {
		return nil, fmt.Errorf("nn: encode train state: %w", err)
	}
	out := make([]byte, 0, len(ckptMagic)+4+payload.Len())
	out = append(out, ckptMagic...)
	out = binary.BigEndian.AppendUint32(out, crc32.ChecksumIEEE(payload.Bytes()))
	return append(out, payload.Bytes()...), nil
}

// DecodeTrainState parses a blob produced by Encode, rejecting truncated,
// corrupted, or foreign data with a descriptive error.
func DecodeTrainState(b []byte) (*TrainState, error) {
	head := len(ckptMagic) + 4
	if len(b) < head {
		return nil, fmt.Errorf("nn: train state blob truncated (%d bytes)", len(b))
	}
	if string(b[:len(ckptMagic)]) != ckptMagic {
		return nil, fmt.Errorf("nn: not a train state blob (bad magic)")
	}
	want := binary.BigEndian.Uint32(b[len(ckptMagic):head])
	payload := b[head:]
	if got := crc32.ChecksumIEEE(payload); got != want {
		return nil, fmt.Errorf("nn: train state blob corrupted (crc %08x, want %08x)", got, want)
	}
	var st TrainState
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&st); err != nil {
		return nil, fmt.Errorf("nn: decode train state: %w", err)
	}
	if st.Version != trainStateVersion {
		return nil, fmt.Errorf("nn: train state version %d, want %d", st.Version, trainStateVersion)
	}
	return &st, nil
}

// captureTrainState snapshots everything Train needs to continue from the
// end of epoch (0-based) `epoch`.
func captureTrainState(net *Net, cfg TrainConfig, scaler *lowp.LossScaler,
	res *TrainResult, epoch int, order []int) (*TrainState, error) {

	st := &TrainState{
		Epoch:        epoch + 1,
		OptName:      cfg.Optimizer.Name(),
		Order:        append([]int(nil), order...),
		EpochLoss:    append([]float64(nil), res.EpochLoss...),
		Steps:        res.Steps,
		SkippedSteps: res.SkippedSteps,
	}
	for _, p := range net.Params() {
		st.Weights = append(st.Weights, append([]float64(nil), p.Data...))
	}
	if so, ok := cfg.Optimizer.(StatefulOptimizer); ok {
		blob, err := so.MarshalState()
		if err != nil {
			return nil, err
		}
		st.OptState = blob
	}
	if cfg.RNG != nil {
		st.RNG = cfg.RNG.State()
		st.HasRNG = true
	}
	for _, l := range net.Layers {
		if lr, ok := l.(layerRNGState); ok {
			st.LayerRNG = append(st.LayerRNG, lr.RNGState())
		}
	}
	if scaler != nil {
		st.ScalerScale, st.ScalerClean = scaler.State()
		st.HasScaler = true
	}
	return st, nil
}

// restoreTrainState applies st to the training objects, returning the epoch
// to continue from. It validates structural compatibility so a mismatched
// net or optimizer fails loudly instead of training from garbage.
func restoreTrainState(st *TrainState, net *Net, cfg TrainConfig,
	scaler *lowp.LossScaler, res *TrainResult, order []int) (int, error) {

	ps := net.Params()
	if len(st.Weights) != len(ps) {
		return 0, fmt.Errorf("nn: resume state has %d weight tensors, net has %d",
			len(st.Weights), len(ps))
	}
	for i, w := range st.Weights {
		if len(w) != ps[i].Len() {
			return 0, fmt.Errorf("nn: resume weight tensor %d has %d elements, net expects %d",
				i, len(w), ps[i].Len())
		}
	}
	if st.OptName != cfg.Optimizer.Name() {
		return 0, fmt.Errorf("nn: resume state is for optimizer %q, config has %q",
			st.OptName, cfg.Optimizer.Name())
	}
	if len(st.Order) != len(order) {
		return 0, fmt.Errorf("nn: resume order has %d samples, data has %d",
			len(st.Order), len(order))
	}
	var layerRNGs []layerRNGState
	for _, l := range net.Layers {
		if lr, ok := l.(layerRNGState); ok {
			layerRNGs = append(layerRNGs, lr)
		}
	}
	if len(layerRNGs) != len(st.LayerRNG) {
		return 0, fmt.Errorf("nn: resume state has %d layer RNG cursors, net has %d",
			len(st.LayerRNG), len(layerRNGs))
	}

	// All checks passed — mutate.
	for i, w := range st.Weights {
		copy(ps[i].Data, w)
	}
	if st.OptState != nil {
		if so, ok := cfg.Optimizer.(StatefulOptimizer); ok {
			if err := so.UnmarshalState(st.OptState); err != nil {
				return 0, err
			}
		}
	}
	if st.HasRNG {
		if cfg.RNG == nil {
			return 0, fmt.Errorf("nn: resume state carries an RNG cursor but config has no RNG")
		}
		cfg.RNG.SetState(st.RNG)
	}
	copy(order, st.Order)
	for i, lr := range layerRNGs {
		lr.SetRNGState(st.LayerRNG[i])
	}
	if st.HasScaler && scaler != nil {
		scaler.Restore(st.ScalerScale, st.ScalerClean)
	}
	res.EpochLoss = append(res.EpochLoss[:0], st.EpochLoss...)
	res.Steps = st.Steps
	res.SkippedSteps = st.SkippedSteps
	return st.Epoch, nil
}

// MarshalTrainState captures and encodes a checkpoint outside of Train —
// the building block CLI tools use between explicit training calls. The
// supplied rng stream (may be nil) is recorded as the shuffle cursor.
func MarshalTrainState(net *Net, opt Optimizer, r *rng.Stream, epoch int, history []float64) ([]byte, error) {
	cfg := TrainConfig{Optimizer: opt, RNG: r}
	res := &TrainResult{EpochLoss: history}
	st, err := captureTrainState(net, cfg, nil, res, epoch-1, nil)
	if err != nil {
		return nil, err
	}
	return st.Encode()
}
