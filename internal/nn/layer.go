// Package nn implements the neural-network stack used by the driver
// problems: a layer zoo (dense, 1-D/2-D convolution, pooling, batch norm,
// dropout, activations) with full manual backpropagation, loss functions,
// first-order optimizers, and a precision-aware training loop.
//
// The design is deliberately framework-like but minimal: layers own their
// parameters and gradients, a Net is an ordered layer list, and training
// utilities live in train.go. All math runs on internal/tensor; reduced
// precision is emulated through internal/lowp.
package nn

import (
	"fmt"
	"math"

	"repro/internal/rng"
	"repro/internal/tensor"
)

// Layer is one differentiable stage of a network. Forward consumes a batch
// (axis 0 is the sample axis) and returns the layer output; Backward consumes
// dL/d(output) and returns dL/d(input), accumulating parameter gradients
// internally. Layers are stateful across a Forward/Backward pair and are NOT
// safe for concurrent use; replicas are created via Clone for parallel
// training.
type Layer interface {
	// Name identifies the layer type and its dimensions for diagnostics.
	Name() string
	// OutDim returns the per-sample output element count given the
	// per-sample input element count, or panics if incompatible.
	OutDim(inDim int) int
	// Forward runs the layer on x (N x inDim). train enables
	// training-only behaviour (dropout masks, batch-norm batch stats).
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	// Backward propagates dout (N x outDim) and returns dL/dx.
	Backward(dout *tensor.Tensor) *tensor.Tensor
	// Params returns the trainable parameter tensors (may be empty).
	Params() []*tensor.Tensor
	// Grads returns gradient tensors parallel to Params.
	Grads() []*tensor.Tensor
	// Clone returns an independent copy with the same parameter VALUES
	// but separate storage (for data-parallel replicas).
	Clone() Layer
}

// Dense is a fully connected layer: y = x·W + b, W (in x out), b (out).
type Dense struct {
	In, Out int
	W, B    *tensor.Tensor
	dW, dB  *tensor.Tensor
	x       *tensor.Tensor // cached input for backward
	f32     *denseF32      // non-nil when the float32 compute path is on
}

// NewDense creates a dense layer with He-normal weight initialisation.
func NewDense(in, out int, r *rng.Stream) *Dense {
	d := &Dense{In: in, Out: out,
		W: tensor.New(in, out), B: tensor.New(out),
		dW: tensor.New(in, out), dB: tensor.New(out)}
	HeNormal(d.W, in, r)
	return d
}

// Name implements Layer.
func (d *Dense) Name() string { return fmt.Sprintf("Dense(%d→%d)", d.In, d.Out) }

// OutDim implements Layer.
func (d *Dense) OutDim(inDim int) int {
	if inDim != d.In {
		panic(fmt.Sprintf("nn: %s given input dim %d", d.Name(), inDim))
	}
	return d.Out
}

// Forward implements Layer.
func (d *Dense) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n := x.Dim(0)
	d.x = x
	if d.f32 != nil {
		return d.forwardF32(x, n)
	}
	y := tensor.New(n, d.Out)
	tensor.MatMul(y, x.Reshape(n, d.In), d.W)
	tensor.AddRowVector(y, y, d.B)
	return y
}

// Backward implements Layer.
func (d *Dense) Backward(dout *tensor.Tensor) *tensor.Tensor {
	n := dout.Dim(0)
	if d.f32 != nil {
		return d.backwardF32(dout, n)
	}
	x := d.x.Reshape(n, d.In)
	// dW += xᵀ·dout ; accumulate so replicas can micro-batch.
	dW := tensor.New(d.In, d.Out)
	tensor.MatMulTransA(dW, x, dout)
	tensor.AddScaled(d.dW, dW, 1)
	db := tensor.New(d.Out)
	tensor.SumRows(db, dout)
	tensor.AddScaled(d.dB, db, 1)
	dx := tensor.New(n, d.In)
	tensor.MatMulTransB(dx, dout, d.W)
	return dx
}

// Params implements Layer.
func (d *Dense) Params() []*tensor.Tensor { return []*tensor.Tensor{d.W, d.B} }

// Grads implements Layer.
func (d *Dense) Grads() []*tensor.Tensor { return []*tensor.Tensor{d.dW, d.dB} }

// Clone implements Layer.
func (d *Dense) Clone() Layer {
	c := &Dense{In: d.In, Out: d.Out,
		W: d.W.Clone(), B: d.B.Clone(),
		dW: tensor.New(d.In, d.Out), dB: tensor.New(d.Out)}
	c.SetComputeF32(d.f32 != nil) // same compute mode, fresh buffers
	return c
}

// Activation kinds supported by the Activation layer.
type ActKind int

// Supported activation functions.
const (
	ReLU ActKind = iota
	LeakyReLU
	Sigmoid
	Tanh
	GELU
)

// String returns the activation's conventional name.
func (k ActKind) String() string {
	switch k {
	case ReLU:
		return "relu"
	case LeakyReLU:
		return "leaky_relu"
	case Sigmoid:
		return "sigmoid"
	case Tanh:
		return "tanh"
	case GELU:
		return "gelu"
	default:
		return "act?"
	}
}

// ParseAct converts an activation name to its kind.
func ParseAct(s string) (ActKind, error) {
	for _, k := range []ActKind{ReLU, LeakyReLU, Sigmoid, Tanh, GELU} {
		if k.String() == s {
			return k, nil
		}
	}
	return ReLU, fmt.Errorf("nn: unknown activation %q", s)
}

// Activation applies a pointwise nonlinearity.
type Activation struct {
	Kind ActKind
	out  *tensor.Tensor // cached output (ReLU/Sigmoid/Tanh use out-form grads)
	in   *tensor.Tensor
}

// NewActivation returns an activation layer of the given kind.
func NewActivation(kind ActKind) *Activation { return &Activation{Kind: kind} }

// Name implements Layer.
func (a *Activation) Name() string { return a.Kind.String() }

// OutDim implements Layer.
func (a *Activation) OutDim(inDim int) int { return inDim }

// Forward implements Layer.
func (a *Activation) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	a.in = x
	y := tensor.New(x.Shape()...)
	switch a.Kind {
	case ReLU:
		tensor.Apply(y, x, func(v float64) float64 {
			if v > 0 {
				return v
			}
			return 0
		})
	case LeakyReLU:
		tensor.Apply(y, x, func(v float64) float64 {
			if v > 0 {
				return v
			}
			return 0.01 * v
		})
	case Sigmoid:
		tensor.Apply(y, x, func(v float64) float64 { return 1 / (1 + math.Exp(-v)) })
	case Tanh:
		tensor.Apply(y, x, math.Tanh)
	case GELU:
		tensor.Apply(y, x, geluFn)
	}
	a.out = y
	return y
}

func geluFn(v float64) float64 {
	// tanh approximation of GELU.
	return 0.5 * v * (1 + math.Tanh(0.7978845608028654*(v+0.044715*v*v*v)))
}

// Backward implements Layer.
func (a *Activation) Backward(dout *tensor.Tensor) *tensor.Tensor {
	dx := tensor.New(dout.Shape()...)
	switch a.Kind {
	case ReLU:
		for i := range dx.Data {
			if a.in.Data[i] > 0 {
				dx.Data[i] = dout.Data[i]
			}
		}
	case LeakyReLU:
		for i := range dx.Data {
			if a.in.Data[i] > 0 {
				dx.Data[i] = dout.Data[i]
			} else {
				dx.Data[i] = 0.01 * dout.Data[i]
			}
		}
	case Sigmoid:
		for i := range dx.Data {
			s := a.out.Data[i]
			dx.Data[i] = dout.Data[i] * s * (1 - s)
		}
	case Tanh:
		for i := range dx.Data {
			th := a.out.Data[i]
			dx.Data[i] = dout.Data[i] * (1 - th*th)
		}
	case GELU:
		const c = 0.7978845608028654
		for i := range dx.Data {
			v := a.in.Data[i]
			u := c * (v + 0.044715*v*v*v)
			t := math.Tanh(u)
			du := c * (1 + 3*0.044715*v*v)
			dx.Data[i] = dout.Data[i] * (0.5*(1+t) + 0.5*v*(1-t*t)*du)
		}
	}
	return dx
}

// Params implements Layer.
func (a *Activation) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (a *Activation) Grads() []*tensor.Tensor { return nil }

// Clone implements Layer.
func (a *Activation) Clone() Layer { return &Activation{Kind: a.Kind} }

// Dropout zeroes a random fraction Rate of activations during training and
// rescales the survivors (inverted dropout), so inference needs no change.
type Dropout struct {
	Rate float64
	rng  *rng.Stream
	mask []bool
}

// NewDropout creates a dropout layer drawing masks from r.
func NewDropout(rate float64, r *rng.Stream) *Dropout {
	if rate < 0 || rate >= 1 {
		panic("nn: dropout rate must be in [0,1)")
	}
	return &Dropout{Rate: rate, rng: r}
}

// Name implements Layer.
func (d *Dropout) Name() string { return fmt.Sprintf("Dropout(%.2f)", d.Rate) }

// RNGState exposes the mask stream's cursor for checkpointing.
func (d *Dropout) RNGState() [4]uint64 { return d.rng.State() }

// SetRNGState restores a mask-stream cursor captured by RNGState.
func (d *Dropout) SetRNGState(s [4]uint64) { d.rng.SetState(s) }

// OutDim implements Layer.
func (d *Dropout) OutDim(inDim int) int { return inDim }

// Forward implements Layer.
func (d *Dropout) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if !train || d.Rate == 0 {
		d.mask = nil
		return x
	}
	y := tensor.New(x.Shape()...)
	if cap(d.mask) < x.Len() {
		d.mask = make([]bool, x.Len())
	}
	d.mask = d.mask[:x.Len()]
	scale := 1 / (1 - d.Rate)
	for i, v := range x.Data {
		keep := !d.rng.Bernoulli(d.Rate)
		d.mask[i] = keep
		if keep {
			y.Data[i] = v * scale
		}
	}
	return y
}

// Backward implements Layer.
func (d *Dropout) Backward(dout *tensor.Tensor) *tensor.Tensor {
	if d.mask == nil {
		return dout
	}
	dx := tensor.New(dout.Shape()...)
	scale := 1 / (1 - d.Rate)
	for i, v := range dout.Data {
		if d.mask[i] {
			dx.Data[i] = v * scale
		}
	}
	return dx
}

// Params implements Layer.
func (d *Dropout) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (d *Dropout) Grads() []*tensor.Tensor { return nil }

// Clone implements Layer.
func (d *Dropout) Clone() Layer {
	return &Dropout{Rate: d.Rate, rng: d.rng.Split("dropout-clone")}
}

// Flatten reshapes (N, ...) to (N, prod(...)). With contiguous row-major
// tensors this is a pure view change.
type Flatten struct{ inShape []int }

// NewFlatten returns a flatten layer.
func NewFlatten() *Flatten { return &Flatten{} }

// Name implements Layer.
func (f *Flatten) Name() string { return "Flatten" }

// OutDim implements Layer.
func (f *Flatten) OutDim(inDim int) int { return inDim }

// Forward implements Layer.
func (f *Flatten) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	f.inShape = append(f.inShape[:0], x.Shape()...)
	n := x.Dim(0)
	return x.Reshape(n, x.Len()/n)
}

// Backward implements Layer.
func (f *Flatten) Backward(dout *tensor.Tensor) *tensor.Tensor {
	return dout.Reshape(f.inShape...)
}

// Params implements Layer.
func (f *Flatten) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (f *Flatten) Grads() []*tensor.Tensor { return nil }

// Clone implements Layer.
func (f *Flatten) Clone() Layer { return &Flatten{} }
