package nn

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"strings"

	"repro/internal/rng"
	"repro/internal/tensor"
)

// Net is an ordered sequence of layers trained end to end.
type Net struct {
	Layers []Layer
}

// NewNet builds a network from the given layers.
func NewNet(layers ...Layer) *Net { return &Net{Layers: layers} }

// MLP constructs a standard multilayer perceptron: Dense+activation per
// hidden width, then a final Dense to outDim (no output activation — pair
// with SoftmaxCELoss or a regression loss).
func MLP(inDim int, hidden []int, outDim int, act ActKind, r *rng.Stream) *Net {
	var layers []Layer
	prev := inDim
	for i, h := range hidden {
		layers = append(layers, NewDense(prev, h, r.Split(fmt.Sprintf("dense%d", i))))
		layers = append(layers, NewActivation(act))
		prev = h
	}
	layers = append(layers, NewDense(prev, outDim, r.Split("dense_out")))
	return NewNet(layers...)
}

// Forward runs the network on batch x.
func (n *Net) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range n.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward propagates dout through the network in reverse, accumulating
// parameter gradients, and returns dL/dinput.
func (n *Net) Backward(dout *tensor.Tensor) *tensor.Tensor {
	return n.BackwardWithHook(dout, nil)
}

// BackwardWithHook is Backward with a per-layer gradient-ready hook: after
// layer i's Backward returns — at which point that layer's parameter
// gradients hold their final values for the step — onLayerDone(i) is invoked
// on the calling goroutine. Layers complete in reverse order (deepest first),
// which is what lets a data-parallel trainer start communicating early
// buckets while shallower layers are still computing. A nil hook makes this
// identical to Backward.
func (n *Net) BackwardWithHook(dout *tensor.Tensor, onLayerDone func(layer int)) *tensor.Tensor {
	for i := len(n.Layers) - 1; i >= 0; i-- {
		dout = n.Layers[i].Backward(dout)
		if onLayerDone != nil {
			onLayerDone(i)
		}
	}
	return dout
}

// Params returns every trainable parameter tensor in layer order.
func (n *Net) Params() []*tensor.Tensor {
	var ps []*tensor.Tensor
	for _, l := range n.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// Grads returns every gradient tensor, parallel to Params.
func (n *Net) Grads() []*tensor.Tensor {
	var gs []*tensor.Tensor
	for _, l := range n.Layers {
		gs = append(gs, l.Grads()...)
	}
	return gs
}

// ZeroGrads clears all accumulated gradients.
func (n *Net) ZeroGrads() {
	for _, g := range n.Grads() {
		g.Zero()
	}
}

// NumParams returns the total trainable parameter count.
func (n *Net) NumParams() int {
	total := 0
	for _, p := range n.Params() {
		total += p.Len()
	}
	return total
}

// Clone returns an independent replica with copied parameter values and
// fresh gradient buffers.
func (n *Net) Clone() *Net {
	layers := make([]Layer, len(n.Layers))
	for i, l := range n.Layers {
		layers[i] = l.Clone()
	}
	return &Net{Layers: layers}
}

// String summarises the architecture.
func (n *Net) String() string {
	var sb strings.Builder
	for i, l := range n.Layers {
		if i > 0 {
			sb.WriteString(" → ")
		}
		sb.WriteString(l.Name())
	}
	fmt.Fprintf(&sb, " [%d params]", n.NumParams())
	return sb.String()
}

// MarshalWeights serialises the parameter values (not the architecture).
func (n *Net) MarshalWeights() ([]byte, error) {
	var flat [][]float64
	for _, p := range n.Params() {
		flat = append(flat, p.Data)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(flat); err != nil {
		return nil, fmt.Errorf("nn: marshal weights: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalWeights loads parameter values previously produced by
// MarshalWeights into a structurally identical network.
func (n *Net) UnmarshalWeights(b []byte) error {
	var flat [][]float64
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&flat); err != nil {
		return fmt.Errorf("nn: unmarshal weights: %w", err)
	}
	ps := n.Params()
	if len(flat) != len(ps) {
		return fmt.Errorf("nn: weight blob has %d tensors, net has %d", len(flat), len(ps))
	}
	for i, p := range ps {
		if len(flat[i]) != p.Len() {
			return fmt.Errorf("nn: tensor %d has %d elements, net expects %d",
				i, len(flat[i]), p.Len())
		}
		copy(p.Data, flat[i])
	}
	return nil
}

// PredictClasses runs inference and returns the arg-max class per sample.
func (n *Net) PredictClasses(x *tensor.Tensor) []int {
	out := n.Forward(x, false)
	return tensor.ArgMaxRows(out)
}
