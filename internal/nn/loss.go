package nn

import (
	"math"

	"repro/internal/tensor"
)

// Loss scores a batch of predictions against targets and provides the
// gradient of the mean loss with respect to the predictions.
type Loss interface {
	// Name identifies the loss for logging.
	Name() string
	// Loss returns the mean loss over the batch.
	Loss(pred, target *tensor.Tensor) float64
	// Grad writes dL/dpred (already averaged over the batch) into dst.
	Grad(dst, pred, target *tensor.Tensor)
}

// MSELoss is mean squared error, averaged over every element.
type MSELoss struct{}

// Name implements Loss.
func (MSELoss) Name() string { return "mse" }

// Loss implements Loss.
func (MSELoss) Loss(pred, target *tensor.Tensor) float64 {
	if pred.Len() != target.Len() {
		panic("nn: MSE size mismatch")
	}
	s := 0.0
	for i := range pred.Data {
		d := pred.Data[i] - target.Data[i]
		s += d * d
	}
	return s / float64(pred.Len())
}

// Grad implements Loss.
func (MSELoss) Grad(dst, pred, target *tensor.Tensor) {
	inv := 2 / float64(pred.Len())
	for i := range pred.Data {
		dst.Data[i] = inv * (pred.Data[i] - target.Data[i])
	}
}

// MAELoss is mean absolute error, averaged over every element.
type MAELoss struct{}

// Name implements Loss.
func (MAELoss) Name() string { return "mae" }

// Loss implements Loss.
func (MAELoss) Loss(pred, target *tensor.Tensor) float64 {
	if pred.Len() != target.Len() {
		panic("nn: MAE size mismatch")
	}
	s := 0.0
	for i := range pred.Data {
		s += math.Abs(pred.Data[i] - target.Data[i])
	}
	return s / float64(pred.Len())
}

// Grad implements Loss.
func (MAELoss) Grad(dst, pred, target *tensor.Tensor) {
	inv := 1 / float64(pred.Len())
	for i := range pred.Data {
		switch {
		case pred.Data[i] > target.Data[i]:
			dst.Data[i] = inv
		case pred.Data[i] < target.Data[i]:
			dst.Data[i] = -inv
		default:
			dst.Data[i] = 0
		}
	}
}

// SoftmaxCELoss is softmax cross-entropy over logits (N x C) against one-hot
// targets (N x C). The softmax and cross-entropy are fused so the gradient
// is the numerically benign (softmax - target)/N.
type SoftmaxCELoss struct{}

// Name implements Loss.
func (SoftmaxCELoss) Name() string { return "softmax_ce" }

// Loss implements Loss.
func (SoftmaxCELoss) Loss(pred, target *tensor.Tensor) float64 {
	n, c := pred.Dim(0), pred.Dim(1)
	total := 0.0
	for i := 0; i < n; i++ {
		row := pred.Data[i*c : (i+1)*c]
		trow := target.Data[i*c : (i+1)*c]
		mx := row[0]
		for _, v := range row[1:] {
			if v > mx {
				mx = v
			}
		}
		lse := 0.0
		for _, v := range row {
			lse += math.Exp(v - mx)
		}
		lse = math.Log(lse) + mx
		for j, t := range trow {
			if t != 0 {
				total += t * (lse - row[j])
			}
		}
	}
	return total / float64(n)
}

// Grad implements Loss.
func (SoftmaxCELoss) Grad(dst, pred, target *tensor.Tensor) {
	n := pred.Dim(0)
	tensor.SoftmaxRows(dst, pred)
	inv := 1 / float64(n)
	for i := range dst.Data {
		dst.Data[i] = (dst.Data[i] - target.Data[i]) * inv
	}
}

// BCELoss is binary cross-entropy over a single logit per sample
// (pred N x 1 logits, target N x 1 in {0,1}), computed in the
// numerically-stable log-sum-exp form.
type BCELoss struct{}

// Name implements Loss.
func (BCELoss) Name() string { return "bce" }

// Loss implements Loss.
func (BCELoss) Loss(pred, target *tensor.Tensor) float64 {
	if pred.Len() != target.Len() {
		panic("nn: BCE size mismatch")
	}
	s := 0.0
	for i := range pred.Data {
		z, y := pred.Data[i], target.Data[i]
		// max(z,0) - z*y + log(1+exp(-|z|))
		s += math.Max(z, 0) - z*y + math.Log1p(math.Exp(-math.Abs(z)))
	}
	return s / float64(pred.Len())
}

// Grad implements Loss.
func (BCELoss) Grad(dst, pred, target *tensor.Tensor) {
	inv := 1 / float64(pred.Len())
	for i := range pred.Data {
		sig := 1 / (1 + math.Exp(-pred.Data[i]))
		dst.Data[i] = (sig - target.Data[i]) * inv
	}
}

// OneHot encodes integer labels into an (N x classes) one-hot tensor.
func OneHot(labels []int, classes int) *tensor.Tensor {
	t := tensor.New(len(labels), classes)
	for i, l := range labels {
		if l < 0 || l >= classes {
			panic("nn: OneHot label out of range")
		}
		t.Set(1, i, l)
	}
	return t
}
