package nn

import (
	"math"

	"repro/internal/rng"
	"repro/internal/tensor"
)

// HeNormal fills w with N(0, sqrt(2/fanIn)) variates — the standard
// initialisation for ReLU-family networks.
func HeNormal(w *tensor.Tensor, fanIn int, r *rng.Stream) {
	w.FillRandNorm(r, math.Sqrt(2/float64(fanIn)))
}

// GlorotUniform fills w with Uniform(±sqrt(6/(fanIn+fanOut))) variates —
// the standard initialisation for tanh/sigmoid networks.
func GlorotUniform(w *tensor.Tensor, fanIn, fanOut int, r *rng.Stream) {
	limit := math.Sqrt(6 / float64(fanIn+fanOut))
	w.FillRandUniform(r, -limit, limit)
}

// LeCunNormal fills w with N(0, sqrt(1/fanIn)) variates.
func LeCunNormal(w *tensor.Tensor, fanIn int, r *rng.Stream) {
	w.FillRandNorm(r, math.Sqrt(1/float64(fanIn)))
}
