package nn

// Equivalence tests for the float32 compute path: with SetComputeF32(true)
// the Dense/Conv2D outputs and gradients must track the float64 path within
// float32 rounding of the reduction depth, master weights must stay exactly
// float64 (the optimizer sees no narrowing), and end-to-end training must
// still learn.

import (
	"math"
	"testing"

	"repro/internal/lowp"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// close32 fails where got and want diverge beyond float32 rounding scaled by
// the reduction depth k.
func close32(t *testing.T, got, want *tensor.Tensor, k int, label string) {
	t.Helper()
	tol := 1e-5 * float64(k+1)
	for i := range got.Data {
		d := math.Abs(got.Data[i] - want.Data[i])
		if math.IsNaN(got.Data[i]) || math.IsNaN(want.Data[i]) || d > tol {
			t.Fatalf("%s: element %d got %v want %v (tol %v)", label, i, got.Data[i], want.Data[i], tol)
		}
	}
}

func TestDenseF32MatchesF64(t *testing.T) {
	r := rng.New(50)
	n, in, out := 9, 37, 21
	d64 := NewDense(in, out, r.Split("w"))
	d32 := d64.Clone().(*Dense)
	d32.SetComputeF32(true)

	x := tensor.New(n, in)
	x.FillRandNorm(r, 1)
	y64 := d64.Forward(x, true)
	y32 := d32.Forward(x, true)
	close32(t, y32, y64, in, "Dense forward")

	dout := tensor.New(n, out)
	dout.FillRandNorm(r, 1)
	dx64 := d64.Backward(dout)
	dx32 := d32.Backward(dout)
	close32(t, dx32, dx64, out, "Dense dx")
	close32(t, d32.dW, d64.dW, n, "Dense dW")
	close32(t, d32.dB, d64.dB, n, "Dense dB")
}

// TestDenseF32MasterWeightsStayF64 pins the precision contract: the f32 path
// narrows a COPY of the weights each forward; the float64 masters must be
// bit-identical before and after, and an optimizer step on the masters must
// be visible to the next f32 forward.
func TestDenseF32MasterWeightsStayF64(t *testing.T) {
	r := rng.New(51)
	d := NewDense(8, 4, r)
	d.SetComputeF32(true)
	before := d.W.Clone()
	x := tensor.New(3, 8)
	x.FillRandNorm(r, 1)
	d.Forward(x, true)
	for i := range d.W.Data {
		if d.W.Data[i] != before.Data[i] {
			t.Fatalf("master weight %d changed: %v -> %v", i, before.Data[i], d.W.Data[i])
		}
	}
	// A master update must flow into the next forward through re-narrowing.
	d.W.Fill(0)
	d.B.Fill(0)
	y := d.Forward(x, true)
	for i, v := range y.Data {
		if v != 0 {
			t.Fatalf("zeroed masters not picked up by f32 forward: y[%d]=%v", i, v)
		}
	}
}

func TestConv2DF32MatchesF64(t *testing.T) {
	r := rng.New(52)
	n, channels, h, w, filters, kernel := 4, 3, 10, 9, 5, 3
	c64 := NewConv2D(channels, h, w, filters, kernel, 1, 1, r.Split("w"))
	c32 := c64.Clone().(*Conv2D)
	c32.SetComputeF32(true)

	x := tensor.New(n, channels*h*w)
	x.FillRandNorm(r, 1)
	y64 := c64.Forward(x, true)
	y32 := c32.Forward(x, true)
	kk := channels * kernel * kernel
	close32(t, y32, y64, kk, "Conv2D forward")

	dout := tensor.New(n, y64.Dim(1))
	dout.FillRandNorm(r, 1)
	dx64 := c64.Backward(dout)
	dx32 := c32.Backward(dout)
	oh, ow := c64.OutDims()
	close32(t, dx32, dx64, filters*kernel*kernel, "Conv2D dx")
	close32(t, c32.dW, c64.dW, n*oh*ow, "Conv2D dW")
	close32(t, c32.dB, c64.dB, n*oh*ow, "Conv2D dB")
}

func TestNetSetComputeF32CountsLayers(t *testing.T) {
	r := rng.New(53)
	net := NewNet(
		NewConv2D(1, 8, 8, 4, 3, 1, 1, r.Split("c")),
		NewActivation(ReLU),
		NewFlatten(),
		NewDense(4*8*8, 10, r.Split("d")),
	)
	if got := net.SetComputeF32(true); got != 2 {
		t.Fatalf("SetComputeF32 switched %d layers, want 2 (Conv2D, Dense)", got)
	}
	if got := net.SetComputeF32(false); got != 2 {
		t.Fatalf("SetComputeF32(false) switched %d layers, want 2", got)
	}
}

// TestTrainComputeF32Learns runs the standard train smoke on the f32 compute
// path: a small MLP on a separable problem must reduce its loss, and the
// master weights must remain float64-precise (not representable exactly in
// float32 after an Adam step — probabilistically certain for some weight).
func TestTrainComputeF32Learns(t *testing.T) {
	r := rng.New(54)
	n, in := 64, 6
	x := tensor.New(n, in)
	x.FillRandNorm(r, 1)
	y := tensor.New(n, 2)
	for i := 0; i < n; i++ {
		cls := 0
		if x.At(i, 0)+x.At(i, 1) > 0 {
			cls = 1
		}
		y.Set(1, i, cls)
	}
	net := MLP(in, []int{16}, 2, ReLU, r.Split("mlp"))
	res, err := Train(net, x, y, TrainConfig{
		Loss:       SoftmaxCELoss{},
		Optimizer:  NewAdam(0.01),
		BatchSize:  16,
		Epochs:     20,
		ComputeF32: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	first, last := res.EpochLoss[0], res.FinalLoss
	if !(last < first*0.7) {
		t.Fatalf("f32-compute training did not learn: first %v last %v", first, last)
	}
	// Master weights carry more precision than float32 storage would allow.
	sub32 := false
	for _, p := range net.Params() {
		for _, v := range p.Data {
			if v != 0 && float64(float32(v)) != v {
				sub32 = true
			}
		}
	}
	if !sub32 {
		t.Fatal("every master weight is exactly float32-representable; masters appear narrowed")
	}
}

// TestLowpConvertRoundTrip pins the conversion contract: narrowing matches
// Round(FP32) and widening is exact.
func TestLowpConvertRoundTrip(t *testing.T) {
	r := rng.New(55)
	src := tensor.New(97)
	src.FillRandNorm(r, 1)
	f := tensor.NewF32(97)
	lowp.F32FromTensor(f, src)
	back := tensor.New(97)
	lowp.TensorFromF32(back, f)
	for i := range src.Data {
		if back.Data[i] != float64(float32(src.Data[i])) {
			t.Fatalf("element %d: round trip %v from %v", i, back.Data[i], src.Data[i])
		}
	}
	acc := tensor.New(97)
	acc.Fill(1)
	lowp.AddTensorFromF32(acc, f)
	for i := range acc.Data {
		if acc.Data[i] != 1+float64(f.Data[i]) {
			t.Fatalf("accumulate element %d wrong", i)
		}
	}
	// Size mismatches must panic rather than truncate.
	defer expectPanicNN(t, "F32FromTensor size mismatch")
	lowp.F32FromTensor(tensor.NewF32(3), src)
}

func expectPanicNN(t *testing.T, label string) {
	t.Helper()
	if recover() == nil {
		t.Errorf("%s: did not panic", label)
	}
}
