package nn

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/tensor"
)

// Property: a plain SGD step is exactly p' = p - lr*g.
func TestQuickSGDStepExact(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(20)
		lr := r.Uniform(1e-4, 1)
		p := tensor.New(n)
		p.FillRandNorm(r, 1)
		g := tensor.New(n)
		g.FillRandNorm(r, 1)
		want := make([]float64, n)
		for i := range want {
			want[i] = p.Data[i] - lr*g.Data[i]
		}
		NewSGD(lr).Step([]*tensor.Tensor{p}, []*tensor.Tensor{g})
		for i := range want {
			if math.Abs(p.Data[i]-want[i]) > 1e-15 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: each Adam parameter update is bounded by ~lr (the bias-corrected
// update magnitude bound |Δ| <= lr * (1-β1)⁻¹-ish; conservatively 3*lr).
func TestQuickAdamStepBounded(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(20)
		lr := r.Uniform(1e-4, 0.1)
		opt := NewAdam(lr)
		p := tensor.New(n)
		p.FillRandNorm(r, 1)
		g := tensor.New(n)
		for step := 0; step < 10; step++ {
			before := append([]float64(nil), p.Data...)
			g.FillRandNorm(r, r.Uniform(0.001, 100)) // wildly varying scale
			opt.Step([]*tensor.Tensor{p}, []*tensor.Tensor{g})
			for i := range p.Data {
				if math.Abs(p.Data[i]-before[i]) > 3*lr {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: zero gradients leave SGD/RMSProp parameters unchanged, and a
// momentum-free optimizer is stateless across Reset.
func TestQuickZeroGradNoChange(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(10)
		p := tensor.New(n)
		p.FillRandNorm(r, 1)
		orig := append([]float64(nil), p.Data...)
		g := tensor.New(n) // zeros
		for _, opt := range []Optimizer{NewSGD(0.1), NewRMSProp(0.1)} {
			opt.Step([]*tensor.Tensor{p}, []*tensor.Tensor{g})
			for i := range orig {
				if p.Data[i] != orig[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMomentumAcceleratesOnConstantGradient(t *testing.T) {
	// With a constant gradient, momentum's effective step grows toward
	// lr/(1-mu); plain SGD's stays at lr.
	p1 := tensor.FromSlice([]float64{0}, 1)
	p2 := tensor.FromSlice([]float64{0}, 1)
	g := tensor.FromSlice([]float64{1}, 1)
	sgd := NewSGD(0.1)
	mom := NewMomentum(0.1, 0.9)
	for i := 0; i < 30; i++ {
		sgd.Step([]*tensor.Tensor{p1}, []*tensor.Tensor{g})
		mom.Step([]*tensor.Tensor{p2}, []*tensor.Tensor{g})
	}
	if !(p2.Data[0] < p1.Data[0]) { // both negative; momentum further
		t.Fatalf("momentum (%v) did not outpace SGD (%v)", p2.Data[0], p1.Data[0])
	}
	if p2.Data[0] > -2*3 { // bounded by lr/(1-mu)*steps = 1*30
		// just sanity: finite
	}
	if math.IsNaN(p2.Data[0]) {
		t.Fatal("momentum diverged")
	}
}

func TestWeightDecayShrinksWeights(t *testing.T) {
	// With zero gradient, decoupled weight decay must shrink weights
	// geometrically.
	p := tensor.FromSlice([]float64{1}, 1)
	g := tensor.New(1)
	opt := NewAdamW(0.1, 0.5)
	opt.Step([]*tensor.Tensor{p}, []*tensor.Tensor{g})
	want := 1 - 0.1*0.5
	if math.Abs(p.Data[0]-want) > 1e-12 {
		t.Fatalf("AdamW decay: got %v want %v", p.Data[0], want)
	}
}

func TestOptimizerReset(t *testing.T) {
	// After Reset, the first step must match a fresh optimizer's first step.
	g := tensor.FromSlice([]float64{1, -2}, 2)
	step := func(opt Optimizer) []float64 {
		p := tensor.FromSlice([]float64{0, 0}, 2)
		opt.Step([]*tensor.Tensor{p}, []*tensor.Tensor{g})
		return append([]float64(nil), p.Data...)
	}
	for _, mk := range []func() Optimizer{
		func() Optimizer { return NewMomentum(0.1, 0.9) },
		func() Optimizer { return NewAdam(0.01) },
		func() Optimizer { return NewRMSProp(0.01) },
	} {
		used := mk()
		fresh := step(mk())
		// Burn some state, then reset.
		burn := tensor.FromSlice([]float64{0, 0}, 2)
		for i := 0; i < 5; i++ {
			used.Step([]*tensor.Tensor{burn}, []*tensor.Tensor{g})
		}
		used.Reset()
		after := step(used)
		for i := range fresh {
			if math.Abs(fresh[i]-after[i]) > 1e-15 {
				t.Fatalf("%s: reset state differs: %v vs %v", used.Name(), after, fresh)
			}
		}
	}
}

func TestOptimizerLengthMismatchPanics(t *testing.T) {
	for _, opt := range []Optimizer{NewSGD(0.1), NewAdam(0.01), NewRMSProp(0.01)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s accepted mismatched params/grads", opt.Name())
				}
			}()
			opt.Step([]*tensor.Tensor{tensor.New(2)}, nil)
		}()
	}
}
