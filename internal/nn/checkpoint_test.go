package nn

import (
	"math"
	"strings"
	"testing"

	"repro/internal/lowp"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// ckptData builds a small deterministic classification problem.
func ckptData(seed uint64) (*tensor.Tensor, *tensor.Tensor) {
	r := rng.New(seed)
	x := tensor.New(64, 6)
	x.FillRandNorm(r, 1)
	labels := make([]int, 64)
	for i := range labels {
		labels[i] = r.Intn(3)
	}
	return x, OneHot(labels, 3)
}

// ckptNet builds the model under test; withDropout adds a stochastic layer
// so resume must also restore a layer-owned RNG cursor.
func ckptNet(seed uint64, withDropout bool) *Net {
	r := rng.New(seed)
	layers := []Layer{NewDense(6, 12, r.Split("d1")), NewActivation(Tanh)}
	if withDropout {
		layers = append(layers, NewDropout(0.25, r.Split("drop")))
	}
	layers = append(layers, NewDense(12, 3, r.Split("d2")))
	return NewNet(layers...)
}

// ckptConfig returns a fresh config whose RNG/optimizer are independent per
// call, so interrupted and uninterrupted runs do not share mutable state.
func ckptConfig(newOpt func() Optimizer, epochs int) TrainConfig {
	return TrainConfig{
		Loss: SoftmaxCELoss{}, Optimizer: newOpt(),
		BatchSize: 16, Epochs: epochs,
		Shuffle: true, RNG: rng.New(99),
	}
}

func paramsEqual(t *testing.T, a, b *Net, context string) {
	t.Helper()
	pa, pb := a.Params(), b.Params()
	if len(pa) != len(pb) {
		t.Fatalf("%s: param count %d vs %d", context, len(pa), len(pb))
	}
	for i := range pa {
		for j := range pa[i].Data {
			if pa[i].Data[j] != pb[i].Data[j] {
				t.Fatalf("%s: param %d elem %d differ: %v vs %v",
					context, i, j, pa[i].Data[j], pb[i].Data[j])
			}
		}
	}
}

// Checkpoint-resume at every epoch boundary reproduces the uninterrupted
// run's final loss and weights bit-for-bit — the headline chaos property.
func TestResumeBitwiseAtEveryEpochBoundary(t *testing.T) {
	const epochs = 6
	x, y := ckptData(1)
	for _, opt := range []struct {
		name string
		mk   func() Optimizer
	}{
		{"adam", func() Optimizer { return NewAdam(0.01) }},
		{"momentum", func() Optimizer { return NewMomentum(0.05, 0.9) }},
		{"rmsprop", func() Optimizer { return NewRMSProp(0.005) }},
	} {
		t.Run(opt.name, func(t *testing.T) {
			// Uninterrupted reference, checkpointing every epoch.
			refNet := ckptNet(7, false)
			blobs := map[int][]byte{}
			cfg := ckptConfig(opt.mk, epochs)
			cfg.CheckpointEvery = 1
			cfg.Checkpoint = func(epoch int, state []byte) error {
				blobs[epoch] = state
				return nil
			}
			refRes, err := Train(refNet, x, y, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(blobs) != epochs {
				t.Fatalf("expected %d checkpoints, got %d", epochs, len(blobs))
			}

			for at := 1; at < epochs; at++ {
				resNet := ckptNet(7, false)
				rcfg := ckptConfig(opt.mk, epochs)
				rcfg.Resume = blobs[at]
				resRes, err := Train(resNet, x, y, rcfg)
				if err != nil {
					t.Fatalf("resume at epoch %d: %v", at, err)
				}
				if resRes.FinalLoss != refRes.FinalLoss {
					t.Fatalf("resume at %d: final loss %v != reference %v",
						at, resRes.FinalLoss, refRes.FinalLoss)
				}
				if len(resRes.EpochLoss) != len(refRes.EpochLoss) {
					t.Fatalf("resume at %d: %d epoch losses vs %d",
						at, len(resRes.EpochLoss), len(refRes.EpochLoss))
				}
				for e := range refRes.EpochLoss {
					if resRes.EpochLoss[e] != refRes.EpochLoss[e] {
						t.Fatalf("resume at %d: epoch %d loss %v != %v",
							at, e, resRes.EpochLoss[e], refRes.EpochLoss[e])
					}
				}
				if resRes.Steps != refRes.Steps {
					t.Fatalf("resume at %d: steps %d != %d", at, resRes.Steps, refRes.Steps)
				}
				paramsEqual(t, resNet, refNet, "resume weights")
			}
		})
	}
}

// Resume must also restore layer-owned RNG cursors (dropout masks) and the
// dynamic loss-scaler state.
func TestResumeBitwiseWithDropoutAndLossScale(t *testing.T) {
	const epochs = 4
	x, y := ckptData(2)
	run := func(resume []byte, every int, sink func(int, []byte) error) (*TrainResult, *Net) {
		net := ckptNet(11, true)
		cfg := ckptConfig(func() Optimizer { return NewAdam(0.01) }, epochs)
		cfg.Precision = lowp.FP16
		cfg.LossScale = true
		cfg.CheckpointEvery = every
		cfg.Checkpoint = sink
		cfg.Resume = resume
		res, err := Train(net, x, y, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res, net
	}
	blobs := map[int][]byte{}
	refRes, refNet := run(nil, 2, func(e int, b []byte) error { blobs[e] = b; return nil })
	resRes, resNet := run(blobs[2], 0, nil)
	if resRes.FinalLoss != refRes.FinalLoss {
		t.Fatalf("final loss %v != %v", resRes.FinalLoss, refRes.FinalLoss)
	}
	if resRes.SkippedSteps != refRes.SkippedSteps {
		t.Fatalf("skipped steps %d != %d", resRes.SkippedSteps, refRes.SkippedSteps)
	}
	paramsEqual(t, resNet, refNet, "dropout+scaler resume")
}

// Marshal → unmarshal → one more step equals the reference that never
// serialised — the state round-trip is exact.
func TestTrainStateRoundTripOneMoreStep(t *testing.T) {
	x, y := ckptData(3)
	net := ckptNet(5, false)
	opt := NewAdam(0.02)
	cfg := TrainConfig{Loss: SoftmaxCELoss{}, Optimizer: opt,
		BatchSize: 16, Epochs: 2, Shuffle: true, RNG: rng.New(4)}
	if _, err := Train(net, x, y, cfg); err != nil {
		t.Fatal(err)
	}

	st, err := captureTrainState(net, cfg, nil, &TrainResult{}, 1, rng.New(1).Perm(x.Dim(0)))
	if err != nil {
		t.Fatal(err)
	}
	blob, err := st.Encode()
	if err != nil {
		t.Fatal(err)
	}
	st2, err := DecodeTrainState(blob)
	if err != nil {
		t.Fatal(err)
	}

	// Reference: one more step on the live objects.
	bx := x.SliceRows(0, 16)
	by := y.SliceRows(0, 16)
	refNet := net.Clone()
	refOpt := NewAdam(0.02)
	if err := refOpt.UnmarshalState(st.OptState); err != nil {
		t.Fatal(err)
	}
	TrainStep(refNet, bx, by, TrainConfig{Loss: SoftmaxCELoss{}, Optimizer: refOpt}, nil, nil)

	// Restored: same step from the decoded blob.
	resNet := ckptNet(5, false)
	resOpt := NewAdam(0.02)
	resCfg := TrainConfig{Loss: SoftmaxCELoss{}, Optimizer: resOpt, RNG: rng.New(4)}
	order := make([]int, x.Dim(0))
	if _, err := restoreTrainState(st2, resNet, resCfg, nil, &TrainResult{}, order); err != nil {
		t.Fatal(err)
	}
	TrainStep(resNet, bx, by, TrainConfig{Loss: SoftmaxCELoss{}, Optimizer: resOpt}, nil, nil)
	paramsEqual(t, resNet, refNet, "one more step after round trip")
}

func TestDecodeTrainStateRejectsBadBlobs(t *testing.T) {
	x, y := ckptData(4)
	net := ckptNet(6, false)
	var blob []byte
	cfg := ckptConfig(func() Optimizer { return NewAdam(0.01) }, 2)
	cfg.CheckpointEvery = 2
	cfg.Checkpoint = func(e int, b []byte) error { blob = b; return nil }
	if _, err := Train(net, x, y, cfg); err != nil {
		t.Fatal(err)
	}
	if blob == nil {
		t.Fatal("no checkpoint captured")
	}

	if _, err := DecodeTrainState(blob); err != nil {
		t.Fatalf("pristine blob rejected: %v", err)
	}
	cases := map[string][]byte{
		"empty":     {},
		"short":     blob[:4],
		"bad magic": append([]byte("NOPE"), blob[4:]...),
		"truncated": blob[:len(blob)-7],
	}
	corrupt := append([]byte(nil), blob...)
	corrupt[len(corrupt)/2] ^= 0x40
	cases["corrupted"] = corrupt
	for name, b := range cases {
		if _, err := DecodeTrainState(b); err == nil {
			t.Fatalf("%s blob accepted", name)
		}
	}

	// Resuming from a rejected blob fails Train up front.
	bad := ckptConfig(func() Optimizer { return NewAdam(0.01) }, 2)
	bad.Resume = corrupt
	if _, err := Train(ckptNet(6, false), x, y, bad); err == nil {
		t.Fatal("Train accepted corrupted resume blob")
	}
}

func TestResumeValidation(t *testing.T) {
	x, y := ckptData(5)
	var blob []byte
	cfg := ckptConfig(func() Optimizer { return NewAdam(0.01) }, 2)
	cfg.CheckpointEvery = 1
	cfg.Checkpoint = func(e int, b []byte) error {
		if blob == nil {
			blob = b
		}
		return nil
	}
	if _, err := Train(ckptNet(8, false), x, y, cfg); err != nil {
		t.Fatal(err)
	}

	// Wrong optimizer.
	wrongOpt := ckptConfig(func() Optimizer { return NewSGD(0.01) }, 2)
	wrongOpt.Resume = blob
	if _, err := Train(ckptNet(8, false), x, y, wrongOpt); err == nil ||
		!strings.Contains(err.Error(), "optimizer") {
		t.Fatalf("optimizer mismatch not caught: %v", err)
	}

	// Wrong architecture.
	wrongNet := NewNet(NewDense(6, 3, rng.New(1)))
	archCfg := ckptConfig(func() Optimizer { return NewAdam(0.01) }, 2)
	archCfg.Resume = blob
	if _, err := Train(wrongNet, x, y, archCfg); err == nil {
		t.Fatal("architecture mismatch not caught")
	}

	// Checkpointing without a sink is a config error.
	noSink := ckptConfig(func() Optimizer { return NewAdam(0.01) }, 2)
	noSink.CheckpointEvery = 1
	if _, err := Train(ckptNet(8, false), x, y, noSink); err == nil {
		t.Fatal("CheckpointEvery without Checkpoint accepted")
	}
}

// A state whose Epoch already covers cfg.Epochs trains zero further epochs
// and reports the restored history.
func TestResumeAtFinalEpochIsNoop(t *testing.T) {
	x, y := ckptData(6)
	blobs := map[int][]byte{}
	cfg := ckptConfig(func() Optimizer { return NewAdam(0.01) }, 3)
	cfg.CheckpointEvery = 3
	cfg.Checkpoint = func(e int, b []byte) error { blobs[e] = b; return nil }
	refNet := ckptNet(9, false)
	refRes, err := Train(refNet, x, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	resCfg := ckptConfig(func() Optimizer { return NewAdam(0.01) }, 3)
	resCfg.Resume = blobs[3]
	resNet := ckptNet(9, false)
	resRes, err := Train(resNet, x, y, resCfg)
	if err != nil {
		t.Fatal(err)
	}
	if resRes.FinalLoss != refRes.FinalLoss || resRes.Steps != refRes.Steps {
		t.Fatalf("noop resume diverged: %+v vs %+v", resRes, refRes)
	}
	paramsEqual(t, resNet, refNet, "noop resume")
	if math.IsNaN(resRes.FinalLoss) {
		t.Fatal("restored final loss is NaN")
	}
}
