package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// BatchNorm normalises each feature over the batch dimension, then applies
// a learned affine transform (gamma, beta). During training it uses batch
// statistics and maintains exponential running averages; at inference it
// uses the running statistics.
type BatchNorm struct {
	Dim      int
	Momentum float64
	Eps      float64

	Gamma, Beta     *tensor.Tensor
	dGamma, dBeta   *tensor.Tensor
	RunMean, RunVar *tensor.Tensor

	// forward caches
	xhat *tensor.Tensor
	std  []float64
}

// NewBatchNorm creates a batch-norm layer over dim features.
func NewBatchNorm(dim int) *BatchNorm {
	bn := &BatchNorm{Dim: dim, Momentum: 0.9, Eps: 1e-5,
		Gamma: tensor.New(dim), Beta: tensor.New(dim),
		dGamma: tensor.New(dim), dBeta: tensor.New(dim),
		RunMean: tensor.New(dim), RunVar: tensor.New(dim)}
	bn.Gamma.Fill(1)
	bn.RunVar.Fill(1)
	return bn
}

// Name implements Layer.
func (b *BatchNorm) Name() string { return fmt.Sprintf("BatchNorm(%d)", b.Dim) }

// OutDim implements Layer.
func (b *BatchNorm) OutDim(inDim int) int {
	if inDim != b.Dim {
		panic(fmt.Sprintf("nn: %s given input dim %d", b.Name(), inDim))
	}
	return b.Dim
}

// Forward implements Layer.
func (b *BatchNorm) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n := x.Dim(0)
	d := b.Dim
	y := tensor.New(n, d)
	if train && n > 1 {
		mean := make([]float64, d)
		for i := 0; i < n; i++ {
			row := x.Data[i*d : (i+1)*d]
			for j := 0; j < d; j++ {
				mean[j] += row[j]
			}
		}
		for j := range mean {
			mean[j] /= float64(n)
		}
		variance := make([]float64, d)
		for i := 0; i < n; i++ {
			row := x.Data[i*d : (i+1)*d]
			for j := 0; j < d; j++ {
				dv := row[j] - mean[j]
				variance[j] += dv * dv
			}
		}
		for j := range variance {
			variance[j] /= float64(n)
		}
		b.std = make([]float64, d)
		for j := range b.std {
			b.std[j] = math.Sqrt(variance[j] + b.Eps)
		}
		b.xhat = tensor.New(n, d)
		for i := 0; i < n; i++ {
			for j := 0; j < d; j++ {
				c := x.Data[i*d+j] - mean[j]
				xh := c / b.std[j]
				b.xhat.Data[i*d+j] = xh
				y.Data[i*d+j] = b.Gamma.Data[j]*xh + b.Beta.Data[j]
			}
		}
		m := b.Momentum
		for j := 0; j < d; j++ {
			b.RunMean.Data[j] = m*b.RunMean.Data[j] + (1-m)*mean[j]
			b.RunVar.Data[j] = m*b.RunVar.Data[j] + (1-m)*variance[j]
		}
		return y
	}
	// Inference (or degenerate batch): use running statistics.
	b.xhat = nil
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			xh := (x.Data[i*d+j] - b.RunMean.Data[j]) /
				math.Sqrt(b.RunVar.Data[j]+b.Eps)
			y.Data[i*d+j] = b.Gamma.Data[j]*xh + b.Beta.Data[j]
		}
	}
	return y
}

// Backward implements Layer. It must follow a training-mode Forward.
func (b *BatchNorm) Backward(dout *tensor.Tensor) *tensor.Tensor {
	if b.xhat == nil {
		panic("nn: BatchNorm.Backward without training Forward")
	}
	n := dout.Dim(0)
	d := b.Dim
	fn := float64(n)
	dx := tensor.New(n, d)
	// Standard batch-norm backward:
	// dxhat = dout * gamma
	// dx = (1/(n*std)) * (n*dxhat - sum(dxhat) - xhat * sum(dxhat*xhat))
	sumD := make([]float64, d)
	sumDX := make([]float64, d)
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			dxh := dout.Data[i*d+j] * b.Gamma.Data[j]
			sumD[j] += dxh
			sumDX[j] += dxh * b.xhat.Data[i*d+j]
			b.dGamma.Data[j] += dout.Data[i*d+j] * b.xhat.Data[i*d+j]
			b.dBeta.Data[j] += dout.Data[i*d+j]
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			dxh := dout.Data[i*d+j] * b.Gamma.Data[j]
			dx.Data[i*d+j] = (fn*dxh - sumD[j] - b.xhat.Data[i*d+j]*sumDX[j]) /
				(fn * b.std[j])
		}
	}
	return dx
}

// Params implements Layer.
func (b *BatchNorm) Params() []*tensor.Tensor { return []*tensor.Tensor{b.Gamma, b.Beta} }

// Grads implements Layer.
func (b *BatchNorm) Grads() []*tensor.Tensor { return []*tensor.Tensor{b.dGamma, b.dBeta} }

// Clone implements Layer.
func (b *BatchNorm) Clone() Layer {
	return &BatchNorm{Dim: b.Dim, Momentum: b.Momentum, Eps: b.Eps,
		Gamma: b.Gamma.Clone(), Beta: b.Beta.Clone(),
		dGamma: tensor.New(b.Dim), dBeta: tensor.New(b.Dim),
		RunMean: b.RunMean.Clone(), RunVar: b.RunVar.Clone()}
}
