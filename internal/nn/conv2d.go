package nn

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/tensor"
)

// Conv2D is a square-kernel 2-D convolution over (N, C*H*W) inputs,
// producing (N, F*OH*OW), lowered to GEMM via im2col like Conv1D.
// Histology-image tumor classification is the paper's canonical 2-D
// workload shape.
type Conv2D struct {
	Channels, H, W  int
	Filters, Kernel int
	Stride, Pad     int
	Wt, B           *tensor.Tensor // Wt (F, C*K*K), B (F)
	dW, dB          *tensor.Tensor
	oh, ow          int
	cols            []*tensor.Tensor
	f32             *conv2DF32 // non-nil when the float32 compute path is on
}

// NewConv2D creates a 2-D convolution layer with He initialisation.
func NewConv2D(channels, h, w, filters, kernel, stride, pad int, r *rng.Stream) *Conv2D {
	oh, ow := tensor.Conv2DOutDims(h, w, kernel, stride, pad)
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("nn: Conv2D output %dx%d", oh, ow))
	}
	c := &Conv2D{Channels: channels, H: h, W: w, Filters: filters,
		Kernel: kernel, Stride: stride, Pad: pad,
		Wt: tensor.New(filters, channels*kernel*kernel),
		B:  tensor.New(filters),
		dW: tensor.New(filters, channels*kernel*kernel),
		dB: tensor.New(filters),
		oh: oh, ow: ow}
	HeNormal(c.Wt, channels*kernel*kernel, r)
	return c
}

// OutDims returns the spatial output height and width.
func (c *Conv2D) OutDims() (oh, ow int) { return c.oh, c.ow }

// Name implements Layer.
func (c *Conv2D) Name() string {
	return fmt.Sprintf("Conv2D(%dx%dx%d→%d,k=%d,s=%d)", c.Channels, c.H, c.W, c.Filters, c.Kernel, c.Stride)
}

// OutDim implements Layer.
func (c *Conv2D) OutDim(inDim int) int {
	if inDim != c.Channels*c.H*c.W {
		panic(fmt.Sprintf("nn: %s given input dim %d", c.Name(), inDim))
	}
	return c.Filters * c.oh * c.ow
}

// Forward implements Layer.
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n := x.Dim(0)
	if c.f32 != nil {
		return c.forwardF32(x, n)
	}
	y := tensor.New(n, c.Filters*c.oh*c.ow)
	if len(c.cols) < n {
		c.cols = make([]*tensor.Tensor, n)
	}
	kk := c.Channels * c.Kernel * c.Kernel
	out2 := c.oh * c.ow
	tensor.ParallelFor(n, func(lo, hi int) {
		for s := lo; s < hi; s++ {
			if c.cols[s] == nil {
				c.cols[s] = tensor.New(kk, out2)
			}
			col := c.cols[s]
			tensor.Im2Col2D(col, x.Row(s), c.Channels, c.H, c.W, c.Kernel, c.Stride, c.Pad)
			out := y.Row(s).Reshape(c.Filters, out2)
			matMulSerial(out, c.Wt, col)
			for f := 0; f < c.Filters; f++ {
				b := c.B.Data[f]
				row := out.Data[f*out2 : (f+1)*out2]
				for i := range row {
					row[i] += b
				}
			}
		}
	})
	return y
}

// Backward implements Layer.
func (c *Conv2D) Backward(dout *tensor.Tensor) *tensor.Tensor {
	n := dout.Dim(0)
	if c.f32 != nil {
		return c.backwardF32(dout, n)
	}
	dx := tensor.New(n, c.Channels*c.H*c.W)
	kk := c.Channels * c.Kernel * c.Kernel
	out2 := c.oh * c.ow
	type acc struct{ dW, dB *tensor.Tensor }
	accs := make([]*acc, n)
	tensor.ParallelFor(n, func(lo, hi int) {
		a := &acc{dW: tensor.New(c.Filters, kk), dB: tensor.New(c.Filters)}
		accs[lo] = a
		dW := tensor.New(c.Filters, kk)
		dcol := tensor.New(kk, out2)
		for s := lo; s < hi; s++ {
			dy := dout.Row(s).Reshape(c.Filters, out2)
			col := c.cols[s]
			tensor.MatMulTransB(dW, dy, col)
			tensor.AddScaled(a.dW, dW, 1)
			for f := 0; f < c.Filters; f++ {
				sum := 0.0
				row := dy.Data[f*out2 : (f+1)*out2]
				for _, v := range row {
					sum += v
				}
				a.dB.Data[f] += sum
			}
			tensor.MatMulTransA(dcol, c.Wt, dy)
			tensor.Col2Im2D(dx.Row(s), dcol, c.Channels, c.H, c.W, c.Kernel, c.Stride, c.Pad)
		}
	})
	for _, a := range accs {
		if a == nil {
			continue
		}
		tensor.AddScaled(c.dW, a.dW, 1)
		tensor.AddScaled(c.dB, a.dB, 1)
	}
	return dx
}

// Params implements Layer.
func (c *Conv2D) Params() []*tensor.Tensor { return []*tensor.Tensor{c.Wt, c.B} }

// Grads implements Layer.
func (c *Conv2D) Grads() []*tensor.Tensor { return []*tensor.Tensor{c.dW, c.dB} }

// Clone implements Layer.
func (c *Conv2D) Clone() Layer {
	cl := &Conv2D{Channels: c.Channels, H: c.H, W: c.W, Filters: c.Filters,
		Kernel: c.Kernel, Stride: c.Stride, Pad: c.Pad,
		Wt: c.Wt.Clone(), B: c.B.Clone(),
		dW: tensor.New(c.Filters, c.Channels*c.Kernel*c.Kernel),
		dB: tensor.New(c.Filters),
		oh: c.oh, ow: c.ow}
	cl.SetComputeF32(c.f32 != nil) // same compute mode, fresh buffers
	return cl
}

// MaxPool2D max-pools (N, C*H*W) inputs channelwise with a square window.
type MaxPool2D struct {
	Channels, H, W int
	Window, Stride int
	oh, ow         int
	argmax         []int
}

// NewMaxPool2D creates a 2-D max-pool layer. stride 0 means stride = window.
func NewMaxPool2D(channels, h, w, window, stride int) *MaxPool2D {
	if stride == 0 {
		stride = window
	}
	oh := (h-window)/stride + 1
	ow := (w-window)/stride + 1
	if oh <= 0 || ow <= 0 {
		panic("nn: MaxPool2D output empty")
	}
	return &MaxPool2D{Channels: channels, H: h, W: w, Window: window,
		Stride: stride, oh: oh, ow: ow}
}

// OutDims returns the pooled spatial dimensions.
func (p *MaxPool2D) OutDims() (oh, ow int) { return p.oh, p.ow }

// Name implements Layer.
func (p *MaxPool2D) Name() string {
	return fmt.Sprintf("MaxPool2D(w=%d,s=%d)", p.Window, p.Stride)
}

// OutDim implements Layer.
func (p *MaxPool2D) OutDim(inDim int) int {
	if inDim != p.Channels*p.H*p.W {
		panic(fmt.Sprintf("nn: %s given input dim %d", p.Name(), inDim))
	}
	return p.Channels * p.oh * p.ow
}

// Forward implements Layer.
func (p *MaxPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n := x.Dim(0)
	y := tensor.New(n, p.Channels*p.oh*p.ow)
	if cap(p.argmax) < y.Len() {
		p.argmax = make([]int, y.Len())
	}
	p.argmax = p.argmax[:y.Len()]
	chanIn := p.H * p.W
	chanOut := p.oh * p.ow
	for s := 0; s < n; s++ {
		for c := 0; c < p.Channels; c++ {
			inOff := s*p.Channels*chanIn + c*chanIn
			outOff := s*p.Channels*chanOut + c*chanOut
			for oy := 0; oy < p.oh; oy++ {
				for ox := 0; ox < p.ow; ox++ {
					sy, sx := oy*p.Stride, ox*p.Stride
					bestIdx := inOff + sy*p.W + sx
					best := x.Data[bestIdx]
					for ky := 0; ky < p.Window; ky++ {
						for kx := 0; kx < p.Window; kx++ {
							idx := inOff + (sy+ky)*p.W + (sx + kx)
							if x.Data[idx] > best {
								best, bestIdx = x.Data[idx], idx
							}
						}
					}
					oi := outOff + oy*p.ow + ox
					y.Data[oi] = best
					p.argmax[oi] = bestIdx
				}
			}
		}
	}
	return y
}

// Backward implements Layer.
func (p *MaxPool2D) Backward(dout *tensor.Tensor) *tensor.Tensor {
	n := dout.Dim(0)
	dx := tensor.New(n, p.Channels*p.H*p.W)
	for i, v := range dout.Data {
		dx.Data[p.argmax[i]] += v
	}
	return dx
}

// Params implements Layer.
func (p *MaxPool2D) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (p *MaxPool2D) Grads() []*tensor.Tensor { return nil }

// Clone implements Layer.
func (p *MaxPool2D) Clone() Layer {
	return NewMaxPool2D(p.Channels, p.H, p.W, p.Window, p.Stride)
}
