package nn

import "math"

// LRSchedule maps an epoch index to a learning-rate multiplier (1 = base
// rate). Schedules compose with any optimizer exposing a settable LR via
// SetLR.
type LRSchedule interface {
	// Name identifies the schedule for logging.
	Name() string
	// Factor returns the LR multiplier at the given epoch of totalEpochs.
	Factor(epoch, totalEpochs int) float64
}

// ConstantLR keeps the base rate.
type ConstantLR struct{}

// Name implements LRSchedule.
func (ConstantLR) Name() string { return "constant" }

// Factor implements LRSchedule.
func (ConstantLR) Factor(epoch, totalEpochs int) float64 { return 1 }

// StepDecay multiplies the rate by Gamma every StepEpochs epochs.
type StepDecay struct {
	StepEpochs int
	Gamma      float64
}

// Name implements LRSchedule.
func (StepDecay) Name() string { return "step" }

// Factor implements LRSchedule.
func (s StepDecay) Factor(epoch, totalEpochs int) float64 {
	step := s.StepEpochs
	if step <= 0 {
		step = 10
	}
	g := s.Gamma
	if g <= 0 || g >= 1 {
		g = 0.1
	}
	return math.Pow(g, float64(epoch/step))
}

// CosineDecay anneals the rate from 1 to MinFactor over the run.
type CosineDecay struct {
	MinFactor float64
}

// Name implements LRSchedule.
func (CosineDecay) Name() string { return "cosine" }

// Factor implements LRSchedule.
func (c CosineDecay) Factor(epoch, totalEpochs int) float64 {
	if totalEpochs <= 1 {
		return 1
	}
	frac := float64(epoch) / float64(totalEpochs-1)
	return c.MinFactor + (1-c.MinFactor)*0.5*(1+math.Cos(math.Pi*frac))
}

// WarmupCosine ramps linearly for WarmupEpochs then cosine-anneals —
// the standard recipe for the very large batches data parallelism forces
// (goyal-style warmup compensates for the sharp early gradient scale).
type WarmupCosine struct {
	WarmupEpochs int
	MinFactor    float64
}

// Name implements LRSchedule.
func (WarmupCosine) Name() string { return "warmup-cosine" }

// Factor implements LRSchedule.
func (w WarmupCosine) Factor(epoch, totalEpochs int) float64 {
	if w.WarmupEpochs > 0 && epoch < w.WarmupEpochs {
		return float64(epoch+1) / float64(w.WarmupEpochs)
	}
	rest := totalEpochs - w.WarmupEpochs
	if rest <= 1 {
		return 1
	}
	frac := float64(epoch-w.WarmupEpochs) / float64(rest-1)
	return w.MinFactor + (1-w.MinFactor)*0.5*(1+math.Cos(math.Pi*frac))
}

// SetLR adjusts an optimizer's learning rate if its concrete type supports
// it, returning whether it did.
func SetLR(opt Optimizer, lr float64) bool {
	switch o := opt.(type) {
	case *SGD:
		o.LR = lr
	case *Adam:
		o.LR = lr
	case *RMSProp:
		o.LR = lr
	default:
		return false
	}
	return true
}

// BaseLR reads an optimizer's current learning rate (NaN if unsupported).
func BaseLR(opt Optimizer) float64 {
	switch o := opt.(type) {
	case *SGD:
		return o.LR
	case *Adam:
		return o.LR
	case *RMSProp:
		return o.LR
	}
	return math.NaN()
}

// EarlyStopper tracks validation loss and signals when to stop: after
// Patience consecutive epochs without an improvement of at least MinDelta.
// The zero value uses Patience 5 and MinDelta 0.
type EarlyStopper struct {
	Patience int
	MinDelta float64
	best     float64
	bad      int
	started  bool
}

// Observe records one validation loss and returns true when training should
// stop.
func (e *EarlyStopper) Observe(loss float64) bool {
	patience := e.Patience
	if patience <= 0 {
		patience = 5
	}
	if !e.started || loss < e.best-e.MinDelta {
		e.best = loss
		e.bad = 0
		e.started = true
		return false
	}
	e.bad++
	return e.bad >= patience
}

// Best returns the best loss seen (+Inf before any observation).
func (e *EarlyStopper) Best() float64 {
	if !e.started {
		return math.Inf(1)
	}
	return e.best
}
