package nn

import (
	"fmt"
	"math"
	"time"

	"repro/internal/lowp"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// BatchIterator streams training batches from an external data plane (the
// sharded streaming loader in internal/data implements it). Reset(epoch)
// must make the following Next sequence a pure function of the iterator's
// own seed and the epoch number, so a run resumed at an epoch boundary
// replays the identical batch stream.
type BatchIterator interface {
	// Reset rewinds the iterator to the first batch of the given epoch.
	Reset(epoch int)
	// Next returns the next batch, or ok=false when the epoch is exhausted.
	Next() (x, y *tensor.Tensor, ok bool)
}

// TrainConfig controls the single-process training loop.
type TrainConfig struct {
	Loss      Loss
	Optimizer Optimizer
	BatchSize int
	Epochs    int
	// Data, if non-nil, streams batches from an external iterator instead of
	// the in-memory (x, y) path; pass nil tensors to Train, and leave
	// Shuffle unset (the iterator orders its own samples). BatchSize is
	// likewise the iterator's concern.
	Data BatchIterator
	// Precision selects the emulated storage precision for weights,
	// gradients, and activations at the loss boundary. FP64 (the zero
	// value) disables emulation.
	Precision lowp.Precision
	// LossScale enables dynamic loss scaling (meaningful for FP16).
	LossScale bool
	// ComputeF32 runs the GEMM-heavy layers (Dense, Conv2D) on the float32
	// kernel backend pinned in internal/tensor, keeping float64 master
	// weights and optimizer state — mixed-precision compute, as opposed to
	// Precision, which emulates reduced STORAGE by rounding at tensor
	// boundaries. The two compose.
	ComputeF32 bool
	// ClipNorm, when > 0, clips the global gradient norm per step.
	ClipNorm float64
	// Shuffle reshuffles the sample order each epoch using RNG.
	Shuffle bool
	// RNG supplies shuffling randomness; required when Shuffle is set.
	RNG *rng.Stream
	// Schedule, if non-nil, scales the optimizer's learning rate per epoch
	// (requires an optimizer with a settable rate: SGD, Adam, RMSProp).
	Schedule LRSchedule
	// OnEpoch, if non-nil, is called after each epoch with the epoch
	// index and mean training loss; returning false stops early.
	OnEpoch func(epoch int, loss float64) bool
	// CheckpointEvery, when > 0, captures the full training state every
	// that many epochs and hands the encoded blob to Checkpoint.
	CheckpointEvery int
	// Checkpoint receives each periodic state blob; returning an error
	// aborts training (a checkpoint that cannot be persisted is a failure,
	// not a warning). Required when CheckpointEvery > 0.
	Checkpoint func(epoch int, state []byte) error
	// Resume, if non-nil, is a state blob from a previous run's Checkpoint;
	// training restores it and continues at the recorded epoch, bitwise
	// identical to the run that was interrupted.
	Resume []byte
	// Obs, if non-nil and enabled, receives step/epoch hooks and
	// forward/backward/optimizer spans (tid 0). A nil session is fully
	// disabled and costs one atomic check per instrumentation point.
	Obs *obs.Session
}

// TrainResult summarises a training run.
type TrainResult struct {
	EpochLoss    []float64 // mean training loss per epoch
	Steps        int       // optimizer steps applied
	SkippedSteps int       // steps skipped by the loss scaler
	FinalLoss    float64
}

// Train runs mini-batch gradient descent and returns per-epoch statistics.
// With the in-memory path, x and y are rank-2 with matching sample counts;
// with cfg.Data set, batches stream from the iterator and x, y must be nil.
func Train(net *Net, x, y *tensor.Tensor, cfg TrainConfig) (*TrainResult, error) {
	n := 0
	if cfg.Data != nil {
		if x != nil || y != nil {
			return nil, fmt.Errorf("nn: Data and in-memory (x, y) are mutually exclusive")
		}
		if cfg.Shuffle {
			return nil, fmt.Errorf("nn: Shuffle is the in-memory path's; Data orders its own samples")
		}
	} else {
		n = x.Dim(0)
		if y.Dim(0) != n {
			return nil, fmt.Errorf("nn: %d inputs but %d targets", n, y.Dim(0))
		}
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 32
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 1
	}
	if cfg.Loss == nil || cfg.Optimizer == nil {
		return nil, fmt.Errorf("nn: TrainConfig requires Loss and Optimizer")
	}
	if cfg.Shuffle && cfg.RNG == nil {
		return nil, fmt.Errorf("nn: Shuffle requires RNG")
	}
	if cfg.CheckpointEvery > 0 && cfg.Checkpoint == nil {
		return nil, fmt.Errorf("nn: CheckpointEvery requires a Checkpoint func")
	}

	if cfg.ComputeF32 {
		net.SetComputeF32(true)
	}
	var scaler *lowp.LossScaler
	if cfg.LossScale {
		scaler = lowp.NewLossScaler()
	}
	res := &TrainResult{}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	startEpoch := 0
	if cfg.Resume != nil {
		st, err := DecodeTrainState(cfg.Resume)
		if err != nil {
			return nil, err
		}
		startEpoch, err = restoreTrainState(st, net, cfg, scaler, res, order)
		if err != nil {
			return nil, err
		}
	}
	var xb, yb *tensor.Tensor
	if cfg.Data == nil {
		xb = tensor.New(cfg.BatchSize, x.Len()/n)
		yb = tensor.New(cfg.BatchSize, y.Len()/n)
	}

	baseLR := BaseLR(cfg.Optimizer)
	instr := cfg.Obs.Enabled()
	for epoch := startEpoch; epoch < cfg.Epochs; epoch++ {
		if cfg.Schedule != nil && !math.IsNaN(baseLR) {
			SetLR(cfg.Optimizer, baseLR*cfg.Schedule.Factor(epoch, cfg.Epochs))
		}
		if cfg.Shuffle {
			cfg.RNG.ShuffleInts(order)
		}
		var epochStart time.Time
		var epochSpan *obs.Span
		if instr {
			epochStart = time.Now()
			epochSpan = cfg.Obs.Span(0, "epoch")
			epochSpan.SetArg("epoch", epoch)
		}
		epochLoss := 0.0
		batches := 0
		if cfg.Data != nil {
			cfg.Data.Reset(epoch)
			for {
				bx, by, ok := cfg.Data.Next()
				if !ok {
					break
				}
				epochLoss += TrainStep(net, bx, by, cfg, scaler, res)
				batches++
			}
		} else {
			for start := 0; start < n; start += cfg.BatchSize {
				end := start + cfg.BatchSize
				if end > n {
					end = n
				}
				bx, by := gatherBatch(xb, yb, x, y, order[start:end])
				epochLoss += TrainStep(net, bx, by, cfg, scaler, res)
				batches++
			}
		}
		if batches > 0 {
			epochLoss /= float64(batches)
		}
		res.EpochLoss = append(res.EpochLoss, epochLoss)
		if instr {
			epochSpan.End()
			cfg.Obs.OnEpoch(epoch, epochLoss, time.Since(epochStart))
		}
		if cfg.CheckpointEvery > 0 && (epoch+1)%cfg.CheckpointEvery == 0 {
			st, err := captureTrainState(net, cfg, scaler, res, epoch, order)
			if err != nil {
				return nil, err
			}
			blob, err := st.Encode()
			if err != nil {
				return nil, err
			}
			cfg.Obs.Count("train.checkpoints", 1)
			if err := cfg.Checkpoint(epoch+1, blob); err != nil {
				return nil, fmt.Errorf("nn: checkpoint at epoch %d: %w", epoch+1, err)
			}
		}
		if cfg.OnEpoch != nil && !cfg.OnEpoch(epoch, epochLoss) {
			break
		}
	}
	if len(res.EpochLoss) > 0 {
		res.FinalLoss = res.EpochLoss[len(res.EpochLoss)-1]
	}
	return res, nil
}

// gatherBatch copies the selected rows of x and y into the batch buffers,
// returning views sized to the actual batch.
func gatherBatch(xb, yb, x, y *tensor.Tensor, idx []int) (*tensor.Tensor, *tensor.Tensor) {
	bx := xb.SliceRows(0, len(idx))
	by := yb.SliceRows(0, len(idx))
	for i, s := range idx {
		copy(bx.Row(i).Data, x.Row(s).Data)
		copy(by.Row(i).Data, y.Row(s).Data)
	}
	return bx, by
}

// TrainStep performs one forward/backward/update cycle on a batch and
// returns the (unscaled) batch loss. scaler and res may be nil.
func TrainStep(net *Net, bx, by *tensor.Tensor, cfg TrainConfig, scaler *lowp.LossScaler, res *TrainResult) float64 {
	// One atomic check gates all instrumentation in this step; when off, the
	// only cost below is predicted-false branches.
	o := cfg.Obs
	instr := o.Enabled()
	var stepStart time.Time
	var sp *obs.Span
	if instr {
		stepStart = time.Now()
		sp = o.Span(0, "forward")
	}
	net.ZeroGrads()
	out := net.Forward(bx, true)
	if cfg.Precision != lowp.FP64 {
		lowp.RoundTensor(out, cfg.Precision)
	}
	loss := cfg.Loss.Loss(out, by)
	if instr {
		sp.End()
		sp = o.Span(0, "backward")
	}
	dout := tensor.New(out.Shape()...)
	cfg.Loss.Grad(dout, out, by)
	if scaler != nil {
		tensor.Scale(dout, dout, scaler.Scale)
	}
	if cfg.Precision != lowp.FP64 {
		lowp.RoundTensor(dout, cfg.Precision)
	}
	net.Backward(dout)
	if instr {
		sp.End()
	}

	grads := net.Grads()
	if cfg.Precision != lowp.FP64 {
		for _, g := range grads {
			lowp.RoundTensor(g, cfg.Precision)
		}
	}
	if scaler != nil {
		// Unscale, then decide whether to apply.
		inv := 1 / scaler.Scale
		for _, g := range grads {
			tensor.Scale(g, g, inv)
		}
		if !scaler.Update(grads) {
			if res != nil {
				res.SkippedSteps++
			}
			o.Count("train.skipped", 1)
			return loss
		}
	} else if hasNonFinite(grads) {
		// Without a scaler a poisoned step is dropped to keep training alive;
		// this mirrors frameworks' skip-on-overflow behaviour.
		if res != nil {
			res.SkippedSteps++
		}
		o.Count("train.skipped", 1)
		return loss
	}
	if instr {
		sp = o.Span(0, "optimizer")
	}
	if cfg.ClipNorm > 0 {
		clipGlobalNorm(grads, cfg.ClipNorm)
	}
	cfg.Optimizer.Step(net.Params(), grads)
	if cfg.Precision != lowp.FP64 {
		for _, p := range net.Params() {
			lowp.RoundTensor(p, cfg.Precision)
		}
	}
	if res != nil {
		res.Steps++
	}
	if instr {
		sp.End()
		step := 0
		if res != nil {
			step = res.Steps
		}
		o.OnStep(step, loss, time.Since(stepStart))
	}
	return loss
}

func hasNonFinite(grads []*tensor.Tensor) bool {
	for _, g := range grads {
		for _, v := range g.Data {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
	}
	return false
}

// clipGlobalNorm rescales all gradients together so their joint Euclidean
// norm does not exceed maxNorm.
func clipGlobalNorm(grads []*tensor.Tensor, maxNorm float64) {
	total := 0.0
	for _, g := range grads {
		for _, v := range g.Data {
			total += v * v
		}
	}
	norm := math.Sqrt(total)
	if norm <= maxNorm || norm == 0 {
		return
	}
	s := maxNorm / norm
	for _, g := range grads {
		tensor.Scale(g, g, s)
	}
}

// EvaluateClassifier returns accuracy of net on (x, labels).
func EvaluateClassifier(net *Net, x *tensor.Tensor, labels []int) float64 {
	pred := net.PredictClasses(x)
	hit := 0
	for i := range pred {
		if pred[i] == labels[i] {
			hit++
		}
	}
	if len(pred) == 0 {
		return math.NaN()
	}
	return float64(hit) / float64(len(pred))
}

// EvaluateRegression returns the MSE of net's predictions against y.
func EvaluateRegression(net *Net, x, y *tensor.Tensor) float64 {
	out := net.Forward(x, false)
	return MSELoss{}.Loss(out, y)
}
