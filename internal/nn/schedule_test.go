package nn

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/tensor"
)

func TestStepDecayFactors(t *testing.T) {
	s := StepDecay{StepEpochs: 5, Gamma: 0.5}
	if s.Factor(0, 20) != 1 || s.Factor(4, 20) != 1 {
		t.Fatal("pre-step factor wrong")
	}
	if s.Factor(5, 20) != 0.5 || s.Factor(10, 20) != 0.25 {
		t.Fatal("decayed factor wrong")
	}
}

func TestCosineDecayEndpoints(t *testing.T) {
	c := CosineDecay{MinFactor: 0.1}
	if f := c.Factor(0, 10); math.Abs(f-1) > 1e-12 {
		t.Fatalf("start factor %v", f)
	}
	if f := c.Factor(9, 10); math.Abs(f-0.1) > 1e-12 {
		t.Fatalf("end factor %v", f)
	}
	// Monotone decreasing.
	prev := 2.0
	for e := 0; e < 10; e++ {
		f := c.Factor(e, 10)
		if f > prev {
			t.Fatal("cosine not monotone")
		}
		prev = f
	}
}

func TestWarmupCosine(t *testing.T) {
	w := WarmupCosine{WarmupEpochs: 4, MinFactor: 0}
	if f := w.Factor(0, 20); math.Abs(f-0.25) > 1e-12 {
		t.Fatalf("warmup start %v", f)
	}
	if f := w.Factor(3, 20); math.Abs(f-1) > 1e-12 {
		t.Fatalf("warmup end %v", f)
	}
	if f := w.Factor(19, 20); f > 1e-9 {
		t.Fatalf("final factor %v", f)
	}
}

func TestSetAndBaseLR(t *testing.T) {
	for _, opt := range []Optimizer{NewSGD(0.1), NewAdam(0.01), NewRMSProp(0.005)} {
		base := BaseLR(opt)
		if math.IsNaN(base) {
			t.Fatalf("%s has no readable LR", opt.Name())
		}
		if !SetLR(opt, base*0.5) {
			t.Fatalf("%s LR not settable", opt.Name())
		}
		if BaseLR(opt) != base*0.5 {
			t.Fatalf("%s LR not updated", opt.Name())
		}
	}
}

func TestScheduledTrainingChangesLR(t *testing.T) {
	r := rng.New(71)
	x := tensor.New(40, 4)
	x.FillRandNorm(r, 1)
	y := tensor.New(40, 1)
	y.FillRandNorm(r, 1)
	net := MLP(4, []int{8}, 1, Tanh, r.Split("i"))
	opt := NewAdam(0.01)
	var lastLR float64
	_, err := Train(net, x, y, TrainConfig{
		Loss: MSELoss{}, Optimizer: opt, BatchSize: 20, Epochs: 10,
		Schedule: CosineDecay{MinFactor: 0.01},
		OnEpoch: func(epoch int, loss float64) bool {
			lastLR = BaseLR(opt)
			return true
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if lastLR >= 0.01*0.5 {
		t.Fatalf("final LR %v not annealed", lastLR)
	}
}

func TestEarlyStopper(t *testing.T) {
	e := EarlyStopper{Patience: 3}
	losses := []float64{1.0, 0.8, 0.7, 0.71, 0.72, 0.73}
	stops := make([]bool, len(losses))
	for i, l := range losses {
		stops[i] = e.Observe(l)
	}
	for i := 0; i < 5; i++ {
		if stops[i] {
			t.Fatalf("stopped too early at %d", i)
		}
	}
	if !stops[5] {
		t.Fatal("did not stop after patience exhausted")
	}
	if e.Best() != 0.7 {
		t.Fatalf("best %v", e.Best())
	}
}

func TestEarlyStopperMinDelta(t *testing.T) {
	e := EarlyStopper{Patience: 2, MinDelta: 0.1}
	// Improvements smaller than MinDelta do not reset patience.
	if e.Observe(1.0) {
		t.Fatal("stopped on first observation")
	}
	if e.Observe(0.95) {
		t.Fatal("stopped after one bad epoch")
	}
	if !e.Observe(0.93) {
		t.Fatal("tiny improvements should exhaust patience")
	}
}

func TestEarlyStopperZeroValue(t *testing.T) {
	var e EarlyStopper
	if !math.IsInf(e.Best(), 1) {
		t.Fatal("zero-value Best not +Inf")
	}
	for i := 0; i < 4; i++ {
		if e.Observe(1.0 - float64(i)*0.1) {
			t.Fatal("stopped while improving")
		}
	}
}

func TestLayerNormGradCheck(t *testing.T) {
	r := rng.New(81)
	net := NewNet(NewDense(4, 6, r), NewLayerNorm(6), NewActivation(Tanh), NewDense(6, 2, r))
	x := tensor.New(5, 4)
	x.FillRandNorm(r, 1)
	y := tensor.New(5, 2)
	y.FillRandNorm(r, 1)
	checkLayerGrads(t, net, MSELoss{}, x, y, 1e-4)
}

func TestLayerNormNormalisesPerSample(t *testing.T) {
	ln := NewLayerNorm(8)
	r := rng.New(82)
	x := tensor.New(3, 8)
	for i := 0; i < 3; i++ {
		for j := 0; j < 8; j++ {
			x.Set(r.NormMeanStd(float64(i*5), float64(i+1)), i, j)
		}
	}
	y := ln.Forward(x, true)
	for i := 0; i < 3; i++ {
		mean, sq := 0.0, 0.0
		for j := 0; j < 8; j++ {
			mean += y.At(i, j)
		}
		mean /= 8
		for j := 0; j < 8; j++ {
			d := y.At(i, j) - mean
			sq += d * d
		}
		std := math.Sqrt(sq / 8)
		if math.Abs(mean) > 1e-9 || math.Abs(std-1) > 1e-3 {
			t.Fatalf("sample %d mean=%v std=%v", i, mean, std)
		}
	}
}

func TestLayerNormBatchIndependence(t *testing.T) {
	// A sample's output must not depend on what else is in the batch —
	// the property that makes LayerNorm safe for tiny per-rank batches.
	ln := NewLayerNorm(4)
	r := rng.New(83)
	a := tensor.New(1, 4)
	a.FillRandNorm(r, 1)
	solo := ln.Forward(a, true).Clone()

	batch := tensor.New(3, 4)
	copy(batch.Row(0).Data, a.Data)
	batch.Row(1).FillRandNorm(r, 5)
	batch.Row(2).FillRandNorm(r, 9)
	joint := ln.Forward(batch, true)
	for j := 0; j < 4; j++ {
		if math.Abs(solo.At(0, j)-joint.At(0, j)) > 1e-12 {
			t.Fatal("LayerNorm output depends on batch composition")
		}
	}
}
