package lowp

import (
	"math"
	"testing"
)

// FuzzCompressRoundTrip drives every compressor with fuzzer-chosen buckets
// and checks the error-feedback invariants that the trainer's correctness
// rests on:
//
//  1. Mass conservation: decoded + residual == grad + previous residual,
//     within 1 ulp per kept entry (the residual is computed by exact
//     subtraction, so in practice this holds bit-for-bit — the ulp budget
//     only covers the decoded+residual re-addition done here).
//  2. Top-k with k >= len degenerates to the identity (zero residual,
//     exact decode).
//  3. Wire length always matches WireLen (value-independent).
func FuzzCompressRoundTrip(f *testing.F) {
	f.Add(uint8(1), uint8(8), int64(1), 0.25, 1.0)
	f.Add(uint8(2), uint8(1), int64(2), 0.5, -3.5)
	f.Add(uint8(1), uint8(17), int64(3), 1.0, 0.0)
	f.Add(uint8(2), uint8(32), int64(4), 0.01, 1e12)
	f.Add(uint8(0), uint8(5), int64(5), 0.9, -1e-12)
	f.Add(uint8(1), uint8(64), int64(6), 2.0, 42.0)
	f.Fuzz(func(t *testing.T, kindRaw, nRaw uint8, seed int64, ratio, scale float64) {
		kind := CompressKind(int(kindRaw) % 3)
		n := int(nRaw)%96 + 1
		if math.IsNaN(ratio) || math.IsInf(ratio, 0) {
			ratio = 0.5
		}
		ratio = math.Abs(ratio)
		if math.IsNaN(scale) || math.IsInf(scale, 0) || scale == 0 {
			scale = 1
		}
		if math.Abs(scale) > 1e100 || math.Abs(scale) < 1e-100 {
			scale = math.Copysign(1, scale)
		}
		c := NewGradCompressor(kind, ratio)
		// xorshift so the fuzzer's seed fans out into a full bucket.
		x := uint64(seed)*2654435761 + 1
		next := func() float64 {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			return (float64(x%2000000)/1000000 - 1) * scale
		}
		prevRes := make([]float64, n)
		for step := 0; step < 4; step++ {
			grad := make([]float64, n)
			for i := range grad {
				grad[i] = next()
			}
			wire := c.Compress(0, grad)
			if len(wire) != c.WireLen(n) {
				t.Fatalf("kind=%v n=%d: wire len %d want %d", kind, n, len(wire), c.WireLen(n))
			}
			decoded := make([]float64, n)
			c.DecodeAccumulate(wire, decoded)
			res := c.residuals[0]
			for i := 0; i < n; i++ {
				in := grad[i] + prevRes[i]
				out := decoded[i] + res[i]
				tol := math.Abs(in) * 1e-15 * float64(n) // ~1 ulp x K headroom
				if math.Abs(out-in) > tol {
					t.Fatalf("kind=%v n=%d step=%d elem %d: decoded+res=%v want %v (diff %g)",
						kind, n, step, i, out, in, out-in)
				}
			}
			if kind == CompressTopK && ratio >= 1 {
				for i := 0; i < n; i++ {
					if decoded[i] != grad[i]+prevRes[i] || res[i] != 0 {
						t.Fatalf("top-k k>=len must be identity: elem %d decoded %v grad+res %v residual %v",
							i, decoded[i], grad[i]+prevRes[i], res[i])
					}
				}
			}
			copy(prevRes, res)
		}
	})
}
