package lowp

import (
	"fmt"
	"math"
	"sort"
)

// Gradient compression with error feedback (EF-SGD).
//
// Compressing gradients before the allreduce shrinks bytes on the wire, but
// a biased compressor (top-k keeps big entries, int8 rounds small ones away)
// silently discards signal every step. Error feedback fixes the bias: each
// step compresses grad+residual instead of grad, and the part the compressor
// dropped becomes the next step's residual. Nothing is ever lost — only
// delayed — which is why EF-SGD provably matches plain SGD's convergence
// rate while plain compressed SGD can stall.
//
// Wire format: every Compress output is a fixed-length []float64 whose
// length depends only on the bucket length and the compressor settings —
// never on the values — so all ranks produce equal-length payloads for the
// same bucket and the payloads can ride the existing allgather collectives
// (and the CRC-framed faulty transport, which round-trips exact bits via
// math.Float64bits, making the packed-int8 encoding safe).

// CompressKind selects the gradient compressor.
type CompressKind int

// Supported compressors.
const (
	// CompressNone sends raw float64 gradients (identity, no residual).
	CompressNone CompressKind = iota
	// CompressTopK keeps the K largest-magnitude entries per bucket and
	// carries the rest in the error-feedback residual. Wire: [k values,
	// k indices] as float64 — 2K words per bucket.
	CompressTopK
	// CompressInt8 quantises the bucket against a per-bucket symmetric
	// scale, packing 8 int8 lanes per float64 word. Wire: [scale,
	// ceil(n/8) packed words].
	CompressInt8
)

// String names the compressor.
func (k CompressKind) String() string {
	switch k {
	case CompressNone:
		return "none"
	case CompressTopK:
		return "topk"
	case CompressInt8:
		return "int8"
	default:
		return fmt.Sprintf("CompressKind(%d)", int(k))
	}
}

// GradCompressor compresses gradient buckets with per-bucket error-feedback
// residuals. One compressor belongs to one rank; bucket ids key the residual
// store, so call Compress with stable bucket ids across steps. Not safe for
// concurrent use.
type GradCompressor struct {
	Kind CompressKind
	// TopKRatio is the fraction of entries kept by CompressTopK
	// (K = ceil(ratio*n), clamped to [1, n]). Ignored by other kinds.
	TopKRatio float64

	residuals map[int][]float64
	rawWords  int // uncompressed float64 words seen
	wireWords int // compressed float64 words produced
}

// NewGradCompressor returns a compressor of the given kind. ratio is the
// top-k keep fraction (only read by CompressTopK).
func NewGradCompressor(kind CompressKind, ratio float64) *GradCompressor {
	return &GradCompressor{Kind: kind, TopKRatio: ratio,
		residuals: make(map[int][]float64)}
}

// WireLen returns the compressed payload length in float64 words for a
// bucket of n elements — a pure function of n and the settings, identical
// across ranks.
func (c *GradCompressor) WireLen(n int) int {
	switch c.Kind {
	case CompressNone:
		return n
	case CompressTopK:
		return 2 * c.topK(n)
	case CompressInt8:
		return 1 + (n+7)/8
	default:
		panic("lowp: unknown CompressKind")
	}
}

// topK returns K = ceil(ratio*n) clamped to [1, n] (0 for an empty bucket).
func (c *GradCompressor) topK(n int) int {
	if n == 0 {
		return 0
	}
	k := int(math.Ceil(c.TopKRatio * float64(n)))
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	return k
}

// Compress encodes bucket id's gradient buffer (residual added in) into a
// fixed-length wire payload and updates the residual with what the encoding
// dropped. grad is not modified.
func (c *GradCompressor) Compress(bucket int, grad []float64) []float64 {
	res := c.residuals[bucket]
	if res == nil {
		res = make([]float64, len(grad))
		c.residuals[bucket] = res
	}
	if len(res) != len(grad) {
		panic(fmt.Sprintf("lowp: bucket %d length changed %d -> %d",
			bucket, len(res), len(grad)))
	}
	// v = grad + residual is what we try to transmit this step.
	v := make([]float64, len(grad))
	for i := range grad {
		v[i] = grad[i] + res[i]
	}
	var wire []float64
	switch c.Kind {
	case CompressNone:
		wire = append([]float64(nil), v...)
	case CompressTopK:
		wire = encodeTopK(v, c.topK(len(v)))
	case CompressInt8:
		wire = encodeInt8(v)
	default:
		panic("lowp: unknown CompressKind")
	}
	// residual = v - decode(wire): exactly what this step failed to send.
	decoded := make([]float64, len(v))
	c.decodeInto(wire, decoded)
	for i := range res {
		res[i] = v[i] - decoded[i]
	}
	c.rawWords += len(grad)
	c.wireWords += len(wire)
	return wire
}

// DecodeAccumulate decodes a wire payload and adds it elementwise into acc
// (len(acc) must be the original bucket length).
func (c *GradCompressor) DecodeAccumulate(wire, acc []float64) {
	switch c.Kind {
	case CompressNone:
		if len(wire) != len(acc) {
			panic("lowp: wire/bucket length mismatch")
		}
		for i, v := range wire {
			acc[i] += v
		}
	case CompressTopK:
		k := len(wire) / 2
		for j := 0; j < k; j++ {
			idx := int(wire[k+j])
			if idx < 0 || idx >= len(acc) {
				panic(fmt.Sprintf("lowp: top-k index %d out of range %d", idx, len(acc)))
			}
			acc[idx] += wire[j]
		}
	case CompressInt8:
		scale := wire[0]
		for i := range acc {
			acc[i] += float64(unpackInt8(wire[1:], i)) * scale
		}
	default:
		panic("lowp: unknown CompressKind")
	}
}

// decodeInto writes the decoded payload over dst (dst zeroed first).
func (c *GradCompressor) decodeInto(wire, dst []float64) {
	for i := range dst {
		dst[i] = 0
	}
	c.DecodeAccumulate(wire, dst)
}

// CompressionRatio returns rawWords/wireWords over the compressor's
// lifetime (1 for identity; 0 before any traffic).
func (c *GradCompressor) CompressionRatio() float64 {
	if c.wireWords == 0 {
		return 0
	}
	return float64(c.rawWords) / float64(c.wireWords)
}

// encodeTopK keeps the k largest-|v| entries: [k values..., k indices...].
// Indices are stored as float64 (exact for any realistic bucket length) in
// increasing order so the encoding is deterministic; magnitude ties are
// broken toward the lower index.
func encodeTopK(v []float64, k int) []float64 {
	n := len(v)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return math.Abs(v[idx[a]]) > math.Abs(v[idx[b]])
	})
	keep := idx[:k]
	sort.Ints(keep)
	wire := make([]float64, 2*k)
	for j, i := range keep {
		wire[j] = v[i]
		wire[k+j] = float64(i)
	}
	return wire
}

// encodeInt8 quantises v against a per-bucket symmetric scale (absmax/127)
// and packs 8 int8 lanes into each float64 word via its bit pattern:
// [scale, packed...].
func encodeInt8(v []float64) []float64 {
	m := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	scale := m / 127
	if scale == 0 {
		scale = 1
	}
	inv := 1 / scale
	wire := make([]float64, 1+(len(v)+7)/8)
	wire[0] = scale
	packed := wire[1:]
	for i, x := range v {
		q := math.Round(x * inv)
		if q > 127 {
			q = 127
		} else if q < -127 {
			q = -127
		}
		packInt8(packed, i, int8(q))
	}
	return wire
}

// packInt8 stores b into lane i (8 lanes per float64 word, little-endian by
// lane) of the packed region.
func packInt8(packed []float64, i int, b int8) {
	word := i / 8
	shift := uint(i%8) * 8
	bits := math.Float64bits(packed[word])
	bits &^= uint64(0xff) << shift
	bits |= uint64(uint8(b)) << shift
	packed[word] = math.Float64frombits(bits)
}

// unpackInt8 reads lane i of the packed region.
func unpackInt8(packed []float64, i int) int8 {
	word := i / 8
	shift := uint(i%8) * 8
	return int8(uint8(math.Float64bits(packed[word]) >> shift))
}
