package lowp

import "repro/internal/tensor"

// Float32 storage conversions for the mixed-precision training path: the
// kernel backends in internal/tensor compute in real float32 (storage AND
// arithmetic), while the float64 Tensor remains the master-weight and
// optimizer precision. These helpers are the only crossing points, so the
// precision contract stays auditable: narrowing uses the same
// round-to-nearest-even as Round(v, FP32), and widening is exact.

// F32FromTensor rounds src (float64) into dst (float32) element by element.
// Element counts must match; shapes are the caller's contract.
func F32FromTensor(dst *tensor.F32, src *tensor.Tensor) {
	if len(dst.Data) != len(src.Data) {
		panic("lowp: F32FromTensor size mismatch")
	}
	for i, v := range src.Data {
		dst.Data[i] = float32(v)
	}
}

// TensorFromF32 widens src (float32) into dst (float64) exactly — every
// float32 is representable as a float64, so this direction loses nothing.
func TensorFromF32(dst *tensor.Tensor, src *tensor.F32) {
	if len(dst.Data) != len(src.Data) {
		panic("lowp: TensorFromF32 size mismatch")
	}
	for i, v := range src.Data {
		dst.Data[i] = float64(v)
	}
}

// AddTensorFromF32 accumulates src (float32, widened exactly) into dst
// (float64). Gradient buffers accumulate across micro-batches in float64
// even when the producing GEMM ran in float32; this is that crossing.
func AddTensorFromF32(dst *tensor.Tensor, src *tensor.F32) {
	if len(dst.Data) != len(src.Data) {
		panic("lowp: AddTensorFromF32 size mismatch")
	}
	for i, v := range src.Data {
		dst.Data[i] += float64(v)
	}
}
