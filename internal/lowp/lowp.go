// Package lowp emulates the reduced-precision arithmetic the paper argues
// future DNN-oriented HPC architectures should provide ("they rarely require
// 64bit or even 32bits of precision").
//
// Since the host has no fp16/bf16/int8 tensor units, the package emulates
// the NUMERICS in software — IEEE-754 binary16, bfloat16, and int8 affine
// quantisation, with round-to-nearest-even and optional stochastic rounding —
// while the machine model (internal/machine) supplies the SPEED ratios such
// hardware would deliver. Training "in precision p" means every weight,
// activation, and gradient tensor is rounded through p after each kernel,
// which reproduces the accuracy cliffs and loss-scaling behaviour of real
// mixed-precision training.
package lowp

import (
	"fmt"
	"math"

	"repro/internal/rng"
	"repro/internal/tensor"
)

// Precision identifies a storage/compute precision.
type Precision int

// Supported precisions, widest first.
const (
	FP64 Precision = iota
	FP32
	BF16
	FP16
	INT8
)

// String returns the conventional name of the precision.
func (p Precision) String() string {
	switch p {
	case FP64:
		return "fp64"
	case FP32:
		return "fp32"
	case BF16:
		return "bf16"
	case FP16:
		return "fp16"
	case INT8:
		return "int8"
	default:
		return fmt.Sprintf("Precision(%d)", int(p))
	}
}

// Bits returns the storage width of the precision in bits.
func (p Precision) Bits() int {
	switch p {
	case FP64:
		return 64
	case FP32:
		return 32
	case BF16, FP16:
		return 16
	case INT8:
		return 8
	default:
		panic("lowp: unknown precision")
	}
}

// ParsePrecision converts a name ("fp64", "fp32", "bf16", "fp16", "int8")
// into a Precision.
func ParsePrecision(s string) (Precision, error) {
	switch s {
	case "fp64":
		return FP64, nil
	case "fp32":
		return FP32, nil
	case "bf16":
		return BF16, nil
	case "fp16":
		return FP16, nil
	case "int8":
		return INT8, nil
	}
	return FP64, fmt.Errorf("lowp: unknown precision %q", s)
}

// AllPrecisions lists every supported precision, widest first.
func AllPrecisions() []Precision { return []Precision{FP64, FP32, BF16, FP16, INT8} }

// ToFloat16 converts a float64 to IEEE-754 binary16 bits with
// round-to-nearest-even, handling subnormals, overflow to infinity, and NaN.
func ToFloat16(v float64) uint16 {
	f := float32(v)
	b := math.Float32bits(f)
	sign := uint16(b>>16) & 0x8000
	exp := int32(b>>23)&0xff - 127
	mant := b & 0x7fffff

	switch {
	case exp == 128: // Inf or NaN
		if mant != 0 {
			return sign | 0x7e00 // quiet NaN
		}
		return sign | 0x7c00 // Inf
	case exp > 15: // overflow -> Inf
		return sign | 0x7c00
	case exp >= -14: // normal range
		// 10-bit mantissa; round to nearest even on the 13 dropped bits.
		he := uint16(exp+15) << 10
		hm := uint16(mant >> 13)
		rem := mant & 0x1fff
		if rem > 0x1000 || (rem == 0x1000 && hm&1 == 1) {
			hm++
			if hm == 0x400 { // mantissa carry into exponent
				hm = 0
				he += 1 << 10
				if he >= 0x7c00 {
					return sign | 0x7c00
				}
			}
		}
		return sign | he | hm
	case exp >= -24: // subnormal half
		// Implicit leading 1 becomes explicit; shift by the deficit.
		mant |= 0x800000
		shift := uint32(-exp - 14 + 13)
		hm := uint16(mant >> shift)
		rem := mant & ((1 << shift) - 1)
		half := uint32(1) << (shift - 1)
		if rem > half || (rem == half && hm&1 == 1) {
			hm++
		}
		return sign | hm
	default: // underflow to signed zero
		return sign
	}
}

// FromFloat16 converts IEEE-754 binary16 bits to float64.
func FromFloat16(h uint16) float64 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h>>10) & 0x1f
	mant := uint32(h & 0x3ff)
	var b uint32
	switch {
	case exp == 0x1f: // Inf/NaN
		b = sign | 0x7f800000 | mant<<13
	case exp == 0: // zero or subnormal
		if mant == 0 {
			b = sign
		} else {
			// Normalise the subnormal.
			e := int32(-15)
			for mant&0x400 == 0 {
				mant <<= 1
				e--
			}
			mant &= 0x3ff
			b = sign | uint32(e+1+127)<<23 | mant<<13
		}
	default:
		b = sign | (exp-15+127)<<23 | mant<<13
	}
	return float64(math.Float32frombits(b))
}

// ToBFloat16 converts a float64 to bfloat16 bits (round-to-nearest-even of
// the upper 16 bits of the float32 representation).
func ToBFloat16(v float64) uint16 {
	b := math.Float32bits(float32(v))
	if b&0x7f800000 == 0x7f800000 && b&0x7fffff != 0 {
		return uint16(b>>16) | 0x0040 // keep NaN quiet
	}
	rem := b & 0xffff
	out := b >> 16
	if rem > 0x8000 || (rem == 0x8000 && out&1 == 1) {
		out++
	}
	return uint16(out)
}

// FromBFloat16 converts bfloat16 bits to float64.
func FromBFloat16(h uint16) float64 {
	return float64(math.Float32frombits(uint32(h) << 16))
}

// Round returns v stored-and-reloaded through the given precision with
// round-to-nearest-even. INT8 is not representable without a tensor-level
// scale; use QuantizeInt8 for that (Round(INT8) panics).
func Round(v float64, p Precision) float64 {
	switch p {
	case FP64:
		return v
	case FP32:
		return float64(float32(v))
	case BF16:
		return FromBFloat16(ToBFloat16(v))
	case FP16:
		return FromFloat16(ToFloat16(v))
	default:
		panic("lowp: Round does not support " + p.String())
	}
}

// RoundTensor rounds every element of t in place through precision p.
// For INT8 the tensor is affine-quantised against its own absolute maximum
// and dequantised (symmetric, per-tensor scale).
func RoundTensor(t *tensor.Tensor, p Precision) {
	switch p {
	case FP64:
		return
	case INT8:
		q := QuantizeInt8(t)
		q.DequantizeInto(t)
	default:
		for i, v := range t.Data {
			t.Data[i] = Round(v, p)
		}
	}
}

// StochasticRound returns v rounded to precision p, choosing between the two
// nearest representable values with probability proportional to proximity.
// Stochastic rounding keeps small gradient updates from being systematically
// lost in low precision.
func StochasticRound(v float64, p Precision, r *rng.Stream) float64 {
	if p == FP64 {
		return v
	}
	lo := Round(v, p)
	if lo == v || math.IsInf(lo, 0) || math.IsNaN(lo) {
		return lo
	}
	// Find the representable value on the other side of v.
	var hi float64
	ulp := ulpAt(lo, p)
	if lo < v {
		hi = Round(lo+ulp, p)
	} else {
		lo, hi = Round(lo-ulp, p), lo
	}
	if hi == lo {
		return lo
	}
	frac := (v - lo) / (hi - lo)
	if r.Float64() < frac {
		return hi
	}
	return lo
}

// ulpAt returns the spacing between representable values near x for p.
func ulpAt(x float64, p Precision) float64 {
	ax := math.Abs(x)
	if ax == 0 {
		switch p {
		case FP16:
			return math.Pow(2, -24)
		case BF16:
			return math.Pow(2, -133)
		default:
			return math.SmallestNonzeroFloat32
		}
	}
	exp := math.Floor(math.Log2(ax))
	var mantBits float64
	switch p {
	case FP32:
		mantBits = 23
	case BF16:
		mantBits = 7
	case FP16:
		mantBits = 10
	default:
		mantBits = 52
	}
	return math.Pow(2, exp-mantBits)
}

// QuantizedInt8 holds a symmetric per-tensor int8 quantisation of a tensor.
type QuantizedInt8 struct {
	Data  []int8
	Scale float64 // real = Scale * int8
	shape []int
}

// QuantizeInt8 quantises t with a symmetric per-tensor scale chosen so the
// largest magnitude maps to ±127.
func QuantizeInt8(t *tensor.Tensor) *QuantizedInt8 {
	m := t.AbsMax()
	scale := m / 127
	if scale == 0 {
		scale = 1
	}
	q := &QuantizedInt8{Data: make([]int8, t.Len()), Scale: scale,
		shape: append([]int(nil), t.Shape()...)}
	inv := 1 / scale
	for i, v := range t.Data {
		x := math.Round(v * inv)
		if x > 127 {
			x = 127
		} else if x < -127 {
			x = -127
		}
		q.Data[i] = int8(x)
	}
	return q
}

// DequantizeInto writes the dequantised values into dst, which must have the
// same element count.
func (q *QuantizedInt8) DequantizeInto(dst *tensor.Tensor) {
	if dst.Len() != len(q.Data) {
		panic("lowp: DequantizeInto size mismatch")
	}
	for i, v := range q.Data {
		dst.Data[i] = float64(v) * q.Scale
	}
}

// Dequantize returns a fresh tensor with the dequantised values.
func (q *QuantizedInt8) Dequantize() *tensor.Tensor {
	dst := tensor.New(q.shape...)
	q.DequantizeInto(dst)
	return dst
}

// LossScaler implements dynamic loss scaling for low-precision training:
// gradients are computed on a scaled loss so small values survive the
// format's underflow threshold, then unscaled before the optimizer step.
// On overflow (inf/nan in gradients) the step is skipped and the scale
// halved; after GrowthInterval clean steps the scale doubles.
type LossScaler struct {
	Scale          float64
	GrowthInterval int
	MaxScale       float64
	clean          int
}

// NewLossScaler returns a scaler with the conventional defaults
// (initial scale 2^15, growth every 200 clean steps).
func NewLossScaler() *LossScaler {
	return &LossScaler{Scale: 1 << 15, GrowthInterval: 200, MaxScale: 1 << 24}
}

// Update inspects the (already unscaled-by-caller or raw) gradient tensors
// for non-finite values and adapts the scale. It returns true when the step
// should be applied and false when it must be skipped.
func (s *LossScaler) Update(grads []*tensor.Tensor) bool {
	for _, g := range grads {
		for _, v := range g.Data {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				s.Scale = math.Max(1, s.Scale/2)
				s.clean = 0
				return false
			}
		}
	}
	s.clean++
	if s.clean >= s.GrowthInterval {
		s.clean = 0
		s.Scale = math.Min(s.MaxScale, s.Scale*2)
	}
	return true
}

// State returns the scaler's full dynamic state (current scale and clean
// step count) so a checkpoint can capture it; restoring both is required
// for a resumed run to grow/shrink the scale on the same schedule.
func (s *LossScaler) State() (scale float64, clean int) { return s.Scale, s.clean }

// Restore sets the dynamic state previously returned by State.
func (s *LossScaler) Restore(scale float64, clean int) {
	s.Scale = scale
	s.clean = clean
}
