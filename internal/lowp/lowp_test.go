package lowp

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/tensor"
)

func TestFloat16KnownValues(t *testing.T) {
	cases := []struct {
		v    float64
		bits uint16
	}{
		{0, 0x0000},
		{1, 0x3c00},
		{-1, 0xbc00},
		{2, 0x4000},
		{0.5, 0x3800},
		{65504, 0x7bff},                 // largest finite half
		{math.Inf(1), 0x7c00},           //
		{math.Inf(-1), 0xfc00},          //
		{6.103515625e-05, 0x0400},       // smallest normal half
		{5.960464477539063e-08, 0x0001}, // smallest subnormal half
	}
	for _, c := range cases {
		if got := ToFloat16(c.v); got != c.bits {
			t.Errorf("ToFloat16(%v) = %#04x want %#04x", c.v, got, c.bits)
		}
		if back := FromFloat16(c.bits); back != c.v {
			t.Errorf("FromFloat16(%#04x) = %v want %v", c.bits, back, c.v)
		}
	}
}

func TestFloat16Overflow(t *testing.T) {
	if got := ToFloat16(70000); got != 0x7c00 {
		t.Fatalf("70000 should overflow to +Inf, got %#04x", got)
	}
	if got := ToFloat16(-70000); got != 0xfc00 {
		t.Fatalf("-70000 should overflow to -Inf, got %#04x", got)
	}
}

func TestFloat16Underflow(t *testing.T) {
	if got := ToFloat16(1e-10); got != 0 {
		t.Fatalf("1e-10 should underflow to +0, got %#04x", got)
	}
	if got := FromFloat16(ToFloat16(-1e-10)); got != 0 || math.Signbit(got) == false {
		t.Fatalf("-1e-10 should underflow to -0, got %v", got)
	}
}

func TestFloat16NaN(t *testing.T) {
	if !math.IsNaN(FromFloat16(ToFloat16(math.NaN()))) {
		t.Fatal("NaN did not survive fp16 round trip")
	}
}

// Property: fp16 round trip is exact for all 65536 bit patterns
// (bits -> float64 -> bits), modulo NaN payloads.
func TestFloat16ExhaustiveRoundTrip(t *testing.T) {
	for b := 0; b < 1<<16; b++ {
		h := uint16(b)
		v := FromFloat16(h)
		if math.IsNaN(v) {
			if !math.IsNaN(FromFloat16(ToFloat16(v))) {
				t.Fatalf("NaN pattern %#04x lost", h)
			}
			continue
		}
		got := ToFloat16(v)
		if got != h {
			t.Fatalf("bits %#04x -> %v -> %#04x", h, v, got)
		}
	}
}

// Property: rounding error of fp16 is within half an ULP for normal range.
func TestQuickFloat16Error(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		v := r.Uniform(-60000, 60000)
		got := FromFloat16(ToFloat16(v))
		// Relative error bounded by 2^-11 in the normal range.
		if math.Abs(v) > 6.2e-5 {
			return math.Abs(got-v) <= math.Abs(v)*math.Pow(2, -11)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestBFloat16KnownValues(t *testing.T) {
	cases := []struct {
		v    float64
		want float64
	}{
		{1, 1},
		{-2, -2},
		{0.5, 0.5},
		{3.140625, 3.140625}, // exactly representable (1.5703125 * 2)
	}
	for _, c := range cases {
		if got := FromBFloat16(ToBFloat16(c.v)); got != c.want {
			t.Errorf("bf16 round trip of %v = %v", c.v, got)
		}
	}
	// bf16 has fp32's range: 1e38 must survive.
	if got := FromBFloat16(ToBFloat16(1e38)); math.IsInf(got, 0) {
		t.Fatal("1e38 overflowed in bf16")
	}
	// and fp16 does not.
	if got := FromFloat16(ToFloat16(1e38)); !math.IsInf(got, 1) {
		t.Fatalf("1e38 should be +Inf in fp16, got %v", got)
	}
}

func TestBFloat16NaN(t *testing.T) {
	if !math.IsNaN(FromBFloat16(ToBFloat16(math.NaN()))) {
		t.Fatal("NaN did not survive bf16")
	}
}

// Property: bf16 relative error is bounded by 2^-8 for finite normal input.
func TestQuickBFloat16Error(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		v := r.NormMeanStd(0, 100)
		got := FromBFloat16(ToBFloat16(v))
		return math.Abs(got-v) <= math.Abs(v)*math.Pow(2, -8)+1e-40
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundIdempotent(t *testing.T) {
	r := rng.New(5)
	for _, p := range []Precision{FP32, BF16, FP16} {
		for i := 0; i < 200; i++ {
			v := r.NormMeanStd(0, 10)
			once := Round(v, p)
			twice := Round(once, p)
			if once != twice {
				t.Fatalf("%v rounding not idempotent: %v -> %v -> %v", p, v, once, twice)
			}
		}
	}
}

func TestRoundTensorInt8(t *testing.T) {
	x := tensor.FromSlice([]float64{-1, 0, 0.5, 1}, 4)
	RoundTensor(x, INT8)
	if x.Data[0] != -1 || x.Data[3] != 1 {
		t.Fatalf("int8 extremes distorted: %v", x.Data)
	}
	if math.Abs(x.Data[2]-0.5) > 1.0/127 {
		t.Fatalf("int8 midpoint error too large: %v", x.Data[2])
	}
}

func TestQuantizeInt8AllZero(t *testing.T) {
	x := tensor.New(5)
	q := QuantizeInt8(x)
	y := q.Dequantize()
	for _, v := range y.Data {
		if v != 0 {
			t.Fatal("all-zero tensor distorted by quantisation")
		}
	}
}

// Property: int8 quantisation error bounded by scale/2 per element.
func TestQuickInt8Error(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(100)
		x := tensor.New(n)
		x.FillRandNorm(r, 3)
		q := QuantizeInt8(x)
		y := q.Dequantize()
		for i := range x.Data {
			if math.Abs(x.Data[i]-y.Data[i]) > q.Scale/2+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: stochastic rounding is unbiased — the mean of many roundings
// approaches the true value.
func TestStochasticRoundUnbiased(t *testing.T) {
	r := rng.New(77)
	v := 1.0 + 1.0/3.0 // not representable in fp16
	const n = 50000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += StochasticRound(v, FP16, r)
	}
	mean := sum / n
	if math.Abs(mean-v) > 2e-4 {
		t.Fatalf("stochastic rounding biased: mean %v want %v", mean, v)
	}
	// Deterministic rounding, by contrast, has a fixed offset.
	det := Round(v, FP16)
	if det == v {
		t.Fatal("test value unexpectedly representable")
	}
}

func TestStochasticRoundRepresentable(t *testing.T) {
	r := rng.New(1)
	for i := 0; i < 100; i++ {
		got := StochasticRound(0.5, FP16, r)
		if got != 0.5 {
			t.Fatalf("representable value changed: %v", got)
		}
	}
}

func TestLossScalerOverflowHalves(t *testing.T) {
	s := NewLossScaler()
	start := s.Scale
	bad := tensor.FromSlice([]float64{1, math.Inf(1)}, 2)
	if s.Update([]*tensor.Tensor{bad}) {
		t.Fatal("overflowing step not skipped")
	}
	if s.Scale != start/2 {
		t.Fatalf("scale %v want %v", s.Scale, start/2)
	}
}

func TestLossScalerGrowth(t *testing.T) {
	s := NewLossScaler()
	s.GrowthInterval = 3
	start := s.Scale
	good := tensor.FromSlice([]float64{1, 2}, 2)
	for i := 0; i < 3; i++ {
		if !s.Update([]*tensor.Tensor{good}) {
			t.Fatal("clean step skipped")
		}
	}
	if s.Scale != start*2 {
		t.Fatalf("scale did not grow: %v", s.Scale)
	}
}

func TestLossScalerNaN(t *testing.T) {
	s := NewLossScaler()
	bad := tensor.FromSlice([]float64{math.NaN()}, 1)
	if s.Update([]*tensor.Tensor{bad}) {
		t.Fatal("NaN step not skipped")
	}
}

func TestPrecisionStringBitsParse(t *testing.T) {
	for _, p := range AllPrecisions() {
		got, err := ParsePrecision(p.String())
		if err != nil || got != p {
			t.Fatalf("parse round trip failed for %v", p)
		}
	}
	if FP64.Bits() != 64 || FP16.Bits() != 16 || INT8.Bits() != 8 {
		t.Fatal("Bits wrong")
	}
	if _, err := ParsePrecision("fp8"); err == nil {
		t.Fatal("unknown precision did not error")
	}
}

func BenchmarkToFloat16(b *testing.B) {
	var sink uint16
	for i := 0; i < b.N; i++ {
		sink = ToFloat16(float64(i) * 0.001)
	}
	_ = sink
}

func BenchmarkRoundTensorFP16(b *testing.B) {
	x := tensor.New(4096)
	x.FillRandNorm(rng.New(1), 1)
	b.SetBytes(4096 * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RoundTensor(x, FP16)
	}
}
