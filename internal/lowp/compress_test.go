package lowp

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func randBucket(seed uint64, n int) []float64 {
	r := rng.New(seed)
	buf := make([]float64, n)
	for i := range buf {
		buf[i] = (r.Float64() - 0.5) * math.Pow(10, float64(i%5)-2)
	}
	return buf
}

// TestCompressNoneIdentity: the identity compressor round-trips exactly and
// leaves a zero residual.
func TestCompressNoneIdentity(t *testing.T) {
	c := NewGradCompressor(CompressNone, 0)
	grad := randBucket(1, 33)
	wire := c.Compress(0, grad)
	if len(wire) != c.WireLen(len(grad)) {
		t.Fatalf("wire len %d want %d", len(wire), c.WireLen(len(grad)))
	}
	acc := make([]float64, len(grad))
	c.DecodeAccumulate(wire, acc)
	for i := range grad {
		if acc[i] != grad[i] {
			t.Fatalf("elem %d: %v != %v", i, acc[i], grad[i])
		}
	}
	for _, r := range c.residuals[0] {
		if r != 0 {
			t.Fatalf("identity residual nonzero: %v", r)
		}
	}
	if got := c.CompressionRatio(); got != 1 {
		t.Fatalf("identity ratio %v", got)
	}
}

// TestCompressTopKKeepsLargest: with ratio 0.25 the wire carries exactly the
// K largest-magnitude entries and the residual carries the rest.
func TestCompressTopKKeepsLargest(t *testing.T) {
	c := NewGradCompressor(CompressTopK, 0.25)
	grad := []float64{0.1, -5, 0.2, 3, -0.05, 0.3, 7, -0.2}
	wire := c.Compress(0, grad)
	if len(wire) != 4 { // K = ceil(0.25*8) = 2 -> 2 values + 2 indices
		t.Fatalf("wire len %d want 4", len(wire))
	}
	acc := make([]float64, len(grad))
	c.DecodeAccumulate(wire, acc)
	// The two largest are -5 (idx 1) and 7 (idx 6).
	want := []float64{0, -5, 0, 0, 0, 0, 7, 0}
	for i := range want {
		if acc[i] != want[i] {
			t.Fatalf("decoded %v want %v", acc, want)
		}
	}
	// Residual holds exactly the dropped mass.
	for i, r := range c.residuals[0] {
		if r != grad[i]-acc[i] {
			t.Fatalf("residual %d: %v want %v", i, r, grad[i]-acc[i])
		}
	}
}

// TestCompressTopKFullRatioIsIdentity: k >= len degenerates to identity.
func TestCompressTopKFullRatioIsIdentity(t *testing.T) {
	for _, ratio := range []float64{1.0, 1.5, 100} {
		c := NewGradCompressor(CompressTopK, ratio)
		grad := randBucket(3, 17)
		wire := c.Compress(0, grad)
		acc := make([]float64, len(grad))
		c.DecodeAccumulate(wire, acc)
		for i := range grad {
			if acc[i] != grad[i] {
				t.Fatalf("ratio %v elem %d: %v != %v", ratio, i, acc[i], grad[i])
			}
		}
		for _, r := range c.residuals[0] {
			if r != 0 {
				t.Fatalf("ratio %v residual nonzero: %v", ratio, r)
			}
		}
	}
}

// TestErrorFeedbackConservesMass: over many steps, decoded + residual always
// equals the cumulative input exactly at the per-step level — decoded(t) +
// residual(t) == grad(t) + residual(t-1) — for every compressor.
func TestErrorFeedbackConservesMass(t *testing.T) {
	kinds := []struct {
		kind  CompressKind
		ratio float64
	}{{CompressNone, 0}, {CompressTopK, 0.1}, {CompressTopK, 0.5}, {CompressInt8, 0}}
	for _, k := range kinds {
		c := NewGradCompressor(k.kind, k.ratio)
		n := 41
		prevRes := make([]float64, n)
		for step := 0; step < 20; step++ {
			grad := randBucket(uint64(100+step), n)
			wire := c.Compress(7, grad)
			if len(wire) != c.WireLen(n) {
				t.Fatalf("%v: wire len %d want %d", k.kind, len(wire), c.WireLen(n))
			}
			decoded := make([]float64, n)
			c.DecodeAccumulate(wire, decoded)
			for i := 0; i < n; i++ {
				in := grad[i] + prevRes[i]
				out := decoded[i] + c.residuals[7][i]
				// residual is computed as in - decoded, so this must hold
				// bit-for-bit.
				if out != in {
					t.Fatalf("%v step %d elem %d: decoded+res %v want %v",
						k.kind, step, i, out, in)
				}
			}
			copy(prevRes, c.residuals[7])
		}
	}
}

// TestCompressInt8Bounds: int8 decode error per element is at most half a
// quantisation step, and the packed encoding round-trips lane-exactly.
func TestCompressInt8Bounds(t *testing.T) {
	c := NewGradCompressor(CompressInt8, 0)
	grad := randBucket(11, 100)
	wire := c.Compress(0, grad)
	if len(wire) != 1+(100+7)/8 {
		t.Fatalf("wire len %d", len(wire))
	}
	scale := wire[0]
	acc := make([]float64, len(grad))
	c.DecodeAccumulate(wire, acc)
	for i := range grad {
		if math.Abs(acc[i]-grad[i]) > scale/2+1e-15 {
			t.Fatalf("elem %d: decode err %v > scale/2 %v", i,
				math.Abs(acc[i]-grad[i]), scale/2)
		}
	}
}

// TestPackInt8RoundTrip: every lane value survives packing bit-exactly,
// including patterns that make the carrier float64 a NaN.
func TestPackInt8RoundTrip(t *testing.T) {
	packed := make([]float64, 2)
	vals := []int8{-128, -127, -1, 0, 1, 63, 127, -64, 5, -5, 100, -100, 2, -2, 77, -77}
	for i, v := range vals {
		packInt8(packed, i, v)
	}
	for i, v := range vals {
		if got := unpackInt8(packed, i); got != v {
			t.Fatalf("lane %d: got %d want %d", i, got, v)
		}
	}
}

// TestCompressWireLenIsValueIndependent: same length in, same wire length
// out, regardless of the values — required for cross-rank allgather.
func TestCompressWireLenIsValueIndependent(t *testing.T) {
	for _, k := range []struct {
		kind  CompressKind
		ratio float64
	}{{CompressTopK, 0.3}, {CompressInt8, 0}} {
		c1 := NewGradCompressor(k.kind, k.ratio)
		c2 := NewGradCompressor(k.kind, k.ratio)
		a := randBucket(1, 57)
		b := make([]float64, 57) // all zeros
		if len(c1.Compress(0, a)) != len(c2.Compress(0, b)) {
			t.Fatalf("%v: wire length depends on values", k.kind)
		}
	}
}

// TestCompressionRatioAccounting: top-k at 10% of a large bucket gives
// roughly 5x (2K words for N), int8 roughly 8x.
func TestCompressionRatioAccounting(t *testing.T) {
	c := NewGradCompressor(CompressTopK, 0.1)
	c.Compress(0, randBucket(2, 1000))
	if r := c.CompressionRatio(); r < 4.9 || r > 5.1 {
		t.Fatalf("top-k 10%% ratio %v want ~5", r)
	}
	c8 := NewGradCompressor(CompressInt8, 0)
	c8.Compress(0, randBucket(2, 1000))
	if r := c8.CompressionRatio(); r < 7.5 || r > 8.1 {
		t.Fatalf("int8 ratio %v want ~8", r)
	}
}

// TestCompressBucketLengthChangePanics: residuals are keyed by bucket id and
// a length change means the caller's bucket plan drifted — fail loudly.
func TestCompressBucketLengthChangePanics(t *testing.T) {
	c := NewGradCompressor(CompressTopK, 0.5)
	c.Compress(0, make([]float64, 10))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on bucket length change")
		}
	}()
	c.Compress(0, make([]float64, 11))
}

// TestCompressEmptyBucket: zero-length buckets are legal no-ops.
func TestCompressEmptyBucket(t *testing.T) {
	for _, k := range []CompressKind{CompressNone, CompressTopK, CompressInt8} {
		c := NewGradCompressor(k, 0.5)
		wire := c.Compress(0, nil)
		if k == CompressInt8 {
			if len(wire) != 1 {
				t.Fatalf("int8 empty wire len %d", len(wire))
			}
		} else if len(wire) != 0 {
			t.Fatalf("%v empty wire len %d", k, len(wire))
		}
		c.DecodeAccumulate(wire, nil)
	}
}
