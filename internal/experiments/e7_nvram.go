package experiments

import (
	"repro/internal/machine"
	"repro/internal/storage"
	"repro/internal/trace"
)

// E7NVRAM simulates a training epoch timeline under every staging policy at
// three dataset sizes (fits DRAM; exceeds DRAM but fits NVRAM; exceeds
// NVRAM), with 64 nodes contending for the parallel file system.
//
// Expected shape (paper claim): once the per-node training data exceeds
// DRAM, node-local NVRAM staging with prefetch recovers most of the
// DRAM-resident performance, while PFS-direct runs are stall-dominated —
// "providing opportunities for NVRAM".
func E7NVRAM(cfg Config) *trace.Table {
	t := trace.NewTable("E7 training-data staging across the storage hierarchy",
		"dataset-GB", "policy", "total-s", "stage-s", "stall-s",
		"stall-frac", "efficiency")

	node := machine.GPU2017(1).Node
	// Shrink tiers so the three regimes appear at convenient sizes.
	for i := range node.Tiers {
		switch node.Tiers[i].Name {
		case "DRAM":
			node.Tiers[i].CapacityBytes = 64 * machine.GB
		case "NVRAM":
			node.Tiers[i].CapacityBytes = 1000 * machine.GB
		}
	}
	epochs := 4
	if cfg.Quick {
		epochs = 2
	}

	for _, dsGB := range []float64{32, 256, 2000} {
		batchMB := 16.0
		steps := int(dsGB * 1024 / batchMB)
		c := storage.Config{
			DatasetBytes:   dsGB * machine.GB,
			BatchBytes:     batchMB * machine.MB,
			StepsPerEpoch:  steps,
			Epochs:         epochs,
			ComputePerStep: 0.02,
			SharedPFSNodes: 64,
		}
		for _, p := range storage.AllPolicies() {
			res, err := storage.Simulate(&node, p, c)
			if err != nil {
				t.AddRow(dsGB, p.String(), "infeasible", "-", "-", "-", "-")
				continue
			}
			t.AddRow(dsGB, p.String(), res.TotalTime, res.StageTime,
				res.StallTime, res.StallFraction, storage.Efficiency(res, c))
		}
	}
	return t
}
