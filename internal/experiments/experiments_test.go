package experiments

import (
	"math"
	"strconv"
	"strings"
	"testing"

	"repro/internal/tensor"
)

// runQuick executes an experiment in quick mode and returns its table text.
func runQuick(t *testing.T, id string) (*Experiment, string) {
	t.Helper()
	e := ByID(id)
	if e == nil {
		t.Fatalf("experiment %s missing", id)
	}
	tb := e.Run(Config{Quick: true, Seed: 1})
	if tb.NumRows() == 0 {
		t.Fatalf("%s produced no rows", id)
	}
	return e, tb.String()
}

func TestSuiteComplete(t *testing.T) {
	all := All()
	if len(all) != 18 {
		t.Fatalf("expected 18 experiments, got %d", len(all))
	}
	for i, e := range all {
		want := "E" + strconv.Itoa(i+1)
		if e.ID != want {
			t.Fatalf("experiment %d has ID %s", i, e.ID)
		}
		if e.Claim == "" {
			t.Fatalf("%s has no claim", e.ID)
		}
	}
	if ByID("E42") != nil {
		t.Fatal("phantom experiment found")
	}
}

// parse pulls float columns out of a rendered table for shape assertions.
func tableRows(s string) [][]string {
	var rows [][]string
	for i, line := range strings.Split(strings.TrimSpace(s), "\n") {
		if i < 3 || strings.TrimSpace(line) == "" { // title, header, sep
			continue
		}
		rows = append(rows, strings.Fields(line))
	}
	return rows
}

func f(t *testing.T, s string) float64 {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cannot parse %q as float", s)
	}
	return v
}

func TestE1Shape(t *testing.T) {
	_, out := runQuick(t, "E1")
	rows := tableRows(out)
	// Find tumor fp64 accuracy and fp32 accuracy: should be close; modelled
	// speedup should be >= 1 and monotone non-decreasing with narrower types.
	var acc64, acc32, sp64, sp16 float64
	for _, r := range rows {
		if r[0] == "tumor-hard" && r[1] == "fp64" {
			acc64, sp64 = f(t, r[3]), f(t, r[7])
		}
		if r[0] == "tumor-hard" && r[1] == "fp32" {
			acc32 = f(t, r[3])
		}
		if r[0] == "tumor-hard" && r[1] == "fp16" && r[2] == "yes" {
			sp16 = f(t, r[7])
		}
	}
	if math.Abs(acc64-acc32) > 0.1 {
		t.Fatalf("fp32 accuracy %v far from fp64 %v", acc32, acc64)
	}
	if sp64 != 1 {
		t.Fatalf("fp64 speedup %v != 1", sp64)
	}
	if sp16 <= 1.5 {
		t.Fatalf("fp16 modelled speedup %v too small", sp16)
	}
}

func TestE2Shape(t *testing.T) {
	_, out := runQuick(t, "E2")
	rows := tableRows(out)
	// GEMV rows must be bandwidth bound; square GEMM compute bound.
	for _, r := range rows {
		if strings.HasPrefix(r[0], "gemv") && r[8] != "bandwidth" {
			t.Fatalf("GEMV classified as %s", r[8])
		}
		if strings.HasPrefix(r[0], "gemm(square)") && r[8] != "compute" {
			t.Fatalf("square GEMM classified as %s", r[8])
		}
	}
}

func TestE3Shape(t *testing.T) {
	_, out := runQuick(t, "E3")
	rows := tableRows(out)
	// Modelled strong efficiency at 256 ranks must be far below weak at 256.
	var strong256, weak256 float64
	for _, r := range rows {
		if r[7] != "model" {
			continue
		}
		if r[0] == "strong" && r[1] == "256" {
			strong256 = f(t, r[5])
		}
		if r[0] == "weak" && r[1] == "256" {
			weak256 = f(t, r[5])
		}
	}
	if strong256 >= weak256 {
		t.Fatalf("strong efficiency %v not below weak %v at 256 ranks", strong256, weak256)
	}
	if weak256 < 0.2 {
		t.Fatalf("weak scaling collapsed too: %v", weak256)
	}
}

func TestE4Shape(t *testing.T) {
	_, out := runQuick(t, "E4")
	rows := tableRows(out)
	// The best feasible configuration must be a true combination:
	// S > 1 (model doesn't fit one node) and K > 1 (search parallelism).
	bestTime := math.Inf(1)
	var bestS, bestR, bestK int
	for _, r := range rows {
		if r[3] != "true" {
			continue
		}
		ct := f(t, r[7])
		if ct < bestTime {
			bestTime = ct
			bestS, _ = strconv.Atoi(r[0])
			bestR, _ = strconv.Atoi(r[1])
			bestK, _ = strconv.Atoi(r[2])
		}
	}
	if bestS < 2 {
		t.Fatalf("winner uses S=%d; model cannot fit one node", bestS)
	}
	if bestK < 2 {
		t.Fatalf("winner uses no search parallelism (K=%d)", bestK)
	}
	if bestS*bestR*bestK != 4096 {
		t.Fatalf("winner %dx%dx%d does not use the machine", bestS, bestR, bestK)
	}
}

func TestE5Shape(t *testing.T) {
	_, out := runQuick(t, "E5")
	rows := tableRows(out)
	// Step time must be non-increasing with bandwidth, and the lowest
	// bandwidth row must be bandwidth-bound with data-motion-dominated energy.
	prev := math.Inf(1)
	for i, r := range rows {
		st := f(t, r[3])
		if st > prev*1.0001 {
			t.Fatalf("step time increased with bandwidth at row %d", i)
		}
		prev = st
	}
	first := rows[0]
	if first[8] != "bandwidth" {
		t.Fatalf("lowest bandwidth not bandwidth-bound: %v", first)
	}
	if f(t, first[7]) < 0.5 {
		t.Fatalf("low-bandwidth energy not data-dominated: %v", first[7])
	}
	last := rows[len(rows)-1]
	if last[8] != "compute" {
		t.Fatalf("highest bandwidth not compute-bound: %v", last)
	}
}

func TestE6Shape(t *testing.T) {
	_, out := runQuick(t, "E6")
	rows := tableRows(out)
	// At the highest fabric bandwidth, some multi-stage config must beat
	// 1-stage (speedup > 1); at 10 GB/s the handoff fraction at 16 stages
	// must exceed the 300 GB/s one.
	var speed300 float64
	var hand10, hand300 float64
	for _, r := range rows {
		bw := f(t, r[0])
		stages, _ := strconv.Atoi(r[1])
		if bw == 300 && stages == 8 {
			speed300 = f(t, r[5])
		}
		if stages == 16 {
			if bw == 10 {
				hand10 = f(t, r[4])
			}
			if bw == 300 {
				hand300 = f(t, r[4])
			}
		}
	}
	if speed300 <= 1 {
		t.Fatalf("8-stage pipeline on fast fabric no faster than 1 stage: %v", speed300)
	}
	if hand10 <= hand300 {
		t.Fatalf("slow fabric handoff fraction %v not above fast fabric %v", hand10, hand300)
	}
}

func TestE7Shape(t *testing.T) {
	_, out := runQuick(t, "E7")
	rows := tableRows(out)
	// At the mid dataset (exceeds DRAM, fits NVRAM): resident-dram must be
	// infeasible, prefetch-nvram must beat direct-pfs.
	var direct, prefetchNV float64
	residentInfeasible := false
	for _, r := range rows {
		if r[0] != "256.0" {
			continue
		}
		switch r[1] {
		case "direct-pfs":
			direct = f(t, r[2])
		case "prefetch-nvram":
			prefetchNV = f(t, r[2])
		case "resident-dram":
			if r[2] == "infeasible" {
				residentInfeasible = true
			}
		}
	}
	if !residentInfeasible {
		t.Fatal("256 GB dataset should not fit 64 GB DRAM")
	}
	if prefetchNV >= direct {
		t.Fatalf("NVRAM prefetch (%v) not faster than direct PFS (%v)", prefetchNV, direct)
	}
}

func TestE8Shape(t *testing.T) {
	_, out := runQuick(t, "E8")
	rows := tableRows(out)
	if len(rows) < 7 {
		t.Fatalf("expected one row per strategy, got %d", len(rows))
	}
	// All budget-used within the cap.
	for _, r := range rows {
		if used := f(t, r[2]); used > 8+1e-6 {
			t.Fatalf("%s overspent: %v", r[1], used)
		}
	}
}

func TestE9Shape(t *testing.T) {
	_, out := runQuick(t, "E9")
	rows := tableRows(out)
	// At high heterogeneity (sigma 1.2), hierarchical must beat static.
	var static, hier float64
	for _, r := range rows {
		if r[1] == "1.2000" || r[1] == "1.2" {
			if r[2] == "static" {
				static = f(t, r[3])
			}
			if r[2] == "hierarchical" {
				hier = f(t, r[3])
			}
		}
	}
	if static == 0 || hier == 0 {
		t.Fatalf("missing scheduler rows:\n%s", out)
	}
	if hier >= static {
		t.Fatalf("hierarchical (%v h) not better than static (%v h)", hier, static)
	}
}

func TestE10Shape(t *testing.T) {
	_, out := runQuick(t, "E10")
	rows := tableRows(out)
	// Per machine size: the optimum must be finite and interior — some
	// nonzero interval beats both never-checkpointing and the largest grid
	// interval — and the optimal interval must shrink as the machine grows
	// (system MTBF falls with node count).
	type group struct {
		bestInterval, bestWall float64
		neverWall, maxInterval float64
		maxIntervalWall, daly  float64
	}
	groups := map[string]*group{}
	for _, r := range rows {
		g := groups[r[0]]
		if g == nil {
			g = &group{}
			groups[r[0]] = g
		}
		interval, wall := f(t, r[2]), f(t, r[4])
		g.daly = f(t, r[3])
		if interval == 0 {
			g.neverWall = wall
		}
		if interval > g.maxInterval {
			g.maxInterval, g.maxIntervalWall = interval, wall
		}
		if r[5] == "*" {
			g.bestInterval, g.bestWall = interval, wall
		}
	}
	if len(groups) != 3 {
		t.Fatalf("expected 3 machine sizes, got %d:\n%s", len(groups), out)
	}
	for nodes, g := range groups {
		if g.bestInterval <= 0 || math.IsInf(g.bestWall, 1) {
			t.Fatalf("nodes=%s: no finite optimum (best interval %v wall %v)",
				nodes, g.bestInterval, g.bestWall)
		}
		if g.bestWall >= g.neverWall {
			t.Fatalf("nodes=%s: checkpointing (%v h) no better than never (%v h)",
				nodes, g.bestWall, g.neverWall)
		}
		if g.bestInterval == g.maxInterval && g.bestWall >= g.maxIntervalWall {
			t.Fatalf("nodes=%s: optimum sits on the grid edge", nodes)
		}
		// The empirical optimum brackets Daly's analytic one.
		if g.bestInterval < g.daly/8 || g.bestInterval > g.daly*8 {
			t.Fatalf("nodes=%s: empirical optimum %v far from Daly %v",
				nodes, g.bestInterval, g.daly)
		}
	}
	if groups["256"].bestInterval < groups["4096"].bestInterval {
		t.Fatalf("optimal interval grew with machine size: 256→%v, 4096→%v",
			groups["256"].bestInterval, groups["4096"].bestInterval)
	}
}

func TestE12Shape(t *testing.T) {
	_, out := runQuick(t, "E12")
	rows := tableRows(out)
	// Columns: scenario budget-ms p50 p95 p99 max hedged hedge-wins dup-pct.
	if len(rows) != 6 {
		t.Fatalf("expected clean + unhedged + 4 hedged rows, got %d:\n%s", len(rows), out)
	}
	byName := map[string][]string{}
	for _, r := range rows {
		byName[r[0]] = r
	}
	clean, unhedged := byName["clean"], byName["degraded-unhedged"]
	early, atBudget, late := byName["hedged-0.5x-p95"], byName["hedged-1x-p95"], byName["hedged-4x-p95"]
	if clean == nil || unhedged == nil || early == nil || atBudget == nil || late == nil {
		t.Fatalf("missing scenario rows:\n%s", out)
	}
	// The gray straggler poisons the tail without hedging...
	if f(t, unhedged[4]) < 3*f(t, clean[4]) {
		t.Fatalf("10x straggler barely moved p99 (%s -> %s ms):\n%s", clean[4], unhedged[4], out)
	}
	// ...hedging at the healthy p95 buys it back 2x+ for <=15% extra work...
	if 2*f(t, atBudget[4]) > f(t, unhedged[4]) {
		t.Fatalf("hedging at p95 cut p99 only %s -> %s ms (< 2x):\n%s", unhedged[4], atBudget[4], out)
	}
	if f(t, atBudget[8]) > 15 {
		t.Fatalf("%s%% duplicated work at the p95 budget (> 15%%):\n%s", atBudget[8], out)
	}
	if f(t, atBudget[6]) == 0 || f(t, atBudget[7]) == 0 {
		t.Fatalf("at-budget run never hedged or never won:\n%s", out)
	}
	// ...hedging below the healthy p50 duplicates far more work...
	if f(t, early[8]) <= 2*f(t, atBudget[8]) {
		t.Fatalf("sub-p50 budget did not blow up duplicated work (%s%% vs %s%%):\n%s",
			early[8], atBudget[8], out)
	}
	// ...and hedging late saves work but leaves more tail standing.
	if f(t, late[8]) > f(t, atBudget[8]) {
		t.Fatalf("4x budget duplicated more work than 1x (%s%% vs %s%%):\n%s",
			late[8], atBudget[8], out)
	}
	if f(t, late[4]) <= f(t, atBudget[4]) {
		t.Fatalf("4x budget p99 %s not above 1x budget p99 %s:\n%s", late[4], atBudget[4], out)
	}
}

func TestE13Shape(t *testing.T) {
	_, out := runQuick(t, "E13")
	rows := tableRows(out)
	// Columns: engine scenario ranks buckets wire-ratio comm-ms exposed-ms
	// overlap step-ms speedup.
	var modelFlat, modelBest, hostOverlap, hostInt8 []string
	for _, r := range rows {
		switch {
		case r[0] == "model" && r[1] == "flat-allreduce":
			modelFlat = r
		case r[0] == "model" && r[1] == "bucketed":
			if modelBest == nil || f(t, r[9]) > f(t, modelBest[9]) {
				modelBest = r
			}
		case r[0] == "host" && r[1] == "bucketed+overlap":
			hostOverlap = r
		case r[0] == "host" && r[1] == "overlap+int8":
			hostInt8 = r
		}
	}
	if modelFlat == nil || modelBest == nil || hostOverlap == nil || hostInt8 == nil {
		t.Fatalf("missing rows:\n%s", out)
	}
	// Model: flat hides nothing; the best bucketed config hides most of its
	// comm and cuts the step time.
	if f(t, modelFlat[9]) != 1 || f(t, modelFlat[7]) != 0 {
		t.Fatalf("model flat row not the baseline:\n%s", out)
	}
	if sp := f(t, modelBest[9]); sp <= 1.1 {
		t.Fatalf("best modelled bucketed speedup %v <= 1.1:\n%s", sp, out)
	}
	if ov := f(t, modelBest[7]); ov <= 0.5 {
		t.Fatalf("best modelled overlap %v <= 0.5:\n%s", ov, out)
	}
	// Host: the measured overlap fraction must be positive, exposed comm must
	// not exceed total comm, and compression must report its wire ratio.
	// (Host magnitudes are hardware-dependent — only shapes are asserted.)
	if ov := f(t, hostOverlap[7]); ov <= 0 || ov > 1 {
		t.Fatalf("measured host overlap fraction %v not in (0, 1]:\n%s", ov, out)
	}
	if f(t, hostOverlap[6]) > f(t, hostOverlap[5]) {
		t.Fatalf("host exposed comm %s above total comm %s:\n%s",
			hostOverlap[6], hostOverlap[5], out)
	}
	if ratio := f(t, hostInt8[4]); ratio < 6 {
		t.Fatalf("int8 wire ratio %v < 6:\n%s", ratio, out)
	}
}

func TestE11Shape(t *testing.T) {
	_, out := runQuick(t, "E11")
	rows := tableRows(out)
	if len(rows) != 6 {
		t.Fatalf("expected 6 batch sizes, got %d:\n%s", len(rows), out)
	}
	// Columns: max-batch capacity sat-tput sat-shed sat-p99 fix-rps
	// mean-batch p50 p99.
	var prevTput float64
	for i, r := range rows {
		tput, shed := f(t, r[2]), f(t, r[3])
		if shed <= 0 {
			t.Fatalf("row %s: saturation probe at 2x capacity shed nothing:\n%s", r[0], out)
		}
		// Throughput must rise (or hold, once saturated) with batch size.
		if tput < prevTput*0.98 {
			t.Fatalf("row %s: saturated throughput fell %v -> %v:\n%s", r[0], prevTput, tput, out)
		}
		prevTput = tput
		_ = i
	}
	first, last := rows[0], rows[len(rows)-1]
	if f(t, last[2]) < 2*f(t, first[2]) {
		t.Fatalf("batching bought <2x throughput (%s -> %s rps):\n%s", first[2], last[2], out)
	}
	// Saturation: the last doubling of MaxBatch buys little extra throughput.
	if f(t, last[2]) > 1.25*f(t, rows[len(rows)-2][2]) {
		t.Fatalf("throughput still rising steeply at max batch size:\n%s", out)
	}
	// Fixed-rate p99 inflects upward once MaxBatch crosses rate*linger = 4:
	// larger batches can no longer fill inside the linger bound.
	if f(t, last[8]) <= f(t, first[8]) {
		t.Fatalf("fixed-rate p99 did not inflect upward (%s -> %s ms):\n%s",
			first[8], last[8], out)
	}
	// Past the inflection the batcher flushes on linger, so the mean batch
	// pins near rate*linger instead of tracking MaxBatch.
	if mb := f(t, last[6]); mb > 8 {
		t.Fatalf("mean batch %v kept tracking MaxBatch past the linger bound:\n%s", mb, out)
	}
}

func TestE15Shape(t *testing.T) {
	_, out := runQuick(t, "E15")
	rows := tableRows(out)
	// Columns: kind backend/mode size procs gflops steps/s speedup.
	gemmBackends := map[string]bool{}
	var trainF64, trainF32 []string
	for _, r := range rows {
		switch r[0] {
		case "gemm":
			gemmBackends[r[1]] = true
			if gf := f(t, r[4]); gf <= 0 {
				t.Fatalf("gemm row %v has non-positive GFLOP/s:\n%s", r, out)
			}
		case "train":
			switch r[1] {
			case "f64":
				trainF64 = r
			case "f32-compute":
				trainF32 = r
			}
		}
	}
	// Every registered f32 backend plus the f64 baseline must be measured.
	for _, want := range append([]string{"f64-blocked"}, tensor.BackendNames()...) {
		if !gemmBackends[want] {
			t.Fatalf("no gemm rows for backend %s:\n%s", want, out)
		}
	}
	if trainF64 == nil || trainF32 == nil {
		t.Fatalf("missing train rows:\n%s", out)
	}
	// Throughput magnitudes are hardware-dependent; assert only shapes.
	if f(t, trainF64[5]) <= 0 || f(t, trainF32[5]) <= 0 {
		t.Fatalf("non-positive training throughput:\n%s", out)
	}
	if f(t, trainF64[6]) != 1 {
		t.Fatalf("f64 train row is not the speedup baseline:\n%s", out)
	}
	if f(t, trainF32[6]) <= 0 {
		t.Fatalf("f32-compute speedup not positive:\n%s", out)
	}
}

// TestE16Shape re-checks E7's staging story on the executed data plane: at
// the mid dataset (exceeds DRAM, fits NVRAM) the warm NVRAM-staged epoch
// beats direct PFS, a DRAM-only LRU thrashes to no better than direct, and
// the fits-DRAM regime warms up to a compute-bound epoch.
func TestE16Shape(t *testing.T) {
	_, out := runQuick(t, "E16")
	rows := tableRows(out)
	warm := map[string]map[string]float64{} // dataset -> policy -> warm-s
	stall := map[string]map[string]float64{}
	for _, r := range rows {
		if warm[r[0]] == nil {
			warm[r[0]] = map[string]float64{}
			stall[r[0]] = map[string]float64{}
		}
		warm[r[0]][r[1]] = f(t, r[4])
		stall[r[0]][r[1]] = f(t, r[5])
	}
	if len(warm) != 3 {
		t.Fatalf("expected 3 dataset regimes:\n%s", out)
	}
	mid := warm["256.0"]
	if !(mid["nvram-staged"]*10 < mid["direct-pfs+prefetch"]) {
		t.Fatalf("warm NVRAM epoch %v not >10x faster than direct PFS %v:\n%s",
			mid["nvram-staged"], mid["direct-pfs+prefetch"], out)
	}
	if mid["dram-lru"] < mid["direct-pfs+prefetch"] {
		t.Fatalf("a thrashing 64GB DRAM LRU should not beat direct PFS at 256GB:\n%s", out)
	}
	if sf := stall["32.0000"]["dram-lru"]; sf > 0.05 {
		t.Fatalf("fits-DRAM warm epoch stalls %.3f, want compute-bound:\n%s", sf, out)
	}
	// Prefetch overlaps stage-in with compute even without caches.
	small := warm["32.0000"]
	if !(small["direct-pfs+prefetch"] < small["direct-pfs"]) {
		t.Fatalf("prefetch did not overlap direct-PFS staging:\n%s", out)
	}
	// Beyond NVRAM capacity tiering still helps but cannot hide the PFS.
	big := warm["2000.0"]
	if !(big["tiered-dram-nvram"] < big["direct-pfs+prefetch"]) {
		t.Fatalf("tiering lost to direct PFS beyond NVRAM capacity:\n%s", out)
	}
	if big["tiered-dram-nvram"] < 3*warm["256.0"]["tiered-dram-nvram"] {
		t.Fatalf("2TB epoch suspiciously close to 256GB epoch — PFS fell off the clock:\n%s", out)
	}
}

// TestE18Shape checks the search-at-scale sweep in quick mode: the fault
// layer must be genuinely on at every scale, delivered eval budget must
// grow with machine size, and both learning searchers must beat random on
// true best-found loss at equal budget.
func TestE18Shape(t *testing.T) {
	_, out := runQuick(t, "E18")
	rows := tableRows(out)
	// Columns: nodes strategy budget trials observed-best true-best
	// evals/h util kills steals preempt interrupted.
	if len(rows) != 6 {
		t.Fatalf("expected 2 scales x 3 strategies, got %d rows:\n%s", len(rows), out)
	}
	trueBest := map[string]map[string]float64{} // nodes -> strategy -> true-best
	budget := map[string]float64{}
	for _, r := range rows {
		if trueBest[r[0]] == nil {
			trueBest[r[0]] = map[string]float64{}
		}
		trueBest[r[0]][r[1]] = f(t, r[5])
		budget[r[0]] = f(t, r[2])
		if f(t, r[8]) == 0 || f(t, r[9]) == 0 || f(t, r[11]) == 0 {
			t.Fatalf("fault layer idle in row %v:\n%s", r, out)
		}
	}
	if len(trueBest) != 2 {
		t.Fatalf("expected 2 machine sizes:\n%s", out)
	}
	if budget["3000"] <= budget["1000"] {
		t.Fatalf("eval budget did not grow with machine size (%v -> %v):\n%s",
			budget["1000"], budget["3000"], out)
	}
	for nodes, by := range trueBest {
		for _, name := range []string{"rl", "pbt"} {
			if by[name] >= by["random"] {
				t.Fatalf("%s true best %v not below random %v at %s nodes:\n%s",
					name, by[name], by["random"], nodes, out)
			}
		}
	}
}

func TestE17Shape(t *testing.T) {
	_, out := runQuick(t, "E17")
	rows := tableRows(out)
	byName := map[string][]string{}
	for _, r := range rows {
		byName[r[0]] = r
	}
	if len(byName) != 6 {
		t.Fatalf("expected 6 scenarios:\n%s", out)
	}
	// Deploy rows: scenario state ttd ttr bad-pct lost -
	for _, name := range []string{"shadow-catch", "bad-deploy"} {
		if st := byName[name][1]; st != "rolled_back" {
			t.Fatalf("%s state %q, want rolled_back:\n%s", name, st, out)
		}
	}
	// Shadow traffic catches the bad version before any live canary exposure.
	if pct := f(t, byName["shadow-catch"][4]); pct != 0 {
		t.Fatalf("shadow-catch served %v%% live bad-version traffic, want 0:\n%s", pct, out)
	}
	bad := byName["bad-deploy"]
	if ttd := f(t, bad[2]); !(ttd > 0 && ttd <= 1) {
		t.Fatalf("bad-deploy time-to-detect %vs, want (0, 1]:\n%s", ttd, out)
	}
	if pct := f(t, bad[4]); !(pct > 0 && pct <= 5) {
		t.Fatalf("bad-deploy blast radius %v%%, want (0, 5]:\n%s", pct, out)
	}
	if r := byName["good-deploy"]; r[1] != "promoted" || f(t, r[5]) != 0 {
		t.Fatalf("good deploy should promote without losing requests:\n%s", out)
	}
	// Flash rows: scenario avail <ratio> <verdict> - - - lost peak/mean
	if v := byName["flash-fixed-small"][3]; v != "VIOLATED" {
		t.Fatalf("one fixed replica should breach the flash-crowd SLO:\n%s", out)
	}
	auto := byName["flash-autoscaled"]
	if auto[3] != "MET" {
		t.Fatalf("autoscaled fleet should hold the flash-crowd SLO:\n%s", out)
	}
	pm := strings.SplitN(auto[8], "/", 2)
	if len(pm) != 2 {
		t.Fatalf("malformed replicas peak/mean cell %q:\n%s", auto[8], out)
	}
	if peak := f(t, pm[0]); peak < 2 {
		t.Fatalf("autoscaler never surged above 1 replica:\n%s", out)
	}
	if mean := f(t, pm[1]); mean >= e17FixedBigReplicas {
		t.Fatalf("autoscaled mean fleet %v not below the overprovisioned %d:\n%s",
			mean, e17FixedBigReplicas, out)
	}
}
