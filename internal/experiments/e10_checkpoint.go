package experiments

import (
	"math"

	"repro/internal/fault"
	"repro/internal/rng"
	"repro/internal/trace"
)

// E10Checkpoint sweeps the checkpoint interval for a long training job on
// machines of increasing node count. Each node fails independently with a
// fixed per-node MTBF, so the system MTBF shrinks linearly with scale;
// checkpointing too rarely loses large amounts of work per failure, while
// checkpointing too often drowns the job in checkpoint writes. The sweep
// locates the empirical optimum for each machine size and compares it
// against Daly's first-order analytic optimum sqrt(2*C*MTBF) - C.
//
// Expected shape (paper claim): at the scale the paper targets, failures
// are routine rather than exceptional, so the machine must be provisioned
// for checkpoint/restart traffic — the optimal interval falls with the
// square root of the system MTBF, and the wall-clock penalty of ignoring
// fault tolerance grows with node count.
func E10Checkpoint(cfg Config) *trace.Table {
	t := trace.NewTable("E10 optimal checkpoint interval vs machine size",
		"nodes", "sys-mtbf-h", "interval-s", "daly-s", "wall-h",
		"best", "overhead-vs-ideal")

	const (
		workSeconds    = 48 * 3600 // a two-day training job
		nodeMTBF       = 30 * 24 * 3600
		checkpointCost = 60.0
		restartCost    = 120.0
	)
	trials := 200
	if cfg.Quick {
		trials = 40
	}

	for _, nodes := range []int{256, 1024, 4096} {
		proc := fault.Process{Nodes: nodes, MTBF: nodeMTBF, Horizon: 1}
		sysMTBF := proc.SystemMTBF()
		daly := fault.DalyInterval(checkpointCost, sysMTBF)

		// Sweep a geometric grid of intervals bracketing the analytic
		// optimum, plus "never checkpoint" as the degenerate endpoint.
		intervals := []float64{0} // 0 = never checkpoint
		for f := 1.0 / 16; f <= 16; f *= 2 {
			intervals = append(intervals, daly*f)
		}

		bestWall := math.Inf(1)
		bestInterval := 0.0
		walls := make([]float64, len(intervals))
		for i, interval := range intervals {
			r := rng.New(cfg.Seed).Split("e10").SplitN(nodes + i)
			mean := 0.0
			for trial := 0; trial < trials; trial++ {
				mean += fault.SimulateCheckpointRun(r, fault.CheckpointRunConfig{
					Work: workSeconds, MTBF: sysMTBF, Interval: interval,
					CheckpointCost: checkpointCost, RestartCost: restartCost,
				})
			}
			walls[i] = mean / float64(trials)
			if walls[i] < bestWall {
				bestWall = walls[i]
				bestInterval = interval
			}
		}
		for i, interval := range intervals {
			mark := "-"
			if interval == bestInterval {
				mark = "*"
			}
			t.AddRow(nodes, sysMTBF/3600, interval, daly, walls[i]/3600,
				mark, walls[i]/workSeconds-1)
		}
		if cfg.Obs.Enabled() {
			cfg.Obs.SetGauge("e10.best_interval_s", bestInterval)
			cfg.Obs.OnEval("e10.overhead_at_optimum", bestWall/workSeconds-1)
		}
	}
	return t
}
