package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"repro/internal/biodata"
	"repro/internal/data"
	"repro/internal/machine"
	"repro/internal/rng"
	"repro/internal/trace"
)

// E16 re-derives E7's NVRAM staging crossover end-to-end: where E7 runs the
// closed-form storage.Simulate timeline, E16 streams real tumor-expression
// batches through internal/data's sharded loader — tier caches, eviction,
// checksums, prefetch workers and all — and reads the same epoch/stall
// numbers off the loader's virtual clock. The two must agree on the story:
// once the per-node dataset exceeds DRAM, node-local NVRAM staging with
// prefetch recovers most of the DRAM-resident epoch time, while direct-PFS
// runs are stall-dominated.
//
// The sizing mirrors E7 exactly: the GPU2017 node with DRAM shrunk to 64 GB
// and NVRAM to 1000 GB, 64 nodes contending for the PFS, and 0.02 s of
// training compute per 16 MB of data. Real sample payloads stay tiny;
// BuildOptions.SampleBytes scales the *logical* bytes the clock charges for,
// so the 2 TB regime runs in milliseconds of wall time. Per epoch, total
// modelled compute equals E7's steps x ComputePerStep to the last bit.

// e16Samples x e16ShardSamples real samples tile into e16Samples/e16ShardSamples
// shards; Batch 8 gives 8 batches per shard and 128 optimizer steps per epoch.
const (
	e16Samples      = 1024
	e16ShardSamples = 64
	e16Batch        = 8
	// e16ComputePerByte is E7's compute density: 0.02 s per 16 MB batch.
	e16ComputePerByte = 0.02 / (16 * machine.MB)
)

// e16Policy is one staging policy: which tier caches exist and whether the
// loader reads ahead.
type e16Policy struct {
	name     string
	prefetch int
	dram     int64
	nvram    int64
}

func e16Policies(dramCap, nvramCap int64) []e16Policy {
	return []e16Policy{
		{"direct-pfs", 0, 0, 0},
		{"direct-pfs+prefetch", 4, 0, 0},
		{"dram-lru", 4, dramCap, 0},
		{"nvram-staged", 4, 0, nvramCap},
		{"tiered-dram-nvram", 4, dramCap, nvramCap},
	}
}

// DataBenchRow is one (dataset size, policy) cell: the cold first epoch, the
// warm steady-state epoch, and where the warm epoch's shard fetches landed.
type DataBenchRow struct {
	DatasetGB     float64 `json:"dataset_gb"`
	Policy        string  `json:"policy"`
	Prefetch      int     `json:"prefetch"`
	Shards        int     `json:"shards"`
	ColdEpochS    float64 `json:"cold_epoch_s"`
	WarmEpochS    float64 `json:"warm_epoch_s"`
	WarmComputeS  float64 `json:"warm_compute_s"`
	WarmStageS    float64 `json:"warm_stage_s"`
	WarmStallFrac float64 `json:"warm_stall_frac"`
	WarmDRAMHits  int     `json:"warm_dram_hits"`
	WarmNVRAMHits int     `json:"warm_nvram_hits"`
	WarmPFSReads  int     `json:"warm_pfs_reads"`
	Efficiency    float64 `json:"efficiency"`     // warm compute / warm epoch
	SpeedupVsPFS  float64 `json:"speedup_vs_pfs"` // warm direct-pfs / warm this
}

// DataBenchReport is the committed BENCH_data.json document. Every number is
// virtual-clock output of a seeded run — same binary, same bytes — which is
// what lets the artifact live in the repository with a byte-compare test.
type DataBenchReport struct {
	Machine        string         `json:"machine"`
	Node           string         `json:"node"`
	SharedPFSNodes int            `json:"shared_pfs_nodes"`
	DRAMCapGB      float64        `json:"dram_cap_gb"`
	NVRAMCapGB     float64        `json:"nvram_cap_gb"`
	PFSMBps        float64        `json:"pfs_mb_per_s"` // per-node share
	Samples        int            `json:"samples"`
	ShardSamples   int            `json:"shard_samples"`
	Batch          int            `json:"batch"`
	Epochs         int            `json:"epochs"`
	Seed           uint64         `json:"seed"`
	Rows           []DataBenchRow `json:"rows"`
}

// WriteJSON writes the report as indented JSON (stable field order).
func (r *DataBenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// e16Node is E7's node: GPU2017 with DRAM shrunk to 64 GB and NVRAM to
// 1000 GB so the three regimes appear at convenient dataset sizes.
func e16Node() machine.Node {
	node := machine.GPU2017(1).Node
	for i := range node.Tiers {
		switch node.Tiers[i].Name {
		case "DRAM":
			node.Tiers[i].CapacityBytes = 64 * machine.GB
		case "NVRAM":
			node.Tiers[i].CapacityBytes = 1000 * machine.GB
		}
	}
	return node
}

// e16Sweep streams every (dataset size, policy) cell through a real loader
// and collects the virtual-clock rows.
func e16Sweep(seed uint64, epochs int) (*DataBenchReport, error) {
	node := e16Node()
	tiers, err := data.TiersFromNode(&node, 64)
	if err != nil {
		return nil, err
	}
	dramCap, _ := node.TierByName("DRAM")
	nvramCap, _ := node.TierByName("NVRAM")

	rep := &DataBenchReport{
		Machine:        "gpu2017",
		Node:           node.Name,
		SharedPFSNodes: 64,
		DRAMCapGB:      dramCap.CapacityBytes / machine.GB,
		NVRAMCapGB:     nvramCap.CapacityBytes / machine.GB,
		PFSMBps:        tiers.PFS.BandwidthBps / machine.MB,
		Samples:        e16Samples,
		ShardSamples:   e16ShardSamples,
		Batch:          e16Batch,
		Epochs:         epochs,
		Seed:           seed,
	}

	for _, dsGB := range []float64{32, 256, 2000} {
		// Scale the logical sample size so the manifest's logical total hits
		// dsGB while the real payload stays a few hundred KB.
		sampleBytes := int64(dsGB * machine.GB / e16Samples)
		ds := biodata.Tumor(biodata.TumorConfig{
			Samples: e16Samples, Genes: 12, Classes: 3,
			Informative: 6, Separation: 1.4, Noise: 1, PathwayBlocks: 2,
		}, rng.New(seed))
		man, store, err := data.Build(ds, data.BuildOptions{
			ShardSamples: e16ShardSamples, SampleBytes: sampleBytes,
		})
		if err != nil {
			return nil, err
		}
		computePerBatch := float64(int64(e16Batch)*sampleBytes) * e16ComputePerByte

		baselineWarm := 0.0
		for _, p := range e16Policies(int64(dramCap.CapacityBytes), int64(nvramCap.CapacityBytes)) {
			l, err := data.NewLoader(man, store, data.LoaderConfig{
				Batch: e16Batch, Seed: seed, Prefetch: p.prefetch,
				DRAMBytes: p.dram, NVRAMBytes: p.nvram,
				Tiers: tiers, ComputePerBatch: computePerBatch,
			})
			if err != nil {
				return nil, err
			}
			for e := 0; e < epochs; e++ {
				l.Reset(e)
				for {
					if _, _, ok := l.Next(); !ok {
						break
					}
				}
			}
			hist := l.History()
			l.Close()
			cold, warm := hist[0], hist[len(hist)-1]
			if p.name == "direct-pfs" {
				baselineWarm = warm.Seconds
			}
			rep.Rows = append(rep.Rows, DataBenchRow{
				DatasetGB:     dsGB,
				Policy:        p.name,
				Prefetch:      p.prefetch,
				Shards:        man.NumShards(),
				ColdEpochS:    cold.Seconds,
				WarmEpochS:    warm.Seconds,
				WarmComputeS:  warm.ComputeSeconds,
				WarmStageS:    warm.StageSeconds,
				WarmStallFrac: warm.StallFraction,
				WarmDRAMHits:  warm.DRAMHits,
				WarmNVRAMHits: warm.NVRAMHits,
				WarmPFSReads:  warm.PFSReads,
				Efficiency:    warm.ComputeSeconds / warm.Seconds,
				SpeedupVsPFS:  baselineWarm / warm.Seconds,
			})
		}
	}
	return rep, nil
}

// e16Row finds one (dataset, policy) row in the report.
func e16Row(rep *DataBenchReport, dsGB float64, policy string) DataBenchRow {
	for _, r := range rep.Rows {
		if r.DatasetGB == dsGB && r.Policy == policy {
			return r
		}
	}
	panic(fmt.Sprintf("e16: no row for %gGB/%s", dsGB, policy))
}

// DataBench builds the committed tiered-staging profile and panic-checks the
// headline invariants, so a regression in the loader or the machine model
// can never silently regenerate a flat artifact:
//
//   - fits-DRAM (32 GB): a cached warm epoch is compute-bound, not stalled;
//   - exceeds-DRAM (256 GB): warm NVRAM staging beats direct-PFS by >10x and
//     the prefetched warm epoch sits at max(compute, stage-in);
//   - exceeds-NVRAM (2 TB): tiering still beats direct-PFS, but only partly —
//     the E7 crossover, reproduced by execution instead of arithmetic.
func DataBench() *DataBenchReport {
	rep, err := e16Sweep(1, 4)
	if err != nil {
		panic(err)
	}

	// Fits DRAM: the warm epoch is compute-bound.
	warm32 := e16Row(rep, 32, "dram-lru")
	if warm32.WarmDRAMHits != warm32.Shards {
		panic(fmt.Sprintf("e16: 32GB warm epoch not DRAM-resident: %+v", warm32))
	}
	if warm32.WarmStallFrac > 0.05 {
		panic(fmt.Sprintf("e16: 32GB warm epoch stalled %.3f despite fitting DRAM", warm32.WarmStallFrac))
	}

	// Exceeds DRAM, fits NVRAM: staging wins big over direct PFS, and with
	// prefetch the warm epoch collapses to max(compute, stage-in).
	nv := e16Row(rep, 256, "nvram-staged")
	direct := e16Row(rep, 256, "direct-pfs+prefetch")
	if !(nv.WarmEpochS*10 < direct.WarmEpochS) {
		panic(fmt.Sprintf("e16: NVRAM staging %.1fs not >10x faster than direct PFS %.1fs at 256GB",
			nv.WarmEpochS, direct.WarmEpochS))
	}
	bound := math.Max(nv.WarmComputeS, nv.WarmStageS)
	if nv.WarmEpochS < bound-1e-9 || nv.WarmEpochS > 1.05*bound {
		panic(fmt.Sprintf("e16: prefetched warm epoch %.2fs is not ~max(compute %.2fs, stage %.2fs)",
			nv.WarmEpochS, nv.WarmComputeS, nv.WarmStageS))
	}
	// Prefetch alone already overlaps stage-in with compute.
	sync := e16Row(rep, 256, "direct-pfs")
	if !(direct.WarmEpochS < sync.WarmEpochS) {
		panic("e16: prefetch did not overlap stage-in with compute on direct PFS")
	}

	// Exceeds NVRAM: tiering helps but cannot fully hide the PFS.
	t2000 := e16Row(rep, 2000, "tiered-dram-nvram")
	d2000 := e16Row(rep, 2000, "direct-pfs+prefetch")
	if !(t2000.WarmEpochS < 0.9*d2000.WarmEpochS) {
		panic(fmt.Sprintf("e16: tiering %.0fs did not beat direct PFS %.0fs beyond NVRAM capacity",
			t2000.WarmEpochS, d2000.WarmEpochS))
	}
	if t2000.WarmPFSReads == 0 {
		panic("e16: 2TB dataset claimed to fit entirely in 1TB NVRAM")
	}
	return rep
}

// E16Data runs the sweep for the suite table.
func E16Data(cfg Config) *trace.Table {
	t := trace.NewTable("E16 sharded streaming loader over tiered storage (executed E7)",
		"dataset-GB", "policy", "prefetch", "cold-s", "warm-s",
		"stall-frac", "dram/nvram/pfs", "efficiency")
	epochs := 4
	if cfg.Quick {
		epochs = 2
	}
	rep, err := e16Sweep(cfg.Seed, epochs)
	if err != nil {
		t.AddRow("error", err.Error(), "-", "-", "-", "-", "-", "-")
		return t
	}
	for _, r := range rep.Rows {
		t.AddRow(r.DatasetGB, r.Policy, r.Prefetch, r.ColdEpochS, r.WarmEpochS,
			r.WarmStallFrac,
			fmt.Sprintf("%d/%d/%d", r.WarmDRAMHits, r.WarmNVRAMHits, r.WarmPFSReads),
			r.Efficiency)
	}
	return t
}
