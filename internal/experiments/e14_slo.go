package experiments

import (
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/trace"
)

// E14LoadConfig is the deterministic diurnal + flash-crowd load profile E14
// runs: a piecewise-constant open-loop rate over a pool whose analytic
// capacity is 4000 rps (2 replicas x batch 8 / 4ms). The flash-crowd phase
// offers 2.25x capacity, so admission control sheds roughly half the traffic
// and the queue pushes latencies past the p99 objective — both error budgets
// burn fast enough for the multi-window rules to fire mid-phase and resolve
// after recovery. Exported so the golden-timeline test byte-compares the
// exact run the experiment reports.
func E14LoadConfig(quick bool, seed uint64) serve.LoadConfig {
	scale := time.Duration(1)
	if quick {
		scale = 2 // quick mode halves every phase
	}
	phases := []serve.LoadPhase{
		{Duration: 6 * time.Second / scale, RatePerSec: 800},  // overnight trough
		{Duration: 4 * time.Second / scale, RatePerSec: 2000}, // morning ramp
		{Duration: 6 * time.Second / scale, RatePerSec: 3000}, // daytime plateau (75% load)
		{Duration: 3 * time.Second / scale, RatePerSec: 9000}, // flash crowd (2.25x capacity)
		{Duration: 3 * time.Second / scale, RatePerSec: 3000}, // recovery
		{Duration: 6 * time.Second / scale, RatePerSec: 1600}, // evening decay
	}
	return serve.LoadConfig{
		Phases:    phases,
		Replicas:  2,
		MaxBatch:  8,
		MaxLinger: 2 * time.Millisecond,
		QueueCap:  128,
		Seed:      seed,
		Service:   serve.DefaultServiceModel(),
		SLO: []obs.Objective{
			{Name: "availability", Target: 0.999},
			{Name: "latency_p99", Target: 0.99, Latency: 0.025},
		},
		SLORules: obs.ScaledBurnRules(4 * time.Second / scale),
	}
}

// E14SLO reproduces the operational half of the paper's serving story: an
// inference service under a diurnal load curve with a flash crowd. Two
// declarative objectives (99.9% availability, 99% of answers within 25ms)
// are monitored by multi-window multi-burn-rate rules on the simulator's
// virtual clock, so the alert timeline — which rule fires when the crowd
// hits, and when it resolves after the crowd passes — is a pure function of
// the seed and is pinned byte-for-byte by a golden file.
//
// Expected shape: both objectives' fast rules fire within the flash-crowd
// phase (availability burns at ~500x budget while shedding, latency at
// ~100x while the queue is deep) and resolve once the short window goes
// clean during recovery; the calm phases fire nothing.
func E14SLO(cfg Config) *trace.Table {
	t := trace.NewTable("E14 SLO burn-rate alerting: diurnal + flash-crowd profile",
		"objective", "target", "good", "total", "ratio", "met", "fires", "resolves")

	rep, err := serve.RunLoad(E14LoadConfig(cfg.Quick, cfg.Seed))
	if err != nil {
		panic(err)
	}

	fires := map[string]int{}
	resolves := map[string]int{}
	for _, ev := range rep.SLOAlerts {
		if ev.State == "fire" {
			fires[ev.Objective]++
		} else {
			resolves[ev.Objective]++
		}
	}
	for _, st := range rep.SLOStatus {
		met := 0
		if st.Met {
			met = 1
		}
		t.AddRow(st.Objective, st.Target, st.Good, st.Total, st.Ratio, met,
			fires[st.Objective], resolves[st.Objective])
		if cfg.Obs.Enabled() {
			cfg.Obs.Emit("e14.slo", st.Ratio, map[string]float64{
				"target": st.Target,
				"fires":  float64(fires[st.Objective]),
			})
		}
	}
	return t
}
