package experiments

import (
	"math"

	"repro/internal/comm"
	"repro/internal/lowp"
	"repro/internal/machine"
	"repro/internal/trace"
)

// E4Hybrid sweeps every way of splitting a fixed 4096-worker machine across
// model-parallel stages (S), data-parallel replicas (R), and concurrent
// search evaluations (K), with S*R*K = 4096, and reports the wall-clock to
// finish a 512-configuration hyperparameter campaign on a large model.
//
// The per-configuration training cost uses the critical-batch-size law
// (total samples to target grows as 1 + B/Bcrit, so huge data-parallel
// batches waste samples) plus the machine model's pipeline and allreduce
// costs. The model is sized so it does NOT fit one node's HBM: pure data
// parallelism is infeasible, and pure model parallelism wastes the machine.
//
// Expected shape (paper claim): the winner is a combination — modest S
// (just enough stages to fit memory, on the fast group fabric), moderate R,
// large K. "They rely on a combination of model, data and search
// parallelism."
func E4Hybrid(cfg Config) *trace.Table {
	t := trace.NewTable("E4 model x data x search split of a 4096-worker machine",
		"stages(S)", "replicas(R)", "search(K)", "fits-HBM", "step-time",
		"steps-to-target", "per-config-h", "campaign-h")

	const workers = 4096
	const configs = 512
	m := machine.GPU2017(workers)

	// A model bigger than one node's HBM (16 GB): ~3B params fp32 ≈ 12 GB
	// weights + optimizer state ≈ 48 GB -> needs >= 4 stages.
	spec := machine.MLPSpec("large-candle-net", []int{
		16384, 16384, 16384, 16384, 16384, 16384, 8192, 1000})
	weightBytes := spec.Params * machine.BytesPerElement(lowp.FP32)
	// Adam keeps weights + grads + two moments ≈ 4x weights resident.
	residentBytes := 4 * weightBytes
	hbm := m.Node.NearTier().CapacityBytes

	// Critical-batch-size law: samplesToTarget(B) = Smin * (1 + B/Bcrit).
	const (
		sMin  = 2e6 // samples to target at tiny batch
		bCrit = 2048
		perB  = 8 // per-replica micro-batch
	)

	for s := 1; s <= workers; s *= 2 {
		for r := 1; s*r <= workers; r *= 2 {
			k := workers / (s * r)
			if k < 1 {
				continue
			}
			stageBytes := residentBytes / float64(s)
			fits := stageBytes <= hbm
			globalBatch := perB * r
			steps := sMin * (1/float64(globalBatch) + 1.0/bCrit)

			// One step: pipeline time for the per-replica batch, plus the
			// cross-replica gradient allreduce of one stage's weights.
			stepT := machine.ModelParallelStepTime(m, spec,
				machine.PipelineConfig{Stages: s, MicroBatches: 4}, perB, lowp.FP16)
			if r > 1 {
				gradBytes := weightBytes / float64(s)
				stepT += machine.CollectiveTime(m.FabricFor(r*s), comm.ARRing, r, gradBytes)
			}
			if !fits {
				// Spilling to DRAM: every step pays the weight traffic at
				// DRAM instead of HBM bandwidth — catastrophic but modelled.
				dram, _ := m.Node.TierByName("DRAM")
				stepT += (stageBytes - hbm) / dram.BandwidthBps
			}
			perConfig := steps * stepT
			campaign := perConfig * math.Ceil(float64(configs)/float64(k))
			if s*r*k == workers && (s <= 64) { // keep the table readable
				t.AddRow(s, r, k, fits, stepT, steps, perConfig/3600, campaign/3600)
			}
		}
	}
	return t
}
