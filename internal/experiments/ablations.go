package experiments

import (
	"math"
	"time"

	"repro/internal/comm"
	"repro/internal/hpo"
	"repro/internal/lowp"
	"repro/internal/machine"
	"repro/internal/nn"
	"repro/internal/parallel"
	"repro/internal/rng"
	"repro/internal/tensor"
	"repro/internal/trace"
)

// Ablations returns the design-choice ablation studies (A1-A3). These are
// not paper claims; they justify implementation decisions DESIGN.md calls
// out: which allreduce algorithm the trainer uses, whether gradients can be
// compressed on the wire, and how global batch trades against steps.
func Ablations() []Experiment {
	return []Experiment{
		{"A1", "ablation: allreduce algorithm choice (ring vs recursive-doubling vs tree vs Rabenseifner)", A1Allreduce},
		{"A2", "ablation: gradient wire precision in data-parallel SGD", A2GradCompression},
		{"A3", "ablation: global batch size vs steps-to-target (critical batch law)", A3BatchLaw},
		{"A4", "ablation: synchronous allreduce vs asynchronous parameter server", A4SyncVsAsync},
		{"A5", "ablation: simulated time-to-quality of search strategies (machine-model evaluation costs)", A5TimeToQuality},
	}
}

// A1Allreduce compares the four allreduce algorithms on the real goroutine
// runtime (measured bytes and wall time) and on the machine model across
// payload sizes — justifying ring as the default for gradient-sized
// payloads and recursive doubling for latency-bound small ones.
func A1Allreduce(cfg Config) *trace.Table {
	t := trace.NewTable("A1 allreduce algorithms: measured traffic + modelled time",
		"payload-KB", "ranks", "algorithm", "bytes/rank", "host-ms", "model-ms")

	m := machine.GPU2017(64)
	ranks := 8
	sizes := []int{256, 65536, 4194304 / 8} // 2 KB, 512 KB, 4 MB of floats
	if cfg.Quick {
		sizes = sizes[:2]
	}
	algos := []comm.AllReduceAlgorithm{
		comm.ARRing, comm.ARRecursiveDoubling, comm.ARTree, comm.ARRabenseifner}

	for _, n := range sizes {
		for _, algo := range algos {
			w := comm.NewWorld(ranks)
			start := time.Now()
			w.Run(func(r *comm.Rank) {
				data := make([]float64, n)
				for i := range data {
					data[i] = float64(r.ID())
				}
				r.AllReduce(data, algo)
			})
			hostMS := time.Since(start).Seconds() * 1000
			bytes := float64(8 * n)
			modelMS := machine.CollectiveTime(m.InterFabric, algo, ranks, bytes) * 1000
			t.AddRow(float64(8*n)/1024, ranks, algo.String(),
				w.Stats(0).BytesSent, hostMS, modelMS)
		}
	}
	return t
}

// A2GradCompression trains the same problem data-parallel with gradients
// rounded to narrower wire formats, reporting final quality and bytes on
// the wire — the knob behind "future DNNs may rely less on dense
// communication patterns".
func A2GradCompression(cfg Config) *trace.Table {
	t := trace.NewTable("A2 gradient wire precision in data-parallel SGD",
		"grad-precision", "wire-bytes/rank", "relative-bytes", "final-loss", "accuracy")

	root := rng.New(cfg.Seed).Split("a2")
	const n, din, classes = 512, 64, 2
	x := tensor.New(n, din)
	x.FillRandNorm(root.Split("x"), 1)
	labels := make([]int, n)
	w := make([]float64, din)
	for i := range w {
		w[i] = root.Split("w").Norm()
	}
	for i := 0; i < n; i++ {
		s := 0.0
		for j := 0; j < din; j++ {
			s += x.At(i, j) * w[j%din]
		}
		if math.Sin(s) > 0 {
			labels[i] = 1
		}
	}
	y := nn.OneHot(labels, classes)

	epochs := 10
	if cfg.Quick {
		epochs = 4
	}
	var baseBytes float64
	for _, p := range []lowp.Precision{lowp.FP64, lowp.FP32, lowp.FP16, lowp.INT8} {
		net := nn.MLP(din, []int{32, 16}, classes, nn.Tanh, rng.New(cfg.Seed+7))
		res, err := parallel.TrainDataParallel(net, x, y, parallel.DataParallelConfig{
			Replicas: 4, Algo: comm.ARRing,
			Loss:         nn.SoftmaxCELoss{},
			NewOptimizer: func() nn.Optimizer { return nn.NewAdam(0.01) },
			GlobalBatch:  64, Epochs: epochs,
			GradPrecision: p, RNG: rng.New(cfg.Seed + 8),
		})
		if err != nil {
			panic(err)
		}
		// The in-process transport always moves float64s; the wire-format
		// column reports what the rounded values would cost at p's width.
		wire := res.BytesPerRank * float64(p.Bits()) / 64
		if p == lowp.FP64 {
			baseBytes = wire
		}
		acc := nn.EvaluateClassifier(net, x, labels)
		t.AddRow(p.String(), wire, wire/baseBytes,
			res.EpochLoss[len(res.EpochLoss)-1], acc)
	}
	return t
}

// A3BatchLaw sweeps global batch size against (a) the critical-batch-size
// cost model and (b) real training of the hard tumor problem, reporting
// steps and samples needed to reach a target loss — the quantitative basis
// of E4's data-parallelism penalty.
func A3BatchLaw(cfg Config) *trace.Table {
	t := trace.NewTable("A3 global batch vs steps-to-target",
		"batch", "model-steps", "model-samples", "real-steps", "real-samples", "reached")

	const (
		sMin  = 4096 // model: samples to target at tiny batch
		bCrit = 64
	)
	root := rng.New(cfg.Seed).Split("a3")
	// Real problem: two-moon-ish nonlinear classification, target loss 0.30.
	const n, din = 1024, 16
	x := tensor.New(n, din)
	x.FillRandNorm(root.Split("x"), 1)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		s := x.At(i, 0)*x.At(i, 1) + 0.5*x.At(i, 2)
		if s > 0 {
			labels[i] = 1
		}
	}
	y := nn.OneHot(labels, 2)
	const target = 0.30
	maxEpochs := 120
	if cfg.Quick {
		maxEpochs = 40
	}

	batches := []int{8, 32, 128, 512}
	for _, b := range batches {
		modelSteps := sMin * (1.0/float64(b) + 1.0/bCrit)
		modelSamples := modelSteps * float64(b)

		net := nn.MLP(din, []int{32}, 2, nn.Tanh, rng.New(cfg.Seed+17))
		stepsPerEpoch := (n + b - 1) / b
		reached := false
		epochsUsed := maxEpochs
		_, err := nn.Train(net, x, y, nn.TrainConfig{
			Loss: nn.SoftmaxCELoss{}, Optimizer: nn.NewSGD(0.1),
			BatchSize: b, Epochs: maxEpochs,
			Shuffle: true, RNG: root.Split("sh"),
			OnEpoch: func(epoch int, loss float64) bool {
				if loss <= target && !reached {
					reached = true
					epochsUsed = epoch + 1
				}
				return !reached
			},
		})
		if err != nil {
			panic(err)
		}
		realSteps := epochsUsed * stepsPerEpoch
		t.AddRow(b, modelSteps, modelSamples, realSteps, realSteps*b, reached)
	}
	return t
}

// A4SyncVsAsync compares synchronous allreduce SGD with asynchronous
// parameter-server training at an equal update count, reporting quality and
// the staleness asynchrony introduces — the 2017-era design fork behind the
// paper's interest in communication fabrics.
func A4SyncVsAsync(cfg Config) *trace.Table {
	t := trace.NewTable("A4 synchronous allreduce vs asynchronous parameter server",
		"mode", "workers", "updates", "mean-staleness", "final-accuracy")

	root := rng.New(cfg.Seed).Split("a4")
	const n, din, classes = 512, 32, 2
	x := tensor.New(n, din)
	x.FillRandNorm(root.Split("x"), 1)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		if x.At(i, 0)*x.At(i, 1) > 0 {
			labels[i] = 1
		}
	}
	y := nn.OneHot(labels, classes)
	epochs := 16
	if cfg.Quick {
		epochs = 8
	}
	stepsPerEpoch := n / 64

	// Every row performs the same number of updates from the same batch
	// size (64 samples/update), so the only variable is HOW updates are
	// applied: synchronously (barrier, no staleness) or asynchronously
	// (no barrier, stale gradients growing with worker count).
	totalUpdates := epochs * stepsPerEpoch
	for _, workers := range []int{1, 4, 8} {
		syncNet := nn.MLP(din, []int{24}, classes, nn.Tanh, rng.New(cfg.Seed+3))
		_, err := parallel.TrainDataParallel(syncNet, x, y, parallel.DataParallelConfig{
			Replicas: workers, Algo: comm.ARRing,
			Loss:         nn.SoftmaxCELoss{},
			NewOptimizer: func() nn.Optimizer { return nn.NewAdam(0.01) },
			GlobalBatch:  64, Epochs: epochs, RNG: rng.New(cfg.Seed + 4),
		})
		if err != nil {
			panic(err)
		}
		t.AddRow("sync", workers, totalUpdates, 0.0,
			nn.EvaluateClassifier(syncNet, x, labels))

		asyncNet := nn.MLP(din, []int{24}, classes, nn.Tanh, rng.New(cfg.Seed+3))
		res, err := parallel.TrainAsync(asyncNet, x, y, parallel.AsyncConfig{
			Workers: workers, Loss: nn.SoftmaxCELoss{},
			NewOptimizer:   func() nn.Optimizer { return nn.NewAdam(0.01) },
			BatchPerWorker: 64,
			StepsPerWorker: totalUpdates / workers,
			RNG:            rng.New(cfg.Seed + 5),
		})
		if err != nil {
			panic(err)
		}
		t.AddRow("async", workers, res.Updates, res.MeanStaleness,
			nn.EvaluateClassifier(asyncNet, x, labels))
	}
	return t
}

// A5TimeToQuality re-runs the strategy comparison with a machine-model cost
// per evaluation (bigger layer widths and budgets train longer), reporting
// simulated time-to-best rather than evaluation-count budget. Hyperband's
// partial evaluations and the model-guided searchers' preference for small
// networks show up directly as wall-clock advantage — "efficient model
// training" and "intelligent search" interact.
func A5TimeToQuality(cfg Config) *trace.Table {
	t := trace.NewTable("A5 simulated time-to-quality of search strategies",
		"strategy", "trials", "sim-hours", "best-loss", "best-loss/sim-hour")

	m := machine.GPU2017(1)
	space := hpo.MustSpace(
		hpo.Param{Name: "lr", Kind: hpo.LogContinuous, Lo: 1e-4, Hi: 0.1},
		hpo.Param{Name: "units1", Kind: hpo.Integer, Lo: 8, Hi: 512},
		hpo.Param{Name: "units2", Kind: hpo.Integer, Lo: 8, Hi: 256},
		hpo.Param{Name: "dropout", Kind: hpo.Continuous, Lo: 0, Hi: 0.6},
	)
	// Synthetic response surface: optimum at lr=0.01, units1=128, units2=64,
	// dropout=0.2, with noise shrinking as budget grows.
	objective := func(c hpo.Config, budget float64, seed uint64) float64 {
		r := rng.New(seed)
		loss := 0.0
		d := math.Log10(c.Float("lr")) - math.Log10(0.01)
		loss += d * d
		u1 := math.Log2(float64(c.Int("units1"))) - 7
		loss += 0.3 * u1 * u1
		u2 := math.Log2(float64(c.Int("units2"))) - 6
		loss += 0.2 * u2 * u2
		dr := c.Float("dropout") - 0.2
		loss += dr * dr
		return loss + r.NormMeanStd(0, 0.02+0.25*(1-budget))
	}
	// Cost: train a 256-input MLP of the configured widths for
	// budget*20 epochs of 50k samples on the modelled node.
	costModel := func(c hpo.Config, budget float64) float64 {
		spec := machine.MLPSpec("cand", []int{256, c.Int("units1"), c.Int("units2"), 4})
		stepT := machine.StepComputeTime(m, spec, 64, lowp.FP32)
		steps := budget * 20 * 50000 / 64
		return stepT * steps
	}

	budget := 60.0
	if cfg.Quick {
		budget = 24
	}
	for _, strat := range hpo.AllStrategies() {
		res, err := strat.Search(objective, hpo.Options{
			Space: space, TotalBudget: budget, Parallelism: 8,
			RNG:       rng.New(cfg.Seed).Split("a5-" + strat.Name()),
			CostModel: costModel,
		})
		if err != nil {
			panic(err)
		}
		hours := res.SimTime / 3600
		perHour := 0.0
		if hours > 0 {
			perHour = res.Best.Loss / hours
		}
		t.AddRow(strat.Name(), len(res.Trials), hours, res.Best.Loss, perHour)
	}
	return t
}
