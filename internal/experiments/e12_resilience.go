package experiments

import (
	"time"

	"repro/internal/serve"
	"repro/internal/trace"
)

// E12Resilience maps the hedging frontier under a gray failure: one replica
// of the serving fleet runs 10x slow (fault.DegradedWorker in the load
// simulator's terms) while open-loop traffic arrives at a fraction of
// capacity. The experiment first measures a clean fleet to calibrate the
// hedge budget from a healthy latency quantile (p95), then replays the
// degraded fleet unhedged and hedged at budgets on both sides of that
// calibration point.
//
// Expected shape (paper claim): at 27k-GPU scale something is always slow,
// and a single gray straggler poisons the tail — every request unlucky
// enough to land on it inherits the 10x service time, so the unhedged p99
// sits an order of magnitude above the clean one. Hedging at the healthy
// p95 budget rescues exactly those requests (the duplicate lands on a
// healthy replica and wins), collapsing p99 back toward clean levels for a
// few percent of duplicated work. The budget knob trades the two: hedging
// late (4x) saves work but leaves more of the straggler's tail standing,
// while hedging too early (0.5x, below the healthy p50) is metastable —
// every request hedges, the single-request hedge batches destroy batching
// efficiency, and the duplicated load pushes the fleet past capacity. The
// collapse in that row is the measurement, not a bug: it is why hedge
// budgets are calibrated from a healthy quantile rather than set "low".
func E12Resilience(cfg Config) *trace.Table {
	t := trace.NewTable("E12 gray-failure resilience: hedging frontier under a 10x degraded replica",
		"scenario", "budget-ms", "p50-ms", "p95-ms", "p99-ms", "max-ms",
		"hedged", "hedge-wins", "dup-work-pct")

	const (
		replicas = 6
		factor   = 10
	)
	requests := 20000
	if cfg.Quick {
		requests = 4000
	}
	svc := serve.DefaultServiceModel()

	base := serve.LoadConfig{
		Requests:   requests,
		Replicas:   replicas,
		MaxBatch:   8,
		MaxLinger:  2 * time.Millisecond,
		QueueCap:   256,
		RatePerSec: 0.2 * svc.CapacityRPS(replicas, 8),
		Seed:       cfg.Seed,
		Service:    svc,
	}

	run := func(c serve.LoadConfig) *serve.LoadReport {
		rep, err := serve.RunLoad(c)
		if err != nil {
			panic(err)
		}
		return rep
	}
	row := func(name string, budget time.Duration, rep *serve.LoadReport) {
		t.AddRow(name, float64(budget)/float64(time.Millisecond),
			rep.LatencyP50Ms, rep.LatencyP95Ms, rep.LatencyP99Ms, rep.LatencyMaxMs,
			rep.Hedged, rep.HedgeWins, rep.DuplicatedWorkPct)
	}

	// Calibration: the healthy fleet's p95 is the seeded hedge budget.
	clean := run(base)
	budget := time.Duration(clean.LatencyP95Ms * float64(time.Millisecond))
	row("clean", 0, clean)

	// The gray failure: replica 0 serves every batch 10x slow.
	degraded := base
	degraded.DegradeFactor = factor
	degraded.DegradeReplica = 0
	row("degraded-unhedged", 0, run(degraded))

	// The frontier: hedge budgets on both sides of the calibrated p95.
	for _, mult := range []float64{0.5, 1, 2, 4} {
		hedged := degraded
		hedged.HedgeAfter = time.Duration(float64(budget) * mult)
		rep := run(hedged)
		name := "hedged-0.5x-p95"
		switch mult {
		case 1:
			name = "hedged-1x-p95"
		case 2:
			name = "hedged-2x-p95"
		case 4:
			name = "hedged-4x-p95"
		}
		row(name, hedged.HedgeAfter, rep)

		if cfg.Obs.Enabled() {
			cfg.Obs.Emit("e12.frontier", rep.LatencyP99Ms, map[string]float64{
				"budget_ms":    float64(hedged.HedgeAfter) / float64(time.Millisecond),
				"dup_work_pct": rep.DuplicatedWorkPct,
			})
		}
	}
	return t
}
