package experiments

import (
	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/trace"
)

// E9Campaign simulates the paper's headline scenario — a search over tens
// of thousands of model configurations on a 1024-node machine — under the
// three campaign schedulers, at two levels of evaluation-cost
// heterogeneity.
//
// Expected shape (paper claim): static partitioning strands nodes behind
// stragglers; a central dynamic queue fixes imbalance but its manager
// saturates at scale; the hierarchical scheduler keeps utilisation high —
// "HPC architectures that can support these large-scale intelligent search
// methods ... are needed".
func E9Campaign(cfg Config) *trace.Table {
	t := trace.NewTable("E9 20k-configuration campaign on 1024 nodes",
		"configs", "sigma", "scheduler", "makespan-h", "ideal-h",
		"utilization", "slowdown-vs-ideal")

	configs := 20000
	if cfg.Quick {
		configs = 5000
	}
	for _, sigma := range []float64{0.4, 1.2} {
		for _, s := range []core.SchedulerKind{
			core.StaticPartition, core.DynamicQueue, core.HierarchicalQueue} {
			res, err := core.RunCampaign(core.CampaignConfig{
				Configs: configs, Nodes: 1024, GroupSize: 64,
				MeanEvalTime: 120, EvalTimeSigma: sigma, MaxEvalTime: 1200,
				DispatchOverhead: 0.05,
				Scheduler:        s,
				RNG:              rng.New(cfg.Seed).Split("e9"),
				Obs:              cfg.Obs,
			})
			if err != nil {
				panic(err)
			}
			t.AddRow(configs, sigma, s.String(), res.Makespan/3600,
				res.IdealMakespan/3600, res.Utilization,
				res.Makespan/res.IdealMakespan)
		}
	}
	return t
}
