package experiments

import (
	"encoding/json"
	"io"
	"math"
	"time"

	"repro/internal/comm"
	"repro/internal/lowp"
	"repro/internal/machine"
	"repro/internal/nn"
	"repro/internal/parallel"
	"repro/internal/rng"
	"repro/internal/tensor"
	"repro/internal/trace"
)

// E13 models and measures DDP-style bucketed, overlapped gradient allreduce
// with error-feedback compression.
//
// Model side: backward produces gradients output-layer-first, so buckets of
// gradient bytes become ready while backward is still running for earlier
// layers. A dedicated comm channel reduces buckets serially as they land:
//
//	start_b = max(ready_b, end_{b-1});  end_b = start_b + T_coll(bucketBytes)
//
// The communication left on the critical path is exposed = max(0, end_last -
// T_bwd), so step = T_fwd + T_bwd + exposed, versus the flat baseline's
// step = T_fwd + T_bwd + T_coll(allBytes). One bucket degenerates exactly to
// flat (nothing is ready before backward ends); too many buckets pay the
// per-collective latency alpha once per bucket — the sweep exposes the
// U-shape between the two.
//
// Compression rides the same timeline with a different wire cost: the
// error-feedback wire (top-k or packed int8, wire length taken from the
// actual lowp.GradCompressor) is value-independent, so it is exchanged with
// a ring allgather of p fixed-size segments and each rank reduces locally —
// the construction internal/parallel really executes.

// e13Widths is a CANDLE-style fully-connected tower: a wide input embedding
// into a deep stack of uniform dense layers (~28M parameters). Uniform layer
// sizes matter here: buckets never split a layer's gradient (matching
// parallel.buildBucketPlan's tensor granularity), so one dominant layer
// would cap the useful bucket count at a handful.
var e13Widths = func() []int {
	w := []int{4096}
	for i := 0; i < 24; i++ {
		w = append(w, 1024)
	}
	return append(w, 2)
}()

// e13Layer is one dense layer's share of the modelled backward pass.
type e13Layer struct {
	bytes  float64 // gradient payload (params * bytes/elem)
	bwdSec float64 // backward compute time attributed to this layer
}

// e13Layers splits spec-level compute across layers proportional to flops.
// Backward is 2/3 of TrainFlopsPerStep's 3x-forward total.
func e13Layers(m *machine.Machine, widths []int, perNodeBatch int, prec lowp.Precision) (layers []e13Layer, fwdSec, bwdSec float64) {
	spec := machine.MLPSpec("e13-mlp", widths)
	compute := machine.StepComputeTime(m, spec, perNodeBatch, prec)
	fwdSec = compute / 3
	bwdSec = compute - fwdSec
	var totalFlops float64
	for i := 0; i+1 < len(widths); i++ {
		totalFlops += 2 * float64(widths[i]) * float64(widths[i+1])
	}
	for i := 0; i+1 < len(widths); i++ {
		in, out := float64(widths[i]), float64(widths[i+1])
		layers = append(layers, e13Layer{
			bytes:  (in*out + out) * machine.BytesPerElement(prec),
			bwdSec: bwdSec * (2 * in * out) / totalFlops,
		})
	}
	return layers, fwdSec, bwdSec
}

// e13Bucket is one modelled gradient bucket: payload plus the backward
// timestamp at which its last gradient lands.
type e13Bucket struct {
	bytes, ready float64
}

// e13PlanBuckets walks layers in backward order (output first), closing a
// bucket whenever it reaches the even byte target — the same greedy policy
// parallel.buildBucketPlan applies to tensors.
func e13PlanBuckets(layers []e13Layer, nBuckets int) []e13Bucket {
	var total float64
	for _, l := range layers {
		total += l.bytes
	}
	target := total / float64(nBuckets)
	var out []e13Bucket
	elapsed := 0.0
	cur := e13Bucket{}
	for i := len(layers) - 1; i >= 0; i-- {
		elapsed += layers[i].bwdSec
		cur.bytes += layers[i].bytes
		cur.ready = elapsed
		if cur.bytes >= target-1e-9 && len(out) < nBuckets-1 {
			out = append(out, cur)
			cur = e13Bucket{}
		}
	}
	if cur.bytes > 0 {
		out = append(out, cur)
	}
	return out
}

// e13Chain runs the buckets through the serial comm channel and returns the
// total collective time and the part left exposed past the backward pass.
func e13Chain(buckets []e13Bucket, bwdSec float64, cost func(bytes float64) float64) (commSec, exposedSec float64) {
	end := 0.0
	for _, b := range buckets {
		c := cost(b.bytes)
		commSec += c
		start := math.Max(b.ready, end)
		end = start + c
	}
	return commSec, math.Max(0, end-bwdSec)
}

// e13AllGatherTime is the ring-allgather alpha-beta cost: p-1 steps each
// moving one rank's fixed-size wire segment.
func e13AllGatherTime(f machine.Fabric, p int, wireBytes float64) float64 {
	if p <= 1 {
		return 0
	}
	return float64(p-1) * (f.LatencySec + wireBytes/f.BandwidthBps)
}

// CommBenchRow is one configuration's modelled step breakdown.
type CommBenchRow struct {
	Label     string  `json:"label"`
	Buckets   int     `json:"buckets"`
	WireRatio float64 `json:"wire_ratio"` // raw/wire words; 1 = uncompressed
	CommMs    float64 `json:"comm_ms"`    // total collective time per step
	ExposedMs float64 `json:"exposed_ms"` // comm left on the critical path
	Overlap   float64 `json:"overlap_fraction"`
	StepMs    float64 `json:"step_ms"`
	Speedup   float64 `json:"speedup_vs_flat"`
}

// CommBenchReport is the committed BENCH_comm.json document: the modelled
// step-time frontier for bucketed overlap and error-feedback compression on
// one FutureDNN group. Every number is closed-form machine-model output —
// same binary, same bytes — which is what lets the artifact live in the
// repository with a byte-compare test.
type CommBenchReport struct {
	Machine      string         `json:"machine"`
	Fabric       string         `json:"fabric"`
	Ranks        int            `json:"ranks"`
	Algo         string         `json:"algo"`
	Model        string         `json:"model"`
	Params       float64        `json:"params"`
	GradMB       float64        `json:"grad_mb"`
	PerNodeBatch int            `json:"per_node_batch"`
	ComputeMs    float64        `json:"compute_ms"`
	BackwardMs   float64        `json:"backward_ms"`
	Flat         CommBenchRow   `json:"flat"`
	Bucketed     []CommBenchRow `json:"bucketed"`
	Compressed   []CommBenchRow `json:"compressed"`
	BestBuckets  int            `json:"best_buckets"`
	BestSpeedup  float64        `json:"best_speedup"`
}

// WriteJSON writes the report as indented JSON (stable field order).
func (r *CommBenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// CommBench builds the committed gradient-communication profile: one
// FutureDNN group (8 ranks on the 300 GB/s group fabric), the ~36M-parameter
// CANDLE-style MLP, fp32 gradients reduced with Rabenseifner. It panics if
// the modelled frontier loses its headline shape — bucketed overlap must
// beat flat and compression must beat uncompressed — so a regression in the
// model can never silently regenerate a flat artifact.
func CommBench() *CommBenchReport {
	const (
		p            = 8
		perNodeBatch = 256
	)
	m := machine.FutureDNN(p)
	f := m.FabricFor(p)
	algo := comm.ARRabenseifner
	prec := lowp.FP32

	layers, fwdSec, bwdSec := e13Layers(m, e13Widths, perNodeBatch, prec)
	spec := machine.MLPSpec("e13-mlp", e13Widths)
	gradBytes := spec.Params * machine.BytesPerElement(prec)

	flatComm := machine.CollectiveTime(f, algo, p, gradBytes)
	flatStep := fwdSec + bwdSec + flatComm
	ms := func(s float64) float64 { return s * 1e3 }

	rep := &CommBenchReport{
		Machine:      m.Name,
		Fabric:       f.Name,
		Ranks:        p,
		Algo:         algo.String(),
		Model:        spec.Name,
		Params:       spec.Params,
		GradMB:       gradBytes / (1 << 20),
		PerNodeBatch: perNodeBatch,
		ComputeMs:    ms(fwdSec + bwdSec),
		BackwardMs:   ms(bwdSec),
		Flat: CommBenchRow{Label: "flat-allreduce", Buckets: 1, WireRatio: 1,
			CommMs: ms(flatComm), ExposedMs: ms(flatComm),
			StepMs: ms(flatStep), Speedup: 1},
	}

	row := func(label string, nBuckets int, ratio float64, commSec, exposedSec float64) CommBenchRow {
		step := fwdSec + bwdSec + exposedSec
		overlap := 0.0
		if commSec > 0 {
			overlap = math.Min(1, math.Max(0, 1-exposedSec/commSec))
		}
		return CommBenchRow{Label: label, Buckets: nBuckets, WireRatio: ratio,
			CommMs: ms(commSec), ExposedMs: ms(exposedSec), Overlap: overlap,
			StepMs: ms(step), Speedup: flatStep / step}
	}

	for _, nb := range []int{1, 2, 4, 8, 16, 32, 64, 128, 256} {
		buckets := e13PlanBuckets(layers, nb)
		if n := len(rep.Bucketed); n > 0 && rep.Bucketed[n-1].Buckets == len(buckets) {
			continue // layer granularity exhausted — same effective plan
		}
		commSec, exposedSec := e13Chain(buckets, bwdSec, func(b float64) float64 {
			return machine.CollectiveTime(f, algo, p, b)
		})
		r := row("bucketed", len(buckets), 1, commSec, exposedSec)
		rep.Bucketed = append(rep.Bucketed, r)
		if r.Speedup > rep.BestSpeedup {
			rep.BestSpeedup, rep.BestBuckets = r.Speedup, r.Buckets
		}
	}

	// Compression rows at a mid-sweep bucket count. The wire length per
	// bucket comes from the real lowp encoder (wire words per raw word is
	// value-independent), and the exchange is the allgather the compressed
	// trainer path actually performs.
	const compBuckets = 16
	for _, c := range []struct {
		label string
		kind  lowp.CompressKind
		topK  float64
	}{
		{"topk-10pct", lowp.CompressTopK, 0.10},
		{"int8", lowp.CompressInt8, 0},
	} {
		gc := lowp.NewGradCompressor(c.kind, c.topK)
		buckets := e13PlanBuckets(layers, compBuckets)
		commSec, exposedSec := e13Chain(buckets, bwdSec, func(b float64) float64 {
			n := int(b / machine.BytesPerElement(prec))
			wire := b * float64(gc.WireLen(n)) / float64(n)
			return e13AllGatherTime(f, p, wire)
		})
		n := int(gradBytes / machine.BytesPerElement(prec) / compBuckets)
		ratio := float64(n) / float64(gc.WireLen(n))
		rep.Compressed = append(rep.Compressed,
			row(c.label, len(buckets), ratio, commSec, exposedSec))
	}

	if rep.BestSpeedup <= 1 {
		panic("experiments: CommBench lost its shape: bucketed overlap no faster than flat")
	}
	best := rep.Bucketed[0]
	for _, r := range rep.Bucketed {
		if r.Speedup > best.Speedup {
			best = r
		}
	}
	if best.Overlap <= 0 {
		panic("experiments: CommBench lost its shape: no modelled overlap at the best bucket count")
	}
	for _, r := range rep.Compressed {
		if r.StepMs >= rep.Flat.StepMs {
			panic("experiments: CommBench lost its shape: compressed step no faster than flat")
		}
	}
	return rep
}

// E13Comm reports the bucketed-overlap frontier two ways: the CommBench
// machine model (engine "model"), and real goroutine-level data-parallel
// training on this host (engine "host") where comm, exposed-comm and the
// overlap fraction are measured by the bucket reducer itself. The host rows
// substitute wall-clock measurement for the model's closed forms — same
// timeline construction, so the shape (overlap > 0, exposed < total comm)
// must survive the substitution even though host magnitudes are hardware-
// dependent and therefore asserted only as shapes, not values.
func E13Comm(cfg Config) *trace.Table {
	t := trace.NewTable("E13 overlapped bucketed gradient allreduce with error-feedback compression",
		"engine", "scenario", "ranks", "buckets", "wire-ratio",
		"comm-ms", "exposed-ms", "overlap", "step-ms", "speedup")

	rep := CommBench()
	add := func(r CommBenchRow) {
		t.AddRow("model", r.Label, rep.Ranks, r.Buckets, r.WireRatio,
			r.CommMs, r.ExposedMs, r.Overlap, r.StepMs, r.Speedup)
	}
	add(rep.Flat)
	for _, r := range rep.Bucketed {
		add(r)
	}
	for _, r := range rep.Compressed {
		add(r)
	}

	// Host runs: 4 goroutine replicas, measured bucket metrics. The net is
	// deep and wide enough that backward compute per step dwarfs one
	// bucket's channel allreduce — otherwise there is nothing to hide the
	// communication behind and the measured overlap collapses to zero.
	root := rng.New(cfg.Seed).Split("e13")
	din, classes := 128, 8
	nSamples := 512
	epochs := 2
	if cfg.Quick {
		nSamples, epochs = 256, 1
	}
	x := tensor.New(nSamples, din)
	x.FillRandNorm(root.Split("x"), 1)
	labels := make([]int, nSamples)
	for i := range labels {
		labels[i] = i % classes
	}
	y := nn.OneHot(labels, classes)

	// Pin each rank's tensor kernels to one core (as E3's host runs do):
	// oversubscribed kernel workers make the ranks jitter against each other,
	// and that skew — not wire time — then dominates every collective,
	// drowning the overlap signal the measurement exists to show.
	savedProcs := tensor.MaxProcs
	tensor.MaxProcs = 1
	defer func() { tensor.MaxProcs = savedProcs }()

	base := parallel.DataParallelConfig{
		Replicas:     4,
		Algo:         comm.ARTree,
		Loss:         nn.SoftmaxCELoss{},
		NewOptimizer: func() nn.Optimizer { return nn.NewSGD(0.05) },
		GlobalBatch:  128,
		Epochs:       epochs,
		Obs:          cfg.Obs,
	}
	run := func(mut func(*parallel.DataParallelConfig)) (*parallel.DataParallelResult, float64) {
		net := nn.MLP(din, []int{256, 256, 192, 128}, classes, nn.ReLU, rng.New(cfg.Seed))
		c := base
		c.RNG = rng.New(cfg.Seed + 1)
		if mut != nil {
			mut(&c)
		}
		start := time.Now()
		res, err := parallel.TrainDataParallel(net, x, y, c)
		if err != nil {
			panic(err)
		}
		return res, time.Since(start).Seconds() / float64(res.Steps)
	}

	_, flatStep := run(nil)
	hostRow := func(scenario string, res *parallel.DataParallelResult, stepSec float64) {
		steps := float64(res.Steps)
		ratio := res.CompressionRatio
		if ratio == 0 {
			ratio = 1
		}
		t.AddRow("host", scenario, base.Replicas, res.Buckets, ratio,
			res.CommSeconds/steps*1e3, res.ExposedCommSeconds/steps*1e3,
			res.OverlapFraction, stepSec*1e3, flatStep/stepSec)
	}
	t.AddRow("host", "flat", base.Replicas, 0, 1.0, 0.0, 0.0, 0.0, flatStep*1e3, 1.0)

	const hostBucketElems = 16384
	res, step := run(func(c *parallel.DataParallelConfig) {
		c.BucketElems = hostBucketElems
	})
	hostRow("bucketed", res, step)
	res, step = run(func(c *parallel.DataParallelConfig) {
		c.BucketElems, c.Overlap = hostBucketElems, true
	})
	hostRow("bucketed+overlap", res, step)
	if cfg.Obs.Enabled() {
		cfg.Obs.Emit("e13.host_overlap", res.OverlapFraction, nil)
	}
	res, step = run(func(c *parallel.DataParallelConfig) {
		c.BucketElems, c.Overlap, c.Compress = hostBucketElems, true, lowp.CompressInt8
	})
	hostRow("overlap+int8", res, step)
	return t
}
