package experiments

import (
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/lowp"
	"repro/internal/machine"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/trace"
)

// E1Precision trains the tumor classifier and the drug-response regressor
// at every emulated precision, reporting learned quality (real training on
// the host) and the training-step speedup/energy the machine model
// attributes to each precision on a GPU2017 node.
//
// Expected shape (paper claim): fp32/bf16 match fp64 quality; fp16 needs
// loss scaling; int8 degrades; modelled throughput and energy improve
// monotonically as precision shrinks.
func E1Precision(cfg Config) *trace.Table {
	t := trace.NewTable("E1 precision sufficiency — quality vs modelled speed/energy",
		"workload", "precision", "loss-scale", "test-metric", "train-loss",
		"host-s", "model-step-ms", "model-speedup", "model-energy-J")

	epochs := 12
	if cfg.Quick {
		epochs = 5
	}
	root := rng.New(cfg.Seed).Split("e1")
	m := machine.GPU2017(1)

	type job struct {
		workload string
		prec     lowp.Precision
		scale    bool
	}
	jobs := []job{
		{"tumor-hard", lowp.FP64, false},
		{"tumor-hard", lowp.FP32, false},
		{"tumor-hard", lowp.BF16, false},
		{"tumor-hard", lowp.FP16, false},
		{"tumor-hard", lowp.FP16, true},
		{"tumor-hard", lowp.INT8, false},
		{"drugresponse", lowp.FP64, false},
		{"drugresponse", lowp.FP32, false},
		{"drugresponse", lowp.BF16, false},
		{"drugresponse", lowp.FP16, true},
	}

	// Modelled step time baseline at fp64 for the speedup column.
	base := map[string]float64{}
	for _, j := range jobs {
		w, err := core.ByName(j.workload)
		if err != nil {
			panic(err)
		}
		train, test := w.Generate(core.Tiny, root.Split("data-"+w.Name))
		hp := w.DefaultConfig()
		net := w.NewModel(hp, train.Dim(), train.OutDim(), root.Split("init-"+w.Name))

		var loss nn.Loss = nn.MSELoss{}
		if w.Classification {
			loss = nn.SoftmaxCELoss{}
		}
		start := time.Now()
		res, err := nn.Train(net, train.X, train.Y, nn.TrainConfig{
			Loss: loss, Optimizer: nn.NewAdam(hp.Float("lr")),
			BatchSize: 32, Epochs: epochs,
			Precision: j.prec, LossScale: j.scale,
			Shuffle: true, RNG: root.Split("sh-" + w.Name + j.prec.String()),
		})
		if err != nil {
			panic(err)
		}
		elapsed := time.Since(start).Seconds()

		metric := math.NaN()
		if w.Classification {
			metric = nn.EvaluateClassifier(net, test.X, test.Labels)
		} else {
			metric = nn.EvaluateRegression(net, test.X, test.Y)
		}

		spec := specForNet(w.Name, net)
		stepT := machine.StepComputeTime(m, spec, 32, j.prec)
		stepE := machine.StepComputeEnergy(m, spec, 32, j.prec)
		if j.prec == lowp.FP64 {
			base[w.Name] = stepT
		}
		speedup := base[w.Name] / stepT
		scaleStr := "no"
		if j.scale {
			scaleStr = "yes"
		}
		t.AddRow(w.Name, j.prec.String(), scaleStr, metric, res.FinalLoss,
			elapsed, stepT*1000, speedup, stepE)
	}
	return t
}

// specForNet derives a machine.ModelSpec from a real network's dense layers.
func specForNet(name string, net *nn.Net) machine.ModelSpec {
	spec := machine.ModelSpec{Name: name, Layers: len(net.Layers)}
	for _, l := range net.Layers {
		for _, p := range l.Params() {
			spec.Params += float64(p.Len())
		}
		if d, ok := l.(*nn.Dense); ok {
			spec.FlopsPerSample += 2 * float64(d.In) * float64(d.Out)
			spec.ActivationsPerSample += float64(d.Out)
		}
	}
	if spec.FlopsPerSample == 0 {
		spec.FlopsPerSample = 2 * spec.Params
		spec.ActivationsPerSample = spec.Params / 100
	}
	return spec
}
