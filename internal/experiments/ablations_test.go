package experiments

import (
	"math"
	"strconv"
	"strings"
	"testing"
)

func runAblation(t *testing.T, id string) string {
	t.Helper()
	for _, e := range Ablations() {
		if e.ID == id {
			tb := e.Run(Config{Quick: true, Seed: 1})
			if tb.NumRows() == 0 {
				t.Fatalf("%s produced no rows", id)
			}
			return tb.String()
		}
	}
	t.Fatalf("ablation %s missing", id)
	return ""
}

func TestAblationRegistry(t *testing.T) {
	abl := Ablations()
	if len(abl) != 5 {
		t.Fatalf("expected 5 ablations, got %d", len(abl))
	}
	for i, e := range abl {
		want := "A" + strconv.Itoa(i+1)
		if e.ID != want || e.Claim == "" || e.Run == nil {
			t.Fatalf("ablation %d malformed: %+v", i, e.ID)
		}
	}
}

func TestA1Shape(t *testing.T) {
	out := runAblation(t, "A1")
	rows := tableRows(out)
	// For the large payload, ring must move fewer bytes per rank than
	// recursive doubling (bandwidth optimality), and the model must agree
	// that ring's time beats recursive doubling.
	var ringBytes, rdBytes float64
	var ringModel, rdModel float64
	for _, r := range rows {
		if r[0] != "512.0" {
			continue
		}
		switch r[2] {
		case "ring":
			ringBytes = f(t, r[3])
			ringModel = f(t, r[5])
		case "recursive-doubling":
			rdBytes = f(t, r[3])
			rdModel = f(t, r[5])
		}
	}
	if ringBytes == 0 || rdBytes == 0 {
		t.Fatalf("missing rows:\n%s", out)
	}
	if ringBytes >= rdBytes {
		t.Fatalf("ring bytes %v not below recursive doubling %v", ringBytes, rdBytes)
	}
	if ringModel >= rdModel {
		t.Fatalf("modelled ring time %v not below recursive doubling %v", ringModel, rdModel)
	}
}

func TestA2Shape(t *testing.T) {
	out := runAblation(t, "A2")
	rows := tableRows(out)
	if len(rows) != 4 {
		t.Fatalf("expected 4 precisions, got %d", len(rows))
	}
	// Relative bytes must shrink with precision; fp32 and fp16 gradients
	// must not destroy accuracy relative to fp64.
	var acc64, acc16 float64
	for _, r := range rows {
		switch r[0] {
		case "fp64":
			if f(t, r[2]) != 1 {
				t.Fatal("fp64 relative bytes != 1")
			}
			acc64 = f(t, r[4])
		case "fp16":
			if f(t, r[2]) != 0.25 {
				t.Fatalf("fp16 relative bytes %v", f(t, r[2]))
			}
			acc16 = f(t, r[4])
		}
	}
	if acc16 < acc64-0.15 {
		t.Fatalf("fp16 gradients collapsed accuracy: %v vs %v", acc16, acc64)
	}
}

func TestA3Shape(t *testing.T) {
	out := runAblation(t, "A3")
	rows := tableRows(out)
	// Model: steps fall with batch but samples rise past the critical batch.
	var steps8, steps512, samples8, samples512 float64
	for _, r := range rows {
		if r[0] == "8" {
			steps8, samples8 = f(t, r[1]), f(t, r[2])
		}
		if r[0] == "512" {
			steps512, samples512 = f(t, r[1]), f(t, r[2])
		}
	}
	if steps512 >= steps8 {
		t.Fatal("bigger batch should need fewer steps")
	}
	if samples512 <= samples8 {
		t.Fatal("bigger batch should waste samples past the critical batch")
	}
	if !strings.Contains(out, "true") {
		t.Fatal("no real run reached the target loss")
	}
}

func TestA4Shape(t *testing.T) {
	out := runAblation(t, "A4")
	rows := tableRows(out)
	if len(rows) != 6 {
		t.Fatalf("expected 6 rows, got %d", len(rows))
	}
	for _, r := range rows {
		acc := f(t, r[4])
		if acc < 0.5 {
			t.Fatalf("%s/%s accuracy %.3f below chance", r[0], r[1], acc)
		}
		if r[0] == "sync" && f(t, r[3]) != 0 {
			t.Fatal("sync training reported staleness")
		}
	}
}

func TestA5Shape(t *testing.T) {
	out := runAblation(t, "A5")
	rows := tableRows(out)
	if len(rows) != 7 {
		t.Fatalf("expected 7 strategies, got %d", len(rows))
	}
	var randomTrials, hyperbandTrials int
	for _, r := range rows {
		if f(t, r[2]) <= 0 {
			t.Fatalf("%s has no simulated time", r[0])
		}
		if best := f(t, r[3]); math.IsNaN(best) || best < 0 {
			t.Fatalf("%s best loss %v", r[0], best)
		}
		switch r[0] {
		case "random":
			randomTrials, _ = strconv.Atoi(r[1])
		case "hyperband":
			hyperbandTrials, _ = strconv.Atoi(r[1])
		}
	}
	// Hyperband's partial budgets buy far more trials from the same
	// budget and therefore the same order of simulated time.
	if hyperbandTrials <= randomTrials {
		t.Fatalf("hyperband trials %d not above random %d", hyperbandTrials, randomTrials)
	}
}
