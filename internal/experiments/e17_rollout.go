package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/trace"
)

// E17 measures the self-healing serving control plane end-to-end on the
// deterministic load simulator: versioned rollout with canary/shadow traffic
// and SLO-breach auto-rollback on one axis, health-driven autoscaling
// against a flash crowd on the other. Six seeded scenarios make up the
// committed BENCH_rollout.json:
//
//   - shadow_catch: a 50%-broken candidate deploys behind a shadow phase.
//     The duplicated traffic burns the canary error budget and the page
//     rule reverts the rollout before a single live request routes to it.
//   - bad_deploy: the same candidate without a shadow phase. The first
//     canary stage (5% of traffic) exposes it; detection and revert are
//     bounded, and the blast radius — live requests the bad version
//     answered — stays at a few percent of the run.
//   - good_deploy: a healthy candidate walks every stage and promotes.
//   - flash_fixed_small / flash_fixed_big / flash_autoscaled: the same
//     diurnal-plus-flash-crowd load against a fixed minimal fleet (breaches
//     the availability SLO), a fixed overprovisioned fleet (holds it by
//     paying for peak all day), and the autoscaler (holds it at a fraction
//     of the overprovisioned replica-seconds).
const (
	e17Requests = 12000 // rollout scenarios: 6s of virtual time at 2000 rps
	e17QuickReq = 3000
)

// e17Target is the availability objective every flash-crowd run carries.
const e17Target = 0.999

// RolloutBenchReport is the committed BENCH_rollout.json document. Every
// number is virtual-clock output of a seeded run, which is what lets the
// artifact live in the repository with a byte-compare test.
type RolloutBenchReport struct {
	Seed     uint64 `json:"seed"`
	Requests int    `json:"requests"`

	ShadowCatch *serve.LoadReport `json:"shadow_catch"`
	BadDeploy   *serve.LoadReport `json:"bad_deploy"`
	GoodDeploy  *serve.LoadReport `json:"good_deploy"`

	FlashFixedSmall *serve.LoadReport `json:"flash_fixed_small"`
	FlashFixedBig   *serve.LoadReport `json:"flash_fixed_big"`
	FlashAutoscaled *serve.LoadReport `json:"flash_autoscaled"`
}

// WriteJSON writes the report as indented JSON (stable field order).
func (r *RolloutBenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// e17RolloutCfg is one deploy scenario: an open loop at 2000 rps with a
// candidate (carrying fault) deployed 200ms in.
func e17RolloutCfg(seed uint64, requests int, cand fault.VersionFault, shadow time.Duration) serve.LoadConfig {
	return serve.LoadConfig{
		Requests:   requests,
		RatePerSec: 2000,
		Replicas:   2,
		MaxBatch:   8,
		MaxLinger:  2 * time.Millisecond,
		QueueCap:   64,
		Seed:       seed,
		CtrlTick:   100 * time.Millisecond,
		Rollout: &serve.RolloutSim{
			DeployAt:  200 * time.Millisecond,
			Candidate: cand,
			Config: serve.RolloutConfig{
				Stages: []serve.RolloutStage{
					{Fraction: 0.05, Hold: 150 * time.Millisecond},
					{Fraction: 0.25, Hold: 150 * time.Millisecond},
					{Fraction: 1.00, Hold: 150 * time.Millisecond},
				},
				Shadow:     shadow,
				Rules:      obs.ScaledBurnRules(time.Second),
				DrainGrace: 100 * time.Millisecond,
			},
		},
	}
}

// e17FlashCfg is the flash-crowd profile: calm, a 6x crowd, calm again,
// with a completion deadline and an availability SLO so overload shows up
// as budget burn rather than unbounded queueing.
func e17FlashCfg(seed uint64, replicas int, auto *serve.AutoscaleConfig) serve.LoadConfig {
	return serve.LoadConfig{
		Phases: []serve.LoadPhase{
			{Duration: time.Second, RatePerSec: 500},
			{Duration: time.Second, RatePerSec: 3000},
			{Duration: 2 * time.Second, RatePerSec: 500},
		},
		Replicas:  replicas,
		MaxBatch:  8,
		MaxLinger: 2 * time.Millisecond,
		QueueCap:  64,
		Deadline:  50 * time.Millisecond,
		Seed:      seed,
		CtrlTick:  100 * time.Millisecond,
		SLO:       []obs.Objective{{Name: "availability", Target: e17Target}},
		Autoscale: auto,
	}
}

// e17FixedBigReplicas is the overprovisioned fleet sized for the crowd peak.
const e17FixedBigReplicas = 4

func e17Autoscale() *serve.AutoscaleConfig {
	return &serve.AutoscaleConfig{
		Min: 1, Max: e17FixedBigReplicas,
		Every:     100 * time.Millisecond,
		QueueHigh: 4, QueueLow: 0.5,
		SurgeMax: 2,
	}
}

// e17Sweep runs all six scenarios.
func e17Sweep(seed uint64, requests int) (*RolloutBenchReport, error) {
	rep := &RolloutBenchReport{Seed: seed, Requests: requests}
	var err error
	bad := fault.VersionFault{ErrorRate: 0.5}

	if rep.ShadowCatch, err = serve.RunLoad(e17RolloutCfg(seed, requests, bad, 150*time.Millisecond)); err != nil {
		return nil, fmt.Errorf("shadow_catch: %w", err)
	}
	if rep.BadDeploy, err = serve.RunLoad(e17RolloutCfg(seed, requests, bad, 0)); err != nil {
		return nil, fmt.Errorf("bad_deploy: %w", err)
	}
	if rep.GoodDeploy, err = serve.RunLoad(e17RolloutCfg(seed, requests, fault.VersionFault{}, 150*time.Millisecond)); err != nil {
		return nil, fmt.Errorf("good_deploy: %w", err)
	}
	if rep.FlashFixedSmall, err = serve.RunLoad(e17FlashCfg(seed, 1, nil)); err != nil {
		return nil, fmt.Errorf("flash_fixed_small: %w", err)
	}
	if rep.FlashFixedBig, err = serve.RunLoad(e17FlashCfg(seed, e17FixedBigReplicas, nil)); err != nil {
		return nil, fmt.Errorf("flash_fixed_big: %w", err)
	}
	if rep.FlashAutoscaled, err = serve.RunLoad(e17FlashCfg(seed, 1, e17Autoscale())); err != nil {
		return nil, fmt.Errorf("flash_autoscaled: %w", err)
	}
	return rep, nil
}

// e17Avail finds the availability objective's compliance in a flash run.
func e17Avail(rep *serve.LoadReport) (obs.SLOStatus, error) {
	for _, st := range rep.SLOStatus {
		if st.Objective == "availability" {
			return st, nil
		}
	}
	return obs.SLOStatus{}, fmt.Errorf("e17: run carries no availability SLO status")
}

// RolloutBench runs the committed self-healing profile and verifies its
// headline invariants, so a regression in the rollout controller, the burn
// rules, or the autoscaler can never silently regenerate a flat artifact:
//
//   - the shadow phase catches a poisoned candidate with ZERO live exposure;
//   - without shadow, detection is sub-second and the bad version answers
//     at most 5% of live traffic before the revert;
//   - a healthy candidate promotes with no errors;
//   - the flash crowd breaches the fixed minimal fleet's availability SLO,
//     while both the overprovisioned fleet and the autoscaler hold it —
//     the autoscaler at a strictly lower mean replica count.
func RolloutBench(seed uint64, requests int) (*RolloutBenchReport, error) {
	rep, err := e17Sweep(seed, requests)
	if err != nil {
		return nil, err
	}

	sc := rep.ShadowCatch
	if sc.RolloutState != "rolled_back" || sc.CanaryServed != 0 || sc.ShadowMismatches == 0 {
		return nil, fmt.Errorf("e17: shadow_catch state=%s canary=%d mismatches=%d, want rollback with zero live exposure",
			sc.RolloutState, sc.CanaryServed, sc.ShadowMismatches)
	}
	bd := rep.BadDeploy
	if bd.RolloutState != "rolled_back" {
		return nil, fmt.Errorf("e17: bad_deploy ended %s, want rolled_back", bd.RolloutState)
	}
	if bd.TimeToDetectS <= 0 || bd.TimeToDetectS > 1 {
		return nil, fmt.Errorf("e17: bad_deploy detection took %.3fs, want sub-second", bd.TimeToDetectS)
	}
	if bd.BadVersionPct <= 0 || bd.BadVersionPct > 5 {
		return nil, fmt.Errorf("e17: bad version served %.2f%% of live traffic, want (0, 5]", bd.BadVersionPct)
	}
	gd := rep.GoodDeploy
	if gd.RolloutState != "promoted" || gd.Errors != 0 || gd.CanaryErrors != 0 {
		return nil, fmt.Errorf("e17: good_deploy state=%s errors=%d/%d, want clean promotion",
			gd.RolloutState, gd.Errors, gd.CanaryErrors)
	}

	small, err := e17Avail(rep.FlashFixedSmall)
	if err != nil {
		return nil, err
	}
	big, err := e17Avail(rep.FlashFixedBig)
	if err != nil {
		return nil, err
	}
	scaled, err := e17Avail(rep.FlashAutoscaled)
	if err != nil {
		return nil, err
	}
	if small.Met {
		return nil, fmt.Errorf("e17: flash crowd did not breach the fixed minimal fleet (ratio %.6f)", small.Ratio)
	}
	if !big.Met {
		return nil, fmt.Errorf("e17: overprovisioned fleet breached availability (ratio %.6f)", big.Ratio)
	}
	if !scaled.Met {
		return nil, fmt.Errorf("e17: autoscaled fleet breached availability (ratio %.6f)", scaled.Ratio)
	}
	as := rep.FlashAutoscaled
	if as.ReplicasPeak <= 1 || as.ScaleUps < 1 || as.ScaleDowns < 1 {
		return nil, fmt.Errorf("e17: autoscaler trajectory peak=%d ups=%d downs=%d, want a full grow/shrink cycle",
			as.ReplicasPeak, as.ScaleUps, as.ScaleDowns)
	}
	if as.ReplicasMean >= e17FixedBigReplicas {
		return nil, fmt.Errorf("e17: autoscaled mean fleet %.2f not below the overprovisioned %d",
			as.ReplicasMean, e17FixedBigReplicas)
	}
	return rep, nil
}

// E17Rollout runs the sweep for the suite table.
func E17Rollout(cfg Config) *trace.Table {
	t := trace.NewTable("E17 self-healing control plane: canary rollout, auto-rollback, autoscaling",
		"scenario", "state/slo", "ttd-s", "ttr-s", "bad-pct", "lost", "replicas peak/mean")
	requests := e17Requests
	if cfg.Quick {
		requests = e17QuickReq
	}
	rep, err := RolloutBench(cfg.Seed, requests)
	if err != nil {
		t.AddRow("error", err.Error(), "-", "-", "-", "-", "-")
		return t
	}
	deployRow := func(name string, r *serve.LoadReport) {
		t.AddRow(name, r.RolloutState, r.TimeToDetectS, r.TimeToRollbackS,
			r.BadVersionPct, r.Shed+r.Expired+r.Errors, "-")
	}
	deployRow("shadow-catch", rep.ShadowCatch)
	deployRow("bad-deploy", rep.BadDeploy)
	deployRow("good-deploy", rep.GoodDeploy)
	flashRow := func(name string, r *serve.LoadReport, fixed int) {
		st, err := e17Avail(r)
		verdict := fmt.Sprintf("avail %.6f MET", st.Ratio)
		if err != nil || !st.Met {
			verdict = fmt.Sprintf("avail %.6f VIOLATED", st.Ratio)
		}
		peak, mean := fixed, float64(fixed)
		if r.ReplicasPeak > 0 {
			peak, mean = r.ReplicasPeak, r.ReplicasMean
		}
		t.AddRow(name, verdict, "-", "-", "-", r.Shed+r.Expired,
			fmt.Sprintf("%d/%.2f", peak, mean))
	}
	flashRow("flash-fixed-small", rep.FlashFixedSmall, 1)
	flashRow("flash-fixed-big", rep.FlashFixedBig, e17FixedBigReplicas)
	flashRow("flash-autoscaled", rep.FlashAutoscaled, 0)
	return t
}
