// Package experiments implements the paper's reproduction suite E1-E15.
//
// The paper (an HPDC'17 keynote abstract) contains no numbered tables or
// figures; DESIGN.md maps each of its falsifiable architectural claims to
// one experiment here. Every experiment returns a trace.Table that
// cmd/candlebench prints and bench_test.go regenerates; EXPERIMENTS.md
// records claim-versus-measured for each.
package experiments

import (
	"repro/internal/obs"
	"repro/internal/trace"
)

// Config controls experiment sizing.
type Config struct {
	// Quick shrinks budgets so the whole suite runs in tens of seconds
	// (used by `go test -bench`); the default sizes are for candlebench.
	Quick bool
	// Seed makes every experiment reproducible.
	Seed uint64
	// Obs, if enabled, is threaded into each experiment's trainers and
	// schedulers so a suite run can be regenerated alongside a span trace
	// (candlebench additionally wraps every experiment in a phase span).
	Obs *obs.Session
}

// Experiment is one claim-reproduction: an ID, the paper claim it tests,
// and a runner.
type Experiment struct {
	ID    string
	Claim string
	Run   func(cfg Config) *trace.Table
}

// All returns the full suite in order.
func All() []Experiment {
	return []Experiment{
		{"E1", "they rarely require 64bit or even 32bits of precision", E1Precision},
		{"E2", "high compute density to support matrix-matrix and matrix-vector operations", E2Roofline},
		{"E3", "DNNs in general do not have good strong scaling behavior", E3Scaling},
		{"E4", "they rely on a combination of model, data and search parallelism", E4Hybrid},
		{"E5", "power efficient DNNs require high-bandwidth memory be physically close to arithmetic units", E5Memory},
		{"E6", "a high-bandwidth communication fabric between (perhaps modest scale) groups of processors to support network model parallelism", E6Fabric},
		{"E7", "large-quantities of training data ... at each node, thus providing opportunities for NVRAM", E7NVRAM},
		{"E8", "Naive searches are outperformed by various intelligent searching strategies, including new approaches that use generative neural networks", E8Search},
		{"E9", "HPC architectures that can support these large-scale intelligent search methods ... are needed", E9Campaign},
		{"E10", "at the paper's scale failures are routine: the machine must be provisioned for checkpoint/restart, with the optimal interval shrinking as sqrt of the system MTBF", E10Checkpoint},
		{"E11", "inference traffic arrives one sample at a time but the kernels want batches: dynamic micro-batching trades bounded linger latency for amortised throughput", E11Serving},
		{"E12", "at the paper's scale something is always slow without being dead: a single gray straggler poisons the serving tail, and hedged execution buys the p99 back for a few percent of duplicated work", E12Resilience},
		{"E13", "data-parallel gradient exchange need not sit on the critical path: bucketing the allreduce behind backward hides most of it, and error-feedback compression shrinks what is left", E13Comm},
		{"E14", "a production inference service needs declarative SLOs: multi-window burn-rate monitors catch a flash crowd burning the error budget within seconds of onset and resolve once it passes — deterministically on the simulator's virtual clock", E14SLO},
		{"E15", "they rarely require 64bit or even 32bits of precision — and the win is real on commodity cores, not just accelerators: a packed float32 GEMM doubles per-core throughput over the float64 baseline and carries through to end-to-end training with float64 master weights", E15Kernels},
		{"E16", "large-quantities of training data ... at each node, thus providing opportunities for NVRAM — re-derived by execution: a sharded streaming loader with tiered DRAM/NVRAM caches and prefetch reproduces E7's staging crossover on its virtual clock, batch stream and all", E16Data},
		{"E17", "a production inference service must survive its own deploys and its own traffic: staged canary rollout with shadow comparison and burn-rate auto-rollback bounds a bad version's blast radius to a few percent of requests, and health-driven autoscaling holds the availability SLO through a flash crowd at a fraction of an overprovisioned fleet's replica-seconds", E17Rollout},
		{"E18", "HPC architectures that can support these large-scale intelligent search methods ... are needed — quantified end to end: a sharded multi-tenant fleet under shard kills and gray faults still delivers eval throughput that grows with machine size, and at every scale the learning searchers (REINFORCE controller, population-based training) convert that budget into strictly better true best-found loss than naive random search", E18SearchScale},
	}
}

// ByID returns the experiment with the given ID (nil if unknown).
func ByID(id string) *Experiment {
	for _, e := range All() {
		if e.ID == id {
			return &e
		}
	}
	return nil
}
