package experiments

import (
	"time"

	"repro/internal/comm"
	"repro/internal/lowp"
	"repro/internal/machine"
	"repro/internal/nn"
	"repro/internal/parallel"
	"repro/internal/rng"
	"repro/internal/tensor"
	"repro/internal/trace"
)

// E3Scaling measures data-parallel scaling two ways: (a) modelled strong and
// weak scaling efficiency on a GPU2017 cluster out to 1024 ranks, and
// (b) real goroutine-level synchronous SGD on this host out to 8 ranks,
// with the measured per-rank allreduce bytes.
//
// Expected shape (paper claim): strong-scaling efficiency collapses once
// the per-rank batch shrinks and the gradient allreduce dominates; weak
// scaling holds far longer. "DNNs in general do not have good strong
// scaling behavior."
func E3Scaling(cfg Config) *trace.Table {
	t := trace.NewTable("E3 strong vs weak scaling of data-parallel SGD",
		"mode", "ranks", "global-batch", "step-time", "speedup", "efficiency",
		"comm-fraction", "source")

	// NT3-like 1-D convnet: convolutions give it far more flops per
	// parameter than an MLP, which is what makes weak scaling viable at all.
	spec := machine.ModelSpec{Name: "nt3-convnet", Params: 5e6,
		FlopsPerSample: 4e9, ActivationsPerSample: 2e6, Layers: 12}
	m := machine.GPU2017(1024)
	const strongBatch = 1024
	const weakPerRank = 64

	t1Strong := machine.DataParallelStepTime(m, spec, 1, strongBatch,
		lowp.FP32, lowp.FP32, comm.ARRing)
	t1Weak := machine.DataParallelStepTime(m, spec, 1, weakPerRank,
		lowp.FP32, lowp.FP32, comm.ARRing)

	for _, p := range []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024} {
		// Strong: fixed global batch.
		ts := machine.DataParallelStepTime(m, spec, p, strongBatch,
			lowp.FP32, lowp.FP32, comm.ARRing)
		commT := machine.CollectiveTime(m.FabricFor(p), comm.ARRing, p,
			spec.Params*machine.BytesPerElement(lowp.FP32))
		t.AddRow("strong", p, strongBatch, ts, t1Strong/ts,
			t1Strong/ts/float64(p), commT/ts, "model")
		// Weak: fixed per-rank batch.
		tw := machine.DataParallelStepTime(m, spec, p, weakPerRank*p,
			lowp.FP32, lowp.FP32, comm.ARRing)
		t.AddRow("weak", p, weakPerRank*p, tw, t1Weak/tw*1, t1Weak/tw,
			commT/tw, "model")
	}

	// Real host runs (small ranks; measured wall-clock per step).
	root := rng.New(cfg.Seed).Split("e3")
	din, classes := 64, 4
	nSamples := 2048
	epochs := 1
	if cfg.Quick {
		nSamples = 512
	}
	x := tensor.New(nSamples, din)
	x.FillRandNorm(root.Split("x"), 1)
	labels := make([]int, nSamples)
	for i := range labels {
		labels[i] = i % classes
	}
	y := nn.OneHot(labels, classes)

	mkNet := func() *nn.Net {
		return nn.MLP(din, []int{256, 128}, classes, nn.ReLU, rng.New(cfg.Seed))
	}
	// Pin each rank's tensor kernels to one core so rank-level parallelism
	// is what the measurement sees. On a multi-core host the speedup column
	// then reflects real rank parallelism; on a single-core host (CI) the
	// per-step time stays flat with rank count, which measures the
	// runtime's synchronisation overhead instead — both are reported.
	savedProcs := tensor.MaxProcs
	tensor.MaxProcs = 1
	defer func() { tensor.MaxProcs = savedProcs }()
	// Warm up allocator/caches so the p=1 measurement is not inflated.
	{
		net := mkNet()
		_, _ = parallel.TrainDataParallel(net, x, y, parallel.DataParallelConfig{
			Replicas: 1, Algo: comm.ARRing, Loss: nn.SoftmaxCELoss{},
			NewOptimizer: func() nn.Optimizer { return nn.NewSGD(0.05) },
			GlobalBatch:  256, Epochs: 1, RNG: rng.New(cfg.Seed + 1),
		})
	}
	var hostBase float64
	for _, p := range []int{1, 2, 4, 8} {
		net := mkNet()
		start := time.Now()
		res, err := parallel.TrainDataParallel(net, x, y, parallel.DataParallelConfig{
			Replicas: p, Algo: comm.ARRing,
			Loss:         nn.SoftmaxCELoss{},
			NewOptimizer: func() nn.Optimizer { return nn.NewSGD(0.05) },
			GlobalBatch:  256, Epochs: epochs, RNG: rng.New(cfg.Seed + 1),
			Obs: cfg.Obs,
		})
		if err != nil {
			panic(err)
		}
		perStep := time.Since(start).Seconds() / float64(res.Steps)
		if p == 1 {
			hostBase = perStep
		}
		t.AddRow("strong", p, 256, perStep, hostBase/perStep,
			hostBase/perStep/float64(p), float64(res.BytesPerRank), "host")
	}
	return t
}
