package experiments

import (
	"repro/internal/lowp"
	"repro/internal/machine"
	"repro/internal/trace"
)

// E6Fabric sweeps pipeline depth (model-parallel group size) against fabric
// bandwidth for a network too large for one node, reporting step time and
// the fraction spent in activation handoffs.
//
// Expected shape (paper claim): within the fast group fabric, adding stages
// helps until handoffs dominate; crossing into the slow global fabric is a
// cliff. The sweet spot is a "modest scale" group (4-16 nodes) on a
// high-bandwidth fabric — exactly the machine shape the paper advocates.
func E6Fabric(cfg Config) *trace.Table {
	t := trace.NewTable("E6 model-parallel group size vs fabric bandwidth",
		"fabric-GBs", "stages", "fabric", "step-ms", "handoff-fraction",
		"vs-1-stage", "feasible(HBM)")

	spec := machine.MLPSpec("large-candle-net", []int{
		16384, 16384, 16384, 16384, 8192, 1000})
	weightBytes := spec.Params * machine.BytesPerElement(lowp.FP16)
	const batch = 64

	for _, bwGB := range []float64{10, 40, 80, 300} {
		m := machine.GPU2017(64)
		m.GroupSize = 16 // the "modest scale group" under study
		m.GroupFabric.BandwidthBps = bwGB * machine.GB
		base := 0.0
		for _, s := range []int{1, 2, 4, 8, 16, 32} {
			pcfg := machine.PipelineConfig{Stages: s, MicroBatches: 4}
			stepT := machine.ModelParallelStepTime(m, spec, pcfg, batch, lowp.FP16)
			// Handoff share: recompute with a free fabric to isolate compute.
			free := *m
			free.GroupFabric.BandwidthBps = 1e18
			free.GroupFabric.LatencySec = 0
			free.InterFabric.BandwidthBps = 1e18
			free.InterFabric.LatencySec = 0
			computeOnly := machine.ModelParallelStepTime(&free, spec, pcfg, batch, lowp.FP16)
			handoff := (stepT - computeOnly) / stepT
			if s == 1 {
				base = stepT
			}
			fits := 4*weightBytes/float64(s) <= m.Node.NearTier().CapacityBytes
			fabricName := m.GroupFabric.Name
			if s > m.GroupSize {
				fabricName = m.InterFabric.Name
			}
			t.AddRow(bwGB, s, fabricName, stepT*1000, handoff, base/stepT, fits)
		}
	}
	return t
}
