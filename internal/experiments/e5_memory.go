package experiments

import (
	"repro/internal/lowp"
	"repro/internal/machine"
	"repro/internal/trace"
)

// E5Memory sweeps the near-memory bandwidth of a GPU2017-class node from
// 1/16x to 8x HBM and reports training-step time and energy for a CANDLE-
// scale dense network, splitting energy into arithmetic and data motion.
//
// Expected shape (paper claim): below a knee the step is bandwidth-bound
// and both time and energy are dominated by data motion; above it the
// compute peak limits. "High-bandwidth memory physically close to
// arithmetic units" buys performance exactly until that knee, and the
// far-memory variants (DRAM-distance energy/byte) burn several times the
// energy per step.
func E5Memory(cfg Config) *trace.Table {
	t := trace.NewTable("E5 near-memory bandwidth sensitivity of training steps",
		"bandwidth-GBs", "x-HBM", "near?", "step-ms", "vs-best",
		"flop-J", "data-J", "data-fraction", "bound")

	spec := machine.MLPSpec("candle-mlp", []int{4096, 2048, 2048, 1000})
	// Small per-rank batch: the regime strong scaling pushes training into
	// (see E3), where weight streaming dominates arithmetic.
	const batch = 16
	base := machine.GPU2017(1)
	hbm := base.Node.Tiers[0]

	best := 0.0
	type rowData struct {
		bw, mult float64
		near     bool
		stepT    float64
		flopJ    float64
		dataJ    float64
	}
	var rows []rowData
	for _, mult := range []float64{1.0 / 16, 1.0 / 8, 1.0 / 4, 1.0 / 2, 1, 2, 4, 8} {
		m := machine.GPU2017(1)
		m.Node.Tiers[0].BandwidthBps = hbm.BandwidthBps * mult
		// Far memory also costs more energy per byte (the paper's "reduce
		// costs of data motion" point): scale energy/byte inversely below 1x.
		near := mult >= 1
		if !near {
			// Far memory (DDR over an interposer/PCIe distance) costs ~10x
			// HBM's pJ/byte — the "costs of data motion" the paper cites.
			m.Node.Tiers[0].EnergyPerByte = hbm.EnergyPerByte * 10
		}
		stepT := machine.StepComputeTime(m, spec, batch, lowp.FP16)
		flops := spec.TrainFlopsPerStep(batch)
		bytes := machine.BytesPerElement(lowp.FP16) * (5*spec.Params +
			2*spec.ActivationsPerSample*float64(batch))
		flopJ := flops * m.Node.EnergyPerFlop[lowp.FP16]
		dataJ := bytes * m.Node.Tiers[0].EnergyPerByte
		if best == 0 || stepT < best {
			best = stepT
		}
		rows = append(rows, rowData{m.Node.Tiers[0].BandwidthBps, mult, near, stepT, flopJ, dataJ})
	}
	for _, r := range rows {
		bound := "compute"
		if r.stepT > best*1.01 {
			bound = "bandwidth"
		}
		t.AddRow(r.bw/machine.GB, r.mult, r.near, r.stepT*1000, r.stepT/best,
			r.flopJ, r.dataJ, r.dataJ/(r.dataJ+r.flopJ), bound)
	}
	return t
}
