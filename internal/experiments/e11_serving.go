package experiments

import (
	"time"

	"repro/internal/serve"
	"repro/internal/trace"
)

// E11Serving sweeps the micro-batcher's MaxBatch and maps the serving
// frontier: how much throughput dynamic batching buys against what it costs
// in tail latency. Each batch size is probed twice with the deterministic
// load simulator (identical seeds give bit-identical numbers):
//
//   - a saturation probe offering 2x the analytic capacity at that batch
//     size, which measures sustainable throughput and shows admission
//     control shedding the excess instead of letting latency run away;
//   - a fixed-rate probe at a moderate load, which measures the latency the
//     batching policy charges steady traffic.
//
// Expected shape (paper claim): inference traffic arrives one sample at a
// time, but the kernels want batches — throughput rises with MaxBatch and
// saturates as the per-batch overhead amortises away, while the fixed-rate
// p99 inflects upward once MaxBatch crosses rate*linger (the batch can no
// longer fill inside the linger bound, so requests start paying the full
// linger wait on top of service).
func E11Serving(cfg Config) *trace.Table {
	t := trace.NewTable("E11 dynamic batching: throughput/latency frontier vs max batch size",
		"max-batch", "capacity-rps", "sat-tput-rps", "sat-shed", "sat-p99-ms",
		"fix-rps", "mean-batch", "p50-ms", "p99-ms")

	const (
		replicas = 4
		linger   = 4 * time.Millisecond
		fixedRPS = 1000 // rate*linger = 4: the frontier's inflection point
	)
	requests := 20000
	if cfg.Quick {
		requests = 4000
	}
	svc := serve.DefaultServiceModel()

	base := serve.LoadConfig{
		Requests:  requests,
		Replicas:  replicas,
		MaxBatch:  1,
		MaxLinger: linger,
		QueueCap:  64,
		Seed:      cfg.Seed,
		Service:   svc,
	}

	for _, mb := range []int{1, 2, 4, 8, 16, 32} {
		capacity := svc.CapacityRPS(replicas, mb)

		sat := base
		sat.MaxBatch = mb
		sat.RatePerSec = 2 * capacity
		satRep, err := serve.RunLoad(sat)
		if err != nil {
			panic(err)
		}

		fix := base
		fix.MaxBatch = mb
		fix.RatePerSec = fixedRPS
		fixRep, err := serve.RunLoad(fix)
		if err != nil {
			panic(err)
		}

		t.AddRow(mb, capacity, satRep.ThroughputRPS, satRep.Shed, satRep.LatencyP99Ms,
			fixedRPS, fixRep.MeanBatch, fixRep.LatencyP50Ms, fixRep.LatencyP99Ms)

		if cfg.Obs.Enabled() {
			cfg.Obs.Emit("e11.frontier", satRep.ThroughputRPS, map[string]float64{
				"max_batch": float64(mb),
				"fix_p99":   fixRep.LatencyP99Ms,
			})
		}
	}
	return t
}
