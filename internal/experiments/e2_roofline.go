package experiments

import (
	"time"

	"repro/internal/lowp"
	"repro/internal/machine"
	"repro/internal/rng"
	"repro/internal/tensor"
	"repro/internal/trace"
)

// E2Roofline maps the arithmetic intensity of DNN kernels (GEMV, skinny
// GEMM, square GEMM, conv-lowered GEMM) onto the roofline of each machine
// preset, and cross-checks with measured host GEMM throughput.
//
// Expected shape (paper claim): matrix-matrix kernels sit at or above the
// ridge (compute bound — they want "high compute density"); matrix-vector
// kernels sit far below it (bandwidth bound — they want "high-bandwidth
// memory").
func E2Roofline(cfg Config) *trace.Table {
	t := trace.NewTable("E2 roofline — DNN kernel intensity vs machine balance",
		"kernel", "m", "k", "n", "intensity", "machine",
		"attainable-TF", "peak-TF", "bound", "ridge")

	type kernel struct {
		name    string
		m, k, n int
	}
	kernels := []kernel{
		{"gemv(dense-infer)", 1, 4096, 4096},
		{"skinny(batch=32)", 32, 4096, 4096},
		{"gemm(batch=512)", 512, 4096, 4096},
		{"gemm(square)", 4096, 4096, 4096},
		{"conv-lowered", 256, 576, 12544}, // im2col'd 3x3x64 conv on 112^2
	}
	for _, k := range kernels {
		flops := 2 * float64(k.m) * float64(k.k) * float64(k.n)
		bytes := 4 * (float64(k.m)*float64(k.k) + float64(k.k)*float64(k.n) +
			float64(k.m)*float64(k.n))
		intensity := flops / bytes
		for _, m := range machine.Presets(1) {
			node := m.Node
			tier := node.NearTier()
			att := machine.Roofline(&node, tier, lowp.FP32, intensity)
			ridge := machine.RidgeIntensity(&node, tier, lowp.FP32)
			bound := "compute"
			if intensity < ridge {
				bound = "bandwidth"
			}
			t.AddRow(k.name, k.m, k.k, k.n, intensity, m.Name,
				att/machine.TFlops, node.Peak(lowp.FP32)/machine.TFlops, bound, ridge)
		}
	}

	// Measured host GEMM for grounding (not expected to hit modelled rates).
	n := 512
	if cfg.Quick {
		n = 256
	}
	r := rng.New(cfg.Seed)
	a := tensor.New(n, n)
	b := tensor.New(n, n)
	a.FillRandNorm(r, 1)
	b.FillRandNorm(r, 1)
	dst := tensor.New(n, n)
	reps := 3
	start := time.Now()
	for i := 0; i < reps; i++ {
		tensor.MatMul(dst, a, b)
	}
	el := time.Since(start).Seconds() / float64(reps)
	gf := 2 * float64(n) * float64(n) * float64(n) / el / 1e9
	t.AddRow("host-gemm-measured", n, n, n, float64(n)/12.0, "this-host",
		gf/1000, gf/1000, "measured", 0.0)
	return t
}
