package experiments

import (
	"repro/internal/core"
	"repro/internal/hpo"
	"repro/internal/rng"
	"repro/internal/trace"
)

// E8Search runs every search strategy on real driver-problem training
// (tumor classification and MD-frame labelling at tiny scale) at equal
// full-training-equivalent budget, reporting best-found loss at budget
// checkpoints.
//
// Expected shape (paper claim): every intelligent strategy (hyperband,
// genetic, TPE, surrogate, generative) dominates random and grid at equal
// cost, and the generative sampler is competitive with the model-based
// methods — "naive searches are outperformed by various intelligent
// searching strategies, including new approaches that use generative
// neural networks to manage the search space".
func E8Search(cfg Config) *trace.Table {
	t := trace.NewTable("E8 hyperparameter search strategies at equal budget",
		"workload", "strategy", "budget-used", "trials",
		"best@25%", "best@50%", "best@100%", "best-config")

	budget := 24.0
	workloads := []string{"tumor-hard", "drugresponse"}
	if cfg.Quick {
		budget = 8
		workloads = workloads[:1]
	}

	for _, wname := range workloads {
		w, err := core.ByName(wname)
		if err != nil {
			panic(err)
		}
		obj := w.Objective(core.Tiny)
		for _, strat := range hpo.AllStrategies() {
			res, err := strat.Search(obj, hpo.Options{
				Space:       w.Space,
				TotalBudget: budget,
				Parallelism: 4,
				RNG:         rng.New(cfg.Seed).Split("e8-" + wname + strat.Name()),
				Obs:         cfg.Obs,
			})
			if err != nil {
				panic(err)
			}
			t.AddRow(wname, strat.Name(), res.CostUsed, len(res.Trials),
				res.BestAtCost(budget*0.25), res.BestAtCost(budget*0.5),
				res.BestAtCost(budget),
				w.Space.FormatConfig(res.Best.Config))
		}
	}
	return t
}
