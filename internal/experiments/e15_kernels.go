package experiments

import (
	"encoding/json"
	"io"
	"runtime"
	"time"

	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/tensor"
	"repro/internal/trace"
)

// E15 measures the float32 kernel engine against the float64 baseline on
// this host: GFLOP/s for every registered GEMM backend across square sizes
// and worker counts, plus end-to-end training throughput with the mixed-
// precision compute path (f32 kernels, f64 master weights) switched on.
//
// Unlike E13's machine-model profile, every number here is a wall-clock
// measurement, so BENCH_kernels.json cannot be byte-compared against a
// regeneration. Instead the committed artifact carries its headline shape —
// packed-f32 at least 2x the f64 blocked GEMM at 512³, training faster with
// ComputeF32 — and cmd/candlebench's artifact test re-asserts those
// invariants (and schema currency via remarshal) on the committed numbers.

// KernelsGemmRow is one measured GEMM configuration. Backend "f64-blocked"
// is the float64 baseline; the rest are registered float32 backends.
type KernelsGemmRow struct {
	Backend string  `json:"backend"`
	Size    int     `json:"size"` // square M = N = K
	Procs   int     `json:"procs"`
	GFLOPs  float64 `json:"gflops"`
}

// KernelsTrainRow is one measured training configuration: the same MLP and
// data, with and without the float32 compute path.
type KernelsTrainRow struct {
	Mode        string  `json:"mode"` // "f64" or "f32-compute"
	StepsPerSec float64 `json:"steps_per_sec"`
	Speedup     float64 `json:"speedup_vs_f64"`
}

// KernelsReport is the committed BENCH_kernels.json document.
type KernelsReport struct {
	GoMaxProcs int              `json:"gomaxprocs"`
	Backends   []string         `json:"backends"`
	Gemm       []KernelsGemmRow `json:"gemm"`
	// Headline comparison at the largest measured square size, one worker.
	HeadlineSize    int               `json:"headline_size"`
	F64BlockedGF    float64           `json:"f64_blocked_gflops"`
	PackedF32GF     float64           `json:"packed_f32_gflops"`
	PackedVsF64     float64           `json:"packed_vs_f64"`
	Train           []KernelsTrainRow `json:"train"`
	TrainSpeedupF32 float64           `json:"train_speedup_f32"`
}

// WriteJSON writes the report as indented JSON (stable field order).
func (r *KernelsReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// kernelsSizes returns the square GEMM sizes to sweep. The full sweep ends
// at 512 — the headline shape the acceptance claim names; quick stays small
// enough for `go test -bench` regeneration.
func kernelsSizes(quick bool) []int {
	if quick {
		return []int{48, 96}
	}
	return []int{128, 256, 512}
}

// kernelsProcs returns the worker counts to sweep: serial always, plus the
// host's full parallelism when it has more than one core.
func kernelsProcs() []int {
	procs := []int{1}
	if p := runtime.GOMAXPROCS(0); p > 1 {
		procs = append(procs, p)
	}
	return procs
}

// measureGFLOPs times fn (which performs flops floating-point operations per
// call) with best-of-trials adaptive repetition and returns GFLOP/s. The
// best trial, not the mean, is the right estimator on a shared host: noise
// only ever makes a trial slower.
func measureGFLOPs(fn func(), flops float64, budget time.Duration) float64 {
	fn() // warm caches, pools, and the scheduler
	start := time.Now()
	fn()
	once := time.Since(start)
	reps := 1
	if once > 0 {
		if r := int(budget / once); r > 1 {
			reps = r
		}
	}
	best := once
	for trial := 0; trial < 3; trial++ {
		start = time.Now()
		for i := 0; i < reps; i++ {
			fn()
		}
		if d := time.Since(start) / time.Duration(reps); d < best {
			best = d
		}
	}
	return flops / best.Seconds() / 1e9
}

// kernelsTrainNet builds the throughput-benchmark MLP and batch: wide enough
// that the Dense GEMMs dominate the step, so the kernel swap is visible
// end-to-end and not buried under framework overhead.
func kernelsTrainNet(quick bool, seed uint64) (*nn.Net, *tensor.Tensor, *tensor.Tensor) {
	r := rng.New(seed).Split("e15-train")
	in, batch := 256, 64
	hidden := []int{512, 512}
	if quick {
		in, batch, hidden = 128, 32, []int{256}
	}
	net := nn.MLP(in, hidden, 8, nn.ReLU, r.Split("w"))
	x := tensor.New(batch, in)
	x.FillRandNorm(r.Split("x"), 1)
	labels := make([]int, batch)
	for i := range labels {
		labels[i] = i % 8
	}
	return net, x, nn.OneHot(labels, 8)
}

// kernelsTrainRate measures optimizer steps per second for one compute mode.
func kernelsTrainRate(quick bool, seed uint64, f32 bool) float64 {
	net, x, y := kernelsTrainNet(quick, seed)
	cfg := nn.TrainConfig{Loss: nn.SoftmaxCELoss{}, Optimizer: nn.NewAdam(0.001),
		ComputeF32: f32}
	if f32 {
		net.SetComputeF32(true)
	}
	steps := 12
	if quick {
		steps = 4
	}
	nn.TrainStep(net, x, y, cfg, nil, nil) // warm: buffer allocation, im2col caches
	best := 0.0
	for trial := 0; trial < 3; trial++ {
		start := time.Now()
		for i := 0; i < steps; i++ {
			nn.TrainStep(net, x, y, cfg, nil, nil)
		}
		if rate := float64(steps) / time.Since(start).Seconds(); rate > best {
			best = rate
		}
	}
	return best
}

// KernelsBench measures the kernel-engine profile this host produces. In the
// full (non-quick) configuration it panics if the committed headline shape
// is lost outright — packed-f32 no faster than the f64 baseline, or training
// slower with the fast path — so a kernel regression cannot silently
// regenerate an artifact that contradicts the engine's reason to exist. The
// ≥2x margin itself is asserted on the committed numbers by the artifact
// test, not here, so one noisy generation run cannot fail tier-1.
func KernelsBench(quick bool) *KernelsReport {
	budget := 120 * time.Millisecond
	if quick {
		budget = 15 * time.Millisecond
	}
	rep := &KernelsReport{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Backends:   tensor.BackendNames(),
	}
	sizes := kernelsSizes(quick)
	rep.HeadlineSize = sizes[len(sizes)-1]

	savedProcs := tensor.MaxProcs
	defer func() { tensor.MaxProcs = savedProcs }()
	root := rng.New(7).Split("e15-gemm")

	for _, size := range sizes {
		flops := 2 * float64(size) * float64(size) * float64(size)
		a64 := tensor.New(size, size)
		b64 := tensor.New(size, size)
		c64 := tensor.New(size, size)
		a64.FillRandNorm(root.Split("a"), 1)
		b64.FillRandNorm(root.Split("b"), 1)
		a32 := tensor.NewF32(size, size)
		b32 := tensor.NewF32(size, size)
		c32 := tensor.NewF32(size, size)
		a32.FillRandNorm(root.Split("a32"), 1)
		b32.FillRandNorm(root.Split("b32"), 1)

		for _, procs := range kernelsProcs() {
			tensor.MaxProcs = procs
			gf := measureGFLOPs(func() { tensor.MatMul(c64, a64, b64) }, flops, budget)
			rep.Gemm = append(rep.Gemm, KernelsGemmRow{
				Backend: "f64-blocked", Size: size, Procs: procs, GFLOPs: gf})
			if size == rep.HeadlineSize && procs == 1 {
				rep.F64BlockedGF = gf
			}
			for _, name := range rep.Backends {
				bk, err := tensor.BackendByName(name)
				if err != nil {
					panic(err)
				}
				gf := measureGFLOPs(func() { bk.MatMulF32(c32, a32, b32) }, flops, budget)
				rep.Gemm = append(rep.Gemm, KernelsGemmRow{
					Backend: name, Size: size, Procs: procs, GFLOPs: gf})
				if name == "packed" && size == rep.HeadlineSize && procs == 1 {
					rep.PackedF32GF = gf
				}
			}
		}
	}
	if rep.F64BlockedGF > 0 {
		rep.PackedVsF64 = rep.PackedF32GF / rep.F64BlockedGF
	}

	// Training throughput, serial kernels: the single-core uplift is the
	// honest per-core number and the one the headline GEMM ratio predicts.
	tensor.MaxProcs = 1
	f64Rate := kernelsTrainRate(quick, 7, false)
	f32Rate := kernelsTrainRate(quick, 7, true)
	rep.Train = []KernelsTrainRow{
		{Mode: "f64", StepsPerSec: f64Rate, Speedup: 1},
		{Mode: "f32-compute", StepsPerSec: f32Rate, Speedup: f32Rate / f64Rate},
	}
	rep.TrainSpeedupF32 = f32Rate / f64Rate

	if !quick {
		if rep.PackedF32GF <= rep.F64BlockedGF {
			panic("experiments: KernelsBench lost its shape: packed f32 GEMM no faster than f64 blocked")
		}
		if rep.TrainSpeedupF32 <= 1 {
			panic("experiments: KernelsBench lost its shape: ComputeF32 training no faster than f64")
		}
	}
	return rep
}

// E15Kernels renders the kernel-engine profile as an experiment table: one
// row per measured GEMM configuration and one per training mode.
func E15Kernels(cfg Config) *trace.Table {
	t := trace.NewTable("E15 float32 kernel engine vs float64 baseline",
		"kind", "backend/mode", "size", "procs", "gflops", "steps/s", "speedup")
	rep := KernelsBench(cfg.Quick)
	for _, r := range rep.Gemm {
		t.AddRow("gemm", r.Backend, r.Size, r.Procs, r.GFLOPs, 0.0, 0.0)
	}
	for _, r := range rep.Train {
		t.AddRow("train", r.Mode, 0, 1, 0.0, r.StepsPerSec, r.Speedup)
	}
	if cfg.Obs.Enabled() {
		cfg.Obs.Emit("e15.packed_vs_f64", rep.PackedVsF64, nil)
		cfg.Obs.Emit("e15.train_speedup_f32", rep.TrainSpeedupF32, nil)
	}
	return t
}
