package experiments

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/obs"
	"repro/internal/serve"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestE14AlertTimelineGolden pins the exact alert timeline of the quick E14
// profile (the one the test suite and `go test -bench` run) byte-for-byte.
// The simulator runs on virtual time, so the timeline is a pure function of
// the seed; any drift here means the load model, the SLO engine, or the
// burn-rate rules changed behaviour. Regenerate with -update.
func TestE14AlertTimelineGolden(t *testing.T) {
	rep, err := serve.RunLoad(E14LoadConfig(true, 1))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := obs.WriteAlertTimeline(&buf, rep.SLOAlerts); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "e14_alerts.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run: go test ./internal/experiments -run E14 -update)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("E14 alert timeline drifted from golden file:\ngot:\n%s\nwant:\n%s",
			buf.Bytes(), want)
	}

	// Shape assertions independent of the golden bytes: the flash crowd must
	// fire at least one rule per objective, and every fire must resolve.
	open := map[string]int{}
	fired := map[string]bool{}
	for _, ev := range rep.SLOAlerts {
		key := ev.Objective + "/" + ev.Rule
		switch ev.State {
		case "fire":
			open[key]++
			fired[ev.Objective] = true
		case "resolve":
			open[key]--
		}
	}
	for _, objective := range []string{"availability", "latency_p99"} {
		if !fired[objective] {
			t.Errorf("flash crowd did not fire any rule for %s", objective)
		}
	}
	for key, n := range open {
		if n != 0 {
			t.Errorf("alert %s left %d unresolved fire(s)", key, n)
		}
	}
}

// TestE14Deterministic re-runs the profile and demands identical reports:
// same alerts, same status, same latency tail.
func TestE14Deterministic(t *testing.T) {
	a, err := serve.RunLoad(E14LoadConfig(true, 7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := serve.RunLoad(E14LoadConfig(true, 7))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed gave different reports:\n%+v\n%+v", a, b)
	}
	c, err := serve.RunLoad(E14LoadConfig(true, 8))
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.SLOAlerts, c.SLOAlerts) && a.Completed == c.Completed {
		t.Error("different seeds gave identical runs")
	}
}

func TestE14Table(t *testing.T) {
	_, s := runQuick(t, "E14")
	rows := tableRows(s)
	if len(rows) != 2 {
		t.Fatalf("E14 rows = %d, want 2 (one per objective):\n%s", len(rows), s)
	}
	for _, row := range rows {
		if met := row[5]; met != "0" {
			t.Errorf("objective %s should be violated by the flash crowd, met=%s", row[0], met)
		}
		if fires := f(t, row[6]); fires < 1 {
			t.Errorf("objective %s fired %v rules, want >= 1", row[0], fires)
		}
	}
}
