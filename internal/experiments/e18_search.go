package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/hpo"
	"repro/internal/rng"
	"repro/internal/trace"
)

// E18 measures search quality against modelled machine size with the fault
// layer on. For each node count the sharded multi-tenant fleet runs a
// campaign-shaped workload (a high-priority search tenant plus a background
// tenant, shard kills, gray degradation, work stealing, preemption) to find
// out how many full-training evaluations the machine actually delivers per
// hour once faults and scheduling overheads take their cut. That delivered
// throughput, over a fixed wall-clock deadline, becomes the eval budget
// handed to each searcher — random as the naive baseline, the REINFORCE
// controller and population-based training as the learning strategies —
// over the architecture DSL space. Every number is virtual-clock or
// analytic output of a seeded run, so BENCH_search.json can live in the
// repository behind a byte-compare test.
//
// Search quality is scored on the noiseless true loss of each searcher's
// chosen configuration, not the observed (noisy) validation loss: with
// thousands of evaluations a naive searcher's observed best is mostly a
// lucky noise draw, and scoring the pick's true quality is what exposes
// that.

// e18Nodes are the modelled machine sizes of the committed profile.
var e18Nodes = []int{1000, 10000, 100000}

// e18QuickNodes shrink the sweep for the test suite's quick pass. The
// smallest scale stays at 1000 nodes: below that the delivered eval budget
// is too small for a policy-gradient searcher to learn anything.
var e18QuickNodes = []int{1000, 3000}

// e18NodesPerShard fixes the shard granularity across scales.
const e18NodesPerShard = 100

// e18DeadlineHours is the wall-clock slice of delivered throughput each
// searcher gets as its evaluation budget.
const e18DeadlineHours = 0.1

// e18MeanEval is the mean full-training evaluation time in seconds.
const e18MeanEval = 1800

// SearchStrategyResult is one searcher's outcome at one machine size.
type SearchStrategyResult struct {
	Strategy     string  `json:"strategy"`
	Budget       float64 `json:"budget"`
	CostUsed     float64 `json:"cost_used"`
	Trials       int     `json:"trials"`
	ObservedBest float64 `json:"observed_best"`
	TrueBest     float64 `json:"true_best"`
	BestArch     string  `json:"best_arch"`
}

// SearchScaleRow is one machine size: the fleet's delivered throughput
// under faults and the searchers run at the budget it implies.
type SearchScaleRow struct {
	Nodes       int `json:"nodes"`
	Shards      int `json:"shards"`
	Configs     int `json:"configs"`
	ShardKills  int `json:"shard_kills"`
	Interrupted int `json:"interrupted"`
	Steals      int `json:"steals"`
	Preemptions int `json:"preemptions"`
	Retries     int `json:"retries"`
	Quarantined int `json:"quarantined"`

	MakespanS    float64 `json:"makespan_s"`
	Utilization  float64 `json:"utilization"`
	EvalsPerHour float64 `json:"evals_per_hour"`
	EvalBudget   float64 `json:"eval_budget"`

	Strategies []SearchStrategyResult `json:"strategies"`
}

// SearchBenchReport is the committed BENCH_search.json document.
type SearchBenchReport struct {
	Seed          uint64           `json:"seed"`
	DeadlineHours float64          `json:"deadline_hours"`
	MeanEvalS     float64          `json:"mean_eval_s"`
	Rows          []SearchScaleRow `json:"rows"`
}

// WriteJSON writes the report as indented JSON (stable field order).
func (r *SearchBenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// e18TrueLoss is the noiseless search landscape over the architecture DSL:
// a capacity sweet spot near 160 total units, two layers, gelu activations,
// light dropout, and a log-quadratic bowl in learning rate and decay.
func e18TrueLoss(cfg hpo.Config) float64 {
	a, err := hpo.ArchFromConfig(cfg)
	if err != nil {
		return math.Inf(1)
	}
	loss := 0.30
	units := 0
	for _, l := range a.Layers {
		units += l.Units
	}
	loss += 0.06 * math.Abs(math.Log2(float64(units))-math.Log2(160))
	loss += 0.05 * math.Abs(float64(len(a.Layers))-2)
	for _, l := range a.Layers {
		switch l.Act {
		case "relu":
			loss += 0.010
		case "tanh":
			loss += 0.025
		}
		loss += 0.04 * math.Abs(l.Dropout-0.1)
	}
	lrErr := math.Log10(cfg.Float("lr")) - math.Log10(3e-3)
	loss += 0.09 * lrErr * lrErr
	dcErr := math.Log10(cfg.Float("decay")) - math.Log10(1e-4)
	loss += 0.02 * dcErr * dcErr
	return loss
}

// e18Objective is the evaluation the searchers see: the true loss plus a
// partial-training penalty and seeded validation noise that shrinks with
// training budget.
func e18Objective(cfg hpo.Config, budget float64, seed uint64) float64 {
	t := e18TrueLoss(cfg)
	if math.IsInf(t, 1) {
		return t
	}
	noise := (rng.New(seed).Float64()*2 - 1) * 0.12 / math.Sqrt(budget+0.25)
	return t + 0.25*(1-math.Min(budget, 1)) + noise
}

// e18Fleet builds the fleet workload at one machine size: a high-priority
// search tenant sized at two evaluations per node plus a half-weight
// background tenant, with scripted shard kills and gray degradation.
func e18Fleet(seed uint64, nodes int) (core.FleetConfig, error) {
	shards := nodes / e18NodesPerShard
	tenant := func(name string, seed uint64, configs int, weight float64, prio int) core.TenantConfig {
		return core.TenantConfig{
			Name: name, Weight: weight, Priority: prio,
			Campaign: core.CampaignConfig{
				Configs: configs, Nodes: 1,
				MeanEvalTime: e18MeanEval, EvalTimeSigma: 0.6,
				// Campaigns bound training by a max epoch count; without
				// this the makespan is one capped 10x straggler, not the
				// machine's sustained throughput.
				MaxEvalTime: 3 * e18MeanEval,
				DispatchOverhead: 0.05, RestartOverhead: 30,
				Faults:           &fault.Process{Nodes: 64, MTBF: 1.5e5, Horizon: 1e12},
				MaxRetries:       5, QuarantineAfter: 3,
				RetryBackoffBase: 5, RetryBackoffJitter: 0.3,
				PoisonFraction: 0.01,
				RNG:            rng.New(seed),
			},
		}
	}
	plan, err := fault.RandomShardPlan(rng.New(seed).Split("e18-shards"),
		shards, 7200, 3600, 600, 0.5)
	if err != nil {
		return core.FleetConfig{}, err
	}
	return core.FleetConfig{
		Shards: shards, NodesPerShard: e18NodesPerShard,
		DispatchOverhead: 0.05,
		Preemption:       true, WorkStealing: true,
		Tenants: []core.TenantConfig{
			tenant("search", seed, 2*nodes, 3, 1),
			tenant("background", seed+1, nodes/2, 1, 0),
		},
		Faults: plan,
	}, nil
}

// e18Searchers are the strategies compared at equal eval budget. The RL
// batch is pinned below the smallest scale's budget so the policy actually
// updates there; PBT's population likewise.
func e18Searchers() []hpo.Strategy {
	return []hpo.Strategy{hpo.RandomSearch{}, hpo.RLController{Batch: 8}, hpo.PBT{PopSize: 16}}
}

// e18Row runs one machine size end to end.
func e18Row(seed uint64, nodes int) (SearchScaleRow, error) {
	fc, err := e18Fleet(seed, nodes)
	if err != nil {
		return SearchScaleRow{}, fmt.Errorf("e18: fault plan at %d nodes: %w", nodes, err)
	}
	fr, err := core.RunFleet(fc)
	if err != nil {
		return SearchScaleRow{}, fmt.Errorf("e18: fleet at %d nodes: %w", nodes, err)
	}
	search := fr.Tenants[0]
	evalsPerHour := float64(search.Completed) / (fr.Makespan / 3600)
	budget := math.Floor(evalsPerHour * e18DeadlineHours)

	row := SearchScaleRow{
		Nodes: nodes, Shards: fc.Shards, Configs: search.Configs,
		ShardKills:  fc.Faults.NumKills(),
		Interrupted: fr.Interrupted, Steals: fr.Steals,
		Preemptions: fr.Preemptions, Retries: search.Retries,
		Quarantined:  search.QuarantinedConfigs,
		MakespanS:    fr.Makespan,
		Utilization:  fr.Utilization,
		EvalsPerHour: evalsPerHour,
		EvalBudget:   budget,
	}
	space := hpo.ArchSpace()
	for _, strat := range e18Searchers() {
		res, err := strat.Search(e18Objective, hpo.Options{
			Space: space, TotalBudget: budget, Parallelism: 64,
			RNG: rng.New(seed).Split(fmt.Sprintf("e18-%d-%s", nodes, strat.Name())),
		})
		if err != nil {
			return SearchScaleRow{}, fmt.Errorf("e18: %s at %d nodes: %w", strat.Name(), nodes, err)
		}
		arch, aerr := hpo.ArchFromConfig(res.Best.Config)
		if aerr != nil {
			return SearchScaleRow{}, fmt.Errorf("e18: %s best config does not decode: %w", strat.Name(), aerr)
		}
		row.Strategies = append(row.Strategies, SearchStrategyResult{
			Strategy: strat.Name(), Budget: budget,
			CostUsed: res.CostUsed, Trials: len(res.Trials),
			ObservedBest: res.Best.Loss,
			TrueBest:     e18TrueLoss(res.Best.Config),
			BestArch: fmt.Sprintf("%s lr=%.3g decay=%.3g", arch,
				res.Best.Config.Float("lr"), res.Best.Config.Float("decay")),
		})
	}
	return row, nil
}

// e18Sweep runs the row set.
func e18Sweep(seed uint64, nodeCounts []int) (*SearchBenchReport, error) {
	rep := &SearchBenchReport{
		Seed: seed, DeadlineHours: e18DeadlineHours, MeanEvalS: e18MeanEval,
	}
	for _, nodes := range nodeCounts {
		row, err := e18Row(seed, nodes)
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

// e18StrategyRow finds one strategy's result in a row.
func e18StrategyRow(row SearchScaleRow, name string) (SearchStrategyResult, error) {
	for _, s := range row.Strategies {
		if s.Strategy == name {
			return s, nil
		}
	}
	return SearchStrategyResult{}, fmt.Errorf("e18: row at %d nodes has no %s result", row.Nodes, name)
}

// SearchBench runs the committed profile and verifies its headline
// invariants, so a regression in the fleet scheduler, the fault layer, or
// either learning searcher can never silently regenerate a flat artifact:
//
//   - every scale ran with the fault layer genuinely on: shard kills,
//     mid-evaluation interruptions, work steals, preemptions and retries
//     all non-zero, with the eval multiset conserved per tenant;
//   - delivered throughput and the implied eval budget grow strictly with
//     machine size;
//   - at every scale, both learning searchers (the RL controller and PBT)
//     beat random search on true best-found loss at equal eval budget,
//     with no searcher overspending its budget.
func SearchBench(seed uint64, nodeCounts []int) (*SearchBenchReport, error) {
	if nodeCounts == nil {
		nodeCounts = e18Nodes
	}
	rep, err := e18Sweep(seed, nodeCounts)
	if err != nil {
		return nil, err
	}
	prevEPH, prevBudget := 0.0, 0.0
	for _, row := range rep.Rows {
		if row.ShardKills == 0 || row.Interrupted == 0 || row.Steals == 0 ||
			row.Preemptions == 0 || row.Retries == 0 {
			return nil, fmt.Errorf("e18: fault layer idle at %d nodes: kills=%d interrupted=%d steals=%d preempt=%d retries=%d",
				row.Nodes, row.ShardKills, row.Interrupted, row.Steals, row.Preemptions, row.Retries)
		}
		if row.Utilization <= 0 || row.Utilization > 1.001 {
			return nil, fmt.Errorf("e18: utilization %v at %d nodes", row.Utilization, row.Nodes)
		}
		if row.EvalsPerHour <= prevEPH || row.EvalBudget <= prevBudget {
			return nil, fmt.Errorf("e18: throughput not growing with machine size at %d nodes (%.0f evals/h budget %.0f)",
				row.Nodes, row.EvalsPerHour, row.EvalBudget)
		}
		prevEPH, prevBudget = row.EvalsPerHour, row.EvalBudget
		random, err := e18StrategyRow(row, "random")
		if err != nil {
			return nil, err
		}
		for _, s := range row.Strategies {
			if s.CostUsed > s.Budget+1e-9 {
				return nil, fmt.Errorf("e18: %s overspent at %d nodes: %.2f of %.0f",
					s.Strategy, row.Nodes, s.CostUsed, s.Budget)
			}
		}
		for _, name := range []string{"rl", "pbt"} {
			s, err := e18StrategyRow(row, name)
			if err != nil {
				return nil, err
			}
			if s.TrueBest >= random.TrueBest {
				return nil, fmt.Errorf("e18: %s true best %.4f not below random %.4f at %d nodes",
					name, s.TrueBest, random.TrueBest, row.Nodes)
			}
		}
	}
	return rep, nil
}

// E18SearchScale runs the sweep for the suite table.
func E18SearchScale(cfg Config) *trace.Table {
	t := trace.NewTable("E18 search quality vs machine size under faults",
		"nodes", "strategy", "budget", "trials", "observed-best", "true-best",
		"evals/h", "util", "kills", "steals", "preempt", "interrupted")
	nodeCounts := e18Nodes
	if cfg.Quick {
		nodeCounts = e18QuickNodes
	}
	rep, err := SearchBench(cfg.Seed, nodeCounts)
	if err != nil {
		t.AddRow(0, "error", 0, 0, 0, 0, 0, 0, 0, 0, 0, err.Error())
		return t
	}
	for _, row := range rep.Rows {
		for _, s := range row.Strategies {
			t.AddRow(row.Nodes, s.Strategy, s.Budget, s.Trials,
				s.ObservedBest, s.TrueBest,
				row.EvalsPerHour, row.Utilization,
				row.ShardKills, row.Steals, row.Preemptions, row.Interrupted)
		}
	}
	return t
}
