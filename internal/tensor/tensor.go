// Package tensor implements the dense float64 tensor type and the numerical
// kernels (blocked parallel GEMM, convolution lowering, reductions) that the
// neural-network and benchmark layers are built on.
//
// Tensors are contiguous and row-major. Views share underlying storage;
// Clone produces an independent copy. All kernels are pure Go with cache
// blocking and goroutine-level parallelism, per the repository's stdlib-only
// constraint.
package tensor

import (
	"fmt"

	"repro/internal/rng"
)

// Tensor is a dense, contiguous, row-major n-dimensional array of float64.
type Tensor struct {
	Data  []float64
	shape []int
}

// shapeLen validates shape and returns its element count. Every constructor
// and reshape path funnels through it: a negative dimension always panics,
// even when the (signed) product happens to match the data length — before
// this check FromSlice([]float64{1}, -1, -1) built a corrupt tensor whose
// shape no kernel could index.
func shapeLen(shape []int, op string) int {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: %s: negative dimension %d in shape %v", op, d, shape))
		}
		n *= d
	}
	return n
}

// New allocates a zero-filled tensor with the given shape.
func New(shape ...int) *Tensor {
	n := shapeLen(shape, "New")
	return &Tensor{Data: make([]float64, n), shape: append([]int(nil), shape...)}
}

// FromSlice wraps data (not copied) in a tensor with the given shape.
// It panics if the shape has a negative dimension or len(data) does not
// match the shape's element count.
func FromSlice(data []float64, shape ...int) *Tensor {
	n := shapeLen(shape, "FromSlice")
	if n != len(data) {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v", len(data), shape))
	}
	return &Tensor{Data: data, shape: append([]int(nil), shape...)}
}

// Shape returns the tensor's dimensions. The returned slice must not be
// modified.
func (t *Tensor) Shape() []int { return t.shape }

// Dim returns the size of axis i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Rank returns the number of axes.
func (t *Tensor) Rank() int { return len(t.shape) }

// Len returns the total element count.
func (t *Tensor) Len() int { return len(t.Data) }

// SameShape reports whether t and u have identical shapes.
func (t *Tensor) SameShape(u *Tensor) bool {
	if len(t.shape) != len(u.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != u.shape[i] {
			return false
		}
	}
	return true
}

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float64 { return t.Data[t.offset(idx)] }

// Set stores v at the given multi-index.
func (t *Tensor) Set(v float64, idx ...int) { t.Data[t.offset(idx)] = v }

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d for shape %v", len(idx), t.shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// Reshape returns a view of t with a new shape (same element count,
// shared storage). It panics on negative dimensions or element-count
// mismatch.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := shapeLen(shape, "Reshape")
	if n != len(t.Data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v to %v", t.shape, shape))
	}
	return &Tensor{Data: t.Data, shape: append([]int(nil), shape...)}
}

// Row returns a view of row i of a rank-2 tensor (shared storage).
func (t *Tensor) Row(i int) *Tensor {
	if len(t.shape) != 2 {
		panic("tensor: Row requires rank 2")
	}
	c := t.shape[1]
	return &Tensor{Data: t.Data[i*c : (i+1)*c], shape: []int{c}}
}

// SliceRows returns a view of rows [lo,hi) along axis 0 (shared storage).
func (t *Tensor) SliceRows(lo, hi int) *Tensor {
	if len(t.shape) < 1 {
		panic("tensor: SliceRows on scalar")
	}
	if lo < 0 || hi > t.shape[0] || lo > hi {
		panic(fmt.Sprintf("tensor: SliceRows[%d:%d] out of range for axis size %d", lo, hi, t.shape[0]))
	}
	stride := 1
	for _, d := range t.shape[1:] {
		stride *= d
	}
	shape := append([]int{hi - lo}, t.shape[1:]...)
	return &Tensor{Data: t.Data[lo*stride : hi*stride], shape: shape}
}

// Clone returns an independent deep copy of t.
func (t *Tensor) Clone() *Tensor {
	d := make([]float64, len(t.Data))
	copy(d, t.Data)
	return &Tensor{Data: d, shape: append([]int(nil), t.shape...)}
}

// CopyFrom copies u's elements into t (shapes must have equal length).
func (t *Tensor) CopyFrom(u *Tensor) {
	if len(t.Data) != len(u.Data) {
		panic("tensor: CopyFrom size mismatch")
	}
	copy(t.Data, u.Data)
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Zero sets every element to 0.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// FillRandNorm fills t with N(0, std) variates from r.
func (t *Tensor) FillRandNorm(r *rng.Stream, std float64) {
	for i := range t.Data {
		t.Data[i] = r.Norm() * std
	}
}

// FillRandUniform fills t with Uniform(lo,hi) variates from r.
func (t *Tensor) FillRandUniform(r *rng.Stream, lo, hi float64) {
	for i := range t.Data {
		t.Data[i] = r.Uniform(lo, hi)
	}
}

// String renders small tensors fully and large ones as a summary.
func (t *Tensor) String() string {
	if len(t.Data) <= 16 {
		return fmt.Sprintf("Tensor%v%v", t.shape, t.Data)
	}
	return fmt.Sprintf("Tensor%v[%d elems]", t.shape, len(t.Data))
}
