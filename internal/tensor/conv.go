package tensor

import "fmt"

// Conv1DOutLen returns the output length of a 1-D convolution with the given
// input length, kernel size, stride and symmetric zero padding.
func Conv1DOutLen(inLen, kernel, stride, pad int) int {
	return (inLen+2*pad-kernel)/stride + 1
}

// Im2Col1D lowers one sample of a 1-D convolution to a matrix.
//
// in is (C, L) flattened; the result col is (C*K, Lout) so that a weight
// matrix W of shape (F, C*K) yields the convolution output as W @ col
// (F, Lout). Positions outside [0,L) contribute zeros (zero padding).
func Im2Col1D(col, in *Tensor, channels, inLen, kernel, stride, pad int) {
	outLen := Conv1DOutLen(inLen, kernel, stride, pad)
	if col.Len() != channels*kernel*outLen || in.Len() != channels*inLen {
		panic(fmt.Sprintf("tensor: Im2Col1D sizes col=%d in=%d want %d,%d",
			col.Len(), in.Len(), channels*kernel*outLen, channels*inLen))
	}
	for c := 0; c < channels; c++ {
		for k := 0; k < kernel; k++ {
			rowOff := (c*kernel + k) * outLen
			for o := 0; o < outLen; o++ {
				src := o*stride + k - pad
				if src >= 0 && src < inLen {
					col.Data[rowOff+o] = in.Data[c*inLen+src]
				} else {
					col.Data[rowOff+o] = 0
				}
			}
		}
	}
}

// Col2Im1D is the adjoint of Im2Col1D: it accumulates the columns matrix
// back into the input gradient din (C, L). din is NOT zeroed first so
// callers can accumulate across samples; zero it when that is not wanted.
func Col2Im1D(din, col *Tensor, channels, inLen, kernel, stride, pad int) {
	outLen := Conv1DOutLen(inLen, kernel, stride, pad)
	if col.Len() != channels*kernel*outLen || din.Len() != channels*inLen {
		panic("tensor: Col2Im1D size mismatch")
	}
	for c := 0; c < channels; c++ {
		for k := 0; k < kernel; k++ {
			rowOff := (c*kernel + k) * outLen
			for o := 0; o < outLen; o++ {
				src := o*stride + k - pad
				if src >= 0 && src < inLen {
					din.Data[c*inLen+src] += col.Data[rowOff+o]
				}
			}
		}
	}
}

// Conv2DOutDims returns output height/width of a 2-D convolution.
func Conv2DOutDims(h, w, kernel, stride, pad int) (oh, ow int) {
	return (h+2*pad-kernel)/stride + 1, (w+2*pad-kernel)/stride + 1
}

// Im2Col2D lowers one sample of a 2-D convolution (square kernel) to a
// matrix of shape (C*K*K, OH*OW); a weight matrix (F, C*K*K) then yields
// the output as W @ col (F, OH*OW). in is (C, H, W) flattened.
func Im2Col2D(col, in *Tensor, channels, h, w, kernel, stride, pad int) {
	oh, ow := Conv2DOutDims(h, w, kernel, stride, pad)
	if col.Len() != channels*kernel*kernel*oh*ow || in.Len() != channels*h*w {
		panic("tensor: Im2Col2D size mismatch")
	}
	for c := 0; c < channels; c++ {
		for ky := 0; ky < kernel; ky++ {
			for kx := 0; kx < kernel; kx++ {
				rowOff := ((c*kernel+ky)*kernel + kx) * oh * ow
				for oy := 0; oy < oh; oy++ {
					sy := oy*stride + ky - pad
					for ox := 0; ox < ow; ox++ {
						sx := ox*stride + kx - pad
						dst := rowOff + oy*ow + ox
						if sy >= 0 && sy < h && sx >= 0 && sx < w {
							col.Data[dst] = in.Data[(c*h+sy)*w+sx]
						} else {
							col.Data[dst] = 0
						}
					}
				}
			}
		}
	}
}

// Col2Im2D is the adjoint of Im2Col2D, accumulating into din (C, H, W).
func Col2Im2D(din, col *Tensor, channels, h, w, kernel, stride, pad int) {
	oh, ow := Conv2DOutDims(h, w, kernel, stride, pad)
	if col.Len() != channels*kernel*kernel*oh*ow || din.Len() != channels*h*w {
		panic("tensor: Col2Im2D size mismatch")
	}
	for c := 0; c < channels; c++ {
		for ky := 0; ky < kernel; ky++ {
			for kx := 0; kx < kernel; kx++ {
				rowOff := ((c*kernel+ky)*kernel + kx) * oh * ow
				for oy := 0; oy < oh; oy++ {
					sy := oy*stride + ky - pad
					if sy < 0 || sy >= h {
						continue
					}
					for ox := 0; ox < ow; ox++ {
						sx := ox*stride + kx - pad
						if sx < 0 || sx >= w {
							continue
						}
						din.Data[(c*h+sy)*w+sx] += col.Data[rowOff+oy*ow+ox]
					}
				}
			}
		}
	}
}
