package tensor

import "sync"

// packedBackend is the panel-packed float32 GEMM: operands are repacked into
// contiguous, zero-padded micro-panels so a 2x4 register-blocked microkernel
// runs the same bounds-check-free inner loop for every tile, including edge
// tiles and both transpose variants (the transpose is absorbed by the pack,
// never by the compute loop).
//
// Why this beats the blocked kernel on one scalar core: the microkernel
// keeps a 2x4 accumulator tile in registers across the whole k panel — 16
// FLOPs per 6 loads and zero stores per unrolled step in the steady state,
// versus the blocked kernel's load/fma/store per element — and the packed
// panels stream sequentially from L1/L2 regardless of the original leading
// dimensions. Goroutine tiling over row panels rides the same
// ParallelFor/MaxProcs machinery as the float64 kernels.
//
// Pack buffers come from a sync.Pool of pointer-boxed slices, so a warmed-up
// call allocates nothing (pinned by alloc32_test.go).
type packedBackend struct{}

// Micro- and cache-tile sizes. mrF32 x nrF32 is the register tile: 8
// accumulators plus loop temporaries fit amd64's 16 XMM registers, where a
// 4x4 tile's 16 accumulators spill and forfeit the ILP win (measured ~2x
// slower). kcF32 bounds the packed-panel depth so one B panel (kcF32 x
// nrF32) plus one A panel stay L1-resident; mcF32 rows of packed A form one
// worker's unit of parallel work.
const (
	mrF32 = 2
	nrF32 = 4
	kcF32 = 256
	mcF32 = 128
)

// f32Scratch pools pack buffers as *[]float32 (pointer-boxed so Put does not
// allocate). Buffers only ever grow; steady state is allocation-free.
var f32Scratch = sync.Pool{New: func() any { return new([]float32) }}

func getF32Scratch(n int) *[]float32 {
	p := f32Scratch.Get().(*[]float32)
	if cap(*p) < n {
		*p = make([]float32, n)
	}
	*p = (*p)[:n]
	return p
}

func putF32Scratch(p *[]float32) { f32Scratch.Put(p) }

// Name implements Backend.
func (packedBackend) Name() string { return "packed" }

// MatMulF32 implements Backend.
func (packedBackend) MatMulF32(dst, a, b *F32) {
	m, k, n := checkMatMulF32(dst, a, b, false, false)
	packedGemmF32(dst.Data, a.Data, b.Data, m, k, n, false, false)
}

// MatMulTransAF32 implements Backend.
func (packedBackend) MatMulTransAF32(dst, a, b *F32) {
	m, k, n := checkMatMulF32(dst, a, b, true, false)
	packedGemmF32(dst.Data, a.Data, b.Data, m, k, n, true, false)
}

// MatMulTransBF32 implements Backend.
func (packedBackend) MatMulTransBF32(dst, a, b *F32) {
	m, k, n := checkMatMulF32(dst, a, b, false, true)
	packedGemmF32(dst.Data, a.Data, b.Data, m, k, n, false, true)
}

// packedGemmF32 computes dst = op(A) @ op(B) for the already-validated
// shapes. dst is fully overwritten (zero-then-accumulate, like every other
// matmul kernel in the package).
func packedGemmF32(dst, a, b []float32, m, k, n int, transA, transB bool) {
	clear(dst)
	if m == 0 || n == 0 || k == 0 {
		return
	}
	np := (n + nrF32 - 1) / nrF32
	bbuf := getF32Scratch(kcF32 * np * nrF32)
	defer putF32Scratch(bbuf)
	for k0 := 0; k0 < k; k0 += kcF32 {
		kc := min(kcF32, k-k0)
		pb := (*bbuf)[:kc*np*nrF32]
		packBF32(pb, b, k0, kc, n, k, transB)
		nPanels := (m + mcF32 - 1) / mcF32
		if nWorkers() <= 1 || nPanels <= 1 {
			packedRowPanelsF32(dst, a, pb, 0, nPanels, k0, kc, m, k, n, transA)
			continue
		}
		ParallelFor(nPanels, func(lo, hi int) {
			packedRowPanelsF32(dst, a, pb, lo, hi, k0, kc, m, k, n, transA)
		})
	}
}

// packedRowPanelsF32 processes row panels [plo,phi): packs each panel's A
// block and accumulates its microkernel tiles into dst. Each worker owns
// disjoint dst rows, so the parallel accumulation is race-free.
func packedRowPanelsF32(dst, a, pb []float32, plo, phi, k0, kc, m, k, n int, transA bool) {
	abuf := getF32Scratch(((mcF32 + mrF32 - 1) / mrF32) * mrF32 * kc)
	defer putF32Scratch(abuf)
	var ct [mrF32 * nrF32]float32
	np := (n + nrF32 - 1) / nrF32
	for p := plo; p < phi; p++ {
		i0 := p * mcF32
		mc := min(mcF32, m-i0)
		mPanels := (mc + mrF32 - 1) / mrF32
		pa := (*abuf)[:mPanels*mrF32*kc]
		packAF32(pa, a, i0, mc, k0, kc, k, m, transA)
		for jp := 0; jp < np; jp++ {
			j0 := jp * nrF32
			nr := min(nrF32, n-j0)
			bpanel := pb[jp*kc*nrF32 : (jp+1)*kc*nrF32]
			for ip := 0; ip < mPanels; ip++ {
				apanel := pa[ip*kc*mrF32 : (ip+1)*kc*mrF32]
				micro2x4F32(&ct, apanel, bpanel, kc)
				ii0 := i0 + ip*mrF32
				mr := min(mrF32, m-ii0)
				for di := 0; di < mr; di++ {
					crow := dst[(ii0+di)*n+j0 : (ii0+di)*n+j0+nr]
					for dj := range crow {
						crow[dj] += ct[di*nrF32+dj]
					}
				}
			}
		}
	}
}

// packAF32 packs A rows [i0,i0+mc) x cols [k0,k0+kc) into micro-panels of
// mrF32 rows laid out k-major (pa[panel][kk][r]), zero-padding rows past mc.
// With transA set, A is stored (K x M) and the pack absorbs the transpose.
func packAF32(pa, a []float32, i0, mc, k0, kc, ldk, m int, transA bool) {
	mPanels := (mc + mrF32 - 1) / mrF32
	for ip := 0; ip < mPanels; ip++ {
		base := ip * kc * mrF32
		for r := 0; r < mrF32; r++ {
			i := i0 + ip*mrF32 + r
			if i >= i0+mc {
				for kk := 0; kk < kc; kk++ {
					pa[base+kk*mrF32+r] = 0
				}
				continue
			}
			if transA {
				for kk := 0; kk < kc; kk++ {
					pa[base+kk*mrF32+r] = a[(k0+kk)*m+i]
				}
			} else {
				row := a[i*ldk+k0 : i*ldk+k0+kc]
				for kk, v := range row {
					pa[base+kk*mrF32+r] = v
				}
			}
		}
	}
}

// packBF32 packs B rows [k0,k0+kc) into column micro-panels of nrF32
// columns laid out k-major (pb[panel][kk][c]), zero-padding columns past n.
// With transB set, B is stored (N x K) and the pack absorbs the transpose.
func packBF32(pb, b []float32, k0, kc, n, ldk int, transB bool) {
	np := (n + nrF32 - 1) / nrF32
	for jp := 0; jp < np; jp++ {
		base := jp * kc * nrF32
		j0 := jp * nrF32
		nr := min(nrF32, n-j0)
		if transB {
			for c := 0; c < nrF32; c++ {
				if c >= nr {
					for kk := 0; kk < kc; kk++ {
						pb[base+kk*nrF32+c] = 0
					}
					continue
				}
				col := b[(j0+c)*ldk+k0 : (j0+c)*ldk+k0+kc]
				for kk, v := range col {
					pb[base+kk*nrF32+c] = v
				}
			}
			continue
		}
		for kk := 0; kk < kc; kk++ {
			row := b[(k0+kk)*n+j0 : (k0+kk)*n+j0+nr]
			o := base + kk*nrF32
			for c, v := range row {
				pb[o+c] = v
			}
			for c := nr; c < nrF32; c++ {
				pb[o+c] = 0
			}
		}
	}
}

// micro2x4F32 computes one mrF32 x nrF32 tile: ct = Apanel @ Bpanel over the
// kc-deep packed panels. The 8 accumulators live in registers for the whole
// loop; the panel reads are the only memory traffic. k is unrolled by two so
// each slice-header load amortizes over 16 FLOPs — measured ~2x over the
// single-step body on the scalar amd64 backend.
func micro2x4F32(ct *[mrF32 * nrF32]float32, pa, pb []float32, kc int) {
	var c00, c01, c02, c03, c10, c11, c12, c13 float32
	kk := 0
	for ; kk+2 <= kc; kk += 2 {
		av := pa[2*kk : 2*kk+4]
		bv := pb[4*kk : 4*kk+8]
		a0, a1 := av[0], av[1]
		b0, b1, b2, b3 := bv[0], bv[1], bv[2], bv[3]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		a0, a1 = av[2], av[3]
		b0, b1, b2, b3 = bv[4], bv[5], bv[6], bv[7]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
	}
	for ; kk < kc; kk++ {
		a0, a1 := pa[2*kk], pa[2*kk+1]
		bv := pb[4*kk : 4*kk+4]
		c00 += a0 * bv[0]
		c01 += a0 * bv[1]
		c02 += a0 * bv[2]
		c03 += a0 * bv[3]
		c10 += a1 * bv[0]
		c11 += a1 * bv[1]
		c12 += a1 * bv[2]
		c13 += a1 * bv[3]
	}
	ct[0], ct[1], ct[2], ct[3] = c00, c01, c02, c03
	ct[4], ct[5], ct[6], ct[7] = c10, c11, c12, c13
}
