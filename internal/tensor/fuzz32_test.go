package tensor

// Fuzz targets for the float32 kernel backends. Like the float64 targets in
// fuzz_test.go, the fuzzer drives shapes and a data seed while values come
// from the repo's deterministic rng, so every crash reproduces from its
// corpus entry alone. Each input exercises EVERY registered backend (the
// registry is enumerated inside the fuzz function) against the flat-index
// references in backend_oracle_test.go, on a NaN-poisoned dst so a skipped
// output element fails the overwrite contract.
//
// Run via `make fuzz` or directly:
//
//	go test -run '^$' -fuzz '^FuzzMatMulF32$' -fuzztime 10s ./internal/tensor
//
// The seed corpus pins the edge table (0/1/blockM-1/blockM/blockM+1) plus
// shapes past one packed tile in every direction: mr/nr remainders, a second
// mc row panel, and a second kc k-panel (partial-tile accumulation).

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// fuzzF32MaxK bounds the reduction dimension so a second kcF32 panel (k >
// 256) stays reachable while one naive reference evaluation stays cheap.
const fuzzF32MaxK = 2*kcF32 + 7

func clampDimF32(v, limit int) int {
	if v < 0 {
		v = -(v + 1) // avoid MinInt overflow
	}
	return v % limit
}

func addMatMulF32Seeds(f *testing.F) {
	for _, m := range edgeDims {
		for _, k := range edgeDims {
			for _, n := range edgeDims {
				f.Add(m, k, n, uint64(1))
			}
		}
	}
	// Past one packed tile: micro-tile remainders, second row panel, second
	// k panel — where pack/accumulate bookkeeping historically breaks.
	f.Add(mrF32+1, kcF32+1, nrF32+1, uint64(2))
	f.Add(mcF32+1, 2*kcF32+3, 2*nrF32+1, uint64(3))
	f.Add(2*mcF32+1, kcF32, nrF32-1, uint64(4))
	f.Add(1, fuzzF32MaxK-1, 1, uint64(5))
}

func FuzzMatMulF32(f *testing.F) {
	addMatMulF32Seeds(f)
	f.Fuzz(func(t *testing.T, m, k, n int, seed uint64) {
		m = clampDimF32(m, fuzzMaxDim)
		k = clampDimF32(k, fuzzF32MaxK)
		n = clampDimF32(n, fuzzMaxDim)
		r := rng.New(seed)
		a := randF32(r, m, k)
		b := randF32(r, k, n)
		at := randF32(r, k, m) // independent transposed-layout operands
		bt := randF32(r, n, k)
		wantAB := refMatMulF32(a, b)
		wantTA := refMatMulTransAF32(at, b)
		wantTB := refMatMulTransBF32(a, bt)
		forEachBackend(t, func(t *testing.T, bk Backend, ulpTol int64) {
			dst := poisonedF32(m, n)
			bk.MatMulF32(dst, a, b)
			expectOracle(t, dst, wantAB, k, ulpTol, "MatMulF32 "+shapeLabel(m, k, n))
			dst.Fill(nanF32())
			bk.MatMulTransAF32(dst, at, b)
			expectOracle(t, dst, wantTA, k, ulpTol, "MatMulTransAF32 "+shapeLabel(m, k, n))
			dst.Fill(nanF32())
			bk.MatMulTransBF32(dst, a, bt)
			expectOracle(t, dst, wantTB, k, ulpTol, "MatMulTransBF32 "+shapeLabel(m, k, n))
		})
	})
}

// FuzzConvF32 fuzzes the float32 im2col lowering and its adjoint against the
// float64 versions on identical values (float32 inputs convert to float64
// exactly). Im2Col only moves and zeroes elements, so the f32 col must match
// the f64 col BITWISE; Col2Im accumulates in the same loop order, so the f32
// result matches the f64 one within f32 rounding of the overlap-count-deep
// sums. The full conv (weights @ col) then goes through every backend.
func FuzzConvF32(f *testing.F) {
	f.Add(1, 1, 1, 1, 1, 0, 1, uint64(1)) // singletons
	f.Add(2, 5, 7, 3, 1, 1, 3, uint64(1)) // same-ish conv
	f.Add(3, 9, 8, 5, 2, 2, 4, uint64(2)) // strided, pad past kernel middle
	f.Add(1, 16, 16, 3, 1, 0, 2, uint64(3))
	f.Fuzz(func(t *testing.T, channels, h, w, kernel, stride, pad, filters int, seed uint64) {
		channels = 1 + clampDimF32(channels, 3)
		h = clampDimF32(h, 17)
		w = clampDimF32(w, 17)
		kernel = 1 + clampDimF32(kernel, 5)
		stride = 1 + clampDimF32(stride, 3)
		pad = clampDimF32(pad, 3)
		filters = 1 + clampDimF32(filters, 4)
		oh, ow := Conv2DOutDims(h, w, kernel, stride, pad)
		if oh <= 0 || ow <= 0 {
			t.Skip("kernel wider than padded input")
		}
		r := rng.New(seed)
		in32 := randF32(r, channels*h*w)
		in64 := New(channels * h * w)
		for i, v := range in32.Data {
			in64.Data[i] = float64(v)
		}
		ck2 := channels * kernel * kernel

		col32 := poisonedF32(ck2, oh*ow)
		Im2Col2DF32(col32, in32, channels, h, w, kernel, stride, pad)
		col64 := poisoned(ck2, oh*ow)
		Im2Col2D(col64, in64, channels, h, w, kernel, stride, pad)
		for i := range col32.Data {
			if float64(col32.Data[i]) != col64.Data[i] {
				t.Fatalf("im2col element %d: f32 %v vs f64 %v (lowering must be bitwise)",
					i, col32.Data[i], col64.Data[i])
			}
		}

		// Full conv through every backend: weights (F, C*K*K) @ col.
		w32 := randF32(r, filters, ck2)
		want := refMatMulF32(w32, col32)
		forEachBackend(t, func(t *testing.T, bk Backend, ulpTol int64) {
			out := poisonedF32(filters, oh*ow)
			bk.MatMulF32(out, w32, col32)
			expectOracle(t, out, want, ck2, ulpTol, "conv gemm")
		})

		// Adjoint: scatter col back and compare against the f64 scatter.
		din32 := NewF32(channels * h * w)
		Col2Im2DF32(din32, col32, channels, h, w, kernel, stride, pad)
		din64 := New(channels * h * w)
		Col2Im2D(din64, col64, channels, h, w, kernel, stride, pad)
		overlap := kernel * kernel // max contributions per input element
		for i := range din32.Data {
			d := float64(din32.Data[i]) - din64.Data[i]
			if d < 0 {
				d = -d
			}
			if d > 1e-5*float64(overlap+1) {
				t.Fatalf("col2im element %d: f32 %v vs f64 %v", i, din32.Data[i], din64.Data[i])
			}
		}
	})
}

func nanF32() float32 {
	return float32(math.NaN())
}
