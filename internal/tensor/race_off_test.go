//go:build !race

package tensor

// raceEnabled reports whether the race detector is active. The alloc pins
// skip under -race: the detector makes sync.Pool drop entries at random to
// expose misuse, so pooled scratch buffers legitimately re-allocate.
const raceEnabled = false
