package tensor

// Steady-state allocation pins for the float32 hot loops. The f32 path
// exists to cut memory traffic in training's inner loop, so a kernel that
// allocates per call would silently re-introduce GC pressure; these tests
// make that a build break, not a profiler finding.
//
// MaxProcs is pinned to 1: the parallel paths hand chunks to ParallelFor,
// whose closure and goroutine bookkeeping allocate by design. The serial
// fast paths in each backend return before any closure literal is
// evaluated, which is exactly what the single-core training configuration
// runs.

import (
	"testing"

	"repro/internal/rng"
)

// pinSerial forces the closure-free serial kernel paths and restores the
// previous setting on cleanup.
func pinSerial(t *testing.T) {
	t.Helper()
	if raceEnabled {
		t.Skip("race detector makes sync.Pool drop entries; alloc pins only hold in normal builds")
	}
	saved := MaxProcs
	MaxProcs = 1
	t.Cleanup(func() { MaxProcs = saved })
}

func assertZeroAllocs(t *testing.T, label string, fn func()) {
	t.Helper()
	fn() // warm: grow pooled scratch buffers once
	if n := testing.AllocsPerRun(10, fn); n != 0 {
		t.Errorf("%s: %v allocs per warmed-up call, want 0", label, n)
	}
}

func TestBlockedF32GemmZeroAllocs(t *testing.T) {
	pinSerial(t)
	bk, err := BackendByName("blocked")
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(40)
	m, k, n := 65, 70, 33
	a, b := randF32(r, m, k), randF32(r, k, n)
	at, bt := randF32(r, k, m), randF32(r, n, k)
	dst := NewF32(m, n)
	assertZeroAllocs(t, "blocked MatMulF32", func() { bk.MatMulF32(dst, a, b) })
	assertZeroAllocs(t, "blocked MatMulTransAF32", func() { bk.MatMulTransAF32(dst, at, b) })
	assertZeroAllocs(t, "blocked MatMulTransBF32", func() { bk.MatMulTransBF32(dst, a, bt) })
}

func TestPackedF32GemmZeroAllocs(t *testing.T) {
	pinSerial(t)
	bk, err := BackendByName("packed")
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(41)
	// Spans two mc row panels and two kc k-panels, so the pooled A and B
	// pack buffers both reach their steady-state size during the warm call.
	m, k, n := mcF32+3, kcF32+5, 2*nrF32+1
	a, b := randF32(r, m, k), randF32(r, k, n)
	at, bt := randF32(r, k, m), randF32(r, n, k)
	dst := NewF32(m, n)
	assertZeroAllocs(t, "packed MatMulF32", func() { bk.MatMulF32(dst, a, b) })
	assertZeroAllocs(t, "packed MatMulTransAF32", func() { bk.MatMulTransAF32(dst, at, b) })
	assertZeroAllocs(t, "packed MatMulTransBF32", func() { bk.MatMulTransBF32(dst, a, bt) })
}

func TestIm2ColConvF32ZeroAllocs(t *testing.T) {
	pinSerial(t)
	r := rng.New(42)
	channels, h, w, kernel, stride, pad, filters := 3, 14, 14, 3, 1, 1, 8
	oh, ow := Conv2DOutDims(h, w, kernel, stride, pad)
	in := randF32(r, channels*h*w)
	wt := randF32(r, filters, channels*kernel*kernel)
	col := NewF32(channels*kernel*kernel, oh*ow)
	out := NewF32(filters, oh*ow)
	din := NewF32(channels * h * w)
	assertZeroAllocs(t, "im2col conv f32", func() {
		Im2Col2DF32(col, in, channels, h, w, kernel, stride, pad)
		MatMulF32Serial(out, wt, col)
	})
	assertZeroAllocs(t, "col2im f32", func() {
		din.Zero()
		Col2Im2DF32(din, col, channels, h, w, kernel, stride, pad)
	})
}
