package tensor

// Fuzz targets comparing the blocked production kernels against the naive
// flat-index references in ref_test.go. The fuzzer drives shapes and a data
// seed; values come from the repo's deterministic rng so every crash
// reproduces from its corpus entry alone.
//
// Run via `make fuzz` (short -fuzztime per target) or directly:
//
//	go test -run '^$' -fuzz '^FuzzMatMul$' -fuzztime 10s ./internal/tensor
//
// The seed corpus pins every combination fuzzing must not regress: dims of
// 0, 1, blockM-1, blockM, blockM+1 — empty operands, singletons, and the
// three sizes straddling the cache-tile boundary.

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// fuzzMaxDim bounds fuzzed dimensions so one naive reference evaluation
// stays cheap; 131 keeps both the 63/64/65 block boundary and the
// 127/128/129 second-tile boundary reachable (the blocked MatMulTransB
// rewrite visits several tiles per dimension).
const fuzzMaxDim = 131

func clampDim(v int) int {
	if v < 0 {
		v = -(v + 1) // avoid MinInt overflow
	}
	return v % fuzzMaxDim
}

func fuzzTensor(r *rng.Stream, shape ...int) *Tensor {
	t := New(shape...)
	t.FillRandNorm(r, 1)
	return t
}

// fuzzCompare fails the fuzz run if got and want diverge. Tolerance is
// scaled by K: blocked summation reorders additions, so rounding grows with
// the reduction length.
func fuzzCompare(t *testing.T, got, want *Tensor, k int) {
	t.Helper()
	tol := 1e-12 * float64(k+1)
	for i := range got.Data {
		d := math.Abs(got.Data[i] - want.Data[i])
		if math.IsNaN(got.Data[i]) || math.IsNaN(want.Data[i]) || d > tol {
			t.Fatalf("element %d: got %v want %v (tol %v)", i, got.Data[i], want.Data[i], tol)
		}
	}
}

func addMatMulSeeds(f *testing.F) {
	for _, m := range edgeDims {
		for _, k := range edgeDims {
			for _, n := range edgeDims {
				f.Add(m, k, n, uint64(1))
			}
		}
	}
	// Second-tile boundaries: several tiles per dimension, partial k sums.
	for _, d := range []int{2*blockM - 1, 2 * blockM, 2*blockM + 1} {
		f.Add(d, d, d, uint64(2))
		f.Add(d, blockK+1, 1, uint64(3))
		f.Add(1, d, blockN+1, uint64(4))
	}
}

func FuzzMatMul(f *testing.F) {
	addMatMulSeeds(f)
	f.Fuzz(func(t *testing.T, m, k, n int, seed uint64) {
		m, k, n = clampDim(m), clampDim(k), clampDim(n)
		r := rng.New(seed)
		a := fuzzTensor(r, m, k)
		b := fuzzTensor(r, k, n)
		dst := poisoned(m, n)
		MatMul(dst, a, b)
		fuzzCompare(t, dst, refMatMul(a, b), k)
	})
}

func FuzzMatMulTransA(f *testing.F) {
	addMatMulSeeds(f)
	f.Fuzz(func(t *testing.T, m, k, n int, seed uint64) {
		m, k, n = clampDim(m), clampDim(k), clampDim(n)
		r := rng.New(seed)
		a := fuzzTensor(r, k, m) // stored transposed
		b := fuzzTensor(r, k, n)
		dst := poisoned(m, n)
		MatMulTransA(dst, a, b)
		fuzzCompare(t, dst, refMatMulTransA(a, b), k)
	})
}

func FuzzMatMulTransB(f *testing.F) {
	addMatMulSeeds(f)
	f.Fuzz(func(t *testing.T, m, k, n int, seed uint64) {
		m, k, n = clampDim(m), clampDim(k), clampDim(n)
		r := rng.New(seed)
		a := fuzzTensor(r, m, k)
		b := fuzzTensor(r, n, k) // stored transposed
		dst := poisoned(m, n)
		MatMulTransB(dst, a, b)
		fuzzCompare(t, dst, refMatMulTransB(a, b), k)
	})
}

// FuzzConv fuzzes the im2col-lowered convolution path (Im2Col1D + MatMul —
// exactly what nn.Conv1D executes) against the direct sliding-window
// reference, over channels, length, kernel, stride, and padding.
func FuzzConv(f *testing.F) {
	f.Add(1, 0, 1, 1, 0, 1, uint64(1))  // empty input
	f.Add(1, 1, 1, 1, 0, 1, uint64(1))  // singletons
	f.Add(2, 7, 3, 1, 1, 3, uint64(1))  // same-ish conv
	f.Add(3, 63, 5, 2, 2, 4, uint64(1)) // strided, boundary-length input
	f.Add(1, 65, 3, 1, 0, 2, uint64(2)) // blockM+1 input
	f.Fuzz(func(t *testing.T, channels, inLen, kernel, stride, pad, filters int, seed uint64) {
		channels = 1 + clampDim(channels)%4
		inLen = clampDim(inLen)
		kernel = 1 + clampDim(kernel)%7
		stride = 1 + clampDim(stride)%4
		pad = clampDim(pad) % 4
		filters = 1 + clampDim(filters)%4
		outLen := Conv1DOutLen(inLen, kernel, stride, pad)
		if outLen < 0 {
			t.Skip("kernel wider than padded input")
		}
		r := rng.New(seed)
		in := fuzzTensor(r, channels*inLen)
		w := fuzzTensor(r, filters, channels*kernel)
		col := poisoned(channels*kernel, outLen)
		Im2Col1D(col, in, channels, inLen, kernel, stride, pad)
		got := poisoned(filters, outLen)
		MatMul(got, w, col)
		want := refConv1D(in, w, channels, inLen, kernel, stride, pad)
		fuzzCompare(t, got, want, channels*kernel)
	})
}
