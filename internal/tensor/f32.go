package tensor

import (
	"fmt"

	"repro/internal/rng"
)

// F32 is a dense, contiguous, row-major n-dimensional array of float32 — the
// storage type of the fast kernel path. The float64 Tensor remains the
// master-weight/optimizer precision (see the package README's precision
// contract); F32 exists so the GEMM/convolution hot loops can run at real
// float32 width and memory traffic, selected through the kernel backend
// registry in backend.go.
type F32 struct {
	Data  []float32
	shape []int
}

// NewF32 allocates a zero-filled float32 tensor with the given shape.
func NewF32(shape ...int) *F32 {
	n := shapeLen(shape, "NewF32")
	return &F32{Data: make([]float32, n), shape: append([]int(nil), shape...)}
}

// F32FromSlice wraps data (not copied) in a float32 tensor with the given
// shape. It panics if the shape has a negative dimension or len(data) does
// not match the shape's element count.
func F32FromSlice(data []float32, shape ...int) *F32 {
	n := shapeLen(shape, "F32FromSlice")
	if n != len(data) {
		panic(fmt.Sprintf("tensor: F32FromSlice data length %d does not match shape %v", len(data), shape))
	}
	return &F32{Data: data, shape: append([]int(nil), shape...)}
}

// Shape returns the tensor's dimensions. The returned slice must not be
// modified.
func (t *F32) Shape() []int { return t.shape }

// Dim returns the size of axis i.
func (t *F32) Dim(i int) int { return t.shape[i] }

// Rank returns the number of axes.
func (t *F32) Rank() int { return len(t.shape) }

// Len returns the total element count.
func (t *F32) Len() int { return len(t.Data) }

// SameShape reports whether t and u have identical shapes.
func (t *F32) SameShape(u *F32) bool {
	if len(t.shape) != len(u.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != u.shape[i] {
			return false
		}
	}
	return true
}

// Reshape returns a view of t with a new shape (same element count, shared
// storage). It panics on negative dimensions or element-count mismatch.
func (t *F32) Reshape(shape ...int) *F32 {
	n := shapeLen(shape, "Reshape")
	if n != len(t.Data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v to %v", t.shape, shape))
	}
	return &F32{Data: t.Data, shape: append([]int(nil), shape...)}
}

// Row returns a view of row i of a rank-2 tensor (shared storage).
func (t *F32) Row(i int) *F32 {
	if len(t.shape) != 2 {
		panic("tensor: Row requires rank 2")
	}
	c := t.shape[1]
	return &F32{Data: t.Data[i*c : (i+1)*c], shape: []int{c}}
}

// SliceRows returns a view of rows [lo,hi) along axis 0 (shared storage).
func (t *F32) SliceRows(lo, hi int) *F32 {
	if len(t.shape) < 1 {
		panic("tensor: SliceRows on scalar")
	}
	if lo < 0 || hi > t.shape[0] || lo > hi {
		panic(fmt.Sprintf("tensor: SliceRows[%d:%d] out of range for axis size %d", lo, hi, t.shape[0]))
	}
	stride := 1
	for _, d := range t.shape[1:] {
		stride *= d
	}
	shape := append([]int{hi - lo}, t.shape[1:]...)
	return &F32{Data: t.Data[lo*stride : hi*stride], shape: shape}
}

// Clone returns an independent deep copy of t.
func (t *F32) Clone() *F32 {
	d := make([]float32, len(t.Data))
	copy(d, t.Data)
	return &F32{Data: d, shape: append([]int(nil), t.shape...)}
}

// CopyFrom copies u's elements into t (element counts must match).
func (t *F32) CopyFrom(u *F32) {
	if len(t.Data) != len(u.Data) {
		panic("tensor: CopyFrom size mismatch")
	}
	copy(t.Data, u.Data)
}

// Fill sets every element to v.
func (t *F32) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Zero sets every element to 0.
func (t *F32) Zero() { clear(t.Data) }

// FillRandNorm fills t with N(0, std) variates from r, rounded to float32.
func (t *F32) FillRandNorm(r *rng.Stream, std float64) {
	for i := range t.Data {
		t.Data[i] = float32(r.Norm() * std)
	}
}

// String renders small tensors fully and large ones as a summary.
func (t *F32) String() string {
	if len(t.Data) <= 16 {
		return fmt.Sprintf("F32%v%v", t.shape, t.Data)
	}
	return fmt.Sprintf("F32%v[%d elems]", t.shape, len(t.Data))
}
