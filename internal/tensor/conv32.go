package tensor

import "fmt"

// Float32 convolution lowering: the f32 ports of Im2Col2D/Col2Im2D. Output
// geometry comes from the shared Conv2DOutDims; only element storage
// differs, so the float64 references in ref_test.go remain the oracle for
// the lowering itself (fuzzed by FuzzConvF32).

// Im2Col2DF32 lowers one sample of a 2-D convolution (square kernel) to a
// matrix of shape (C*K*K, OH*OW); a weight matrix (F, C*K*K) then yields the
// output as W @ col. in is (C, H, W) flattened. Positions outside the input
// contribute zeros (zero padding); every col element is overwritten.
func Im2Col2DF32(col, in *F32, channels, h, w, kernel, stride, pad int) {
	oh, ow := Conv2DOutDims(h, w, kernel, stride, pad)
	if col.Len() != channels*kernel*kernel*oh*ow || in.Len() != channels*h*w {
		panic(fmt.Sprintf("tensor: Im2Col2DF32 sizes col=%d in=%d want %d,%d",
			col.Len(), in.Len(), channels*kernel*kernel*oh*ow, channels*h*w))
	}
	for c := 0; c < channels; c++ {
		for ky := 0; ky < kernel; ky++ {
			for kx := 0; kx < kernel; kx++ {
				rowOff := ((c*kernel+ky)*kernel + kx) * oh * ow
				for oy := 0; oy < oh; oy++ {
					sy := oy*stride + ky - pad
					for ox := 0; ox < ow; ox++ {
						sx := ox*stride + kx - pad
						dst := rowOff + oy*ow + ox
						if sy >= 0 && sy < h && sx >= 0 && sx < w {
							col.Data[dst] = in.Data[(c*h+sy)*w+sx]
						} else {
							col.Data[dst] = 0
						}
					}
				}
			}
		}
	}
}

// Col2Im2DF32 is the adjoint of Im2Col2DF32, accumulating into din
// (C, H, W). din is NOT zeroed first so callers can accumulate across
// samples; zero it when that is not wanted.
func Col2Im2DF32(din, col *F32, channels, h, w, kernel, stride, pad int) {
	oh, ow := Conv2DOutDims(h, w, kernel, stride, pad)
	if col.Len() != channels*kernel*kernel*oh*ow || din.Len() != channels*h*w {
		panic("tensor: Col2Im2DF32 size mismatch")
	}
	for c := 0; c < channels; c++ {
		for ky := 0; ky < kernel; ky++ {
			for kx := 0; kx < kernel; kx++ {
				rowOff := ((c*kernel+ky)*kernel + kx) * oh * ow
				for oy := 0; oy < oh; oy++ {
					sy := oy*stride + ky - pad
					if sy < 0 || sy >= h {
						continue
					}
					for ox := 0; ox < ow; ox++ {
						sx := ox*stride + kx - pad
						if sx < 0 || sx >= w {
							continue
						}
						din.Data[(c*h+sy)*w+sx] += col.Data[rowOff+oy*ow+ox]
					}
				}
			}
		}
	}
}
