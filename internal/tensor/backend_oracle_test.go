package tensor

// Differential oracle for the float32 kernel backend registry.
//
// Every registered backend is enumerated from the registry itself and checked
// against independent flat-index float32 references over both the edge-shape
// table (0, 1, blockM-1, blockM, blockM+1 per dimension) and seeded random
// shapes that cross the packed kernel's kc/mc panel boundaries. The naive
// backend must match the reference BITWISE — it defines the canonical
// k-ordered float32 accumulation. Tiled backends reorder the summation, so
// they match within a small ULP budget, with a K-scaled absolute escape for
// cancellation (a sum near zero can sit many ULPs from the reference while
// both are correct to within rounding).
//
// oracleULP below is the completeness gate: registering a backend without
// adding it there fails TestBackendRegistryComplete, so no backend can ship
// without oracle coverage.

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// oracleULP maps every registered backend to its ULP budget against the
// naive-order reference. 0 means bitwise.
var oracleULP = map[string]int64{
	"naive":   0,
	"blocked": 16,
	"packed":  16,
}

func TestBackendRegistryComplete(t *testing.T) {
	names := BackendNames()
	for _, n := range names {
		if _, ok := oracleULP[n]; !ok {
			t.Errorf("backend %q is registered but has no oracle ULP budget; add it to oracleULP and cover it", n)
		}
	}
	if len(names) != len(oracleULP) {
		t.Errorf("registry has %d backends %v, oracleULP covers %d; the two must enumerate the same set",
			len(names), names, len(oracleULP))
	}
}

// refMatMulF32 computes a (M x K) @ b (K x N) with flat indices and a single
// k-ordered float32 accumulator per element — the canonical result.
func refMatMulF32(a, b *F32) *F32 {
	m, k, n := a.Dim(0), a.Dim(1), b.Dim(1)
	out := NewF32(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for kk := 0; kk < k; kk++ {
				s += a.Data[i*k+kk] * b.Data[kk*n+j]
			}
			out.Data[i*n+j] = s
		}
	}
	return out
}

// refMatMulTransAF32 computes aᵀ @ b for a (K x M), b (K x N).
func refMatMulTransAF32(a, b *F32) *F32 {
	k, m, n := a.Dim(0), a.Dim(1), b.Dim(1)
	out := NewF32(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for kk := 0; kk < k; kk++ {
				s += a.Data[kk*m+i] * b.Data[kk*n+j]
			}
			out.Data[i*n+j] = s
		}
	}
	return out
}

// refMatMulTransBF32 computes a @ bᵀ for a (M x K), b (N x K).
func refMatMulTransBF32(a, b *F32) *F32 {
	m, k, n := a.Dim(0), a.Dim(1), b.Dim(0)
	out := NewF32(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for kk := 0; kk < k; kk++ {
				s += a.Data[i*k+kk] * b.Data[j*k+kk]
			}
			out.Data[i*n+j] = s
		}
	}
	return out
}

func randF32(r *rng.Stream, shape ...int) *F32 {
	t := NewF32(shape...)
	t.FillRandNorm(r, 1)
	return t
}

// poisonedF32 pre-fills with NaN so any element a backend fails to overwrite
// fails the comparison (every compare path rejects NaN).
func poisonedF32(shape ...int) *F32 {
	t := NewF32(shape...)
	t.Fill(float32(math.NaN()))
	return t
}

// ulpDist32 returns the distance between a and b in float32 ULPs, treating
// the floats as points on the ordered-integer number line (so +0 and -0 are
// 0 apart and values straddling zero get the sum of their magnitudes' ranks).
func ulpDist32(a, b float32) int64 {
	oa, ob := orderedBits32(a), orderedBits32(b)
	if oa > ob {
		return oa - ob
	}
	return ob - oa
}

func orderedBits32(f float32) int64 {
	b := int64(math.Float32bits(f))
	if b&0x80000000 != 0 {
		b = 0x80000000 - b
	}
	return b
}

// expectOracle checks got against the reference under the backend's ULP
// budget. ulpTol 0 demands bitwise equality. Non-zero budgets also get a
// K-scaled absolute escape for catastrophic cancellation, where relative
// (ULP) distance is meaningless.
func expectOracle(t *testing.T, got, want *F32, k int, ulpTol int64, label string) {
	t.Helper()
	if !got.SameShape(want) {
		t.Fatalf("%s: shape %v vs %v", label, got.Shape(), want.Shape())
	}
	absTol := 1e-5 * float64(k+1)
	for i := range got.Data {
		g, w := got.Data[i], want.Data[i]
		if math.IsNaN(float64(g)) || math.IsNaN(float64(w)) {
			t.Fatalf("%s: element %d got %v want %v (NaN leak)", label, i, g, w)
		}
		if math.Float32bits(g) == math.Float32bits(w) {
			continue
		}
		if ulpTol == 0 {
			t.Fatalf("%s: element %d got %x want %x (bitwise contract)",
				label, i, math.Float32bits(g), math.Float32bits(w))
		}
		if ulpDist32(g, w) > ulpTol && math.Abs(float64(g-w)) > absTol {
			t.Fatalf("%s: element %d got %v want %v (ulp %d > %d, |diff| %v > %v)",
				label, i, g, w, ulpDist32(g, w), ulpTol, math.Abs(float64(g-w)), absTol)
		}
	}
}

// forEachBackend runs fn once per registered backend as a named subtest,
// passing the backend's oracle ULP budget.
func forEachBackend(t *testing.T, fn func(t *testing.T, bk Backend, ulpTol int64)) {
	for _, name := range BackendNames() {
		bk, err := BackendByName(name)
		if err != nil {
			t.Fatal(err)
		}
		ulpTol, ok := oracleULP[name]
		if !ok {
			t.Fatalf("backend %q missing from oracleULP", name)
		}
		t.Run(name, func(t *testing.T) { fn(t, bk, ulpTol) })
	}
}

// oracleShapes returns the (m, k, n) triples every backend is checked on:
// the full edge table plus seeded shapes crossing the packed kernel's micro-
// and cache-panel boundaries (mr/nr remainders, multiple mc row panels,
// multiple kc k-panels with partial-tile accumulation).
func oracleShapes() [][3]int {
	var shapes [][3]int
	for _, m := range edgeDims {
		for _, k := range edgeDims {
			for _, n := range edgeDims {
				shapes = append(shapes, [3]int{m, k, n})
			}
		}
	}
	shapes = append(shapes,
		[3]int{mcF32 + 1, 2*kcF32 + 3, nrF32 + 1},     // multi k-panel accumulate, row-panel + nr remainders
		[3]int{2*mcF32 + mrF32 + 1, kcF32, 2 * nrF32}, // exact kc boundary, odd mr remainder
		[3]int{mrF32 - 1, kcF32 + 1, nrF32 - 1},       // sub-microtile output
		[3]int{97, 131, 89},                           // primes: nothing divides anything
	)
	return shapes
}

func TestBackendOracleMatMulF32(t *testing.T) {
	forEachBackend(t, func(t *testing.T, bk Backend, ulpTol int64) {
		r := rng.New(30)
		for _, s := range oracleShapes() {
			m, k, n := s[0], s[1], s[2]
			a, b := randF32(r, m, k), randF32(r, k, n)
			dst := poisonedF32(m, n)
			bk.MatMulF32(dst, a, b)
			expectOracle(t, dst, refMatMulF32(a, b), k, ulpTol,
				"MatMulF32 "+shapeLabel(m, k, n))
		}
	})
}

func TestBackendOracleMatMulTransAF32(t *testing.T) {
	forEachBackend(t, func(t *testing.T, bk Backend, ulpTol int64) {
		r := rng.New(31)
		for _, s := range oracleShapes() {
			m, k, n := s[0], s[1], s[2]
			a, b := randF32(r, k, m), randF32(r, k, n) // a stored transposed
			dst := poisonedF32(m, n)
			bk.MatMulTransAF32(dst, a, b)
			expectOracle(t, dst, refMatMulTransAF32(a, b), k, ulpTol,
				"MatMulTransAF32 "+shapeLabel(m, k, n))
		}
	})
}

func TestBackendOracleMatMulTransBF32(t *testing.T) {
	forEachBackend(t, func(t *testing.T, bk Backend, ulpTol int64) {
		r := rng.New(32)
		for _, s := range oracleShapes() {
			m, k, n := s[0], s[1], s[2]
			a, b := randF32(r, m, k), randF32(r, n, k) // b stored transposed
			dst := poisonedF32(m, n)
			bk.MatMulTransBF32(dst, a, b)
			expectOracle(t, dst, refMatMulTransBF32(a, b), k, ulpTol,
				"MatMulTransBF32 "+shapeLabel(m, k, n))
		}
	})
}

// TestBackendOracleParallel re-runs the headline op with kernel parallelism
// forced on, so the oracle also covers the ParallelFor code paths (and data
// races surface under -race even on a single-core host).
func TestBackendOracleParallel(t *testing.T) {
	saved := MaxProcs
	MaxProcs = 4
	defer func() { MaxProcs = saved }()
	forEachBackend(t, func(t *testing.T, bk Backend, ulpTol int64) {
		r := rng.New(33)
		m, k, n := 2*mcF32+3, kcF32+5, 3*nrF32+1
		a, b := randF32(r, m, k), randF32(r, k, n)
		dst := poisonedF32(m, n)
		bk.MatMulF32(dst, a, b)
		expectOracle(t, dst, refMatMulF32(a, b), k, ulpTol, "parallel MatMulF32")
	})
}

func TestSetBackendRoundTrip(t *testing.T) {
	saved := CurrentBackend().Name()
	defer func() {
		if err := SetBackend(saved); err != nil {
			t.Fatal(err)
		}
	}()
	for _, name := range BackendNames() {
		if err := SetBackend(name); err != nil {
			t.Fatal(err)
		}
		if got := CurrentBackend().Name(); got != name {
			t.Fatalf("SetBackend(%q) then CurrentBackend().Name() = %q", name, got)
		}
		// The package-level dispatcher must route to the pinned backend:
		// under naive the result is bitwise the reference.
		r := rng.New(34)
		a, b := randF32(r, 5, 7), randF32(r, 7, 3)
		dst := poisonedF32(5, 3)
		MatMulF32(dst, a, b)
		expectOracle(t, dst, refMatMulF32(a, b), 7, oracleULP[name], "dispatch "+name)
	}
}

func TestSetBackendUnknown(t *testing.T) {
	if err := SetBackend("no-such-backend"); err == nil {
		t.Fatal("SetBackend on an unknown name must error")
	}
	if _, err := BackendByName("no-such-backend"); err == nil {
		t.Fatal("BackendByName on an unknown name must error")
	}
}

func TestRegisterBackendPanics(t *testing.T) {
	for _, c := range []struct {
		label string
		bk    Backend
	}{
		{"duplicate name", naiveBackend{}},
		{"empty name", emptyNameBackend{}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("RegisterBackend with %s did not panic", c.label)
				}
			}()
			RegisterBackend(c.bk)
		}()
	}
}

// emptyNameBackend exists only to probe RegisterBackend's name validation.
type emptyNameBackend struct{ naiveBackend }

func (emptyNameBackend) Name() string { return "" }
