package tensor

import (
	"fmt"
	"math"
)

// Add computes dst = a + b elementwise. dst may alias a or b.
func Add(dst, a, b *Tensor) {
	checkSame3(dst, a, b, "Add")
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] + b.Data[i]
	}
}

// Sub computes dst = a - b elementwise. dst may alias a or b.
func Sub(dst, a, b *Tensor) {
	checkSame3(dst, a, b, "Sub")
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] - b.Data[i]
	}
}

// MulElem computes dst = a * b elementwise (Hadamard). dst may alias a or b.
func MulElem(dst, a, b *Tensor) {
	checkSame3(dst, a, b, "MulElem")
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] * b.Data[i]
	}
}

// Scale computes dst = s * a. dst may alias a.
func Scale(dst, a *Tensor, s float64) {
	checkSame2(dst, a, "Scale")
	for i := range dst.Data {
		dst.Data[i] = s * a.Data[i]
	}
}

// AddScaled computes dst += s * a (axpy). dst must not equal a in shape only;
// aliasing is fine.
func AddScaled(dst, a *Tensor, s float64) {
	checkSame2(dst, a, "AddScaled")
	for i := range dst.Data {
		dst.Data[i] += s * a.Data[i]
	}
}

// Apply computes dst[i] = f(a[i]). dst may alias a.
func Apply(dst, a *Tensor, f func(float64) float64) {
	checkSame2(dst, a, "Apply")
	for i := range dst.Data {
		dst.Data[i] = f(a.Data[i])
	}
}

// Dot returns the inner product of a and b viewed as flat vectors.
func Dot(a, b *Tensor) float64 {
	if len(a.Data) != len(b.Data) {
		panic("tensor: Dot size mismatch")
	}
	s := 0.0
	for i := range a.Data {
		s += a.Data[i] * b.Data[i]
	}
	return s
}

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += v
	}
	return s
}

// AbsMax returns the largest absolute element value (0 for empty tensors).
func (t *Tensor) AbsMax() float64 {
	m := 0.0
	for _, v := range t.Data {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// Norm2 returns the Euclidean norm of t viewed as a flat vector.
func (t *Tensor) Norm2() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// AddRowVector adds vector v (length C) to every row of matrix m (R x C),
// writing into dst (R x C). dst may alias m.
func AddRowVector(dst, m, v *Tensor) {
	if m.Rank() != 2 || v.Len() != m.Dim(1) || !dst.SameShape(m) {
		panic(fmt.Sprintf("tensor: AddRowVector shapes %v %v %v", dst.shape, m.shape, v.shape))
	}
	r, c := m.Dim(0), m.Dim(1)
	for i := 0; i < r; i++ {
		row := m.Data[i*c : (i+1)*c]
		out := dst.Data[i*c : (i+1)*c]
		for j := 0; j < c; j++ {
			out[j] = row[j] + v.Data[j]
		}
	}
}

// SumRows sums matrix m (R x C) over rows into dst (length C).
func SumRows(dst, m *Tensor) {
	if m.Rank() != 2 || dst.Len() != m.Dim(1) {
		panic("tensor: SumRows shape mismatch")
	}
	dst.Zero()
	r, c := m.Dim(0), m.Dim(1)
	for i := 0; i < r; i++ {
		row := m.Data[i*c : (i+1)*c]
		for j := 0; j < c; j++ {
			dst.Data[j] += row[j]
		}
	}
}

// ArgMaxRows returns, for each row of a rank-2 tensor, the column index of
// its largest element.
func ArgMaxRows(m *Tensor) []int {
	if m.Rank() != 2 {
		panic("tensor: ArgMaxRows requires rank 2")
	}
	r, c := m.Dim(0), m.Dim(1)
	out := make([]int, r)
	for i := 0; i < r; i++ {
		row := m.Data[i*c : (i+1)*c]
		best, idx := row[0], 0
		for j := 1; j < c; j++ {
			if row[j] > best {
				best, idx = row[j], j
			}
		}
		out[i] = idx
	}
	return out
}

// SoftmaxRows computes a numerically-stable softmax over each row of m into
// dst. dst may alias m.
func SoftmaxRows(dst, m *Tensor) {
	if m.Rank() != 2 || !dst.SameShape(m) {
		panic("tensor: SoftmaxRows shape mismatch")
	}
	r, c := m.Dim(0), m.Dim(1)
	for i := 0; i < r; i++ {
		row := m.Data[i*c : (i+1)*c]
		out := dst.Data[i*c : (i+1)*c]
		mx := row[0]
		for _, v := range row[1:] {
			if v > mx {
				mx = v
			}
		}
		sum := 0.0
		for j, v := range row {
			e := math.Exp(v - mx)
			out[j] = e
			sum += e
		}
		inv := 1 / sum
		for j := range out {
			out[j] *= inv
		}
	}
}

// Transpose writes the transpose of rank-2 tensor a (R x C) into dst (C x R).
// dst must not alias a.
func Transpose(dst, a *Tensor) {
	if a.Rank() != 2 || dst.Rank() != 2 || dst.Dim(0) != a.Dim(1) || dst.Dim(1) != a.Dim(0) {
		panic("tensor: Transpose shape mismatch")
	}
	r, c := a.Dim(0), a.Dim(1)
	// Blocked transpose for cache friendliness.
	const bs = 32
	for ii := 0; ii < r; ii += bs {
		for jj := 0; jj < c; jj += bs {
			iMax := min(ii+bs, r)
			jMax := min(jj+bs, c)
			for i := ii; i < iMax; i++ {
				for j := jj; j < jMax; j++ {
					dst.Data[j*r+i] = a.Data[i*c+j]
				}
			}
		}
	}
}

// ClipNorm scales t in place so its Euclidean norm does not exceed maxNorm,
// returning the pre-clip norm.
func (t *Tensor) ClipNorm(maxNorm float64) float64 {
	n := t.Norm2()
	if n > maxNorm && n > 0 {
		Scale(t, t, maxNorm/n)
	}
	return n
}

func checkSame2(a, b *Tensor, op string) {
	if len(a.Data) != len(b.Data) {
		panic(fmt.Sprintf("tensor: %s size mismatch %v vs %v", op, a.shape, b.shape))
	}
}

func checkSame3(a, b, c *Tensor, op string) {
	if len(a.Data) != len(b.Data) || len(b.Data) != len(c.Data) {
		panic(fmt.Sprintf("tensor: %s size mismatch", op))
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
