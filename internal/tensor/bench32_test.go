package tensor

import (
	"testing"

	"repro/internal/rng"
)

// Kernel micro-benchmarks backing the BENCH_kernels.json sweep: the f64
// blocked baseline and each registered f32 backend at the headline shape.
func benchGemm(b *testing.B, size int, fn func()) {
	b.Helper()
	fn()                                      // warm scratch pools and page in operands
	b.SetBytes(int64(2 * size * size * size)) // FLOPs, so MB/s reads as MFLOP/s
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fn()
	}
}

func BenchmarkGemmF64Blocked512(b *testing.B) {
	r := rng.New(1)
	a, bb, dst := randT(r, 512, 512), randT(r, 512, 512), New(512, 512)
	benchGemm(b, 512, func() { MatMul(dst, a, bb) })
}

func benchBackend512(b *testing.B, name string) {
	bk, err := BackendByName(name)
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(1)
	a, bb, dst := NewF32(512, 512), NewF32(512, 512), NewF32(512, 512)
	a.FillRandNorm(r, 1)
	bb.FillRandNorm(r, 1)
	benchGemm(b, 512, func() { bk.MatMulF32(dst, a, bb) })
}

func BenchmarkGemmF32Naive512(b *testing.B)   { benchBackend512(b, "naive") }
func BenchmarkGemmF32Blocked512(b *testing.B) { benchBackend512(b, "blocked") }
func BenchmarkGemmF32Packed512(b *testing.B)  { benchBackend512(b, "packed") }
