//go:build race

package tensor

// See race_off_test.go.
const raceEnabled = true
