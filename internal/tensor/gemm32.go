package tensor

// Float32 GEMM backends: naive (the flat-index reference every other backend
// is checked against) and blocked (the cache-tiled port of the float64
// gemmKernel). The panel-packed microkernel backend lives in packed32.go.
//
// Accumulation order is part of each backend's definition: naive accumulates
// each output element in a single k-ordered float32 sum, which is the
// canonical result the oracle suite compares against bitwise; blocked and
// packed reorder the summation across k tiles, so they match the reference
// only within a K-scaled ULP bound.

// naiveBackend is the flat-index i-j-k triple loop. It exists as the
// correctness oracle and the floor of the BENCH_kernels GFLOP/s table, not
// as a production kernel.
type naiveBackend struct{}

// Name implements Backend.
func (naiveBackend) Name() string { return "naive" }

// MatMulF32 implements Backend.
func (naiveBackend) MatMulF32(dst, a, b *F32) {
	m, k, n := checkMatMulF32(dst, a, b, false, false)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for kk := 0; kk < k; kk++ {
				s += a.Data[i*k+kk] * b.Data[kk*n+j]
			}
			dst.Data[i*n+j] = s
		}
	}
}

// MatMulTransAF32 implements Backend.
func (naiveBackend) MatMulTransAF32(dst, a, b *F32) {
	m, k, n := checkMatMulF32(dst, a, b, true, false)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for kk := 0; kk < k; kk++ {
				s += a.Data[kk*m+i] * b.Data[kk*n+j]
			}
			dst.Data[i*n+j] = s
		}
	}
}

// MatMulTransBF32 implements Backend.
func (naiveBackend) MatMulTransBF32(dst, a, b *F32) {
	m, k, n := checkMatMulF32(dst, a, b, false, true)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for kk := 0; kk < k; kk++ {
				s += a.Data[i*k+kk] * b.Data[j*k+kk]
			}
			dst.Data[i*n+j] = s
		}
	}
}

// blockedBackend is the float32 port of the float64 production kernels:
// cache-tiled in blockM x blockN x blockK tiles, parallel over dst row
// blocks. Each entry point takes a closure-free serial path when a single
// worker (or a single row block) is in play, so a warmed-up call allocates
// nothing (see alloc32_test.go).
type blockedBackend struct{}

// Name implements Backend.
func (blockedBackend) Name() string { return "blocked" }

// MatMulF32 implements Backend.
func (blockedBackend) MatMulF32(dst, a, b *F32) {
	m, k, n := checkMatMulF32(dst, a, b, false, false)
	dst.Zero()
	nb := (m + blockM - 1) / blockM
	if nWorkers() <= 1 || nb <= 1 {
		blockedF32Range(dst.Data, a.Data, b.Data, 0, nb, m, k, n)
		return
	}
	ParallelFor(nb, func(lo, hi int) {
		blockedF32Range(dst.Data, a.Data, b.Data, lo, hi, m, k, n)
	})
}

// blockedF32Range processes dst row blocks [blo,bhi) of the tiled GEMM.
func blockedF32Range(dst, a, b []float32, blo, bhi, m, k, n int) {
	for bi := blo; bi < bhi; bi++ {
		i0 := bi * blockM
		i1 := min(i0+blockM, m)
		for k0 := 0; k0 < k; k0 += blockK {
			k1 := min(k0+blockK, k)
			for j0 := 0; j0 < n; j0 += blockN {
				j1 := min(j0+blockN, n)
				gemmKernelF32(dst, a, b, i0, i1, j0, j1, k0, k1, k, n)
			}
		}
	}
}

// gemmKernelF32 computes the dst tile [i0:i1, j0:j1] +=
// A[i0:i1,k0:k1] @ B[k0:k1,j0:j1] with the same i-k-j loop order as the
// float64 gemmKernel.
func gemmKernelF32(dst, a, b []float32, i0, i1, j0, j1, k0, k1, lda, ldc int) {
	for i := i0; i < i1; i++ {
		arow := a[i*lda : i*lda+k1]
		crow := dst[i*ldc : i*ldc+j1]
		for kk := k0; kk < k1; kk++ {
			av := arow[kk]
			if av == 0 {
				continue
			}
			brow := b[kk*ldc : kk*ldc+j1]
			for j := j0; j < j1; j++ {
				crow[j] += av * brow[j]
			}
		}
	}
}

// MatMulTransAF32 implements Backend.
func (blockedBackend) MatMulTransAF32(dst, a, b *F32) {
	m, k, n := checkMatMulF32(dst, a, b, true, false)
	dst.Zero()
	nb := (m + blockM - 1) / blockM
	if nWorkers() <= 1 || nb <= 1 {
		blockedTransAF32Range(dst.Data, a.Data, b.Data, 0, nb, m, k, n)
		return
	}
	ParallelFor(nb, func(lo, hi int) {
		blockedTransAF32Range(dst.Data, a.Data, b.Data, lo, hi, m, k, n)
	})
}

// blockedTransAF32Range is the float32 port of MatMulTransA's kernel:
// workers own disjoint dst row blocks; k streams over both operands.
func blockedTransAF32Range(dst, a, b []float32, blo, bhi, m, k, n int) {
	for bi := blo; bi < bhi; bi++ {
		i0 := bi * blockM
		i1 := min(i0+blockM, m)
		for kk := 0; kk < k; kk++ {
			arow := a[kk*m : (kk+1)*m]
			brow := b[kk*n : (kk+1)*n]
			for i := i0; i < i1; i++ {
				av := arow[i]
				if av == 0 {
					continue
				}
				crow := dst[i*n : (i+1)*n]
				for j := 0; j < n; j++ {
					crow[j] += av * brow[j]
				}
			}
		}
	}
}

// MatMulTransBF32 implements Backend.
func (blockedBackend) MatMulTransBF32(dst, a, b *F32) {
	m, k, n := checkMatMulF32(dst, a, b, false, true)
	dst.Zero()
	nb := (m + blockM - 1) / blockM
	if nWorkers() <= 1 || nb <= 1 {
		blockedTransBF32Range(dst.Data, a.Data, b.Data, 0, nb, m, k, n)
		return
	}
	ParallelFor(nb, func(lo, hi int) {
		blockedTransBF32Range(dst.Data, a.Data, b.Data, lo, hi, m, k, n)
	})
}

// blockedTransBF32Range tiles the a @ bᵀ product like gemmKernelTransB: the
// inner loop is a pure dot product over the k tile.
func blockedTransBF32Range(dst, a, b []float32, blo, bhi, m, k, n int) {
	for bi := blo; bi < bhi; bi++ {
		i0 := bi * blockM
		i1 := min(i0+blockM, m)
		for k0 := 0; k0 < k; k0 += blockK {
			k1 := min(k0+blockK, k)
			for j0 := 0; j0 < n; j0 += blockN {
				j1 := min(j0+blockN, n)
				for i := i0; i < i1; i++ {
					arow := a[i*k+k0 : i*k+k1]
					crow := dst[i*n : i*n+j1]
					for j := j0; j < j1; j++ {
						brow := b[j*k+k0 : j*k+k1]
						var s float32
						for kk, av := range arow {
							s += av * brow[kk]
						}
						crow[j] += s
					}
				}
			}
		}
	}
}

// MatMulF32Serial runs the blocked f32 GEMM single-threaded regardless of
// MaxProcs. It exists for callers that are already inside a ParallelFor
// region (the per-sample im2col convolution in internal/nn), where nested
// kernel parallelism would oversubscribe the worker pool.
func MatMulF32Serial(dst, a, b *F32) {
	m, k, n := checkMatMulF32(dst, a, b, false, false)
	dst.Zero()
	blockedF32Range(dst.Data, a.Data, b.Data, 0, (m+blockM-1)/blockM, m, k, n)
}

// MatMulTransAF32Serial is the single-threaded aᵀ @ b counterpart of
// MatMulF32Serial.
func MatMulTransAF32Serial(dst, a, b *F32) {
	m, k, n := checkMatMulF32(dst, a, b, true, false)
	dst.Zero()
	blockedTransAF32Range(dst.Data, a.Data, b.Data, 0, (m+blockM-1)/blockM, m, k, n)
}

// MatMulTransBF32Serial is the single-threaded a @ bᵀ counterpart of
// MatMulF32Serial.
func MatMulTransBF32Serial(dst, a, b *F32) {
	m, k, n := checkMatMulF32(dst, a, b, false, true)
	dst.Zero()
	blockedTransBF32Range(dst.Data, a.Data, b.Data, 0, (m+blockM-1)/blockM, m, k, n)
}
