package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestNewShapeLen(t *testing.T) {
	x := New(3, 4, 5)
	if x.Len() != 60 || x.Rank() != 3 || x.Dim(1) != 4 {
		t.Fatalf("shape bookkeeping wrong: %v", x)
	}
	for _, v := range x.Data {
		if v != 0 {
			t.Fatal("New not zero-filled")
		}
	}
}

func TestAtSetRoundTrip(t *testing.T) {
	x := New(2, 3)
	x.Set(7.5, 1, 2)
	if x.At(1, 2) != 7.5 {
		t.Fatal("At/Set round trip failed")
	}
	if x.Data[5] != 7.5 {
		t.Fatal("row-major layout violated")
	}
}

func TestIndexPanics(t *testing.T) {
	x := New(2, 3)
	for _, idx := range [][]int{{2, 0}, {0, 3}, {-1, 0}, {0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("index %v did not panic", idx)
				}
			}()
			x.At(idx...)
		}()
	}
}

func TestFromSliceSharing(t *testing.T) {
	d := []float64{1, 2, 3, 4}
	x := FromSlice(d, 2, 2)
	x.Set(9, 0, 0)
	if d[0] != 9 {
		t.Fatal("FromSlice should share storage")
	}
}

func TestReshapeView(t *testing.T) {
	x := New(2, 6)
	y := x.Reshape(3, 4)
	y.Set(5, 2, 3)
	if x.At(1, 5) != 5 {
		t.Fatal("Reshape should be a view")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("bad reshape did not panic")
		}
	}()
	x.Reshape(5, 5)
}

func TestRowAndSliceRows(t *testing.T) {
	x := New(4, 3)
	for i := 0; i < 12; i++ {
		x.Data[i] = float64(i)
	}
	r := x.Row(2)
	if r.Len() != 3 || r.Data[0] != 6 {
		t.Fatalf("Row(2)=%v", r.Data)
	}
	s := x.SliceRows(1, 3)
	if s.Dim(0) != 2 || s.At(0, 0) != 3 || s.At(1, 2) != 8 {
		t.Fatalf("SliceRows wrong: %v", s.Data)
	}
	s.Set(-1, 0, 0)
	if x.At(1, 0) != -1 {
		t.Fatal("SliceRows should be a view")
	}
}

func TestCloneIndependent(t *testing.T) {
	x := New(2, 2)
	x.Fill(1)
	y := x.Clone()
	y.Fill(2)
	if x.Data[0] != 1 {
		t.Fatal("Clone not independent")
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3}, 3)
	b := FromSlice([]float64{4, 5, 6}, 3)
	dst := New(3)
	Add(dst, a, b)
	if dst.Data[2] != 9 {
		t.Fatal("Add wrong")
	}
	Sub(dst, b, a)
	if dst.Data[0] != 3 {
		t.Fatal("Sub wrong")
	}
	MulElem(dst, a, b)
	if dst.Data[1] != 10 {
		t.Fatal("MulElem wrong")
	}
	Scale(dst, a, 2)
	if dst.Data[2] != 6 {
		t.Fatal("Scale wrong")
	}
	dst.Fill(1)
	AddScaled(dst, a, 10)
	if dst.Data[0] != 11 {
		t.Fatal("AddScaled wrong")
	}
	Apply(dst, a, func(v float64) float64 { return -v })
	if dst.Data[1] != -2 {
		t.Fatal("Apply wrong")
	}
	if Dot(a, b) != 32 {
		t.Fatal("Dot wrong")
	}
	if a.Sum() != 6 || a.Norm2() != math.Sqrt(14) {
		t.Fatal("Sum/Norm2 wrong")
	}
}

func TestAbsMax(t *testing.T) {
	a := FromSlice([]float64{1, -5, 3}, 3)
	if a.AbsMax() != 5 {
		t.Fatal("AbsMax wrong")
	}
}

func TestAddRowVectorSumRows(t *testing.T) {
	m := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	v := FromSlice([]float64{10, 20}, 2)
	dst := New(2, 2)
	AddRowVector(dst, m, v)
	want := []float64{11, 22, 13, 24}
	for i := range want {
		if dst.Data[i] != want[i] {
			t.Fatalf("AddRowVector got %v", dst.Data)
		}
	}
	s := New(2)
	SumRows(s, m)
	if s.Data[0] != 4 || s.Data[1] != 6 {
		t.Fatalf("SumRows got %v", s.Data)
	}
}

func TestArgMaxRows(t *testing.T) {
	m := FromSlice([]float64{1, 5, 2, 9, 0, 3}, 2, 3)
	got := ArgMaxRows(m)
	if got[0] != 1 || got[1] != 0 {
		t.Fatalf("ArgMaxRows got %v", got)
	}
}

func TestSoftmaxRows(t *testing.T) {
	m := FromSlice([]float64{1, 2, 3, 1000, 1001, 1002}, 2, 3)
	dst := New(2, 3)
	SoftmaxRows(dst, m)
	for i := 0; i < 2; i++ {
		row := dst.Data[i*3 : (i+1)*3]
		sum := row[0] + row[1] + row[2]
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("softmax row %d sums to %v", i, sum)
		}
		for _, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatal("softmax overflow (not numerically stable)")
			}
		}
	}
	// Both rows have the same offsets so equal softmax values.
	if math.Abs(dst.At(0, 0)-dst.At(1, 0)) > 1e-12 {
		t.Fatal("softmax not shift-invariant")
	}
}

func TestTranspose(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	dst := New(3, 2)
	Transpose(dst, a)
	if dst.At(0, 1) != 4 || dst.At(2, 0) != 3 {
		t.Fatalf("Transpose got %v", dst.Data)
	}
}

func TestClipNorm(t *testing.T) {
	a := FromSlice([]float64{3, 4}, 2)
	pre := a.ClipNorm(1)
	if math.Abs(pre-5) > 1e-12 {
		t.Fatalf("pre-clip norm %v", pre)
	}
	if math.Abs(a.Norm2()-1) > 1e-12 {
		t.Fatalf("post-clip norm %v", a.Norm2())
	}
	b := FromSlice([]float64{0.1, 0.1}, 2)
	b.ClipNorm(10)
	if b.Data[0] != 0.1 {
		t.Fatal("ClipNorm scaled a small tensor")
	}
}

// naiveMatMul is the reference O(n^3) implementation used to validate the
// blocked parallel kernels.
func naiveMatMul(a, b *Tensor, transA, transB bool) *Tensor {
	get := func(t *Tensor, i, j int, trans bool) float64 {
		if trans {
			return t.At(j, i)
		}
		return t.At(i, j)
	}
	var m, k, n int
	if transA {
		k, m = a.Dim(0), a.Dim(1)
	} else {
		m, k = a.Dim(0), a.Dim(1)
	}
	if transB {
		n = b.Dim(0)
	} else {
		n = b.Dim(1)
	}
	out := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for kk := 0; kk < k; kk++ {
				s += get(a, i, kk, transA) * get(b, kk, j, transB)
			}
			out.Set(s, i, j)
		}
	}
	return out
}

func randT(r *rng.Stream, shape ...int) *Tensor {
	t := New(shape...)
	t.FillRandNorm(r, 1)
	return t
}

func maxDiff(a, b *Tensor) float64 {
	d := 0.0
	for i := range a.Data {
		if v := math.Abs(a.Data[i] - b.Data[i]); v > d {
			d = v
		}
	}
	return d
}

func TestMatMulAgainstNaive(t *testing.T) {
	r := rng.New(1)
	for _, dims := range [][3]int{{1, 1, 1}, {3, 5, 7}, {64, 64, 64}, {65, 130, 67}, {200, 33, 90}} {
		m, k, n := dims[0], dims[1], dims[2]
		a := randT(r, m, k)
		b := randT(r, k, n)
		dst := New(m, n)
		MatMul(dst, a, b)
		want := naiveMatMul(a, b, false, false)
		if d := maxDiff(dst, want); d > 1e-9 {
			t.Fatalf("MatMul %v diff %v", dims, d)
		}
	}
}

func TestMatMulTransAAgainstNaive(t *testing.T) {
	r := rng.New(2)
	for _, dims := range [][3]int{{3, 5, 7}, {65, 129, 66}} {
		m, k, n := dims[0], dims[1], dims[2]
		a := randT(r, k, m) // stored transposed
		b := randT(r, k, n)
		dst := New(m, n)
		MatMulTransA(dst, a, b)
		want := naiveMatMul(a, b, true, false)
		if d := maxDiff(dst, want); d > 1e-9 {
			t.Fatalf("MatMulTransA %v diff %v", dims, d)
		}
	}
}

func TestMatMulTransBAgainstNaive(t *testing.T) {
	r := rng.New(3)
	for _, dims := range [][3]int{{3, 5, 7}, {66, 131, 65}} {
		m, k, n := dims[0], dims[1], dims[2]
		a := randT(r, m, k)
		b := randT(r, n, k) // stored transposed
		dst := New(m, n)
		MatMulTransB(dst, a, b)
		want := naiveMatMul(a, b, false, true)
		if d := maxDiff(dst, want); d > 1e-9 {
			t.Fatalf("MatMulTransB %v diff %v", dims, d)
		}
	}
}

func TestMatVec(t *testing.T) {
	r := rng.New(4)
	a := randT(r, 37, 53)
	x := randT(r, 53)
	dst := New(37)
	MatVec(dst, a, x)
	want := naiveMatMul(a, x.Reshape(53, 1), false, false)
	if d := maxDiff(dst, want.Reshape(37)); d > 1e-9 {
		t.Fatalf("MatVec diff %v", d)
	}
}

func TestMatMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch did not panic")
		}
	}()
	MatMul(New(2, 2), New(2, 3), New(4, 2))
}

func TestMatMulAliasPanics(t *testing.T) {
	a := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("aliased dst did not panic")
		}
	}()
	MatMul(a, a, New(2, 2))
}

// Property: (A@B)ᵀ == Bᵀ@Aᵀ for random small matrices.
func TestQuickMatMulTransposeIdentity(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		m, k, n := 1+r.Intn(20), 1+r.Intn(20), 1+r.Intn(20)
		a := randT(r, m, k)
		b := randT(r, k, n)
		ab := New(m, n)
		MatMul(ab, a, b)
		abT := New(n, m)
		Transpose(abT, ab)

		aT := New(k, m)
		Transpose(aT, a)
		bT := New(n, k)
		Transpose(bT, b)
		btat := New(n, m)
		MatMul(btat, bT, aT)
		return maxDiff(abT, btat) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestParallelForCoversRange(t *testing.T) {
	out := make([]int, 1000)
	ParallelFor(1000, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i]++
		}
	})
	for i, v := range out {
		if v != 1 {
			t.Fatalf("index %d visited %d times", i, v)
		}
	}
	// Zero-length range must not call fn.
	ParallelFor(0, func(lo, hi int) { t.Fatal("fn called for empty range") })
}

func TestIm2Col1DBasic(t *testing.T) {
	// 1 channel, length 4, kernel 2, stride 1, no pad: windows (a,b),(b,c),(c,d).
	in := FromSlice([]float64{1, 2, 3, 4}, 4)
	out := Conv1DOutLen(4, 2, 1, 0)
	if out != 3 {
		t.Fatalf("outLen=%d", out)
	}
	col := New(2, 3)
	Im2Col1D(col, in, 1, 4, 2, 1, 0)
	want := []float64{1, 2, 3, 2, 3, 4}
	for i := range want {
		if col.Data[i] != want[i] {
			t.Fatalf("col=%v", col.Data)
		}
	}
}

func TestIm2Col1DPadding(t *testing.T) {
	in := FromSlice([]float64{1, 2}, 2)
	// kernel 3, pad 1, stride 1: outLen = (2+2-3)+1 = 2
	col := New(3, 2)
	Im2Col1D(col, in, 1, 2, 3, 1, 1)
	// window at o=0 covers src -1,0,1 = (0,1,2); o=1 covers 0,1,2 = (1,2,0)
	want := []float64{0, 1, 1, 2, 2, 0}
	for i := range want {
		if col.Data[i] != want[i] {
			t.Fatalf("padded col=%v", col.Data)
		}
	}
}

// Property: Col2Im1D is the exact adjoint of Im2Col1D:
// <im2col(x), y> == <x, col2im(y)> for all x, y.
func TestQuickIm2ColAdjoint1D(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		c := 1 + r.Intn(3)
		l := 4 + r.Intn(12)
		k := 1 + r.Intn(3)
		stride := 1 + r.Intn(2)
		pad := r.Intn(2)
		outLen := Conv1DOutLen(l, k, stride, pad)
		if outLen <= 0 {
			return true
		}
		x := randT(r, c*l)
		y := randT(r, c*k*outLen)
		colX := New(c * k * outLen)
		Im2Col1D(colX, x, c, l, k, stride, pad)
		lhs := Dot(colX, y)
		adj := New(c * l)
		Col2Im1D(adj, y, c, l, k, stride, pad)
		rhs := Dot(x, adj)
		return math.Abs(lhs-rhs) < 1e-9*(1+math.Abs(lhs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Col2Im2D is the exact adjoint of Im2Col2D.
func TestQuickIm2ColAdjoint2D(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		c := 1 + r.Intn(2)
		h := 4 + r.Intn(6)
		w := 4 + r.Intn(6)
		k := 1 + r.Intn(3)
		stride := 1 + r.Intn(2)
		pad := r.Intn(2)
		oh, ow := Conv2DOutDims(h, w, k, stride, pad)
		if oh <= 0 || ow <= 0 {
			return true
		}
		x := randT(r, c*h*w)
		y := randT(r, c*k*k*oh*ow)
		colX := New(c * k * k * oh * ow)
		Im2Col2D(colX, x, c, h, w, k, stride, pad)
		lhs := Dot(colX, y)
		adj := New(c * h * w)
		Col2Im2D(adj, y, c, h, w, k, stride, pad)
		rhs := Dot(x, adj)
		return math.Abs(lhs-rhs) < 1e-9*(1+math.Abs(lhs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestConv2DDims(t *testing.T) {
	oh, ow := Conv2DOutDims(28, 28, 3, 1, 1)
	if oh != 28 || ow != 28 {
		t.Fatalf("same-pad conv dims %dx%d", oh, ow)
	}
	oh, ow = Conv2DOutDims(28, 28, 3, 2, 0)
	if oh != 13 || ow != 13 {
		t.Fatalf("strided conv dims %dx%d", oh, ow)
	}
}

func BenchmarkMatMul128(b *testing.B) { benchMatMul(b, 128) }
func BenchmarkMatMul512(b *testing.B) { benchMatMul(b, 512) }

func benchMatMul(b *testing.B, n int) {
	r := rng.New(1)
	a := randT(r, n, n)
	c := randT(r, n, n)
	dst := New(n, n)
	b.SetBytes(int64(8 * n * n * 3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(dst, a, c)
	}
}
