package tensor

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Backend is one float32 GEMM implementation. All three entry points share
// the MatMul overwrite contract: dst is fully overwritten (prior contents,
// including NaNs, never leak through), dst must not alias an input, and
// shapes are validated before any element is touched.
//
// Backends are registered by name so benchmarks can sweep them
// (cmd/candlebench -kernels) and training can pin one per process
// (SetBackend). Every registered backend is enumerated by the differential
// oracle suite in backend_oracle_test.go; registering a backend without
// oracle coverage fails the registry-completeness test there.
type Backend interface {
	// Name identifies the backend ("naive", "blocked", "packed").
	Name() string
	// MatMulF32 computes dst = a @ b for a (M x K), b (K x N), dst (M x N).
	MatMulF32(dst, a, b *F32)
	// MatMulTransAF32 computes dst = aᵀ @ b for a (K x M), b (K x N).
	MatMulTransAF32(dst, a, b *F32)
	// MatMulTransBF32 computes dst = a @ bᵀ for a (M x K), b (N x K).
	MatMulTransBF32(dst, a, b *F32)
}

var (
	backendMu sync.Mutex
	backends  = map[string]Backend{}
	// defBackend holds the process-pinned default used by the package-level
	// MatMulF32 dispatchers. Atomic so benchmarks can flip it while kernel
	// goroutines from a previous configuration are still draining.
	defBackend atomic.Pointer[Backend]
)

// RegisterBackend adds b to the registry. It panics on an empty name or a
// duplicate registration — backends are wired in init() and a silent
// overwrite would let two implementations fight over one name.
func RegisterBackend(b Backend) {
	name := b.Name()
	if name == "" {
		panic("tensor: RegisterBackend with empty name")
	}
	backendMu.Lock()
	defer backendMu.Unlock()
	if _, dup := backends[name]; dup {
		panic(fmt.Sprintf("tensor: backend %q registered twice", name))
	}
	backends[name] = b
}

// BackendNames returns the registered backend names, sorted.
func BackendNames() []string {
	backendMu.Lock()
	defer backendMu.Unlock()
	names := make([]string, 0, len(backends))
	for n := range backends {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// BackendByName returns the named backend.
func BackendByName(name string) (Backend, error) {
	backendMu.Lock()
	b, ok := backends[name]
	backendMu.Unlock()
	if !ok {
		return nil, fmt.Errorf("tensor: unknown kernel backend %q (have %v)", name, BackendNames())
	}
	return b, nil
}

// SetBackend pins the process-wide default float32 backend by name; the
// package-level MatMulF32/MatMulTransAF32/MatMulTransBF32 dispatch to it.
// Training pins one backend per process; benchmarks flip it per measurement.
func SetBackend(name string) error {
	b, err := BackendByName(name)
	if err != nil {
		return err
	}
	defBackend.Store(&b)
	return nil
}

// CurrentBackend returns the process-pinned default backend.
func CurrentBackend() Backend { return *defBackend.Load() }

// MatMulF32 computes dst = a @ b on the process-pinned backend.
func MatMulF32(dst, a, b *F32) { CurrentBackend().MatMulF32(dst, a, b) }

// MatMulTransAF32 computes dst = aᵀ @ b on the process-pinned backend.
func MatMulTransAF32(dst, a, b *F32) { CurrentBackend().MatMulTransAF32(dst, a, b) }

// MatMulTransBF32 computes dst = a @ bᵀ on the process-pinned backend.
func MatMulTransBF32(dst, a, b *F32) { CurrentBackend().MatMulTransBF32(dst, a, b) }

// checkMatMulF32 mirrors checkMatMul for the float32 kernels: it validates
// shapes, returns (M, K, N) under the transpose flags, and panics if dst
// aliases an input (skipped for zero-length operands, which cannot alias).
func checkMatMulF32(dst, a, b *F32, transA, transB bool) (m, k, n int) {
	if dst.Rank() != 2 || a.Rank() != 2 || b.Rank() != 2 {
		panic("tensor: MatMulF32 requires rank-2 operands")
	}
	if transA {
		k, m = a.Dim(0), a.Dim(1)
	} else {
		m, k = a.Dim(0), a.Dim(1)
	}
	var kb int
	if transB {
		n, kb = b.Dim(0), b.Dim(1)
	} else {
		kb, n = b.Dim(0), b.Dim(1)
	}
	if kb != k {
		panic(fmt.Sprintf("tensor: MatMulF32 inner dims %d vs %d", k, kb))
	}
	if dst.Dim(0) != m || dst.Dim(1) != n {
		panic(fmt.Sprintf("tensor: MatMulF32 dst %v want [%d %d]", dst.shape, m, n))
	}
	if len(dst.Data) > 0 && len(a.Data) > 0 && len(b.Data) > 0 &&
		(&dst.Data[0] == &a.Data[0] || &dst.Data[0] == &b.Data[0]) {
		panic("tensor: MatMulF32 dst aliases an input")
	}
	return m, k, n
}

func init() {
	RegisterBackend(naiveBackend{})
	RegisterBackend(blockedBackend{})
	RegisterBackend(packedBackend{})
	// Packed is the fastest on every shape the sweep measures; naive and
	// blocked stay registered as the oracle reference and the fallback.
	if err := SetBackend("packed"); err != nil {
		panic(err)
	}
}
