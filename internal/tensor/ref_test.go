package tensor

// Naive reference kernels and edge-shape contract tests.
//
// The references here are deliberately written in flat-slice index
// arithmetic — independent of both the blocked production kernels and the
// At/Set-based naiveMatMul in tensor_test.go — so a bug in the shared
// indexing helpers cannot cancel out of the comparison. The fuzz targets in
// fuzz_test.go compare the production kernels against these on arbitrary
// shapes; the table tests below lock the contract at the block boundaries
// (0, 1, blockM-1, blockM, blockM+1) where tiled kernels historically break.
//
// Contract under test, for all four matmul kernels and MatVec: dst is fully
// overwritten — prior contents (the tests poison dst with NaN) never leak
// into the result, including the K=0 case where the result is all zeros.

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/rng"
)

// refMatMul computes a (M x K) @ b (K x N) naively.
func refMatMul(a, b *Tensor) *Tensor {
	m, k, n := a.Dim(0), a.Dim(1), b.Dim(1)
	out := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for kk := 0; kk < k; kk++ {
				s += a.Data[i*k+kk] * b.Data[kk*n+j]
			}
			out.Data[i*n+j] = s
		}
	}
	return out
}

// refMatMulTransA computes aᵀ @ b for a (K x M), b (K x N).
func refMatMulTransA(a, b *Tensor) *Tensor {
	k, m, n := a.Dim(0), a.Dim(1), b.Dim(1)
	out := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for kk := 0; kk < k; kk++ {
				s += a.Data[kk*m+i] * b.Data[kk*n+j]
			}
			out.Data[i*n+j] = s
		}
	}
	return out
}

// refMatMulTransB computes a @ bᵀ for a (M x K), b (N x K).
func refMatMulTransB(a, b *Tensor) *Tensor {
	m, k, n := a.Dim(0), a.Dim(1), b.Dim(0)
	out := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for kk := 0; kk < k; kk++ {
				s += a.Data[i*k+kk] * b.Data[j*k+kk]
			}
			out.Data[i*n+j] = s
		}
	}
	return out
}

// refConv1D computes a 1-D convolution by direct sliding window: in is
// (C, L) flattened, w is (F, C*K), out is (F, Lout). Positions outside
// [0, L) contribute zero, matching Im2Col1D's padding semantics.
func refConv1D(in, w *Tensor, channels, inLen, kernel, stride, pad int) *Tensor {
	outLen := Conv1DOutLen(inLen, kernel, stride, pad)
	filters := w.Dim(0)
	out := New(filters, outLen)
	for f := 0; f < filters; f++ {
		for o := 0; o < outLen; o++ {
			s := 0.0
			for c := 0; c < channels; c++ {
				for k := 0; k < kernel; k++ {
					src := o*stride + k - pad
					if src >= 0 && src < inLen {
						s += w.Data[f*channels*kernel+c*kernel+k] * in.Data[c*inLen+src]
					}
				}
			}
			out.Data[f*outLen+o] = s
		}
	}
	return out
}

// poisoned returns a tensor pre-filled with NaN, so any output element the
// kernel fails to overwrite shows up as NaN in the comparison.
func poisoned(shape ...int) *Tensor {
	t := New(shape...)
	t.Fill(math.NaN())
	return t
}

// expectClose fails if got and want differ anywhere by more than tol, or if
// either holds a NaN (maxDiff alone would let NaN slip through: NaN > tol
// is false).
func expectClose(t *testing.T, got, want *Tensor, tol float64, label string) {
	t.Helper()
	if len(got.Data) != len(want.Data) {
		t.Fatalf("%s: size %d vs %d", label, len(got.Data), len(want.Data))
	}
	for i := range got.Data {
		d := math.Abs(got.Data[i] - want.Data[i])
		if math.IsNaN(got.Data[i]) || math.IsNaN(want.Data[i]) || d > tol {
			t.Fatalf("%s: element %d got %v want %v", label, i, got.Data[i], want.Data[i])
		}
	}
}

// edgeDims are the shapes where cache-tiled kernels break: empty, singleton,
// and the three sizes straddling the block boundary.
var edgeDims = []int{0, 1, blockM - 1, blockM, blockM + 1}

func TestMatMulEdgeShapes(t *testing.T) {
	r := rng.New(10)
	for _, m := range edgeDims {
		for _, k := range edgeDims {
			for _, n := range edgeDims {
				a := randT(r, m, k)
				b := randT(r, k, n)
				dst := poisoned(m, n)
				MatMul(dst, a, b)
				expectClose(t, dst, refMatMul(a, b), 1e-9,
					"MatMul "+shapeLabel(m, k, n))
			}
		}
	}
}

func TestMatMulTransAEdgeShapes(t *testing.T) {
	r := rng.New(11)
	for _, m := range edgeDims {
		for _, k := range edgeDims {
			for _, n := range edgeDims {
				a := randT(r, k, m) // stored transposed
				b := randT(r, k, n)
				dst := poisoned(m, n)
				MatMulTransA(dst, a, b)
				expectClose(t, dst, refMatMulTransA(a, b), 1e-9,
					"MatMulTransA "+shapeLabel(m, k, n))
			}
		}
	}
}

func TestMatMulTransBEdgeShapes(t *testing.T) {
	r := rng.New(12)
	for _, m := range edgeDims {
		for _, k := range edgeDims {
			for _, n := range edgeDims {
				a := randT(r, m, k)
				b := randT(r, n, k) // stored transposed
				dst := poisoned(m, n)
				MatMulTransB(dst, a, b)
				expectClose(t, dst, refMatMulTransB(a, b), 1e-9,
					"MatMulTransB "+shapeLabel(m, k, n))
			}
		}
	}
}

// multiTileDims straddle the SECOND block boundary, exercising kernels that
// must visit several tiles per dimension and accumulate partial k-tile sums
// — exactly what the blocked MatMulTransB rewrite added.
var multiTileDims = []int{2*blockM - 1, 2 * blockM, 2*blockM + 1}

func TestMatMulTransBMultiTileShapes(t *testing.T) {
	r := rng.New(19)
	for _, m := range multiTileDims {
		for _, k := range multiTileDims {
			for _, n := range multiTileDims {
				a := randT(r, m, k)
				b := randT(r, n, k)
				dst := poisoned(m, n)
				MatMulTransB(dst, a, b)
				expectClose(t, dst, refMatMulTransB(a, b), 1e-9,
					"MatMulTransB "+shapeLabel(m, k, n))
			}
		}
	}
}

// TestMatMulTransBAccumulatesAcrossKTiles pins the blocked rewrite's
// accumulate contract on a dirty dst: with K spanning several blockK tiles,
// a kernel that overwrote instead of accumulating (or skipped a tile, or
// forgot dst.Zero) produces a wrong or NaN result.
func TestMatMulTransBAccumulatesAcrossKTiles(t *testing.T) {
	r := rng.New(20)
	k := 3*blockK + 5
	a := randT(r, 7, k)
	b := randT(r, 9, k)
	dst := poisoned(7, 9)
	MatMulTransB(dst, a, b)
	expectClose(t, dst, refMatMulTransB(a, b), 1e-9, "MatMulTransB k-tiles")
}

func TestMatVecEdgeShapes(t *testing.T) {
	r := rng.New(13)
	for _, m := range edgeDims {
		for _, k := range edgeDims {
			a := randT(r, m, k)
			x := randT(r, k)
			dst := poisoned(m)
			MatVec(dst, a, x)
			want := refMatMul(a, x.Reshape(k, 1)).Reshape(m)
			expectClose(t, dst, want, 1e-9, "MatVec "+shapeLabel(m, k, 1))
		}
	}
}

// TestMatMulTransBOverwritesDst pins the contract fix directly: before the
// fix MatMulTransB skipped dst.Zero(), which happened to work (plain
// overwrite) but meant the K=0 path wrote 0.0 via `=` while its siblings
// wrote it via Zero() — any blocked rewrite accumulating partial tiles
// would have silently produced garbage on a dirty dst.
func TestMatMulTransBOverwritesDst(t *testing.T) {
	a := randT(rng.New(14), 3, 0)
	b := randT(rng.New(15), 5, 0)
	dst := poisoned(3, 5)
	MatMulTransB(dst, a, b)
	expectClose(t, dst, New(3, 5), 0, "MatMulTransB K=0 on poisoned dst")
}

// TestConv1DEdgeShapes checks the im2col-lowered convolution (the path the
// nn package uses: Im2Col1D then MatMul) against the direct sliding-window
// reference, including zero-length inputs and outputs.
func TestConv1DEdgeShapes(t *testing.T) {
	r := rng.New(16)
	cases := []struct{ channels, inLen, kernel, stride, pad, filters int }{
		{1, 0, 1, 1, 0, 1},  // empty input, empty output
		{1, 1, 1, 1, 0, 1},  // singleton everything
		{1, 1, 3, 1, 1, 2},  // kernel wider than input, rescued by padding
		{2, 7, 3, 1, 0, 3},  // valid conv
		{2, 7, 3, 1, 1, 3},  // same-ish conv
		{3, 16, 5, 2, 2, 4}, // strided
		{1, 4, 4, 4, 0, 1},  // kernel == input, single output
		{2, 63, 3, 1, 1, 5}, // block-boundary output length
	}
	for _, c := range cases {
		outLen := Conv1DOutLen(c.inLen, c.kernel, c.stride, c.pad)
		in := randT(r, c.channels*c.inLen)
		w := randT(r, c.filters, c.channels*c.kernel)
		col := poisoned(c.channels*c.kernel, outLen)
		Im2Col1D(col, in, c.channels, c.inLen, c.kernel, c.stride, c.pad)
		got := poisoned(c.filters, outLen)
		MatMul(got, w, col)
		want := refConv1D(in, w, c.channels, c.inLen, c.kernel, c.stride, c.pad)
		expectClose(t, got, want, 1e-9,
			"Conv1D "+shapeLabel(c.channels, c.inLen, c.kernel))
	}
}

func shapeLabel(a, b, c int) string {
	return fmt.Sprintf("[%d %d %d]", a, b, c)
}
