package tensor

import (
	"fmt"
	"runtime"
	"sync"
)

// blockM/blockN/blockK are the cache-blocking tile sizes for GEMM. They are
// sized so one A tile plus one B tile fits comfortably in L2 on commodity
// cores (64*64*8B*2 = 64 KiB).
const (
	blockM = 64
	blockN = 64
	blockK = 64
)

// MaxProcs bounds the goroutine parallelism of the tensor kernels. Zero
// means runtime.GOMAXPROCS(0). It exists so benchmarks can pin kernel
// parallelism independently of the Go runtime setting.
var MaxProcs int

func nWorkers() int {
	if MaxProcs > 0 {
		return MaxProcs
	}
	return runtime.GOMAXPROCS(0)
}

// ParallelFor runs fn(lo,hi) over a partition of [0,n) across the kernel
// worker pool. It blocks until all chunks complete. Chunks are contiguous so
// callers can exploit cache locality.
func ParallelFor(n int, fn func(lo, hi int)) {
	w := nWorkers()
	if w > n {
		w = n
	}
	if w <= 1 {
		if n > 0 {
			fn(0, n)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (n + w - 1) / w
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// MatMul computes dst = a @ b for a (M x K) and b (K x N), dst (M x N).
// dst must not alias a or b. dst is fully overwritten: prior contents
// (including NaNs) never leak into the result, even for zero-size K.
// The kernel is cache-blocked and parallel over row blocks.
func MatMul(dst, a, b *Tensor) {
	m, k, n := checkMatMul(dst, a, b, false, false)
	dst.Zero()
	ParallelFor((m+blockM-1)/blockM, func(blo, bhi int) {
		for bi := blo; bi < bhi; bi++ {
			i0 := bi * blockM
			i1 := min(i0+blockM, m)
			for k0 := 0; k0 < k; k0 += blockK {
				k1 := min(k0+blockK, k)
				for j0 := 0; j0 < n; j0 += blockN {
					j1 := min(j0+blockN, n)
					gemmKernel(dst.Data, a.Data, b.Data, i0, i1, j0, j1, k0, k1, k, n)
				}
			}
		}
	})
}

// gemmKernel computes the dst tile [i0:i1, j0:j1] += A[i0:i1,k0:k1] @ B[k0:k1,j0:j1]
// with an i-k-j loop order that streams both B and dst rows.
func gemmKernel(dst, a, b []float64, i0, i1, j0, j1, k0, k1, lda, ldc int) {
	for i := i0; i < i1; i++ {
		arow := a[i*lda : i*lda+k1]
		crow := dst[i*ldc : i*ldc+j1]
		for kk := k0; kk < k1; kk++ {
			av := arow[kk]
			if av == 0 {
				continue
			}
			brow := b[kk*ldc : kk*ldc+j1]
			for j := j0; j < j1; j++ {
				crow[j] += av * brow[j]
			}
		}
	}
}

// MatMulTransA computes dst = aᵀ @ b for a (K x M) and b (K x N), dst (M x N).
// dst must not alias a or b. dst is fully overwritten (same contract as
// MatMul). Used for weight gradients (Xᵀ·dY).
func MatMulTransA(dst, a, b *Tensor) {
	m, k, n := checkMatMul(dst, a, b, true, false)
	dst.Zero()
	// Parallelise over output row blocks; each worker owns disjoint dst rows.
	ParallelFor((m+blockM-1)/blockM, func(blo, bhi int) {
		for bi := blo; bi < bhi; bi++ {
			i0 := bi * blockM
			i1 := min(i0+blockM, m)
			for kk := 0; kk < k; kk++ {
				arow := a.Data[kk*m : (kk+1)*m]
				brow := b.Data[kk*n : (kk+1)*n]
				for i := i0; i < i1; i++ {
					av := arow[i]
					if av == 0 {
						continue
					}
					crow := dst.Data[i*n : (i+1)*n]
					for j := 0; j < n; j++ {
						crow[j] += av * brow[j]
					}
				}
			}
		}
	})
}

// MatMulTransB computes dst = a @ bᵀ for a (M x K) and b (N x K), dst (M x N).
// dst must not alias a or b. dst is fully overwritten (same zero-then-
// accumulate contract as MatMul and MatMulTransA). Used for input gradients
// (dY·Wᵀ). The kernel is cache-blocked like MatMul — workers own disjoint
// dst row blocks, and the k dimension is tiled so one A tile and one B tile
// stay resident while each dst tile accumulates.
func MatMulTransB(dst, a, b *Tensor) {
	m, k, n := checkMatMul(dst, a, b, false, true)
	dst.Zero()
	ParallelFor((m+blockM-1)/blockM, func(blo, bhi int) {
		for bi := blo; bi < bhi; bi++ {
			i0 := bi * blockM
			i1 := min(i0+blockM, m)
			for k0 := 0; k0 < k; k0 += blockK {
				k1 := min(k0+blockK, k)
				for j0 := 0; j0 < n; j0 += blockN {
					j1 := min(j0+blockN, n)
					gemmKernelTransB(dst.Data, a.Data, b.Data, i0, i1, j0, j1, k0, k1, k, n)
				}
			}
		}
	})
}

// gemmKernelTransB computes the dst tile [i0:i1, j0:j1] +=
// A[i0:i1,k0:k1] @ B[j0:j1,k0:k1]ᵀ. Both operands stream along k, so the
// inner loop is a pure dot product over the k tile.
func gemmKernelTransB(dst, a, b []float64, i0, i1, j0, j1, k0, k1, ldk, ldc int) {
	for i := i0; i < i1; i++ {
		arow := a[i*ldk+k0 : i*ldk+k1]
		crow := dst[i*ldc : i*ldc+j1]
		for j := j0; j < j1; j++ {
			brow := b[j*ldk+k0 : j*ldk+k1]
			s := 0.0
			for kk, av := range arow {
				s += av * brow[kk]
			}
			crow[j] += s
		}
	}
}

// MatVec computes dst = a @ x for a (M x K) and x (K), dst (M).
// dst is fully overwritten.
func MatVec(dst, a, x *Tensor) {
	if a.Rank() != 2 || a.Dim(1) != x.Len() || dst.Len() != a.Dim(0) {
		panic(fmt.Sprintf("tensor: MatVec shapes %v %v %v", dst.shape, a.shape, x.shape))
	}
	m, k := a.Dim(0), a.Dim(1)
	ParallelFor(m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := a.Data[i*k : (i+1)*k]
			s := 0.0
			for j := 0; j < k; j++ {
				s += row[j] * x.Data[j]
			}
			dst.Data[i] = s
		}
	})
}

// checkMatMul validates shapes and returns (M, K, N) given the transpose
// flags, and panics on aliasing of dst with an input. The aliasing probe
// compares backing-array addresses, so it must be (and is) skipped for any
// zero-length operand: &t.Data[0] on an empty slice would itself panic,
// and empty tensors cannot alias anything.
func checkMatMul(dst, a, b *Tensor, transA, transB bool) (m, k, n int) {
	if dst.Rank() != 2 || a.Rank() != 2 || b.Rank() != 2 {
		panic("tensor: MatMul requires rank-2 operands")
	}
	if transA {
		k, m = a.Dim(0), a.Dim(1)
	} else {
		m, k = a.Dim(0), a.Dim(1)
	}
	var kb int
	if transB {
		n, kb = b.Dim(0), b.Dim(1)
	} else {
		kb, n = b.Dim(0), b.Dim(1)
	}
	if kb != k {
		panic(fmt.Sprintf("tensor: MatMul inner dims %d vs %d", k, kb))
	}
	if dst.Dim(0) != m || dst.Dim(1) != n {
		panic(fmt.Sprintf("tensor: MatMul dst %v want [%d %d]", dst.shape, m, n))
	}
	if len(dst.Data) > 0 && len(a.Data) > 0 && len(b.Data) > 0 &&
		(&dst.Data[0] == &a.Data[0] || &dst.Data[0] == &b.Data[0]) {
		panic("tensor: MatMul dst aliases an input")
	}
	return m, k, n
}
