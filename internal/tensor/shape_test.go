package tensor

// Table tests for the shape/element-count validation shared by every tensor
// constructor and Reshape. Before shapeLen, FromSlice([]float64{1}, -1, -1)
// built a corrupt tensor (negative dims multiply to a positive count) and
// mismatched FromSlice lengths surfaced later as index panics far from the
// construction site.

import "testing"

func TestFromSliceShapeMismatchPanics(t *testing.T) {
	cases := []struct {
		label string
		data  int // element count of the backing slice
		shape []int
	}{
		{"too few elements", 3, []int{2, 2}},
		{"too many elements", 5, []int{2, 2}},
		{"zero shape nonzero data", 1, []int{0}},
		{"negative dim", 1, []int{-1}},
		{"negative dims multiplying positive", 1, []int{-1, -1}},
		{"negative dim with zero", 0, []int{-1, 0}},
	}
	for _, c := range cases {
		t.Run("f64 "+c.label, func(t *testing.T) {
			defer expectPanic(t, "FromSlice "+c.label)
			FromSlice(make([]float64, c.data), c.shape...)
		})
		t.Run("f32 "+c.label, func(t *testing.T) {
			defer expectPanic(t, "F32FromSlice "+c.label)
			F32FromSlice(make([]float32, c.data), c.shape...)
		})
	}
}

func TestReshapeMismatchPanics(t *testing.T) {
	cases := []struct {
		label string
		shape []int
	}{
		{"wrong count", []int{5}},
		{"negative dim", []int{-1, 6}},
		{"negative dims multiplying to count", []int{-2, -3}},
	}
	for _, c := range cases {
		t.Run("f64 "+c.label, func(t *testing.T) {
			defer expectPanic(t, "Reshape "+c.label)
			New(2, 3).Reshape(c.shape...)
		})
		t.Run("f32 "+c.label, func(t *testing.T) {
			defer expectPanic(t, "F32 Reshape "+c.label)
			NewF32(2, 3).Reshape(c.shape...)
		})
	}
}

func TestNewNegativeDimPanics(t *testing.T) {
	t.Run("f64", func(t *testing.T) {
		defer expectPanic(t, "New negative dim")
		New(2, -3)
	})
	t.Run("f32", func(t *testing.T) {
		defer expectPanic(t, "NewF32 negative dim")
		NewF32(2, -3)
	})
}

// TestShapeValidationAccepts pins the happy paths the checks must not
// reject: empty shapes (scalars with one element) and zero-sized axes.
func TestShapeValidationAccepts(t *testing.T) {
	if got := FromSlice([]float64{7}).Len(); got != 1 {
		t.Fatalf("scalar FromSlice Len = %d", got)
	}
	if got := F32FromSlice([]float32{7}).Len(); got != 1 {
		t.Fatalf("scalar F32FromSlice Len = %d", got)
	}
	if got := New(0, 5).Len(); got != 0 {
		t.Fatalf("New(0,5) Len = %d", got)
	}
	if got := NewF32(3, 0).Len(); got != 0 {
		t.Fatalf("NewF32(3,0) Len = %d", got)
	}
	if got := New(0, 6).Reshape(6, 0); got.Len() != 0 {
		t.Fatal("zero-element reshape should succeed")
	}
}

// expectPanic is used as `defer expectPanic(t, label)`: it runs as the
// deferred function itself, so its recover() observes the test's panic.
func expectPanic(t *testing.T, label string) {
	t.Helper()
	if recover() == nil {
		t.Errorf("%s: did not panic", label)
	}
}
