// Package parallel implements the paper's three parallelism regimes as real
// concurrent programs: synchronous data-parallel SGD over allreduce, layer-
// partitioned model-parallel pipelines over point-to-point activations, and
// the data x model hybrid. Search parallelism lives in internal/hpo's worker
// pool; internal/machine prices all three regimes on modelled hardware.
//
// Ranks are goroutines communicating through internal/comm, so the message
// patterns (and the per-rank byte counts the machine model consumes) are
// the same as an MPI implementation's.
package parallel

import (
	"fmt"
	"math"
	"time"

	"repro/internal/comm"
	"repro/internal/fault"
	"repro/internal/lowp"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// busyImbalance summarises per-worker busy seconds as max/min (1 = perfectly
// balanced; 0 when undefined). Busy time excludes communication waits, so it
// isolates compute stragglers from synchronisation cost.
func busyImbalance(busy []float64) float64 {
	if len(busy) == 0 {
		return 0
	}
	minB, maxB := math.Inf(1), math.Inf(-1)
	for _, b := range busy {
		if b < minB {
			minB = b
		}
		if b > maxB {
			maxB = b
		}
	}
	if minB <= 0 {
		return 0
	}
	return maxB / minB
}

// ShardedData feeds each rank its own shard-assigned batch stream (the data
// plane's Partition implements it). Every rank must deliver exactly
// StepsPerEpoch batches per epoch so the synchronous allreduce stays in
// lockstep.
type ShardedData interface {
	// Workers returns how many ranks the data is partitioned across.
	Workers() int
	// StepsPerEpoch returns the per-rank batches per epoch (equal by rank).
	StepsPerEpoch() int
	// Iterator returns the given rank's batch iterator.
	Iterator(rank int) nn.BatchIterator
}

// DataParallelConfig configures synchronous data-parallel training.
type DataParallelConfig struct {
	// Replicas is the number of model replicas (ranks).
	Replicas int
	// Data, if non-nil, streams each rank's batches from its shard
	// assignment instead of the in-memory (x, y) path; pass nil tensors to
	// TrainDataParallel, and GlobalBatch / RNG are not required (the data
	// plane owns batch size and sample order).
	Data ShardedData
	// Algo selects the gradient allreduce algorithm.
	Algo comm.AllReduceAlgorithm
	// Loss and NewOptimizer define the training objective; NewOptimizer is
	// called once per rank so every replica steps identically.
	Loss         nn.Loss
	NewOptimizer func() nn.Optimizer
	// GlobalBatch is the total batch per step, sharded across replicas.
	GlobalBatch int
	// Epochs is the number of passes over the data.
	Epochs int
	// GradPrecision optionally compresses gradients before the allreduce
	// (FP64 = no compression) — the knob for the paper's "future DNNs may
	// rely less on dense communication patterns".
	GradPrecision lowp.Precision
	// BucketElems, when > 0, switches gradient sync to the bucketed path:
	// gradient tensors are grouped (in backward-completion order) into
	// buckets of at least this many elements and reduced independently.
	// At full precision the result is bitwise identical to the flat path
	// for the segmentation-invariant algorithms (tree, recursive-doubling,
	// Rabenseifner); ring may differ by float rounding.
	BucketElems int
	// Overlap submits each bucket as soon as its last layer finishes
	// backward, hiding communication behind the remaining compute.
	// Requires BucketElems > 0.
	Overlap bool
	// Compress selects error-feedback gradient compression for the bucketed
	// path (top-k sparsification or int8 quantisation; the compression
	// error is carried forward as a residual, not lost). Requires
	// BucketElems > 0.
	Compress lowp.CompressKind
	// TopKRatio is the keep fraction for Compress == CompressTopK.
	TopKRatio float64
	// LinkFaults, when non-nil, runs all gradient communication over the
	// CRC-framed lossy transport with faults drawn from LinkFaultSeed.
	// Results are unchanged — the transport retransmits around injected
	// drops/corruption — only the traffic accounting moves (Retransmits).
	LinkFaults    *fault.LinkFault
	LinkFaultSeed uint64
	// RNG shuffles the data each epoch.
	RNG *rng.Stream
	// Obs, if enabled, records per-rank forward/backward/allreduce/optimizer
	// spans (tid = rank), epoch hooks from rank 0, and collective telemetry.
	Obs *obs.Session
}

// DataParallelResult reports a data-parallel run.
type DataParallelResult struct {
	EpochLoss []float64
	Steps     int
	// BytesPerRank is the mean communication volume per rank.
	BytesPerRank float64
	// TotalBytes is the total bytes all ranks sent.
	TotalBytes int
	// WorkerBusy is each rank's compute wall-time in seconds (forward,
	// backward, optimizer — excluding the allreduce and its straggler wait).
	WorkerBusy []float64
	// BusyImbalance is max/min of WorkerBusy: 1 = perfectly balanced; the
	// gap is the straggler effect the allreduce barrier turns into idle time.
	BusyImbalance float64

	// Buckets is the number of gradient buckets per step (0 = flat path).
	Buckets int
	// CommSeconds is the mean per-rank time spent inside bucket collectives
	// (measured on the comm goroutine, whether hidden or not).
	CommSeconds float64
	// ExposedCommSeconds is the mean per-rank time the trainer actually
	// blocked waiting for buckets — the communication left on the critical
	// path after overlap.
	ExposedCommSeconds float64
	// OverlapFraction is 1 - exposed/total comm time in [0, 1]: the share
	// of communication hidden behind backward compute.
	OverlapFraction float64
	// CompressionRatio is raw/wire gradient words (0 when uncompressed).
	CompressionRatio float64
	// Retransmits counts frames re-sent by the fault-aware transport
	// (always 0 on a clean fabric).
	Retransmits int
}

// TrainDataParallel trains net on (x, y) with synchronous data-parallel SGD
// and returns the result; net is updated in place with the final (identical
// on every replica) weights.
func TrainDataParallel(net *nn.Net, x, y *tensor.Tensor, cfg DataParallelConfig) (*DataParallelResult, error) {
	if cfg.Replicas < 1 {
		return nil, fmt.Errorf("parallel: need >=1 replica")
	}
	if cfg.Loss == nil || cfg.NewOptimizer == nil {
		return nil, fmt.Errorf("parallel: Loss and NewOptimizer required")
	}
	if cfg.Epochs < 1 {
		cfg.Epochs = 1
	}
	if (cfg.Overlap || cfg.Compress != lowp.CompressNone) && cfg.BucketElems <= 0 {
		return nil, fmt.Errorf("parallel: Overlap/Compress require BucketElems > 0")
	}
	n := 0
	if cfg.Data != nil {
		if x != nil || y != nil {
			return nil, fmt.Errorf("parallel: Data and in-memory (x, y) are mutually exclusive")
		}
		if w := cfg.Data.Workers(); w != cfg.Replicas {
			return nil, fmt.Errorf("parallel: Data partitioned for %d ranks, want %d", w, cfg.Replicas)
		}
	} else {
		if cfg.GlobalBatch < cfg.Replicas {
			return nil, fmt.Errorf("parallel: global batch %d < replicas %d", cfg.GlobalBatch, cfg.Replicas)
		}
		if cfg.RNG == nil {
			return nil, fmt.Errorf("parallel: RNG required")
		}
		n = x.Dim(0)
		if y.Dim(0) != n {
			return nil, fmt.Errorf("parallel: %d inputs vs %d targets", n, y.Dim(0))
		}
	}

	p := cfg.Replicas
	replicas := make([]*nn.Net, p)
	opts := make([]nn.Optimizer, p)
	for i := range replicas {
		if i == 0 {
			replicas[i] = net
		} else {
			replicas[i] = net.Clone()
		}
		opts[i] = cfg.NewOptimizer()
	}

	// Precompute the epoch orders once so all ranks agree (in-memory path;
	// the data plane seeds per-rank orders itself).
	var orders [][]int
	perRank := 0
	stepsPerEpoch := 0
	if cfg.Data != nil {
		stepsPerEpoch = cfg.Data.StepsPerEpoch()
		if stepsPerEpoch == 0 {
			return nil, fmt.Errorf("parallel: Data delivers zero steps per epoch")
		}
	} else {
		orders = make([][]int, cfg.Epochs)
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		for e := range orders {
			cfg.RNG.ShuffleInts(order)
			orders[e] = append([]int(nil), order...)
		}
		perRank = cfg.GlobalBatch / p
		stepsPerEpoch = n / (perRank * p)
		if stepsPerEpoch == 0 {
			stepsPerEpoch = 1
		}
	}

	world := comm.NewWorld(p)
	world.SetObs(cfg.Obs)
	if cfg.LinkFaults != nil {
		if err := world.SetLinkFaults(*cfg.LinkFaults, cfg.LinkFaultSeed); err != nil {
			return nil, err
		}
	}
	epochLoss := make([][]float64, p)
	busy := make([]float64, p)
	res := &DataParallelResult{}

	// The bucket plan is a pure function of the architecture, shared
	// read-only by every rank so their bucket sequences line up.
	var plan *bucketPlan
	commSec := make([]float64, p)
	exposedSec := make([]float64, p)
	compRatio := make([]float64, p)
	if cfg.BucketElems > 0 {
		plan = buildBucketPlan(net, cfg.BucketElems)
	}

	world.Run(func(rank *comm.Rank) {
		id := rank.ID()
		o := cfg.Obs
		instr := o.Enabled()
		model := replicas[id]
		opt := opts[id]
		params := model.Params()
		grads := model.Grads()
		flat := flatSize(grads)
		buf := make([]float64, flat)
		losses := make([]float64, 0, cfg.Epochs)
		var bs *bucketSyncer
		if plan != nil {
			bs = newBucketSyncer(rank, plan, grads, cfg)
		}
		var it nn.BatchIterator
		if cfg.Data != nil {
			it = cfg.Data.Iterator(id)
		}

		for e := 0; e < cfg.Epochs; e++ {
			var ord []int
			if it != nil {
				it.Reset(e)
			} else {
				ord = orders[e]
			}
			epochTotal := 0.0
			epochStart := time.Now()
			for s := 0; s < stepsPerEpoch; s++ {
				stepStart := time.Now()
				computeStart := stepStart
				var sp *obs.Span
				if instr {
					sp = o.Span(id, "forward")
				}
				var bx, by *tensor.Tensor
				if it != nil {
					var ok bool
					bx, by, ok = it.Next()
					if !ok {
						panic(fmt.Sprintf("parallel: rank %d data ran dry at step %d of %d", id, s, stepsPerEpoch))
					}
				} else {
					base := s * perRank * p
					lo := base + id*perRank
					hi := lo + perRank
					if hi > n {
						hi = n
					}
					bx, by = gather(x, y, ord[lo:hi])
				}
				model.ZeroGrads()
				out := model.Forward(bx, true)
				loss := cfg.Loss.Loss(out, by)
				if instr {
					sp.End()
					sp = o.Span(id, "backward")
				}
				dout := tensor.New(out.Shape()...)
				cfg.Loss.Grad(dout, out, by)
				if bs != nil {
					// Bucketed path: overlap submits buckets from the
					// backward hook; otherwise they all queue here. Either
					// way drain leaves the averaged gradients in place.
					if instr {
						// One trace per step: every bucket span this step
						// carries it, and the bucket-time histogram exemplars
						// point back at the step that produced them.
						c := o.NewTrace()
						c.Baggage = fmt.Sprintf("rank%d.step%d", id, e*stepsPerEpoch+s)
						bs.reducer.SetCtx(c)
					}
					var hook func(int)
					if cfg.Overlap {
						hook = bs.onLayerDone
					}
					model.BackwardWithHook(dout, hook)
					bs.submitAll()
					if instr {
						sp.End()
					}
					busy[id] += time.Since(computeStart).Seconds()
					e0 := bs.exposed
					drainTotal := bs.drain()
					// Decode/unflatten work inside drain is compute; only
					// the blocked Wait portion is exposed communication.
					busy[id] += (drainTotal - (bs.exposed - e0)).Seconds()
					computeStart = time.Now()
					if instr {
						sp = o.Span(id, "optimizer")
					}
					opt.Step(params, grads)
				} else {
					model.Backward(dout)

					// Optional gradient compression before the wire.
					if cfg.GradPrecision != lowp.FP64 {
						for _, g := range grads {
							lowp.RoundTensor(g, cfg.GradPrecision)
						}
					}
					flatten(grads, buf)
					if instr {
						sp.End()
					}
					busy[id] += time.Since(computeStart).Seconds()
					rank.AllReduce(buf, cfg.Algo)
					computeStart = time.Now()
					if instr {
						sp = o.Span(id, "optimizer")
					}
					scale := 1 / float64(p)
					for i := range buf {
						buf[i] *= scale
					}
					unflatten(buf, grads)
					opt.Step(params, grads)
				}
				if instr {
					sp.End()
				}
				busy[id] += time.Since(computeStart).Seconds()
				epochTotal += loss
				if instr && id == 0 {
					o.OnStep(e*stepsPerEpoch+s, loss, time.Since(stepStart))
				}
			}
			losses = append(losses, epochTotal/float64(stepsPerEpoch))
			if instr && id == 0 {
				o.OnEpoch(e, losses[len(losses)-1], time.Since(epochStart))
			}
		}
		epochLoss[id] = losses
		if bs != nil {
			cs, es, err := bs.close()
			if err != nil {
				panic(err)
			}
			commSec[id], exposedSec[id] = cs, es
			if bs.compressor != nil {
				compRatio[id] = bs.compressor.CompressionRatio()
			}
		}
	})

	res.EpochLoss = epochLoss[0]
	res.Steps = stepsPerEpoch * cfg.Epochs
	res.TotalBytes = world.TotalBytes()
	res.BytesPerRank = float64(res.TotalBytes) / float64(p)
	res.WorkerBusy = busy
	res.BusyImbalance = busyImbalance(busy)
	for i := 0; i < p; i++ {
		res.Retransmits += world.Stats(i).Retransmits
	}
	if plan != nil {
		res.Buckets = len(plan.buckets)
		res.CommSeconds = mean(commSec)
		res.ExposedCommSeconds = mean(exposedSec)
		res.OverlapFraction = overlapFraction(res.CommSeconds, res.ExposedCommSeconds)
		res.CompressionRatio = compRatio[0]
		cfg.Obs.SetGauge("parallel.overlap_fraction", res.OverlapFraction)
		cfg.Obs.SetGauge("parallel.comm.exposed_seconds", res.ExposedCommSeconds)
		cfg.Obs.SetGauge("parallel.comm.total_seconds", res.CommSeconds)
	}
	return res, nil
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// VerifyReplicasInSync returns the maximum parameter divergence between
// replica nets — should be ~0 after synchronous training.
func VerifyReplicasInSync(nets []*nn.Net) float64 {
	if len(nets) < 2 {
		return 0
	}
	ref := nets[0].Params()
	worst := 0.0
	for _, other := range nets[1:] {
		ps := other.Params()
		for i, p := range ps {
			for j := range p.Data {
				if d := math.Abs(p.Data[j] - ref[i].Data[j]); d > worst {
					worst = d
				}
			}
		}
	}
	return worst
}

func flatSize(ts []*tensor.Tensor) int {
	n := 0
	for _, t := range ts {
		n += t.Len()
	}
	return n
}

func flatten(ts []*tensor.Tensor, buf []float64) {
	off := 0
	for _, t := range ts {
		copy(buf[off:off+t.Len()], t.Data)
		off += t.Len()
	}
}

func unflatten(buf []float64, ts []*tensor.Tensor) {
	off := 0
	for _, t := range ts {
		copy(t.Data, buf[off:off+t.Len()])
		off += t.Len()
	}
}

func gather(x, y *tensor.Tensor, idx []int) (*tensor.Tensor, *tensor.Tensor) {
	dx := x.Len() / x.Dim(0)
	dy := y.Len() / y.Dim(0)
	bx := tensor.New(len(idx), dx)
	by := tensor.New(len(idx), dy)
	for i, s := range idx {
		copy(bx.Row(i).Data, x.Row(s).Data)
		copy(by.Row(i).Data, y.Row(s).Data)
	}
	return bx, by
}
