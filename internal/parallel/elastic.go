package parallel

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/fault"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// ElasticConfig configures elastic data-parallel training: synchronous SGD
// that survives worker deaths by detecting the loss of a rank, re-sharding
// the global batch across the survivors, and continuing. Failures are
// injected deterministically through a fault.Plan so chaos runs replay
// bit-for-bit.
type ElasticConfig struct {
	// Workers is the initial worker (replica) count.
	Workers int
	// Loss and NewOptimizer define the objective; NewOptimizer is called
	// once per worker so surviving replicas step identically.
	Loss         nn.Loss
	NewOptimizer func() nn.Optimizer
	// GlobalBatch is the per-step sample count, sharded over live workers;
	// when a worker dies the same global batch spreads over fewer shards.
	GlobalBatch int
	// Epochs is the number of passes over the data.
	Epochs int
	// RNG shuffles the data each epoch.
	RNG *rng.Stream
	// Faults scripts worker kills, stalls, and transient collective errors
	// (nil = run failure-free).
	Faults *fault.Plan
	// Obs, if enabled, records per-worker compute spans, coordinator
	// recovery spans, and fault counters/events.
	Obs *obs.Session
}

// ElasticResult reports an elastic run.
type ElasticResult struct {
	// EpochLoss is the mean per-sample training loss per epoch.
	EpochLoss []float64
	// Steps counts optimizer steps applied (every live worker applies each).
	Steps int
	// Failures counts workers lost to injected crashes.
	Failures int
	// Redistributions counts steps that were re-sharded and re-executed
	// after detecting a death mid-exchange.
	Redistributions int
	// CollectiveRetries counts transient gradient-exchange failures that
	// were retried successfully.
	CollectiveRetries int
	// LiveWorkers is the surviving worker count at the end of training.
	LiveWorkers int
}

// elastic coordinator <-> worker protocol. Each worker owns a command
// channel (coordinator to worker) and a result channel (worker to
// coordinator). A worker that crashes closes its result channel instead of
// replying — the runtime analogue of a dropped connection — which is how
// the coordinator detects death without wall-clock timeouts (so chaos
// tests stay deterministic).
type elasticCmd struct {
	kind elasticCmdKind
	step int
	idx  []int     // compute: this worker's sample shard
	grad []float64 // apply: averaged flattened gradient
}

type elasticCmdKind int

const (
	elasticCompute elasticCmdKind = iota
	elasticApply
	elasticStop
)

type elasticOut struct {
	lossSum float64   // per-sample loss summed over the shard
	n       int       // shard size
	grad    []float64 // flattened gradient scaled by n
}

// TrainElastic trains net with elastic synchronous data-parallel SGD and
// returns the result; net is updated in place with the final weights (taken
// from the lowest-ranked survivor when worker 0 was killed).
func TrainElastic(net *nn.Net, x, y *tensor.Tensor, cfg ElasticConfig) (*ElasticResult, error) {
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("parallel: elastic needs >=1 worker")
	}
	if cfg.Loss == nil || cfg.NewOptimizer == nil {
		return nil, fmt.Errorf("parallel: Loss and NewOptimizer required")
	}
	if cfg.GlobalBatch < cfg.Workers {
		return nil, fmt.Errorf("parallel: global batch %d < workers %d", cfg.GlobalBatch, cfg.Workers)
	}
	if cfg.Epochs < 1 {
		cfg.Epochs = 1
	}
	if cfg.RNG == nil {
		return nil, fmt.Errorf("parallel: RNG required")
	}
	n := x.Dim(0)
	if y.Dim(0) != n {
		return nil, fmt.Errorf("parallel: %d inputs vs %d targets", n, y.Dim(0))
	}
	if cfg.Faults.NumKills() >= cfg.Workers {
		return nil, fmt.Errorf("parallel: plan kills %d of %d workers — no survivors",
			cfg.Faults.NumKills(), cfg.Workers)
	}

	p := cfg.Workers
	replicas := make([]*nn.Net, p)
	cmds := make([]chan elasticCmd, p)
	outs := make([]chan elasticOut, p)
	var wg sync.WaitGroup
	for w := 0; w < p; w++ {
		if w == 0 {
			replicas[w] = net
		} else {
			replicas[w] = net.Clone()
		}
		cmds[w] = make(chan elasticCmd, 1)
		outs[w] = make(chan elasticOut, 1)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			elasticWorker(w, replicas[w], cfg.NewOptimizer(), cfg, x, y, cmds[w], outs[w])
		}(w)
	}

	// Precompute epoch orders so a re-sharded run visits identical samples.
	orders := make([][]int, cfg.Epochs)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for e := range orders {
		cfg.RNG.ShuffleInts(order)
		orders[e] = append([]int(nil), order...)
	}
	stepsPerEpoch := n / cfg.GlobalBatch
	if stepsPerEpoch == 0 {
		stepsPerEpoch = 1
	}

	live := make([]int, p)
	for i := range live {
		live[i] = i
	}
	o := cfg.Obs
	instr := o.Enabled()
	res := &ElasticResult{}
	flat := flatSize(net.Grads())
	avg := make([]float64, flat)

	globalStep := 0
	for e := 0; e < cfg.Epochs; e++ {
		ord := orders[e]
		epochLossSum := 0.0
		epochSamples := 0
		epochStart := time.Now()
		for s := 0; s < stepsPerEpoch; s++ {
			lo := s * cfg.GlobalBatch
			hi := lo + cfg.GlobalBatch
			if hi > n {
				hi = n
			}
			batch := ord[lo:hi]
			stepStart := time.Now()
			retriedCollective := false

			var results []elasticOut
			for {
				if len(live) == 0 {
					return nil, fmt.Errorf("parallel: all %d workers lost by step %d", p, globalStep)
				}
				// Shard the global batch over the live workers and fan out.
				for i, w := range live {
					shardLo, shardHi := chunkRange(len(batch), len(live), i)
					cmds[w] <- elasticCmd{kind: elasticCompute, step: globalStep,
						idx: batch[shardLo:shardHi]}
				}
				// Gather in worker-id order so float accumulation is
				// deterministic regardless of goroutine scheduling.
				results = results[:0]
				var dead []int
				for _, w := range live {
					r, ok := <-outs[w]
					if !ok {
						dead = append(dead, w)
						continue
					}
					results = append(results, r)
				}
				if len(dead) > 0 {
					res.Failures += len(dead)
					res.Redistributions++
					var sp *obs.Span
					if instr {
						sp = o.Span(0, "elastic-recovery")
						sp.SetArg("step", globalStep)
						for _, w := range dead {
							o.Count("fault.worker_killed", 1)
							o.Emit("fault.kill", float64(w),
								map[string]float64{"step": float64(globalStep)})
						}
					}
					live = removeWorkers(live, dead)
					if instr {
						sp.SetArg("survivors", len(live))
						sp.End()
					}
					continue // redistribute the same step over the survivors
				}
				if cfg.Faults.CollectiveFailsAt(globalStep) && !retriedCollective {
					// Transient exchange failure: drop the gathered gradients
					// and retry the step once.
					retriedCollective = true
					res.CollectiveRetries++
					o.Count("fault.collective_retry", 1)
					continue
				}
				break
			}

			// Average the shard gradients (each pre-scaled by shard size).
			totalSamples := 0
			for i := range avg {
				avg[i] = 0
			}
			lossSum := 0.0
			for _, r := range results {
				totalSamples += r.n
				lossSum += r.lossSum
				for i, g := range r.grad {
					avg[i] += g
				}
			}
			inv := 1 / float64(totalSamples)
			for i := range avg {
				avg[i] *= inv
			}
			applyGrad := append([]float64(nil), avg...)
			for _, w := range live {
				cmds[w] <- elasticCmd{kind: elasticApply, grad: applyGrad}
			}
			res.Steps++
			epochLossSum += lossSum
			epochSamples += totalSamples
			if instr {
				o.OnStep(globalStep, lossSum*inv, time.Since(stepStart))
			}
			globalStep++
		}
		epochLoss := epochLossSum / float64(epochSamples)
		res.EpochLoss = append(res.EpochLoss, epochLoss)
		if instr {
			o.OnEpoch(e, epochLoss, time.Since(epochStart))
		}
	}

	for _, w := range live {
		cmds[w] <- elasticCmd{kind: elasticStop}
	}
	wg.Wait()
	res.LiveWorkers = len(live)
	if instr {
		o.SetGauge("fault.live_workers", float64(len(live)))
	}

	// The caller's net is worker 0's replica; if 0 died, promote the lowest
	// surviving replica's weights into it.
	if len(live) > 0 && live[0] != 0 {
		src := replicas[live[0]].Params()
		dst := net.Params()
		for i := range dst {
			copy(dst[i].Data, src[i].Data)
		}
	}
	return res, nil
}

// elasticWorker is one replica's goroutine: it computes shard gradients on
// demand, applies broadcast updates, and — when the fault plan says so —
// dies by closing its result channel, or stalls to simulate a straggler.
func elasticWorker(id int, model *nn.Net, opt nn.Optimizer, cfg ElasticConfig,
	x, y *tensor.Tensor, cmds <-chan elasticCmd, out chan<- elasticOut) {

	o := cfg.Obs
	params := model.Params()
	grads := model.Grads()
	buf := make([]float64, flatSize(grads))
	for cmd := range cmds {
		switch cmd.kind {
		case elasticStop:
			return
		case elasticApply:
			unflatten(cmd.grad, grads)
			opt.Step(params, grads)
		case elasticCompute:
			if d := cfg.Faults.HangAt(id, cmd.step); d > 0 {
				// Straggler: late but correct. Keep injected stalls tiny in
				// tests; correctness is unaffected either way.
				if o.Enabled() {
					o.Count("fault.worker_hang", 1)
				}
				time.Sleep(d)
			}
			if cfg.Faults.KillAt(id, cmd.step) {
				close(out) // crash: the coordinator sees a dropped channel
				return
			}
			var sp *obs.Span
			if o.Enabled() {
				sp = o.Span(id+1, "elastic-compute")
				sp.SetArg("step", cmd.step)
			}
			bx, by := gather(x, y, cmd.idx)
			model.ZeroGrads()
			outT := model.Forward(bx, true)
			loss := cfg.Loss.Loss(outT, by)
			dout := tensor.New(outT.Shape()...)
			cfg.Loss.Grad(dout, outT, by)
			model.Backward(dout)
			flatten(grads, buf)
			nSamples := len(cmd.idx)
			scaled := make([]float64, len(buf))
			for i, g := range buf {
				scaled[i] = g * float64(nSamples)
			}
			if o.Enabled() {
				sp.End()
			}
			out <- elasticOut{lossSum: loss * float64(nSamples), n: nSamples, grad: scaled}
		}
	}
}

// chunkRange splits n items into p near-equal contiguous chunks and returns
// the i-th chunk's bounds (the same split comm uses for collectives).
func chunkRange(n, p, i int) (lo, hi int) {
	base := n / p
	rem := n % p
	lo = i*base + min(i, rem)
	hi = lo + base
	if i < rem {
		hi++
	}
	return lo, hi
}

// removeWorkers drops the dead ids from the live set, preserving order.
func removeWorkers(live []int, dead []int) []int {
	isDead := map[int]bool{}
	for _, w := range dead {
		isDead[w] = true
	}
	keep := live[:0]
	for _, w := range live {
		if !isDead[w] {
			keep = append(keep, w)
		}
	}
	return keep
}
