package parallel

import (
	"strings"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/leakcheck"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// elasticProblem builds a learnable regression task: targets are a fixed
// linear map of the inputs plus small noise, so SGD must drive the loss
// well below its starting value.
func elasticProblem(seed uint64) (*tensor.Tensor, *tensor.Tensor) {
	r := rng.New(seed)
	n, d, out := 128, 4, 2
	x := tensor.New(n, d)
	x.FillRandNorm(r, 1)
	w := tensor.New(d, out)
	w.FillRandNorm(r, 1)
	y := tensor.New(n, out)
	for i := 0; i < n; i++ {
		for j := 0; j < out; j++ {
			v := 0.0
			for k := 0; k < d; k++ {
				v += x.At(i, k) * w.At(k, j)
			}
			y.Set(v+0.01*r.Norm(), i, j)
		}
	}
	return x, y
}

func elasticNet(seed uint64) *nn.Net {
	return nn.MLP(4, []int{16}, 2, nn.Tanh, rng.New(seed))
}

func elasticCfg(workers, epochs int, plan *fault.Plan) ElasticConfig {
	return ElasticConfig{
		Workers: workers, Loss: nn.MSELoss{},
		NewOptimizer: func() nn.Optimizer { return nn.NewAdam(0.01) },
		GlobalBatch:  32, Epochs: epochs,
		RNG: rng.New(7), Faults: plan,
	}
}

func runElastic(t *testing.T, plan *fault.Plan, epochs int) (*ElasticResult, *nn.Net) {
	t.Helper()
	x, y := elasticProblem(3)
	net := elasticNet(5)
	res, err := TrainElastic(net, x, y, elasticCfg(4, epochs, plan))
	if err != nil {
		t.Fatal(err)
	}
	return res, net
}

func TestElasticFaultFreeConverges(t *testing.T) {
	res, _ := runElastic(t, nil, 15)
	if res.LiveWorkers != 4 || res.Failures != 0 || res.Redistributions != 0 {
		t.Fatalf("fault-free run reported faults: %+v", res)
	}
	first, last := res.EpochLoss[0], res.EpochLoss[len(res.EpochLoss)-1]
	if last >= first/2 {
		t.Fatalf("no convergence: first %v last %v", first, last)
	}
	if res.Steps != 15*4 {
		t.Fatalf("steps %d want %d", res.Steps, 60)
	}
}

// Chaos property (c): elastic data-parallel with one killed worker detects
// the death, redistributes its shard, and still converges on the survivors.
func TestElasticSurvivesWorkerKill(t *testing.T) {
	defer leakcheck.Check(t)() // a killed worker's goroutines must all unwind
	sess := obs.NewSession()
	x, y := elasticProblem(3)
	net := elasticNet(5)
	cfg := elasticCfg(4, 15, fault.NewPlan().Kill(2, 10))
	cfg.Obs = sess
	res, err := TrainElastic(net, x, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures != 1 || res.LiveWorkers != 3 {
		t.Fatalf("expected 1 failure / 3 survivors, got %+v", res)
	}
	if res.Redistributions < 1 {
		t.Fatal("death did not trigger a redistribution")
	}
	first, last := res.EpochLoss[0], res.EpochLoss[len(res.EpochLoss)-1]
	if last >= first/2 {
		t.Fatalf("no convergence after kill: first %v last %v", first, last)
	}
	// The failure flowed into the obs session.
	snap := sess.Snapshot()
	found := false
	for _, c := range snap.Counters {
		if c.Name == "fault.worker_killed" && c.Value == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("fault.worker_killed counter missing from obs session")
	}
}

// Killing worker 0 (the caller's net) must promote a survivor's weights.
func TestElasticKillWorkerZero(t *testing.T) {
	defer leakcheck.Check(t)()
	res, net := runElastic(t, fault.NewPlan().Kill(0, 5), 12)
	if res.Failures != 1 || res.LiveWorkers != 3 {
		t.Fatalf("unexpected fault accounting: %+v", res)
	}
	x, y := elasticProblem(3)
	final := nn.EvaluateRegression(net, x, y)
	if final >= res.EpochLoss[0] {
		t.Fatalf("promoted weights untrained: eval %v vs first epoch %v", final, res.EpochLoss[0])
	}
}

// Chaos property (a): the same seed and plan give an identical run —
// epoch losses and final weights bit-for-bit.
func TestElasticDeterministic(t *testing.T) {
	plan := fault.NewPlan().Kill(1, 7).Hang(3, 4, time.Millisecond)
	resA, netA := runElastic(t, plan, 10)
	resB, netB := runElastic(t, plan, 10)
	if len(resA.EpochLoss) != len(resB.EpochLoss) {
		t.Fatal("epoch counts differ")
	}
	for i := range resA.EpochLoss {
		if resA.EpochLoss[i] != resB.EpochLoss[i] {
			t.Fatalf("epoch %d loss differs: %v vs %v", i, resA.EpochLoss[i], resB.EpochLoss[i])
		}
	}
	if resA.Failures != resB.Failures || resA.Redistributions != resB.Redistributions {
		t.Fatalf("fault accounting differs: %+v vs %+v", resA, resB)
	}
	if d := VerifyReplicasInSync([]*nn.Net{netA, netB}); d != 0 {
		t.Fatalf("final weights differ by %v", d)
	}
}

// A transient collective error is retried and — because the retry recomputes
// identical gradients — must not change the result at all.
func TestElasticCollectiveRetryIsTransparent(t *testing.T) {
	resFail, netFail := runElastic(t, fault.NewPlan().FailCollective(3), 8)
	resClean, netClean := runElastic(t, nil, 8)
	if resFail.CollectiveRetries != 1 {
		t.Fatalf("expected 1 collective retry, got %d", resFail.CollectiveRetries)
	}
	for i := range resClean.EpochLoss {
		if resFail.EpochLoss[i] != resClean.EpochLoss[i] {
			t.Fatalf("retry changed epoch %d loss: %v vs %v",
				i, resFail.EpochLoss[i], resClean.EpochLoss[i])
		}
	}
	if d := VerifyReplicasInSync([]*nn.Net{netFail, netClean}); d != 0 {
		t.Fatalf("retry changed final weights by %v", d)
	}
}

// A straggler stalls the step but cannot change its mathematics.
func TestElasticStragglerIsHarmless(t *testing.T) {
	resHang, netHang := runElastic(t, fault.NewPlan().Hang(2, 5, 2*time.Millisecond), 8)
	resClean, netClean := runElastic(t, nil, 8)
	for i := range resClean.EpochLoss {
		if resHang.EpochLoss[i] != resClean.EpochLoss[i] {
			t.Fatalf("straggler changed epoch %d loss", i)
		}
	}
	if d := VerifyReplicasInSync([]*nn.Net{netHang, netClean}); d != 0 {
		t.Fatalf("straggler changed final weights by %v", d)
	}
	if resHang.Failures != 0 {
		t.Fatal("straggler miscounted as a failure")
	}
}

func TestElasticTwoKillsSameStep(t *testing.T) {
	res, _ := runElastic(t, fault.NewPlan().Kill(1, 6).Kill(3, 6), 12)
	if res.Failures != 2 || res.LiveWorkers != 2 {
		t.Fatalf("expected 2 failures / 2 survivors, got %+v", res)
	}
	first, last := res.EpochLoss[0], res.EpochLoss[len(res.EpochLoss)-1]
	if last >= first/2 {
		t.Fatalf("no convergence after double kill: first %v last %v", first, last)
	}
}

func TestElasticValidation(t *testing.T) {
	x, y := elasticProblem(1)
	net := elasticNet(1)

	// A plan with no survivors is rejected up front.
	killAll := fault.NewPlan()
	for w := 0; w < 4; w++ {
		killAll.Kill(w, w+1)
	}
	_, err := TrainElastic(net, x, y, elasticCfg(4, 2, killAll))
	if err == nil || !strings.Contains(err.Error(), "survivors") {
		t.Fatalf("kill-all plan accepted: %v", err)
	}

	bad := elasticCfg(4, 2, nil)
	bad.GlobalBatch = 2
	if _, err := TrainElastic(net, x, y, bad); err == nil {
		t.Fatal("batch < workers accepted")
	}
	bad = elasticCfg(0, 2, nil)
	if _, err := TrainElastic(net, x, y, bad); err == nil {
		t.Fatal("0 workers accepted")
	}
	bad = elasticCfg(4, 2, nil)
	bad.RNG = nil
	if _, err := TrainElastic(net, x, y, bad); err == nil {
		t.Fatal("nil RNG accepted")
	}
	bad = elasticCfg(4, 2, nil)
	bad.Loss = nil
	if _, err := TrainElastic(net, x, y, bad); err == nil {
		t.Fatal("nil loss accepted")
	}
}
