package parallel

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// AsyncConfig configures asynchronous parameter-server training (downpour-
// style): workers pull the latest weights, compute a gradient on their own
// batch, and push it without waiting for each other. Asynchrony removes the
// allreduce barrier that caps strong scaling (E3) at the cost of gradient
// staleness — the 2017-era trade-off synchronous allreduce ultimately won.
type AsyncConfig struct {
	Workers      int
	Loss         nn.Loss
	NewOptimizer func() nn.Optimizer // applied at the server
	// BatchPerWorker is each worker's batch size per update.
	BatchPerWorker int
	// StepsPerWorker is how many updates each worker pushes.
	StepsPerWorker int
	RNG            *rng.Stream
	// Obs, if enabled, records per-worker compute/push spans (tid = worker)
	// and a staleness gauge.
	Obs *obs.Session
}

// AsyncResult reports an asynchronous run.
type AsyncResult struct {
	Updates int
	// MeanStaleness is the average number of server updates that occurred
	// between a worker's pull and its corresponding push.
	MeanStaleness float64
	MaxStaleness  int
	FinalLoss     float64
	// WorkerBusy is each worker's gradient-compute wall-time in seconds
	// (excluding time blocked on the server lock).
	WorkerBusy []float64
	// BusyImbalance is max/min of WorkerBusy (1 = perfectly balanced).
	BusyImbalance float64
}

// TrainAsync trains net with a sharded-lock parameter server and
// asynchronous workers. net is updated in place with the server's final
// weights.
func TrainAsync(net *nn.Net, x, y *tensor.Tensor, cfg AsyncConfig) (*AsyncResult, error) {
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("parallel: need >=1 worker")
	}
	if cfg.Loss == nil || cfg.NewOptimizer == nil {
		return nil, fmt.Errorf("parallel: Loss and NewOptimizer required")
	}
	if cfg.BatchPerWorker < 1 || cfg.StepsPerWorker < 1 {
		return nil, fmt.Errorf("parallel: batch and steps must be positive")
	}
	if cfg.RNG == nil {
		return nil, fmt.Errorf("parallel: RNG required")
	}
	n := x.Dim(0)
	if y.Dim(0) != n {
		return nil, fmt.Errorf("parallel: %d inputs vs %d targets", n, y.Dim(0))
	}

	// The server owns the canonical parameters (net itself) behind a lock.
	var mu sync.Mutex
	version := 0
	opt := cfg.NewOptimizer()
	serverParams := net.Params()

	// Pre-split per-worker RNG streams and replicas.
	type workerState struct {
		replica *nn.Net
		stream  *rng.Stream
	}
	workers := make([]workerState, cfg.Workers)
	for i := range workers {
		workers[i] = workerState{
			replica: net.Clone(),
			stream:  cfg.RNG.SplitN(i),
		}
	}

	var (
		wg           sync.WaitGroup
		staleSum     int64
		staleMax     int
		totalUpdates int
		lastLossMu   sync.Mutex
		lastLoss     float64
	)
	busy := make([]float64, cfg.Workers)
	for wi := range workers {
		wg.Add(1)
		go func(wi int, w workerState) {
			defer wg.Done()
			o := cfg.Obs
			instr := o.Enabled()
			params := w.replica.Params()
			grads := w.replica.Grads()
			for s := 0; s < cfg.StepsPerWorker; s++ {
				// Pull: copy server weights and note the version.
				mu.Lock()
				for i, p := range params {
					copy(p.Data, serverParams[i].Data)
				}
				pulled := version
				mu.Unlock()

				// Local gradient on a random batch.
				work := time.Now()
				var sp *obs.Span
				if instr {
					sp = o.Span(wi, "compute")
				}
				idx := w.stream.Sample(n, cfg.BatchPerWorker)
				bx, by := gather(x, y, idx)
				w.replica.ZeroGrads()
				out := w.replica.Forward(bx, true)
				loss := cfg.Loss.Loss(out, by)
				dout := tensor.New(out.Shape()...)
				cfg.Loss.Grad(dout, out, by)
				w.replica.Backward(dout)
				if instr {
					sp.End()
				}
				busy[wi] += time.Since(work).Seconds()
				// Yield between compute and push so workers interleave even
				// on few cores — on real clusters the (long) compute phase
				// is when peer pushes land.
				runtime.Gosched()

				// Push: apply the (possibly stale) gradient at the server.
				if instr {
					sp = o.Span(wi, "push")
				}
				mu.Lock()
				stale := version - pulled
				staleSum += int64(stale)
				if stale > staleMax {
					staleMax = stale
				}
				opt.Step(serverParams, grads)
				version++
				totalUpdates++
				upd := totalUpdates
				mu.Unlock()
				if instr {
					sp.SetArg("staleness", stale)
					sp.End()
					o.OnStep(upd, loss, time.Since(work))
				}

				lastLossMu.Lock()
				lastLoss = loss
				lastLossMu.Unlock()
			}
		}(wi, workers[wi])
	}
	wg.Wait()

	res := &AsyncResult{
		Updates:       totalUpdates,
		MaxStaleness:  staleMax,
		FinalLoss:     lastLoss,
		WorkerBusy:    busy,
		BusyImbalance: busyImbalance(busy),
	}
	if totalUpdates > 0 {
		res.MeanStaleness = float64(staleSum) / float64(totalUpdates)
		cfg.Obs.SetGauge("async.mean_staleness", res.MeanStaleness)
	}
	return res, nil
}
