package parallel

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/comm"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/rng"
)

// traceSpanNames runs the session's Chrome-trace exporter and returns the
// set of span names with the number of distinct tids they appear on.
func traceSpanNames(t *testing.T, s *obs.Session) (map[string]bool, map[int]bool) {
	t.Helper()
	var buf bytes.Buffer
	if err := s.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			TID  int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	tids := map[int]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			t.Fatalf("unexpected event phase %q", ev.Ph)
		}
		names[ev.Name] = true
		tids[ev.TID] = true
	}
	return names, tids
}

// TestDataParallelTraceAndBalance runs synchronous SGD on 2 replicas and
// checks the acceptance-criteria span kinds (forward, backward, optimizer,
// allreduce) plus the per-worker busy accounting in the result.
func TestDataParallelTraceAndBalance(t *testing.T) {
	x, y, _, net := makeProblem(3, 128, 16, 4)
	sess := obs.NewSession()
	res, err := TrainDataParallel(net, x, y, DataParallelConfig{
		Replicas: 2, Algo: comm.ARRing, Loss: nn.SoftmaxCELoss{},
		NewOptimizer: func() nn.Optimizer { return nn.NewSGD(0.05) },
		GlobalBatch:  32, Epochs: 2, RNG: rng.New(3),
		Obs: sess,
	})
	if err != nil {
		t.Fatal(err)
	}

	if len(res.WorkerBusy) != 2 {
		t.Fatalf("WorkerBusy = %v, want 2 entries", res.WorkerBusy)
	}
	for i, b := range res.WorkerBusy {
		if b <= 0 {
			t.Errorf("WorkerBusy[%d] = %g, want > 0", i, b)
		}
	}
	if res.BusyImbalance < 1 {
		t.Errorf("BusyImbalance = %g, want >= 1 (max/min)", res.BusyImbalance)
	}

	names, tids := traceSpanNames(t, sess)
	for _, want := range []string{"forward", "backward", "optimizer", "allreduce.ring"} {
		if !names[want] {
			t.Errorf("trace missing %q spans (have %v)", want, names)
		}
	}
	if !tids[0] || !tids[1] {
		t.Errorf("trace should cover both rank tids, got %v", tids)
	}

	// Per-rank step counting: both ranks' collectives are accounted.
	snap := sess.Snapshot()
	var arCalls, arBytes int64
	for _, c := range snap.Counters {
		switch c.Name {
		case "comm.allreduce.ring.calls":
			arCalls = c.Value
		case "comm.allreduce.ring.bytes":
			arBytes = c.Value
		}
	}
	if arCalls == 0 || arBytes == 0 {
		t.Errorf("allreduce counters = %d calls / %d bytes, want > 0", arCalls, arBytes)
	}
	if float64(arBytes/2) != res.BytesPerRank {
		t.Errorf("counted bytes/rank = %d, result says %g", arBytes/2, res.BytesPerRank)
	}
}

func TestPipelineTraceAndBalance(t *testing.T) {
	x, y, _, net := makeProblem(5, 96, 16, 4)
	sess := obs.NewSession()
	res, err := TrainPipeline(net, x, y, PipelineConfig{
		Stages: 2, MicroBatches: 2, Loss: nn.SoftmaxCELoss{},
		NewOptimizer: func() nn.Optimizer { return nn.NewSGD(0.05) },
		GlobalBatch:  32, Epochs: 1, RNG: rng.New(5),
		Obs: sess,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.StageBusy) != 2 {
		t.Fatalf("StageBusy = %v, want 2 entries", res.StageBusy)
	}
	for i, b := range res.StageBusy {
		if b <= 0 {
			t.Errorf("StageBusy[%d] = %g, want > 0", i, b)
		}
	}
	if res.BusyImbalance < 1 {
		t.Errorf("BusyImbalance = %g, want >= 1", res.BusyImbalance)
	}
	names, _ := traceSpanNames(t, sess)
	for _, want := range []string{"forward", "backward", "optimizer"} {
		if !names[want] {
			t.Errorf("trace missing %q spans (have %v)", want, names)
		}
	}
}

func TestAsyncBalanceAndStalenessGauge(t *testing.T) {
	x, y, _, net := makeProblem(9, 128, 16, 4)
	sess := obs.NewSession()
	res, err := TrainAsync(net, x, y, AsyncConfig{
		Workers: 3, Loss: nn.SoftmaxCELoss{},
		NewOptimizer:   func() nn.Optimizer { return nn.NewSGD(0.05) },
		BatchPerWorker: 16, StepsPerWorker: 6, RNG: rng.New(9),
		Obs: sess,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.WorkerBusy) != 3 {
		t.Fatalf("WorkerBusy = %v, want 3 entries", res.WorkerBusy)
	}
	if res.BusyImbalance < 1 {
		t.Errorf("BusyImbalance = %g, want >= 1", res.BusyImbalance)
	}
	names, _ := traceSpanNames(t, sess)
	for _, want := range []string{"compute", "push"} {
		if !names[want] {
			t.Errorf("trace missing %q spans (have %v)", want, names)
		}
	}
	var found bool
	for _, g := range sess.Snapshot().Gauges {
		if g.Name == "async.mean_staleness" {
			found = true
			if g.Value != res.MeanStaleness {
				t.Errorf("staleness gauge = %g, result = %g", g.Value, res.MeanStaleness)
			}
		}
	}
	if !found {
		t.Error("async.mean_staleness gauge not recorded")
	}
}

func TestHybridBalanceAndTidMapping(t *testing.T) {
	x, y, _, net := makeProblem(11, 96, 16, 4)
	sess := obs.NewSession()
	res, err := TrainHybrid(net, x, y, HybridConfig{
		Replicas: 2, Stages: 2, MicroBatches: 2, Loss: nn.SoftmaxCELoss{},
		NewOptimizer: func() nn.Optimizer { return nn.NewSGD(0.05) },
		GlobalBatch:  32, Epochs: 1, Algo: comm.ARRing, RNG: rng.New(11),
		Obs: sess,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.WorkerBusy) != 4 { // replica*S + stage, R=S=2
		t.Fatalf("WorkerBusy = %v, want 4 entries", res.WorkerBusy)
	}
	if res.BusyImbalance < 1 {
		t.Errorf("BusyImbalance = %g, want >= 1", res.BusyImbalance)
	}
	names, tids := traceSpanNames(t, sess)
	if !names["allreduce.ring"] {
		t.Errorf("trace missing cross-replica allreduce spans (have %v)", names)
	}
	// Reduce-world spans must be remapped onto the 4 pipeline tids — never a
	// tid outside [0, R*S), which would collide across goroutines.
	for tid := range tids {
		if tid < 0 || tid >= 4 {
			t.Errorf("span on unexpected tid %d, want 0..3", tid)
		}
	}
}

// TestObsOffLeavesResultsClean makes sure the imbalance fields are populated
// even without a session (they come from plain wall-clock accounting).
func TestObsOffLeavesResultsClean(t *testing.T) {
	x, y, _, net := makeProblem(13, 128, 16, 4)
	res, err := TrainDataParallel(net, x, y, DataParallelConfig{
		Replicas: 2, Algo: comm.ARRing, Loss: nn.SoftmaxCELoss{},
		NewOptimizer: func() nn.Optimizer { return nn.NewSGD(0.05) },
		GlobalBatch:  32, Epochs: 1, RNG: rng.New(13),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.WorkerBusy) != 2 || res.BusyImbalance < 1 {
		t.Errorf("busy accounting without obs: busy=%v imbalance=%g",
			res.WorkerBusy, res.BusyImbalance)
	}
}

func TestBusyImbalance(t *testing.T) {
	cases := []struct {
		busy []float64
		want float64
	}{
		{nil, 0},
		{[]float64{2, 2}, 1},
		{[]float64{4, 2}, 2},
		{[]float64{0, 2}, 0}, // degenerate: min 0 reported as 0, not Inf
	}
	for _, c := range cases {
		if got := busyImbalance(c.busy); got != c.want {
			t.Errorf("busyImbalance(%v) = %g, want %g", c.busy, got, c.want)
		}
	}
}
