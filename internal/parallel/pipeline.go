package parallel

import (
	"fmt"
	"time"

	"repro/internal/comm"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// PipelineConfig configures layer-partitioned model-parallel training.
type PipelineConfig struct {
	// Stages is the number of pipeline stages (ranks); the network's layers
	// are partitioned contiguously and as evenly as possible by parameter
	// count.
	Stages int
	// MicroBatches splits each global batch into this many micro-batches;
	// gradients accumulate across them before the step (GPipe-style).
	MicroBatches int
	Loss         nn.Loss
	NewOptimizer func() nn.Optimizer
	GlobalBatch  int
	Epochs       int
	RNG          *rng.Stream
	// Obs, if enabled, records per-stage forward/backward/optimizer spans
	// (tid = stage) and epoch hooks from the last stage.
	Obs *obs.Session
}

// PipelineResult reports a model-parallel run.
type PipelineResult struct {
	EpochLoss    []float64
	Steps        int
	TotalBytes   int
	BytesPerRank float64
	// StageParams reports the parameter count per stage (balance check).
	StageParams []int
	// StageBusy is each stage's compute wall-time in seconds (forward,
	// backward, optimizer — excluding waits for upstream/downstream ranks).
	StageBusy []float64
	// BusyImbalance is max/min of StageBusy; a high value means the layer
	// partition left some stages idle behind the pipeline's slowest stage.
	BusyImbalance float64
}

// PartitionLayers splits layers into `stages` contiguous groups balanced by
// parameter count (greedy: close each stage once it reaches the ideal
// share, always leaving enough layers for the remaining stages).
func PartitionLayers(layers []nn.Layer, stages int) [][]nn.Layer {
	if stages <= 1 || len(layers) <= 1 {
		return [][]nn.Layer{layers}
	}
	if stages > len(layers) {
		stages = len(layers)
	}
	weights := make([]int, len(layers))
	total := 0
	for i, l := range layers {
		w := 1 // even parameter-free layers cost something
		for _, p := range l.Params() {
			w += p.Len()
		}
		weights[i] = w
		total += w
	}
	ideal := float64(total) / float64(stages)
	var out [][]nn.Layer
	start := 0
	acc := 0
	for i := range layers {
		acc += weights[i]
		stagesLeft := stages - len(out)
		layersLeft := len(layers) - i - 1
		if (float64(acc) >= ideal && stagesLeft > 1 && layersLeft >= stagesLeft-1) ||
			layersLeft == stagesLeft-1 {
			out = append(out, layers[start:i+1])
			start = i + 1
			acc = 0
			if len(out) == stages-1 {
				break
			}
		}
	}
	out = append(out, layers[start:])
	return out
}

// TrainPipeline trains net with GPipe-style model parallelism: each stage
// (rank) owns a contiguous layer slice; micro-batches flow forward through
// activation messages and backward through gradient messages, accumulating
// parameter gradients, then every stage steps its own layers locally.
// net is updated in place.
//
// Micro-batches are processed strictly in order (one in flight per stage),
// so layer forward caches stay consistent; wall-clock pipelining overlap is
// the machine model's concern (ModelParallelStepTime), while this function
// provides the real distributed execution and its communication volume.
func TrainPipeline(net *nn.Net, x, y *tensor.Tensor, cfg PipelineConfig) (*PipelineResult, error) {
	if cfg.Stages < 1 {
		return nil, fmt.Errorf("parallel: need >=1 stage")
	}
	if cfg.Loss == nil || cfg.NewOptimizer == nil {
		return nil, fmt.Errorf("parallel: Loss and NewOptimizer required")
	}
	if cfg.MicroBatches < 1 {
		cfg.MicroBatches = 1
	}
	if cfg.Epochs < 1 {
		cfg.Epochs = 1
	}
	if cfg.GlobalBatch < cfg.MicroBatches {
		return nil, fmt.Errorf("parallel: batch %d < micro-batches %d", cfg.GlobalBatch, cfg.MicroBatches)
	}
	if cfg.RNG == nil {
		return nil, fmt.Errorf("parallel: RNG required")
	}
	n := x.Dim(0)
	if y.Dim(0) != n {
		return nil, fmt.Errorf("parallel: %d inputs vs %d targets", n, y.Dim(0))
	}
	if cfg.GlobalBatch > n {
		return nil, fmt.Errorf("parallel: batch %d > dataset %d", cfg.GlobalBatch, n)
	}

	parts := PartitionLayers(net.Layers, cfg.Stages)
	s := len(parts)
	stageNets := make([]*nn.Net, s)
	stageOpts := make([]nn.Optimizer, s)
	stageParams := make([]int, s)
	for i, layers := range parts {
		stageNets[i] = nn.NewNet(layers...)
		stageOpts[i] = cfg.NewOptimizer()
		stageParams[i] = stageNets[i].NumParams()
	}

	orders := make([][]int, cfg.Epochs)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for e := range orders {
		cfg.RNG.ShuffleInts(order)
		orders[e] = append([]int(nil), order...)
	}

	steps := n / cfg.GlobalBatch
	if steps == 0 {
		steps = 1
	}
	mbSize := cfg.GlobalBatch / cfg.MicroBatches

	world := comm.NewWorld(s)
	world.SetObs(cfg.Obs)
	lossLog := make([]float64, cfg.Epochs)
	busy := make([]float64, s)
	const (
		tagAct  = 100
		tagGrad = 200
	)

	world.Run(func(rank *comm.Rank) {
		id := rank.ID()
		o := cfg.Obs
		instr := o.Enabled()
		stage := stageNets[id]
		opt := stageOpts[id]
		first := id == 0
		last := id == s-1
		// work marks the start of a compute segment; settle accumulates it
		// into this stage's busy time, excluding Recv waits between segments.
		var work time.Time
		settle := func() { busy[id] += time.Since(work).Seconds() }

		for e := 0; e < cfg.Epochs; e++ {
			ord := orders[e]
			epochTotal := 0.0
			epochStart := time.Now()
			for st := 0; st < steps; st++ {
				stepStart := time.Now()
				stage.ZeroGrads()
				stepLoss := 0.0
				for mb := 0; mb < cfg.MicroBatches; mb++ {
					base := st*cfg.GlobalBatch + mb*mbSize
					idx := ord[base : base+mbSize]
					// ---- forward ----
					var act *tensor.Tensor
					if first {
						act, _ = gather(x, y, idx)
					} else {
						in := rank.Recv(id-1, tagAct+mb)
						cols := len(in) / mbSize
						act = tensor.FromSlice(in, mbSize, cols)
					}
					work = time.Now()
					var sp *obs.Span
					if instr {
						sp = o.Span(id, "forward")
						sp.SetArg("microbatch", mb)
					}
					out := stage.Forward(act, true)
					if instr {
						sp.End()
					}
					settle()
					if !last {
						rank.Send(id+1, tagAct+mb, out.Data)
						// ---- backward (wait for grad from downstream) ----
						gin := rank.Recv(id+1, tagGrad+mb)
						work = time.Now()
						if instr {
							sp = o.Span(id, "backward")
							sp.SetArg("microbatch", mb)
						}
						dout := tensor.FromSlice(gin, out.Shape()...)
						dx := stage.Backward(dout)
						if instr {
							sp.End()
						}
						settle()
						if !first {
							rank.Send(id-1, tagGrad+mb, dx.Data)
						}
						continue
					}
					// Last stage computes the loss.
					work = time.Now()
					if instr {
						sp = o.Span(id, "backward")
						sp.SetArg("microbatch", mb)
					}
					_, by := gather(x, y, idx)
					stepLoss += cfg.Loss.Loss(out, by)
					dout := tensor.New(out.Shape()...)
					cfg.Loss.Grad(dout, out, by)
					// Scale so accumulating micro-batch grads averages the
					// full batch (Loss.Grad divides by mbSize, not batch).
					tensor.Scale(dout, dout, 1/float64(cfg.MicroBatches))
					dx := stage.Backward(dout)
					if instr {
						sp.End()
					}
					settle()
					if !first {
						rank.Send(id-1, tagGrad+mb, dx.Data)
					}
				}
				work = time.Now()
				var sp *obs.Span
				if instr {
					sp = o.Span(id, "optimizer")
				}
				opt.Step(stage.Params(), stage.Grads())
				if instr {
					sp.End()
				}
				settle()
				if last {
					epochTotal += stepLoss / float64(cfg.MicroBatches)
					if instr {
						o.OnStep(e*steps+st, stepLoss/float64(cfg.MicroBatches),
							time.Since(stepStart))
					}
				}
			}
			if last {
				lossLog[e] = epochTotal / float64(steps)
				if instr {
					o.OnEpoch(e, lossLog[e], time.Since(epochStart))
				}
			}
		}
	})

	res := &PipelineResult{
		EpochLoss:   lossLog,
		Steps:       steps * cfg.Epochs,
		TotalBytes:  world.TotalBytes(),
		StageParams: stageParams,
		StageBusy:   busy,
	}
	res.BytesPerRank = float64(res.TotalBytes) / float64(s)
	res.BusyImbalance = busyImbalance(busy)
	return res, nil
}
