package parallel

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/comm"
	"repro/internal/lowp"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// makeProblem builds a small classification dataset and a fresh network.
func makeProblem(seed uint64, n, din, classes int) (*tensor.Tensor, *tensor.Tensor, []int, *nn.Net) {
	r := rng.New(seed)
	x := tensor.New(n, din)
	labels := make([]int, n)
	// Planted linear-ish rule with nonlinearity.
	w := make([]float64, din)
	for i := range w {
		w[i] = r.Norm()
	}
	for i := 0; i < n; i++ {
		s := 0.0
		for j := 0; j < din; j++ {
			v := r.Norm()
			x.Set(v, i, j)
			s += v * w[j]
		}
		if math.Sin(s) > 0 {
			labels[i] = 1
		}
		if classes > 2 {
			labels[i] = int(math.Mod(math.Abs(s*3), float64(classes)))
		}
	}
	y := nn.OneHot(labels, classes)
	net := nn.MLP(din, []int{16, 8}, classes, nn.Tanh, r.Split("init"))
	return x, y, labels, net
}

// serialReference trains the same initial weights serially with the same
// shuffle stream and global batch, for bitwise comparison.
func serialReference(net *nn.Net, x, y *tensor.Tensor, globalBatch, epochs int, seed uint64) *nn.Net {
	r := rng.New(seed)
	n := x.Dim(0)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	opt := nn.NewSGD(0.1)
	loss := nn.SoftmaxCELoss{}
	steps := n / globalBatch
	for e := 0; e < epochs; e++ {
		r.ShuffleInts(order)
		for s := 0; s < steps; s++ {
			idx := order[s*globalBatch : (s+1)*globalBatch]
			bx, by := gather(x, y, idx)
			net.ZeroGrads()
			out := net.Forward(bx, true)
			dout := tensor.New(out.Shape()...)
			loss.Grad(dout, out, by)
			net.Backward(dout)
			opt.Step(net.Params(), net.Grads())
		}
	}
	return net
}

func TestDataParallelMatchesSerial(t *testing.T) {
	// Synchronous data-parallel SGD with gradient averaging must compute
	// (numerically) the same updates as serial large-batch SGD.
	const seed = 42
	x, y, _, netA := makeProblem(seed, 128, 6, 2)
	netB := netA.Clone()

	serialReference(netA, x, y, 32, 3, 7)

	_, err := TrainDataParallel(netB, x, y, DataParallelConfig{
		Replicas: 4, Algo: comm.ARRing,
		Loss:         nn.SoftmaxCELoss{},
		NewOptimizer: func() nn.Optimizer { return nn.NewSGD(0.1) },
		GlobalBatch:  32, Epochs: 3, RNG: rng.New(7),
	})
	if err != nil {
		t.Fatal(err)
	}
	pa, pb := netA.Params(), netB.Params()
	for i := range pa {
		for j := range pa[i].Data {
			if d := math.Abs(pa[i].Data[j] - pb[i].Data[j]); d > 1e-9 {
				t.Fatalf("param %d elem %d diverged by %v", i, j, d)
			}
		}
	}
}

func TestDataParallelAllAlgorithms(t *testing.T) {
	for _, algo := range []comm.AllReduceAlgorithm{comm.ARRing, comm.ARRecursiveDoubling, comm.ARTree, comm.ARRabenseifner} {
		x, y, labels, net := makeProblem(3, 256, 8, 2)
		res, err := TrainDataParallel(net, x, y, DataParallelConfig{
			Replicas: 4, Algo: algo,
			Loss:         nn.SoftmaxCELoss{},
			NewOptimizer: func() nn.Optimizer { return nn.NewAdam(0.01) },
			GlobalBatch:  32, Epochs: 10, RNG: rng.New(5),
		})
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if res.EpochLoss[len(res.EpochLoss)-1] > 0.9*res.EpochLoss[0] {
			t.Fatalf("%v: loss barely moved %v", algo, res.EpochLoss)
		}
		if acc := nn.EvaluateClassifier(net, x, labels); acc < 0.6 {
			t.Fatalf("%v: accuracy %.3f", algo, acc)
		}
		if res.TotalBytes == 0 {
			t.Fatalf("%v: no communication recorded", algo)
		}
	}
}

func TestDataParallelGradCompression(t *testing.T) {
	x, y, _, net := makeProblem(11, 256, 8, 2)
	res16, err := TrainDataParallel(net.Clone(), x, y, DataParallelConfig{
		Replicas: 4, Algo: comm.ARRing,
		Loss:         nn.SoftmaxCELoss{},
		NewOptimizer: func() nn.Optimizer { return nn.NewAdam(0.01) },
		GlobalBatch:  32, Epochs: 5, GradPrecision: lowp.FP16, RNG: rng.New(5),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Training must still make progress with fp16-rounded gradients.
	if res16.EpochLoss[len(res16.EpochLoss)-1] > 0.9*res16.EpochLoss[0] {
		t.Fatalf("fp16-gradient training stalled: %v", res16.EpochLoss)
	}
}

func TestDataParallelValidation(t *testing.T) {
	x, y, _, net := makeProblem(1, 64, 4, 2)
	if _, err := TrainDataParallel(net, x, y, DataParallelConfig{Replicas: 0}); err == nil {
		t.Fatal("0 replicas accepted")
	}
	if _, err := TrainDataParallel(net, x, y, DataParallelConfig{
		Replicas: 8, GlobalBatch: 4,
		Loss: nn.SoftmaxCELoss{}, NewOptimizer: func() nn.Optimizer { return nn.NewSGD(0.1) },
		RNG: rng.New(1)}); err == nil {
		t.Fatal("batch < replicas accepted")
	}
	if _, err := TrainDataParallel(net, x, y, DataParallelConfig{
		Replicas: 2, GlobalBatch: 8, Loss: nn.SoftmaxCELoss{},
		NewOptimizer: func() nn.Optimizer { return nn.NewSGD(0.1) }}); err == nil {
		t.Fatal("missing RNG accepted")
	}
}

func TestPartitionLayers(t *testing.T) {
	r := rng.New(1)
	net := nn.MLP(10, []int{20, 20, 20}, 2, nn.ReLU, r)
	// 7 layers (4 dense + 3 act) into 3 stages.
	parts := PartitionLayers(net.Layers, 3)
	if len(parts) != 3 {
		t.Fatalf("got %d stages", len(parts))
	}
	total := 0
	for _, p := range parts {
		if len(p) == 0 {
			t.Fatal("empty stage")
		}
		total += len(p)
	}
	if total != len(net.Layers) {
		t.Fatalf("partition covers %d of %d layers", total, len(net.Layers))
	}
	// Degenerate cases.
	if got := PartitionLayers(net.Layers, 1); len(got) != 1 {
		t.Fatal("1-stage partition wrong")
	}
	if got := PartitionLayers(net.Layers[:2], 5); len(got) > 2 {
		t.Fatal("more stages than layers")
	}
}

// Property: partitions are contiguous, non-empty, and cover all layers.
func TestQuickPartitionInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		depth := 1 + r.Intn(6)
		hidden := make([]int, depth)
		for i := range hidden {
			hidden[i] = 4 + r.Intn(30)
		}
		net := nn.MLP(8, hidden, 3, nn.ReLU, r)
		stages := 1 + r.Intn(6)
		parts := PartitionLayers(net.Layers, stages)
		idx := 0
		for _, p := range parts {
			if len(p) == 0 {
				return false
			}
			for _, l := range p {
				if l != net.Layers[idx] {
					return false // not contiguous / out of order
				}
				idx++
			}
		}
		return idx == len(net.Layers)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPipelineMatchesSingleStage(t *testing.T) {
	// A 3-stage pipeline with 1 micro-batch must produce identical weights
	// to single-process training with the same order and optimizer.
	x, y, _, netA := makeProblem(21, 96, 6, 2)
	netB := netA.Clone()

	serialReference(netA, x, y, 16, 2, 9)
	_, err := TrainPipeline(netB, x, y, PipelineConfig{
		Stages: 3, MicroBatches: 1,
		Loss:         nn.SoftmaxCELoss{},
		NewOptimizer: func() nn.Optimizer { return nn.NewSGD(0.1) },
		GlobalBatch:  16, Epochs: 2, RNG: rng.New(9),
	})
	if err != nil {
		t.Fatal(err)
	}
	pa, pb := netA.Params(), netB.Params()
	for i := range pa {
		for j := range pa[i].Data {
			if d := math.Abs(pa[i].Data[j] - pb[i].Data[j]); d > 1e-9 {
				t.Fatalf("pipeline diverged from serial: param %d elem %d by %v", i, j, d)
			}
		}
	}
}

func TestPipelineMicroBatchesEquivalent(t *testing.T) {
	// Micro-batch gradient accumulation (4 micro-batches) must equal one
	// full-batch step for SGD (gradients are linear in the batch).
	x, y, _, netA := makeProblem(31, 64, 5, 2)
	netB := netA.Clone()
	_, err := TrainPipeline(netA, x, y, PipelineConfig{
		Stages: 2, MicroBatches: 1,
		Loss:         nn.SoftmaxCELoss{},
		NewOptimizer: func() nn.Optimizer { return nn.NewSGD(0.05) },
		GlobalBatch:  16, Epochs: 1, RNG: rng.New(4),
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = TrainPipeline(netB, x, y, PipelineConfig{
		Stages: 2, MicroBatches: 4,
		Loss:         nn.SoftmaxCELoss{},
		NewOptimizer: func() nn.Optimizer { return nn.NewSGD(0.05) },
		GlobalBatch:  16, Epochs: 1, RNG: rng.New(4),
	})
	if err != nil {
		t.Fatal(err)
	}
	pa, pb := netA.Params(), netB.Params()
	for i := range pa {
		for j := range pa[i].Data {
			if d := math.Abs(pa[i].Data[j] - pb[i].Data[j]); d > 1e-8 {
				t.Fatalf("micro-batching changed SGD result by %v", d)
			}
		}
	}
}

func TestPipelineLearns(t *testing.T) {
	x, y, labels, net := makeProblem(41, 256, 8, 2)
	res, err := TrainPipeline(net, x, y, PipelineConfig{
		Stages: 3, MicroBatches: 2,
		Loss:         nn.SoftmaxCELoss{},
		NewOptimizer: func() nn.Optimizer { return nn.NewAdam(0.01) },
		GlobalBatch:  32, Epochs: 12, RNG: rng.New(6),
	})
	if err != nil {
		t.Fatal(err)
	}
	if acc := nn.EvaluateClassifier(net, x, labels); acc < 0.6 {
		t.Fatalf("pipeline training accuracy %.3f", acc)
	}
	if res.TotalBytes == 0 {
		t.Fatal("no pipeline traffic recorded")
	}
	if len(res.StageParams) != 3 {
		t.Fatalf("stage params %v", res.StageParams)
	}
}

func TestHybridMatchesDataParallel(t *testing.T) {
	// R=2,S=2 hybrid with SGD must equal pure data-parallel R=2 (same
	// global batch, same shuffles) because model partitioning does not
	// change the math.
	x, y, _, netA := makeProblem(51, 128, 6, 2)
	netB := netA.Clone()
	_, err := TrainDataParallel(netA, x, y, DataParallelConfig{
		Replicas: 2, Algo: comm.ARRing,
		Loss:         nn.SoftmaxCELoss{},
		NewOptimizer: func() nn.Optimizer { return nn.NewSGD(0.1) },
		GlobalBatch:  16, Epochs: 2, RNG: rng.New(13),
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = TrainHybrid(netB, x, y, HybridConfig{
		Replicas: 2, Stages: 2, MicroBatches: 1,
		Loss:         nn.SoftmaxCELoss{},
		NewOptimizer: func() nn.Optimizer { return nn.NewSGD(0.1) },
		GlobalBatch:  16, Epochs: 2, Algo: comm.ARRing, RNG: rng.New(13),
	})
	if err != nil {
		t.Fatal(err)
	}
	pa, pb := netA.Params(), netB.Params()
	for i := range pa {
		for j := range pa[i].Data {
			if d := math.Abs(pa[i].Data[j] - pb[i].Data[j]); d > 1e-9 {
				t.Fatalf("hybrid diverged from data-parallel by %v", d)
			}
		}
	}
}

func TestHybridTrafficSplit(t *testing.T) {
	x, y, _, net := makeProblem(61, 128, 6, 2)
	res, err := TrainHybrid(net, x, y, HybridConfig{
		Replicas: 2, Stages: 3, MicroBatches: 2,
		Loss:         nn.SoftmaxCELoss{},
		NewOptimizer: func() nn.Optimizer { return nn.NewAdam(0.01) },
		GlobalBatch:  32, Epochs: 2, Algo: comm.ARRing, RNG: rng.New(14),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.PipelineBytes == 0 || res.ReduceBytes == 0 {
		t.Fatalf("traffic split missing: pipe=%d reduce=%d", res.PipelineBytes, res.ReduceBytes)
	}
	if res.TotalBytes != res.PipelineBytes+res.ReduceBytes {
		t.Fatal("traffic accounting inconsistent")
	}
}

func TestHybridValidation(t *testing.T) {
	x, y, _, net := makeProblem(71, 64, 4, 2)
	if _, err := TrainHybrid(net, x, y, HybridConfig{Replicas: 0, Stages: 1}); err == nil {
		t.Fatal("0 replicas accepted")
	}
	if _, err := TrainHybrid(net, x, y, HybridConfig{
		Replicas: 2, Stages: 2, MicroBatches: 8, GlobalBatch: 8,
		Loss: nn.SoftmaxCELoss{}, NewOptimizer: func() nn.Optimizer { return nn.NewSGD(0.1) },
		RNG: rng.New(1)}); err == nil {
		t.Fatal("micro-batches > per-replica batch accepted")
	}
}

func TestCommunicationVolumeScalesWithModel(t *testing.T) {
	// Data-parallel gradient traffic grows with parameter count.
	x, y, _, small := makeProblem(81, 64, 4, 2)
	big := nn.MLP(4, []int{64, 64}, 2, nn.Tanh, rng.New(1))
	run := func(net *nn.Net) int {
		res, err := TrainDataParallel(net, x, y, DataParallelConfig{
			Replicas: 4, Algo: comm.ARRing,
			Loss:         nn.SoftmaxCELoss{},
			NewOptimizer: func() nn.Optimizer { return nn.NewSGD(0.1) },
			GlobalBatch:  16, Epochs: 1, RNG: rng.New(2),
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.TotalBytes
	}
	if run(big) <= run(small) {
		t.Fatal("bigger model did not move more gradient bytes")
	}
}
