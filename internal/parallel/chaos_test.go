package parallel

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/comm"
	"repro/internal/fault"
	"repro/internal/leakcheck"
	"repro/internal/lowp"
	"repro/internal/nn"
	"repro/internal/rng"
)

// TestChaosOverlappedTrainingOnFlakyLinks: bucketed+overlapped training over
// a lossy fabric (drops, duplicates, bit-flips, delays) must produce
// parameters bitwise identical to the clean-fabric run — the CRC-framed
// transport absorbs every fault via retransmission — while the retransmit
// counters prove faults actually fired.
func TestChaosOverlappedTrainingOnFlakyLinks(t *testing.T) {
	defer leakcheck.Check(t)()
	mk := func(lf *fault.LinkFault) (*nn.Net, *DataParallelResult) {
		x, y, _, net := makeProblem(21, 128, 6, 2)
		cfg := DataParallelConfig{
			Replicas:      4,
			Algo:          comm.ARTree,
			Loss:          nn.SoftmaxCELoss{},
			NewOptimizer:  func() nn.Optimizer { return nn.NewSGD(0.1) },
			GlobalBatch:   32,
			Epochs:        3,
			BucketElems:   50,
			Overlap:       true,
			LinkFaults:    lf,
			LinkFaultSeed: 99,
			RNG:           rng.New(17),
		}
		res, err := TrainDataParallel(net, x, y, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return net, res
	}
	clean, cleanRes := mk(nil)
	flaky, flakyRes := mk(&fault.LinkFault{
		DropProb: 0.04, DupProb: 0.03, CorruptProb: 0.03, DelayProb: 0.05,
	})
	assertBitwiseEqual(t, clean, flaky, "flaky-vs-clean")
	if cleanRes.Retransmits != 0 {
		t.Fatalf("clean fabric retransmitted %d frames", cleanRes.Retransmits)
	}
	if flakyRes.Retransmits == 0 {
		t.Fatal("flaky fabric injected no faults — chaos test is vacuous")
	}
}

// TestChaosCompressedTrainingOnFlakyLinks: the packed-int8 wire encoding
// rides the same CRC framing (bit-exact float64 round-trip), so compressed
// training must also be deterministic under link faults.
func TestChaosCompressedTrainingOnFlakyLinks(t *testing.T) {
	defer leakcheck.Check(t)()
	mk := func(lf *fault.LinkFault) *nn.Net {
		x, y, _, net := makeProblem(22, 128, 6, 2)
		cfg := DataParallelConfig{
			Replicas:      4,
			Algo:          comm.ARTree,
			Loss:          nn.SoftmaxCELoss{},
			NewOptimizer:  func() nn.Optimizer { return nn.NewSGD(0.1) },
			GlobalBatch:   32,
			Epochs:        2,
			BucketElems:   60,
			Overlap:       true,
			Compress:      lowp.CompressInt8,
			LinkFaults:    lf,
			LinkFaultSeed: 5,
			RNG:           rng.New(13),
		}
		res, err := TrainDataParallel(net, x, y, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.CompressionRatio < 6 {
			t.Fatalf("compression ratio %v", res.CompressionRatio)
		}
		return net
	}
	clean := mk(nil)
	flaky := mk(&fault.LinkFault{DropProb: 0.05, CorruptProb: 0.04})
	assertBitwiseEqual(t, clean, flaky, "compressed flaky-vs-clean")
}

// TestChaosOverlappedBucketWorkerKill: a fault.Plan-scripted rank death in
// the middle of overlapped bucket traffic must surface as a loud watchdog
// panic on the survivors (re-raised by World.Run), never a hang, and every
// goroutine — including the per-rank comm goroutines — must unwind.
func TestChaosOverlappedBucketWorkerKill(t *testing.T) {
	defer leakcheck.Check(t)()
	plan := fault.NewPlan().Kill(2, 1)
	const p = 4
	panicked := func() (msg string) {
		defer func() {
			if r := recover(); r != nil {
				if s, ok := r.(string); ok {
					msg = s
				} else {
					msg = "panic"
				}
			}
		}()
		w := comm.NewWorld(p)
		w.SetRecvTimeout(200 * time.Millisecond)
		w.Run(func(r *comm.Rank) {
			br := r.NewBucketReducer(comm.ARTree)
			// A dying rank's reducer dies with it: Close before returning
			// (the in-process stand-in for the whole process exiting).
			defer br.Close()
			for step := 0; ; step++ {
				if plan.KillAt(r.ID(), step) {
					return
				}
				bufA := []float64{float64(r.ID()), 1, 2}
				bufB := []float64{3, 4}
				ha := br.SubmitAllReduce(bufA)
				hb := br.SubmitAllReduce(bufB)
				if err := ha.Wait(); err != nil {
					panic(err.Error())
				}
				if err := hb.Wait(); err != nil {
					panic(err.Error())
				}
				if step == 0 {
					// Before the kill, sums must be exact.
					if bufA[0] != float64(p*(p-1)/2) || bufB[1] != 4*p {
						panic("pre-kill sums wrong")
					}
				}
			}
		})
		return ""
	}()
	if panicked == "" {
		t.Fatal("expected the worker kill to raise a panic on survivors")
	}
	if !strings.Contains(panicked, "timed out") && !strings.Contains(panicked, "failed") {
		t.Fatalf("unexpected panic message: %q", panicked)
	}
}

// TestChaosBucketReducerFlakyLinksExact: bucketed collectives directly over
// a lossy fabric deliver bit-exact sums with measured retransmits.
func TestChaosBucketReducerFlakyLinksExact(t *testing.T) {
	defer leakcheck.Check(t)()
	const p, nBuckets, n = 4, 12, 97
	want := make([][]float64, nBuckets)
	for b := range want {
		want[b] = make([]float64, n)
		for rank := 0; rank < p; rank++ {
			r := rng.New(uint64(1000 + rank)).SplitN(b)
			for i := 0; i < n; i++ {
				want[b][i] += (r.Float64() - 0.5) * math.Pow(2, float64(i%9))
			}
		}
	}
	w := comm.NewWorld(p)
	if err := w.SetLinkFaults(fault.LinkFault{
		DropProb: 0.05, DupProb: 0.04, CorruptProb: 0.04, DelayProb: 0.05,
	}, 77); err != nil {
		t.Fatal(err)
	}
	w.Run(func(r *comm.Rank) {
		br := r.NewBucketReducer(comm.ARRabenseifner)
		bufs := make([][]float64, nBuckets)
		handles := make([]*comm.BucketHandle, nBuckets)
		for b := range bufs {
			rs := rng.New(uint64(1000 + r.ID())).SplitN(b)
			bufs[b] = make([]float64, n)
			for i := 0; i < n; i++ {
				bufs[b][i] = (rs.Float64() - 0.5) * math.Pow(2, float64(i%9))
			}
			handles[b] = br.SubmitAllReduce(bufs[b])
		}
		for b, h := range handles {
			if err := h.Wait(); err != nil {
				t.Errorf("bucket %d: %v", b, err)
			}
		}
		if err := br.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
		for b := range bufs {
			for i := range bufs[b] {
				// The reference sums ranks in order 0..p-1, which matches
				// no particular algorithm bracketing — compare to tight
				// tolerance rather than bitwise.
				if d := math.Abs(bufs[b][i] - want[b][i]); d > 1e-9 {
					t.Fatalf("bucket %d elem %d: got %v want %v", b, i, bufs[b][i], want[b][i])
				}
			}
		}
	})
	total := 0
	for i := 0; i < p; i++ {
		total += w.Stats(i).Retransmits
	}
	if total == 0 {
		t.Fatal("no retransmits — fault injection did not engage")
	}
}
