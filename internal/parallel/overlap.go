package parallel

import (
	"fmt"
	"time"

	"repro/internal/comm"
	"repro/internal/lowp"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Overlapped bucketed gradient communication (DDP-style).
//
// The flat trainer serialises compute and communication: every byte of the
// gradient allreduce sits on the step's critical path. The bucketed path
// instead groups gradient tensors into buckets ordered the way backward
// produces them (output layer first), and hands each bucket to a per-rank
// comm.BucketReducer the moment its last layer finishes backward — so early
// buckets cross the wire while the remaining layers are still computing.
//
// Correctness: tree, recursive-doubling, and Rabenseifner allreduces are
// segmentation-invariant (see comm.Rank.reduceTo), so at full precision the
// bucketed+overlapped run is bitwise identical to the flat run — the
// differential tests in overlap_test.go assert exactly that. Under
// error-feedback compression the runs are convergence-equivalent instead
// (bounded final-loss delta), which the tests also pin.

// bucket is one contiguous group of gradient tensors, communicated as a
// single buffer.
type bucket struct {
	tensors []int // indices into the net's flat Grads() slice
	elems   int
	// readyLayer is the lowest layer index contributing to this bucket:
	// backward runs layers in reverse, so once that layer's hook fires every
	// tensor in the bucket holds its final gradient.
	readyLayer int
}

// bucketPlan maps a net's gradient tensors onto buckets. The plan is a pure
// function of the architecture and bucketElems, so every rank builds the
// identical plan — which is what keeps the per-rank reducers' bucket
// sequences aligned.
type bucketPlan struct {
	buckets []bucket
	// layerFirstGrad[l] is the index of layer l's first grad tensor in the
	// flat Grads() slice (len = #layers+1, last entry = total tensors).
	layerFirstGrad []int
}

// buildBucketPlan walks the layers in reverse (the order backward completes
// them) and packs their gradient tensors into buckets of at least
// bucketElems elements (the last bucket may be smaller).
func buildBucketPlan(net *nn.Net, bucketElems int) *bucketPlan {
	plan := &bucketPlan{layerFirstGrad: make([]int, len(net.Layers)+1)}
	for l, layer := range net.Layers {
		plan.layerFirstGrad[l+1] = plan.layerFirstGrad[l] + len(layer.Grads())
	}
	cur := bucket{readyLayer: len(net.Layers)}
	for l := len(net.Layers) - 1; l >= 0; l-- {
		gs := net.Layers[l].Grads()
		for gi := range gs {
			cur.tensors = append(cur.tensors, plan.layerFirstGrad[l]+gi)
			cur.elems += gs[gi].Len()
		}
		if len(gs) > 0 {
			cur.readyLayer = l
		}
		if cur.elems >= bucketElems {
			plan.buckets = append(plan.buckets, cur)
			cur = bucket{readyLayer: l}
		}
	}
	if cur.elems > 0 {
		plan.buckets = append(plan.buckets, cur)
	}
	return plan
}

// bucketSyncer runs one rank's bucketed gradient synchronisation across a
// step: buckets are submitted to the reducer as they become ready and
// drained after backward, with exposed-vs-total comm time accounting.
type bucketSyncer struct {
	plan       *bucketPlan
	reducer    *comm.BucketReducer
	grads      []*tensor.Tensor
	p          int
	precision  lowp.Precision
	compressor *lowp.GradCompressor // nil when uncompressed

	bufs    [][]float64 // per-bucket flatten buffers, reused across steps
	handles []*comm.BucketHandle
	next    int // next bucket to submit this step

	exposed time.Duration // time blocked in Wait after backward finished
}

func newBucketSyncer(rank *comm.Rank, plan *bucketPlan, grads []*tensor.Tensor,
	cfg DataParallelConfig) *bucketSyncer {
	bs := &bucketSyncer{
		plan:      plan,
		reducer:   rank.NewBucketReducer(cfg.Algo),
		grads:     grads,
		p:         rank.Size(),
		precision: cfg.GradPrecision,
		bufs:      make([][]float64, len(plan.buckets)),
		handles:   make([]*comm.BucketHandle, len(plan.buckets)),
	}
	if cfg.Compress != lowp.CompressNone {
		bs.compressor = lowp.NewGradCompressor(cfg.Compress, cfg.TopKRatio)
	}
	for b, bk := range plan.buckets {
		bs.bufs[b] = make([]float64, bk.elems)
	}
	return bs
}

// onLayerDone is the nn.BackwardWithHook callback: submit every bucket whose
// deepest contributing layer has now finished.
func (bs *bucketSyncer) onLayerDone(layer int) {
	for bs.next < len(bs.plan.buckets) && bs.plan.buckets[bs.next].readyLayer >= layer {
		bs.submit(bs.next)
		bs.next++
	}
}

// submitAll queues every remaining bucket — the non-overlapped bucketed
// path (and the tail in case a hook was never installed).
func (bs *bucketSyncer) submitAll() {
	for bs.next < len(bs.plan.buckets) {
		bs.submit(bs.next)
		bs.next++
	}
}

// submit flattens bucket b's tensors (rounding through GradPrecision first,
// like the flat path) and hands the buffer to the reducer — compressed
// buckets travel as fixed-length allgather payloads, uncompressed ones as
// in-place allreduces.
func (bs *bucketSyncer) submit(b int) {
	bk := bs.plan.buckets[b]
	buf := bs.bufs[b]
	off := 0
	for _, ti := range bk.tensors {
		g := bs.grads[ti]
		if bs.precision != lowp.FP64 {
			lowp.RoundTensor(g, bs.precision)
		}
		copy(buf[off:off+g.Len()], g.Data)
		off += g.Len()
	}
	if bs.compressor != nil {
		bs.handles[b] = bs.reducer.SubmitAllGather(bs.compressor.Compress(b, buf))
	} else {
		bs.handles[b] = bs.reducer.SubmitAllReduce(buf)
	}
}

// drain waits for every bucket, averages across ranks, and writes the
// synchronised gradients back into the tensors. It returns the total drain
// time; the portion spent blocked in Wait accumulates into bs.exposed (the
// decode/unflatten work between waits is compute, not communication).
func (bs *bucketSyncer) drain() time.Duration {
	start := time.Now()
	scale := 1 / float64(bs.p)
	for b := range bs.plan.buckets {
		h := bs.handles[b]
		w0 := time.Now()
		err := h.Wait()
		bs.exposed += time.Since(w0)
		if err != nil {
			panic(fmt.Sprintf("parallel: bucket %d sync failed: %v", b, err))
		}
		buf := bs.bufs[b]
		if bs.compressor != nil {
			// Decode and sum every rank's fixed-length segment in rank
			// order — identical arithmetic on every rank, so replicas
			// stay in lockstep.
			gathered := h.Gathered()
			wl := len(gathered) / bs.p
			for i := range buf {
				buf[i] = 0
			}
			for r := 0; r < bs.p; r++ {
				bs.compressor.DecodeAccumulate(gathered[r*wl:(r+1)*wl], buf)
			}
		}
		off := 0
		for _, ti := range bs.plan.buckets[b].tensors {
			g := bs.grads[ti]
			for i := 0; i < g.Len(); i++ {
				g.Data[i] = buf[off+i] * scale
			}
			off += g.Len()
		}
		bs.handles[b] = nil
	}
	bs.next = 0
	return time.Since(start)
}

// close shuts the reducer down and reports the run's comm accounting.
func (bs *bucketSyncer) close() (commSeconds, exposedSeconds float64, err error) {
	err = bs.reducer.Close()
	return bs.reducer.CommSeconds(), bs.exposed.Seconds(), err
}

// overlapFraction converts total vs exposed comm seconds into the fraction
// of communication hidden behind compute, clamped to [0, 1].
func overlapFraction(commSeconds, exposedSeconds float64) float64 {
	if commSeconds <= 0 {
		return 0
	}
	f := 1 - exposedSeconds/commSeconds
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}
