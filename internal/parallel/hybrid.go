package parallel

import (
	"fmt"
	"time"

	"repro/internal/comm"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// HybridConfig configures data x model hybrid training: R data-parallel
// replicas, each an S-stage model-parallel pipeline, with per-stage gradient
// allreduce across replicas — the decomposition the paper says large-scale
// DNN training must combine.
type HybridConfig struct {
	Replicas     int // data-parallel width R
	Stages       int // model-parallel depth S
	MicroBatches int
	Loss         nn.Loss
	NewOptimizer func() nn.Optimizer
	GlobalBatch  int // across all replicas
	Epochs       int
	Algo         comm.AllReduceAlgorithm
	RNG          *rng.Stream
	// Obs, if enabled, records per-worker spans (tid = replica*S + stage)
	// and collective telemetry for both the pipeline and reduce worlds.
	Obs *obs.Session
}

// HybridResult reports a hybrid run.
type HybridResult struct {
	EpochLoss     []float64
	Steps         int
	TotalBytes    int
	PipelineBytes int // activation/gradient traffic within pipelines
	ReduceBytes   int // gradient allreduce traffic across replicas
	// WorkerBusy is each worker's compute wall-time in seconds, indexed by
	// pipeline rank (replica*S + stage); excludes activation waits and the
	// cross-replica allreduce.
	WorkerBusy []float64
	// BusyImbalance is max/min of WorkerBusy (1 = perfectly balanced).
	BusyImbalance float64
}

// TrainHybrid trains net with R x S workers. net is updated in place with
// the final weights (identical across replicas).
func TrainHybrid(net *nn.Net, x, y *tensor.Tensor, cfg HybridConfig) (*HybridResult, error) {
	if cfg.Replicas < 1 || cfg.Stages < 1 {
		return nil, fmt.Errorf("parallel: need >=1 replica and stage")
	}
	if cfg.Loss == nil || cfg.NewOptimizer == nil {
		return nil, fmt.Errorf("parallel: Loss and NewOptimizer required")
	}
	if cfg.MicroBatches < 1 {
		cfg.MicroBatches = 1
	}
	if cfg.Epochs < 1 {
		cfg.Epochs = 1
	}
	if cfg.RNG == nil {
		return nil, fmt.Errorf("parallel: RNG required")
	}
	n := x.Dim(0)
	if y.Dim(0) != n {
		return nil, fmt.Errorf("parallel: %d inputs vs %d targets", n, y.Dim(0))
	}
	perReplica := cfg.GlobalBatch / cfg.Replicas
	if perReplica < cfg.MicroBatches {
		return nil, fmt.Errorf("parallel: per-replica batch %d < micro-batches %d",
			perReplica, cfg.MicroBatches)
	}
	if cfg.GlobalBatch > n {
		return nil, fmt.Errorf("parallel: batch %d > dataset %d", cfg.GlobalBatch, n)
	}

	r, s := cfg.Replicas, cfg.Stages
	// Build R replica pipelines over clones sharing partition structure.
	parts := PartitionLayers(net.Layers, s)
	s = len(parts)
	type worker struct {
		stage *nn.Net
		opt   nn.Optimizer
	}
	workers := make([][]worker, r) // [replica][stage]
	for ri := 0; ri < r; ri++ {
		var src *nn.Net
		if ri == 0 {
			src = net
		} else {
			src = net.Clone()
		}
		repParts := PartitionLayers(src.Layers, cfg.Stages)
		workers[ri] = make([]worker, s)
		for si := 0; si < s; si++ {
			workers[ri][si] = worker{stage: nn.NewNet(repParts[si]...), opt: cfg.NewOptimizer()}
		}
	}

	orders := make([][]int, cfg.Epochs)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for e := range orders {
		cfg.RNG.ShuffleInts(order)
		orders[e] = append([]int(nil), order...)
	}

	steps := n / cfg.GlobalBatch
	if steps == 0 {
		steps = 1
	}
	mbSize := perReplica / cfg.MicroBatches

	// Pipeline world: R*S ranks, rank = replica*S + stage.
	// Reduce worlds: one per stage, R ranks each, for cross-replica allreduce.
	pipeWorld := comm.NewWorld(r * s)
	pipeWorld.SetObs(cfg.Obs)
	reduceWorlds := make([]*comm.World, s)
	for si := 0; si < s; si++ {
		reduceWorlds[si] = comm.NewWorld(r)
		reduceWorlds[si].SetObs(cfg.Obs)
		// A reduce-world rank is driven by the pipeline-rank goroutine
		// (replica*S + stage); point its spans at that goroutine's tid.
		si := si
		reduceWorlds[si].SetObsTID(func(id int) int { return id*s + si })
	}

	lossPerReplica := make([][]float64, r)
	busy := make([]float64, r*s)
	const (
		tagAct  = 100
		tagGrad = 300
	)

	pipeWorld.Run(func(rank *comm.Rank) {
		ri := rank.ID() / s
		si := rank.ID() % s
		o := cfg.Obs
		instr := o.Enabled()
		w := workers[ri][si]
		redRank := reduceRank(reduceWorlds[si], ri)
		first := si == 0
		last := si == s-1
		grads := w.stage.Grads()
		buf := make([]float64, flatSize(grads))
		var losses []float64
		var work time.Time
		settle := func() { busy[rank.ID()] += time.Since(work).Seconds() }

		for e := 0; e < cfg.Epochs; e++ {
			ord := orders[e]
			epochTotal := 0.0
			epochStart := time.Now()
			for st := 0; st < steps; st++ {
				w.stage.ZeroGrads()
				stepLoss := 0.0
				for mb := 0; mb < cfg.MicroBatches; mb++ {
					base := st*cfg.GlobalBatch + ri*perReplica + mb*mbSize
					idx := ord[base : base+mbSize]
					var act *tensor.Tensor
					if first {
						act, _ = gather(x, y, idx)
					} else {
						in := rank.Recv(rank.ID()-1, tagAct+mb)
						act = tensor.FromSlice(in, mbSize, len(in)/mbSize)
					}
					work = time.Now()
					var sp *obs.Span
					if instr {
						sp = o.Span(rank.ID(), "forward")
					}
					out := w.stage.Forward(act, true)
					if instr {
						sp.End()
					}
					settle()
					if !last {
						rank.Send(rank.ID()+1, tagAct+mb, out.Data)
						gin := rank.Recv(rank.ID()+1, tagGrad+mb)
						work = time.Now()
						if instr {
							sp = o.Span(rank.ID(), "backward")
						}
						dout := tensor.FromSlice(gin, out.Shape()...)
						dx := w.stage.Backward(dout)
						if instr {
							sp.End()
						}
						settle()
						if !first {
							rank.Send(rank.ID()-1, tagGrad+mb, dx.Data)
						}
						continue
					}
					work = time.Now()
					if instr {
						sp = o.Span(rank.ID(), "backward")
					}
					_, by := gather(x, y, idx)
					stepLoss += cfg.Loss.Loss(out, by)
					dout := tensor.New(out.Shape()...)
					cfg.Loss.Grad(dout, out, by)
					tensor.Scale(dout, dout, 1/float64(cfg.MicroBatches))
					dx := w.stage.Backward(dout)
					if instr {
						sp.End()
					}
					settle()
					if !first {
						rank.Send(rank.ID()-1, tagGrad+mb, dx.Data)
					}
				}
				// Cross-replica gradient allreduce within this stage.
				if r > 1 {
					flatten(grads, buf)
					redRank.AllReduce(buf, cfg.Algo)
					inv := 1 / float64(r)
					for i := range buf {
						buf[i] *= inv
					}
					unflatten(buf, grads)
				}
				work = time.Now()
				var sp *obs.Span
				if instr {
					sp = o.Span(rank.ID(), "optimizer")
				}
				w.opt.Step(w.stage.Params(), w.stage.Grads())
				if instr {
					sp.End()
				}
				settle()
				if last {
					epochTotal += stepLoss / float64(cfg.MicroBatches)
				}
			}
			if last {
				losses = append(losses, epochTotal/float64(steps))
				if instr && ri == 0 {
					o.OnEpoch(e, losses[len(losses)-1], time.Since(epochStart))
				}
			}
		}
		if last {
			lossPerReplica[ri] = losses
		}
	})

	pipeBytes := pipeWorld.TotalBytes()
	reduceBytes := 0
	for _, rw := range reduceWorlds {
		reduceBytes += rw.TotalBytes()
	}
	return &HybridResult{
		EpochLoss:     lossPerReplica[0],
		Steps:         steps * cfg.Epochs,
		TotalBytes:    pipeBytes + reduceBytes,
		PipelineBytes: pipeBytes,
		ReduceBytes:   reduceBytes,
		WorkerBusy:    busy,
		BusyImbalance: busyImbalance(busy),
	}, nil
}

// reduceRank gives the goroutine for pipeline rank (replica ri) its rank in
// the per-stage reduce world. comm.World.Run normally creates ranks, so we
// construct them directly here — safe because exactly one goroutine uses
// each rank.
func reduceRank(w *comm.World, id int) *comm.Rank {
	return w.ExternalRank(id)
}
