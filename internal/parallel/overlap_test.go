package parallel

import (
	"math"
	"testing"

	"repro/internal/comm"
	"repro/internal/lowp"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/rng"
)

// trainPair runs the same seeded problem through the flat path and the given
// bucketed/overlapped config and returns the two trained nets.
func trainPair(t *testing.T, bucketed DataParallelConfig) (flat, buck *nn.Net, buckRes *DataParallelResult) {
	t.Helper()
	const seed = 42
	x, y, _, netFlat := makeProblem(seed, 128, 6, 2)
	netBuck := netFlat.Clone()

	flatCfg := bucketed
	flatCfg.BucketElems = 0
	flatCfg.Overlap = false
	flatCfg.Compress = lowp.CompressNone
	flatCfg.RNG = rng.New(7)
	if _, err := TrainDataParallel(netFlat, x, y, flatCfg); err != nil {
		t.Fatal(err)
	}
	bucketed.RNG = rng.New(7)
	res, err := TrainDataParallel(netBuck, x, y, bucketed)
	if err != nil {
		t.Fatal(err)
	}
	return netFlat, netBuck, res
}

// baseCfg is the shared training recipe for the differential tests: 4
// replicas, 3 epochs, deterministic shuffles.
func baseCfg(algo comm.AllReduceAlgorithm) DataParallelConfig {
	return DataParallelConfig{
		Replicas:     4,
		Algo:         algo,
		Loss:         nn.SoftmaxCELoss{},
		NewOptimizer: func() nn.Optimizer { return nn.NewSGD(0.1) },
		GlobalBatch:  32,
		Epochs:       3,
	}
}

// assertBitwiseEqual fails unless every parameter of a and b has the same
// float64 bit pattern.
func assertBitwiseEqual(t *testing.T, a, b *nn.Net, ctx string) {
	t.Helper()
	pa, pb := a.Params(), b.Params()
	for i := range pa {
		for j := range pa[i].Data {
			ba := math.Float64bits(pa[i].Data[j])
			bb := math.Float64bits(pb[i].Data[j])
			if ba != bb {
				t.Fatalf("%s: param %d elem %d differs: %x vs %x (%v vs %v)",
					ctx, i, j, ba, bb, pa[i].Data[j], pb[i].Data[j])
			}
		}
	}
}

// TestOverlappedBitwiseIdenticalToFlat is the tentpole differential: for
// every segmentation-invariant algorithm and several bucket sizes, the
// bucketed+overlapped trainer must produce bitwise-identical parameters to
// the flat-allreduce baseline over 3 seeded epochs.
func TestOverlappedBitwiseIdenticalToFlat(t *testing.T) {
	algos := []comm.AllReduceAlgorithm{comm.ARTree, comm.ARRecursiveDoubling, comm.ARRabenseifner}
	for _, algo := range algos {
		for _, bucketElems := range []int{1, 50, 200, 1 << 20} {
			for _, overlap := range []bool{false, true} {
				cfg := baseCfg(algo)
				cfg.BucketElems = bucketElems
				cfg.Overlap = overlap
				flat, buck, res := trainPair(t, cfg)
				ctx := algo.String()
				if overlap {
					ctx += "/overlap"
				}
				assertBitwiseEqual(t, flat, buck, ctx)
				if res.Buckets < 1 {
					t.Fatalf("%s: no buckets reported", ctx)
				}
				if bucketElems == 1 && res.Buckets < 2 {
					t.Fatalf("%s: tiny buckets should split the gradient, got %d", ctx, res.Buckets)
				}
			}
		}
	}
}

// TestOverlappedRingWithinTolerance: ring allreduce is not segmentation-
// invariant, so bucketing may shift results by float rounding — the trained
// nets must still agree to tight numeric tolerance.
func TestOverlappedRingWithinTolerance(t *testing.T) {
	cfg := baseCfg(comm.ARRing)
	cfg.BucketElems = 50
	cfg.Overlap = true
	flat, buck, _ := trainPair(t, cfg)
	pa, pb := flat.Params(), buck.Params()
	for i := range pa {
		for j := range pa[i].Data {
			if d := math.Abs(pa[i].Data[j] - pb[i].Data[j]); d > 1e-9 {
				t.Fatalf("ring bucketed diverged: param %d elem %d by %v", i, j, d)
			}
		}
	}
}

// TestOverlappedReplicasStayInSync: every replica must hold identical
// parameters after bucketed training (with and without compression).
func TestOverlappedReplicasStayInSync(t *testing.T) {
	kinds := []struct {
		name     string
		compress lowp.CompressKind
		ratio    float64
	}{
		{"full", lowp.CompressNone, 0},
		{"topk", lowp.CompressTopK, 0.25},
		{"int8", lowp.CompressInt8, 0},
	}
	for _, k := range kinds {
		x, y, _, net := makeProblem(1, 128, 6, 2)
		cfg := baseCfg(comm.ARTree)
		cfg.BucketElems = 60
		cfg.Overlap = true
		cfg.Compress = k.compress
		cfg.TopKRatio = k.ratio
		cfg.RNG = rng.New(3)
		// Train clones of the same net on each rank; TrainDataParallel
		// already uses internal clones, so verify divergence via a second
		// deterministic run.
		net2 := net.Clone()
		if _, err := TrainDataParallel(net, x, y, cfg); err != nil {
			t.Fatalf("%s: %v", k.name, err)
		}
		cfg.RNG = rng.New(3)
		if _, err := TrainDataParallel(net2, x, y, cfg); err != nil {
			t.Fatalf("%s: %v", k.name, err)
		}
		assertBitwiseEqual(t, net, net2, k.name+" determinism")
	}
}

// TestCompressedConvergenceEquivalent: error-feedback compression must stay
// convergence-equivalent to the uncompressed run — the final epoch loss may
// differ only by a bounded delta, and training must actually make progress.
func TestCompressedConvergenceEquivalent(t *testing.T) {
	kinds := []struct {
		name     string
		compress lowp.CompressKind
		ratio    float64
		minRatio float64 // expected compression ratio floor
	}{
		{"topk25", lowp.CompressTopK, 0.25, 1.5},
		{"topk10", lowp.CompressTopK, 0.10, 3.5},
		{"int8", lowp.CompressInt8, 0, 6.0},
	}
	const epochs = 6
	x, y, _, netRef := makeProblem(9, 256, 6, 2)
	refCfg := baseCfg(comm.ARTree)
	refCfg.Epochs = epochs
	refCfg.RNG = rng.New(5)
	refNet := netRef.Clone()
	refRes, err := TrainDataParallel(refNet, x, y, refCfg)
	if err != nil {
		t.Fatal(err)
	}
	refFinal := refRes.EpochLoss[len(refRes.EpochLoss)-1]
	if refFinal >= refRes.EpochLoss[0] {
		t.Fatalf("reference run did not converge: %v", refRes.EpochLoss)
	}
	for _, k := range kinds {
		cfg := baseCfg(comm.ARTree)
		cfg.Epochs = epochs
		cfg.BucketElems = 60
		cfg.Overlap = true
		cfg.Compress = k.compress
		cfg.TopKRatio = k.ratio
		cfg.RNG = rng.New(5)
		net := netRef.Clone()
		res, err := TrainDataParallel(net, x, y, cfg)
		if err != nil {
			t.Fatalf("%s: %v", k.name, err)
		}
		final := res.EpochLoss[len(res.EpochLoss)-1]
		if final >= res.EpochLoss[0] {
			t.Fatalf("%s: compressed run did not converge: %v", k.name, res.EpochLoss)
		}
		// Convergence-equivalence: bounded final-loss delta vs uncompressed.
		if d := math.Abs(final - refFinal); d > 0.1 {
			t.Fatalf("%s: final loss delta %v vs reference %v (losses %v)",
				k.name, d, refFinal, res.EpochLoss)
		}
		if res.CompressionRatio < k.minRatio {
			t.Fatalf("%s: compression ratio %v below %v", k.name, res.CompressionRatio, k.minRatio)
		}
	}
}

// TestOverlapMetricsRecorded: the overlapped run must report comm-time
// accounting and an overlap fraction in [0, 1], mirrored into obs gauges.
func TestOverlapMetricsRecorded(t *testing.T) {
	x, y, _, net := makeProblem(4, 256, 8, 2)
	sess := obs.NewSession()
	sess.Enable()
	cfg := DataParallelConfig{
		Replicas:     4,
		Algo:         comm.ARTree,
		Loss:         nn.SoftmaxCELoss{},
		NewOptimizer: func() nn.Optimizer { return nn.NewSGD(0.1) },
		GlobalBatch:  64,
		Epochs:       3,
		BucketElems:  40,
		Overlap:      true,
		RNG:          rng.New(11),
		Obs:          sess,
	}
	res, err := TrainDataParallel(net, x, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.CommSeconds <= 0 {
		t.Fatalf("CommSeconds %v", res.CommSeconds)
	}
	if res.ExposedCommSeconds < 0 {
		t.Fatalf("ExposedCommSeconds %v", res.ExposedCommSeconds)
	}
	if res.OverlapFraction < 0 || res.OverlapFraction > 1 {
		t.Fatalf("OverlapFraction %v outside [0,1]", res.OverlapFraction)
	}
	snap := sess.Registry.Snapshot()
	found := false
	for _, g := range snap.Gauges {
		if g.Name == "parallel.overlap_fraction" {
			found = true
			if g.Value != res.OverlapFraction {
				t.Fatalf("gauge %v != result %v", g.Value, res.OverlapFraction)
			}
		}
	}
	if !found {
		t.Fatal("parallel.overlap_fraction gauge not recorded")
	}
}

// TestBucketPlanShapes: the plan packs reverse-layer-order tensors into
// buckets that cover every gradient exactly once, with ready layers
// monotonically decreasing.
func TestBucketPlanShapes(t *testing.T) {
	net := nn.MLP(6, []int{16, 8}, 2, nn.Tanh, rng.New(1))
	grads := net.Grads()
	total := 0
	for _, g := range grads {
		total += g.Len()
	}
	for _, be := range []int{1, 10, 100, 1 << 20} {
		plan := buildBucketPlan(net, be)
		seen := make(map[int]bool)
		elems := 0
		lastReady := len(net.Layers)
		for _, bk := range plan.buckets {
			if bk.readyLayer > lastReady {
				t.Fatalf("be=%d: readyLayer not monotone: %v then %v", be, lastReady, bk.readyLayer)
			}
			lastReady = bk.readyLayer
			for _, ti := range bk.tensors {
				if seen[ti] {
					t.Fatalf("be=%d: tensor %d in two buckets", be, ti)
				}
				seen[ti] = true
				elems += grads[ti].Len()
			}
		}
		if len(seen) != len(grads) || elems != total {
			t.Fatalf("be=%d: plan covers %d tensors/%d elems, want %d/%d",
				be, len(seen), elems, len(grads), total)
		}
	}
}

// TestBucketedValidation: Overlap/Compress without BucketElems must be
// rejected.
func TestBucketedValidation(t *testing.T) {
	x, y, _, net := makeProblem(2, 64, 4, 2)
	cfg := baseCfg(comm.ARTree)
	cfg.Overlap = true
	cfg.RNG = rng.New(1)
	if _, err := TrainDataParallel(net, x, y, cfg); err == nil {
		t.Fatal("Overlap without BucketElems should error")
	}
	cfg = baseCfg(comm.ARTree)
	cfg.Compress = lowp.CompressTopK
	cfg.TopKRatio = 0.5
	cfg.RNG = rng.New(1)
	if _, err := TrainDataParallel(net, x, y, cfg); err == nil {
		t.Fatal("Compress without BucketElems should error")
	}
}

// TestBucketedSingleReplica: p=1 must work (degenerate world, no comm).
func TestBucketedSingleReplica(t *testing.T) {
	x, y, _, net := makeProblem(3, 64, 4, 2)
	cfg := DataParallelConfig{
		Replicas:     1,
		Algo:         comm.ARTree,
		Loss:         nn.SoftmaxCELoss{},
		NewOptimizer: func() nn.Optimizer { return nn.NewSGD(0.1) },
		GlobalBatch:  16,
		Epochs:       2,
		BucketElems:  50,
		Overlap:      true,
		RNG:          rng.New(2),
	}
	res, err := TrainDataParallel(net, x, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.EpochLoss[len(res.EpochLoss)-1] >= res.EpochLoss[0] {
		t.Fatalf("single-replica bucketed run did not learn: %v", res.EpochLoss)
	}
}
