package parallel

import (
	"testing"

	"repro/internal/nn"
	"repro/internal/rng"
)

func TestAsyncValidation(t *testing.T) {
	x, y, _, net := makeProblem(91, 64, 4, 2)
	if _, err := TrainAsync(net, x, y, AsyncConfig{Workers: 0}); err == nil {
		t.Fatal("0 workers accepted")
	}
	if _, err := TrainAsync(net, x, y, AsyncConfig{
		Workers: 2, Loss: nn.SoftmaxCELoss{},
		NewOptimizer:   func() nn.Optimizer { return nn.NewSGD(0.1) },
		BatchPerWorker: 8, StepsPerWorker: 4}); err == nil {
		t.Fatal("missing RNG accepted")
	}
}

func TestAsyncSingleWorkerLearns(t *testing.T) {
	x, y, labels, net := makeProblem(92, 256, 8, 2)
	res, err := TrainAsync(net, x, y, AsyncConfig{
		Workers: 1, Loss: nn.SoftmaxCELoss{},
		NewOptimizer:   func() nn.Optimizer { return nn.NewAdam(0.01) },
		BatchPerWorker: 32, StepsPerWorker: 120, RNG: rng.New(5),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Updates != 120 {
		t.Fatalf("updates %d", res.Updates)
	}
	// With one worker there is no staleness by construction.
	if res.MeanStaleness != 0 || res.MaxStaleness != 0 {
		t.Fatalf("single worker staleness %v/%v", res.MeanStaleness, res.MaxStaleness)
	}
	if acc := nn.EvaluateClassifier(net, x, labels); acc < 0.6 {
		t.Fatalf("async accuracy %.3f", acc)
	}
}

func TestAsyncMultiWorkerLearnsDespiteStaleness(t *testing.T) {
	x, y, labels, net := makeProblem(93, 256, 8, 2)
	res, err := TrainAsync(net, x, y, AsyncConfig{
		Workers: 4, Loss: nn.SoftmaxCELoss{},
		NewOptimizer:   func() nn.Optimizer { return nn.NewAdam(0.005) },
		BatchPerWorker: 32, StepsPerWorker: 60, RNG: rng.New(6),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Updates != 240 {
		t.Fatalf("updates %d", res.Updates)
	}
	if acc := nn.EvaluateClassifier(net, x, labels); acc < 0.6 {
		t.Fatalf("async accuracy %.3f with staleness %.2f", acc, res.MeanStaleness)
	}
	// Weights must be finite.
	for _, p := range net.Params() {
		for _, v := range p.Data {
			if v != v {
				t.Fatal("NaN weights after async training")
			}
		}
	}
}

func TestAsyncStalenessAccounting(t *testing.T) {
	// Staleness counters must be self-consistent: mean <= max, max less
	// than total updates.
	x, y, _, net := makeProblem(94, 128, 6, 2)
	res, err := TrainAsync(net, x, y, AsyncConfig{
		Workers: 8, Loss: nn.SoftmaxCELoss{},
		NewOptimizer:   func() nn.Optimizer { return nn.NewSGD(0.02) },
		BatchPerWorker: 16, StepsPerWorker: 20, RNG: rng.New(7),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanStaleness < 0 || float64(res.MaxStaleness) < res.MeanStaleness {
		t.Fatalf("staleness accounting inconsistent: mean %v max %v",
			res.MeanStaleness, res.MaxStaleness)
	}
	if res.MaxStaleness >= res.Updates {
		t.Fatalf("staleness %d exceeds total updates %d", res.MaxStaleness, res.Updates)
	}
}
