// Package trace provides the experiment reporting primitives: aligned text
// tables (what the benchmark harness prints for each experiment), CSV
// export, and a timestamped event log for debugging long campaigns.
package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
	raw     [][]any // original cell values, kept for typed JSON export
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; cells are formatted with %v. The row length must
// match the column count.
func (t *Table) AddRow(cells ...any) {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("trace: row has %d cells, table has %d columns",
			len(cells), len(t.Columns)))
	}
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		case float32:
			row[i] = FormatFloat(float64(v))
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
	t.raw = append(t.raw, append([]any(nil), cells...))
}

// FormatFloat renders floats compactly: scientific for extremes, fixed
// otherwise. It is the one float formatter shared by experiment reporting
// (this package) and telemetry summaries (internal/obs).
func FormatFloat(v float64) string {
	av := v
	if av < 0 {
		av = -av
	}
	switch {
	case v == 0:
		return "0"
	case av >= 1e6 || av < 1e-3:
		return fmt.Sprintf("%.3g", v)
	case av >= 100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteString("\n")
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	if err := t.Render(&sb); err != nil {
		return fmt.Sprintf("trace: render failed: %v", err)
	}
	return sb.String()
}

// WriteCSV exports the table (header + rows) as CSV.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return fmt.Errorf("trace: csv header: %w", err)
	}
	for _, row := range t.rows {
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("trace: csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSON exports the table as a JSON array of row objects keyed by
// column name, preserving cell types (numbers stay numbers; everything
// non-marshalable falls back to its %v string). Non-finite floats, which
// JSON cannot represent, are exported as their FormatFloat strings.
func (t *Table) WriteJSON(w io.Writer) error {
	rows := make([]map[string]any, 0, len(t.raw))
	for _, raw := range t.raw {
		obj := make(map[string]any, len(t.Columns))
		for i, col := range t.Columns {
			obj[col] = jsonCell(raw[i])
		}
		rows = append(rows, obj)
	}
	doc := struct {
		Title   string           `json:"title"`
		Columns []string         `json:"columns"`
		Rows    []map[string]any `json:"rows"`
	}{t.Title, t.Columns, rows}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return fmt.Errorf("trace: json: %w", err)
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// jsonCell converts one cell to a JSON-marshalable value.
func jsonCell(c any) any {
	switch v := c.(type) {
	case float64:
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return FormatFloat(v)
		}
		return v
	case float32:
		return jsonCell(float64(v))
	case bool, string, int, int8, int16, int32, int64,
		uint, uint8, uint16, uint32, uint64:
		return v
	default:
		return fmt.Sprintf("%v", v)
	}
}

// Log is a concurrency-safe event log keyed by category.
type Log struct {
	mu     sync.Mutex
	events []Event
}

// Event is one recorded occurrence.
type Event struct {
	Seq      int
	Category string
	Message  string
}

// Add records an event.
func (l *Log) Add(category, format string, args ...any) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = append(l.events, Event{
		Seq: len(l.events), Category: category,
		Message: fmt.Sprintf(format, args...),
	})
}

// Events returns a copy of all events in order.
func (l *Log) Events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Event(nil), l.events...)
}

// Categories returns the distinct categories, sorted.
func (l *Log) Categories() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	set := map[string]bool{}
	for _, e := range l.events {
		set[e.Category] = true
	}
	out := make([]string, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Filter returns events of one category.
func (l *Log) Filter(category string) []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Event
	for _, e := range l.events {
		if e.Category == category {
			out = append(out, e)
		}
	}
	return out
}
