package trace

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("demo", "name", "value")
	tb.AddRow("alpha", 1.5)
	tb.AddRow("b", 12345678.9)
	out := tb.String()
	if !strings.Contains(out, "== demo ==") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "1.5000") {
		t.Fatalf("row content missing:\n%s", out)
	}
	if !strings.Contains(out, "1.23e+07") {
		t.Fatalf("large float not scientific:\n%s", out)
	}
	// Alignment: every line in the body has the same column start.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, sep, 2 rows
		t.Fatalf("unexpected line count %d:\n%s", len(lines), out)
	}
}

func TestTableRowMismatchPanics(t *testing.T) {
	tb := NewTable("x", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("row length mismatch did not panic")
		}
	}()
	tb.AddRow("only one")
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("x", "a", "b")
	tb.AddRow("v,with,commas", 2)
	var sb strings.Builder
	if err := tb.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	if !strings.HasPrefix(got, "a,b\n") {
		t.Fatalf("csv header wrong: %q", got)
	}
	if !strings.Contains(got, `"v,with,commas"`) {
		t.Fatalf("csv quoting wrong: %q", got)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		0.5:     "0.5000",
		150:     "150.0",
		1e7:     "1e+07",
		0.00001: "1e-05",
	}
	for v, want := range cases {
		if got := FormatFloat(v); got != want {
			t.Errorf("FormatFloat(%v)=%q want %q", v, got, want)
		}
	}
}

func TestLogConcurrent(t *testing.T) {
	var l Log
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				l.Add("cat", "worker %d event %d", i, j)
			}
		}(i)
	}
	wg.Wait()
	if len(l.Events()) != 800 {
		t.Fatalf("lost events: %d", len(l.Events()))
	}
	// Sequence numbers are unique and dense.
	seen := map[int]bool{}
	for _, e := range l.Events() {
		if seen[e.Seq] {
			t.Fatal("duplicate sequence number")
		}
		seen[e.Seq] = true
	}
}

func TestLogFilterAndCategories(t *testing.T) {
	var l Log
	l.Add("a", "one")
	l.Add("b", "two")
	l.Add("a", "three")
	if got := l.Filter("a"); len(got) != 2 {
		t.Fatalf("filter returned %d", len(got))
	}
	cats := l.Categories()
	if len(cats) != 2 || cats[0] != "a" || cats[1] != "b" {
		t.Fatalf("categories %v", cats)
	}
}

func TestTableWriteJSON(t *testing.T) {
	tb := NewTable("scaling", "mode", "ranks", "eff")
	tb.AddRow("strong", 8, 0.75)
	tb.AddRow("weak", 16, math.NaN())
	var sb strings.Builder
	if err := tb.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Title   string           `json:"title"`
		Columns []string         `json:"columns"`
		Rows    []map[string]any `json:"rows"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("WriteJSON produced invalid JSON: %v\n%s", err, sb.String())
	}
	if doc.Title != "scaling" || len(doc.Columns) != 3 || len(doc.Rows) != 2 {
		t.Fatalf("doc shape wrong: %+v", doc)
	}
	// Numbers must stay numbers, not strings.
	if v, ok := doc.Rows[0]["ranks"].(float64); !ok || v != 8 {
		t.Errorf("ranks = %#v, want number 8", doc.Rows[0]["ranks"])
	}
	if v, ok := doc.Rows[0]["eff"].(float64); !ok || v != 0.75 {
		t.Errorf("eff = %#v, want number 0.75", doc.Rows[0]["eff"])
	}
	// NaN is not representable in JSON: it falls back to the shared
	// FormatFloat string so the document stays loadable.
	if v, ok := doc.Rows[1]["eff"].(string); !ok || v != FormatFloat(math.NaN()) {
		t.Errorf("NaN cell = %#v, want %q", doc.Rows[1]["eff"], FormatFloat(math.NaN()))
	}
}
