package biodata

import (
	"math"

	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// HistologyConfig parameterises the 2-D imaging generator (the paper's
// "automated systems routinely out-performing human expertise" tumor
// diagnosis driver works on histopathology images). Images are small
// single-channel texture patches; each class has a characteristic spatial
// structure, so convolutional models hold a real advantage over dense ones.
type HistologyConfig struct {
	Samples int
	Side    int // square image side length
	Classes int // tissue classes (must be in [2,4])
	Noise   float64
}

// DefaultHistologyConfig mirrors small tissue patches.
func DefaultHistologyConfig() HistologyConfig {
	return HistologyConfig{Samples: 1200, Side: 16, Classes: 3, Noise: 0.4}
}

// Histology generates texture patches:
//
//	class 0 — dense round "nuclei" blobs (high local curvature)
//	class 1 — elongated fibrous strands (oriented streaks)
//	class 2 — open glandular rings
//	class 3 — uniform stroma (low structure)
//
// The discriminating signal is purely spatial: per-pixel marginals are
// nearly identical across classes.
func Histology(cfg HistologyConfig, r *rng.Stream) *Dataset {
	if cfg.Classes < 2 {
		cfg.Classes = 2
	}
	if cfg.Classes > 4 {
		cfg.Classes = 4
	}
	side := cfg.Side
	ds := &Dataset{Name: "histology", NumClasses: cfg.Classes,
		X:      tensor.New(cfg.Samples, side*side),
		Labels: make([]int, cfg.Samples)}
	for i := 0; i < cfg.Samples; i++ {
		c := i % cfg.Classes
		ds.Labels[i] = c
		img := ds.X.Row(i).Data
		switch c {
		case 0: // nuclei: several small bright blobs
			for b := 0; b < 4+r.Intn(4); b++ {
				cy, cx := float64(1+r.Intn(side-2)), float64(1+r.Intn(side-2))
				rad := 1.0 + r.Float64()
				stamp(img, side, func(y, x float64) float64 {
					d2 := (y-cy)*(y-cy) + (x-cx)*(x-cx)
					return 2 * math.Exp(-d2/(rad*rad))
				})
			}
		case 1: // fibres: oriented streaks
			theta := r.Uniform(0, math.Pi)
			freq := 0.8 + r.Float64()
			phase := r.Uniform(0, 2*math.Pi)
			stamp(img, side, func(y, x float64) float64 {
				t := y*math.Cos(theta) + x*math.Sin(theta)
				return 1.2 * math.Max(0, math.Sin(freq*t+phase))
			})
		case 2: // glands: one or two rings
			for g := 0; g < 1+r.Intn(2); g++ {
				cy, cx := float64(3+r.Intn(side-6)), float64(3+r.Intn(side-6))
				rad := 2.5 + 1.5*r.Float64()
				stamp(img, side, func(y, x float64) float64 {
					d := math.Sqrt((y-cy)*(y-cy)+(x-cx)*(x-cx)) - rad
					return 1.8 * math.Exp(-d*d/0.8)
				})
			}
		case 3: // stroma: smooth low-frequency field
			ky, kx := r.Uniform(0.1, 0.3), r.Uniform(0.1, 0.3)
			stamp(img, side, func(y, x float64) float64 {
				return 0.8 + 0.4*math.Sin(ky*y)*math.Cos(kx*x)
			})
		}
		// Shared intensity normalisation + noise, so marginals overlap.
		mean := 0.0
		for _, v := range img {
			mean += v
		}
		mean /= float64(len(img))
		for j := range img {
			img[j] = img[j] - mean + r.NormMeanStd(0, cfg.Noise)
		}
	}
	ds.Y = nn.OneHot(ds.Labels, cfg.Classes)
	return ds
}

func stamp(img []float64, side int, f func(y, x float64) float64) {
	for y := 0; y < side; y++ {
		for x := 0; x < side; x++ {
			img[y*side+x] += f(float64(y), float64(x))
		}
	}
}
