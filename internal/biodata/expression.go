package biodata

import (
	"fmt"
	"math"

	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// TumorConfig parameterises the tumor-type classification generator
// (the NT3/TC1-shaped problem: classify tumor type from an RNA expression
// profile).
type TumorConfig struct {
	Samples     int     // total profiles
	Genes       int     // profile length
	Classes     int     // tumor types
	Informative int     // genes carrying class signal (<= Genes)
	Separation  float64 // centroid separation in noise-std units
	Noise       float64 // per-gene measurement noise std
	// PathwayBlocks adds correlated blocks mimicking co-regulated pathways.
	PathwayBlocks int
}

// DefaultTumorConfig mirrors a small NT3-like problem.
func DefaultTumorConfig() TumorConfig {
	return TumorConfig{Samples: 1200, Genes: 256, Classes: 4,
		Informative: 64, Separation: 1.4, Noise: 1.0, PathwayBlocks: 8}
}

// Tumor generates tumor expression profiles with class-dependent signatures
// planted on a subset of genes plus correlated pathway structure.
func Tumor(cfg TumorConfig, r *rng.Stream) *Dataset {
	if cfg.Informative > cfg.Genes {
		cfg.Informative = cfg.Genes
	}
	centro := make([][]float64, cfg.Classes)
	genesPerClass := cfg.Informative
	for c := range centro {
		centro[c] = make([]float64, cfg.Genes)
		for g := 0; g < genesPerClass; g++ {
			// Sparse, class-specific up/down regulation.
			gene := r.Intn(cfg.Genes)
			if r.Bernoulli(0.5) {
				centro[c][gene] += cfg.Separation
			} else {
				centro[c][gene] -= cfg.Separation
			}
		}
	}
	// Pathway blocks: random gene groups sharing a latent factor.
	type block struct {
		genes []int
		load  []float64
	}
	blocks := make([]block, cfg.PathwayBlocks)
	for b := range blocks {
		size := 4 + r.Intn(12)
		blocks[b].genes = r.Sample(cfg.Genes, size)
		blocks[b].load = make([]float64, size)
		for i := range blocks[b].load {
			blocks[b].load[i] = r.NormMeanStd(0, 0.8)
		}
	}

	ds := &Dataset{Name: "tumor", NumClasses: cfg.Classes,
		X:      tensor.New(cfg.Samples, cfg.Genes),
		Labels: make([]int, cfg.Samples)}
	for i := 0; i < cfg.Samples; i++ {
		c := i % cfg.Classes
		ds.Labels[i] = c
		row := ds.X.Row(i).Data
		for g := range row {
			row[g] = centro[c][g] + r.NormMeanStd(0, cfg.Noise)
		}
		for _, b := range blocks {
			f := r.Norm()
			for k, g := range b.genes {
				row[g] += f * b.load[k]
			}
		}
	}
	ds.Y = nn.OneHot(ds.Labels, cfg.Classes)
	return ds
}

// AutoencoderConfig parameterises the expression-compression generator
// (the P1B1-shaped problem: learn a compact latent code of expression data).
type AutoencoderConfig struct {
	Samples int
	Genes   int
	// Latent is the true manifold dimensionality of the generated profiles.
	Latent int
	Noise  float64
}

// DefaultAutoencoderConfig mirrors a small P1B1-like problem.
func DefaultAutoencoderConfig() AutoencoderConfig {
	return AutoencoderConfig{Samples: 1500, Genes: 256, Latent: 12, Noise: 0.15}
}

// AutoencoderExpression generates profiles lying near a Latent-dimensional
// nonlinear manifold embedded in gene space; Y equals X (reconstruction).
func AutoencoderExpression(cfg AutoencoderConfig, r *rng.Stream) *Dataset {
	// Random two-layer decoder: latent -> tanh(hidden) -> genes.
	hidden := 2 * cfg.Latent
	w1 := make([][]float64, cfg.Latent)
	for i := range w1 {
		w1[i] = make([]float64, hidden)
		for j := range w1[i] {
			w1[i][j] = r.NormMeanStd(0, 1.2)
		}
	}
	w2 := make([][]float64, hidden)
	for i := range w2 {
		w2[i] = make([]float64, cfg.Genes)
		for j := range w2[i] {
			w2[i][j] = r.NormMeanStd(0, 0.9)
		}
	}
	ds := &Dataset{Name: "expr-ae",
		X: tensor.New(cfg.Samples, cfg.Genes)}
	h := make([]float64, hidden)
	for i := 0; i < cfg.Samples; i++ {
		for j := range h {
			h[j] = 0
		}
		for l := 0; l < cfg.Latent; l++ {
			z := r.Norm()
			for j := 0; j < hidden; j++ {
				h[j] += z * w1[l][j]
			}
		}
		row := ds.X.Row(i).Data
		for j := 0; j < hidden; j++ {
			hj := math.Tanh(h[j])
			for g := 0; g < cfg.Genes; g++ {
				row[g] += hj * w2[j][g]
			}
		}
		for g := range row {
			row[g] += r.NormMeanStd(0, cfg.Noise)
		}
	}
	ds.Y = ds.X.Clone()
	return ds
}

// Validate checks a TumorConfig for usability.
func (c TumorConfig) Validate() error {
	if c.Samples <= 0 || c.Genes <= 0 || c.Classes < 2 {
		return fmt.Errorf("biodata: invalid TumorConfig %+v", c)
	}
	return nil
}
