package biodata

import (
	"math"

	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// MDConfig parameterises the molecular-dynamics surrogate generator (the
// paper's basic-cancer-research driver: DL "supervising large-scale
// multi-resolution molecular dynamics simulations used to explore cancer
// gene signaling pathways"). A trajectory hops between metastable
// conformational states of a model protein (RAS-like); each frame is
// featurised as a residue-contact fingerprint. The supervision task is to
// label each frame with its metastable state so the (simulated) MD driver
// can decide where to spawn finer-resolution runs.
type MDConfig struct {
	Frames     int
	Residues   int     // contact fingerprint is Residues*(Residues-1)/2 pairs subsampled to ContactDim
	ContactDim int     // feature length
	States     int     // metastable states
	DwellMean  float64 // mean frames between transitions
	Thermal    float64 // within-state thermal fluctuation
}

// DefaultMDConfig mirrors a small trajectory.
func DefaultMDConfig() MDConfig {
	return MDConfig{Frames: 2000, Residues: 24, ContactDim: 160,
		States: 3, DwellMean: 40, Thermal: 0.35}
}

// MDTrajectory simulates a Markov-jump trajectory between metastable states,
// each with its own characteristic contact fingerprint, and emits per-frame
// features with thermal noise. Frames are ordered in time, so callers can
// split chronologically (train on early frames, detect on later ones) the
// way an online MD supervisor would.
func MDTrajectory(cfg MDConfig, r *rng.Stream) *Dataset {
	// Reference contact strength per state and contact.
	ref := make([][]float64, cfg.States)
	for s := range ref {
		ref[s] = make([]float64, cfg.ContactDim)
		for c := range ref[s] {
			// Contacts are mostly shared (protein scaffold) with
			// state-specific differences on a subset.
			ref[s][c] = r.Uniform(0, 1)
		}
	}
	// Make a fraction of contacts strongly state-discriminative.
	for c := 0; c < cfg.ContactDim/6; c++ {
		idx := r.Intn(cfg.ContactDim)
		for s := range ref {
			ref[s][idx] = float64(s) / float64(cfg.States-1)
		}
	}

	ds := &Dataset{Name: "md-frames", NumClasses: cfg.States,
		X:      tensor.New(cfg.Frames, cfg.ContactDim),
		Labels: make([]int, cfg.Frames)}
	state := 0
	dwell := r.Poisson(cfg.DwellMean)
	for f := 0; f < cfg.Frames; f++ {
		if dwell <= 0 {
			// Jump to a uniformly random different state.
			next := r.Intn(cfg.States - 1)
			if next >= state {
				next++
			}
			state = next
			dwell = r.Poisson(cfg.DwellMean)
		}
		dwell--
		ds.Labels[f] = state
		row := ds.X.Row(f).Data
		for c := range row {
			row[c] = ref[state][c] + r.NormMeanStd(0, cfg.Thermal)
			if row[c] < 0 {
				row[c] = 0
			}
		}
	}
	ds.Y = nn.OneHot(ds.Labels, cfg.States)
	return ds
}

// TransitionCount returns the number of state transitions in a label
// sequence — used to validate trajectory statistics.
func TransitionCount(labels []int) int {
	n := 0
	for i := 1; i < len(labels); i++ {
		if labels[i] != labels[i-1] {
			n++
		}
	}
	return n
}

// StateOccupancy returns the fraction of frames spent in each state.
func StateOccupancy(labels []int, states int) []float64 {
	occ := make([]float64, states)
	for _, l := range labels {
		occ[l]++
	}
	for i := range occ {
		occ[i] /= math.Max(1, float64(len(labels)))
	}
	return occ
}
