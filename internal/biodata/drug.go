package biodata

import (
	"math"

	"repro/internal/rng"
	"repro/internal/tensor"
)

// DrugResponseConfig parameterises the drug-response regression generator
// (the P1B3/Combo-shaped problem: predict tumor growth response from a cell
// line's expression profile, a compound's descriptors, and the dose).
type DrugResponseConfig struct {
	CellLines int // distinct cell lines
	Drugs     int // distinct compounds
	DosesPer  int // dose points per (cell, drug) pair sampled
	Pairs     int // (cell, drug) pairs sampled
	CellDim   int // expression feature length per cell line
	DrugDim   int // descriptor length per drug
	LatentDim int // dimensionality of the interaction latent space
	Noise     float64
}

// DefaultDrugResponseConfig mirrors a small P1B3-like problem.
func DefaultDrugResponseConfig() DrugResponseConfig {
	return DrugResponseConfig{CellLines: 60, Drugs: 40, DosesPer: 5,
		Pairs: 500, CellDim: 128, DrugDim: 64, LatentDim: 6, Noise: 0.05}
}

// DrugResponse generates dose-response observations. Each cell line and drug
// carries a latent vector; their inner product sets the log-IC50 of a Hill
// dose-response curve, and observed features are noisy nonlinear expansions
// of the latents. The learning task is regression of the growth fraction in
// [0,1] from [cell features, drug features, log-dose].
func DrugResponse(cfg DrugResponseConfig, r *rng.Stream) *Dataset {
	// Latents.
	cellLat := randMat(r, cfg.CellLines, cfg.LatentDim, 1)
	drugLat := randMat(r, cfg.Drugs, cfg.LatentDim, 1)
	// Observation maps latent -> features (fixed random projections + tanh).
	cellMap := randMat(r, cfg.LatentDim, cfg.CellDim, 1.0)
	drugMap := randMat(r, cfg.LatentDim, cfg.DrugDim, 1.0)

	cellFeat := expand(cellLat, cellMap, r, 0.1)
	drugFeat := expand(drugLat, drugMap, r, 0.1)

	n := cfg.Pairs * cfg.DosesPer
	dim := cfg.CellDim + cfg.DrugDim + 1
	ds := &Dataset{Name: "drug-response",
		X: tensor.New(n, dim), Y: tensor.New(n, 1)}
	row := 0
	for p := 0; p < cfg.Pairs; p++ {
		ci := r.Intn(cfg.CellLines)
		di := r.Intn(cfg.Drugs)
		// Sensitivity from latent interaction: dot product plus a bilinear
		// quirk so the response surface is genuinely nonlinear.
		dot := 0.0
		quirk := 0.0
		for k := 0; k < cfg.LatentDim; k++ {
			dot += cellLat[ci][k] * drugLat[di][k]
			if k+1 < cfg.LatentDim {
				quirk += cellLat[ci][k] * drugLat[di][k+1]
			}
		}
		logIC50 := 0.8*dot + 0.3*quirk // log10 µM units
		hill := 1.0 + 0.5*math.Abs(quirk)
		for d := 0; d < cfg.DosesPer; d++ {
			logDose := r.Uniform(-3, 3)
			// Hill equation: growth = 1 / (1 + (dose/IC50)^h)
			growth := 1 / (1 + math.Pow(10, hill*(logDose-logIC50)))
			growth += r.NormMeanStd(0, cfg.Noise)
			x := ds.X.Row(row).Data
			copy(x[:cfg.CellDim], cellFeat[ci])
			copy(x[cfg.CellDim:cfg.CellDim+cfg.DrugDim], drugFeat[di])
			x[dim-1] = logDose / 3 // scaled to ~[-1,1]
			ds.Y.Data[row] = clamp01(growth)
			row++
		}
	}
	return ds
}

func randMat(r *rng.Stream, rows, cols int, std float64) [][]float64 {
	m := make([][]float64, rows)
	for i := range m {
		m[i] = make([]float64, cols)
		for j := range m[i] {
			m[i][j] = r.NormMeanStd(0, std)
		}
	}
	return m
}

// expand maps latent rows through a fixed random projection + tanh + noise.
func expand(lat, proj [][]float64, r *rng.Stream, noise float64) [][]float64 {
	out := make([][]float64, len(lat))
	cols := len(proj[0])
	for i, lrow := range lat {
		out[i] = make([]float64, cols)
		for j := 0; j < cols; j++ {
			s := 0.0
			for k := range lrow {
				s += lrow[k] * proj[k][j]
			}
			out[i][j] = math.Tanh(s) + r.NormMeanStd(0, noise)
		}
	}
	return out
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
