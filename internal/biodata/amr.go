package biodata

import (
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// AMRConfig parameterises the antibiotic-resistance generator (the paper's
// infectious-disease driver: "predict antibiotic resistance and identify
// novel resistance mechanisms"). Genomes are represented as binary k-mer
// presence vectors; resistance is an OR over several mechanisms, each an
// AND of a few marker k-mers — the boolean structure real resistance genes
// (efflux pumps, beta-lactamases, target mutations) induce.
type AMRConfig struct {
	Samples    int
	KmerDim    int     // k-mer vocabulary size (feature length)
	Mechanisms int     // independent resistance mechanisms
	MarkersPer int     // k-mers that must co-occur to activate a mechanism
	Background float64 // baseline k-mer presence probability
	FlipNoise  float64 // per-bit sequencing-noise flip probability
}

// DefaultAMRConfig mirrors a small resistome panel.
func DefaultAMRConfig() AMRConfig {
	return AMRConfig{Samples: 1600, KmerDim: 192, Mechanisms: 3,
		MarkersPer: 3, Background: 0.25, FlipNoise: 0.01}
}

// AMR generates binary k-mer genomes with planted resistance mechanisms.
// Half the genomes are resistant: they carry at least one complete
// mechanism. The other half are susceptible: they may carry partial
// mechanisms (making the problem non-trivially non-linear) but never a
// complete one.
func AMR(cfg AMRConfig, r *rng.Stream) *Dataset {
	// Disjoint marker sets per mechanism.
	perm := r.Perm(cfg.KmerDim)
	mech := make([][]int, cfg.Mechanisms)
	p := 0
	for m := range mech {
		mech[m] = append([]int(nil), perm[p:p+cfg.MarkersPer]...)
		p += cfg.MarkersPer
	}
	markerSet := map[int]bool{}
	for _, ms := range mech {
		for _, g := range ms {
			markerSet[g] = true
		}
	}

	ds := &Dataset{Name: "amr", NumClasses: 2,
		X:      tensor.New(cfg.Samples, cfg.KmerDim),
		Labels: make([]int, cfg.Samples)}
	for i := 0; i < cfg.Samples; i++ {
		row := ds.X.Row(i).Data
		for j := range row {
			if !markerSet[j] && r.Bernoulli(cfg.Background) {
				row[j] = 1
			}
		}
		resistant := i%2 == 0
		if resistant {
			ds.Labels[i] = 1
			// Complete a random mechanism; sprinkle partials of others.
			m := r.Intn(cfg.Mechanisms)
			for _, g := range mech[m] {
				row[g] = 1
			}
			for om := range mech {
				if om != m && r.Bernoulli(0.4) {
					row[mech[om][r.Intn(cfg.MarkersPer)]] = 1
				}
			}
		} else {
			// Partial mechanisms only: drop at least one marker from any
			// mechanism that would otherwise complete.
			for _, ms := range mech {
				if r.Bernoulli(0.5) {
					// Carry all but one marker.
					skip := r.Intn(len(ms))
					for k, g := range ms {
						if k != skip {
							row[g] = 1
						}
					}
				}
			}
		}
		// Sequencing noise flips bits — but never flips a complete
		// mechanism into existence or out of existence, so labels stay
		// consistent with the planted rule.
		for j := range row {
			if markerSet[j] {
				continue
			}
			if r.Bernoulli(cfg.FlipNoise) {
				row[j] = 1 - row[j]
			}
		}
	}
	ds.Y = nn.OneHot(ds.Labels, 2)
	return ds
}

// AMRMechanisms re-derives the planted marker indices for a given config and
// seed stream state; used by tests and the mechanism-discovery example to
// check that a trained model's saliency recovers the planted biology.
// It must be called with a stream in the same state Amr was called with.
func AMRMechanisms(cfg AMRConfig, r *rng.Stream) [][]int {
	perm := r.Perm(cfg.KmerDim)
	mech := make([][]int, cfg.Mechanisms)
	p := 0
	for m := range mech {
		mech[m] = append([]int(nil), perm[p:p+cfg.MarkersPer]...)
		p += cfg.MarkersPer
	}
	return mech
}
