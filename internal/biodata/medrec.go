package biodata

import (
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// MedRecordsConfig parameterises the treatment-selection generator (the
// paper's public-health driver: "interpret millions of medical records to
// identify optimal treatment strategies"). Each record aggregates a
// patient's history — demographics, comorbidity indicators, lab values,
// prior-medication counts — and the target is which of several treatment
// strategies maximises outcome for that patient.
type MedRecordsConfig struct {
	Patients   int
	Labs       int // continuous lab-value features
	Comorbid   int // binary comorbidity indicators
	Treatments int // strategies to choose between
	Noise      float64
}

// DefaultMedRecordsConfig mirrors a small cohort.
func DefaultMedRecordsConfig() MedRecordsConfig {
	return MedRecordsConfig{Patients: 2000, Labs: 24, Comorbid: 16,
		Treatments: 3, Noise: 0.1}
}

// MedRecords generates patient records whose optimal treatment depends on
// nonlinear interactions between risk factors: each treatment has a latent
// benefit function over patient features, and the label is the argmax
// benefit. Interaction terms (comorbidity x lab) make the rule non-linear.
func MedRecords(cfg MedRecordsConfig, r *rng.Stream) *Dataset {
	dim := 2 + cfg.Labs + cfg.Comorbid // age, sex + labs + comorbidities
	// Per-treatment benefit model: linear + a few planted interactions.
	type model struct {
		w     []float64
		bias  float64
		inter [][2]int // feature index pairs whose product contributes
		iw    []float64
	}
	models := make([]model, cfg.Treatments)
	for t := range models {
		m := model{w: make([]float64, dim), bias: r.NormMeanStd(0, 0.3)}
		for j := range m.w {
			m.w[j] = r.NormMeanStd(0, 0.5)
		}
		for k := 0; k < 4; k++ {
			m.inter = append(m.inter, [2]int{r.Intn(dim), r.Intn(dim)})
			m.iw = append(m.iw, r.NormMeanStd(0, 1.0))
		}
		models[t] = m
	}

	ds := &Dataset{Name: "medrecords", NumClasses: cfg.Treatments,
		X:      tensor.New(cfg.Patients, dim),
		Labels: make([]int, cfg.Patients)}
	for i := 0; i < cfg.Patients; i++ {
		row := ds.X.Row(i).Data
		row[0] = r.Uniform(-1, 1) // age, scaled
		if r.Bernoulli(0.5) {     // sex
			row[1] = 1
		}
		for j := 0; j < cfg.Labs; j++ {
			row[2+j] = r.NormMeanStd(0, 1)
		}
		for j := 0; j < cfg.Comorbid; j++ {
			if r.Bernoulli(0.3) {
				row[2+cfg.Labs+j] = 1
			}
		}
		best, bestV := 0, -1e300
		for t, m := range models {
			v := m.bias + r.NormMeanStd(0, cfg.Noise)
			for j, w := range m.w {
				v += w * row[j]
			}
			for k, pair := range m.inter {
				v += m.iw[k] * row[pair[0]] * row[pair[1]]
			}
			if v > bestV {
				best, bestV = t, v
			}
		}
		ds.Labels[i] = best
	}
	ds.Y = nn.OneHot(ds.Labels, cfg.Treatments)
	return ds
}
