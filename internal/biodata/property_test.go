package biodata

// Property tests over every generator in the package: determinism in the
// seed, class separability of the planted signal, and exact partitioning by
// Split. Unlike the per-generator tests in biodata_test.go these do not
// train models — they check the properties directly, so they stay fast
// enough to run on every generator at once.

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/rng"
)

// generators enumerates every dataset generator at a small, fast size as a
// pure function of a seed.
func generators() []struct {
	name string
	gen  func(seed uint64) *Dataset
} {
	return []struct {
		name string
		gen  func(seed uint64) *Dataset
	}{
		{"tumor", func(seed uint64) *Dataset {
			cfg := DefaultTumorConfig()
			cfg.Samples = 200
			return Tumor(cfg, rng.New(seed))
		}},
		{"autoencoder", func(seed uint64) *Dataset {
			cfg := DefaultAutoencoderConfig()
			return AutoencoderExpression(cfg, rng.New(seed))
		}},
		{"drug", func(seed uint64) *Dataset {
			cfg := DefaultDrugResponseConfig()
			cfg.Pairs = 100
			return DrugResponse(cfg, rng.New(seed))
		}},
		{"medrecords", func(seed uint64) *Dataset {
			cfg := DefaultMedRecordsConfig()
			cfg.Patients = 300
			return MedRecords(cfg, rng.New(seed))
		}},
		{"amr", func(seed uint64) *Dataset {
			cfg := DefaultAMRConfig()
			cfg.Samples = 300
			return AMR(cfg, rng.New(seed))
		}},
		{"md", func(seed uint64) *Dataset {
			cfg := DefaultMDConfig()
			cfg.Frames = 300
			return MDTrajectory(cfg, rng.New(seed))
		}},
		{"histology", func(seed uint64) *Dataset {
			cfg := DefaultHistologyConfig()
			cfg.Samples = 200
			return Histology(cfg, rng.New(seed))
		}},
	}
}

// TestGeneratorsDeterministicWithEqualSeeds: every generator is a pure
// function of (config, seed) — equal seeds reproduce X, Y and Labels
// bit-for-bit, and a different seed changes the data.
func TestGeneratorsDeterministicWithEqualSeeds(t *testing.T) {
	for _, g := range generators() {
		a, b := g.gen(21), g.gen(21)
		for i := range a.X.Data {
			if a.X.Data[i] != b.X.Data[i] {
				t.Fatalf("%s: X diverges at %d with equal seeds", g.name, i)
			}
		}
		for i := range a.Y.Data {
			if a.Y.Data[i] != b.Y.Data[i] {
				t.Fatalf("%s: Y diverges at %d with equal seeds", g.name, i)
			}
		}
		for i := range a.Labels {
			if a.Labels[i] != b.Labels[i] {
				t.Fatalf("%s: labels diverge at %d with equal seeds", g.name, i)
			}
		}
		c := g.gen(22)
		same := true
		for i := range a.X.Data {
			if a.X.Data[i] != c.X.Data[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("%s: different seeds produced identical data", g.name)
		}
	}
}

// nearestNeighborAcc classifies each test row by its closest training row.
func nearestNeighborAcc(train, test *Dataset) float64 {
	hit := 0
	for i := 0; i < test.N(); i++ {
		row := test.X.Row(i).Data
		best, bd := -1, math.Inf(1)
		for j := 0; j < train.N(); j++ {
			tr := train.X.Row(j).Data
			s := 0.0
			for m, v := range row {
				d := v - tr[m]
				s += d * d
			}
			if s < bd {
				bd, best = s, train.Labels[j]
			}
		}
		if best == test.Labels[i] {
			hit++
		}
	}
	return float64(hit) / float64(test.N())
}

// nearestCentroidAcc classifies each test row by its closest class centroid.
func nearestCentroidAcc(train, test *Dataset) float64 {
	k, d := train.NumClasses, train.Dim()
	cent := make([][]float64, k)
	cnt := make([]int, k)
	for c := range cent {
		cent[c] = make([]float64, d)
	}
	for i := 0; i < train.N(); i++ {
		c := train.Labels[i]
		cnt[c]++
		for j, v := range train.X.Row(i).Data {
			cent[c][j] += v
		}
	}
	for c := range cent {
		for j := range cent[c] {
			cent[c][j] /= float64(cnt[c])
		}
	}
	hit := 0
	for i := 0; i < test.N(); i++ {
		row := test.X.Row(i).Data
		best, bd := -1, math.Inf(1)
		for c := range cent {
			s := 0.0
			for j, v := range row {
				dv := v - cent[c][j]
				s += dv * dv
			}
			if s < bd {
				bd, best = s, c
			}
		}
		if best == test.Labels[i] {
			hit++
		}
	}
	return float64(hit) / float64(test.N())
}

// TestClassSeparabilityProperty: the planted class signal must be visible
// to a model-free classifier — nearest neighbor for the geometric
// generators, nearest centroid for medrecords (whose latent benefit
// functions have a strong linear component but noisy local geometry). AMR
// is excluded here: its OR-of-ANDs rule is deliberately invisible to
// distance classifiers and gets its own structural test below.
func TestClassSeparabilityProperty(t *testing.T) {
	cases := []struct {
		name   string
		acc    func(train, test *Dataset) float64
		margin float64 // required accuracy above chance
	}{
		{"tumor", nearestNeighborAcc, 0.4},
		{"md", nearestNeighborAcc, 0.4},
		{"histology", nearestNeighborAcc, 0.3},
		{"medrecords", nearestCentroidAcc, 0.2},
	}
	gens := map[string]func(seed uint64) *Dataset{}
	for _, g := range generators() {
		gens[g.name] = g.gen
	}
	for _, c := range cases {
		for _, seed := range []uint64{31, 32, 33} {
			ds := gens[c.name](seed)
			train, test := ds.Split(0.8, rng.New(seed).Split("split"))
			acc := c.acc(train, test)
			chance := 1 / float64(ds.NumClasses)
			if acc < chance+c.margin {
				t.Errorf("%s seed=%d: accuracy %.3f below chance %.3f + margin %.2f",
					c.name, seed, acc, chance, c.margin)
			}
		}
	}
}

// TestAMRSeparableByPlantedMechanisms: AMR classes are exactly separable by
// the planted rule — a genome is resistant iff it carries every marker of
// at least one mechanism. Sequencing noise never touches marker k-mers, so
// the rule must agree with the labels on every sample.
func TestAMRSeparableByPlantedMechanisms(t *testing.T) {
	for _, seed := range []uint64{41, 42, 43} {
		cfg := DefaultAMRConfig()
		cfg.Samples = 300
		mech := AMRMechanisms(cfg, rng.New(seed))
		ds := AMR(cfg, rng.New(seed))
		for i := 0; i < ds.N(); i++ {
			row := ds.X.Row(i).Data
			resistant := 0
			for _, ms := range mech {
				complete := true
				for _, g := range ms {
					if row[g] != 1 {
						complete = false
						break
					}
				}
				if complete {
					resistant = 1
					break
				}
			}
			if resistant != ds.Labels[i] {
				t.Fatalf("seed=%d sample %d: planted rule says %d, label %d",
					seed, i, resistant, ds.Labels[i])
			}
		}
	}
}

// rowKey serialises one sample (features + targets + label) for multiset
// comparison.
func rowKey(ds *Dataset, i int) string {
	l := -1
	if ds.Labels != nil {
		l = ds.Labels[i]
	}
	return fmt.Sprintf("%v|%v|%d", ds.X.Row(i).Data, ds.Y.Row(i).Data, l)
}

// TestSplitDisjointnessProperty: Split is an exact partition — every
// original sample lands in train or test exactly once, with its features,
// targets and label intact, across generators, seeds and fractions.
func TestSplitDisjointnessProperty(t *testing.T) {
	for _, g := range generators() {
		for _, frac := range []float64{0.5, 0.8} {
			ds := g.gen(51)
			train, test := ds.Split(frac, rng.New(52).Split("split"))
			if train.N()+test.N() != ds.N() {
				t.Fatalf("%s frac=%.1f: %d+%d != %d samples",
					g.name, frac, train.N(), test.N(), ds.N())
			}
			counts := map[string]int{}
			for i := 0; i < ds.N(); i++ {
				counts[rowKey(ds, i)]++
			}
			for _, sub := range []*Dataset{train, test} {
				for i := 0; i < sub.N(); i++ {
					k := rowKey(sub, i)
					if counts[k] == 0 {
						t.Fatalf("%s frac=%.1f: split row not in original (or duplicated): %.40s",
							g.name, frac, k)
					}
					counts[k]--
				}
			}
			for k, c := range counts {
				if c != 0 {
					t.Fatalf("%s frac=%.1f: original row lost by split (%d left): %.40s",
						g.name, frac, c, k)
				}
			}
		}
	}
}
