package biodata

import (
	"math"
	"testing"

	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/stats"
)

func TestTumorDeterministic(t *testing.T) {
	cfg := DefaultTumorConfig()
	cfg.Samples = 50
	a := Tumor(cfg, rng.New(9))
	b := Tumor(cfg, rng.New(9))
	for i := range a.X.Data {
		if a.X.Data[i] != b.X.Data[i] {
			t.Fatal("tumor generator not deterministic")
		}
	}
}

func TestTumorShapesAndBalance(t *testing.T) {
	cfg := DefaultTumorConfig()
	cfg.Samples = 400
	ds := Tumor(cfg, rng.New(1))
	if ds.N() != 400 || ds.Dim() != cfg.Genes || ds.OutDim() != cfg.Classes {
		t.Fatalf("shapes wrong: %v", ds)
	}
	counts := make([]int, cfg.Classes)
	for _, l := range ds.Labels {
		counts[l]++
	}
	for c, n := range counts {
		if n != 100 {
			t.Fatalf("class %d has %d samples", c, n)
		}
	}
}

func TestTumorLearnable(t *testing.T) {
	cfg := DefaultTumorConfig()
	cfg.Samples = 600
	cfg.Genes = 64
	cfg.Informative = 24
	r := rng.New(2)
	ds := Tumor(cfg, r.Split("data"))
	train, test := ds.Split(0.8, r.Split("split"))
	m, s := train.StandardizeInPlace()
	test.ApplyStandardize(m, s)
	net := nn.MLP(train.Dim(), []int{32}, cfg.Classes, nn.ReLU, r.Split("init"))
	_, err := nn.Train(net, train.X, train.Y, nn.TrainConfig{
		Loss: nn.SoftmaxCELoss{}, Optimizer: nn.NewAdam(0.003),
		BatchSize: 32, Epochs: 30, Shuffle: true, RNG: r.Split("sh"),
	})
	if err != nil {
		t.Fatal(err)
	}
	acc := nn.EvaluateClassifier(net, test.X, test.Labels)
	if acc < 0.8 {
		t.Fatalf("tumor test accuracy %.3f — planted signal not learnable", acc)
	}
}

func TestSplitDisjointAndComplete(t *testing.T) {
	cfg := DefaultTumorConfig()
	cfg.Samples = 100
	ds := Tumor(cfg, rng.New(3))
	train, test := ds.Split(0.7, rng.New(4))
	if train.N() != 70 || test.N() != 30 {
		t.Fatalf("split sizes %d/%d", train.N(), test.N())
	}
	// Splits must preserve X–label pairing: each split row must appear in
	// the original with the same label.
	find := func(row []float64) int {
		for i := 0; i < ds.N(); i++ {
			orig := ds.X.Row(i).Data
			same := true
			for j := range row {
				if row[j] != orig[j] {
					same = false
					break
				}
			}
			if same {
				return i
			}
		}
		return -1
	}
	for i := 0; i < 10; i++ {
		src := find(train.X.Row(i).Data)
		if src < 0 || ds.Labels[src] != train.Labels[i] {
			t.Fatal("split broke feature-label pairing")
		}
	}
}

func TestSubsample(t *testing.T) {
	cfg := DefaultTumorConfig()
	cfg.Samples = 100
	ds := Tumor(cfg, rng.New(5))
	sub := ds.Subsample(17, rng.New(6))
	if sub.N() != 17 || sub.Dim() != ds.Dim() {
		t.Fatalf("subsample shape %v", sub)
	}
}

func TestStandardize(t *testing.T) {
	cfg := DefaultTumorConfig()
	cfg.Samples = 200
	ds := Tumor(cfg, rng.New(7))
	ds.StandardizeInPlace()
	for j := 0; j < 5; j++ {
		col := make([]float64, ds.N())
		for i := range col {
			col[i] = ds.X.At(i, j)
		}
		if m := stats.Mean(col); math.Abs(m) > 1e-9 {
			t.Fatalf("column %d mean %v after standardize", j, m)
		}
		if s := stats.Std(col); math.Abs(s-1) > 0.01 {
			t.Fatalf("column %d std %v after standardize", j, s)
		}
	}
}

func TestAutoencoderCompressible(t *testing.T) {
	cfg := DefaultAutoencoderConfig()
	cfg.Samples = 500
	cfg.Genes = 64
	cfg.Latent = 4
	r := rng.New(8)
	ds := AutoencoderExpression(cfg, r.Split("data"))
	if ds.Y.Len() != ds.X.Len() {
		t.Fatal("autoencoder target is not the input")
	}
	// An autoencoder with a bottleneck >= true latent dim should reconstruct
	// much better than predicting the mean.
	net := nn.NewNet(
		nn.NewDense(64, 16, r.Split("e1")), nn.NewActivation(nn.Tanh),
		nn.NewDense(16, 8, r.Split("e2")), nn.NewActivation(nn.Tanh),
		nn.NewDense(8, 16, r.Split("d1")), nn.NewActivation(nn.Tanh),
		nn.NewDense(16, 64, r.Split("d2")),
	)
	_, err := nn.Train(net, ds.X, ds.Y, nn.TrainConfig{
		Loss: nn.MSELoss{}, Optimizer: nn.NewAdam(0.002),
		BatchSize: 50, Epochs: 60,
	})
	if err != nil {
		t.Fatal(err)
	}
	mse := nn.EvaluateRegression(net, ds.X, ds.Y)
	// Variance of the data = MSE of the mean predictor.
	variance := 0.0
	mean := ds.X.Sum() / float64(ds.X.Len())
	for _, v := range ds.X.Data {
		variance += (v - mean) * (v - mean)
	}
	variance /= float64(ds.X.Len())
	if mse > 0.5*variance {
		t.Fatalf("autoencoder reconstruction MSE %v vs variance %v", mse, variance)
	}
}

func TestDrugResponseRange(t *testing.T) {
	cfg := DefaultDrugResponseConfig()
	cfg.Pairs = 100
	ds := DrugResponse(cfg, rng.New(9))
	if ds.N() != cfg.Pairs*cfg.DosesPer {
		t.Fatalf("sample count %d", ds.N())
	}
	if ds.Dim() != cfg.CellDim+cfg.DrugDim+1 {
		t.Fatalf("dim %d", ds.Dim())
	}
	for _, v := range ds.Y.Data {
		if v < 0 || v > 1 {
			t.Fatalf("growth %v outside [0,1]", v)
		}
	}
}

func TestDrugResponseDoseMonotone(t *testing.T) {
	// Averaged over many pairs, higher dose must mean lower growth.
	cfg := DefaultDrugResponseConfig()
	cfg.Pairs = 400
	cfg.Noise = 0
	ds := DrugResponse(cfg, rng.New(10))
	var loDose, hiDose stats.Online
	doseCol := ds.Dim() - 1
	for i := 0; i < ds.N(); i++ {
		dose := ds.X.At(i, doseCol)
		if dose < -0.5 {
			loDose.Add(ds.Y.Data[i])
		} else if dose > 0.5 {
			hiDose.Add(ds.Y.Data[i])
		}
	}
	if loDose.Mean() <= hiDose.Mean() {
		t.Fatalf("dose-response not monotone: low-dose growth %v, high-dose %v",
			loDose.Mean(), hiDose.Mean())
	}
}

func TestDrugResponseLearnable(t *testing.T) {
	cfg := DrugResponseConfig{CellLines: 30, Drugs: 20, DosesPer: 4,
		Pairs: 300, CellDim: 32, DrugDim: 16, LatentDim: 3, Noise: 0.02}
	r := rng.New(11)
	ds := DrugResponse(cfg, r.Split("data"))
	train, test := ds.Split(0.8, r.Split("split"))
	net := nn.MLP(ds.Dim(), []int{64, 32}, 1, nn.ReLU, r.Split("init"))
	_, err := nn.Train(net, train.X, train.Y, nn.TrainConfig{
		Loss: nn.MSELoss{}, Optimizer: nn.NewAdam(0.002),
		BatchSize: 32, Epochs: 60, Shuffle: true, RNG: r.Split("sh"),
	})
	if err != nil {
		t.Fatal(err)
	}
	mse := nn.EvaluateRegression(net, test.X, test.Y)
	// Baseline: predict the training-mean response.
	mean := train.Y.Sum() / float64(train.Y.Len())
	base := 0.0
	for _, v := range test.Y.Data {
		base += (v - mean) * (v - mean)
	}
	base /= float64(test.Y.Len())
	if mse > 0.6*base {
		t.Fatalf("drug response barely better than mean: MSE %v vs baseline %v", mse, base)
	}
}

func TestAMRLabelsConsistent(t *testing.T) {
	cfg := DefaultAMRConfig()
	cfg.Samples = 300
	seed := rng.New(12)
	mech := AMRMechanisms(cfg, rng.New(12).Split("probe"))
	_ = mech
	ds := AMR(cfg, seed)
	// Balance check.
	pos := 0
	for _, l := range ds.Labels {
		pos += l
	}
	if pos != 150 {
		t.Fatalf("AMR class balance %d/300", pos)
	}
	// Binary features.
	for _, v := range ds.X.Data {
		if v != 0 && v != 1 {
			t.Fatalf("non-binary k-mer value %v", v)
		}
	}
}

func TestAMRLearnableAndNonlinear(t *testing.T) {
	cfg := DefaultAMRConfig()
	cfg.Samples = 2400
	cfg.KmerDim = 96
	r := rng.New(13)
	ds := AMR(cfg, r.Split("data"))
	train, test := ds.Split(0.8, r.Split("split"))

	// A regularised MLP should solve the OR-of-ANDs rule well; without
	// weight decay it memorises the background k-mers instead.
	net := nn.MLP(cfg.KmerDim, []int{48}, 2, nn.ReLU, r.Split("init"))
	_, err := nn.Train(net, train.X, train.Y, nn.TrainConfig{
		Loss: nn.SoftmaxCELoss{}, Optimizer: nn.NewAdamW(0.005, 0.01),
		BatchSize: 32, Epochs: 80, Shuffle: true, RNG: r.Split("sh"),
	})
	if err != nil {
		t.Fatal(err)
	}
	deep := nn.EvaluateClassifier(net, test.X, test.Labels)
	if deep < 0.85 {
		t.Fatalf("AMR MLP accuracy %.3f", deep)
	}

	// A linear model (no hidden layer) should do worse: the planted rule is
	// a conjunction, and susceptible genomes carry partial mechanisms.
	lin := nn.MLP(cfg.KmerDim, nil, 2, nn.ReLU, r.Split("lin"))
	_, err = nn.Train(lin, train.X, train.Y, nn.TrainConfig{
		Loss: nn.SoftmaxCELoss{}, Optimizer: nn.NewAdamW(0.005, 0.01),
		BatchSize: 32, Epochs: 80, Shuffle: true, RNG: r.Split("sh2"),
	})
	if err != nil {
		t.Fatal(err)
	}
	linear := nn.EvaluateClassifier(lin, test.X, test.Labels)
	if linear >= deep {
		t.Logf("note: linear %.3f vs deep %.3f (planted nonlinearity weak this seed)", linear, deep)
	}
}

func TestMedRecordsShapes(t *testing.T) {
	cfg := DefaultMedRecordsConfig()
	cfg.Patients = 300
	ds := MedRecords(cfg, rng.New(14))
	if ds.N() != 300 || ds.NumClasses != cfg.Treatments {
		t.Fatalf("medrecords shape wrong: %v", ds)
	}
	// All treatment classes should occur.
	seen := make([]bool, cfg.Treatments)
	for _, l := range ds.Labels {
		seen[l] = true
	}
	for tix, s := range seen {
		if !s {
			t.Fatalf("treatment %d never optimal", tix)
		}
	}
}

func TestMedRecordsLearnable(t *testing.T) {
	cfg := DefaultMedRecordsConfig()
	cfg.Patients = 1500
	r := rng.New(15)
	ds := MedRecords(cfg, r.Split("data"))
	train, test := ds.Split(0.8, r.Split("split"))
	net := nn.MLP(ds.Dim(), []int{64, 32}, cfg.Treatments, nn.ReLU, r.Split("init"))
	_, err := nn.Train(net, train.X, train.Y, nn.TrainConfig{
		Loss: nn.SoftmaxCELoss{}, Optimizer: nn.NewAdam(0.003),
		BatchSize: 50, Epochs: 50, Shuffle: true, RNG: r.Split("sh"),
	})
	if err != nil {
		t.Fatal(err)
	}
	acc := nn.EvaluateClassifier(net, test.X, test.Labels)
	chance := 1.0 / float64(cfg.Treatments)
	if acc < chance+0.25 {
		t.Fatalf("medrecords accuracy %.3f barely above chance %.3f", acc, chance)
	}
}

func TestMDTrajectoryStatistics(t *testing.T) {
	cfg := DefaultMDConfig()
	cfg.Frames = 3000
	ds := MDTrajectory(cfg, rng.New(16))
	trans := TransitionCount(ds.Labels)
	expected := float64(cfg.Frames) / cfg.DwellMean
	if float64(trans) < expected/3 || float64(trans) > expected*3 {
		t.Fatalf("transition count %d far from expected ~%.0f", trans, expected)
	}
	occ := StateOccupancy(ds.Labels, cfg.States)
	for s, o := range occ {
		if o < 0.05 {
			t.Fatalf("state %d occupancy %.3f too low", s, o)
		}
	}
}

func TestMDFramesLearnable(t *testing.T) {
	cfg := DefaultMDConfig()
	cfg.Frames = 1500
	r := rng.New(17)
	ds := MDTrajectory(cfg, r.Split("data"))
	// Chronological split: supervise online like an MD driver would.
	nTrain := 1000
	trainX := ds.X.SliceRows(0, nTrain)
	trainY := ds.Y.SliceRows(0, nTrain)
	testX := ds.X.SliceRows(nTrain, ds.N())
	testLabels := ds.Labels[nTrain:]
	net := nn.MLP(ds.Dim(), []int{32}, cfg.States, nn.ReLU, r.Split("init"))
	_, err := nn.Train(net, trainX, trainY, nn.TrainConfig{
		Loss: nn.SoftmaxCELoss{}, Optimizer: nn.NewAdam(0.003),
		BatchSize: 50, Epochs: 25, Shuffle: true, RNG: r.Split("sh"),
	})
	if err != nil {
		t.Fatal(err)
	}
	acc := nn.EvaluateClassifier(net, testX, testLabels)
	if acc < 0.85 {
		t.Fatalf("MD state classification accuracy %.3f on future frames", acc)
	}
}

func TestTumorConfigValidate(t *testing.T) {
	bad := TumorConfig{Samples: 0}
	if err := bad.Validate(); err == nil {
		t.Fatal("invalid config accepted")
	}
	if err := DefaultTumorConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestHistologyShapes(t *testing.T) {
	cfg := DefaultHistologyConfig()
	cfg.Samples = 90
	ds := Histology(cfg, rng.New(41))
	if ds.N() != 90 || ds.Dim() != cfg.Side*cfg.Side {
		t.Fatalf("histology shapes wrong: %v", ds)
	}
	// Classes balanced and all present.
	counts := make([]int, cfg.Classes)
	for _, l := range ds.Labels {
		counts[l]++
	}
	for c, n := range counts {
		if n != 30 {
			t.Fatalf("class %d has %d samples", c, n)
		}
	}
}

func TestHistologyDeterministic(t *testing.T) {
	cfg := DefaultHistologyConfig()
	cfg.Samples = 30
	a := Histology(cfg, rng.New(42))
	b := Histology(cfg, rng.New(42))
	for i := range a.X.Data {
		if a.X.Data[i] != b.X.Data[i] {
			t.Fatal("histology generator not deterministic")
		}
	}
}

func TestHistologyMarginalsOverlap(t *testing.T) {
	// Per-pixel means should be close across classes — the signal must be
	// spatial, not a per-pixel intensity giveaway.
	cfg := DefaultHistologyConfig()
	cfg.Samples = 600
	ds := Histology(cfg, rng.New(43))
	classMean := make([]float64, cfg.Classes)
	classN := make([]float64, cfg.Classes)
	for i := 0; i < ds.N(); i++ {
		row := ds.X.Row(i).Data
		for _, v := range row {
			classMean[ds.Labels[i]] += v
		}
		classN[ds.Labels[i]] += float64(len(row))
	}
	for c := range classMean {
		classMean[c] /= classN[c]
		if math.Abs(classMean[c]) > 0.05 {
			t.Fatalf("class %d global mean %.4f not centred", c, classMean[c])
		}
	}
}

func TestHistologyClassesClamped(t *testing.T) {
	cfg := DefaultHistologyConfig()
	cfg.Samples = 20
	cfg.Classes = 9
	ds := Histology(cfg, rng.New(44))
	if ds.NumClasses != 4 {
		t.Fatalf("classes not clamped: %d", ds.NumClasses)
	}
}
