// Package biodata generates synthetic datasets with planted, learnable
// structure for the six biomedical driver problems the paper names: tumor
// classification, drug-response prediction, gene-expression compression,
// medical-record treatment selection, antibiotic-resistance prediction, and
// molecular-dynamics state supervision.
//
// Real NCI/clinical data is access-controlled, so each generator plants a
// signal of controllable difficulty whose learning curves and relative model
// orderings behave like the corresponding CANDLE benchmark — the substitution
// DESIGN.md documents. All generators are deterministic functions of their
// config and an rng.Stream.
package biodata

import (
	"fmt"
	"math"

	"repro/internal/rng"
	"repro/internal/tensor"
)

// Dataset is a supervised learning problem instance.
type Dataset struct {
	Name string
	// X is the (N x D) feature matrix.
	X *tensor.Tensor
	// Y is the (N x K) training target: one-hot classes for classification,
	// real values for regression, the input itself for autoencoding.
	Y *tensor.Tensor
	// Labels holds integer class labels for classification tasks
	// (nil for regression).
	Labels []int
	// NumClasses is the class count (0 for regression).
	NumClasses int
}

// N returns the sample count.
func (d *Dataset) N() int { return d.X.Dim(0) }

// Dim returns the feature dimensionality.
func (d *Dataset) Dim() int { return d.X.Dim(1) }

// OutDim returns the target dimensionality.
func (d *Dataset) OutDim() int { return d.Y.Dim(1) }

// String summarises the dataset.
func (d *Dataset) String() string {
	kind := "regression"
	if d.NumClasses > 0 {
		kind = fmt.Sprintf("%d-class", d.NumClasses)
	}
	return fmt.Sprintf("%s: %d samples x %d features (%s)", d.Name, d.N(), d.Dim(), kind)
}

// Split partitions the dataset into train and test subsets with the given
// train fraction, shuffling with r. Both subsets own fresh storage.
func (d *Dataset) Split(trainFrac float64, r *rng.Stream) (train, test *Dataset) {
	n := d.N()
	nTrain := int(float64(n) * trainFrac)
	if nTrain < 1 {
		nTrain = 1
	}
	if nTrain >= n {
		nTrain = n - 1
	}
	perm := r.Perm(n)
	return d.subset(perm[:nTrain]), d.subset(perm[nTrain:])
}

// Subsample returns a dataset of k samples drawn without replacement.
func (d *Dataset) Subsample(k int, r *rng.Stream) *Dataset {
	return d.subset(r.Sample(d.N(), k))
}

func (d *Dataset) subset(idx []int) *Dataset {
	sub := &Dataset{Name: d.Name, NumClasses: d.NumClasses,
		X: tensor.New(len(idx), d.Dim()),
		Y: tensor.New(len(idx), d.OutDim())}
	if d.Labels != nil {
		sub.Labels = make([]int, len(idx))
	}
	for i, s := range idx {
		copy(sub.X.Row(i).Data, d.X.Row(s).Data)
		copy(sub.Y.Row(i).Data, d.Y.Row(s).Data)
		if d.Labels != nil {
			sub.Labels[i] = d.Labels[s]
		}
	}
	return sub
}

// StandardizeInPlace shifts and scales each feature column of X to zero mean
// and unit variance, returning the column means and stds so a test set can
// be transformed identically via ApplyStandardize.
func (d *Dataset) StandardizeInPlace() (means, stds []float64) {
	n, dim := d.N(), d.Dim()
	means = make([]float64, dim)
	stds = make([]float64, dim)
	for i := 0; i < n; i++ {
		row := d.X.Row(i).Data
		for j, v := range row {
			means[j] += v
		}
	}
	for j := range means {
		means[j] /= float64(n)
	}
	for i := 0; i < n; i++ {
		row := d.X.Row(i).Data
		for j, v := range row {
			dv := v - means[j]
			stds[j] += dv * dv
		}
	}
	for j := range stds {
		stds[j] /= float64(n)
		if stds[j] > 0 {
			stds[j] = math.Sqrt(stds[j])
		} else {
			stds[j] = 1
		}
	}
	d.ApplyStandardize(means, stds)
	return means, stds
}

// ApplyStandardize transforms X with previously computed column statistics.
func (d *Dataset) ApplyStandardize(means, stds []float64) {
	n := d.N()
	for i := 0; i < n; i++ {
		row := d.X.Row(i).Data
		for j := range row {
			row[j] = (row[j] - means[j]) / stds[j]
		}
	}
}
