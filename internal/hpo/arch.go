package hpo

import (
	"fmt"
	"strconv"
	"strings"
)

// The architecture DSL is the vocabulary the learning searchers (the RL
// controller and PBT) explore: a variable-depth MLP described as a compact
// string — slash-separated layers, each "units[:act[:dropout]]", e.g.
// "128:relu:0.1/64:tanh/32". It maps losslessly onto an hpo search space of
// categorical decisions (ArchSpace), which is exactly the shape a seeded
// categorical policy emits token by token.

// ArchMaxLayers bounds DSL depth.
const ArchMaxLayers = 3

// ArchUnits are the allowed layer widths.
var ArchUnits = []int{8, 16, 32, 64, 128}

// ArchActs are the allowed activations.
var ArchActs = []string{"relu", "tanh", "gelu"}

// ArchDropouts are the allowed dropout rates.
var ArchDropouts = []float64{0, 0.1, 0.3}

// ArchLayer is one hidden layer of the DSL.
type ArchLayer struct {
	Units   int
	Act     string
	Dropout float64
}

// Arch is a parsed architecture.
type Arch struct {
	Layers []ArchLayer
}

// String renders the canonical DSL form: dropout is printed only when
// non-zero, activation always. ParseArch(a.String()) == a for valid archs.
func (a Arch) String() string {
	var sb strings.Builder
	for i, l := range a.Layers {
		if i > 0 {
			sb.WriteByte('/')
		}
		fmt.Fprintf(&sb, "%d:%s", l.Units, l.Act)
		if l.Dropout > 0 {
			fmt.Fprintf(&sb, ":%s", strconv.FormatFloat(l.Dropout, 'g', -1, 64))
		}
	}
	return sb.String()
}

// Validate checks the architecture against the DSL vocabulary.
func (a Arch) Validate() error {
	if len(a.Layers) == 0 {
		return fmt.Errorf("hpo: empty architecture")
	}
	if len(a.Layers) > ArchMaxLayers {
		return fmt.Errorf("hpo: %d layers exceeds max %d", len(a.Layers), ArchMaxLayers)
	}
	for i, l := range a.Layers {
		if idxOfInt(ArchUnits, l.Units) < 0 {
			return fmt.Errorf("hpo: layer %d units %d not in %v", i, l.Units, ArchUnits)
		}
		if idxOfString(ArchActs, l.Act) < 0 {
			return fmt.Errorf("hpo: layer %d activation %q not in %v", i, l.Act, ArchActs)
		}
		if idxOfFloat(ArchDropouts, l.Dropout) < 0 {
			return fmt.Errorf("hpo: layer %d dropout %g not in %v", i, l.Dropout, ArchDropouts)
		}
	}
	return nil
}

// ParseArch parses the DSL. The result is always validated.
func ParseArch(s string) (Arch, error) {
	var a Arch
	if strings.TrimSpace(s) == "" {
		return a, fmt.Errorf("hpo: empty architecture string")
	}
	for _, part := range strings.Split(s, "/") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		if len(fields) < 1 || len(fields) > 3 {
			return Arch{}, fmt.Errorf("hpo: bad layer %q", part)
		}
		units, err := strconv.Atoi(strings.TrimSpace(fields[0]))
		if err != nil {
			return Arch{}, fmt.Errorf("hpo: bad units in %q: %v", part, err)
		}
		l := ArchLayer{Units: units, Act: "relu"}
		if len(fields) > 1 {
			l.Act = strings.TrimSpace(fields[1])
		}
		if len(fields) > 2 {
			d, err := strconv.ParseFloat(strings.TrimSpace(fields[2]), 64)
			if err != nil {
				return Arch{}, fmt.Errorf("hpo: bad dropout in %q: %v", part, err)
			}
			l.Dropout = d
		}
		a.Layers = append(a.Layers, l)
	}
	if err := a.Validate(); err != nil {
		return Arch{}, err
	}
	return a, nil
}

// ArchSpace returns the DSL as an hpo search space: one depth decision,
// per-slot categorical width/activation/dropout decisions, and log-uniform
// optimizer parameters. Slots beyond the chosen depth are ignored by
// ArchFromConfig, so every point of the space decodes to a valid Arch.
func ArchSpace() *Space {
	params := []Param{
		{Name: "depth", Kind: Integer, Lo: 1, Hi: ArchMaxLayers},
	}
	unitChoices := make([]string, len(ArchUnits))
	for i, u := range ArchUnits {
		unitChoices[i] = strconv.Itoa(u)
	}
	dropChoices := make([]string, len(ArchDropouts))
	for i, d := range ArchDropouts {
		dropChoices[i] = strconv.FormatFloat(d, 'g', -1, 64)
	}
	for l := 1; l <= ArchMaxLayers; l++ {
		params = append(params,
			Param{Name: fmt.Sprintf("units%d", l), Kind: Categorical, Choices: unitChoices},
			Param{Name: fmt.Sprintf("act%d", l), Kind: Categorical, Choices: append([]string(nil), ArchActs...)},
			Param{Name: fmt.Sprintf("drop%d", l), Kind: Categorical, Choices: dropChoices},
		)
	}
	params = append(params,
		Param{Name: "lr", Kind: LogContinuous, Lo: 1e-4, Hi: 0.1},
		Param{Name: "decay", Kind: LogContinuous, Lo: 1e-6, Hi: 1e-2},
	)
	return MustSpace(params...)
}

// ArchFromConfig decodes an ArchSpace configuration into an Arch.
func ArchFromConfig(c Config) (Arch, error) {
	depth := c.Int("depth")
	if depth < 1 || depth > ArchMaxLayers {
		return Arch{}, fmt.Errorf("hpo: depth %d outside [1,%d]", depth, ArchMaxLayers)
	}
	var a Arch
	for l := 1; l <= depth; l++ {
		ui := clampIdx(c.Int(fmt.Sprintf("units%d", l)), len(ArchUnits))
		ai := clampIdx(c.Int(fmt.Sprintf("act%d", l)), len(ArchActs))
		di := clampIdx(c.Int(fmt.Sprintf("drop%d", l)), len(ArchDropouts))
		a.Layers = append(a.Layers, ArchLayer{
			Units: ArchUnits[ui], Act: ArchActs[ai], Dropout: ArchDropouts[di],
		})
	}
	return a, a.Validate()
}

// ConfigFromArch encodes an Arch (plus optimizer parameters) as an
// ArchSpace configuration; unused slots repeat the last layer so the config
// is fully specified.
func ConfigFromArch(a Arch, lr, decay float64) (Config, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	c := Config{"depth": float64(len(a.Layers)), "lr": lr, "decay": decay}
	for l := 1; l <= ArchMaxLayers; l++ {
		src := a.Layers[len(a.Layers)-1]
		if l <= len(a.Layers) {
			src = a.Layers[l-1]
		}
		c[fmt.Sprintf("units%d", l)] = float64(idxOfInt(ArchUnits, src.Units))
		c[fmt.Sprintf("act%d", l)] = float64(idxOfString(ArchActs, src.Act))
		c[fmt.Sprintf("drop%d", l)] = float64(idxOfFloat(ArchDropouts, src.Dropout))
	}
	return c, nil
}

func idxOfInt(xs []int, v int) int {
	for i, x := range xs {
		if x == v {
			return i
		}
	}
	return -1
}

func idxOfString(xs []string, v string) int {
	for i, x := range xs {
		if x == v {
			return i
		}
	}
	return -1
}

func idxOfFloat(xs []float64, v float64) int {
	for i, x := range xs {
		if x == v {
			return i
		}
	}
	return -1
}

func clampIdx(i, n int) int {
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}
