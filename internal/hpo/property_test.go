package hpo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// inSpace reports whether cfg assigns every parameter a value inside its
// domain (integers and categorical indices must also be integral).
func inSpace(s *Space, cfg Config) bool {
	for _, p := range s.Params {
		v, ok := cfg[p.Name]
		if !ok {
			return false
		}
		switch p.Kind {
		case Continuous, LogContinuous:
			if v < p.Lo || v > p.Hi {
				return false
			}
		case Integer:
			if v != math.Round(v) || v < p.Lo || v > p.Hi {
				return false
			}
		case Categorical:
			if v != math.Round(v) || v < 0 || v > float64(len(p.Choices)-1) {
				return false
			}
		}
	}
	return true
}

// propertyStrategies is the set under the generic property contract: the
// naive baselines, the adaptive classics, and the learning searchers.
func propertyStrategies() []Strategy {
	return []Strategy{
		RandomSearch{}, GridSearch{}, Hyperband{},
		RLController{}, PBT{},
	}
}

// Property: every configuration a strategy evaluates lies inside the search
// space, whatever the seed. quick.Check is explicitly seeded (same flake
// class as the internal/fault pin in PR 9) so -count=100 replays the same
// cases.
func TestQuickStrategiesSampleInSpace(t *testing.T) {
	space := testSpace()
	for _, strat := range propertyStrategies() {
		strat := strat
		t.Run(strat.Name(), func(t *testing.T) {
			f := func(seed uint64) bool {
				res, err := strat.Search(bowl, Options{
					Space: space, TotalBudget: 12, Parallelism: 3,
					RNG: rng.New(seed),
				})
				if err != nil || len(res.Trials) == 0 {
					return false
				}
				for _, tr := range res.Trials {
					if !inSpace(space, tr.Config) {
						return false
					}
					if tr.Budget <= 0 || tr.Budget > 1+1e-9 {
						return false
					}
				}
				return res.CostUsed <= 12+1e-9
			}
			cfg := &quick.Config{MaxCount: 8, Rand: rand.New(rand.NewSource(31))}
			if err := quick.Check(f, cfg); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// Property: a fixed seed yields the identical trial sequence — configs,
// losses, budgets, and seeds — across reruns, for every strategy. This is
// what makes campaign results replayable from a seed alone.
func TestStrategiesFixedSeedIdenticalTrials(t *testing.T) {
	space := testSpace()
	run := func(s Strategy, seed uint64) *Result {
		res, err := s.Search(bowl, Options{
			Space: space, TotalBudget: 15, Parallelism: 4,
			RNG: rng.New(seed),
		})
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		return res
	}
	strategies := propertyStrategies()
	strategies = append(strategies, Genetic{}, TPE{}, Surrogate{}, Generative{})
	for _, strat := range strategies {
		strat := strat
		t.Run(strat.Name(), func(t *testing.T) {
			a, b := run(strat, 77), run(strat, 77)
			if len(a.Trials) != len(b.Trials) {
				t.Fatalf("trial counts differ: %d vs %d", len(a.Trials), len(b.Trials))
			}
			if len(a.Trials) == 0 {
				t.Fatal("no trials")
			}
			for i := range a.Trials {
				ta, tb := a.Trials[i], b.Trials[i]
				if ta.Loss != tb.Loss || ta.Budget != tb.Budget || ta.Seed != tb.Seed {
					t.Fatalf("trial %d diverged: %+v vs %+v", i, ta, tb)
				}
				for k, v := range ta.Config {
					if tb.Config[k] != v {
						t.Fatalf("trial %d config[%s] diverged: %v vs %v", i, k, v, tb.Config[k])
					}
				}
			}
			if a.Best.Loss != b.Best.Loss || a.CostUsed != b.CostUsed {
				t.Fatalf("summary diverged: %+v vs %+v", a.Best, b.Best)
			}
		})
	}
}

// Property: Compare's per-strategy rows do not depend on the order the
// strategies are listed — each strategy's RNG is split from its name, so
// rankings are permutation-invariant.
func TestCompareRankingPermutationInvariant(t *testing.T) {
	opts := Options{Space: testSpace(), TotalBudget: 10, Parallelism: 2}
	seeds := []uint64{1, 2, 3}
	fwd := []Strategy{RandomSearch{}, Hyperband{}, RLController{}, PBT{}}
	rev := []Strategy{PBT{}, RLController{}, Hyperband{}, RandomSearch{}}
	rowsF, err := Compare(fwd, bowl, opts, seeds)
	if err != nil {
		t.Fatal(err)
	}
	rowsR, err := Compare(rev, bowl, opts, seeds)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]ComparisonRow{}
	for _, row := range rowsR {
		byName[row.Strategy] = row
	}
	for _, row := range rowsF {
		other, ok := byName[row.Strategy]
		if !ok {
			t.Fatalf("strategy %s missing from reversed run", row.Strategy)
		}
		if row.MeanBest != other.MeanBest || row.StdBest != other.StdBest ||
			row.MeanCost != other.MeanCost || row.Wins != other.Wins {
			t.Fatalf("%s row depends on listing order:\n%+v\n%+v", row.Strategy, row, other)
		}
	}
}

// FuzzArchDSL fuzzes the architecture-DSL decoder: any input either errors
// or yields a validated architecture whose canonical string round-trips and
// whose ArchSpace config encodes/decodes back to the same architecture.
func FuzzArchDSL(f *testing.F) {
	f.Add("64:relu")
	f.Add("128:relu:0.1/64:tanh")
	f.Add("8:gelu:0.3/16:tanh:0.1/32:relu")
	f.Add("64")
	f.Add("64:relu:0.30000000001")
	f.Add("9999999999999999999999:relu")
	f.Add(":::/:::")
	f.Add("64:relu/")
	f.Fuzz(func(t *testing.T, s string) {
		a, err := ParseArch(s)
		if err != nil {
			return
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("ParseArch(%q) returned invalid arch: %v", s, err)
		}
		canon := a.String()
		b, err := ParseArch(canon)
		if err != nil {
			t.Fatalf("canonical form %q does not reparse: %v", canon, err)
		}
		if b.String() != canon {
			t.Fatalf("canonical form unstable: %q -> %q", canon, b.String())
		}
		cfg, err := ConfigFromArch(a, 0.01, 1e-4)
		if err != nil {
			t.Fatalf("valid arch %q rejected by ConfigFromArch: %v", canon, err)
		}
		a2, err := ArchFromConfig(cfg)
		if err != nil || a2.String() != canon {
			t.Fatalf("config round trip %q -> %q (%v)", canon, a2.String(), err)
		}
	})
}
