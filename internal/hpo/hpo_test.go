package hpo

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/rng"
)

func testSpace() *Space {
	return MustSpace(
		Param{Name: "lr", Kind: LogContinuous, Lo: 1e-4, Hi: 1},
		Param{Name: "units", Kind: Integer, Lo: 4, Hi: 64},
		Param{Name: "drop", Kind: Continuous, Lo: 0, Hi: 0.8},
		Param{Name: "act", Kind: Categorical, Choices: []string{"relu", "tanh", "gelu"}},
	)
}

// bowl is a smooth synthetic objective with optimum at lr=0.01, units=32,
// drop=0.2, act=tanh. Budget reduces evaluation noise (like longer training).
func bowl(cfg Config, budget float64, seed uint64) float64 {
	r := rng.New(seed)
	loss := 0.0
	d := math.Log10(cfg.Float("lr")) - math.Log10(0.01)
	loss += d * d
	u := (float64(cfg.Int("units")) - 32) / 32
	loss += u * u
	dr := cfg.Float("drop") - 0.2
	loss += dr * dr
	if int(math.Round(cfg["act"])) != 1 {
		loss += 0.5
	}
	noise := 0.3 * (1 - budget)
	return loss + r.NormMeanStd(0, 0.02+noise)
}

func TestSpaceValidation(t *testing.T) {
	if _, err := NewSpace(Param{Name: "", Kind: Continuous}); err == nil {
		t.Fatal("unnamed param accepted")
	}
	if _, err := NewSpace(Param{Name: "x", Kind: Continuous, Lo: 1, Hi: 0}); err == nil {
		t.Fatal("empty range accepted")
	}
	if _, err := NewSpace(Param{Name: "x", Kind: LogContinuous, Lo: 0, Hi: 1}); err == nil {
		t.Fatal("log range with zero accepted")
	}
	if _, err := NewSpace(Param{Name: "x", Kind: Categorical}); err == nil {
		t.Fatal("empty choices accepted")
	}
	if _, err := NewSpace(
		Param{Name: "x", Kind: Continuous, Lo: 0, Hi: 1},
		Param{Name: "x", Kind: Continuous, Lo: 0, Hi: 1}); err == nil {
		t.Fatal("duplicate name accepted")
	}
}

func TestSampleInBounds(t *testing.T) {
	s := testSpace()
	r := rng.New(1)
	for i := 0; i < 500; i++ {
		c := s.Sample(r)
		if lr := c.Float("lr"); lr < 1e-4 || lr > 1 {
			t.Fatalf("lr %v out of bounds", lr)
		}
		if u := c.Int("units"); u < 4 || u > 64 {
			t.Fatalf("units %d out of bounds", u)
		}
		if a := int(math.Round(c["act"])); a < 0 || a > 2 {
			t.Fatalf("act %d out of bounds", a)
		}
	}
}

func TestLogSamplingIsLogUniform(t *testing.T) {
	s := MustSpace(Param{Name: "lr", Kind: LogContinuous, Lo: 1e-4, Hi: 1})
	r := rng.New(2)
	below := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if s.Sample(r).Float("lr") < 1e-2 {
			below++
		}
	}
	// Half the log range lies below 1e-2.
	if below < 4500 || below > 5500 {
		t.Fatalf("log sampling skewed: %d/%d below 1e-2", below, n)
	}
}

// Property: Encode/Decode round trips stay in the space and are idempotent.
func TestQuickEncodeDecodeRoundTrip(t *testing.T) {
	s := testSpace()
	f := func(seed uint64) bool {
		r := rng.New(seed)
		c := s.Sample(r)
		v := s.Encode(c)
		for _, x := range v {
			if x < -1e-9 || x > 1+1e-9 {
				return false
			}
		}
		c2 := s.Decode(v)
		v2 := s.Encode(c2)
		for i := range v2 {
			if math.Abs(v2[i]-v[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestClamp(t *testing.T) {
	s := testSpace()
	c := Config{"lr": 100, "units": -5, "drop": 0.5, "act": 7}
	s.Clamp(c)
	if c.Float("lr") != 1 || c.Int("units") != 4 || int(c["act"]) != 2 {
		t.Fatalf("clamp wrong: %v", c)
	}
}

func TestGridCoverage(t *testing.T) {
	s := MustSpace(
		Param{Name: "a", Kind: Continuous, Lo: 0, Hi: 1},
		Param{Name: "b", Kind: Categorical, Choices: []string{"x", "y"}},
	)
	grid := s.Grid(3)
	if len(grid) != 6 { // 3 continuous x 2 categorical
		t.Fatalf("grid size %d want 6", len(grid))
	}
	// Endpoints must be present.
	seen0, seen1 := false, false
	for _, c := range grid {
		if c["a"] == 0 {
			seen0 = true
		}
		if c["a"] == 1 {
			seen1 = true
		}
	}
	if !seen0 || !seen1 {
		t.Fatal("grid missing endpoints")
	}
}

func TestGridSize(t *testing.T) {
	s := testSpace() // 4 params
	if k := s.GridSize(81); k != 3 {
		t.Fatalf("GridSize(81)=%d want 3", k)
	}
	if k := s.GridSize(1); k != 1 {
		t.Fatalf("GridSize(1)=%d want 1", k)
	}
}

func TestAllStrategiesFindReasonableOptimum(t *testing.T) {
	// Every strategy should reach a decent region of the bowl within budget.
	for _, strat := range AllStrategies() {
		strat := strat
		t.Run(strat.Name(), func(t *testing.T) {
			t.Parallel()
			res, err := strat.Search(bowl, Options{
				Space: testSpace(), TotalBudget: 60, Parallelism: 4,
				RNG: rng.New(99),
			})
			if err != nil {
				t.Fatal(err)
			}
			// Grid gets only 2 points per axis at this budget and so
			// misses the lr optimum by construction — that weakness is the
			// point of E8; just require it to complete with a finite loss.
			limit := 1.0
			if strat.Name() == "grid" {
				limit = 8.0
			}
			if !(res.Best.Loss <= limit) {
				t.Fatalf("%s best loss %.3f too poor", strat.Name(), res.Best.Loss)
			}
			if res.CostUsed > 60+1e-6 {
				t.Fatalf("%s overspent: %.2f", strat.Name(), res.CostUsed)
			}
			if len(res.Progress) == 0 {
				t.Fatal("no progress recorded")
			}
			// Progress is monotone non-increasing in Best and increasing in Cost.
			for i := 1; i < len(res.Progress); i++ {
				if res.Progress[i].Best > res.Progress[i-1].Best+1e-12 {
					t.Fatal("best-so-far increased")
				}
				if res.Progress[i].Cost < res.Progress[i-1].Cost {
					t.Fatal("cost decreased")
				}
			}
		})
	}
}

func TestIntelligentBeatsNaiveOnAverage(t *testing.T) {
	// Averaged over seeds, intelligent strategies must beat random at equal
	// budget (the paper's E8 claim). Use a modest budget where search
	// efficiency matters.
	seeds := []uint64{1, 2, 3, 4, 5}
	avg := func(s Strategy) float64 {
		total := 0.0
		for _, seed := range seeds {
			res, err := s.Search(bowl, Options{
				Space: testSpace(), TotalBudget: 40, Parallelism: 4, RNG: rng.New(seed),
			})
			if err != nil {
				t.Fatal(err)
			}
			total += res.Best.Loss
		}
		return total / float64(len(seeds))
	}
	random := avg(RandomSearch{})
	for _, s := range []Strategy{TPE{}, Generative{}, Genetic{}} {
		if got := avg(s); got > random+0.05 {
			t.Fatalf("%s (%.3f) did not beat random (%.3f)", s.Name(), got, random)
		}
	}
}

func TestHyperbandUsesPartialBudgets(t *testing.T) {
	res, err := Hyperband{}.Search(bowl, Options{
		Space: testSpace(), TotalBudget: 30, Parallelism: 4, RNG: rng.New(7),
	})
	if err != nil {
		t.Fatal(err)
	}
	partial, full := 0, 0
	for _, tr := range res.Trials {
		if tr.Budget < 1 {
			partial++
		} else {
			full++
		}
	}
	if partial == 0 {
		t.Fatal("hyperband never used partial budgets")
	}
	if full == 0 {
		t.Fatal("hyperband never promoted to full budget")
	}
	// Per-full-budget-equivalent, hyperband completes more trials than random.
	if len(res.Trials) <= int(res.CostUsed) {
		t.Fatalf("hyperband ran %d trials on %.1f budget (no adaptivity)",
			len(res.Trials), res.CostUsed)
	}
}

func TestBudgetNeverExceeded(t *testing.T) {
	for _, strat := range AllStrategies() {
		res, err := strat.Search(bowl, Options{
			Space: testSpace(), TotalBudget: 13.5, Parallelism: 8, RNG: rng.New(3),
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.CostUsed > 13.5+1e-6 {
			t.Fatalf("%s exceeded budget: %v", strat.Name(), res.CostUsed)
		}
		sum := 0.0
		for _, tr := range res.Trials {
			sum += tr.Budget
		}
		if math.Abs(sum-res.CostUsed) > 1e-9 {
			t.Fatalf("%s cost accounting mismatch: %v vs %v", strat.Name(), sum, res.CostUsed)
		}
	}
}

func TestParallelismRespected(t *testing.T) {
	var inFlight, maxInFlight int64
	var mu sync.Mutex
	obj := func(cfg Config, budget float64, seed uint64) float64 {
		cur := atomic.AddInt64(&inFlight, 1)
		mu.Lock()
		if cur > maxInFlight {
			maxInFlight = cur
		}
		mu.Unlock()
		time.Sleep(2 * time.Millisecond) // make overlap observable
		defer atomic.AddInt64(&inFlight, -1)
		return bowl(cfg, budget, seed)
	}
	_, err := RandomSearch{}.Search(obj, Options{
		Space: testSpace(), TotalBudget: 24, Parallelism: 3, RNG: rng.New(4),
	})
	if err != nil {
		t.Fatal(err)
	}
	if maxInFlight > 3 {
		t.Fatalf("parallelism 3 but %d evaluations in flight", maxInFlight)
	}
	if maxInFlight < 2 {
		t.Fatalf("worker pool underused: max in flight %d", maxInFlight)
	}
}

func TestSearchDeterminism(t *testing.T) {
	for _, strat := range []Strategy{RandomSearch{}, TPE{}, Generative{}} {
		run := func() float64 {
			res, err := strat.Search(bowl, Options{
				Space: testSpace(), TotalBudget: 20, Parallelism: 1, RNG: rng.New(11),
			})
			if err != nil {
				t.Fatal(err)
			}
			return res.Best.Loss
		}
		if run() != run() {
			t.Fatalf("%s not deterministic at parallelism 1", strat.Name())
		}
	}
}

func TestOptionsValidation(t *testing.T) {
	if _, err := (RandomSearch{}).Search(bowl, Options{}); err == nil {
		t.Fatal("empty options accepted")
	}
	if _, err := (RandomSearch{}).Search(bowl, Options{Space: testSpace(), TotalBudget: -1, RNG: rng.New(1)}); err == nil {
		t.Fatal("negative budget accepted")
	}
	if _, err := (RandomSearch{}).Search(bowl, Options{Space: testSpace(), TotalBudget: 5}); err == nil {
		t.Fatal("missing rng accepted")
	}
}

func TestBestAtCost(t *testing.T) {
	res := &Result{Progress: []ProgressPoint{{Cost: 1, Best: 5}, {Cost: 2, Best: 3}, {Cost: 4, Best: 1}}}
	if got := res.BestAtCost(0.5); !math.IsInf(got, 1) {
		t.Fatalf("BestAtCost(0.5)=%v", got)
	}
	if got := res.BestAtCost(2.5); got != 3 {
		t.Fatalf("BestAtCost(2.5)=%v", got)
	}
	if got := res.BestAtCost(10); got != 1 {
		t.Fatalf("BestAtCost(10)=%v", got)
	}
}

func TestFormatConfig(t *testing.T) {
	s := testSpace()
	c := Config{"lr": 0.01, "units": 32, "drop": 0.2, "act": 1}
	got := s.FormatConfig(c)
	if got != "lr=0.01 units=32 drop=0.2 act=tanh" {
		t.Fatalf("FormatConfig: %q", got)
	}
}

func TestSortTrialsNaNLast(t *testing.T) {
	ts := []Trial{{Loss: math.NaN()}, {Loss: 2}, {Loss: 1}}
	sortTrialsByLoss(ts)
	if ts[0].Loss != 1 || ts[1].Loss != 2 || !math.IsNaN(ts[2].Loss) {
		t.Fatalf("NaN handling wrong: %v", ts)
	}
}

func TestCompare(t *testing.T) {
	rows, err := Compare(
		[]Strategy{RandomSearch{}, TPE{}},
		bowl,
		Options{Space: testSpace(), TotalBudget: 20, Parallelism: 4},
		[]uint64{1, 2, 3},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	totalWins := 0
	for _, r := range rows {
		if r.MeanBest <= 0 || math.IsNaN(r.StdBest) {
			t.Fatalf("row stats malformed: %+v", r)
		}
		if r.MeanCost > 20+1e-9 {
			t.Fatalf("%s overspent: %v", r.Strategy, r.MeanCost)
		}
		totalWins += r.Wins
	}
	if totalWins != 3 {
		t.Fatalf("wins sum %d, want one per seed", totalWins)
	}
}

func TestCompareValidation(t *testing.T) {
	if _, err := Compare(nil, bowl, Options{}, []uint64{1}); err == nil {
		t.Fatal("empty strategies accepted")
	}
	if _, err := Compare([]Strategy{RandomSearch{}}, bowl, Options{}, nil); err == nil {
		t.Fatal("empty seeds accepted")
	}
}
