package hpo

import (
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/rng"
)

// Objective evaluates one configuration at a training budget in (0,1]
// (fraction of full training) and returns a loss to minimise. seed makes
// the evaluation reproducible. Implementations must be safe for concurrent
// calls — the executor runs them on a worker pool.
type Objective func(cfg Config, budget float64, seed uint64) float64

// Trial records one completed evaluation.
type Trial struct {
	Config Config
	Loss   float64
	Budget float64 // fraction of full training spent
	Seed   uint64
}

// ProgressPoint samples best-so-far loss against cumulative cost.
type ProgressPoint struct {
	Cost float64 // cumulative full-training equivalents
	Best float64
}

// Result summarises a search run.
type Result struct {
	Strategy string
	Best     Trial
	Trials   []Trial
	// Progress is the best-so-far curve versus budget consumed, recorded
	// after every completed trial.
	Progress []ProgressPoint
	// CostUsed is the total budget consumed in full-training equivalents.
	CostUsed float64
	// SimTime is the simulated campaign wall-clock in seconds (0 unless
	// Options.CostModel is set). Batches of concurrent evaluations cost
	// their slowest member; waves beyond the parallelism width serialise.
	SimTime float64
}

// BestAtCost returns the best loss achieved within the given cumulative
// cost (infinity if nothing completed yet).
func (r *Result) BestAtCost(cost float64) float64 {
	best := math.Inf(1)
	for _, p := range r.Progress {
		if p.Cost > cost {
			break
		}
		best = p.Best
	}
	return best
}

// Options configures a search run.
type Options struct {
	Space *Space
	// TotalBudget is the search budget in full-training equivalents.
	TotalBudget float64
	// Parallelism is the evaluation worker-pool width (>=1).
	Parallelism int
	// RNG drives all strategy randomness.
	RNG *rng.Stream
	// CostModel, if non-nil, prices one evaluation in simulated seconds
	// (e.g. from a machine model: bigger configurations and budgets train
	// longer). When set, Result.SimTime accumulates the campaign's
	// simulated wall-clock assuming Parallelism concurrent evaluators that
	// synchronise per proposal batch.
	CostModel func(cfg Config, budget float64) float64
	// Obs, if enabled, records one span per trial (tid = worker-pool slot
	// offset by 1000 to avoid colliding with trainer rank tids), a trial
	// counter, and the best-so-far loss after each batch.
	Obs *obs.Session
}

func (o *Options) validate() error {
	if o.Space == nil || len(o.Space.Params) == 0 {
		return fmt.Errorf("hpo: empty search space")
	}
	if o.TotalBudget <= 0 {
		return fmt.Errorf("hpo: non-positive budget")
	}
	if o.RNG == nil {
		return fmt.Errorf("hpo: missing RNG")
	}
	if o.Parallelism < 1 {
		o.Parallelism = 1
	}
	return nil
}

// Strategy is a search algorithm.
type Strategy interface {
	Name() string
	// Search runs until the budget is exhausted.
	Search(obj Objective, opts Options) (*Result, error)
}

// run tracks shared bookkeeping for strategy implementations.
type run struct {
	obj    Objective
	opts   Options
	result *Result
	mu     sync.Mutex
	seedCt uint64
}

func newRun(name string, obj Objective, opts Options) (*run, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	return &run{obj: obj, opts: opts,
		result: &Result{Strategy: name, Best: Trial{Loss: math.Inf(1)}}}, nil
}

// remaining returns the unconsumed budget.
func (r *run) remaining() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.opts.TotalBudget - r.result.CostUsed
}

// evalBatch evaluates configs at the given per-trial budget on the worker
// pool, stopping admission when the budget runs dry. It returns the
// completed trials in input order (omitting unadmitted ones).
func (r *run) evalBatch(configs []Config, budget float64) []Trial {
	type slot struct {
		idx int
		cfg Config
	}
	var admitted []slot
	r.mu.Lock()
	for i, cfg := range configs {
		if r.result.CostUsed+float64(len(admitted)+1)*budget > r.opts.TotalBudget+1e-9 {
			break
		}
		admitted = append(admitted, slot{i, cfg})
	}
	seeds := make([]uint64, len(admitted))
	for i := range seeds {
		r.seedCt++
		seeds[i] = r.seedCt
	}
	r.mu.Unlock()
	if len(admitted) == 0 {
		return nil
	}

	// Simulated time: pack admitted evaluations onto Parallelism slots in
	// waves; each wave costs its slowest evaluation.
	if r.opts.CostModel != nil {
		waveMax := 0.0
		inWave := 0
		var simAdd float64
		for _, s := range admitted {
			d := r.opts.CostModel(s.cfg, budget)
			if d > waveMax {
				waveMax = d
			}
			inWave++
			if inWave == r.opts.Parallelism {
				simAdd += waveMax
				waveMax, inWave = 0, 0
			}
		}
		simAdd += waveMax
		r.mu.Lock()
		r.result.SimTime += simAdd
		r.mu.Unlock()
	}

	trials := make([]Trial, len(admitted))
	sem := make(chan struct{}, r.opts.Parallelism)
	o := r.opts.Obs
	var wg sync.WaitGroup
	for i, s := range admitted {
		wg.Add(1)
		go func(i int, s slot) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			var sp *obs.Span
			var t0 time.Time
			if o.Enabled() {
				// Trials multiplex over pool slots, but span tids must be
				// goroutine-unique, so key by admission index.
				sp = o.Span(1000+i, "trial")
				sp.SetArg("budget", budget)
				t0 = time.Now()
			}
			loss := r.obj(s.cfg, budget, seeds[i])
			if o.Enabled() {
				sp.SetArg("loss", loss)
				sp.End()
				o.Count("hpo.trials", 1)
				o.Observe("hpo.trial", time.Since(t0))
			}
			trials[i] = Trial{Config: s.cfg, Loss: loss, Budget: budget, Seed: seeds[i]}
		}(i, s)
	}
	wg.Wait()

	r.mu.Lock()
	for _, t := range trials {
		r.result.CostUsed += t.Budget
		r.result.Trials = append(r.result.Trials, t)
		if !math.IsNaN(t.Loss) && t.Loss < r.result.Best.Loss && t.Budget >= budgetForBest {
			r.result.Best = t
		}
		best := r.result.Best.Loss
		r.result.Progress = append(r.result.Progress,
			ProgressPoint{Cost: r.result.CostUsed, Best: best})
	}
	best := r.result.Best.Loss
	r.mu.Unlock()
	if o.Enabled() && !math.IsInf(best, 1) {
		o.OnEval("hpo.best_loss", best)
	}
	return trials
}

// budgetForBest is the minimum trial budget eligible to be reported as the
// incumbent best (partial Hyperband evaluations at tiny budgets are noisy
// estimates, not results).
const budgetForBest = 0.32
