// Package hpo implements hyperparameter optimisation at the scale the paper
// describes ("search a space of tens of thousands of model configurations"):
// a typed search space, naive baselines (grid, random), and the intelligent
// strategies the paper says outperform them — successive halving/Hyperband,
// a genetic algorithm, TPE-style density search, an RBF surrogate, and a
// generative-model-guided sampler ("new approaches that use generative
// neural networks to manage the search space").
//
// All strategies consume a shared budget measured in full-training
// equivalents, so comparisons at equal cost are meaningful, and evaluations
// run on a parallel worker pool (the paper's "search parallelism").
package hpo

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/rng"
)

// ParamKind classifies a hyperparameter's domain.
type ParamKind int

// Supported parameter kinds.
const (
	// Continuous is a uniform real interval [Lo, Hi].
	Continuous ParamKind = iota
	// LogContinuous is sampled log-uniformly on [Lo, Hi] (Lo > 0).
	LogContinuous
	// Integer is a uniform integer range [Lo, Hi] inclusive.
	Integer
	// Categorical selects one of Choices.
	Categorical
)

// Param defines one hyperparameter.
type Param struct {
	Name    string
	Kind    ParamKind
	Lo, Hi  float64
	Choices []string
}

// Space is an ordered set of hyperparameters.
type Space struct {
	Params []Param
}

// Config is a concrete assignment: numeric parameters map to their value,
// categorical parameters to their choice index.
type Config map[string]float64

// Float returns the value of a numeric parameter.
func (c Config) Float(name string) float64 { return c[name] }

// Int returns the value of an integer parameter.
func (c Config) Int(name string) int { return int(math.Round(c[name])) }

// NewSpace builds a space and validates its parameters.
func NewSpace(params ...Param) (*Space, error) {
	seen := map[string]bool{}
	for _, p := range params {
		if p.Name == "" {
			return nil, fmt.Errorf("hpo: unnamed parameter")
		}
		if seen[p.Name] {
			return nil, fmt.Errorf("hpo: duplicate parameter %q", p.Name)
		}
		seen[p.Name] = true
		switch p.Kind {
		case Continuous, Integer:
			if p.Hi < p.Lo {
				return nil, fmt.Errorf("hpo: %s has empty range", p.Name)
			}
		case LogContinuous:
			if p.Lo <= 0 || p.Hi < p.Lo {
				return nil, fmt.Errorf("hpo: %s log range must be positive", p.Name)
			}
		case Categorical:
			if len(p.Choices) == 0 {
				return nil, fmt.Errorf("hpo: %s has no choices", p.Name)
			}
		default:
			return nil, fmt.Errorf("hpo: %s has unknown kind", p.Name)
		}
	}
	return &Space{Params: params}, nil
}

// MustSpace is NewSpace that panics on error (for static spaces).
func MustSpace(params ...Param) *Space {
	s, err := NewSpace(params...)
	if err != nil {
		panic(err)
	}
	return s
}

// Choice returns the selected choice string of a categorical parameter.
func (s *Space) Choice(c Config, name string) string {
	for _, p := range s.Params {
		if p.Name == name {
			idx := int(math.Round(c[name]))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(p.Choices) {
				idx = len(p.Choices) - 1
			}
			return p.Choices[idx]
		}
	}
	panic(fmt.Sprintf("hpo: unknown parameter %q", name))
}

// Sample draws a uniform random configuration.
func (s *Space) Sample(r *rng.Stream) Config {
	c := make(Config, len(s.Params))
	for _, p := range s.Params {
		switch p.Kind {
		case Continuous:
			c[p.Name] = r.Uniform(p.Lo, p.Hi)
		case LogContinuous:
			c[p.Name] = math.Exp(r.Uniform(math.Log(p.Lo), math.Log(p.Hi)))
		case Integer:
			c[p.Name] = float64(int(p.Lo) + r.Intn(int(p.Hi)-int(p.Lo)+1))
		case Categorical:
			c[p.Name] = float64(r.Intn(len(p.Choices)))
		}
	}
	return c
}

// Clamp projects a configuration back into the space (in place) and rounds
// integer/categorical parameters, returning the config for chaining.
func (s *Space) Clamp(c Config) Config {
	for _, p := range s.Params {
		v := c[p.Name]
		switch p.Kind {
		case Continuous, LogContinuous:
			v = math.Min(math.Max(v, p.Lo), p.Hi)
		case Integer:
			v = math.Round(math.Min(math.Max(v, p.Lo), p.Hi))
		case Categorical:
			v = math.Round(math.Min(math.Max(v, 0), float64(len(p.Choices)-1)))
		}
		c[p.Name] = v
	}
	return c
}

// Encode maps a configuration to a normalised feature vector in [0,1]^d for
// surrogate and density models: continuous/integer parameters normalise
// linearly, log parameters normalise in log space, categoricals by index.
func (s *Space) Encode(c Config) []float64 {
	v := make([]float64, len(s.Params))
	for i, p := range s.Params {
		x := c[p.Name]
		switch p.Kind {
		case Continuous, Integer:
			if p.Hi > p.Lo {
				v[i] = (x - p.Lo) / (p.Hi - p.Lo)
			}
		case LogContinuous:
			v[i] = (math.Log(x) - math.Log(p.Lo)) / (math.Log(p.Hi) - math.Log(p.Lo))
		case Categorical:
			if len(p.Choices) > 1 {
				v[i] = x / float64(len(p.Choices)-1)
			}
		}
	}
	return v
}

// Decode maps a normalised vector back to a clamped configuration.
func (s *Space) Decode(v []float64) Config {
	c := make(Config, len(s.Params))
	for i, p := range s.Params {
		x := math.Min(math.Max(v[i], 0), 1)
		switch p.Kind {
		case Continuous:
			c[p.Name] = p.Lo + x*(p.Hi-p.Lo)
		case Integer:
			c[p.Name] = math.Round(p.Lo + x*(p.Hi-p.Lo))
		case LogContinuous:
			c[p.Name] = math.Exp(math.Log(p.Lo) + x*(math.Log(p.Hi)-math.Log(p.Lo)))
		case Categorical:
			c[p.Name] = math.Round(x * float64(len(p.Choices)-1))
		}
	}
	return c
}

// GridSize returns the number of grid points per axis that yields at most
// maxConfigs total configurations (at least 1 per axis).
func (s *Space) GridSize(maxConfigs int) int {
	if len(s.Params) == 0 {
		return 1
	}
	k := int(math.Floor(math.Pow(float64(maxConfigs), 1/float64(len(s.Params)))))
	if k < 1 {
		k = 1
	}
	return k
}

// Grid enumerates an axis-aligned grid with k points per axis (categoricals
// enumerate all choices when they have <= k of them, else k evenly spaced).
func (s *Space) Grid(k int) []Config {
	if k < 1 {
		k = 1
	}
	axes := make([][]float64, len(s.Params))
	for i, p := range s.Params {
		switch p.Kind {
		case Categorical:
			n := len(p.Choices)
			if n > k {
				n = k
			}
			for j := 0; j < n; j++ {
				axes[i] = append(axes[i], float64(j*(len(p.Choices)-1))/math.Max(1, float64(n-1)))
			}
		case Integer:
			n := int(p.Hi-p.Lo) + 1
			if n > k {
				n = k
			}
			for j := 0; j < n; j++ {
				frac := 0.5
				if n > 1 {
					frac = float64(j) / float64(n-1)
				}
				axes[i] = append(axes[i], math.Round(p.Lo+frac*(p.Hi-p.Lo)))
			}
		case Continuous:
			for j := 0; j < k; j++ {
				frac := 0.5
				if k > 1 {
					frac = float64(j) / float64(k-1)
				}
				axes[i] = append(axes[i], p.Lo+frac*(p.Hi-p.Lo))
			}
		case LogContinuous:
			for j := 0; j < k; j++ {
				frac := 0.5
				if k > 1 {
					frac = float64(j) / float64(k-1)
				}
				axes[i] = append(axes[i],
					math.Exp(math.Log(p.Lo)+frac*(math.Log(p.Hi)-math.Log(p.Lo))))
			}
		}
	}
	var out []Config
	idx := make([]int, len(axes))
	for {
		c := make(Config, len(s.Params))
		for i, p := range s.Params {
			c[p.Name] = axes[i][idx[i]]
		}
		out = append(out, c)
		// Odometer increment.
		i := 0
		for ; i < len(axes); i++ {
			idx[i]++
			if idx[i] < len(axes[i]) {
				break
			}
			idx[i] = 0
		}
		if i == len(axes) {
			break
		}
	}
	return out
}

// FormatConfig renders a configuration compactly in parameter order.
func (s *Space) FormatConfig(c Config) string {
	var sb strings.Builder
	for i, p := range s.Params {
		if i > 0 {
			sb.WriteString(" ")
		}
		switch p.Kind {
		case Categorical:
			fmt.Fprintf(&sb, "%s=%s", p.Name, s.Choice(c, p.Name))
		case Integer:
			fmt.Fprintf(&sb, "%s=%d", p.Name, c.Int(p.Name))
		default:
			fmt.Fprintf(&sb, "%s=%.4g", p.Name, c[p.Name])
		}
	}
	return sb.String()
}

// sortTrialsByLoss sorts ascending by loss (NaN last).
func sortTrialsByLoss(ts []Trial) {
	sort.SliceStable(ts, func(i, j int) bool {
		a, b := ts[i].Loss, ts[j].Loss
		if math.IsNaN(a) {
			return false
		}
		if math.IsNaN(b) {
			return true
		}
		return a < b
	})
}
