package hpo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestParseArchRoundTrip(t *testing.T) {
	for _, s := range []string{
		"64:relu", "128:relu:0.1/64:tanh", "8:gelu:0.3/16:tanh:0.1/32:relu",
	} {
		a, err := ParseArch(s)
		if err != nil {
			t.Fatalf("parse %q: %v", s, err)
		}
		if got := a.String(); got != s {
			t.Fatalf("round trip %q -> %q", s, got)
		}
		b, err := ParseArch(a.String())
		if err != nil {
			t.Fatal(err)
		}
		if b.String() != a.String() {
			t.Fatalf("reparse diverged: %q vs %q", b, a)
		}
	}
}

func TestParseArchRejects(t *testing.T) {
	for _, s := range []string{
		"", "  ", "x:relu", "64:relu:0.1:extra", "64:swish", "63:relu",
		"64:relu:0.2", "64:relu/32:tanh/16:gelu/8:relu", "64:relu:-1",
		"64:relu:nope",
	} {
		if a, err := ParseArch(s); err == nil {
			t.Fatalf("accepted %q as %v", s, a)
		}
	}
	// "64" without an activation is valid DSL (relu default) — but prints
	// canonically with the activation.
	a, err := ParseArch("64")
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != "64:relu" {
		t.Fatalf("default activation: %q", a)
	}
}

// Property: every point of ArchSpace decodes to a valid architecture whose
// DSL string round-trips, and ConfigFromArch inverts ArchFromConfig.
// quick.Check is explicitly seeded so -count=100 replays the same cases.
func TestQuickArchSpaceDecodes(t *testing.T) {
	space := ArchSpace()
	f := func(seed uint64) bool {
		cfg := space.Sample(rng.New(seed))
		a, err := ArchFromConfig(cfg)
		if err != nil {
			return false
		}
		if a.Validate() != nil {
			return false
		}
		b, err := ParseArch(a.String())
		if err != nil || b.String() != a.String() {
			return false
		}
		c2, err := ConfigFromArch(a, cfg.Float("lr"), cfg.Float("decay"))
		if err != nil {
			return false
		}
		a2, err := ArchFromConfig(c2)
		return err == nil && a2.String() == a.String()
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(23))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func learnOpts(seed uint64, budget float64) Options {
	return Options{
		Space: testSpace(), TotalBudget: budget,
		Parallelism: 4, RNG: rng.New(seed),
	}
}

// The RL controller's policy should concentrate on the bowl optimum: with a
// moderate budget it beats random search at equal cost on average.
func TestRLControllerBeatsRandomOnBowl(t *testing.T) {
	rlWins, seeds := 0.0, []uint64{1, 2, 3, 4, 5}
	for _, seed := range seeds {
		rl, err := RLController{}.Search(bowl, learnOpts(seed, 60))
		if err != nil {
			t.Fatal(err)
		}
		rd, err := RandomSearch{}.Search(bowl, learnOpts(seed+100, 60))
		if err != nil {
			t.Fatal(err)
		}
		if rl.Best.Loss <= rd.Best.Loss {
			rlWins++
		}
		if rl.CostUsed > 60+1e-9 {
			t.Fatalf("rl overspent: %v", rl.CostUsed)
		}
	}
	if rlWins < 3 {
		t.Fatalf("rl won only %v/%d seeds against random", rlWins, len(seeds))
	}
}

// PBT without a trainable objective still searches: members converge on
// the bowl and never overspend the budget.
func TestPBTStatelessOnBowl(t *testing.T) {
	res, err := PBT{PopSize: 8, Step: 0.25}.Search(bowl, learnOpts(3, 60))
	if err != nil {
		t.Fatal(err)
	}
	if res.CostUsed > 60+1e-9 {
		t.Fatalf("pbt overspent: %v", res.CostUsed)
	}
	if res.Best.Loss > 1.0 {
		t.Fatalf("pbt best %.3f did not approach the bowl optimum", res.Best.Loss)
	}
	if res.Best.Budget < budgetForBest {
		t.Fatalf("incumbent best at budget %v below eligibility floor", res.Best.Budget)
	}
	// Trials record cumulative training budget, so later trials of a
	// surviving member carry larger budgets than round one.
	maxB := 0.0
	for _, tr := range res.Trials {
		if tr.Budget > maxB {
			maxB = tr.Budget
		}
	}
	if maxB <= 0.25 {
		t.Fatalf("no member accumulated training budget: max %v", maxB)
	}
}

// A stateful PBT run routes evaluation through the trainable objective and
// inherits checkpoint state on exploit. The fake trainable objective tags
// each fresh lineage in its state blob; after an exploit step two
// population slots carry the same lineage tag in the same round — that
// duplicate is checkpoint inheritance made visible.
func TestPBTCheckpointInheritance(t *testing.T) {
	const pop = 6
	nextTag := byte(0)
	var tagLog []byte
	trainable := func(cfg Config, state []byte, step float64, seed uint64) (float64, []byte, error) {
		var tag byte
		if len(state) == 0 {
			nextTag++
			tag = nextTag
		} else {
			tag = state[0]
		}
		tagLog = append(tagLog, tag)
		loss := bowl(cfg, 1, seed)/2 + 2/(1+float64(len(state)))
		return loss, append([]byte{tag}, state...), nil
	}
	res, err := PBT{PopSize: pop, Step: 0.25, Trainable: trainable}.Search(bowl, learnOpts(7, 30))
	if err != nil {
		t.Fatal(err)
	}
	if res.CostUsed > 30+1e-9 {
		t.Fatalf("overspent: %v", res.CostUsed)
	}
	inherited := false
	for lo := pop; lo+pop <= len(tagLog); lo += pop {
		seen := map[byte]bool{}
		for _, tag := range tagLog[lo : lo+pop] {
			if seen[tag] {
				inherited = true
			}
			seen[tag] = true
		}
	}
	if !inherited {
		t.Fatalf("no round shared a lineage tag — exploit never inherited a checkpoint: %v", tagLog)
	}
}

// A trainable objective that rejects inherited state must not kill the
// search: PBT retrains from scratch.
func TestPBTBadCheckpointFallsBack(t *testing.T) {
	calls, fresh := 0, 0
	trainable := func(cfg Config, state []byte, step float64, seed uint64) (float64, []byte, error) {
		calls++
		if state != nil {
			return 0, nil, errRejected
		}
		fresh++
		return bowl(cfg, 1, seed), []byte{1}, nil
	}
	res, err := PBT{PopSize: 4, Step: 0.5, Trainable: trainable}.Search(bowl, learnOpts(9, 8))
	if err != nil {
		t.Fatal(err)
	}
	if fresh == 0 || len(res.Trials) == 0 {
		t.Fatal("fallback to fresh training never happened")
	}
	if math.IsInf(res.Best.Loss, 1) {
		t.Fatal("no usable best despite fallback")
	}
}

var errRejected = errInterface("checkpoint rejected")

type errInterface string

func (e errInterface) Error() string { return string(e) }
