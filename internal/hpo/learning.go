package hpo

import (
	"math"
)

// The learning searchers: a policy-gradient RL controller (Balaprakash-
// style — a seeded categorical policy over discretized parameter decisions,
// updated from evaluation rewards with REINFORCE) and population-based
// training (exploit/explore over a training population with checkpoint
// inheritance). Both are deterministic in Options.RNG.

// LearningStrategies returns the learning searchers with default settings.
// They are deliberately not part of AllStrategies(): the committed E8
// artifact pins the classic strategy set, and the search experiment (E18)
// asks for the learners explicitly.
func LearningStrategies() []Strategy {
	return []Strategy{RLController{}, PBT{}}
}

// StrategyByName resolves a strategy from the built-in set plus the
// learning searchers.
func StrategyByName(name string) (Strategy, bool) {
	for _, s := range AllStrategies() {
		if s.Name() == name {
			return s, true
		}
	}
	for _, s := range LearningStrategies() {
		if s.Name() == name {
			return s, true
		}
	}
	return nil, false
}

// ---- Policy-gradient RL controller ---------------------------------------

// RLController emits configurations decision by decision from independent
// categorical policies (one per parameter; continuous parameters are
// discretized into bins) and updates the policy logits with REINFORCE
// against a moving-average baseline after every evaluated batch.
type RLController struct {
	// Bins discretizes continuous/log parameters (default 7).
	Bins int
	// Batch is the number of proposals per policy update (default
	// max(4, Parallelism)).
	Batch int
	// LearnRate is the policy-gradient step size (default 0.5).
	LearnRate float64
	// EvalBudget is the per-trial training budget in (0,1] (default 1).
	EvalBudget float64
	// Baseline is the EMA factor for the reward baseline (default 0.7).
	Baseline float64
}

// Name implements Strategy.
func (RLController) Name() string { return "rl" }

// axisValues enumerates the candidate value per (parameter, action index).
func axisValues(p Param, bins int) []float64 {
	switch p.Kind {
	case Categorical:
		out := make([]float64, len(p.Choices))
		for i := range out {
			out[i] = float64(i)
		}
		return out
	case Integer:
		span := int(p.Hi-p.Lo) + 1
		n := span
		if n > bins {
			n = bins
		}
		out := make([]float64, n)
		for i := range out {
			frac := 0.5
			if n > 1 {
				frac = float64(i) / float64(n-1)
			}
			out[i] = math.Round(p.Lo + frac*(p.Hi-p.Lo))
		}
		return out
	case LogContinuous:
		out := make([]float64, bins)
		for i := range out {
			frac := (float64(i) + 0.5) / float64(bins)
			out[i] = math.Exp(math.Log(p.Lo) + frac*(math.Log(p.Hi)-math.Log(p.Lo)))
		}
		return out
	default: // Continuous
		out := make([]float64, bins)
		for i := range out {
			frac := (float64(i) + 0.5) / float64(bins)
			out[i] = p.Lo + frac*(p.Hi-p.Lo)
		}
		return out
	}
}

func softmax(logits []float64) []float64 {
	max := math.Inf(-1)
	for _, l := range logits {
		if l > max {
			max = l
		}
	}
	sum := 0.0
	probs := make([]float64, len(logits))
	for i, l := range logits {
		probs[i] = math.Exp(l - max)
		sum += probs[i]
	}
	for i := range probs {
		probs[i] /= sum
	}
	return probs
}

// Search implements Strategy.
func (c RLController) Search(obj Objective, opts Options) (*Result, error) {
	bins := c.Bins
	if bins < 2 {
		bins = 7
	}
	lr := c.LearnRate
	if lr <= 0 {
		lr = 0.5
	}
	evalB := c.EvalBudget
	if evalB <= 0 || evalB > 1 {
		evalB = 1
	}
	ema := c.Baseline
	if ema <= 0 || ema >= 1 {
		ema = 0.7
	}
	r, err := newRun("rl", obj, opts)
	if err != nil {
		return nil, err
	}
	batch := c.Batch
	if batch <= 0 {
		batch = opts.Parallelism
		if batch < 4 {
			batch = 4
		}
	}

	axes := make([][]float64, len(opts.Space.Params))
	logits := make([][]float64, len(opts.Space.Params))
	for i, p := range opts.Space.Params {
		axes[i] = axisValues(p, bins)
		logits[i] = make([]float64, len(axes[i]))
	}

	baseline := math.NaN()
	for r.remaining() >= evalB-1e-9 {
		configs := make([]Config, batch)
		choices := make([][]int, batch)
		for b := 0; b < batch; b++ {
			cfg := make(Config, len(opts.Space.Params))
			choice := make([]int, len(opts.Space.Params))
			for i, p := range opts.Space.Params {
				probs := softmax(logits[i])
				u := opts.RNG.Uniform(0, 1)
				a := len(probs) - 1
				acc := 0.0
				for j, pr := range probs {
					acc += pr
					if u <= acc {
						a = j
						break
					}
				}
				choice[i] = a
				cfg[p.Name] = axes[i][a]
			}
			configs[b] = opts.Space.Clamp(cfg)
			choices[b] = choice
		}
		trials := r.evalBatchChunked(configs, evalB)
		if len(trials) == 0 {
			break
		}
		// REINFORCE in trial order: reward is negative loss, advantage
		// against the EMA baseline, gradient of log softmax per decision.
		for t, trial := range trials {
			if math.IsNaN(trial.Loss) || math.IsInf(trial.Loss, 0) {
				continue
			}
			reward := -trial.Loss
			if math.IsNaN(baseline) {
				baseline = reward
			}
			adv := reward - baseline
			baseline = ema*baseline + (1-ema)*reward
			for i := range logits {
				probs := softmax(logits[i])
				a := choices[t][i]
				for j := range logits[i] {
					ind := 0.0
					if j == a {
						ind = 1
					}
					logits[i][j] += lr * adv * (ind - probs[j])
				}
			}
		}
		if len(trials) < batch {
			break // budget exhausted mid-batch
		}
	}
	return r.result, nil
}

// ---- Population-based training -------------------------------------------

// TrainableObjective is an objective with resumable training state: it
// trains cfg for `step` more budget starting from `state` (nil = from
// scratch) and returns the loss plus the new checkpoint blob. PBT uses it
// to inherit checkpoints across exploit/explore steps.
type TrainableObjective func(cfg Config, state []byte, step float64, seed uint64) (loss float64, newState []byte, err error)

// PBT is population-based training: a population trains in steps; after
// each round the worst quantile copies the configuration, training progress
// and checkpoint of a random member of the best quantile (exploit) and
// perturbs its continuous parameters (explore). With a Trainable objective
// the discrete parameters — the architecture decisions — are inherited
// unchanged, so the copied checkpoint's weight shapes always match and
// training resumes via the nn.TrainState machinery; a checkpoint the
// trainable objective rejects falls back to fresh training instead of
// failing the search. Stateless PBT carries no checkpoint, so explore is
// free to resample discrete decisions too, which keeps the population's
// architecture diversity from freezing at its initial draw.
type PBT struct {
	// PopSize is the population size (default 8).
	PopSize int
	// Step is each member's per-round training budget (default 0.25).
	Step float64
	// ExploitFrac is the quantile copied/replaced per round (default 0.25).
	ExploitFrac float64
	// Perturb are the explore factors applied to continuous parameters
	// (default {0.8, 1.25}).
	Perturb []float64
	// Trainable, if set, carries training state across rounds. Without it
	// PBT degrades gracefully: members re-evaluate at their cumulative
	// budget (no state reuse), which keeps the strategy usable with plain
	// objectives.
	Trainable TrainableObjective
}

// Name implements Strategy.
func (PBT) Name() string { return "pbt" }

type pbtMember struct {
	cfg     Config
	state   []byte
	trained float64
	loss    float64
}

func copyConfig(c Config) Config {
	out := make(Config, len(c))
	for k, v := range c {
		out[k] = v
	}
	return out
}

// Search implements Strategy.
func (p PBT) Search(obj Objective, opts Options) (*Result, error) {
	pop := p.PopSize
	if pop <= 0 {
		pop = 8
	}
	step := p.Step
	if step <= 0 || step > 1 {
		step = 0.25
	}
	exploit := p.ExploitFrac
	if exploit <= 0 || exploit >= 0.5 {
		exploit = 0.25
	}
	perturb := p.Perturb
	if len(perturb) == 0 {
		perturb = []float64{0.8, 1.25}
	}
	r, err := newRun("pbt", obj, opts)
	if err != nil {
		return nil, err
	}

	members := make([]*pbtMember, pop)
	for i := range members {
		members[i] = &pbtMember{cfg: opts.Space.Sample(opts.RNG), loss: math.Inf(1)}
	}

	for {
		evaluated := 0
		var waveCost float64
		for _, m := range members {
			if !r.admit(step) {
				break
			}
			seed := r.nextSeed()
			var loss float64
			if p.Trainable != nil {
				var st []byte
				loss, st, err = p.Trainable(m.cfg, m.state, step, seed)
				if err != nil && m.state != nil {
					// Rejected checkpoint (e.g. incompatible shapes after an
					// exotic explore): retrain from scratch instead of dying.
					loss, st, err = p.Trainable(m.cfg, nil, step, seed)
				}
				if err != nil {
					loss, st = math.Inf(1), nil
				}
				m.state = st
				m.trained += step
			} else {
				m.trained = math.Min(1, m.trained+step)
				loss = r.obj(m.cfg, m.trained, seed)
			}
			m.loss = loss
			budget := math.Min(1, m.trained)
			r.recordTrial(Trial{Config: copyConfig(m.cfg), Loss: loss, Budget: budget, Seed: seed}, step)
			if r.opts.CostModel != nil {
				if d := r.opts.CostModel(m.cfg, step); d > waveCost {
					waveCost = d
				}
			}
			evaluated++
		}
		if r.opts.CostModel != nil && evaluated > 0 {
			// One synchronous population round: waves of Parallelism members,
			// each wave costing its slowest evaluation.
			waves := (evaluated + r.opts.Parallelism - 1) / r.opts.Parallelism
			r.mu.Lock()
			r.result.SimTime += float64(waves) * waveCost
			r.mu.Unlock()
		}
		if evaluated < len(members) {
			break // budget exhausted
		}

		// Exploit/explore: rank members (NaN last), replace the bottom
		// quantile with perturbed copies of random top-quantile members.
		order := make([]int, len(members))
		for i := range order {
			order[i] = i
		}
		// Insertion sort keeps this dependency-free and stable.
		for i := 1; i < len(order); i++ {
			for j := i; j > 0; j-- {
				a, b := members[order[j]].loss, members[order[j-1]].loss
				if !math.IsNaN(a) && (math.IsNaN(b) || a < b) {
					order[j], order[j-1] = order[j-1], order[j]
				} else {
					break
				}
			}
		}
		k := int(float64(pop) * exploit)
		if k < 1 {
			k = 1
		}
		for _, worst := range order[len(order)-k:] {
			donor := members[order[opts.RNG.Intn(k)]]
			m := members[worst]
			m.cfg = copyConfig(donor.cfg)
			m.state = append([]byte(nil), donor.state...)
			if donor.state == nil {
				m.state = nil
			}
			m.trained = donor.trained
			m.loss = donor.loss
			var fresh Config
			if p.Trainable == nil {
				fresh = opts.Space.Sample(opts.RNG)
			}
			for _, prm := range opts.Space.Params {
				if prm.Kind != Continuous && prm.Kind != LogContinuous {
					// Trainable runs inherit architecture decisions as-is so
					// the copied checkpoint's shapes match; stateless runs
					// have no checkpoint and may explore them.
					if fresh != nil && opts.RNG.Float64() < 0.25 {
						m.cfg[prm.Name] = fresh[prm.Name]
					}
					continue
				}
				f := perturb[opts.RNG.Intn(len(perturb))]
				m.cfg[prm.Name] *= f
			}
			opts.Space.Clamp(m.cfg)
		}
	}
	return r.result, nil
}

// admit reserves `cost` budget for one evaluation, mirroring evalBatch's
// admission rule for strategies that schedule their own evaluations.
func (r *run) admit(cost float64) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.result.CostUsed+cost <= r.opts.TotalBudget+1e-9
}

func (r *run) nextSeed() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seedCt++
	return r.seedCt
}

// recordTrial appends one externally-evaluated trial with the same
// bookkeeping as evalBatch: cost accounting, incumbent-best eligibility,
// and the progress curve.
func (r *run) recordTrial(t Trial, cost float64) {
	r.mu.Lock()
	r.result.CostUsed += cost
	r.result.Trials = append(r.result.Trials, t)
	if !math.IsNaN(t.Loss) && t.Loss < r.result.Best.Loss && t.Budget >= budgetForBest {
		r.result.Best = t
	}
	r.result.Progress = append(r.result.Progress,
		ProgressPoint{Cost: r.result.CostUsed, Best: r.result.Best.Loss})
	best := r.result.Best.Loss
	r.mu.Unlock()
	if o := r.opts.Obs; o.Enabled() {
		o.Count("hpo.trials", 1)
		if !math.IsInf(best, 1) {
			o.OnEval("hpo.best_loss", best)
		}
	}
}
