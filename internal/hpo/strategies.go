package hpo

import (
	"math"
	"sort"

	"repro/internal/rng"
)

// ---- Naive baselines ---------------------------------------------------

// RandomSearch evaluates uniform random configurations at full budget.
type RandomSearch struct{}

// Name implements Strategy.
func (RandomSearch) Name() string { return "random" }

// Search implements Strategy.
func (RandomSearch) Search(obj Objective, opts Options) (*Result, error) {
	r, err := newRun("random", obj, opts)
	if err != nil {
		return nil, err
	}
	for r.remaining() >= 1-1e-9 {
		n := int(math.Min(float64(opts.Parallelism), r.remaining()))
		if n < 1 {
			break
		}
		configs := make([]Config, n)
		for i := range configs {
			configs[i] = opts.Space.Sample(opts.RNG)
		}
		if got := r.evalBatch(configs, 1.0); len(got) == 0 {
			break
		}
	}
	return r.result, nil
}

// GridSearch evaluates an axis-aligned grid sized to the budget.
type GridSearch struct{}

// Name implements Strategy.
func (GridSearch) Name() string { return "grid" }

// Search implements Strategy.
func (GridSearch) Search(obj Objective, opts Options) (*Result, error) {
	r, err := newRun("grid", obj, opts)
	if err != nil {
		return nil, err
	}
	k := opts.Space.GridSize(int(opts.TotalBudget))
	grid := opts.Space.Grid(k)
	for lo := 0; lo < len(grid); lo += opts.Parallelism {
		hi := lo + opts.Parallelism
		if hi > len(grid) {
			hi = len(grid)
		}
		if got := r.evalBatch(grid[lo:hi], 1.0); len(got) == 0 {
			break
		}
	}
	return r.result, nil
}

// ---- Successive halving / Hyperband --------------------------------------

// Hyperband runs brackets of successive halving with different
// aggressiveness, adaptively allocating budget to promising configurations.
type Hyperband struct {
	// Eta is the halving factor (default 3).
	Eta float64
	// MinBudget is the smallest per-trial budget fraction (default 1/27).
	MinBudget float64
}

// Name implements Strategy.
func (Hyperband) Name() string { return "hyperband" }

// Search implements Strategy.
func (h Hyperband) Search(obj Objective, opts Options) (*Result, error) {
	eta := h.Eta
	if eta <= 1 {
		eta = 3
	}
	minB := h.MinBudget
	if minB <= 0 || minB >= 1 {
		minB = 1.0 / 27
	}
	r, err := newRun("hyperband", obj, opts)
	if err != nil {
		return nil, err
	}
	sMax := int(math.Floor(math.Log(1/minB) / math.Log(eta)))
	for r.remaining() > 1e-9 {
		for s := sMax; s >= 0 && r.remaining() > 1e-9; s-- {
			// Bracket s: n initial configs at budget eta^-s.
			n := int(math.Ceil(float64(sMax+1) / float64(s+1) * math.Pow(eta, float64(s))))
			budget := math.Pow(eta, -float64(s))
			configs := make([]Config, n)
			for i := range configs {
				configs[i] = opts.Space.Sample(opts.RNG)
			}
			for rung := 0; rung <= s; rung++ {
				trials := r.evalBatchChunked(configs, budget)
				if len(trials) == 0 {
					return r.result, nil
				}
				sortTrialsByLoss(trials)
				keep := int(math.Floor(float64(len(trials)) / eta))
				if keep < 1 {
					break
				}
				configs = configs[:keep]
				for i := 0; i < keep; i++ {
					configs[i] = trials[i].Config
				}
				budget = math.Min(1, budget*eta)
			}
		}
	}
	return r.result, nil
}

// evalBatchChunked evaluates in parallelism-sized chunks so huge rungs
// still respect the worker pool and budget admission.
func (r *run) evalBatchChunked(configs []Config, budget float64) []Trial {
	var out []Trial
	for lo := 0; lo < len(configs); lo += r.opts.Parallelism {
		hi := lo + r.opts.Parallelism
		if hi > len(configs) {
			hi = len(configs)
		}
		got := r.evalBatch(configs[lo:hi], budget)
		out = append(out, got...)
		if len(got) < hi-lo {
			break // budget exhausted
		}
	}
	return out
}

// ---- Genetic algorithm ---------------------------------------------------

// Genetic evolves a population with tournament selection, blend crossover
// and Gaussian mutation in the encoded space.
type Genetic struct {
	// PopSize is the population size (default 16).
	PopSize int
	// MutateStd is the mutation std in encoded [0,1] space (default 0.1).
	MutateStd float64
	// CrossProb is the crossover probability (default 0.9).
	CrossProb float64
}

// Name implements Strategy.
func (Genetic) Name() string { return "genetic" }

// Search implements Strategy.
func (g Genetic) Search(obj Objective, opts Options) (*Result, error) {
	pop := g.PopSize
	if pop <= 1 {
		pop = 16
	}
	mstd := g.MutateStd
	if mstd <= 0 {
		mstd = 0.1
	}
	cross := g.CrossProb
	if cross <= 0 {
		cross = 0.9
	}
	r, err := newRun("genetic", obj, opts)
	if err != nil {
		return nil, err
	}
	// Initial population.
	configs := make([]Config, pop)
	for i := range configs {
		configs[i] = opts.Space.Sample(opts.RNG)
	}
	parents := r.evalBatchChunked(configs, 1.0)
	for r.remaining() >= 1-1e-9 && len(parents) >= 2 {
		children := make([]Config, 0, pop)
		for len(children) < pop {
			a := tournament(parents, opts.RNG)
			b := tournament(parents, opts.RNG)
			va := opts.Space.Encode(a.Config)
			vb := opts.Space.Encode(b.Config)
			child := make([]float64, len(va))
			for i := range child {
				if opts.RNG.Bernoulli(cross) {
					w := opts.RNG.Float64()
					child[i] = w*va[i] + (1-w)*vb[i]
				} else {
					child[i] = va[i]
				}
				child[i] += opts.RNG.NormMeanStd(0, mstd)
			}
			children = append(children, opts.Space.Clamp(opts.Space.Decode(child)))
		}
		got := r.evalBatchChunked(children, 1.0)
		if len(got) == 0 {
			break
		}
		// (mu + lambda) survival: best of parents+children.
		all := append(parents, got...)
		sortTrialsByLoss(all)
		if len(all) > pop {
			all = all[:pop]
		}
		parents = all
	}
	return r.result, nil
}

func tournament(ts []Trial, r *rng.Stream) Trial {
	a := ts[r.Intn(len(ts))]
	b := ts[r.Intn(len(ts))]
	if b.Loss < a.Loss {
		return b
	}
	return a
}

// ---- TPE-style density search ---------------------------------------------

// TPE implements a Tree-structured-Parzen-Estimator-style search: split
// history into good/bad by loss quantile, model each with a kernel density
// estimate in the encoded space, and propose the candidate maximising the
// good/bad density ratio.
type TPE struct {
	// Gamma is the good-fraction quantile (default 0.25).
	Gamma float64
	// Candidates sampled from the good model per proposal (default 24).
	Candidates int
	// Startup random trials before the model engages (default 10).
	Startup int
}

// Name implements Strategy.
func (TPE) Name() string { return "tpe" }

// Search implements Strategy.
func (t TPE) Search(obj Objective, opts Options) (*Result, error) {
	gamma := t.Gamma
	if gamma <= 0 || gamma >= 1 {
		gamma = 0.25
	}
	cands := t.Candidates
	if cands <= 0 {
		cands = 24
	}
	startup := t.Startup
	if startup <= 0 {
		startup = 10
	}
	r, err := newRun("tpe", obj, opts)
	if err != nil {
		return nil, err
	}
	var hist []Trial
	for r.remaining() >= 1-1e-9 {
		n := int(math.Min(float64(opts.Parallelism), r.remaining()))
		configs := make([]Config, 0, n)
		for i := 0; i < n; i++ {
			if len(hist) < startup {
				configs = append(configs, opts.Space.Sample(opts.RNG))
				continue
			}
			configs = append(configs, t.propose(opts.Space, hist, gamma, cands, opts.RNG))
		}
		got := r.evalBatch(configs, 1.0)
		if len(got) == 0 {
			break
		}
		hist = append(hist, got...)
	}
	return r.result, nil
}

func (t TPE) propose(s *Space, hist []Trial, gamma float64, cands int, r *rng.Stream) Config {
	sorted := append([]Trial(nil), hist...)
	sortTrialsByLoss(sorted)
	nGood := int(math.Ceil(gamma * float64(len(sorted))))
	if nGood < 2 {
		nGood = 2
	}
	if nGood > len(sorted) {
		nGood = len(sorted)
	}
	good := encodeAll(s, sorted[:nGood])
	bad := encodeAll(s, sorted[nGood:])
	bw := kdeBandwidth(len(good), len(s.Params))

	bestScore := math.Inf(-1)
	var best []float64
	for c := 0; c < cands; c++ {
		// Sample from the good KDE: pick a good point, jitter.
		base := good[r.Intn(len(good))]
		x := make([]float64, len(base))
		for i := range x {
			x[i] = clamp01(base[i] + r.NormMeanStd(0, bw))
		}
		score := math.Log(kdeDensity(good, x, bw)+1e-300) -
			math.Log(kdeDensity(bad, x, bw)+1e-300)
		if score > bestScore {
			bestScore = score
			best = x
		}
	}
	return s.Clamp(s.Decode(best))
}

// ---- RBF surrogate ---------------------------------------------------------

// Surrogate fits a radial-basis-function interpolant to history and proposes
// the random candidate with the best predicted loss (exploitation) plus an
// exploration bonus for distance from known points.
type Surrogate struct {
	// Candidates scored per proposal (default 64).
	Candidates int
	// Startup random trials before the model engages (default 8).
	Startup int
	// Explore weights the distance bonus (default 0.3).
	Explore float64
}

// Name implements Strategy.
func (Surrogate) Name() string { return "surrogate" }

// Search implements Strategy.
func (sg Surrogate) Search(obj Objective, opts Options) (*Result, error) {
	cands := sg.Candidates
	if cands <= 0 {
		cands = 64
	}
	startup := sg.Startup
	if startup <= 0 {
		startup = 8
	}
	explore := sg.Explore
	if explore <= 0 {
		explore = 0.3
	}
	r, err := newRun("surrogate", obj, opts)
	if err != nil {
		return nil, err
	}
	var hist []Trial
	for r.remaining() >= 1-1e-9 {
		n := int(math.Min(float64(opts.Parallelism), r.remaining()))
		configs := make([]Config, 0, n)
		for i := 0; i < n; i++ {
			if len(hist) < startup {
				configs = append(configs, opts.Space.Sample(opts.RNG))
				continue
			}
			configs = append(configs, sg.propose(opts.Space, hist, cands, explore, opts.RNG))
		}
		got := r.evalBatch(configs, 1.0)
		if len(got) == 0 {
			break
		}
		hist = append(hist, got...)
	}
	return r.result, nil
}

func (sg Surrogate) propose(s *Space, hist []Trial, cands int, explore float64, r *rng.Stream) Config {
	pts := encodeAll(s, hist)
	losses := make([]float64, len(hist))
	lmin, lmax := math.Inf(1), math.Inf(-1)
	for i, t := range hist {
		losses[i] = t.Loss
		if t.Loss < lmin {
			lmin = t.Loss
		}
		if t.Loss > lmax {
			lmax = t.Loss
		}
	}
	scale := lmax - lmin
	if scale == 0 {
		scale = 1
	}
	bw := kdeBandwidth(len(pts), len(s.Params)) * 2
	bestScore := math.Inf(1)
	var best []float64
	for c := 0; c < cands; c++ {
		x := make([]float64, len(s.Params))
		for i := range x {
			x[i] = r.Float64()
		}
		// Nadaraya-Watson prediction (RBF-weighted mean of losses).
		var wsum, lsum, dmin float64
		dmin = math.Inf(1)
		for i, p := range pts {
			d2 := sqDist(p, x)
			w := math.Exp(-d2 / (2 * bw * bw))
			wsum += w
			lsum += w * losses[i]
			if d := math.Sqrt(d2); d < dmin {
				dmin = d
			}
		}
		pred := lmax
		if wsum > 1e-12 {
			pred = lsum / wsum
		}
		score := (pred-lmin)/scale - explore*dmin
		if score < bestScore {
			bestScore = score
			best = x
		}
	}
	return s.Clamp(s.Decode(best))
}

// ---- Generative search -------------------------------------------------------

// Generative fits a generative model (a Gaussian kernel density over the
// elite fraction of history) and samples new configurations from it,
// annealing the kernel bandwidth as evidence accumulates. This is the
// stand-in for the paper's "new approaches that use generative neural
// networks to manage the search space": the model *generates* candidate
// configurations rather than scoring externally proposed ones.
type Generative struct {
	// Elite is the fraction of history treated as the target
	// distribution (default 0.2).
	Elite float64
	// Startup random trials before the model engages (default 10).
	Startup int
	// ExploreProb mixes in uniform samples to retain coverage (default 0.15).
	ExploreProb float64
}

// Name implements Strategy.
func (Generative) Name() string { return "generative" }

// Search implements Strategy.
func (g Generative) Search(obj Objective, opts Options) (*Result, error) {
	elite := g.Elite
	if elite <= 0 || elite >= 1 {
		elite = 0.2
	}
	startup := g.Startup
	if startup <= 0 {
		startup = 10
	}
	exploreProb := g.ExploreProb
	if exploreProb <= 0 {
		exploreProb = 0.15
	}
	r, err := newRun("generative", obj, opts)
	if err != nil {
		return nil, err
	}
	var hist []Trial
	for r.remaining() >= 1-1e-9 {
		n := int(math.Min(float64(opts.Parallelism), r.remaining()))
		configs := make([]Config, 0, n)
		for i := 0; i < n; i++ {
			if len(hist) < startup || opts.RNG.Bernoulli(exploreProb) {
				configs = append(configs, opts.Space.Sample(opts.RNG))
				continue
			}
			configs = append(configs, g.generate(opts.Space, hist, elite, opts.RNG))
		}
		got := r.evalBatch(configs, 1.0)
		if len(got) == 0 {
			break
		}
		hist = append(hist, got...)
	}
	return r.result, nil
}

func (g Generative) generate(s *Space, hist []Trial, elite float64, r *rng.Stream) Config {
	sorted := append([]Trial(nil), hist...)
	sortTrialsByLoss(sorted)
	nElite := int(math.Ceil(elite * float64(len(sorted))))
	if nElite < 2 {
		nElite = 2
	}
	if nElite > len(sorted) {
		nElite = len(sorted)
	}
	pts := encodeAll(s, sorted[:nElite])
	// Bandwidth anneals as 1/sqrt(evidence): early samples explore widely,
	// late samples concentrate on the learned mode.
	bw := kdeBandwidth(len(hist), len(s.Params))
	base := pts[r.Intn(len(pts))]
	x := make([]float64, len(base))
	for i := range x {
		x[i] = clamp01(base[i] + r.NormMeanStd(0, bw))
	}
	return s.Clamp(s.Decode(x))
}

// ---- shared helpers ---------------------------------------------------------

func encodeAll(s *Space, ts []Trial) [][]float64 {
	out := make([][]float64, len(ts))
	for i, t := range ts {
		out[i] = s.Encode(t.Config)
	}
	return out
}

// kdeBandwidth is a Scott's-rule-flavoured bandwidth in the unit cube.
func kdeBandwidth(n, dims int) float64 {
	if n < 2 {
		return 0.3
	}
	return math.Max(0.02, math.Pow(float64(n), -1.0/(4+float64(dims)))*0.5)
}

func kdeDensity(pts [][]float64, x []float64, bw float64) float64 {
	if len(pts) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range pts {
		sum += math.Exp(-sqDist(p, x) / (2 * bw * bw))
	}
	return sum / float64(len(pts))
}

func sqDist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// AllStrategies returns one instance of every built-in strategy with
// default settings, naive baselines first.
func AllStrategies() []Strategy {
	return []Strategy{
		RandomSearch{}, GridSearch{},
		Hyperband{}, Genetic{}, TPE{}, Surrogate{}, Generative{},
	}
}

// sortTrialsCopy returns trials sorted ascending by loss without modifying
// the input.
func sortTrialsCopy(ts []Trial) []Trial {
	out := append([]Trial(nil), ts...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Loss < out[j].Loss })
	return out
}
