package hpo

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/stats"
)

// ComparisonRow summarises one strategy's performance over repeated seeds.
type ComparisonRow struct {
	Strategy string
	// MeanBest and StdBest aggregate the best loss across seeds.
	MeanBest, StdBest float64
	// MeanCost is the average budget actually consumed.
	MeanCost float64
	// Wins counts seeds on which this strategy had the strictly lowest
	// best loss among all compared strategies.
	Wins int
}

// Compare runs every strategy on the objective once per seed at identical
// options and aggregates results. Search stochasticity is the dominant
// noise source in strategy comparisons, so multi-seed means are the honest
// statistic (E8's caveat).
func Compare(strategies []Strategy, obj Objective, opts Options, seeds []uint64) ([]ComparisonRow, error) {
	if len(strategies) == 0 || len(seeds) == 0 {
		return nil, fmt.Errorf("hpo: Compare needs strategies and seeds")
	}
	bests := make([][]float64, len(strategies))
	costs := make([][]float64, len(strategies))
	for si, strat := range strategies {
		for _, seed := range seeds {
			o := opts
			o.RNG = rng.New(seed).Split(strat.Name())
			res, err := strat.Search(obj, o)
			if err != nil {
				return nil, fmt.Errorf("hpo: %s: %w", strat.Name(), err)
			}
			bests[si] = append(bests[si], res.Best.Loss)
			costs[si] = append(costs[si], res.CostUsed)
		}
	}
	rows := make([]ComparisonRow, len(strategies))
	for si, strat := range strategies {
		rows[si] = ComparisonRow{
			Strategy: strat.Name(),
			MeanBest: stats.Mean(bests[si]),
			StdBest:  stats.Std(bests[si]),
			MeanCost: stats.Mean(costs[si]),
		}
	}
	// Per-seed wins.
	for seedIdx := range seeds {
		bestVal := bests[0][seedIdx]
		bestIdx := 0
		for si := 1; si < len(strategies); si++ {
			if bests[si][seedIdx] < bestVal {
				bestVal = bests[si][seedIdx]
				bestIdx = si
			}
		}
		rows[bestIdx].Wins++
	}
	return rows, nil
}
