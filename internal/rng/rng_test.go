package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with same seed diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical outputs", same)
	}
}

func TestSplitDeterminism(t *testing.T) {
	a := New(7).Split("child")
	b := New(7).Split("child")
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("split with identical label diverged")
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	a := parent.Split("a")
	b := parent.Split("b")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("sibling splits matched %d/100 times", same)
	}
}

func TestSplitN(t *testing.T) {
	p1 := New(9)
	p2 := New(9)
	a := p1.SplitN(3)
	b := p2.SplitN(3)
	if a.Uint64() != b.Uint64() {
		t.Fatal("SplitN not deterministic")
	}
	c := New(9).SplitN(4)
	if c.Uint64() == New(9).SplitN(3).Uint64() {
		t.Fatal("SplitN children for different indices identical")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(5)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean %v too far from 0.5", mean)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(11)
	counts := make([]int, 7)
	for i := 0; i < 70000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) out of range: %d", v)
		}
		counts[v]++
	}
	for i, c := range counts {
		if c < 9000 || c > 11000 {
			t.Fatalf("Intn bucket %d count %d far from uniform", i, c)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormMoments(t *testing.T) {
	r := New(13)
	const n = 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance %v too far from 1", variance)
	}
}

func TestExpMean(t *testing.T) {
	r := New(17)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.Exp(2)
		if v < 0 {
			t.Fatal("negative exponential variate")
		}
		sum += v
	}
	if math.Abs(sum/n-0.5) > 0.02 {
		t.Fatalf("Exp(2) mean %v far from 0.5", sum/n)
	}
}

func TestPoissonMean(t *testing.T) {
	r := New(19)
	for _, mean := range []float64{0.5, 4, 30, 100} {
		const n = 20000
		sum := 0
		for i := 0; i < n; i++ {
			sum += r.Poisson(mean)
		}
		got := float64(sum) / n
		if math.Abs(got-mean) > 0.08*mean+0.1 {
			t.Fatalf("Poisson(%v) mean %v", mean, got)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(23)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("Perm produced invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestChoiceWeights(t *testing.T) {
	r := New(29)
	w := []float64{1, 0, 3}
	counts := make([]int, 3)
	for i := 0; i < 40000; i++ {
		counts[r.Choice(w)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight index chosen %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 2.7 || ratio > 3.3 {
		t.Fatalf("weight ratio %v far from 3", ratio)
	}
}

func TestChoicePanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative weight did not panic")
		}
	}()
	New(1).Choice([]float64{1, -1})
}

func TestSampleDistinct(t *testing.T) {
	r := New(31)
	s := r.Sample(100, 10)
	if len(s) != 10 {
		t.Fatalf("Sample returned %d items", len(s))
	}
	seen := map[int]bool{}
	for _, v := range s {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("invalid sample %v", s)
		}
		seen[v] = true
	}
	// k > n clamps.
	if got := len(r.Sample(3, 10)); got != 3 {
		t.Fatalf("Sample(3,10) returned %d items", got)
	}
}

func TestGammaMean(t *testing.T) {
	r := New(37)
	for _, shape := range []float64{0.5, 1, 2.5, 9} {
		const n = 50000
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += r.Gamma(shape)
		}
		got := sum / n
		if math.Abs(got-shape) > 0.05*shape+0.03 {
			t.Fatalf("Gamma(%v) mean %v", shape, got)
		}
	}
}

func TestBetaRange(t *testing.T) {
	r := New(41)
	for i := 0; i < 1000; i++ {
		v := r.Beta(2, 5)
		if v <= 0 || v >= 1 {
			t.Fatalf("Beta out of (0,1): %v", v)
		}
	}
}

func TestDirichletSumsToOne(t *testing.T) {
	r := New(43)
	out := make([]float64, 8)
	r.Dirichlet(0.7, out)
	sum := 0.0
	for _, v := range out {
		if v < 0 {
			t.Fatalf("negative Dirichlet component %v", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("Dirichlet sums to %v", sum)
	}
}

// Property: Intn is always within range for any positive n and seed.
func TestQuickIntnInRange(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		m := int(n%1000) + 1
		r := New(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(m)
			if v < 0 || v >= m {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Uniform(lo,hi) stays within [lo,hi) for lo<hi.
func TestQuickUniformInRange(t *testing.T) {
	f := func(seed uint64, a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		if hi-lo == 0 || math.IsInf(hi-lo, 0) {
			return true
		}
		r := New(seed)
		for i := 0; i < 20; i++ {
			v := r.Uniform(lo, hi)
			if v < lo || v > hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkNorm(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.Norm()
	}
	_ = sink
}
