// Package rng provides deterministic, splittable pseudo-random number
// streams for reproducible experiments.
//
// Every stochastic component in the repository (data generators, weight
// initialisers, dropout masks, search strategies, simulated failure
// injection) draws from an explicit *Stream rather than a global source, so
// that any experiment can be replayed bit-for-bit from a single root seed.
//
// The generator is SplitMix64 for seeding combined with xoshiro256** for the
// stream itself: fast, high quality, and trivially splittable by hashing a
// child label into the parent's seed material.
package rng

import (
	"math"
	"math/bits"
)

// Stream is a deterministic pseudo-random stream. It is NOT safe for
// concurrent use; split one child stream per goroutine instead.
type Stream struct {
	s [4]uint64
}

// splitmix64 advances a SplitMix64 state and returns the next output.
// It is used only to expand seeds into full xoshiro state.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a stream seeded from the given 64-bit seed.
func New(seed uint64) *Stream {
	st := &Stream{}
	x := seed
	for i := range st.s {
		st.s[i] = splitmix64(&x)
	}
	// xoshiro must not start at the all-zero state.
	if st.s[0]|st.s[1]|st.s[2]|st.s[3] == 0 {
		st.s[0] = 0x9e3779b97f4a7c15
	}
	return st
}

// Split derives an independent child stream identified by label.
// Splitting is deterministic: the same parent state and label always yield
// the same child. The parent is advanced once so successive anonymous
// splits differ.
func (r *Stream) Split(label string) *Stream {
	h := r.Uint64() // advance parent
	for _, b := range []byte(label) {
		h ^= uint64(b)
		h *= 0x100000001b3 // FNV-1a prime
	}
	return New(h)
}

// State returns the stream's exact internal state. Together with SetState
// it lets a checkpoint capture the RNG cursor so a resumed run draws the
// identical sequence the uninterrupted run would have (bitwise continue).
func (r *Stream) State() [4]uint64 { return r.s }

// SetState restores a state previously returned by State. The all-zero
// state is invalid for xoshiro and is rejected by panicking.
func (r *Stream) SetState(s [4]uint64) {
	if s[0]|s[1]|s[2]|s[3] == 0 {
		panic("rng: SetState with all-zero state")
	}
	r.s = s
}

// SplitN derives the i-th of a family of child streams.
func (r *Stream) SplitN(i int) *Stream {
	h := r.Uint64()
	h ^= uint64(i) * 0x9e3779b97f4a7c15
	return New(h)
}

// Uint64 returns the next 64 random bits (xoshiro256**).
func (r *Stream) Uint64() uint64 {
	s := &r.s
	result := bits.RotateLeft64(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)
	return result
}

// Float64 returns a uniform float64 in [0,1).
func (r *Stream) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Intn returns a uniform int in [0,n). It panics if n <= 0.
func (r *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method (unbiased).
	un := uint64(n)
	v := r.Uint64()
	hi, lo := bits.Mul64(v, un)
	if lo < un {
		thresh := -un % un
		for lo < thresh {
			v = r.Uint64()
			hi, lo = bits.Mul64(v, un)
		}
	}
	return int(hi)
}

// Int63 returns a non-negative random int64.
func (r *Stream) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Uniform returns a uniform float64 in [lo,hi).
func (r *Stream) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Norm returns a standard normal variate (Marsaglia polar method).
func (r *Stream) Norm() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// NormMeanStd returns a normal variate with the given mean and stddev.
func (r *Stream) NormMeanStd(mean, std float64) float64 {
	return mean + std*r.Norm()
}

// Exp returns an exponential variate with the given rate.
func (r *Stream) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exp with non-positive rate")
	}
	return -math.Log(1-r.Float64()) / rate
}

// LogNormal returns a log-normal variate whose underlying normal has the
// given mu and sigma.
func (r *Stream) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.Norm())
}

// Bernoulli returns true with probability p.
func (r *Stream) Bernoulli(p float64) bool {
	return r.Float64() < p
}

// Poisson returns a Poisson variate with the given mean (Knuth's method for
// small means, normal approximation for large).
func (r *Stream) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 60 {
		v := int(math.Round(r.NormMeanStd(mean, math.Sqrt(mean))))
		if v < 0 {
			v = 0
		}
		return v
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Perm returns a random permutation of [0,n).
func (r *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
	return p
}

// ShuffleInts shuffles an int slice in place (Fisher–Yates).
func (r *Stream) ShuffleInts(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Shuffle shuffles n elements using the provided swap function.
func (r *Stream) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Choice returns a uniformly random index weighted by w (w need not be
// normalised; all weights must be non-negative with a positive sum).
func (r *Stream) Choice(w []float64) int {
	total := 0.0
	for _, x := range w {
		if x < 0 || math.IsNaN(x) {
			panic("rng: negative or NaN weight")
		}
		total += x
	}
	if total <= 0 {
		panic("rng: weights sum to zero")
	}
	target := r.Float64() * total
	acc := 0.0
	for i, x := range w {
		acc += x
		if target < acc {
			return i
		}
	}
	return len(w) - 1
}

// Sample returns k distinct indices from [0,n) (reservoir sampling).
func (r *Stream) Sample(n, k int) []int {
	if k > n {
		k = n
	}
	res := make([]int, k)
	for i := 0; i < k; i++ {
		res[i] = i
	}
	for i := k; i < n; i++ {
		j := r.Intn(i + 1)
		if j < k {
			res[j] = i
		}
	}
	return res
}

// Gamma returns a Gamma(shape, 1) variate (Marsaglia–Tsang).
func (r *Stream) Gamma(shape float64) float64 {
	if shape <= 0 {
		panic("rng: Gamma with non-positive shape")
	}
	if shape < 1 {
		// Boost: Gamma(a) = Gamma(a+1) * U^(1/a)
		return r.Gamma(shape+1) * math.Pow(r.Float64(), 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1.0 / math.Sqrt(9*d)
	for {
		x := r.Norm()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Beta returns a Beta(a,b) variate.
func (r *Stream) Beta(a, b float64) float64 {
	x := r.Gamma(a)
	y := r.Gamma(b)
	return x / (x + y)
}

// Dirichlet fills out with a Dirichlet(alpha,...,alpha) sample of len(out).
func (r *Stream) Dirichlet(alpha float64, out []float64) {
	sum := 0.0
	for i := range out {
		out[i] = r.Gamma(alpha)
		sum += out[i]
	}
	for i := range out {
		out[i] /= sum
	}
}
