package stats

import (
	"math"
	"sort"
)

// Accuracy returns the fraction of positions where pred == label.
// It panics if the slices differ in length.
func Accuracy(pred, label []int) float64 {
	if len(pred) != len(label) {
		panic("stats: Accuracy length mismatch")
	}
	if len(pred) == 0 {
		return math.NaN()
	}
	hit := 0
	for i := range pred {
		if pred[i] == label[i] {
			hit++
		}
	}
	return float64(hit) / float64(len(pred))
}

// MSE returns the mean squared error between prediction and target.
func MSE(pred, target []float64) float64 {
	if len(pred) != len(target) {
		panic("stats: MSE length mismatch")
	}
	if len(pred) == 0 {
		return math.NaN()
	}
	s := 0.0
	for i := range pred {
		d := pred[i] - target[i]
		s += d * d
	}
	return s / float64(len(pred))
}

// MAE returns the mean absolute error between prediction and target.
func MAE(pred, target []float64) float64 {
	if len(pred) != len(target) {
		panic("stats: MAE length mismatch")
	}
	if len(pred) == 0 {
		return math.NaN()
	}
	s := 0.0
	for i := range pred {
		s += math.Abs(pred[i] - target[i])
	}
	return s / float64(len(pred))
}

// R2 returns the coefficient of determination of pred against target.
func R2(pred, target []float64) float64 {
	if len(pred) != len(target) {
		panic("stats: R2 length mismatch")
	}
	if len(pred) < 2 {
		return math.NaN()
	}
	mean := Mean(target)
	ssRes, ssTot := 0.0, 0.0
	for i := range pred {
		d := target[i] - pred[i]
		ssRes += d * d
		t := target[i] - mean
		ssTot += t * t
	}
	if ssTot == 0 {
		return math.NaN()
	}
	return 1 - ssRes/ssTot
}

// AUC returns the area under the ROC curve for binary labels (0/1) and
// real-valued scores, computed via the Mann–Whitney U statistic with
// midrank tie handling.
func AUC(score []float64, label []int) float64 {
	if len(score) != len(label) {
		panic("stats: AUC length mismatch")
	}
	n := len(score)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return score[idx[a]] < score[idx[b]] })
	// Midranks.
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j < n && score[idx[j]] == score[idx[i]] {
			j++
		}
		mid := float64(i+j-1)/2 + 1
		for k := i; k < j; k++ {
			ranks[idx[k]] = mid
		}
		i = j
	}
	nPos, nNeg := 0, 0
	sumPos := 0.0
	for i, l := range label {
		if l == 1 {
			nPos++
			sumPos += ranks[i]
		} else {
			nNeg++
		}
	}
	if nPos == 0 || nNeg == 0 {
		return math.NaN()
	}
	u := sumPos - float64(nPos)*float64(nPos+1)/2
	return u / (float64(nPos) * float64(nNeg))
}

// F1 returns the F1 score for binary predictions (positive class = 1).
func F1(pred, label []int) float64 {
	if len(pred) != len(label) {
		panic("stats: F1 length mismatch")
	}
	tp, fp, fn := 0, 0, 0
	for i := range pred {
		switch {
		case pred[i] == 1 && label[i] == 1:
			tp++
		case pred[i] == 1 && label[i] == 0:
			fp++
		case pred[i] == 0 && label[i] == 1:
			fn++
		}
	}
	if 2*tp+fp+fn == 0 {
		return math.NaN()
	}
	return 2 * float64(tp) / float64(2*tp+fp+fn)
}

// ConfusionMatrix returns an nClass x nClass matrix m where m[t][p] counts
// samples with true class t predicted as p.
func ConfusionMatrix(pred, label []int, nClass int) [][]int {
	if len(pred) != len(label) {
		panic("stats: ConfusionMatrix length mismatch")
	}
	m := make([][]int, nClass)
	for i := range m {
		m[i] = make([]int, nClass)
	}
	for i := range pred {
		m[label[i]][pred[i]]++
	}
	return m
}

// Pearson returns the Pearson correlation coefficient of x and y.
func Pearson(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("stats: Pearson length mismatch")
	}
	n := len(x)
	if n < 2 {
		return math.NaN()
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN()
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Spearman returns the Spearman rank correlation of x and y.
func Spearman(x, y []float64) float64 {
	return Pearson(midranks(x), midranks(y))
}

func midranks(x []float64) []float64 {
	n := len(x)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return x[idx[a]] < x[idx[b]] })
	r := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j < n && x[idx[j]] == x[idx[i]] {
			j++
		}
		mid := float64(i+j-1)/2 + 1
		for k := i; k < j; k++ {
			r[idx[k]] = mid
		}
		i = j
	}
	return r
}
