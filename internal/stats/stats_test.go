package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); !approx(m, 5, 1e-12) {
		t.Fatalf("mean=%v", m)
	}
	if v := Variance(xs); !approx(v, 32.0/7.0, 1e-12) {
		t.Fatalf("variance=%v", v)
	}
}

func TestEmptyInputs(t *testing.T) {
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("Mean(nil) not NaN")
	}
	if !math.IsNaN(Variance([]float64{1})) {
		t.Fatal("Variance of singleton not NaN")
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Fatal("Min/Max of empty wrong")
	}
	if ArgMin(nil) != -1 || ArgMax(nil) != -1 {
		t.Fatal("ArgMin/ArgMax of empty not -1")
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("Quantile of empty not NaN")
	}
}

func TestMinMaxArg(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatal("Min/Max wrong")
	}
	if ArgMin(xs) != 1 || ArgMax(xs) != 2 {
		t.Fatal("ArgMin/ArgMax wrong")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if q := Quantile(xs, 0.5); !approx(q, 3, 1e-12) {
		t.Fatalf("median=%v", q)
	}
	if q := Quantile(xs, 0); q != 1 {
		t.Fatalf("q0=%v", q)
	}
	if q := Quantile(xs, 1); q != 5 {
		t.Fatalf("q1=%v", q)
	}
	if q := Quantile(xs, 0.25); !approx(q, 2, 1e-12) {
		t.Fatalf("q.25=%v", q)
	}
	// Input must not be reordered.
	ys := []float64{3, 1, 2}
	Quantile(ys, 0.5)
	if ys[0] != 3 || ys[1] != 1 || ys[2] != 2 {
		t.Fatal("Quantile mutated input")
	}
}

func TestOnlineMatchesBatch(t *testing.T) {
	xs := []float64{1.5, -2, 3.25, 0, 10, -4.5, 2}
	var o Online
	for _, x := range xs {
		o.Add(x)
	}
	if !approx(o.Mean(), Mean(xs), 1e-12) {
		t.Fatalf("online mean %v vs %v", o.Mean(), Mean(xs))
	}
	if !approx(o.Variance(), Variance(xs), 1e-12) {
		t.Fatalf("online var %v vs %v", o.Variance(), Variance(xs))
	}
	if o.Min() != Min(xs) || o.Max() != Max(xs) || o.N() != len(xs) {
		t.Fatal("online min/max/n wrong")
	}
}

func TestQuickOnlineMatchesBatch(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
				xs = append(xs, x)
			}
		}
		if len(xs) < 2 {
			return true
		}
		var o Online
		for _, x := range xs {
			o.Add(x)
		}
		scale := math.Max(1, math.Abs(Mean(xs)))
		return approx(o.Mean(), Mean(xs), 1e-9*scale) &&
			approx(o.Variance(), Variance(xs), 1e-6*math.Max(1, Variance(xs)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeanCI(t *testing.T) {
	xs := []float64{1, 1, 1, 1}
	m, hw := MeanCI(xs)
	if m != 1 || hw != 0 {
		t.Fatalf("constant data CI: mean=%v hw=%v", m, hw)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 9.99, 10, 11} {
		h.Add(x)
	}
	if h.Under != 1 || h.Over != 2 {
		t.Fatalf("under=%d over=%d", h.Under, h.Over)
	}
	if h.Counts[0] != 2 || h.Counts[1] != 1 || h.Counts[4] != 1 {
		t.Fatalf("counts=%v", h.Counts)
	}
	if h.Total() != 7 {
		t.Fatalf("total=%d", h.Total())
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid histogram did not panic")
		}
	}()
	NewHistogram(5, 5, 3)
}

func TestAccuracy(t *testing.T) {
	if a := Accuracy([]int{1, 2, 3}, []int{1, 0, 3}); !approx(a, 2.0/3.0, 1e-12) {
		t.Fatalf("acc=%v", a)
	}
}

func TestMSEAndMAE(t *testing.T) {
	p := []float64{1, 2}
	y := []float64{3, 2}
	if m := MSE(p, y); !approx(m, 2, 1e-12) {
		t.Fatalf("mse=%v", m)
	}
	if m := MAE(p, y); !approx(m, 1, 1e-12) {
		t.Fatalf("mae=%v", m)
	}
}

func TestR2(t *testing.T) {
	y := []float64{1, 2, 3, 4}
	if r := R2(y, y); !approx(r, 1, 1e-12) {
		t.Fatalf("perfect R2=%v", r)
	}
	mean := Mean(y)
	pred := []float64{mean, mean, mean, mean}
	if r := R2(pred, y); !approx(r, 0, 1e-12) {
		t.Fatalf("mean-predictor R2=%v", r)
	}
}

func TestAUC(t *testing.T) {
	// Perfectly separated scores.
	score := []float64{0.1, 0.2, 0.8, 0.9}
	label := []int{0, 0, 1, 1}
	if a := AUC(score, label); !approx(a, 1, 1e-12) {
		t.Fatalf("AUC=%v", a)
	}
	// Anti-separated.
	if a := AUC(score, []int{1, 1, 0, 0}); !approx(a, 0, 1e-12) {
		t.Fatalf("AUC=%v", a)
	}
	// All-tied scores give 0.5.
	if a := AUC([]float64{1, 1, 1, 1}, label); !approx(a, 0.5, 1e-12) {
		t.Fatalf("tied AUC=%v", a)
	}
	// Degenerate labels give NaN.
	if !math.IsNaN(AUC(score, []int{1, 1, 1, 1})) {
		t.Fatal("single-class AUC not NaN")
	}
}

func TestF1(t *testing.T) {
	pred := []int{1, 1, 0, 0}
	label := []int{1, 0, 1, 0}
	// tp=1 fp=1 fn=1 -> F1 = 2/4 = .5
	if f := F1(pred, label); !approx(f, 0.5, 1e-12) {
		t.Fatalf("F1=%v", f)
	}
}

func TestConfusionMatrix(t *testing.T) {
	m := ConfusionMatrix([]int{0, 1, 1}, []int{0, 1, 0}, 2)
	if m[0][0] != 1 || m[0][1] != 1 || m[1][1] != 1 || m[1][0] != 0 {
		t.Fatalf("confusion=%v", m)
	}
}

func TestPearsonSpearman(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	if p := Pearson(x, y); !approx(p, 1, 1e-12) {
		t.Fatalf("pearson=%v", p)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if p := Pearson(x, neg); !approx(p, -1, 1e-12) {
		t.Fatalf("pearson=%v", p)
	}
	// Monotone nonlinear: Spearman 1, Pearson < 1.
	cube := []float64{1, 8, 27, 64, 125}
	if s := Spearman(x, cube); !approx(s, 1, 1e-12) {
		t.Fatalf("spearman=%v", s)
	}
	if p := Pearson(x, cube); p >= 1 {
		t.Fatalf("pearson on cube should be <1, got %v", p)
	}
}

// Property: AUC is invariant to any strictly monotone transform of scores.
func TestQuickAUCMonotoneInvariant(t *testing.T) {
	f := func(raw []float64, labels []bool) bool {
		n := len(raw)
		if len(labels) < n {
			n = len(labels)
		}
		if n < 4 {
			return true
		}
		score := make([]float64, n)
		lab := make([]int, n)
		pos := 0
		for i := 0; i < n; i++ {
			v := raw[i]
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			score[i] = math.Mod(v, 100)
			if labels[i] {
				lab[i] = 1
				pos++
			}
		}
		if pos == 0 || pos == n {
			return true
		}
		a := AUC(score, lab)
		tr := make([]float64, n)
		for i, s := range score {
			tr[i] = 3*s + 7 // strictly increasing
		}
		b := AUC(tr, lab)
		return approx(a, b, 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
