// Package stats provides the summary statistics, online accumulators, and
// model-quality metrics used throughout the experiment harness.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs (NaN for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance (NaN for n < 2).
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// Std returns the unbiased sample standard deviation.
func Std(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the minimum of xs (+Inf for empty input).
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs (-Inf for empty input).
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// ArgMin returns the index of the smallest element (-1 for empty input).
func ArgMin(xs []float64) int {
	idx := -1
	best := math.Inf(1)
	for i, x := range xs {
		if x < best {
			best, idx = x, i
		}
	}
	return idx
}

// ArgMax returns the index of the largest element (-1 for empty input).
func ArgMax(xs []float64) int {
	idx := -1
	best := math.Inf(-1)
	for i, x := range xs {
		if x > best {
			best, idx = x, i
		}
	}
	return idx
}

// Quantile returns the q-quantile (0<=q<=1) of xs by linear interpolation.
// xs is not modified. NaN for empty input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := lo + 1
	if hi >= len(sorted) {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 0.5-quantile of xs.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Online accumulates count, mean and variance in one pass (Welford).
// The zero value is ready to use.
type Online struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (o *Online) Add(x float64) {
	if o.n == 0 {
		o.min, o.max = x, x
	} else {
		if x < o.min {
			o.min = x
		}
		if x > o.max {
			o.max = x
		}
	}
	o.n++
	d := x - o.mean
	o.mean += d / float64(o.n)
	o.m2 += d * (x - o.mean)
}

// N returns the number of observations.
func (o *Online) N() int { return o.n }

// Mean returns the running mean (NaN if empty).
func (o *Online) Mean() float64 {
	if o.n == 0 {
		return math.NaN()
	}
	return o.mean
}

// Variance returns the running unbiased variance (NaN if n<2).
func (o *Online) Variance() float64 {
	if o.n < 2 {
		return math.NaN()
	}
	return o.m2 / float64(o.n-1)
}

// Std returns the running standard deviation.
func (o *Online) Std() float64 { return math.Sqrt(o.Variance()) }

// Min returns the smallest observation (+Inf if empty).
func (o *Online) Min() float64 {
	if o.n == 0 {
		return math.Inf(1)
	}
	return o.min
}

// Max returns the largest observation (-Inf if empty).
func (o *Online) Max() float64 {
	if o.n == 0 {
		return math.Inf(-1)
	}
	return o.max
}

// String summarises the accumulator.
func (o *Online) String() string {
	return fmt.Sprintf("n=%d mean=%.4g std=%.4g min=%.4g max=%.4g",
		o.n, o.Mean(), o.Std(), o.Min(), o.Max())
}

// MeanCI returns the mean and a normal-approximation 95% confidence
// half-width for xs.
func MeanCI(xs []float64) (mean, halfWidth float64) {
	mean = Mean(xs)
	if len(xs) < 2 {
		return mean, math.NaN()
	}
	se := Std(xs) / math.Sqrt(float64(len(xs)))
	return mean, 1.96 * se
}

// Histogram is a fixed-width-bin histogram over [Lo,Hi).
type Histogram struct {
	Lo, Hi   float64
	Counts   []int
	Under    int // observations below Lo
	Over     int // observations at or above Hi
	binWidth float64
}

// NewHistogram creates a histogram with the given bounds and bin count.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 || hi <= lo {
		panic("stats: invalid histogram parameters")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins),
		binWidth: (hi - lo) / float64(bins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int((x - h.Lo) / h.binWidth)
		if i >= len(h.Counts) {
			i = len(h.Counts) - 1
		}
		h.Counts[i]++
	}
}

// Total returns the total number of observations including outliers.
func (h *Histogram) Total() int {
	t := h.Under + h.Over
	for _, c := range h.Counts {
		t += c
	}
	return t
}
