package machine

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/comm"
	"repro/internal/lowp"
	"repro/internal/rng"
)

func TestPresetsValidate(t *testing.T) {
	for _, m := range Presets(64) {
		if err := m.Validate(); err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
	}
	bad := &Machine{Name: "bad"}
	if err := bad.Validate(); err == nil {
		t.Fatal("invalid machine accepted")
	}
}

func TestPeakFallback(t *testing.T) {
	n := Node{Name: "n", PeakFlops: map[lowp.Precision]float64{lowp.FP32: 1 * TFlops}}
	// fp16 has no native rate -> falls back to fp32.
	if n.Peak(lowp.FP16) != 1*TFlops {
		t.Fatalf("fallback peak %v", n.Peak(lowp.FP16))
	}
	if n.Peak(lowp.FP32) != 1*TFlops {
		t.Fatal("native peak wrong")
	}
}

func TestPeakOrderingInPresets(t *testing.T) {
	// Lower precision must never be slower than higher precision.
	for _, m := range Presets(1) {
		n := m.Node
		if n.Peak(lowp.FP16) < n.Peak(lowp.FP32) ||
			n.Peak(lowp.FP32) < n.Peak(lowp.FP64) ||
			n.Peak(lowp.INT8) < n.Peak(lowp.FP16) {
			t.Fatalf("%s: precision peaks not monotone", m.Name)
		}
	}
}

func TestFabricFor(t *testing.T) {
	m := GPU2017(64)
	if m.FabricFor(2).Name != m.GroupFabric.Name {
		t.Fatal("small communicator should use group fabric")
	}
	if m.FabricFor(32).Name != m.InterFabric.Name {
		t.Fatal("large communicator should use inter fabric")
	}
}

func TestMLPSpec(t *testing.T) {
	spec := MLPSpec("m", []int{10, 20, 5})
	wantParams := float64(10*20 + 20 + 20*5 + 5)
	if spec.Params != wantParams {
		t.Fatalf("params %v want %v", spec.Params, wantParams)
	}
	wantFlops := float64(2 * (10*20 + 20*5))
	if spec.FlopsPerSample != wantFlops {
		t.Fatalf("flops %v want %v", spec.FlopsPerSample, wantFlops)
	}
	if spec.Layers != 2 {
		t.Fatalf("layers %d", spec.Layers)
	}
	if spec.TrainFlopsPerStep(4) != 3*wantFlops*4 {
		t.Fatal("train flops wrong")
	}
}

func TestGemmTimeRoofline(t *testing.T) {
	m := GPU2017(1)
	node := &m.Node
	tier := node.NearTier()
	// Huge square GEMM: compute bound — time ≈ flops/peak.
	const n = 8192
	tBig := GemmTime(node, tier, n, n, n, lowp.FP32)
	wantCompute := 2 * float64(n) * float64(n) * float64(n) / node.Peak(lowp.FP32)
	if math.Abs(tBig-wantCompute)/wantCompute > 1e-9 {
		t.Fatalf("large GEMM should be compute bound: %v vs %v", tBig, wantCompute)
	}
	// Skinny GEMV-like: bandwidth bound — time > flops/peak.
	tSkinny := GemmTime(node, tier, 1, 4096, 4096, lowp.FP32)
	computeOnly := 2 * 4096 * 4096 / node.Peak(lowp.FP32)
	if tSkinny <= computeOnly*1.5 {
		t.Fatalf("skinny GEMM should be bandwidth bound: %v vs %v", tSkinny, computeOnly)
	}
}

func TestRoofline(t *testing.T) {
	m := GPU2017(1)
	node := &m.Node
	tier := node.NearTier()
	ridge := RidgeIntensity(node, tier, lowp.FP32)
	// Below the ridge: bandwidth-limited (attainable < peak).
	if got := Roofline(node, tier, lowp.FP32, ridge/4); got >= node.Peak(lowp.FP32) {
		t.Fatal("below-ridge intensity reached peak")
	}
	// Above: compute-limited (attainable == peak).
	if got := Roofline(node, tier, lowp.FP32, ridge*4); got != node.Peak(lowp.FP32) {
		t.Fatal("above-ridge intensity not at peak")
	}
}

func TestLowerPrecisionFasterSteps(t *testing.T) {
	m := GPU2017(1)
	spec := MLPSpec("net", []int{4096, 4096, 4096, 1000})
	t64 := StepComputeTime(m, spec, 256, lowp.FP64)
	t32 := StepComputeTime(m, spec, 256, lowp.FP32)
	t16 := StepComputeTime(m, spec, 256, lowp.FP16)
	if !(t16 < t32 && t32 < t64) {
		t.Fatalf("precision speedup not monotone: %v %v %v", t64, t32, t16)
	}
}

func TestStepEnergyDecreasesWithPrecision(t *testing.T) {
	m := FutureDNN(1)
	spec := MLPSpec("net", []int{2048, 2048, 2048})
	e64 := StepComputeEnergy(m, spec, 128, lowp.FP64)
	e16 := StepComputeEnergy(m, spec, 128, lowp.FP16)
	if e16 >= e64 {
		t.Fatalf("fp16 energy %v not below fp64 %v", e16, e64)
	}
}

func TestCollectiveTimeShapes(t *testing.T) {
	f := Fabric{LatencySec: 1e-6, BandwidthBps: 10 * GB}
	const bytes = 100 * MB
	// Large payload: ring beats recursive doubling (bandwidth optimality).
	ring := CollectiveTime(f, comm.ARRing, 64, bytes)
	rd := CollectiveTime(f, comm.ARRecursiveDoubling, 64, bytes)
	if ring >= rd {
		t.Fatalf("large-payload ring (%v) should beat recursive doubling (%v)", ring, rd)
	}
	// Tiny payload: recursive doubling beats ring (latency optimality).
	ringS := CollectiveTime(f, comm.ARRing, 64, 64)
	rdS := CollectiveTime(f, comm.ARRecursiveDoubling, 64, 64)
	if rdS >= ringS {
		t.Fatalf("small-payload recursive doubling (%v) should beat ring (%v)", rdS, ringS)
	}
	// Rabenseifner is never worse than tree.
	rab := CollectiveTime(f, comm.ARRabenseifner, 64, bytes)
	tree := CollectiveTime(f, comm.ARTree, 64, bytes)
	if rab >= tree {
		t.Fatalf("rabenseifner (%v) should beat tree (%v)", rab, tree)
	}
	// P=1 is free.
	if CollectiveTime(f, comm.ARRing, 1, bytes) != 0 {
		t.Fatal("single-rank collective should cost nothing")
	}
}

// Property: collective time is monotone in payload and non-negative.
func TestQuickCollectiveMonotone(t *testing.T) {
	f := Fabric{LatencySec: 1e-6, BandwidthBps: 10 * GB}
	fn := func(seed uint64) bool {
		r := rng.New(seed)
		p := 2 + r.Intn(100)
		algo := comm.AllReduceAlgorithm(r.Intn(4))
		b1 := r.Uniform(1, 1e8)
		b2 := b1 * r.Uniform(1, 10)
		t1 := CollectiveTime(f, algo, p, b1)
		t2 := CollectiveTime(f, algo, p, b2)
		return t1 >= 0 && t2 >= t1
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDataParallelStrongScalingShape(t *testing.T) {
	// Strong scaling (fixed global batch): efficiency must decay with P.
	m := GPU2017(1024)
	spec := MLPSpec("net", []int{4096, 2048, 2048, 1000})
	const batch = 16384
	t1 := DataParallelStepTime(m, spec, 1, batch, lowp.FP32, lowp.FP32, comm.ARRing)
	t256 := DataParallelStepTime(m, spec, 256, batch, lowp.FP32, lowp.FP32, comm.ARRing)
	speedup := t1 / t256
	if speedup >= 256 {
		t.Fatalf("strong scaling superlinear: %v", speedup)
	}
	eff := speedup / 256
	if eff > 0.95 {
		t.Fatalf("strong scaling efficiency %v suspiciously perfect", eff)
	}
	if speedup < 1 {
		t.Fatalf("scaling made things slower at 256 ranks: %v", speedup)
	}
}

func TestWeakScalingBetterThanStrong(t *testing.T) {
	m := GPU2017(1024)
	spec := MLPSpec("net", []int{4096, 2048, 2048, 1000})
	const p = 256
	t1 := DataParallelStepTime(m, spec, 1, 64, lowp.FP32, lowp.FP32, comm.ARRing)
	// Weak: per-rank batch constant.
	tWeak := DataParallelStepTime(m, spec, p, 64*p, lowp.FP32, lowp.FP32, comm.ARRing)
	weakEff := t1 / tWeak
	// Strong: global batch constant at 64.
	tStrong := DataParallelStepTime(m, spec, p, 64, lowp.FP32, lowp.FP32, comm.ARRing)
	strongEff := (t1 / tStrong) / p
	if weakEff < strongEff {
		t.Fatalf("weak efficiency %v below strong %v", weakEff, strongEff)
	}
}

func TestModelParallelPipeline(t *testing.T) {
	m := GPU2017(64)
	spec := MLPSpec("big", []int{8192, 8192, 8192, 8192, 8192})
	// In the compute-bound regime more micro-batches amortise the pipeline
	// bubble: per-step time drops. (At tiny batches the per-micro-batch
	// weight streaming dominates instead and micro-batching hurts — also a
	// real effect, exercised by BenchmarkE6Fabric.)
	t1 := ModelParallelStepTime(m, spec, PipelineConfig{Stages: 4, MicroBatches: 1}, 1024, lowp.FP16)
	t8 := ModelParallelStepTime(m, spec, PipelineConfig{Stages: 4, MicroBatches: 8}, 1024, lowp.FP16)
	if t8 >= t1 {
		t.Fatalf("micro-batching did not help: 1mb=%v 8mb=%v", t1, t8)
	}
	// Beyond the group size the slower fabric must hurt.
	inGroup := ModelParallelStepTime(m, spec, PipelineConfig{Stages: 4, MicroBatches: 8}, 1024, lowp.FP16)
	crossGroup := ModelParallelStepTime(m, spec, PipelineConfig{Stages: 16, MicroBatches: 8}, 1024, lowp.FP16)
	_ = inGroup
	_ = crossGroup // shapes depend on spec; just ensure both are positive
	if inGroup <= 0 || crossGroup <= 0 {
		t.Fatal("non-positive pipeline time")
	}
}

func TestStageDataTime(t *testing.T) {
	m := GPU2017(1)
	pfs, _ := m.Node.TierByName("PFS")
	nvram, _ := m.Node.TierByName("NVRAM")
	dram, _ := m.Node.TierByName("DRAM")
	bytes := 100.0 * GB
	// Staging PFS->NVRAM is bottlenecked by PFS bandwidth.
	tStage := StageDataTime(pfs, nvram, bytes)
	if tStage < bytes/pfs.BandwidthBps {
		t.Fatal("staging faster than source bandwidth")
	}
	// NVRAM->DRAM is much faster than PFS->DRAM.
	if StageDataTime(nvram, dram, bytes) >= StageDataTime(pfs, dram, bytes) {
		t.Fatal("NVRAM staging not faster than PFS")
	}
}

func TestTierByName(t *testing.T) {
	m := CPU2017(1)
	if _, ok := m.Node.TierByName("DRAM"); !ok {
		t.Fatal("DRAM tier missing")
	}
	if _, ok := m.Node.TierByName("L9"); ok {
		t.Fatal("phantom tier found")
	}
}

func TestCollectiveEnergyPositive(t *testing.T) {
	f := Fabric{LatencySec: 1e-6, BandwidthBps: 10 * GB, EnergyPerByte: 30e-12}
	for _, algo := range []comm.AllReduceAlgorithm{comm.ARRing, comm.ARRecursiveDoubling, comm.ARTree, comm.ARRabenseifner} {
		if e := CollectiveEnergy(f, algo, 16, 1*MB); e <= 0 {
			t.Fatalf("%v energy %v", algo, e)
		}
	}
	if CollectiveEnergy(f, comm.ARRing, 1, 1*MB) != 0 {
		t.Fatal("single-rank energy nonzero")
	}
}
