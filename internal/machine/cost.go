package machine

import (
	"math"

	"repro/internal/comm"
	"repro/internal/lowp"
)

// ModelSpec abstracts a neural network for costing: total parameters, the
// flops of one sample's forward pass, and the activation footprint per
// sample. Backward ≈ 2x forward flops, so one training step costs
// 3 * FlopsPerSample * batch.
type ModelSpec struct {
	Name string
	// Params is the trainable parameter count.
	Params float64
	// FlopsPerSample is the forward-pass multiply-add count (x2 flops).
	FlopsPerSample float64
	// ActivationsPerSample is the per-sample activation element count
	// (forward activations retained for backward).
	ActivationsPerSample float64
	// Layers is the depth used for pipeline partitioning.
	Layers int
}

// MLPSpec builds a ModelSpec for a dense network with the given layer widths
// (including input and output).
func MLPSpec(name string, widths []int) ModelSpec {
	spec := ModelSpec{Name: name, Layers: len(widths) - 1}
	for i := 0; i+1 < len(widths); i++ {
		in, out := float64(widths[i]), float64(widths[i+1])
		spec.Params += in*out + out
		spec.FlopsPerSample += 2 * in * out
		spec.ActivationsPerSample += out
	}
	return spec
}

// TrainFlopsPerStep returns the flops of one optimizer step at the given
// batch size (forward + backward ≈ 3x forward).
func (s ModelSpec) TrainFlopsPerStep(batch int) float64 {
	return 3 * s.FlopsPerSample * float64(batch)
}

// BytesPerElement returns the storage width of precision p in bytes.
func BytesPerElement(p lowp.Precision) float64 { return float64(p.Bits()) / 8 }

// GemmTime returns the roofline execution time of an (m x k)·(k x n) GEMM at
// precision p with operands resident in the given tier: the max of the
// compute time at peak and the time to stream A, B and C once.
func GemmTime(n *Node, tier MemTier, m, k, nn int, p lowp.Precision) float64 {
	flops := 2 * float64(m) * float64(k) * float64(nn)
	bytes := BytesPerElement(p) * (float64(m)*float64(k) + float64(k)*float64(nn) + float64(m)*float64(nn))
	tc := flops / n.Peak(p)
	tm := tier.LatencySec + bytes/tier.BandwidthBps
	return math.Max(tc, tm)
}

// Roofline returns attainable flops/sec at the given arithmetic intensity
// (flops per byte) for a node computing from the given tier.
func Roofline(n *Node, tier MemTier, p lowp.Precision, intensity float64) float64 {
	return math.Min(n.Peak(p), intensity*tier.BandwidthBps)
}

// RidgeIntensity returns the arithmetic intensity at which the roofline
// transitions from bandwidth-bound to compute-bound.
func RidgeIntensity(n *Node, tier MemTier, p lowp.Precision) float64 {
	return n.Peak(p) / tier.BandwidthBps
}

// StepComputeTime returns one training step's compute time for spec at the
// given per-node batch and precision, including streaming weights and
// activations through the near tier.
func StepComputeTime(m *Machine, spec ModelSpec, perNodeBatch int, p lowp.Precision) float64 {
	node := &m.Node
	tier := node.NearTier()
	flops := spec.TrainFlopsPerStep(perNodeBatch)
	// Weight traffic: read params fwd + read params bwd + write grads +
	// optimizer read/write ≈ 5 passes; activation traffic: write fwd, read bwd.
	bytes := BytesPerElement(p) * (5*spec.Params +
		2*spec.ActivationsPerSample*float64(perNodeBatch))
	tc := flops / node.Peak(p)
	tm := bytes / tier.BandwidthBps
	return math.Max(tc, tm)
}

// StepComputeEnergy returns the energy of one training step's compute.
func StepComputeEnergy(m *Machine, spec ModelSpec, perNodeBatch int, p lowp.Precision) float64 {
	node := &m.Node
	tier := node.NearTier()
	flops := spec.TrainFlopsPerStep(perNodeBatch)
	bytes := BytesPerElement(p) * (5*spec.Params +
		2*spec.ActivationsPerSample*float64(perNodeBatch))
	e := flops*node.EnergyPerFlop[p] + bytes*tier.EnergyPerByte
	return e
}

// CollectiveTime returns the α-β cost of an allreduce of `bytes` payload
// over p ranks on fabric f using the given algorithm. Formulas follow
// Thakur/Rabenseifner's standard analysis.
func CollectiveTime(f Fabric, algo comm.AllReduceAlgorithm, p int, bytes float64) float64 {
	if p <= 1 {
		return 0
	}
	alpha := f.LatencySec
	beta := 1 / f.BandwidthBps
	n := bytes
	fp := float64(p)
	logp := math.Ceil(math.Log2(fp))
	switch algo {
	case comm.ARRing:
		// 2(p-1) steps of α + (n/p)β.
		return 2 * (fp - 1) * (alpha + n/fp*beta)
	case comm.ARRecursiveDoubling:
		// log p rounds exchanging full n.
		return logp * (alpha + n*beta)
	case comm.ARTree:
		// Reduce + broadcast, each log p rounds of full n.
		return 2 * logp * (alpha + n*beta)
	case comm.ARRabenseifner:
		// 2 log p α + 2 (p-1)/p n β.
		return 2*logp*alpha + 2*(fp-1)/fp*n*beta
	default:
		panic("machine: unknown collective algorithm")
	}
}

// CollectiveEnergy returns the fabric energy of an allreduce: total bytes
// moved on the wire times per-byte energy.
func CollectiveEnergy(f Fabric, algo comm.AllReduceAlgorithm, p int, bytes float64) float64 {
	if p <= 1 {
		return 0
	}
	fp := float64(p)
	logp := math.Ceil(math.Log2(fp))
	var wireBytes float64
	switch algo {
	case comm.ARRing, comm.ARRabenseifner:
		wireBytes = 2 * (fp - 1) / fp * bytes * fp // per rank * ranks
	case comm.ARRecursiveDoubling:
		wireBytes = logp * bytes * fp
	case comm.ARTree:
		wireBytes = 2 * (fp - 1) * bytes
	}
	return wireBytes * f.EnergyPerByte
}

// DataParallelStepTime returns one synchronous data-parallel step's time on
// machine m with p replicas, global batch `globalBatch`, gradients reduced
// with algo at precision gradPrec.
func DataParallelStepTime(m *Machine, spec ModelSpec, p, globalBatch int,
	prec, gradPrec lowp.Precision, algo comm.AllReduceAlgorithm) float64 {
	perNode := globalBatch / p
	if perNode < 1 {
		perNode = 1
	}
	compute := StepComputeTime(m, spec, perNode, prec)
	gradBytes := spec.Params * BytesPerElement(gradPrec)
	comms := CollectiveTime(m.FabricFor(p), algo, p, gradBytes)
	return compute + comms
}

// PipelineConfig describes a model-parallel pipeline split.
type PipelineConfig struct {
	Stages       int // pipeline depth (number of node groups)
	MicroBatches int // micro-batches in flight per step
}

// ModelParallelStepTime returns one step's time for a layer-partitioned
// pipeline: per-stage compute plus activation handoffs, with the standard
// (M + S - 1) pipeline fill formula.
func ModelParallelStepTime(m *Machine, spec ModelSpec, cfg PipelineConfig,
	batch int, p lowp.Precision) float64 {
	s := cfg.Stages
	if s < 1 {
		s = 1
	}
	mb := cfg.MicroBatches
	if mb < 1 {
		mb = 1
	}
	microBatch := batch / mb
	if microBatch < 1 {
		microBatch = 1
	}
	// Each stage computes 1/s of the model on each micro-batch.
	stageSpec := spec
	stageSpec.Params /= float64(s)
	stageSpec.FlopsPerSample /= float64(s)
	stageSpec.ActivationsPerSample /= float64(s)
	stageCompute := StepComputeTime(m, stageSpec, microBatch, p)
	// Activation handoff between stages: boundary activations for the
	// micro-batch, forward and backward.
	fabric := m.FabricFor(s)
	handoffBytes := BytesPerElement(p) * spec.ActivationsPerSample /
		float64(spec.Layers) * float64(microBatch)
	handoff := 2 * fabric.PointToPoint(handoffBytes)
	stageTime := stageCompute + handoff
	return float64(mb+s-1) * stageTime
}

// StageDataTime returns the time to move a dataset of the given bytes from
// one tier to another, bottlenecked by the slower side.
func StageDataTime(from, to MemTier, bytes float64) float64 {
	bw := math.Min(from.BandwidthBps, to.BandwidthBps)
	return from.LatencySec + to.LatencySec + bytes/bw
}
