// Package machine is the parameterised HPC machine model used to convert
// workload descriptions (GEMM shapes, model sizes, collective traffic,
// dataset volumes) into simulated time and energy.
//
// The paper argues about machine *shape* — compute density per precision,
// high-bandwidth memory near the ALUs, fabric bandwidth for model-parallel
// groups, NVRAM for training data. This package encodes each of those axes
// as a parameter so the experiments can sweep them: nodes have per-precision
// peak rates and a hierarchy of memory tiers, fabrics follow the α-β
// (latency-bandwidth) model, and standard roofline / collective-cost
// formulas supply timings. Absolute numbers are calibrated to ~2017-era
// hardware; the experiments only rely on ratios.
package machine

import (
	"fmt"

	"repro/internal/lowp"
)

// Const unit helpers.
const (
	KB = 1e3
	MB = 1e6
	GB = 1e9
	TB = 1e12

	GFlops = 1e9
	TFlops = 1e12

	Micro = 1e-6
	Nano  = 1e-9
)

// MemTier is one level of a node's memory hierarchy.
type MemTier struct {
	Name string
	// BandwidthBps is sustainable bandwidth in bytes/second.
	BandwidthBps float64
	// LatencySec is access latency for the first byte.
	LatencySec float64
	// CapacityBytes is tier capacity (use Inf for a parallel file system).
	CapacityBytes float64
	// EnergyPerByte is data-motion energy in joules/byte.
	EnergyPerByte float64
}

// Node models one compute node (or accelerator).
type Node struct {
	Name string
	// PeakFlops maps precision to peak arithmetic rate (flops/sec).
	PeakFlops map[lowp.Precision]float64
	// Tiers is the memory hierarchy ordered nearest-first (e.g. HBM,
	// DRAM, NVRAM). Tier 0 feeds the arithmetic units.
	Tiers []MemTier
	// EnergyPerFlop maps precision to arithmetic energy (joules/flop).
	EnergyPerFlop map[lowp.Precision]float64
	// IdlePower is the node's static power draw in watts.
	IdlePower float64
}

// Peak returns the node's peak rate at precision p, falling back to the
// nearest wider precision when the node has no native rate for p.
func (n *Node) Peak(p lowp.Precision) float64 {
	if r, ok := n.PeakFlops[p]; ok && r > 0 {
		return r
	}
	// Fall back widest-first: int8 -> fp16 -> bf16 -> fp32 -> fp64.
	order := []lowp.Precision{lowp.INT8, lowp.FP16, lowp.BF16, lowp.FP32, lowp.FP64}
	idx := 0
	for i, q := range order {
		if q == p {
			idx = i
			break
		}
	}
	for i := idx + 1; i < len(order); i++ {
		if r, ok := n.PeakFlops[order[i]]; ok && r > 0 {
			return r
		}
	}
	panic(fmt.Sprintf("machine: node %s has no peak rate", n.Name))
}

// NearTier returns the tier feeding the ALUs (tier 0).
func (n *Node) NearTier() MemTier { return n.Tiers[0] }

// TierByName finds a tier by name.
func (n *Node) TierByName(name string) (MemTier, bool) {
	for _, t := range n.Tiers {
		if t.Name == name {
			return t, true
		}
	}
	return MemTier{}, false
}

// Fabric is an α-β interconnect model.
type Fabric struct {
	Name string
	// LatencySec is the per-message latency α.
	LatencySec float64
	// BandwidthBps is the per-link bandwidth (1/β) in bytes/second.
	BandwidthBps float64
	// EnergyPerByte is joules per byte moved across the fabric.
	EnergyPerByte float64
}

// PointToPoint returns the time to move `bytes` between two endpoints.
func (f Fabric) PointToPoint(bytes float64) float64 {
	return f.LatencySec + bytes/f.BandwidthBps
}

// Machine is a cluster: homogeneous nodes on a two-level fabric
// (fast within groups of GroupSize nodes, slower across groups) — the
// "high-bandwidth communication fabric between (perhaps modest scale)
// groups of processors" structure the paper calls for.
type Machine struct {
	Name        string
	Nodes       int
	Node        Node
	GroupSize   int    // nodes per tightly-coupled group (0 = all one group)
	GroupFabric Fabric // intra-group links
	InterFabric Fabric // inter-group links
}

// FabricFor returns the effective fabric for a communicator of p ranks:
// the fast group fabric if the communicator fits in a group, otherwise the
// inter-group fabric.
func (m *Machine) FabricFor(p int) Fabric {
	if m.GroupSize <= 0 || p <= m.GroupSize {
		return m.GroupFabric
	}
	return m.InterFabric
}

// Validate sanity-checks the configuration.
func (m *Machine) Validate() error {
	if m.Nodes <= 0 {
		return fmt.Errorf("machine: %s has %d nodes", m.Name, m.Nodes)
	}
	if len(m.Node.Tiers) == 0 {
		return fmt.Errorf("machine: %s node has no memory tiers", m.Name)
	}
	if len(m.Node.PeakFlops) == 0 {
		return fmt.Errorf("machine: %s node has no peak rates", m.Name)
	}
	return nil
}

// ---- Presets ----------------------------------------------------------

// CPU2017 models a 2017 dual-socket Xeon node on a fat-tree cluster.
func CPU2017(nodes int) *Machine {
	return &Machine{
		Name:  "cpu2017",
		Nodes: nodes,
		Node: Node{
			Name: "xeon",
			PeakFlops: map[lowp.Precision]float64{
				lowp.FP64: 1.0 * TFlops,
				lowp.FP32: 2.0 * TFlops,
				// No native half/int8 speedup on 2017 Xeons.
				lowp.BF16: 2.0 * TFlops,
				lowp.FP16: 2.0 * TFlops,
				lowp.INT8: 4.0 * TFlops,
			},
			Tiers: []MemTier{
				{Name: "DRAM", BandwidthBps: 120 * GB, LatencySec: 90 * Nano,
					CapacityBytes: 192 * GB, EnergyPerByte: 20e-12},
				{Name: "NVRAM", BandwidthBps: 6 * GB, LatencySec: 10 * Micro,
					CapacityBytes: 1.5 * TB, EnergyPerByte: 60e-12},
				{Name: "PFS", BandwidthBps: 1 * GB, LatencySec: 5e-3,
					CapacityBytes: 1e18, EnergyPerByte: 200e-12},
			},
			EnergyPerFlop: map[lowp.Precision]float64{
				lowp.FP64: 60e-12, lowp.FP32: 30e-12,
				lowp.BF16: 30e-12, lowp.FP16: 30e-12, lowp.INT8: 10e-12,
			},
			IdlePower: 200,
		},
		GroupSize:   16,
		GroupFabric: Fabric{Name: "edr-group", LatencySec: 1 * Micro, BandwidthBps: 12 * GB, EnergyPerByte: 30e-12},
		InterFabric: Fabric{Name: "edr-global", LatencySec: 2 * Micro, BandwidthBps: 6 * GB, EnergyPerByte: 40e-12},
	}
}

// GPU2017 models a 2017 GPU (P100-class) node: HBM close to the ALUs and
// native reduced-precision rates.
func GPU2017(nodes int) *Machine {
	return &Machine{
		Name:  "gpu2017",
		Nodes: nodes,
		Node: Node{
			Name: "p100",
			PeakFlops: map[lowp.Precision]float64{
				lowp.FP64: 5 * TFlops,
				lowp.FP32: 10 * TFlops,
				lowp.BF16: 20 * TFlops,
				lowp.FP16: 20 * TFlops,
				lowp.INT8: 40 * TFlops,
			},
			Tiers: []MemTier{
				{Name: "HBM", BandwidthBps: 700 * GB, LatencySec: 300 * Nano,
					CapacityBytes: 16 * GB, EnergyPerByte: 7e-12},
				{Name: "DRAM", BandwidthBps: 16 * GB, LatencySec: 1 * Micro,
					CapacityBytes: 256 * GB, EnergyPerByte: 25e-12},
				{Name: "NVRAM", BandwidthBps: 6 * GB, LatencySec: 10 * Micro,
					CapacityBytes: 1.5 * TB, EnergyPerByte: 60e-12},
				{Name: "PFS", BandwidthBps: 1 * GB, LatencySec: 5e-3,
					CapacityBytes: 1e18, EnergyPerByte: 200e-12},
			},
			EnergyPerFlop: map[lowp.Precision]float64{
				lowp.FP64: 20e-12, lowp.FP32: 10e-12,
				lowp.BF16: 5e-12, lowp.FP16: 5e-12, lowp.INT8: 2e-12,
			},
			IdlePower: 300,
		},
		GroupSize:   4, // NVLink-style island
		GroupFabric: Fabric{Name: "nvlink", LatencySec: 0.5 * Micro, BandwidthBps: 80 * GB, EnergyPerByte: 10e-12},
		InterFabric: Fabric{Name: "edr", LatencySec: 2 * Micro, BandwidthBps: 12 * GB, EnergyPerByte: 40e-12},
	}
}

// FutureDNN models the machine the paper advocates: very high half-precision
// density, HBM adjacent to the ALUs, fast modest-scale groups, NVRAM per
// node for training data.
func FutureDNN(nodes int) *Machine {
	return &Machine{
		Name:  "futureDNN",
		Nodes: nodes,
		Node: Node{
			Name: "dnn-asic",
			PeakFlops: map[lowp.Precision]float64{
				lowp.FP64: 10 * TFlops,
				lowp.FP32: 50 * TFlops,
				lowp.BF16: 200 * TFlops,
				lowp.FP16: 200 * TFlops,
				lowp.INT8: 400 * TFlops,
			},
			Tiers: []MemTier{
				{Name: "HBM", BandwidthBps: 3000 * GB, LatencySec: 150 * Nano,
					CapacityBytes: 64 * GB, EnergyPerByte: 3e-12},
				{Name: "DRAM", BandwidthBps: 100 * GB, LatencySec: 500 * Nano,
					CapacityBytes: 512 * GB, EnergyPerByte: 20e-12},
				{Name: "NVRAM", BandwidthBps: 25 * GB, LatencySec: 5 * Micro,
					CapacityBytes: 8 * TB, EnergyPerByte: 40e-12},
				{Name: "PFS", BandwidthBps: 2 * GB, LatencySec: 5e-3,
					CapacityBytes: 1e18, EnergyPerByte: 200e-12},
			},
			EnergyPerFlop: map[lowp.Precision]float64{
				lowp.FP64: 15e-12, lowp.FP32: 6e-12,
				lowp.BF16: 1.5e-12, lowp.FP16: 1.5e-12, lowp.INT8: 0.6e-12,
			},
			IdlePower: 350,
		},
		GroupSize:   8,
		GroupFabric: Fabric{Name: "group-fabric", LatencySec: 0.3 * Micro, BandwidthBps: 300 * GB, EnergyPerByte: 5e-12},
		InterFabric: Fabric{Name: "global-fabric", LatencySec: 1.5 * Micro, BandwidthBps: 25 * GB, EnergyPerByte: 30e-12},
	}
}

// Presets returns all built-in machines at the given node count.
func Presets(nodes int) []*Machine {
	return []*Machine{CPU2017(nodes), GPU2017(nodes), FutureDNN(nodes)}
}
