package serve

// Client-side retries with a token-bucket budget. Naive retry-on-shed is how
// a brownout becomes an outage: every shed request comes straight back,
// offered load doubles exactly when capacity halved, and the retry storm
// keeps the queue pinned full (the metastable failure mode). The Retrier
// bounds that amplification the way production RPC stacks do: retries spend
// from a token bucket that only successes refill, so during a brownout the
// bucket drains, further retries are denied, and total offered load stays
// within a constant factor of demand no matter how hard the server sheds.
//
// Amplification bound: every retry costs one token, the bucket starts with
// BudgetBurst tokens, and each success earns BudgetRatio. So across any
// workload of N requests with S successes,
//
//	attempts  <=  N + BudgetBurst + BudgetRatio*S
//
// which the chaos suite asserts against a server wedged into permanent
// overload. Backoff between attempts is capped-exponential with seeded
// jitter on the server's Clock, so the suite is sleep-free and
// deterministic.

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/rng"
)

// RetryPolicy parameterises a Retrier. Zero fields take the defaults noted.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per request, including the
	// first (default 3).
	MaxAttempts int
	// BaseBackoff is the delay before the first retry; attempt k waits
	// BaseBackoff*2^(k-1), capped at MaxBackoff (defaults 1ms, 50ms).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Jitter spreads each backoff uniformly over [1-Jitter, 1+Jitter] times
	// its nominal value (default 0.5, clamped to [0, 1]). Seeded: the same
	// seed yields the same delays.
	Jitter float64
	// BudgetRatio is the fraction of a retry token each success earns
	// (default 0.1: one retry per ten successes at steady state).
	BudgetRatio float64
	// BudgetBurst is the bucket capacity and initial balance (default 10).
	BudgetBurst float64
}

func (p *RetryPolicy) withDefaults() {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 50 * time.Millisecond
	}
	if p.Jitter == 0 {
		p.Jitter = 0.5
	}
	if p.Jitter < 0 {
		p.Jitter = 0
	}
	if p.Jitter > 1 {
		p.Jitter = 1
	}
	if p.BudgetRatio <= 0 {
		p.BudgetRatio = 0.1
	}
	if p.BudgetBurst <= 0 {
		p.BudgetBurst = 10
	}
}

// RetrierStats snapshots a Retrier's accounting.
type RetrierStats struct {
	// Attempts counts every submit, first tries and retries alike. Retries
	// counts budget-approved re-submits; Denied counts retries the empty
	// bucket refused (the request then failed with the server's error).
	Attempts int64
	Retries  int64
	Denied   int64
	// Tokens is the current bucket balance.
	Tokens float64
}

// Retrier is a budgeted retrying client for one Server. Safe for concurrent
// use; all goroutines share one budget, which is the point — the budget caps
// the fleet's aggregate amplification, not each caller's.
type Retrier struct {
	s   *Server
	pol RetryPolicy

	mu      sync.Mutex
	r       *rng.Stream
	tokens  float64
	att     int64
	retries int64
	denied  int64
}

// NewRetrier wraps s with a seeded retry budget.
func NewRetrier(s *Server, pol RetryPolicy, seed uint64) *Retrier {
	pol.withDefaults()
	return &Retrier{
		s:      s,
		pol:    pol,
		r:      rng.New(seed).Split("serve-retry"),
		tokens: pol.BudgetBurst,
	}
}

// retryable reports whether err is worth retrying: only shed load is — a
// deadline miss is stale, a closed server is gone, bad input stays bad.
func retryable(err error) bool { return err == ErrOverloaded }

// Do submits one request through the budgeted retry loop and returns the
// final Result: the first success, or the last error once attempts or budget
// run out.
func (rt *Retrier) Do(x []float64, deadline time.Time) Result {
	// One trace for the whole retry chain: every attempt submits with the
	// same context, so exemplars and flight events from a third attempt
	// still point at the logical request, not just the final submit.
	c := rt.s.obs.NewTrace()
	var res Result
	for attempt := 0; ; attempt++ {
		rt.mu.Lock()
		rt.att++
		rt.mu.Unlock()
		if attempt > 0 {
			rt.s.obs.RecordFlight("retry", c, fmt.Sprintf("attempt=%d", attempt+1))
		}
		res = <-rt.s.SubmitCtx(x, deadline, c)
		if res.Err == nil {
			rt.mu.Lock()
			rt.tokens += rt.pol.BudgetRatio
			if rt.tokens > rt.pol.BudgetBurst {
				rt.tokens = rt.pol.BudgetBurst
			}
			rt.mu.Unlock()
			return res
		}
		if !retryable(res.Err) || attempt+1 >= rt.pol.MaxAttempts {
			return res
		}
		rt.mu.Lock()
		if rt.tokens < 1 {
			rt.denied++
			rt.mu.Unlock()
			rt.s.obs.Count("serve.retry_denied", 1)
			return res // budget exhausted: shed stays shed
		}
		rt.tokens--
		rt.retries++
		d := rt.backoffLocked(attempt)
		rt.mu.Unlock()
		rt.s.obs.Count("serve.retries", 1)
		<-rt.s.clock.After(d)
	}
}

// backoffLocked returns the jittered, capped-exponential delay before retry
// number attempt+1 (attempt is 0-based).
func (rt *Retrier) backoffLocked(attempt int) time.Duration {
	d := rt.pol.BaseBackoff << attempt
	if d <= 0 || d > rt.pol.MaxBackoff { // <=0: the shift overflowed
		d = rt.pol.MaxBackoff
	}
	f := rt.r.Uniform(1-rt.pol.Jitter, 1+rt.pol.Jitter)
	return time.Duration(float64(d) * f)
}

// Stats snapshots the retrier's counters and bucket balance.
func (rt *Retrier) Stats() RetrierStats {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return RetrierStats{Attempts: rt.att, Retries: rt.retries, Denied: rt.denied, Tokens: rt.tokens}
}
