package serve

import (
	"container/heap"
	"fmt"
	"math"
	"strconv"
	"time"

	"repro/internal/data"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/rng"
)

// This file is the deterministic load-test harness: a discrete-event
// simulation of the serving pipeline on virtual time. It drives the same
// batchPolicy state machine the concurrent server runs, with the same
// stage caps (admission queue, pool backlog, replica count), so the batch
// compositions and shedding behaviour it reports are the production
// policy's — but arrivals, service times, and therefore every latency in
// the report are pure functions of the seed. Identical seeds give
// bit-identical reports, which is what lets CI assert p99s without flaking.
//
// The replica pool is modelled as R servers draining one shared FIFO; with
// work stealing, per-replica queues behave identically (an idle replica
// never sits next to a non-empty queue), so the collapse loses nothing.

// ServiceModel is the deterministic cost of executing one batch on a
// replica: Base + PerSample*batch, optionally scaled by seeded lognormal
// jitter. It stands in for the real forward pass the way the machine model
// stands in for real accelerators — the shapes (batching amortises Base)
// are what matter.
type ServiceModel struct {
	// Base is the fixed per-batch overhead (dispatch, tensor assembly,
	// kernel launch analogue).
	Base time.Duration
	// PerSample is the marginal cost of one more request in the batch.
	PerSample time.Duration
	// JitterSigma, when positive, multiplies each service time by a
	// lognormal factor with the given sigma (median 1). Seeded, so still
	// deterministic.
	JitterSigma float64
}

// DefaultServiceModel is sized like a small MLP forward on one core:
// batching amortises a dominant fixed overhead.
func DefaultServiceModel() ServiceModel {
	return ServiceModel{Base: 2 * time.Millisecond, PerSample: 250 * time.Microsecond}
}

// batchTime returns the service time for a batch of n requests.
func (m ServiceModel) batchTime(n int, r *rng.Stream) time.Duration {
	d := float64(m.Base) + float64(m.PerSample)*float64(n)
	if m.JitterSigma > 0 {
		d *= r.LogNormal(0, m.JitterSigma)
	}
	return time.Duration(d)
}

// CapacityRPS returns the analytic saturation throughput of the modelled
// pool: replicas * maxBatch / batchTime(maxBatch), ignoring jitter. The
// load-test "knee" sits at this rate.
func (m ServiceModel) CapacityRPS(replicas, maxBatch int) float64 {
	bt := float64(m.Base) + float64(m.PerSample)*float64(maxBatch)
	return float64(replicas) * float64(maxBatch) / (bt / float64(time.Second))
}

// LoadConfig describes one deterministic load test.
type LoadConfig struct {
	// Requests is the total number of requests to issue.
	Requests int
	// Closed selects the generator: false = open loop (seeded Poisson
	// arrivals at RatePerSec, shed when overloaded), true = closed loop
	// (Clients concurrent callers, each blocking for its response and then
	// thinking for an exponential ThinkMean before the next call).
	Closed bool
	// RatePerSec is the open-loop offered load.
	RatePerSec float64
	// Clients and ThinkMean parameterise the closed loop.
	Clients   int
	ThinkMean time.Duration
	// Deadline, when positive, is each request's completion deadline.
	Deadline time.Duration

	// Server shape (same semantics as Config).
	Replicas          int
	MaxBatch          int
	MaxLinger         time.Duration
	QueueCap          int
	MaxPendingBatches int

	// Service is the replica cost model (zero value = DefaultServiceModel).
	Service ServiceModel
	// Seed makes the run reproducible bit-for-bit.
	Seed uint64

	// DegradeFactor > 1 makes replica DegradeReplica a gray straggler: every
	// batch it serves takes DegradeFactor times the modelled service time
	// (fault.DegradedWorker in simulation form). <= 1 disables.
	DegradeFactor  float64
	DegradeReplica int
	// HedgeAfter > 0 enables hedged execution: a request still unanswered
	// this long after admission is duplicated onto a free replica, first
	// completion wins, and the loser is cancelled before service when
	// possible. 0 disables.
	HedgeAfter time.Duration

	// Phases, when non-empty, replaces RatePerSec with a piecewise-constant
	// open-loop rate profile (diurnal ramp, flash crowd); Requests is then
	// derived from the profile instead of configured. Open loop only.
	Phases []LoadPhase
	// SLO, when non-empty, attaches an SLO monitor to the run: availability
	// objectives count completed vs shed+expired, latency objectives judge
	// each completion against their threshold. Burn-rate rules (SLORules,
	// default obs.DefaultBurnRules) are evaluated every SLOTick of virtual
	// time (default 250ms), so the alert timeline in the report is a pure
	// function of the seed.
	SLO      []obs.Objective
	SLORules []obs.BurnRule
	SLOTick  time.Duration
	// Obs, when enabled, receives the simulator's request stream: the
	// serve.latency.hist histogram (with per-arrival trace-id exemplars) and
	// the serve.submitted/completed/shed/deadline_missed counters. This is
	// how a simulated campaign exercises the same exposition path as the
	// live server.
	Obs *obs.Session

	// Rollout, when non-nil, deploys a candidate model version mid-run and
	// runs the versioned-rollout controller on the control tick: canary
	// routing, shadow duplication, and SLO-breach auto-rollback all happen
	// inside the simulation, so time-to-detect and time-to-rollback are pure
	// functions of the seed.
	Rollout *RolloutSim
	// Autoscale, when non-nil, runs the replica autoscaler on the control
	// tick: the pool grows and shrinks between Autoscale.Min and
	// Autoscale.Max, starting from Replicas.
	Autoscale *AutoscaleConfig
	// Cache, when non-nil, puts an inference result cache (doorkeeper-LRU
	// with TTL admission, the serving reuse of data.Cache) in front of the
	// batcher: requests draw skewed keys, hits answer instantly without
	// touching a replica.
	Cache *CacheSimConfig
	// CtrlTick is the control-plane cadence for Rollout and Autoscale
	// evaluation (default 250ms).
	CtrlTick time.Duration
}

// RolloutSim scripts one versioned deployment inside a load test.
type RolloutSim struct {
	// Config parameterises the rollout controller (stages, shadow phase,
	// SLO, burn rules).
	Config RolloutConfig
	// DeployAt is the virtual time at which the candidate deploys.
	DeployAt time.Duration
	// Candidate is what is wrong with the candidate version (zero value =
	// a healthy deploy that should promote).
	Candidate fault.VersionFault
}

// CacheSimConfig models the inference result cache and the key locality of
// the request stream.
type CacheSimConfig struct {
	// CapacityEntries is how many results the cache holds.
	CapacityEntries int
	// TTL is each entry's lifetime on the virtual clock (results go stale).
	TTL time.Duration
	// Keys is the number of distinct request keys in the workload.
	Keys int
	// Skew shapes key popularity: 0 = uniform, larger = hotter head (key is
	// drawn as floor(Keys * u^(1+Skew))).
	Skew float64
	// Doorkeeper, when positive, uses the doorkeeper-LRU admission policy
	// with this many tracked first-sightings; 0 = plain LRU.
	Doorkeeper int
}

// LoadPhase is one segment of a phased open-loop load profile.
type LoadPhase struct {
	// Duration is the phase length in virtual time.
	Duration time.Duration
	// RatePerSec is the offered load during the phase (0 = idle gap).
	RatePerSec float64
}

func (c *LoadConfig) withDefaults() error {
	if len(c.Phases) > 0 {
		if c.Closed {
			return fmt.Errorf("serve: phased load profiles are open loop only")
		}
		for i, ph := range c.Phases {
			if ph.Duration <= 0 {
				return fmt.Errorf("serve: phase %d needs Duration > 0", i)
			}
			if ph.RatePerSec < 0 {
				return fmt.Errorf("serve: phase %d has negative rate", i)
			}
		}
	} else if c.Requests <= 0 {
		return fmt.Errorf("serve: load test needs Requests > 0")
	}
	if c.Closed {
		if c.Clients <= 0 {
			c.Clients = 8
		}
	} else if c.RatePerSec <= 0 && len(c.Phases) == 0 {
		return fmt.Errorf("serve: open-loop load test needs RatePerSec > 0")
	}
	if len(c.SLO) > 0 && c.SLOTick <= 0 {
		c.SLOTick = 250 * time.Millisecond
	}
	if c.Replicas <= 0 {
		c.Replicas = 1
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8
	}
	if c.MaxLinger <= 0 {
		c.MaxLinger = 2 * time.Millisecond
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 64
	}
	if c.MaxPendingBatches <= 0 {
		c.MaxPendingBatches = 2 * c.Replicas
	}
	if c.Service == (ServiceModel{}) {
		c.Service = DefaultServiceModel()
	}
	if c.DegradeFactor > 1 && (c.DegradeReplica < 0 || c.DegradeReplica >= c.Replicas) {
		return fmt.Errorf("serve: degraded replica %d outside fleet of %d", c.DegradeReplica, c.Replicas)
	}
	if c.HedgeAfter < 0 {
		return fmt.Errorf("serve: negative hedge budget %v", c.HedgeAfter)
	}
	if c.Rollout != nil {
		if err := c.Rollout.Config.withDefaults(); err != nil {
			return err
		}
		if c.Rollout.DeployAt < 0 {
			return fmt.Errorf("serve: negative rollout deploy time %v", c.Rollout.DeployAt)
		}
		if err := c.Rollout.Candidate.Validate(); err != nil {
			return err
		}
	}
	if c.Autoscale != nil {
		if err := c.Autoscale.withDefaults(); err != nil {
			return err
		}
	}
	if c.Cache != nil {
		if c.Cache.CapacityEntries <= 0 || c.Cache.Keys <= 0 {
			return fmt.Errorf("serve: cache sim needs CapacityEntries > 0 and Keys > 0")
		}
		if c.Cache.TTL <= 0 {
			return fmt.Errorf("serve: cache sim needs TTL > 0")
		}
		if c.Cache.Skew < 0 {
			return fmt.Errorf("serve: negative cache key skew %g", c.Cache.Skew)
		}
	}
	if (c.Rollout != nil || c.Autoscale != nil) && c.CtrlTick <= 0 {
		c.CtrlTick = 250 * time.Millisecond
	}
	return nil
}

// LoadReport summarises a load test. All fields are deterministic functions
// of the LoadConfig (see BENCH_serve.json for a committed example).
type LoadReport struct {
	Mode          string  `json:"mode"`
	Seed          uint64  `json:"seed"`
	Requests      int     `json:"requests"`
	Completed     int     `json:"completed"`
	Shed          int     `json:"shed"`
	Expired       int     `json:"expired"`
	Batches       int     `json:"batches"`
	MeanBatch     float64 `json:"mean_batch"`
	OfferedRPS    float64 `json:"offered_rps"`
	CapacityRPS   float64 `json:"capacity_rps"`
	ThroughputRPS float64 `json:"throughput_rps"`
	WallSeconds   float64 `json:"wall_seconds"`

	LatencyMeanMs float64 `json:"latency_mean_ms"`
	LatencyP50Ms  float64 `json:"latency_p50_ms"`
	LatencyP95Ms  float64 `json:"latency_p95_ms"`
	LatencyP99Ms  float64 `json:"latency_p99_ms"`
	LatencyMaxMs  float64 `json:"latency_max_ms"`

	Replicas   int     `json:"replicas"`
	MaxBatch   int     `json:"max_batch"`
	LingerMs   float64 `json:"linger_ms"`
	QueueCap   int     `json:"queue_cap"`
	DeadlineMs float64 `json:"deadline_ms,omitempty"`

	// Gray-failure fields (omitted when the corresponding knob is off, so
	// pre-existing committed reports stay byte-identical).
	DegradeFactor  float64 `json:"degrade_factor,omitempty"`
	DegradeReplica int     `json:"degrade_replica,omitempty"`
	HedgeAfterMs   float64 `json:"hedge_after_ms,omitempty"`
	// Hedged counts duplicated requests; HedgeWins how many were answered by
	// the duplicate copy; HedgeCancelled copies dropped before service;
	// HedgeWasted copies serviced in full but beaten to the answer.
	Hedged         int `json:"hedged,omitempty"`
	HedgeWins      int `json:"hedge_wins,omitempty"`
	HedgeCancelled int `json:"hedge_cancelled,omitempty"`
	HedgeWasted    int `json:"hedge_wasted,omitempty"`
	// DuplicatedWorkPct is serviced duplicate copies as a percentage of
	// completed requests — the price paid for the hedged tail.
	DuplicatedWorkPct float64 `json:"duplicated_work_pct,omitempty"`

	// Phased-profile and SLO fields (omitted when the corresponding config
	// is off, so pre-existing committed reports stay byte-identical).
	Phases    int              `json:"phases,omitempty"`
	SLOStatus []obs.SLOStatus  `json:"slo,omitempty"`
	SLOAlerts []obs.AlertEvent `json:"slo_alerts,omitempty"`

	// Rollout fields (omitted when LoadConfig.Rollout is nil).
	RolloutState  string         `json:"rollout_state,omitempty"`
	RolloutEvents []RolloutEvent `json:"rollout_events,omitempty"`
	// CanaryServed counts live (non-shadow) requests answered by the
	// candidate; CanaryErrors how many of those the candidate got wrong.
	CanaryServed int `json:"canary_served,omitempty"`
	CanaryErrors int `json:"canary_errors,omitempty"`
	// BadVersionPct is CanaryServed as a percentage of all answered live
	// requests — the headline "how much traffic did the bad push touch".
	BadVersionPct float64 `json:"bad_version_pct,omitempty"`
	// ShadowServed counts duplicated shadow requests the candidate answered;
	// ShadowMismatches how many disagreed with the baseline (modelled as the
	// candidate's seeded error draw).
	ShadowServed     int `json:"shadow_served,omitempty"`
	ShadowMismatches int `json:"shadow_mismatches,omitempty"`
	// TimeToDetectS is deploy → first page-severity burn on the canary;
	// TimeToRollbackS is that page → rollback complete.
	TimeToDetectS   float64 `json:"time_to_detect_s,omitempty"`
	TimeToRollbackS float64 `json:"time_to_rollback_s,omitempty"`
	// Errors counts live requests answered wrongly (candidate error draws).
	Errors int `json:"errors,omitempty"`

	// Autoscaler fields (omitted when LoadConfig.Autoscale is nil).
	ReplicasFinal int          `json:"replicas_final,omitempty"`
	ReplicasPeak  int          `json:"replicas_peak,omitempty"`
	ReplicasMean  float64      `json:"replicas_mean,omitempty"` // time-weighted
	ScaleUps      int          `json:"scale_ups,omitempty"`
	ScaleDowns    int          `json:"scale_downs,omitempty"`
	ScaleEvents   []ScaleEvent `json:"scale_events,omitempty"`

	// Result-cache fields (omitted when LoadConfig.Cache is nil).
	CacheHits    int     `json:"cache_hits,omitempty"`
	CacheMisses  int     `json:"cache_misses,omitempty"`
	CacheHitRate float64 `json:"cache_hit_rate,omitempty"`
}

// event kinds, ordered for deterministic tie-breaking at equal times.
const (
	evArrival = iota
	evLinger
	evDone
	evHedge
	evTick   // SLO evaluation tick
	evDeploy // rollout: candidate version deploys
	evCtrl   // control-plane tick: rollout + autoscaler evaluation
)

type simEvent struct {
	at    time.Time
	seq   int // arrival order; breaks time ties deterministically
	kind  int
	req   *request // evArrival, evHedge
	gen   int      // evLinger: policy generation that armed this timer
	b     []*request
	cl    int  // closed loop: client issuing/completing
	rep   int  // evDone: replica that served the batch
	ver   int  // evLinger/evDone: model version of the policy/batch
	hedge bool // evDone: the batch was a hedge duplicate
}

// simBatch is one pool-queue entry: the formed requests, the model version
// that will serve them, and whether the batch is a hedge duplicate (hedge
// batches skip the batcher).
type simBatch struct {
	reqs  []*request
	ver   int
	hedge bool
}

type eventHeap []*simEvent

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*simEvent)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// loadSim is the simulation state: the pipeline stages of the real server
// with the concurrency replaced by an event loop.
type loadSim struct {
	cfg   LoadConfig
	r     *rng.Stream
	now   time.Time
	seq   int
	queue eventHeap
	work  int // queued events that are not chain ticks (evTick/evCtrl)

	admission []*request  // bounded by QueueCap
	blocked   []*simEvent // closed-loop arrivals waiting for admission space
	pols      [2]batchPolicy
	polGen    [2]int // invalidates linger timers of flushed batches, per version
	batchQ    []simBatch
	stalled   *simBatch // batch the batcher holds while the pool is full
	freeRep   int       // active && !busy replicas
	busy      []bool    // per-replica: replica identity matters once one is degraded
	active    []bool    // per-replica: part of the current fleet (autoscaling)

	issued    int
	completed int
	shed      int
	expired   int
	failed    int // answered wrongly (candidate error draws)
	batches   int
	samples   int
	latencies []float64 // seconds
	lastDone  time.Time

	// hedging state/accounting (all zero when HedgeAfter is off)
	servedOnce     map[*request]bool
	hedged         int
	hedgeWins      int
	hedgeCancelled int
	hedgeWasted    int
	dupServed      int

	// SLO monitoring (nil when cfg.SLO is empty)
	slo    *obs.SLOMonitor
	arrSeq uint64 // arrival order = deterministic trace id

	// control plane (nil/zero when the corresponding config is off)
	ro             *Rollout
	as             *Autoscaler
	route          *rng.Stream // canary/shadow routing draws
	verErr         *rng.Stream // candidate error draws
	canaryInflight int         // candidate requests admitted and unfinished
	canaryServed   int
	canaryErrors   int
	shadowServed   int
	shadowBad      int
	curReplicas    int // current fleet size (= cfg.Replicas without autoscale)
	replicasPeak   int
	repIntegral    float64 // ∫ replicas dt, for the time-weighted mean
	lastRepT       time.Time

	// result cache (nil when cfg.Cache is nil)
	cache       *data.Cache
	keys        *rng.Stream
	cacheHits   int
	cacheMisses int
}

// finish marks one request finally resolved (answered, failed, or expired)
// exactly once, maintaining the canary drain count. Returns false if the
// request was already finished (a hedged twin resolved it first).
func (s *loadSim) finish(req *request) bool {
	if req.simDone {
		return false
	}
	req.simDone = true
	if req.version == VersionCandidate {
		s.canaryInflight--
	}
	return true
}

// noteShed accounts one shed request in every sink: the report counter, the
// SLO monitor, and the mirrored obs session.
func (s *loadSim) noteShed(req *request) {
	s.shed++
	s.slo.RecordAvailability(false)
	if s.cfg.Obs.Enabled() {
		s.cfg.Obs.Count("serve.shed", 1)
		s.cfg.Obs.RecordFlight("shed", req.trace, "admission queue full")
	}
}

// noteExpired accounts one deadline miss. An expired shadow copy burns the
// candidate's SLO but is invisible to the user-facing counters; an expired
// live request counts as before, plus a failure against whichever version
// let its deadline slip.
func (s *loadSim) noteExpired(req *request) {
	if req.shadow {
		if s.finish(req) {
			s.shadowServed++
			s.shadowBad++
			s.ro.RecordServed(VersionCandidate, false, -1)
		}
		return
	}
	s.expired++
	s.slo.RecordAvailability(false)
	if s.finish(req) && s.ro != nil {
		s.ro.RecordServed(req.version, false, -1)
	}
	if s.cfg.Obs.Enabled() {
		s.cfg.Obs.Count("serve.deadline_missed", 1)
		s.cfg.Obs.RecordFlight("deadline_missed", req.trace, "")
	}
}

// noteCompleted accounts one completion with its latency (seconds).
func (s *loadSim) noteCompleted(req *request, lat float64) {
	s.slo.RecordAvailability(true)
	s.slo.RecordLatency(lat)
	if s.cfg.Obs.Enabled() {
		s.cfg.Obs.Count("serve.completed", 1)
		s.cfg.Obs.Registry.Histogram("serve.latency.hist", obs.DefLatencyBuckets).
			ObserveTrace(lat, req.trace.Trace)
	}
}

// vt returns the simulation's virtual time in seconds since its epoch.
func (s *loadSim) vt() float64 { return s.now.Sub(time.Unix(0, 0).UTC()).Seconds() }

// RunLoad executes one deterministic load test and returns its report.
func RunLoad(cfg LoadConfig) (*LoadReport, error) {
	if err := cfg.withDefaults(); err != nil {
		return nil, err
	}
	maxRep := cfg.Replicas
	startRep := cfg.Replicas
	if cfg.Autoscale != nil {
		if cfg.Autoscale.Max > maxRep {
			maxRep = cfg.Autoscale.Max
		}
		if startRep < cfg.Autoscale.Min {
			startRep = cfg.Autoscale.Min
		}
		if startRep > cfg.Autoscale.Max {
			startRep = cfg.Autoscale.Max
		}
	}
	s := &loadSim{
		cfg:          cfg,
		r:            rng.New(cfg.Seed).Split("serve-load"),
		now:          time.Unix(0, 0).UTC(),
		freeRep:      startRep,
		busy:         make([]bool, maxRep),
		active:       make([]bool, maxRep),
		curReplicas:  startRep,
		replicasPeak: startRep,
		lastRepT:     time.Unix(0, 0).UTC(),
	}
	for v := range s.pols {
		s.pols[v] = batchPolicy{maxBatch: cfg.MaxBatch, maxLinger: cfg.MaxLinger}
	}
	for r := 0; r < startRep; r++ {
		s.active[r] = true
	}
	if cfg.HedgeAfter > 0 {
		s.servedOnce = make(map[*request]bool, cfg.Requests)
	}
	if len(cfg.SLO) > 0 {
		s.slo = obs.NewSLOMonitor(cfg.SLO, cfg.SLORules)
	}
	if cfg.Rollout != nil {
		ro, err := NewRollout(cfg.Rollout.Config)
		if err != nil {
			return nil, err
		}
		s.ro = ro
		s.route = rng.New(cfg.Seed).Split("serve-route")
		s.verErr = rng.New(cfg.Seed).Split("serve-version-errors")
	}
	if cfg.Autoscale != nil {
		as, err := NewAutoscaler(*cfg.Autoscale)
		if err != nil {
			return nil, err
		}
		s.as = as
	}
	if cfg.Cache != nil {
		pol := data.NewLRU()
		if cfg.Cache.Doorkeeper > 0 {
			pol = data.NewDoorkeeperLRU(cfg.Cache.Doorkeeper)
		}
		s.cache = data.NewCache("serve.results", int64(cfg.Cache.CapacityEntries), pol)
		s.keys = rng.New(cfg.Seed).Split("serve-cache-keys")
	}
	s.seed()
	if s.slo != nil {
		s.push(&simEvent{at: s.now.Add(cfg.SLOTick), kind: evTick})
	}
	if s.ro != nil {
		s.push(&simEvent{at: s.now.Add(cfg.Rollout.DeployAt), kind: evDeploy})
	}
	if s.ro != nil || s.as != nil {
		s.push(&simEvent{at: s.now.Add(cfg.CtrlTick), kind: evCtrl})
	}
	for s.queue.Len() > 0 {
		e := heap.Pop(&s.queue).(*simEvent)
		if e.kind != evTick && e.kind != evCtrl {
			s.work--
		}
		s.now = e.at
		switch e.kind {
		case evArrival:
			s.arrive(e)
		case evLinger:
			// A stalled batcher is blocked inside pool.push in the real
			// server: it only sees the fired timer once unblocked, so the
			// overdue flush happens in done() instead.
			if e.gen == s.polGen[e.ver] && s.stalled == nil && s.pols[e.ver].due(s.now) {
				s.flushVer(e.ver)
				s.pump()
			}
		case evDone:
			s.done(e)
		case evHedge:
			s.fireHedge(e)
		case evTick:
			s.slo.Tick(s.vt())
			// Reschedule only while real work remains: the tick chain must
			// not keep a drained simulation alive — and a queue holding only
			// the control-plane tick does not count, or the two chains would
			// keep re-arming each other forever.
			if s.work > 0 {
				s.push(&simEvent{at: s.now.Add(s.cfg.SLOTick), kind: evTick})
			}
		case evDeploy:
			s.ro.Deploy(s.vt())
		case evCtrl:
			s.ctrlTick()
		}
	}
	return s.report(), nil
}

// ctrlTick is one control-plane evaluation: drain detection, rollout state
// machine, autoscaler. The tick chain stays alive while a deployed rollout
// is still deciding, even after traffic drains — a rollback's drain grace
// must be able to expire — but a Pending or terminal rollout does not keep
// an otherwise-finished simulation running.
func (s *loadSim) ctrlTick() {
	t := s.vt()
	if s.ro != nil {
		if s.canaryInflight == 0 {
			s.ro.Drained(t)
		}
		s.ro.Tick(t)
	}
	if s.as != nil {
		queued := len(s.admission)
		for _, b := range s.batchQ {
			queued += len(b.reqs)
		}
		if s.stalled != nil {
			queued += len(s.stalled.reqs)
		}
		busy := 0
		for _, on := range s.busy {
			if on {
				busy++
			}
		}
		target := s.as.Evaluate(t, AutoscaleInput{
			Queue:    queued,
			P99:      s.recentP99(),
			Busy:     busy,
			Replicas: s.curReplicas,
			Healthy:  s.curReplicas,
		})
		s.scaleTo(target)
	}
	rolloutLive := s.ro != nil && s.ro.State() != RolloutPending && !s.ro.State().Terminal()
	if s.work > 0 || rolloutLive {
		s.push(&simEvent{at: s.now.Add(s.cfg.CtrlTick), kind: evCtrl})
	}
}

// recentP99 is the p99 over the most recent completions (a bounded window,
// so the autoscaler reacts to now, not to the whole run).
func (s *loadSim) recentP99() time.Duration {
	const window = 256
	n := len(s.latencies)
	if n == 0 {
		return 0
	}
	lo := 0
	if n > window {
		lo = n - window
	}
	recent := append([]float64(nil), s.latencies[lo:]...)
	insertionSort(recent)
	return time.Duration(percentile(recent, 0.99) * float64(time.Second))
}

func insertionSort(a []float64) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// scaleTo applies an autoscaler target to the modelled fleet: scale-up
// activates the lowest inactive slots and immediately drains queued work
// onto them; scale-down retires the highest active slots (a busy retiree
// finishes its in-flight batch first — it simply never picks up new work).
func (s *loadSim) scaleTo(target int) {
	if target == s.curReplicas {
		return
	}
	s.repIntegral += float64(s.curReplicas) * s.now.Sub(s.lastRepT).Seconds()
	s.lastRepT = s.now
	for target > s.curReplicas {
		for r := range s.active {
			if !s.active[r] {
				s.active[r] = true
				if !s.busy[r] {
					s.freeRep++
				}
				break
			}
		}
		s.curReplicas++
	}
	for target < s.curReplicas {
		for r := len(s.active) - 1; r >= 0; r-- {
			if s.active[r] {
				s.active[r] = false
				if !s.busy[r] {
					s.freeRep--
				}
				break
			}
		}
		s.curReplicas--
	}
	if s.curReplicas > s.replicasPeak {
		s.replicasPeak = s.curReplicas
	}
	s.drainPool()
}

// drainPool pushes queued batches (and the stalled batcher) onto newly free
// replicas — the same sequence done() runs after a completion.
func (s *loadSim) drainPool() {
	if s.stalled != nil && (s.freeRep > 0 || len(s.batchQ) < s.cfg.MaxPendingBatches) {
		b := *s.stalled
		s.stalled = nil
		if s.freeRep > 0 && len(s.batchQ) == 0 {
			s.startService(b)
		} else {
			s.batchQ = append(s.batchQ, b)
		}
	}
	for s.freeRep > 0 && len(s.batchQ) > 0 {
		b := s.batchQ[0]
		s.batchQ = s.batchQ[1:]
		s.startService(b)
	}
	if s.stalled == nil {
		for v := range s.pols {
			if s.pols[v].due(s.now) {
				s.flushVer(v)
				if s.stalled != nil {
					break
				}
			}
		}
	}
	s.pump()
}

// seed schedules the initial arrivals.
func (s *loadSim) seed() {
	if len(s.cfg.Phases) > 0 {
		// Piecewise-constant rate profile: exponential interarrivals at each
		// phase's rate until the phase boundary. Crossing a boundary resets
		// the residual interarrival, which is fine at the rates and phase
		// lengths this models (one arrival of slack per phase).
		arr := s.r.Split("arrivals")
		t := s.now
		phaseEnd := s.now
		for _, ph := range s.cfg.Phases {
			phaseEnd = phaseEnd.Add(ph.Duration)
			if ph.RatePerSec <= 0 {
				t = phaseEnd
				continue
			}
			for {
				t = t.Add(time.Duration(arr.Exp(ph.RatePerSec / float64(time.Second))))
				if t.After(phaseEnd) {
					t = phaseEnd
					break
				}
				s.issued++
				s.push(&simEvent{at: t, kind: evArrival, cl: -1})
			}
		}
		return
	}
	if s.cfg.Closed {
		think := s.r.Split("think")
		for c := 0; c < s.cfg.Clients && s.issued < s.cfg.Requests; c++ {
			// Stagger client starts by one think time so they do not all
			// collide at t=0.
			at := s.now
			if s.cfg.ThinkMean > 0 {
				at = at.Add(time.Duration(think.Exp(1 / float64(s.cfg.ThinkMean))))
			}
			s.scheduleArrival(at, c)
		}
		return
	}
	arr := s.r.Split("arrivals")
	t := s.now
	for i := 0; i < s.cfg.Requests; i++ {
		t = t.Add(time.Duration(arr.Exp(s.cfg.RatePerSec / float64(time.Second))))
		s.scheduleArrival(t, -1)
	}
}

func (s *loadSim) scheduleArrival(at time.Time, client int) {
	if s.issued >= s.cfg.Requests {
		return
	}
	s.issued++
	s.push(&simEvent{at: at, kind: evArrival, cl: client})
}

func (s *loadSim) push(e *simEvent) {
	e.seq = s.seq
	s.seq++
	if e.kind != evTick && e.kind != evCtrl {
		s.work++
	}
	heap.Push(&s.queue, e)
}

// arrive admits one request, shedding (open loop) or blocking the client
// (closed loop) when the admission queue is full. With the result cache on,
// a fresh cached answer settles the request here — no queue slot, no
// replica. With a rollout in flight, the request is routed to a version at
// admission (the batcher's coin flip, pulled forward to where the simulator
// mints requests) and may spawn a shadow duplicate.
func (s *loadSim) arrive(e *simEvent) {
	s.arrSeq++
	req := &request{arrived: s.now, deadline: s.deadlineFrom(s.now),
		trace: obs.Ctx{Trace: s.arrSeq}} // arrival order = deterministic trace id
	e.req = req
	if s.cache != nil && s.cacheLookup(req) {
		return // served from cache
	}
	if len(s.admission) >= s.cfg.QueueCap {
		if s.cfg.Closed {
			s.blocked = append(s.blocked, e) // Infer blocks: backpressure
			return
		}
		s.noteShed(req) // Submit sheds: ErrOverloaded
		return
	}
	s.routeVersion(req)
	s.admission = append(s.admission, req)
	if s.cfg.Obs.Enabled() {
		s.cfg.Obs.Count("serve.submitted", 1)
	}
	s.armHedge(req)
	s.shadowCopy(req)
	s.pump()
}

// routeVersion assigns the request's serving version by a seeded coin flip
// against the rollout's current canary fraction.
func (s *loadSim) routeVersion(req *request) {
	if s.ro == nil {
		return
	}
	if f := s.ro.CanaryFraction(); f > 0 && s.route.Bernoulli(f) {
		req.version = VersionCandidate
		s.canaryInflight++
	}
}

// shadowCopy duplicates an admitted baseline request onto the candidate
// while the rollout is shadowing: the copy goes straight into the
// candidate's batch policy (it does not occupy an admission slot), its
// answer is discarded, and its outcome lands on the candidate's SLO
// monitor. Shadowing is best-effort sampling: while the batcher is stalled
// on a full pool, no copies are made.
func (s *loadSim) shadowCopy(req *request) {
	if s.ro == nil || req.version != VersionBaseline {
		return
	}
	f := s.ro.ShadowFraction()
	if f <= 0 || s.stalled != nil || !s.route.Bernoulli(f) {
		return
	}
	cp := &request{arrived: s.now, deadline: req.deadline, trace: req.trace,
		version: VersionCandidate, shadow: true}
	s.canaryInflight++
	s.admitPolicy(cp)
}

// cacheLookup draws the request's key from the skewed popularity model and
// answers it from the result cache when a fresh entry exists. Returns true
// when the request was served here.
func (s *loadSim) cacheLookup(req *request) bool {
	u := s.keys.Float64()
	k := int(float64(s.cfg.Cache.Keys) * math.Pow(u, 1+s.cfg.Cache.Skew))
	if k >= s.cfg.Cache.Keys {
		k = s.cfg.Cache.Keys - 1
	}
	req.ckey = uint64(k) + 1
	key := strconv.Itoa(k)
	if val, ok := s.cache.Get(key); ok {
		exp, err := strconv.ParseInt(string(val), 10, 64)
		if err == nil && !s.now.After(time.Unix(0, exp).UTC()) {
			s.cacheHits++
			s.completed++
			s.latencies = append(s.latencies, 0)
			s.noteCompleted(req, 0)
			s.lastDone = s.now
			req.settled.Store(true)
			req.simDone = true
			s.clientNext(req)
			return true
		}
		s.cache.Drop(key) // stale: expired by TTL on the virtual clock
	}
	s.cacheMisses++
	return false
}

// cacheStore inserts one computed result with its TTL horizon (admission is
// the eviction policy's call — a doorkeeper rejects first-timers).
func (s *loadSim) cacheStore(req *request) {
	if s.cache == nil || req.ckey == 0 {
		return
	}
	exp := s.now.Add(s.cfg.Cache.TTL).UnixNano()
	s.cache.Put(strconv.Itoa(int(req.ckey-1)), []byte(strconv.FormatInt(exp, 10)), 1)
}

// armHedge schedules the hedge timer for one admitted request, mirroring
// Server.armHedge: the budget runs from admission, not from dispatch.
func (s *loadSim) armHedge(req *request) {
	if s.cfg.HedgeAfter > 0 {
		s.push(&simEvent{at: s.now.Add(s.cfg.HedgeAfter), kind: evHedge, req: req})
	}
}

// fireHedge duplicates a request that outlived its budget, mirroring
// Server.hedgeWatch: a one-request batch straight to the pool. The real
// watcher's push blocks on a full pool; the simulation models that as the
// duplicate joining the pool queue (it runs when a replica frees up).
func (s *loadSim) fireHedge(e *simEvent) {
	if e.req.settled.Load() {
		return // answered within budget: no hedge
	}
	s.hedged++
	b := simBatch{reqs: []*request{e.req}, ver: e.req.version, hedge: true}
	if s.freeRep > 0 {
		s.startService(b)
		return
	}
	s.batchQ = append(s.batchQ, b)
}

func (s *loadSim) deadlineFrom(t time.Time) time.Time {
	if s.cfg.Deadline <= 0 {
		return time.Time{}
	}
	return t.Add(s.cfg.Deadline)
}

// pump advances the batcher: it drains the admission queue through the
// per-version policies until the queue is empty or the batcher stalls on a
// full pool.
func (s *loadSim) pump() {
	for len(s.admission) > 0 && s.stalled == nil {
		req := s.admission[0]
		s.admission = s.admission[1:]
		s.unblockOne()
		if req.expired(s.now) {
			s.noteExpired(req)
			continue
		}
		s.admitPolicy(req)
	}
}

// admitPolicy feeds one request into its version's batch policy, arming the
// linger timer when it opens a new batch and dispatching a full one.
func (s *loadSim) admitPolicy(req *request) {
	v := req.version
	first := s.pols[v].pending() == 0
	flushed := s.pols[v].admit(req, s.now)
	if flushed != nil {
		s.dispatch(flushed, v)
		return
	}
	if first {
		s.push(&simEvent{at: s.now.Add(s.cfg.MaxLinger), kind: evLinger,
			gen: s.polGen[v], ver: v})
	}
}

// unblockOne moves the oldest blocked closed-loop arrival into the freed
// admission slot.
func (s *loadSim) unblockOne() {
	if len(s.blocked) == 0 {
		return
	}
	e := s.blocked[0]
	s.blocked = s.blocked[1:]
	s.admission = append(s.admission, e.req)
	s.armHedge(e.req) // a blocked Infer is admitted now, so its budget starts now
}

// flushVer force-dispatches version v's forming batch (linger fired).
func (s *loadSim) flushVer(v int) {
	if b := s.pols[v].take(); len(b) > 0 {
		s.dispatch(b, v)
	}
}

// dispatch moves one formed batch toward the replicas, mirroring
// Server.dispatch + pool.push: expired requests drop here, a free replica
// starts service, a full pool stalls the batcher.
func (s *loadSim) dispatch(b []*request, ver int) {
	s.polGen[ver]++
	alive := b[:0]
	for _, r := range b {
		if r.expired(s.now) {
			s.noteExpired(r)
			continue
		}
		alive = append(alive, r)
	}
	if len(alive) == 0 {
		return
	}
	s.batches++
	s.samples += len(alive)
	sb := simBatch{reqs: alive, ver: ver}
	switch {
	case s.freeRep > 0:
		s.startService(sb)
	case len(s.batchQ) < s.cfg.MaxPendingBatches:
		s.batchQ = append(s.batchQ, sb)
	default:
		s.stalled = &sb
	}
}

// startService begins executing one batch on the lowest-numbered free
// active replica, re-checking deadlines the way pool.execute does and
// cancelling copies whose twin already answered. A degraded replica
// multiplies the whole service time by its slowdown factor; a candidate
// version with a latency regression multiplies it by the injected factor.
func (s *loadSim) startService(b simBatch) {
	alive := b.reqs[:0]
	for _, r := range b.reqs {
		if r.expired(s.now) {
			s.noteExpired(r)
			continue
		}
		if r.settled.Load() {
			s.hedgeCancelled++ // the other copy answered while this one queued
			continue
		}
		alive = append(alive, r)
	}
	if len(alive) == 0 {
		return
	}
	rep := 0
	for ; rep < len(s.busy); rep++ {
		if s.active[rep] && !s.busy[rep] {
			break
		}
	}
	if rep == len(s.busy) {
		// No active free replica (caller raced a scale-down): queue it.
		s.batchQ = append(s.batchQ, b)
		return
	}
	s.busy[rep] = true
	s.freeRep--
	if s.servedOnce != nil {
		for _, r := range alive {
			if s.servedOnce[r] {
				s.dupServed++ // this copy's service is pure duplicated work
			} else {
				s.servedOnce[r] = true
			}
		}
	}
	d := s.cfg.Service.batchTime(len(alive), s.r)
	if s.cfg.DegradeFactor > 1 && rep == s.cfg.DegradeReplica {
		d = time.Duration(float64(d) * s.cfg.DegradeFactor)
	}
	if b.ver == VersionCandidate && s.cfg.Rollout != nil &&
		s.cfg.Rollout.Candidate.LatencyFactor > 1 {
		d = time.Duration(float64(d) * s.cfg.Rollout.Candidate.LatencyFactor)
	}
	s.push(&simEvent{at: s.now.Add(d), kind: evDone, b: alive, rep: rep,
		ver: b.ver, hedge: b.hedge})
}

// done completes a batch: resolves each request (shadow ledger, candidate
// error draw, or a normal completion), frees the replica, and pulls the
// next work item through the stalled-batcher / pool-queue stages.
func (s *loadSim) done(e *simEvent) {
	for _, req := range e.b {
		if !req.settled.CompareAndSwap(false, true) {
			s.hedgeWasted++ // serviced in full, beaten to the answer
			continue
		}
		lat := s.now.Sub(req.arrived).Seconds()
		bad := false
		if req.version == VersionCandidate && s.cfg.Rollout != nil &&
			s.cfg.Rollout.Candidate.ErrorRate > 0 {
			bad = s.verErr.Bernoulli(s.cfg.Rollout.Candidate.ErrorRate)
		}
		if req.shadow {
			// Shadow ledger only: the user never saw this copy. A wrong
			// answer is an output mismatch against the baseline's response.
			s.finish(req)
			s.shadowServed++
			if bad {
				s.shadowBad++
				s.ro.RecordServed(VersionCandidate, false, -1)
			} else {
				s.ro.RecordServed(VersionCandidate, true, lat)
			}
			continue
		}
		s.finish(req)
		if req.version == VersionCandidate {
			s.canaryServed++
		}
		if bad {
			s.canaryErrors++
			s.noteFailed(req)
			s.ro.RecordServed(req.version, false, -1)
			s.clientNext(req) // the client got an error reply; it moves on
			continue
		}
		s.completed++
		if e.hedge {
			s.hedgeWins++
		}
		s.latencies = append(s.latencies, lat)
		s.noteCompleted(req, lat)
		if s.ro != nil {
			s.ro.RecordServed(req.version, true, lat)
		}
		s.cacheStore(req)
		s.clientNext(req)
	}
	s.lastDone = s.now
	s.busy[e.rep] = false
	if s.active[e.rep] {
		s.freeRep++
	}
	s.drainPool()
}

// noteFailed accounts one wrong answer (a live request served by a bad
// version): an availability failure that is not a shed or a deadline miss.
func (s *loadSim) noteFailed(req *request) {
	s.failed++
	s.slo.RecordAvailability(false)
	if s.cfg.Obs.Enabled() {
		s.cfg.Obs.Count("serve.errors", 1)
		s.cfg.Obs.RecordFlight("error", req.trace, "bad model version")
	}
}

// clientNext schedules the closed-loop follow-up request after think time.
func (s *loadSim) clientNext(req *request) {
	if !s.cfg.Closed || s.issued >= s.cfg.Requests {
		return
	}
	at := s.now
	if s.cfg.ThinkMean > 0 {
		at = at.Add(time.Duration(s.r.Exp(1 / float64(s.cfg.ThinkMean))))
	}
	s.scheduleArrival(at, 0)
}

func (s *loadSim) report() *LoadReport {
	rep := &LoadReport{
		Seed:        s.cfg.Seed,
		Requests:    s.cfg.Requests,
		Completed:   s.completed,
		Shed:        s.shed,
		Expired:     s.expired,
		Batches:     s.batches,
		Replicas:    s.cfg.Replicas,
		MaxBatch:    s.cfg.MaxBatch,
		LingerMs:    float64(s.cfg.MaxLinger) / float64(time.Millisecond),
		QueueCap:    s.cfg.QueueCap,
		CapacityRPS: s.cfg.Service.CapacityRPS(s.cfg.Replicas, s.cfg.MaxBatch),
	}
	rep.Mode = "open"
	rep.OfferedRPS = s.cfg.RatePerSec
	if s.cfg.Closed {
		rep.Mode = "closed"
		rep.OfferedRPS = 0
	}
	if len(s.cfg.Phases) > 0 {
		rep.Phases = len(s.cfg.Phases)
		rep.Requests = s.issued // derived from the profile, not configured
		var dur, weighted float64
		for _, ph := range s.cfg.Phases {
			dur += ph.Duration.Seconds()
			weighted += ph.RatePerSec * ph.Duration.Seconds()
		}
		if dur > 0 {
			rep.OfferedRPS = weighted / dur // profile-mean offered load
		}
	}
	if s.slo != nil {
		rep.SLOStatus = s.slo.Status()
		rep.SLOAlerts = s.slo.Timeline()
	}
	if s.cfg.Deadline > 0 {
		rep.DeadlineMs = float64(s.cfg.Deadline) / float64(time.Millisecond)
	}
	if s.batches > 0 {
		rep.MeanBatch = float64(s.samples) / float64(s.batches)
	}
	if s.cfg.DegradeFactor > 1 {
		rep.DegradeFactor = s.cfg.DegradeFactor
		rep.DegradeReplica = s.cfg.DegradeReplica
	}
	if s.cfg.HedgeAfter > 0 {
		rep.HedgeAfterMs = float64(s.cfg.HedgeAfter) / float64(time.Millisecond)
		rep.Hedged = s.hedged
		rep.HedgeWins = s.hedgeWins
		rep.HedgeCancelled = s.hedgeCancelled
		rep.HedgeWasted = s.hedgeWasted
		if s.completed > 0 {
			rep.DuplicatedWorkPct = 100 * float64(s.dupServed) / float64(s.completed)
		}
	}
	if s.ro != nil {
		rep.RolloutState = s.ro.State().String()
		rep.RolloutEvents = s.ro.Events()
		rep.CanaryServed = s.canaryServed
		rep.CanaryErrors = s.canaryErrors
		rep.ShadowServed = s.shadowServed
		rep.ShadowMismatches = s.shadowBad
		rep.Errors = s.failed
		if served := s.completed + s.failed; served > 0 {
			rep.BadVersionPct = 100 * float64(s.canaryServed) / float64(served)
		}
		if ttd, ok := s.ro.TimeToDetect(); ok {
			rep.TimeToDetectS = ttd
		}
		if ttr, ok := s.ro.TimeToRollback(); ok {
			rep.TimeToRollbackS = ttr
		}
	}
	if s.as != nil {
		rep.ReplicasFinal = s.curReplicas
		rep.ReplicasPeak = s.replicasPeak
		end := s.lastDone
		if end.Before(s.now) {
			end = s.now
		}
		if total := end.Sub(time.Unix(0, 0).UTC()).Seconds(); total > 0 {
			integral := s.repIntegral + float64(s.curReplicas)*end.Sub(s.lastRepT).Seconds()
			rep.ReplicasMean = integral / total
		}
		rep.ScaleUps, rep.ScaleDowns = s.as.Counts()
		rep.ScaleEvents = s.as.Events()
	}
	if s.cache != nil {
		rep.CacheHits = s.cacheHits
		rep.CacheMisses = s.cacheMisses
		if n := s.cacheHits + s.cacheMisses; n > 0 {
			rep.CacheHitRate = float64(s.cacheHits) / float64(n)
		}
	}
	wall := s.lastDone.Sub(time.Unix(0, 0).UTC()).Seconds()
	rep.WallSeconds = wall
	if wall > 0 {
		rep.ThroughputRPS = float64(s.completed) / wall
	}
	fillLatencies(rep, s.latencies)
	return rep
}

// percentile returns the q-th quantile of sorted values (linear
// interpolation between neighbouring ranks, matching internal/obs).
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	if lo >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}
