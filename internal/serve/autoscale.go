package serve

// Health-driven autoscaling: the capacity half of the serving control
// plane. Like Rollout and batchPolicy, the Autoscaler is a pure decision
// machine on explicit time — the concurrent Server's control loop and the
// discrete-event load simulator both feed it the same inputs (queue depth,
// p99 latency, busy-replica utilisation, healthy-replica count) and apply
// whatever target it returns to their own replica pools.
//
// The policy is deliberately boring, because boring is what pages less:
//
//   - Scale UP when the queue per healthy replica exceeds QueueHigh or the
//     observed p99 exceeds P99High. Step size is proportional to the queue
//     overhang but capped by SurgeMax per decision, so a flash crowd is
//     answered in a few decisive steps rather than one panicked leap or a
//     hundred timid ones.
//   - Scale DOWN one replica at a time, and only when the queue is near
//     empty, the utilisation EWMA is below UtilLow, and p99 is comfortable.
//   - Hysteresis everywhere: separate up/down cooldowns, and a down
//     decision additionally requires the up cooldown to have lapsed, so
//     the scaler never saws (up, down, up) across consecutive evaluations.

import (
	"fmt"
	"time"
)

// AutoscaleConfig parameterises the replica autoscaler.
type AutoscaleConfig struct {
	// Min and Max bound the replica count (defaults 1 and 16).
	Min int
	Max int
	// Every is the evaluation cadence (default 250ms). The driver owns the
	// timer; Evaluate itself just enforces cooldowns in units of time.
	Every time.Duration
	// QueueHigh scales up when queued requests per healthy replica exceed it
	// (default 4).
	QueueHigh float64
	// QueueLow permits scale-down only when queue per healthy replica is
	// below it (default 0.5).
	QueueLow float64
	// P99High scales up when the observed p99 exceeds it (0 disables the
	// latency trigger).
	P99High time.Duration
	// UtilLow permits scale-down only when the busy-fraction EWMA is below
	// it (default 0.3).
	UtilLow float64
	// UtilAlpha is the EWMA smoothing factor for utilisation (default 0.3).
	UtilAlpha float64
	// SurgeMax caps replicas added per decision (default 2).
	SurgeMax int
	// UpCooldown and DownCooldown are the minimum times between consecutive
	// scale-ups / scale-downs (defaults Every and 4*Every).
	UpCooldown   time.Duration
	DownCooldown time.Duration
}

func (c *AutoscaleConfig) withDefaults() error {
	if c.Min <= 0 {
		c.Min = 1
	}
	if c.Max <= 0 {
		c.Max = 16
	}
	if c.Max < c.Min {
		return fmt.Errorf("serve: autoscale Max %d < Min %d", c.Max, c.Min)
	}
	if c.Every <= 0 {
		c.Every = 250 * time.Millisecond
	}
	if c.QueueHigh <= 0 {
		c.QueueHigh = 4
	}
	if c.QueueLow <= 0 {
		c.QueueLow = 0.5
	}
	if c.QueueLow >= c.QueueHigh {
		return fmt.Errorf("serve: autoscale QueueLow %g must be below QueueHigh %g",
			c.QueueLow, c.QueueHigh)
	}
	if c.P99High < 0 {
		return fmt.Errorf("serve: negative autoscale P99High %v", c.P99High)
	}
	if c.UtilLow <= 0 {
		c.UtilLow = 0.3
	}
	if c.UtilAlpha <= 0 || c.UtilAlpha > 1 {
		c.UtilAlpha = 0.3
	}
	if c.SurgeMax <= 0 {
		c.SurgeMax = 2
	}
	if c.UpCooldown <= 0 {
		c.UpCooldown = c.Every
	}
	if c.DownCooldown <= 0 {
		c.DownCooldown = 4 * c.Every
	}
	return nil
}

// AutoscaleInput is one evaluation's observation of the pool.
type AutoscaleInput struct {
	// Queue is the number of requests waiting (admission queue + formed
	// batches not yet executing).
	Queue int
	// P99 is the observed request p99 (0 = unknown; disables the latency
	// trigger for this evaluation).
	P99 time.Duration
	// Busy is the number of replicas currently executing a batch.
	Busy int
	// Replicas is the current pool size (the scaler's previous target once
	// the pool has converged).
	Replicas int
	// Healthy is the number of live, non-ejected replicas (≤ Replicas).
	Healthy int
}

// ScaleEvent is one autoscaler decision that changed the target.
type ScaleEvent struct {
	T      float64 `json:"t"` // seconds
	From   int     `json:"from"`
	To     int     `json:"to"`
	Reason string  `json:"reason"`
}

// Autoscaler holds the hysteresis state between evaluations. Not
// concurrency-safe: drive it from one control loop (the Server's ctrl
// goroutine, or the simulator event loop).
type Autoscaler struct {
	cfg      AutoscaleConfig
	utilEWMA float64
	utilInit bool
	lastUp   float64
	lastDown float64
	hasUp    bool
	hasDown  bool
	ups      int
	downs    int
	events   []ScaleEvent
}

// NewAutoscaler validates cfg and returns a ready scaler.
func NewAutoscaler(cfg AutoscaleConfig) (*Autoscaler, error) {
	if err := cfg.withDefaults(); err != nil {
		return nil, err
	}
	return &Autoscaler{cfg: cfg}, nil
}

// Config returns the validated configuration.
func (a *Autoscaler) Config() AutoscaleConfig { return a.cfg }

// Evaluate consumes one observation at time t (seconds) and returns the
// replica target. Returning in.Replicas means "no change".
func (a *Autoscaler) Evaluate(t float64, in AutoscaleInput) int {
	healthy := in.Healthy
	if healthy <= 0 {
		healthy = 1
	}
	util := float64(in.Busy) / float64(healthy)
	if !a.utilInit {
		a.utilEWMA, a.utilInit = util, true
	} else {
		a.utilEWMA += a.cfg.UtilAlpha * (util - a.utilEWMA)
	}
	queuePer := float64(in.Queue) / float64(healthy)

	cur := in.Replicas
	hot := queuePer > a.cfg.QueueHigh
	slow := a.cfg.P99High > 0 && in.P99 > a.cfg.P99High
	if (hot || slow) && cur < a.cfg.Max {
		if a.hasUp && t-a.lastUp < a.cfg.UpCooldown.Seconds() {
			return cur
		}
		// Step toward the replica count that would bring the queue back
		// under QueueHigh, but never more than SurgeMax at once.
		step := 1
		if hot {
			want := int(float64(in.Queue)/a.cfg.QueueHigh) + 1
			if want-cur > step {
				step = want - cur
			}
		}
		if step > a.cfg.SurgeMax {
			step = a.cfg.SurgeMax
		}
		to := cur + step
		if to > a.cfg.Max {
			to = a.cfg.Max
		}
		a.lastUp, a.hasUp = t, true
		a.ups++
		reason := "queue"
		if !hot {
			reason = "p99"
		}
		a.events = append(a.events, ScaleEvent{T: t, From: cur, To: to, Reason: reason})
		return to
	}

	if cur > a.cfg.Min &&
		queuePer < a.cfg.QueueLow &&
		a.utilEWMA < a.cfg.UtilLow &&
		!slow {
		if a.hasDown && t-a.lastDown < a.cfg.DownCooldown.Seconds() {
			return cur
		}
		// Never saw: a recent scale-up vetoes the scale-down too.
		if a.hasUp && t-a.lastUp < a.cfg.DownCooldown.Seconds() {
			return cur
		}
		to := cur - 1
		a.lastDown, a.hasDown = t, true
		a.downs++
		a.events = append(a.events, ScaleEvent{T: t, From: cur, To: to, Reason: "idle"})
		return to
	}
	return cur
}

// Util returns the current utilisation EWMA.
func (a *Autoscaler) Util() float64 { return a.utilEWMA }

// Counts returns (scale-ups, scale-downs) so far.
func (a *Autoscaler) Counts() (ups, downs int) { return a.ups, a.downs }

// Events returns the decision trajectory so far.
func (a *Autoscaler) Events() []ScaleEvent {
	return append([]ScaleEvent(nil), a.events...)
}
