package serve

import (
	"testing"
	"time"

	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// testNet builds a small deterministic model; the same (inDim, seed) always
// yields bit-identical weights, so tests can rebuild it as a reference.
func testNet(inDim int) *nn.Net {
	return nn.MLP(inDim, []int{4}, 2, nn.ReLU, rng.New(11))
}

func polReq(id int) *request {
	return &request{x: []float64{float64(id)}, done: make(chan Result, 1)}
}

// --- pure policy: exact compositions with explicit timestamps ---

func TestPolicySizeFlushExactComposition(t *testing.T) {
	t0 := time.Unix(0, 0).UTC()
	pol := &batchPolicy{maxBatch: 3, maxLinger: time.Second}
	a, b, c, d := polReq(0), polReq(1), polReq(2), polReq(3)

	if got := pol.admit(a, t0); got != nil {
		t.Fatalf("admit #1 flushed %d requests, want none", len(got))
	}
	if got := pol.admit(b, t0.Add(time.Millisecond)); got != nil {
		t.Fatalf("admit #2 flushed %d requests, want none", len(got))
	}
	got := pol.admit(c, t0.Add(2*time.Millisecond))
	if len(got) != 3 || got[0] != a || got[1] != b || got[2] != c {
		t.Fatalf("size flush composition = %v, want exactly [a b c] in order", got)
	}
	if pol.pending() != 0 {
		t.Fatalf("pending = %d after size flush, want 0", pol.pending())
	}

	// The next admission starts a fresh batch with a fresh linger deadline.
	t1 := t0.Add(10 * time.Millisecond)
	if got := pol.admit(d, t1); got != nil {
		t.Fatalf("admit after flush flushed %d requests, want none", len(got))
	}
	dl, ok := pol.deadline()
	if !ok || !dl.Equal(t1.Add(time.Second)) {
		t.Fatalf("new batch deadline = %v ok=%v, want %v", dl, ok, t1.Add(time.Second))
	}
}

func TestPolicyLingerDeadlineTracksOldestRequest(t *testing.T) {
	t0 := time.Unix(0, 0).UTC()
	pol := &batchPolicy{maxBatch: 8, maxLinger: 5 * time.Millisecond}
	a, b := polReq(0), polReq(1)

	pol.admit(a, t0)
	pol.admit(b, t0.Add(3*time.Millisecond))
	dl, ok := pol.deadline()
	if !ok || !dl.Equal(t0.Add(5*time.Millisecond)) {
		t.Fatalf("deadline = %v ok=%v, want %v (set by the oldest request)",
			dl, ok, t0.Add(5*time.Millisecond))
	}
	if pol.due(t0.Add(5*time.Millisecond - time.Nanosecond)) {
		t.Fatal("due one nanosecond before the linger bound")
	}
	if !pol.due(t0.Add(5 * time.Millisecond)) {
		t.Fatal("not due exactly at the linger bound")
	}
	got := pol.take()
	if len(got) != 2 || got[0] != a || got[1] != b {
		t.Fatalf("take composition = %v, want exactly [a b]", got)
	}
	if _, ok := pol.deadline(); ok {
		t.Fatal("deadline still set after take")
	}
}

// --- end-to-end on a VirtualClock: exact compositions, exact latencies ---

// lingerServer builds a server on an unbuffered admission queue and a
// virtual clock, the configuration under which every submit is a rendezvous
// with the batcher and time only moves when the test advances it.
func lingerServer(t *testing.T, cfg Config) (*Server, *VirtualClock) {
	t.Helper()
	vc := NewVirtualClock(time.Unix(0, 0).UTC())
	cfg.InDim = 3
	cfg.QueueCap = -1
	cfg.Clock = vc
	srv, err := New(testNet(3), cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(srv.Close)
	return srv, vc
}

func TestServerLingerFlushExactComposition(t *testing.T) {
	srv, vc := lingerServer(t, Config{MaxBatch: 8, MaxLinger: 5 * time.Millisecond})

	x1 := []float64{1, 2, 3}
	x2 := []float64{4, 5, 6}
	ch1 := srv.submitBlocking(x1, time.Time{})
	// The batcher arms its linger timer in the same loop iteration that
	// admits the first request; once the timer is armed the request is
	// provably inside the policy, so Advance cannot race the admission.
	vc.BlockUntilWaiters(1)
	ch2 := srv.submitBlocking(x2, time.Time{})

	vc.Advance(5 * time.Millisecond)
	res1, res2 := <-ch1, <-ch2
	for i, res := range []Result{res1, res2} {
		if res.Err != nil {
			t.Fatalf("result %d: %v", i+1, res.Err)
		}
		if res.BatchSize != 2 {
			t.Fatalf("result %d batch size = %d, want exactly 2 (linger flush coalesced both)",
				i+1, res.BatchSize)
		}
		if res.Latency != 5*time.Millisecond {
			t.Fatalf("result %d latency = %v, want exactly 5ms of virtual time", i+1, res.Latency)
		}
	}

	// The batched forward must equal the reference single-row forward.
	ref := testNet(3)
	for i, x := range [][]float64{x1, x2} {
		in := tensor.FromSlice(x, 1, len(x))
		want := ref.Forward(in, false).Row(0).Data
		got := []Result{res1, res2}[i].Y
		if len(got) != len(want) {
			t.Fatalf("result %d: output dim %d, want %d", i+1, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("result %d output[%d] = %v, want %v (batched != single-row forward)",
					i+1, j, got[j], want[j])
			}
		}
	}

	st := srv.Stats()
	if st.Batches != 1 || st.Completed != 2 || st.MeanBatch != 2 {
		t.Fatalf("stats = %+v, want 1 batch / 2 completed / mean 2", st)
	}
}

func TestServerSizeFlushExactComposition(t *testing.T) {
	srv, vc := lingerServer(t, Config{MaxBatch: 2, MaxLinger: time.Hour})

	ch1 := srv.submitBlocking([]float64{1, 0, 0}, time.Time{})
	vc.BlockUntilWaiters(1)
	ch2 := srv.submitBlocking([]float64{0, 1, 0}, time.Time{})

	// No Advance: the batch must flush on size alone, at zero virtual time.
	res1, res2 := <-ch1, <-ch2
	for i, res := range []Result{res1, res2} {
		if res.Err != nil {
			t.Fatalf("result %d: %v", i+1, res.Err)
		}
		if res.BatchSize != 2 {
			t.Fatalf("result %d batch size = %d, want exactly MaxBatch=2", i+1, res.BatchSize)
		}
		if res.Latency != 0 {
			t.Fatalf("result %d latency = %v, want 0 (no virtual time passed)", i+1, res.Latency)
		}
	}
	if st := srv.Stats(); st.Batches != 1 || st.MeanBatch != 2 {
		t.Fatalf("stats = %+v, want exactly one batch of mean size 2", st)
	}
}

func TestServerMixedSizeAndLingerFlushes(t *testing.T) {
	srv, vc := lingerServer(t, Config{MaxBatch: 2, MaxLinger: 5 * time.Millisecond})

	// r1+r2 size-flush as a pair; r3 is left forming and must go out alone
	// when its linger expires.
	ch1 := srv.submitBlocking([]float64{1, 0, 0}, time.Time{})
	vc.BlockUntilWaiters(1)
	ch2 := srv.submitBlocking([]float64{0, 1, 0}, time.Time{})
	if res := <-ch1; res.BatchSize != 2 || res.Err != nil {
		t.Fatalf("r1 = %+v, want success in a batch of 2", res)
	}
	if res := <-ch2; res.BatchSize != 2 || res.Err != nil {
		t.Fatalf("r2 = %+v, want success in a batch of 2", res)
	}

	ch3 := srv.submitBlocking([]float64{0, 0, 1}, time.Time{})
	// r1's abandoned linger timer is still armed on the virtual clock, so
	// r3's fresh timer is the second waiter.
	vc.BlockUntilWaiters(2)
	vc.Advance(5 * time.Millisecond)
	res3 := <-ch3
	if res3.Err != nil || res3.BatchSize != 1 {
		t.Fatalf("r3 = %+v, want success in a linger-flushed batch of exactly 1", res3)
	}
	if res3.Latency != 5*time.Millisecond {
		t.Fatalf("r3 latency = %v, want exactly the 5ms linger", res3.Latency)
	}

	st := srv.Stats()
	if st.Batches != 2 || st.Completed != 3 {
		t.Fatalf("stats = %+v, want 2 batches / 3 completed", st)
	}
	if st.MeanBatch != 1.5 {
		t.Fatalf("mean batch = %v, want 1.5", st.MeanBatch)
	}
}

func TestServerCloseDrainsPartialBatch(t *testing.T) {
	vc := NewVirtualClock(time.Unix(0, 0).UTC())
	srv, err := New(testNet(3), Config{
		InDim: 3, MaxBatch: 8, MaxLinger: time.Hour, QueueCap: -1, Clock: vc,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	var chans []<-chan Result
	for i := 0; i < 3; i++ {
		chans = append(chans, srv.submitBlocking([]float64{float64(i), 0, 0}, time.Time{}))
	}
	srv.Close() // must flush the forming batch of 3, not drop it

	for i, ch := range chans {
		res := <-ch
		if res.Err != nil {
			t.Fatalf("request %d after Close: %v", i, res.Err)
		}
		if res.BatchSize != 3 {
			t.Fatalf("request %d batch size = %d, want the drained partial batch of 3",
				i, res.BatchSize)
		}
	}
	if st := srv.Stats(); st.Completed != 3 || st.Batches != 1 {
		t.Fatalf("stats = %+v, want 3 completed in 1 batch", st)
	}
}
