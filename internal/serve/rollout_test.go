package serve

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/rng"
)

// quickStages is a small, fast canary progression for state-machine tests.
func quickStages() []RolloutStage {
	return []RolloutStage{
		{Fraction: 0.01, Hold: time.Second},
		{Fraction: 0.05, Hold: time.Second},
		{Fraction: 0.25, Hold: time.Second},
		{Fraction: 1.00, Hold: time.Second},
	}
}

func TestRolloutConfigValidation(t *testing.T) {
	bad := []RolloutConfig{
		{Stages: []RolloutStage{{Fraction: 0, Hold: time.Second}}},
		{Stages: []RolloutStage{{Fraction: 1.5, Hold: time.Second}}},
		{Stages: []RolloutStage{{Fraction: 0.5, Hold: time.Second}, {Fraction: 0.25, Hold: time.Second}}},
		{Stages: []RolloutStage{{Fraction: 0.5, Hold: 0}}},
		{Shadow: -time.Second},
		{ShadowFraction: 2},
	}
	for i, cfg := range bad {
		if _, err := NewRollout(cfg); err == nil {
			t.Errorf("config %d: invalid rollout accepted: %+v", i, cfg)
		}
	}
	ro, err := NewRollout(RolloutConfig{})
	if err != nil {
		t.Fatalf("zero config rejected: %v", err)
	}
	cfg := ro.Config()
	if len(cfg.Stages) != 4 || cfg.PageRule != "fast" || cfg.FreezeRule != "slow" {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
	if ro.State() != RolloutPending || ro.CanaryFraction() != 0 {
		t.Fatalf("fresh rollout not pending with zero canary traffic")
	}
}

// TestRolloutHealthyPromotion walks a clean candidate through every stage:
// the canary fraction must follow the configured schedule exactly and end
// promoted at 100%.
func TestRolloutHealthyPromotion(t *testing.T) {
	ro, err := NewRollout(RolloutConfig{
		Stages: quickStages(),
		Rules:  obs.ScaledBurnRules(time.Second),
	})
	if err != nil {
		t.Fatalf("NewRollout: %v", err)
	}
	ro.Deploy(0)
	if ro.State() != RolloutCanarying || ro.CanaryFraction() != 0.01 {
		t.Fatalf("after deploy: state=%s frac=%g, want canarying at 1%%", ro.State(), ro.CanaryFraction())
	}

	now := 0.0
	wantFrac := []float64{0.01, 0.05, 0.25, 1.00}
	for tick := 0; tick < 100 && !ro.State().Terminal(); tick++ {
		// Clean traffic on both versions every control tick.
		for i := 0; i < 10; i++ {
			ro.RecordServed(VersionBaseline, true, 0.002)
			ro.RecordServed(VersionCandidate, true, 0.002)
		}
		now += 0.25
		ro.Tick(now)
		if st := ro.State(); st == RolloutCanarying {
			if f := ro.CanaryFraction(); f != wantFrac[ro.Stage()] {
				t.Fatalf("stage %d fraction = %g, want %g", ro.Stage(), f, wantFrac[ro.Stage()])
			}
		}
	}
	if ro.State() != RolloutPromoted {
		t.Fatalf("clean candidate ended %s, want promoted", ro.State())
	}
	if ro.CanaryFraction() != 1 {
		t.Fatalf("promoted fraction = %g, want 1", ro.CanaryFraction())
	}
	if _, ok := ro.TimeToDetect(); ok {
		t.Fatal("clean rollout reported a detection time")
	}
	// Timeline: deploy, three stage advances, promoted.
	events := ro.Events()
	var kinds []string
	for _, ev := range events {
		kinds = append(kinds, ev.Event)
	}
	want := []string{"deploy", "stage", "stage", "stage", "promoted"}
	if fmt.Sprint(kinds) != fmt.Sprint(want) {
		t.Fatalf("timeline %v, want %v", kinds, want)
	}
}

// TestRolloutShadowBreachRollsBackBeforeCanary poisons the candidate during
// the shadow phase: the rollout must roll back without the candidate ever
// having received live traffic (canary fraction stays 0 throughout).
func TestRolloutShadowBreachRollsBackBeforeCanary(t *testing.T) {
	ro, err := NewRollout(RolloutConfig{
		Stages: quickStages(),
		Shadow: 2 * time.Second,
		Rules:  obs.ScaledBurnRules(time.Second),
	})
	if err != nil {
		t.Fatalf("NewRollout: %v", err)
	}
	ro.Deploy(0)
	if ro.State() != RolloutShadowing {
		t.Fatalf("state = %s, want shadowing", ro.State())
	}
	if sf := ro.ShadowFraction(); sf != 0.2 {
		t.Fatalf("shadow fraction = %g, want default 0.2", sf)
	}

	now := 0.0
	for tick := 0; tick < 40 && !ro.State().Terminal(); tick++ {
		if f := ro.CanaryFraction(); f != 0 {
			t.Fatalf("canary fraction = %g during shadow-phase breach, want 0 always", f)
		}
		for i := 0; i < 10; i++ {
			ro.RecordServed(VersionBaseline, true, 0.002)
			ro.RecordServed(VersionCandidate, false, -1) // shadow copies failing
		}
		now += 0.25
		ro.Tick(now)
		ro.Drained(now)
	}
	if ro.State() != RolloutRolledBack {
		t.Fatalf("poisoned shadow ended %s, want rolled_back", ro.State())
	}
	if _, ok := ro.TimeToDetect(); !ok {
		t.Fatal("no detection time recorded")
	}
}

// TestRolloutFreezeHoldsStageWithoutReverting drives a burn that fires only
// the freeze rule: promotion must pause (stage and fraction unchanged) while
// traffic keeps flowing to the canary, then resume and promote after the
// burn resolves.
func TestRolloutFreezeHoldsStageWithoutReverting(t *testing.T) {
	ro, err := NewRollout(RolloutConfig{
		Stages: []RolloutStage{{Fraction: 0.05, Hold: time.Second}, {Fraction: 1, Hold: time.Second}},
		Rules: []obs.BurnRule{
			// Page rule that can never fire; freeze rule that fires on any
			// error within its windows.
			{Name: "fast", Long: time.Second, Short: 250 * time.Millisecond, Factor: 1e18},
			{Name: "slow", Long: time.Second, Short: 250 * time.Millisecond, Factor: 1},
		},
	})
	if err != nil {
		t.Fatalf("NewRollout: %v", err)
	}
	ro.Deploy(0)

	now := 0.0
	step := func(ok bool) {
		for i := 0; i < 10; i++ {
			ro.RecordServed(VersionCandidate, ok, 0.002)
		}
		now += 0.25
		ro.Tick(now)
	}

	// Two bad ticks: freeze fires, stage must not advance past its hold.
	step(false)
	step(false)
	if !ro.Frozen() {
		t.Fatal("freeze rule burning but rollout not frozen")
	}
	if ro.State() != RolloutCanarying || ro.Stage() != 0 {
		t.Fatalf("state=%s stage=%d during freeze, want canarying stage 0", ro.State(), ro.Stage())
	}
	if f := ro.CanaryFraction(); f != 0.05 {
		t.Fatalf("freeze reverted traffic: fraction = %g, want 0.05 (freeze pauses, not reverts)", f)
	}
	// Soak far past the nominal hold while frozen: still stage 0.
	for i := 0; i < 8; i++ {
		step(false)
	}
	if ro.Stage() != 0 {
		t.Fatalf("frozen stage advanced to %d", ro.Stage())
	}

	// Clean traffic: the burn resolves, the soak restarts, and the rollout
	// must eventually promote.
	for i := 0; i < 40 && !ro.State().Terminal(); i++ {
		step(true)
		ro.Drained(now)
	}
	if ro.State() != RolloutPromoted {
		t.Fatalf("recovered rollout ended %s, want promoted", ro.State())
	}
	var sawFreeze, sawUnfreeze bool
	for _, ev := range ro.Events() {
		sawFreeze = sawFreeze || ev.Event == "freeze"
		sawUnfreeze = sawUnfreeze || ev.Event == "unfreeze"
	}
	if !sawFreeze || !sawUnfreeze {
		t.Fatalf("timeline missing freeze/unfreeze: %+v", ro.Events())
	}
}

// TestRolloutDrainGraceBoundsRollback: if the data plane never reports the
// candidate drained, the grace timer must still complete the rollback.
func TestRolloutDrainGraceBoundsRollback(t *testing.T) {
	ro, err := NewRollout(RolloutConfig{
		Stages:     quickStages(),
		Rules:      obs.ScaledBurnRules(time.Second),
		DrainGrace: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("NewRollout: %v", err)
	}
	ro.Deploy(0)
	now := 0.0
	for tick := 0; tick < 40 && ro.State() != RolloutRollingBack; tick++ {
		for i := 0; i < 10; i++ {
			ro.RecordServed(VersionCandidate, false, -1)
		}
		now += 0.25
		ro.Tick(now) // never Drained
	}
	if ro.State() != RolloutRollingBack {
		t.Fatalf("state = %s, want rolling_back", ro.State())
	}
	rolledAt := now
	for tick := 0; tick < 10 && ro.State() != RolloutRolledBack; tick++ {
		now += 0.25
		ro.Tick(now)
	}
	if ro.State() != RolloutRolledBack {
		t.Fatal("drain grace expired but rollback never completed")
	}
	if now-rolledAt > 0.75+1e-9 {
		t.Fatalf("rollback took %.2fs past the trigger, want <= grace + one tick", now-rolledAt)
	}
}

// TestRolloutPropertySustainedBreachAlwaysRollsBack is the bounded-recovery
// property: from ANY rollout stage (shadowing or any canary stage), once the
// candidate starts breaching its SLO persistently, the controller must reach
// RolledBack with 100% of traffic on the baseline within a bounded number of
// control ticks. Breach intensity and per-tick traffic are seeded, so every
// case is reproducible.
func TestRolloutPropertySustainedBreachAlwaysRollsBack(t *testing.T) {
	const (
		tickS     = 0.1 // 100ms control cadence
		maxBreach = 40  // bounded-recovery budget, in ticks
	)
	stages := []struct {
		name  string
		stage int // -1 = breach during shadowing
	}{
		{"shadowing", -1},
		{"canary-stage-0", 0},
		{"canary-stage-1", 1},
		{"canary-stage-2", 2},
		{"canary-stage-3", 3},
	}
	for _, entry := range stages {
		for seed := uint64(1); seed <= 4; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", entry.name, seed), func(t *testing.T) {
				ro, err := NewRollout(RolloutConfig{
					Stages:     quickStages(),
					Shadow:     500 * time.Millisecond,
					Rules:      obs.ScaledBurnRules(time.Second),
					DrainGrace: 250 * time.Millisecond,
				})
				if err != nil {
					t.Fatalf("NewRollout: %v", err)
				}
				ro.Deploy(0)
				r := rng.New(seed).Split("breach")
				now := 0.0
				step := func(errRate float64) {
					n := 1 + int(r.Float64()*20)
					for i := 0; i < n; i++ {
						ro.RecordServed(VersionCandidate, !r.Bernoulli(errRate), 0.002)
						ro.RecordServed(VersionBaseline, true, 0.002)
					}
					now += tickS
					ro.Tick(now)
				}

				// Drive cleanly to the target stage.
				for guard := 0; entry.stage >= 0; guard++ {
					if guard > 500 {
						t.Fatalf("never reached canary stage %d (state %s stage %d)",
							entry.stage, ro.State(), ro.Stage())
					}
					if ro.State() == RolloutCanarying && ro.Stage() == entry.stage {
						break
					}
					step(0)
				}

				// Sustained breach at a seeded error rate in [0.5, 1].
				errRate := 0.5 + 0.5*r.Float64()
				breachStart := now
				for guard := 0; ro.State() != RolloutRolledBack; guard++ {
					if guard > maxBreach {
						t.Fatalf("still %s after %d breach ticks (err rate %.2f) — recovery not bounded",
							ro.State(), guard, errRate)
					}
					step(errRate)
					ro.Drained(now) // data plane reports the canary drained
				}

				if f := ro.CanaryFraction(); f != 0 {
					t.Fatalf("rolled back but canary fraction = %g, want 0 (100%% baseline)", f)
				}
				if sf := ro.ShadowFraction(); sf != 0 {
					t.Fatalf("rolled back but shadow fraction = %g, want 0", sf)
				}
				ttd, ok := ro.TimeToDetect()
				if !ok || ttd < 0 {
					t.Fatalf("detection time missing after breach (ok=%v ttd=%g)", ok, ttd)
				}
				ttr, ok := ro.TimeToRollback()
				if !ok || ttr < 0 || ttr > (now-breachStart)+1e-9 {
					t.Fatalf("rollback time bad: ok=%v ttr=%g window=%g", ok, ttr, now-breachStart)
				}
				// Terminal means terminal: further ticks and records change nothing.
				ro.RecordServed(VersionCandidate, true, 0.001)
				ro.Tick(now + 10)
				if ro.State() != RolloutRolledBack || ro.CanaryFraction() != 0 {
					t.Fatal("rolled-back state not sticky")
				}
			})
		}
	}
}
