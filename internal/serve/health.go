package serve

// Replica health scoring: each replica keeps an EWMA of its per-batch
// service time (measured on the server's Clock, so gray-straggler tests run
// on virtual time). A replica whose EWMA rises to EjectFactor times the
// median of its healthy peers is ejected — the placer stops routing batches
// to it — but not killed: every ProbeEvery placements one batch is routed to
// an ejected replica as a probe, and a probe that comes back fast re-admits
// it. Ejection needs a sustained slowdown (MinSamples observations, an
// absolute MinLatency floor, and at least one healthy survivor), re-admission
// needs a measured recovery at half the ejection threshold — the hysteresis
// that keeps a borderline replica from flapping in and out of the fleet.

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/obs"
)

// HealthConfig parameterises replica health scoring. The zero value disables
// scoring entirely; set EjectFactor > 1 to enable it.
type HealthConfig struct {
	// EjectFactor is the ejection threshold: a replica is ejected when its
	// service-time EWMA exceeds EjectFactor times the median EWMA of the
	// healthy live replicas. 0 disables health scoring.
	EjectFactor float64
	// MinSamples is how many batches a replica must have served before it
	// can be ejected (default 8) — one slow batch is noise, a slow EWMA over
	// MinSamples batches is a gray failure.
	MinSamples int
	// ProbeEvery routes every ProbeEvery-th batch placement to an ejected
	// replica as a health probe (default 16). Probes are real traffic: a
	// still-degraded replica serves them slowly, which is the evidence that
	// keeps it ejected.
	ProbeEvery int
	// Alpha is the EWMA smoothing factor in (0, 1] (default 0.2).
	Alpha float64
	// MinLatency is an absolute floor under the ejection test (default
	// 100µs): a replica is never ejected while its EWMA sits below it, no
	// matter the ratio to the median — at microsecond scale "4x the median"
	// is scheduler noise, not degradation.
	MinLatency time.Duration
}

func (h *HealthConfig) withDefaults() {
	if !h.enabled() {
		return
	}
	if h.MinSamples <= 0 {
		h.MinSamples = 8
	}
	if h.ProbeEvery <= 0 {
		h.ProbeEvery = 16
	}
	if h.Alpha <= 0 || h.Alpha > 1 {
		h.Alpha = 0.2
	}
	if h.MinLatency <= 0 {
		h.MinLatency = 100 * time.Microsecond
	}
}

func (h HealthConfig) enabled() bool { return h.EjectFactor > 0 }

// pickReplicaLocked chooses the replica for one batch placement. Health off:
// least-loaded live replica. Health on: least-loaded healthy replica, except
// that every ProbeEvery-th placement goes to an ejected replica (the probe),
// and if every live replica is ejected the placer falls back to all of them —
// degraded service beats no service.
func (p *pool) pickReplicaLocked() int {
	he := p.s.cfg.Health.enabled()
	if he {
		p.places++
		if p.nEjected > 0 && p.places%p.s.cfg.Health.ProbeEvery == 0 {
			for r := range p.queues {
				if p.live[r] && p.ejected[r] {
					return r
				}
			}
		}
	}
	best, bestLoad := -1, 0
	for r := range p.queues {
		if !p.live[r] || (he && p.ejected[r]) {
			continue
		}
		load := len(p.queues[r]) + p.inflight[r]
		if best < 0 || load < bestLoad {
			best, bestLoad = r, load
		}
	}
	if best >= 0 {
		return best
	}
	// Every live replica is ejected: place on the least loaded anyway.
	for r := range p.queues {
		if !p.live[r] {
			continue
		}
		load := len(p.queues[r]) + p.inflight[r]
		if best < 0 || load < bestLoad {
			best, bestLoad = r, load
		}
	}
	return best
}

// noteLatency records one batch's clock-measured service time for replica r
// and applies the ejection / re-admission rules.
func (p *pool) noteLatency(r int, elapsed time.Duration) {
	h := p.s.cfg.Health
	sample := elapsed.Seconds()
	p.mu.Lock()
	if p.nObs[r] == 0 {
		p.ewma[r] = sample
	} else {
		p.ewma[r] = h.Alpha*sample + (1-h.Alpha)*p.ewma[r]
	}
	p.nObs[r]++

	med, ok := p.healthyMedianLocked(r)
	switch {
	case !p.ejected[r]:
		if ok && p.nObs[r] >= h.MinSamples &&
			p.ewma[r] > h.EjectFactor*med &&
			p.ewma[r] > h.MinLatency.Seconds() {
			p.ejected[r] = true
			p.nEjected++
			p.ejections++
			if p.s.obs.Enabled() {
				p.s.obs.Count("serve.replica_ejected", 1)
				p.s.obs.SetGauge("serve.healthy_replicas", float64(p.healthyLocked()))
				p.s.obs.RecordFlight("replica_ejected", obs.Ctx{},
					fmt.Sprintf("replica=%d ewma=%.6fs median=%.6fs", r, p.ewma[r], med))
			}
		}
	default:
		// Re-admission judges the raw probe sample, not the EWMA: the EWMA
		// still carries the slow history that got the replica ejected, and a
		// repaired replica should not serve out that sentence sample by
		// sample. The raw sample must clear half the ejection threshold —
		// the hysteresis gap — and on re-admission the EWMA restarts from it.
		threshold := h.MinLatency.Seconds()
		if ok && h.EjectFactor*med/2 > threshold {
			threshold = h.EjectFactor * med / 2
		}
		if sample <= threshold {
			p.ejected[r] = false
			p.nEjected--
			p.readmissions++
			p.ewma[r] = sample
			if p.s.obs.Enabled() {
				p.s.obs.Count("serve.replica_readmitted", 1)
				p.s.obs.SetGauge("serve.healthy_replicas", float64(p.healthyLocked()))
				p.s.obs.RecordFlight("replica_readmitted", obs.Ctx{},
					fmt.Sprintf("replica=%d sample=%.6fs", r, sample))
			}
		}
	}
	p.mu.Unlock()
}

// healthyMedianLocked returns the median service-time EWMA over the live,
// non-ejected replicas other than r that have served at least one batch.
func (p *pool) healthyMedianLocked(r int) (float64, bool) {
	var vals []float64
	for v := range p.queues {
		if v == r || !p.live[v] || p.ejected[v] || p.nObs[v] == 0 {
			continue
		}
		vals = append(vals, p.ewma[v])
	}
	if len(vals) == 0 {
		return 0, false
	}
	sort.Float64s(vals)
	return vals[len(vals)/2], true
}

// healthyLocked counts live, non-ejected replicas.
func (p *pool) healthyLocked() int {
	n := 0
	for r := range p.queues {
		if p.live[r] && !p.ejected[r] {
			n++
		}
	}
	return n
}

// healthCounters snapshots the health-scoring accounting.
func (p *pool) healthCounters() (ejections, readmissions int64, healthy int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.ejections, p.readmissions, p.healthyLocked()
}
