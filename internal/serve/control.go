package serve

// Server-side control plane: the concurrent counterpart of the simulator's
// evCtrl tick. A single control goroutine (started lazily — at New when an
// autoscaler is configured, at Deploy when a rollout begins) wakes every
// CtrlEvery on the injected Clock and
//
//   - drives the Rollout state machine (drain detection, burn evaluation,
//     stage promotion), and
//   - feeds the Autoscaler one observation (admission depth + pool backlog,
//     recent p99, busy replicas) and applies its target via pool.resize.
//
// Everything time-dependent flows through the Clock, so the whole loop runs
// on a VirtualClock in tests: Advance past CtrlEvery, and exactly one
// control step executes.

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"sync"
	"time"

	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/obs"
)

// routeRequest assigns the request's model version at submit time: a coin
// flip on the shared routing stream against the rollout's current canary
// fraction, plus the shadow-duplication flip for baseline traffic. Routing
// happens before the request enters the admission queue, so every later
// reader (batcher, replicas, hedge watcher) sees an immutable version.
func (s *Server) routeRequest(req *request) {
	ro := s.rollout.Load()
	if ro == nil {
		return
	}
	s.routeMu.Lock()
	if s.route.Bernoulli(ro.CanaryFraction()) {
		req.version = VersionCandidate
	} else if sf := ro.ShadowFraction(); sf > 0 && s.route.Bernoulli(sf) {
		req.wantShadow = true
	}
	s.routeMu.Unlock()
}

// ResultCacheConfig parameterises the inference result cache that sits in
// front of the batcher: a byte-budgeted data.Cache keyed by the hash of the
// request's feature vector, with TTL staleness on the server's clock and
// (optionally) doorkeeper admission so one-off queries cannot churn out the
// recurring ones.
type ResultCacheConfig struct {
	// Capacity is the cache budget in bytes (default 1 MiB). Each entry
	// costs 16 + 8*len(output) bytes.
	Capacity int64
	// TTL is how long a cached result stays servable (default 1s) — model
	// outputs go stale the moment a new version could answer differently.
	TTL time.Duration
	// Doorkeeper, when positive, enables doorkeeper-LRU admission tracking
	// this many first-sightings; 0 = plain LRU.
	Doorkeeper int
}

func (c *ResultCacheConfig) withDefaults() {
	if c.Capacity <= 0 {
		c.Capacity = 1 << 20
	}
	if c.TTL <= 0 {
		c.TTL = time.Second
	}
}

// resultCache wraps the single-threaded data.Cache in a mutex for use from
// concurrent submitters and replicas.
type resultCache struct {
	mu  sync.Mutex
	c   *data.Cache
	ttl time.Duration
}

func newResultCache(cfg ResultCacheConfig) *resultCache {
	pol := data.NewLRU()
	if cfg.Doorkeeper > 0 {
		pol = data.NewDoorkeeperLRU(cfg.Doorkeeper)
	}
	return &resultCache{c: data.NewCache("serve.results", cfg.Capacity, pol), ttl: cfg.TTL}
}

// cacheKey hashes a feature vector to the request's cache key (FNV-1a over
// the raw float bits). The +1 keeps 0 as the "uncacheable" sentinel.
func cacheKey(x []float64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, v := range x {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	k := h.Sum64()
	if k == 0 {
		k = 1
	}
	return k
}

// get returns the cached output row for key if a fresh entry exists.
func (rc *resultCache) get(key uint64, now time.Time) ([]float64, bool) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	val, ok := rc.c.Get(cacheKeyString(key))
	if !ok {
		return nil, false
	}
	exp := int64(binary.LittleEndian.Uint64(val[:8]))
	if now.After(time.Unix(0, exp)) {
		rc.c.Drop(cacheKeyString(key))
		return nil, false
	}
	y := make([]float64, (len(val)-8)/8)
	for i := range y {
		y[i] = math.Float64frombits(binary.LittleEndian.Uint64(val[8+8*i:]))
	}
	return y, true
}

// put stores one computed output row with its TTL horizon; the eviction
// policy decides admission.
func (rc *resultCache) put(key uint64, y []float64, now time.Time) {
	val := make([]byte, 8+8*len(y))
	binary.LittleEndian.PutUint64(val[:8], uint64(now.Add(rc.ttl).UnixNano()))
	for i, v := range y {
		binary.LittleEndian.PutUint64(val[8+8*i:], math.Float64bits(v))
	}
	rc.mu.Lock()
	rc.c.Put(cacheKeyString(key), val, int64(16+8*len(y)))
	rc.mu.Unlock()
}

// cacheLookup consults the result cache when one is configured. On a hit it
// settles and answers req directly, bypassing batcher and pool entirely; a
// miss tags the request with its key so the winning completion can populate
// the cache.
func (s *Server) cacheLookup(req *request) bool {
	if s.cache == nil {
		return false
	}
	req.ckey = cacheKey(req.x)
	y, ok := s.cache.get(req.ckey, s.clock.Now())
	if !ok {
		s.nCacheMisses.Add(1)
		s.obs.Count("serve.cache_misses", 1)
		return false
	}
	s.nCacheHits.Add(1)
	s.obs.Count("serve.cache_hits", 1)
	req.settle()
	req.done <- Result{Y: y, Latency: s.clock.Now().Sub(req.arrived)}
	return true
}

func cacheKeyString(k uint64) string {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], k)
	return string(b[:])
}

// Deploy starts a versioned rollout of cand behind the configured canary
// stages. The candidate is cloned once per replica slot; traffic routing is
// the batcher's per-request coin flip against the rollout's current canary
// fraction, so the split takes effect on the very next request. Only one
// rollout can be in flight; a terminal one (promoted or rolled back) can be
// replaced. On promotion the candidate keeps serving as "version 1" — the
// routing fraction, not a net swap, is what makes it the new baseline.
func (s *Server) Deploy(cand *nn.Net, cfg RolloutConfig) (*Rollout, error) {
	if cand == nil {
		return nil, fmt.Errorf("serve: nil candidate net")
	}
	ro, err := NewRollout(cfg)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	if cur := s.rollout.Load(); cur != nil && !cur.State().Terminal() {
		s.mu.Unlock()
		return nil, fmt.Errorf("serve: rollout already in flight (%s)", cur.State())
	}
	s.pool.installCandidate(cand)
	ro.Deploy(s.sinceStart())
	s.rollout.Store(ro)
	s.startCtrlLocked()
	s.mu.Unlock()
	if s.obs.Enabled() {
		s.obs.Count("serve.deploys", 1)
	}
	return ro, nil
}

// Rollout returns the current rollout controller (nil before any Deploy).
func (s *Server) Rollout() *Rollout { return s.rollout.Load() }

// sinceStart is the control plane's time base: seconds on the server's
// clock since New.
func (s *Server) sinceStart() float64 {
	return s.clock.Now().Sub(s.start).Seconds()
}

// startCtrlLocked launches the control goroutine once (caller holds s.mu).
func (s *Server) startCtrlLocked() {
	if s.ctrlOn || s.closed {
		return
	}
	s.ctrlOn = true
	s.ctrlWG.Add(1)
	go s.ctrlLoop()
}

// ctrlLoop is the control goroutine: one control step per CtrlEvery tick.
func (s *Server) ctrlLoop() {
	defer s.ctrlWG.Done()
	for {
		select {
		case <-s.ctrlStop:
			return
		case <-s.clock.After(s.cfg.CtrlEvery):
			s.controlStep()
		}
	}
}

// controlStep runs one rollout + autoscaler evaluation.
func (s *Server) controlStep() {
	t := s.sinceStart()
	if ro := s.rollout.Load(); ro != nil {
		if s.nCanaryInflight.Load() == 0 {
			ro.Drained(t)
		}
		before := ro.State()
		after := ro.Tick(t)
		if after != before && s.obs.Enabled() {
			s.obs.RecordFlight("rollout", obs.Ctx{},
				fmt.Sprintf("state=%s stage=%d", after, ro.Stage()))
		}
	}
	if s.scaler == nil {
		return
	}
	pending, busy, live, healthy := s.pool.loadSnapshot()
	target := s.scaler.Evaluate(t, AutoscaleInput{
		Queue:    len(s.in) + pending,
		P99:      s.recentP99(),
		Busy:     busy,
		Replicas: live,
		Healthy:  healthy,
	})
	if target != live {
		if d := s.pool.resize(target); d > 0 {
			s.nScaleUps.Add(1)
			if s.obs.Enabled() {
				s.obs.Count("serve.scale_ups", 1)
			}
		} else if d < 0 {
			s.nScaleDowns.Add(1)
			if s.obs.Enabled() {
				s.obs.Count("serve.scale_downs", 1)
			}
		}
	}
}

// recentP99 computes the p99 over the bounded ring of recent completion
// latencies (see noteLatencySample).
func (s *Server) recentP99() time.Duration {
	s.latMu.Lock()
	n := s.latCount
	if n > len(s.latRing) {
		n = len(s.latRing)
	}
	recent := append([]float64(nil), s.latRing[:n]...)
	s.latMu.Unlock()
	if len(recent) == 0 {
		return 0
	}
	insertionSort(recent)
	return time.Duration(percentile(recent, 0.99) * float64(time.Second))
}

// noteLatencySample records one completion latency into the autoscaler's
// bounded ring (no-op unless autoscaling is on).
func (s *Server) noteLatencySample(lat time.Duration) {
	if s.scaler == nil {
		return
	}
	s.latMu.Lock()
	s.latRing[s.latCount%len(s.latRing)] = lat.Seconds()
	s.latCount++
	s.latMu.Unlock()
}
