package serve

import (
	"errors"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
)

func TestConfigValidation(t *testing.T) {
	if _, err := New(nil, Config{InDim: 3}); err == nil {
		t.Fatal("New accepted a nil net")
	}
	if _, err := New(testNet(3), Config{}); err == nil {
		t.Fatal("New accepted a config without InDim")
	}
	plan := fault.NewPlan().Kill(0, 0).Kill(1, 0)
	if _, err := New(testNet(3), Config{InDim: 3, Replicas: 2, Faults: plan}); err == nil {
		t.Fatal("New accepted a plan that kills every replica")
	}

	cfg := Config{InDim: 3}
	if err := cfg.withDefaults(); err != nil {
		t.Fatalf("withDefaults: %v", err)
	}
	if cfg.Replicas != 1 || cfg.MaxBatch != 8 || cfg.MaxLinger != 2*time.Millisecond ||
		cfg.QueueCap != 64 || cfg.MaxPendingBatches != 2 || cfg.Clock == nil {
		t.Fatalf("defaults = %+v", cfg)
	}
}

func TestSubmitBadInput(t *testing.T) {
	srv, _ := lingerServer(t, Config{MaxBatch: 1})
	res := <-srv.Submit([]float64{1, 2}, time.Time{}) // InDim is 3
	if !errors.Is(res.Err, ErrBadInput) {
		t.Fatalf("err = %v, want ErrBadInput", res.Err)
	}
}

func TestSubmitAfterClose(t *testing.T) {
	vc := NewVirtualClock(time.Unix(0, 0).UTC())
	srv, err := New(testNet(3), Config{InDim: 3, Clock: vc})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	srv.Close()
	srv.Close() // idempotent

	if res := <-srv.Submit([]float64{1, 2, 3}, time.Time{}); !errors.Is(res.Err, ErrClosed) {
		t.Fatalf("Submit after Close: err = %v, want ErrClosed", res.Err)
	}
	if _, err := srv.Infer([]float64{1, 2, 3}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Infer after Close: err = %v, want ErrClosed", err)
	}
}

func TestDeadlineAlreadyExpiredAtAdmission(t *testing.T) {
	srv, vc := lingerServer(t, Config{MaxBatch: 8, MaxLinger: 5 * time.Millisecond})
	past := vc.Now().Add(-time.Millisecond)
	res := <-srv.submitBlocking([]float64{1, 2, 3}, past)
	if !errors.Is(res.Err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline for an already-expired request", res.Err)
	}
	if st := srv.Stats(); st.Expired != 1 || st.Batches != 0 {
		t.Fatalf("stats = %+v, want 1 expired and no batch dispatched", st)
	}
}

func TestDeadlineExpiresWhileLingering(t *testing.T) {
	srv, vc := lingerServer(t, Config{MaxBatch: 8, MaxLinger: 5 * time.Millisecond})
	// Deadline at +3ms, linger flush at +5ms: by flush time the answer has
	// stopped mattering, and the server must not spend a forward pass on it.
	ch := srv.submitBlocking([]float64{1, 2, 3}, vc.Now().Add(3*time.Millisecond))
	vc.BlockUntilWaiters(1)
	vc.Advance(5 * time.Millisecond)
	res := <-ch
	if !errors.Is(res.Err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", res.Err)
	}
	if st := srv.Stats(); st.Expired != 1 || st.Completed != 0 || st.Batches != 0 {
		t.Fatalf("stats = %+v, want the expired request dropped before dispatch", st)
	}
}

// TestOverloadShedsWithTypedError freezes the single replica with a scripted
// hang, fills every stage of the pipeline, and checks that further open-loop
// submits shed with ErrOverloaded while every accepted request still
// completes once the replica resumes. All waiting is on channels and the
// virtual clock — no sleeps.
func TestOverloadShedsWithTypedError(t *testing.T) {
	vc := NewVirtualClock(time.Unix(0, 0).UTC())
	sess := obs.NewSession()
	sess.Enable()
	srv, err := New(testNet(3), Config{
		InDim:             3,
		Replicas:          1,
		MaxBatch:          1,
		MaxLinger:         time.Millisecond,
		QueueCap:          2,
		MaxPendingBatches: 1,
		Clock:             vc,
		Obs:               sess,
		Faults:            fault.NewPlan().Hang(0, 0, time.Hour),
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	x := []float64{1, 2, 3}
	first := srv.Submit(x, time.Time{})
	// Once the hang timer is armed the replica holds the first batch in
	// flight and nothing downstream can drain.
	vc.BlockUntilWaiters(1)

	// Pipeline capacity behind the hung replica: 1 batch in the pool
	// backlog + 1 held by the stalled batcher + QueueCap(2) in admission.
	// Everything past that must shed.
	const burst = 20
	var chans []<-chan Result
	for i := 0; i < burst; i++ {
		chans = append(chans, srv.Submit(x, time.Time{}))
	}

	shed := 0
	var pendingChans []<-chan Result
	for _, ch := range chans {
		select {
		case res := <-ch:
			if !errors.Is(res.Err, ErrOverloaded) {
				t.Fatalf("immediate result = %+v, want ErrOverloaded", res)
			}
			shed++
		default:
			pendingChans = append(pendingChans, ch)
		}
	}
	if shed < burst-4 {
		t.Fatalf("shed %d of %d, want at least %d (pipeline holds at most 4)",
			shed, burst, burst-4)
	}
	if st := srv.Stats(); st.Shed != int64(shed) {
		t.Fatalf("Stats.Shed = %d, want %d", st.Shed, shed)
	}

	// Release the replica: every accepted request must now complete.
	vc.Advance(time.Hour)
	if res := <-first; res.Err != nil {
		t.Fatalf("first request after release: %v", res.Err)
	}
	for i, ch := range pendingChans {
		if res := <-ch; res.Err != nil {
			t.Fatalf("accepted request %d after release: %v", i, res.Err)
		}
	}
	srv.Close()

	st := srv.Stats()
	if st.Completed != int64(1+len(pendingChans)) {
		t.Fatalf("completed = %d, want %d", st.Completed, 1+len(pendingChans))
	}
	if st.Submitted+st.Shed != burst+1 {
		t.Fatalf("submitted(%d)+shed(%d) != %d", st.Submitted, st.Shed, burst+1)
	}

	// The obs session saw the whole story: sheds counted, batches counted,
	// latencies observed.
	snap := sess.Snapshot()
	counters := map[string]int64{}
	for _, c := range snap.Counters {
		counters[c.Name] = c.Value
	}
	if counters["serve.shed"] != int64(shed) {
		t.Fatalf("obs serve.shed = %d, want %d", counters["serve.shed"], shed)
	}
	if counters["serve.batches"] != st.Batches {
		t.Fatalf("obs serve.batches = %d, want %d", counters["serve.batches"], st.Batches)
	}
	foundLatency := false
	for _, tm := range snap.Timers {
		if tm.Name == "serve.latency" && tm.Count == st.Completed {
			foundLatency = true
		}
	}
	if !foundLatency {
		t.Fatalf("obs serve.latency timer missing or wrong count; timers = %+v", snap.Timers)
	}
}

func TestStatsMeanBatch(t *testing.T) {
	srv, vc := lingerServer(t, Config{MaxBatch: 2, MaxLinger: 5 * time.Millisecond})
	ch1 := srv.submitBlocking([]float64{1, 0, 0}, time.Time{})
	vc.BlockUntilWaiters(1)
	ch2 := srv.submitBlocking([]float64{0, 1, 0}, time.Time{})
	<-ch1
	<-ch2
	st := srv.Stats()
	if st.MeanBatch != 2 || st.Submitted != 2 || st.LiveReplicas != 1 {
		t.Fatalf("stats = %+v", st)
	}
}
